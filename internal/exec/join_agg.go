package exec

import (
	"context"
	"fmt"
	"math"

	"raven/internal/plan"
	"raven/internal/types"
)

// HashJoin is an inner equi-join: build on the right input, probe with the
// left. The output drops the right key column (matching plan.Join).
type HashJoin struct {
	Left, Right       Operator
	LeftCol, RightCol string
	// Ctx cancels the build and probe phases between batches.
	Ctx context.Context

	schema   *types.Schema
	leftIdx  int
	rightIdx int
	// built maps key to row ordinals in the materialized right side.
	// builtInt is the allocation-free fast path for INT keys (the common
	// case: surrogate-key joins); built handles everything else.
	built    map[any][]int
	builtInt map[int64][]int32
	rightAll *types.Batch
	rightSel []int // right columns kept in output order
}

// NewHashJoin builds the operator and resolves key ordinals.
func NewHashJoin(left, right Operator, leftCol, rightCol string) (*HashJoin, error) {
	li := left.Schema().IndexOf(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("exec: join key %q not in left schema", leftCol)
	}
	ri := right.Schema().IndexOf(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("exec: join key %q not in right schema", rightCol)
	}
	var cols []types.Column
	cols = append(cols, left.Schema().Columns...)
	var rightSel []int
	for i, c := range right.Schema().Columns {
		if i == ri {
			continue
		}
		cols = append(cols, c)
		rightSel = append(rightSel, i)
	}
	return &HashJoin{
		Left: left, Right: right, LeftCol: leftCol, RightCol: rightCol,
		schema: types.NewSchema(cols...), leftIdx: li, rightIdx: ri, rightSel: rightSel,
	}, nil
}

// Schema implements Operator.
func (j *HashJoin) Schema() *types.Schema { return j.schema }

// Open implements Operator: materialize and hash the right input.
func (j *HashJoin) Open() error {
	all, err := CollectContext(j.Ctx, j.Right)
	if err != nil {
		return err
	}
	j.rightAll = all
	kv := all.Vecs[j.rightIdx]
	if kv.Type == types.Int {
		j.builtInt = make(map[int64][]int32, all.Len())
		for i := 0; i < all.Len(); i++ {
			k := kv.Ints[i]
			j.builtInt[k] = append(j.builtInt[k], int32(i))
		}
	} else {
		j.built = make(map[any][]int, all.Len())
		for i := 0; i < all.Len(); i++ {
			k := kv.Value(i)
			j.built[k] = append(j.built[k], i)
		}
	}
	return j.Left.Open()
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.built = nil
	j.builtInt = nil
	j.rightAll = nil
	return j.Left.Close()
}

// Next implements Operator.
func (j *HashJoin) Next() (*types.Batch, error) {
	for {
		if err := ctxErr(j.Ctx); err != nil {
			return nil, err
		}
		b, err := j.Left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		kv := b.Vecs[j.leftIdx]
		var leftSel, rightSel []int
		if j.builtInt != nil && kv.Type == types.Int {
			for i, k := range kv.Ints {
				for _, r := range j.builtInt[k] {
					leftSel = append(leftSel, i)
					rightSel = append(rightSel, int(r))
				}
			}
		} else {
			for i := 0; i < b.Len(); i++ {
				for _, r := range j.built[kv.Value(i)] {
					leftSel = append(leftSel, i)
					rightSel = append(rightSel, r)
				}
			}
		}
		if len(leftSel) == 0 {
			continue
		}
		lpart := b.Gather(leftSel)
		rpart := j.rightAll.Gather(rightSel).Project(j.rightSel)
		vecs := make([]*types.Vector, 0, len(lpart.Vecs)+len(rpart.Vecs))
		vecs = append(vecs, lpart.Vecs...)
		vecs = append(vecs, rpart.Vecs...)
		return &types.Batch{Schema: j.schema, Vecs: vecs}, nil
	}
}

// HashAggregate groups rows and computes aggregates, emitting one batch in
// first-seen group order.
type HashAggregate struct {
	Child   Operator
	GroupBy []string
	Aggs    []plan.AggSpec
	// Ctx cancels the aggregation between input batches.
	Ctx context.Context

	schema *types.Schema
	groups map[string]*aggGroup
	order  []string
	out    *types.Batch
	done   bool
}

// aggGroup accumulates all aggregates for one group.
type aggGroup struct {
	keys   []any
	counts []int64
	sums   []float64
	mins   []float64
	maxs   []float64
	minStr []string
	maxStr []string
}

// NewHashAggregate builds the operator; schema mirrors plan.NewAggregate.
func NewHashAggregate(child Operator, groupBy []string, aggs []plan.AggSpec) (*HashAggregate, error) {
	var cols []types.Column
	cs := child.Schema()
	for _, g := range groupBy {
		i := cs.IndexOf(g)
		if i < 0 {
			return nil, fmt.Errorf("exec: GROUP BY column %q not found", g)
		}
		cols = append(cols, cs.Columns[i])
	}
	for _, a := range aggs {
		t := types.Float
		if a.Func == plan.AggCount {
			t = types.Int
		} else if a.Arg != nil && (a.Func == plan.AggMin || a.Func == plan.AggMax) {
			at, err := a.Arg.Type(cs)
			if err != nil {
				return nil, err
			}
			t = at
		}
		cols = append(cols, types.Column{Name: a.Name, Type: t})
	}
	return &HashAggregate{Child: child, GroupBy: groupBy, Aggs: aggs, schema: types.NewSchema(cols...)}, nil
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *types.Schema { return h.schema }

// Open implements Operator: consume the child and aggregate.
func (h *HashAggregate) Open() error {
	h.done = false
	h.groups = make(map[string]*aggGroup)
	h.order = nil
	if err := h.Child.Open(); err != nil {
		return err
	}
	defer h.Child.Close()

	keyIdx := make([]int, len(h.GroupBy))
	for i, g := range h.GroupBy {
		keyIdx[i] = h.Child.Schema().IndexOf(g)
	}
	for {
		if err := ctxErr(h.Ctx); err != nil {
			return err
		}
		b, err := h.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		argVals := make([]*types.Vector, len(h.Aggs))
		for ai, a := range h.Aggs {
			if a.Arg != nil {
				v, err := a.Arg.Eval(b)
				if err != nil {
					return err
				}
				argVals[ai] = v
			}
		}
		for i := 0; i < b.Len(); i++ {
			var kb []byte
			for _, ki := range keyIdx {
				kb = append(kb, fmt.Sprintf("%v|", b.Vecs[ki].Value(i))...)
			}
			key := string(kb)
			st, ok := h.groups[key]
			if !ok {
				st = &aggGroup{
					keys:   make([]any, len(keyIdx)),
					counts: make([]int64, len(h.Aggs)),
					sums:   make([]float64, len(h.Aggs)),
					mins:   make([]float64, len(h.Aggs)),
					maxs:   make([]float64, len(h.Aggs)),
					minStr: make([]string, len(h.Aggs)),
					maxStr: make([]string, len(h.Aggs)),
				}
				for a := range st.mins {
					st.mins[a] = math.Inf(1)
					st.maxs[a] = math.Inf(-1)
				}
				for k, ki := range keyIdx {
					st.keys[k] = b.Vecs[ki].Value(i)
				}
				h.groups[key] = st
				h.order = append(h.order, key)
			}
			for ai, a := range h.Aggs {
				if a.Func == plan.AggCount {
					st.counts[ai]++
					continue
				}
				v := argVals[ai]
				if v.Type == types.String {
					s := v.Strings[i]
					if st.counts[ai] == 0 || s < st.minStr[ai] {
						st.minStr[ai] = s
					}
					if st.counts[ai] == 0 || s > st.maxStr[ai] {
						st.maxStr[ai] = s
					}
					st.counts[ai]++
					continue
				}
				x := v.AsFloat(i)
				st.counts[ai]++
				st.sums[ai] += x
				if x < st.mins[ai] {
					st.mins[ai] = x
				}
				if x > st.maxs[ai] {
					st.maxs[ai] = x
				}
			}
		}
	}
	return h.emit()
}

func (h *HashAggregate) emit() error {
	out := types.NewBatch(h.schema)
	for _, key := range h.order {
		st := h.groups[key]
		row := make([]any, 0, h.schema.Len())
		row = append(row, st.keys...)
		for ai, a := range h.Aggs {
			idx := len(h.GroupBy) + ai
			switch a.Func {
			case plan.AggCount:
				row = append(row, st.counts[ai])
			case plan.AggSum:
				row = append(row, st.sums[ai])
			case plan.AggAvg:
				if st.counts[ai] == 0 {
					row = append(row, 0.0)
				} else {
					row = append(row, st.sums[ai]/float64(st.counts[ai]))
				}
			case plan.AggMin, plan.AggMax:
				switch h.schema.Columns[idx].Type {
				case types.String:
					if a.Func == plan.AggMin {
						row = append(row, st.minStr[ai])
					} else {
						row = append(row, st.maxStr[ai])
					}
				case types.Int:
					if a.Func == plan.AggMin {
						row = append(row, int64(st.mins[ai]))
					} else {
						row = append(row, int64(st.maxs[ai]))
					}
				default:
					if a.Func == plan.AggMin {
						row = append(row, st.mins[ai])
					} else {
						row = append(row, st.maxs[ai])
					}
				}
			}
		}
		if err := out.AppendRow(row...); err != nil {
			return err
		}
	}
	h.out = out
	h.groups = nil
	h.order = nil
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (*types.Batch, error) {
	if h.done {
		return nil, nil
	}
	h.done = true
	return h.out, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.out = nil
	return nil
}
