package storage

import (
	"raven/internal/types"
)

// Backend persists catalog, table and model-store mutations. A nil
// backend is the in-memory default: every mutation applies directly and
// nothing touches disk — exactly the pre-durability engine. With a
// backend attached (SetBackend), mutations route through it so they are
// logged to the WAL before they become visible, and table tails seal
// into columnar segment files once they grow past the configured row
// count.
//
// The engine stays agnostic of the backend: it calls the same
// Catalog/Table/ModelStore methods either way, mirroring the pluggable
// storage-backend layout of whereabouts' pkg/storage.
type Backend interface {
	// Append logs batch b and applies it to t, sealing the tail into a
	// segment when it crosses the threshold.
	Append(t *Table, b *types.Batch) error
	// CreateTable logs and registers a new table.
	CreateTable(c *Catalog, t *Table) error
	// DropTable logs and removes a table.
	DropTable(c *Catalog, name string) error
	// SetUniqueKey logs and declares a unique key.
	SetUniqueKey(c *Catalog, table, col string) error
	// CommitModelTx logs and applies a model-store transaction.
	CommitModelTx(tx *Tx) error
}
