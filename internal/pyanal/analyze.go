package pyanal

import (
	"fmt"
	"strconv"
	"strings"
)

// value is the symbolic value domain of the abstract interpreter.
type value interface{ isValue() }

type strVal string
type numVal float64

type listVal struct{ items []value }
type tupleVal struct{ items []value }

// estimator is a constructed sklearn-like object mapped via the KB.
type estimator struct {
	Kind   string // "scaler", "onehot", "tree", "forest", "logreg", "linreg", "mlp", "union", "pipeline", "udf"
	Params map[string]float64
	// Steps for pipeline/union composites.
	Steps []*estimator
	// Name of the unknown callable for UDFs.
	UDFName string
}

// frame is a data-frame-shaped value: a table/SQL source with column
// selection applied.
type frame struct {
	Source string
	Cols   []string
}

func (strVal) isValue()     {}
func (numVal) isValue()     {}
func (listVal) isValue()    {}
func (tupleVal) isValue()   {}
func (*estimator) isValue() {}
func (*frame) isValue()     {}

// Spec is the static-analysis result: the pipeline structure recovered
// from the script, ready to be paired with training data or matched
// against a stored fitted pipeline.
type Spec struct {
	// Imports lists imported modules (dependency metadata, §3.2).
	Imports []string
	// Source is the table name or SQL text the data comes from.
	Source string
	// InputColumns is the column selection applied to the source.
	InputColumns []string
	// Pipeline is the recovered estimator tree (root usually "pipeline").
	Pipeline *estimator
	// UDFs lists calls that fell back to black-box operators.
	UDFs []string
	// Warnings records constructs outside the translatable subset (loops,
	// conditionals — one plan per path is future work, §3.2).
	Warnings []string
}

// Steps flattens the pipeline into featurizer specs plus the final model.
func (s *Spec) Steps() (featurizers []*estimator, model *estimator, err error) {
	if s.Pipeline == nil {
		return nil, nil, fmt.Errorf("pyanal: script defines no pipeline")
	}
	var flat []*estimator
	var flatten func(e *estimator)
	flatten = func(e *estimator) {
		if e.Kind == "pipeline" {
			for _, st := range e.Steps {
				flatten(st)
			}
			return
		}
		flat = append(flat, e)
	}
	flatten(s.Pipeline)
	if len(flat) == 0 {
		return nil, nil, fmt.Errorf("pyanal: pipeline is empty")
	}
	last := flat[len(flat)-1]
	switch last.Kind {
	case "tree", "forest", "logreg", "linreg", "mlp":
		return flat[:len(flat)-1], last, nil
	default:
		return nil, nil, fmt.Errorf("pyanal: pipeline does not end in a model (last step %q)", last.Kind)
	}
}

// knowledge base: constructor name -> IR operator kind (paper §3.2's
// "in-house knowledge base of APIs of popular data science libraries").
var kb = map[string]string{
	"StandardScaler":         "scaler",
	"OneHotEncoder":          "onehot",
	"DecisionTreeClassifier": "tree",
	"DecisionTreeRegressor":  "tree",
	"RandomForestClassifier": "forest",
	"RandomForestRegressor":  "forest",
	"LogisticRegression":     "logreg",
	"LinearRegression":       "linreg",
	"MLPClassifier":          "mlp",
	"MLPRegressor":           "mlp",
	"Pipeline":               "pipeline",
	"FeatureUnion":           "union",
}

// Analyze runs the static analyzer over a Python pipeline script.
func Analyze(src string) (*Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	a := &analyzer{toks: toks, env: make(map[string]value), spec: &Spec{}}
	if err := a.run(); err != nil {
		return nil, err
	}
	// The pipeline is whatever pipeline-valued variable was assigned last,
	// or the single estimator if no composite was built.
	if a.lastPipeline != nil {
		a.spec.Pipeline = a.lastPipeline
	}
	return a.spec, nil
}

type analyzer struct {
	toks         []token
	pos          int
	env          map[string]value
	spec         *Spec
	lastPipeline *estimator
}

func (a *analyzer) cur() token { return a.toks[a.pos] }
func (a *analyzer) next() token {
	t := a.toks[a.pos]
	a.pos++
	return t
}

func (a *analyzer) atSym(s string) bool {
	t := a.cur()
	return t.kind == tokSymbol && t.text == s
}

func (a *analyzer) acceptSym(s string) bool {
	if a.atSym(s) {
		a.pos++
		return true
	}
	return false
}

func (a *analyzer) expectSym(s string) error {
	if a.acceptSym(s) {
		return nil
	}
	return fmt.Errorf("pyanal: line %d: expected %q, found %q", a.cur().line, s, a.cur().text)
}

func (a *analyzer) run() error {
	for {
		t := a.cur()
		switch {
		case t.kind == tokEOF:
			return nil
		case t.kind == tokNewline:
			a.pos++
		case t.kind == tokName && (t.text == "import" || t.text == "from"):
			a.skipImport()
		case t.kind == tokName && (t.text == "for" || t.text == "while" || t.text == "if" || t.text == "def" || t.text == "class"):
			a.spec.Warnings = append(a.spec.Warnings,
				fmt.Sprintf("line %d: %q is outside the straight-line subset; enclosing statement treated as UDF", t.line, t.text))
			a.skipLine()
		case t.kind == tokName:
			if err := a.statement(); err != nil {
				return err
			}
		default:
			a.skipLine()
		}
	}
}

func (a *analyzer) skipImport() {
	start := a.pos
	a.skipLine()
	// record the module name (token after import/from)
	if start+1 < len(a.toks) && a.toks[start+1].kind == tokName {
		a.spec.Imports = append(a.spec.Imports, a.toks[start+1].text)
	}
}

func (a *analyzer) skipLine() {
	for a.cur().kind != tokNewline && a.cur().kind != tokEOF {
		a.pos++
	}
}

// statement handles `name = expr` and bare expressions.
func (a *analyzer) statement() error {
	name := a.next().text
	if !a.acceptSym("=") {
		// bare expression (e.g. a method call); evaluate for effects and
		// UDF recording, then discard.
		a.pos--
		if _, err := a.expr(); err != nil {
			return err
		}
		a.skipLine()
		return nil
	}
	v, err := a.expr()
	if err != nil {
		return err
	}
	a.env[name] = v
	if est, ok := v.(*estimator); ok && (est.Kind == "pipeline" || isModelKind(est.Kind)) {
		if est.Kind != "pipeline" {
			// a bare model assignment acts as a single-step pipeline
			a.lastPipeline = &estimator{Kind: "pipeline", Steps: []*estimator{est}}
		} else {
			a.lastPipeline = est
		}
	}
	if fr, ok := v.(*frame); ok {
		a.spec.Source = fr.Source
		a.spec.InputColumns = fr.Cols
	}
	a.skipLine()
	return nil
}

func isModelKind(k string) bool {
	switch k {
	case "tree", "forest", "logreg", "linreg", "mlp":
		return true
	}
	return false
}

// expr evaluates the symbolic expression grammar: names, attribute chains,
// calls, subscripts, lists, tuples, literals.
func (a *analyzer) expr() (value, error) {
	v, err := a.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case a.acceptSym("."):
			attr := a.next()
			if attr.kind != tokName {
				return nil, fmt.Errorf("pyanal: line %d: expected attribute name", attr.line)
			}
			if a.atSym("(") {
				v, err = a.call(attrName(v, attr.text), v)
				if err != nil {
					return nil, err
				}
			} else {
				// plain attribute access keeps the receiver symbolic
				v = strVal(attrName(v, attr.text))
			}
		case a.atSym("("):
			name := ""
			if s, ok := v.(strVal); ok {
				name = string(s)
			}
			var err error
			v, err = a.call(name, nil)
			if err != nil {
				return nil, err
			}
		case a.atSym("["):
			var err error
			v, err = a.subscript(v)
			if err != nil {
				return nil, err
			}
		default:
			return v, nil
		}
	}
}

func attrName(recv value, attr string) string {
	if s, ok := recv.(strVal); ok {
		return string(s) + "." + attr
	}
	return attr
}

func (a *analyzer) primary() (value, error) {
	t := a.cur()
	switch {
	case t.kind == tokString:
		a.pos++
		return strVal(t.text), nil
	case t.kind == tokNumber:
		a.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("pyanal: line %d: bad number %q", t.line, t.text)
		}
		return numVal(f), nil
	case t.kind == tokName:
		a.pos++
		if v, ok := a.env[t.text]; ok {
			return v, nil
		}
		switch t.text {
		case "True":
			return numVal(1), nil
		case "False", "None":
			return numVal(0), nil
		}
		return strVal(t.text), nil
	case a.acceptSym("["):
		var items []value
		for !a.atSym("]") {
			if a.cur().kind == tokNewline {
				a.pos++
				continue
			}
			v, err := a.expr()
			if err != nil {
				return nil, err
			}
			items = append(items, v)
			if !a.acceptSym(",") {
				break
			}
		}
		if err := a.expectSym("]"); err != nil {
			return nil, err
		}
		return listVal{items: items}, nil
	case a.acceptSym("("):
		var items []value
		for !a.atSym(")") {
			if a.cur().kind == tokNewline {
				a.pos++
				continue
			}
			v, err := a.expr()
			if err != nil {
				return nil, err
			}
			items = append(items, v)
			if !a.acceptSym(",") {
				break
			}
		}
		if err := a.expectSym(")"); err != nil {
			return nil, err
		}
		if len(items) == 1 {
			return items[0], nil
		}
		return tupleVal{items: items}, nil
	default:
		return nil, fmt.Errorf("pyanal: line %d: unexpected token %q", t.line, t.text)
	}
}

// call evaluates fn(args...) against the knowledge base.
func (a *analyzer) call(name string, recv value) (value, error) {
	if err := a.expectSym("("); err != nil {
		return nil, err
	}
	var args []value
	kwargs := make(map[string]value)
	for !a.atSym(")") {
		if a.cur().kind == tokNewline {
			a.pos++
			continue
		}
		// kwarg?
		if a.cur().kind == tokName && a.toks[a.pos+1].kind == tokSymbol && a.toks[a.pos+1].text == "=" {
			key := a.next().text
			a.pos++ // =
			v, err := a.expr()
			if err != nil {
				return nil, err
			}
			kwargs[key] = v
		} else {
			v, err := a.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		}
		if !a.acceptSym(",") {
			break
		}
	}
	if err := a.expectSym(")"); err != nil {
		return nil, err
	}
	base := name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		base = name[i+1:]
	}
	// knowledge-base dispatch
	if kind, ok := kb[base]; ok {
		return a.buildEstimator(kind, args, kwargs)
	}
	switch base {
	case "read_sql", "read_sql_query", "read_sql_table":
		src := "unknown"
		if len(args) > 0 {
			if s, ok := args[0].(strVal); ok {
				src = string(s)
			}
		}
		return &frame{Source: src}, nil
	case "fit", "fit_transform", "predict", "transform":
		// training-time calls: keep the receiver value flowing
		if recv != nil {
			return recv, nil
		}
		return numVal(0), nil
	case "merge", "join":
		// pandas joins stay relational; keep the frame
		if fr, ok := recv.(*frame); ok {
			return fr, nil
		}
		return &frame{Source: "merge"}, nil
	default:
		a.spec.UDFs = append(a.spec.UDFs, name)
		return &estimator{Kind: "udf", UDFName: name}, nil
	}
}

func (a *analyzer) buildEstimator(kind string, args []value, kwargs map[string]value) (value, error) {
	e := &estimator{Kind: kind, Params: make(map[string]float64)}
	for k, v := range kwargs {
		if n, ok := v.(numVal); ok {
			e.Params[k] = float64(n)
		}
	}
	if kind == "pipeline" || kind == "union" {
		if len(args) != 1 {
			return nil, fmt.Errorf("pyanal: %s expects a list of steps", kind)
		}
		lst, ok := args[0].(listVal)
		if !ok {
			return nil, fmt.Errorf("pyanal: %s expects a list of steps", kind)
		}
		for _, item := range lst.items {
			var stepVal value = item
			// steps are ("name", estimator) tuples
			if tp, ok := item.(tupleVal); ok {
				if len(tp.items) != 2 {
					return nil, fmt.Errorf("pyanal: pipeline step tuple must be (name, estimator)")
				}
				stepVal = tp.items[1]
			}
			est, ok := stepVal.(*estimator)
			if !ok {
				return nil, fmt.Errorf("pyanal: pipeline step is not an estimator")
			}
			e.Steps = append(e.Steps, est)
		}
	}
	return e, nil
}

// subscript handles data[["a", "b"]] column selection and data["a"].
func (a *analyzer) subscript(recv value) (value, error) {
	if err := a.expectSym("["); err != nil {
		return nil, err
	}
	idx, err := a.expr()
	if err != nil {
		return nil, err
	}
	if err := a.expectSym("]"); err != nil {
		return nil, err
	}
	fr, ok := recv.(*frame)
	if !ok {
		return recv, nil
	}
	out := &frame{Source: fr.Source}
	switch ix := idx.(type) {
	case listVal:
		for _, it := range ix.items {
			if s, ok := it.(strVal); ok {
				out.Cols = append(out.Cols, string(s))
			}
		}
	case strVal:
		out.Cols = []string{string(ix)}
	default:
		out.Cols = fr.Cols
	}
	return out, nil
}
