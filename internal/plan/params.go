package plan

import (
	"sort"

	"raven/internal/expr"
)

// CollectParams returns the distinct names of unbound parameters (@name
// placeholders left by a binder with AllowParams) anywhere in the plan,
// sorted. An empty result means the plan is fully bound and executable
// as-is.
func CollectParams(n Node) []string {
	seen := map[string]bool{}
	var walk func(n Node)
	walk = func(n Node) {
		for _, e := range nodeExprs(n) {
			expr.WalkParams(e, func(p *expr.Param) { seen[p.Name] = true })
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// nodeExprs lists the expressions a node owns (not its children's).
func nodeExprs(n Node) []expr.Expr {
	switch x := n.(type) {
	case *Filter:
		return []expr.Expr{x.Pred}
	case *Project:
		return x.Exprs
	case *Aggregate:
		var out []expr.Expr
		for _, a := range x.Aggs {
			if a.Arg != nil {
				out = append(out, a.Arg)
			}
		}
		return out
	default:
		return nil
	}
}

// BindParams returns the plan with every parameter replaced by a literal
// whose type is inferred from its value in vals (expr.LiteralFromString).
// Nodes containing parameters (and their ancestors) are shallow-cloned so
// the input plan — a prepared statement's shared template — is never
// mutated; untouched subtrees are shared. Clones keep their bind-time
// schemas, which may still carry Unknown where a parameter appeared:
// physical lowering recomputes schemas from the substituted expressions,
// but do not trust Schema() of a BindParams result for column types. A
// parameter missing from vals is an error.
func BindParams(n Node, vals map[string]string) (Node, error) {
	out, _, err := bindParams(n, vals)
	return out, err
}

func bindParams(n Node, vals map[string]string) (Node, bool, error) {
	// Rewrite children first; track whether anything below changed.
	children := n.Children()
	newChildren := make([]Node, len(children))
	childChanged := false
	for i, c := range children {
		nc, ch, err := bindParams(c, vals)
		if err != nil {
			return nil, false, err
		}
		newChildren[i] = nc
		childChanged = childChanged || ch
	}

	switch x := n.(type) {
	case *Filter:
		pred, ch, err := expr.ReplaceParams(x.Pred, vals)
		if err != nil {
			return nil, false, err
		}
		if !ch && !childChanged {
			return n, false, nil
		}
		return &Filter{Child: newChildren[0], Pred: pred}, true, nil
	case *Project:
		exprs := make([]expr.Expr, len(x.Exprs))
		changed := false
		for i, e := range x.Exprs {
			ne, ch, err := expr.ReplaceParams(e, vals)
			if err != nil {
				return nil, false, err
			}
			exprs[i] = ne
			changed = changed || ch
		}
		if !changed && !childChanged {
			return n, false, nil
		}
		np := *x
		np.Child = newChildren[0]
		np.Exprs = exprs
		return &np, true, nil
	case *Aggregate:
		aggs := make([]AggSpec, len(x.Aggs))
		changed := false
		for i, a := range x.Aggs {
			aggs[i] = a
			if a.Arg == nil {
				continue
			}
			ne, ch, err := expr.ReplaceParams(a.Arg, vals)
			if err != nil {
				return nil, false, err
			}
			aggs[i].Arg = ne
			changed = changed || ch
		}
		if !changed && !childChanged {
			return n, false, nil
		}
		na := *x
		na.Child = newChildren[0]
		na.Aggs = aggs
		return &na, true, nil
	case *Join:
		if !childChanged {
			return n, false, nil
		}
		nj := *x
		nj.Left, nj.Right = newChildren[0], newChildren[1]
		return &nj, true, nil
	case *Predict:
		if !childChanged {
			return n, false, nil
		}
		np := *x
		np.Child = newChildren[0]
		return &np, true, nil
	case *Sort:
		if !childChanged {
			return n, false, nil
		}
		ns := *x
		ns.Child = newChildren[0]
		return &ns, true, nil
	case *Limit:
		if !childChanged {
			return n, false, nil
		}
		nl := *x
		nl.Child = newChildren[0]
		return &nl, true, nil
	case *Distinct:
		if !childChanged {
			return n, false, nil
		}
		return &Distinct{Child: newChildren[0]}, true, nil
	default:
		// Leaves (Scan, Input) and unknown nodes carry no expressions.
		return n, false, nil
	}
}
