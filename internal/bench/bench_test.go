package bench

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestTablePrintAndMarkdown(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", PaperShape: "shape"}
	tb.Add("a", "1K", 10*time.Millisecond, "note1")
	tb.Add("b", "1K", 5*time.Millisecond, "")
	tb.Add("a", "10K", 100*time.Millisecond, "")
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"X: demo", "paper: shape", "1K", "10K", "note1"} {
		if !strings.Contains(out, want) {
			t.Errorf("print missing %q:\n%s", want, out)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| 1K |") || !strings.Contains(md, "10.00 ms") {
		t.Errorf("markdown:\n%s", md)
	}
	if sp := tb.Speedup("a", "b", "1K"); sp != 2 {
		t.Errorf("Speedup = %v", sp)
	}
	if sp := tb.Speedup("a", "b", "nope"); sp != 0 {
		t.Errorf("missing param speedup = %v", sp)
	}
}

func TestTimeHelper(t *testing.T) {
	calls := 0
	d, err := Time(2, 3, func() error { calls++; return nil })
	if err != nil || calls != 5 || d < 0 {
		t.Errorf("Time: %v %v %d", d, err, calls)
	}
	if _, err := Time(0, 1, func() error { return errTest }); err == nil {
		t.Error("error should propagate")
	}
}

var errTest = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }

func TestFmtRows(t *testing.T) {
	cases := map[int]string{100: "100", 1000: "1K", 300000: "300K", 1000000: "1M", 2500: "2500"}
	for n, want := range cases {
		if got := FmtRows(n); got != want {
			t.Errorf("FmtRows(%d) = %q, want %q", n, got, want)
		}
	}
}

// Smoke-run every experiment at quick scale: shapes must hold directionally
// and nothing may error.
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickConfig()

	t.Run("Fig2a", func(t *testing.T) {
		tb, err := Fig2a(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) < 4 {
			t.Fatalf("rows = %d", len(tb.Rows))
		}
		// optimized must beat baseline for the sparser model
		var sped bool
		for _, r := range tb.Rows {
			if r.Series == "projection pushdown" && strings.Contains(r.Note, "speedup") {
				sped = true
			}
		}
		if !sped {
			t.Error("no speedup recorded")
		}
	})

	t.Run("Fig2b", func(t *testing.T) {
		tb, err := Fig2b(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base, clustered := 0.0, 0.0
		for _, r := range tb.Rows {
			if r.Param == "k=1" {
				base = r.Millis
			}
			if r.Param == "k=4" {
				clustered = r.Millis
			}
		}
		if base == 0 || clustered == 0 {
			t.Fatalf("missing rows: %+v", tb.Rows)
		}
		if clustered > base {
			t.Errorf("clustering slowed inference down: %v -> %v ms", base, clustered)
		}
	})

	t.Run("Fig2c", func(t *testing.T) {
		tb, err := Fig2c(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// inlined must beat external sklearn-sim at the largest size
		params := map[string]bool{}
		for _, r := range tb.Rows {
			params[r.Param] = true
		}
		last := ""
		for _, r := range tb.Rows {
			last = r.Param
		}
		if sp := tb.Speedup("sklearn-sim from DB", "inlined CASE", last); sp < 2 {
			t.Errorf("inlining speedup at %s = %.2fx, want >= 2x", last, sp)
		}
	})

	t.Run("Fig2d", func(t *testing.T) {
		tb, err := Fig2d(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) < 6 {
			t.Fatalf("rows = %d", len(tb.Rows))
		}
	})

	t.Run("Fig3", func(t *testing.T) {
		tb, err := Fig3(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Raven Ext must carry the external startup constant.
		for _, r := range tb.Rows {
			if r.Series == "Raven Ext" && r.Millis < 400 {
				t.Errorf("Raven Ext lost its startup constant: %.1fms", r.Millis)
			}
		}
	})

	t.Run("PredicatePruning", func(t *testing.T) {
		tb, err := PredicatePruning(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sp := tb.Speedup("original", "pruned", "LR one-hot (dest=42)"); sp < 1.5 {
			t.Errorf("LR pruning speedup = %.2fx, want >= 1.5x", sp)
		}
	})

	t.Run("BatchVsTuple", func(t *testing.T) {
		tb, err := BatchVsTuple(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sp := tb.Speedup("RF-NN", "RF-NN", "batch=1"); sp != 1 {
			_ = sp
		}
		var b1, b4096 float64
		for _, r := range tb.Rows {
			if r.Param == "batch=1" {
				b1 = r.Millis
			}
			if r.Param == "batch=4096" {
				b4096 = r.Millis
			}
		}
		if raceEnabled {
			t.Skip("race instrumentation skews the per-batch overhead ratio")
		}
		if b1 < 4*b4096 {
			t.Errorf("batching gain too small: batch=1 %.1fms vs batch=4096 %.1fms", b1, b4096)
		}
	})

	t.Run("StaticAnalysis", func(t *testing.T) {
		tb, err := StaticAnalysis(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !raceEnabled && tb.Rows[0].Millis > 10 {
			t.Errorf("static analysis took %.2fms, paper claims <10ms", tb.Rows[0].Millis)
		}
	})

	t.Run("RunningExample", func(t *testing.T) {
		tb, err := RunningExample(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sp := tb.Speedup("no optimization (external)", "Raven optimized", "Fig1 query"); sp < 2 {
			t.Errorf("running example speedup = %.2fx, want >= 2x", sp)
		}
	})

	t.Run("ParallelScaling", func(t *testing.T) {
		tb, err := ParallelScaling(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// serial + at least DOP=2 and DOP=4 points, each measured.
		if len(tb.Rows) < 3 {
			t.Fatalf("rows = %d: %+v", len(tb.Rows), tb.Rows)
		}
		for _, r := range tb.Rows {
			if r.Millis <= 0 {
				t.Errorf("series %s has no measurement", r.Series)
			}
		}
		if !strings.Contains(tb.Rows[0].Note, "speedup") {
			t.Error("no speedup recorded")
		}
		// Speedup thresholds are only meaningful with real cores and no
		// race instrumentation.
		if !raceEnabled && runtime.GOMAXPROCS(0) >= 4 {
			if sp := tb.Speedup("serial (DOP=1)", "morsel (DOP=4)", FmtRows(100000)); sp < 1.5 {
				t.Errorf("morsel-parallel speedup = %.2fx, want >= 1.5x on a multi-core host", sp)
			}
		}
	})

	t.Run("ParallelBreakers", func(t *testing.T) {
		tb, err := ParallelBreakers(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// three queries x four DOP points, each measured.
		if len(tb.Rows) != 12 {
			t.Fatalf("rows = %d: %+v", len(tb.Rows), tb.Rows)
		}
		for _, r := range tb.Rows {
			if r.Millis <= 0 {
				t.Errorf("%s/%s has no measurement", r.Series, r.Param)
			}
		}
		if !strings.Contains(tb.Rows[0].Note, "speedup") {
			t.Error("no speedup recorded")
		}
		// The >=2x acceptance at DOP 8 only means anything with >=8 real
		// cores and no race instrumentation; the checked-in
		// BENCH_parallel_breakers.json records what this host produced.
		if !raceEnabled && runtime.GOMAXPROCS(0) >= 8 {
			for _, q := range []string{"GROUP BY", "JOIN"} {
				if sp := tb.Speedup("DOP=1", "DOP=8", q); sp < 2 {
					t.Errorf("%s: DOP=8 speedup = %.2fx, want >= 2x on an 8-core host", q, sp)
				}
			}
		}
	})

	t.Run("ServeConcurrency", func(t *testing.T) {
		tb, err := ServeConcurrency(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// {p99, mean} x {no admission, admission(4)} x 4 client counts.
		if len(tb.Rows) != 16 {
			t.Fatalf("rows = %d: %+v", len(tb.Rows), tb.Rows)
		}
		for _, r := range tb.Rows {
			if r.Millis <= 0 {
				t.Errorf("%s/%s has no measurement", r.Series, r.Param)
			}
		}
		// The experiment itself fails if the active gauge ever exceeded
		// the admission limit; the note records the observed high-water.
		var gauged bool
		for _, r := range tb.Rows {
			if strings.Contains(r.Note, "max active") {
				gauged = true
			}
		}
		if !gauged {
			t.Error("no max-active gauge recorded for the admission variant")
		}
	})

	t.Run("CachedServe", func(t *testing.T) {
		tb, err := CachedServe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// 3 latency series + staleness probe + admission-free row. The
		// experiment itself fails on a stale read, a sub-10x hit speedup
		// (non-race builds) or a 429'd cached read — a returned table
		// already certifies those.
		if len(tb.Rows) != 5 {
			t.Fatalf("rows = %d: %+v", len(tb.Rows), tb.Rows)
		}
		var staleProof, admissionProof bool
		for _, r := range tb.Rows {
			if strings.Contains(r.Note, "stale=0") {
				staleProof = true
			}
			if strings.Contains(r.Note, "hits_429=0") {
				admissionProof = true
			}
			if r.Millis <= 0 {
				t.Errorf("%s/%s has no measurement", r.Series, r.Param)
			}
		}
		if !staleProof {
			t.Error("no stale=0 proof note recorded")
		}
		if !admissionProof {
			t.Error("no hits_429=0 proof note recorded")
		}
	})

	t.Run("DurableRecovery", func(t *testing.T) {
		tb, err := DurableRecovery(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// 2 recovery sizes (quick) + sealed-segment and in-memory ORDER BY
		// rows. The experiment itself fails on a fingerprint divergence —
		// a returned table already certifies recovery correctness.
		if len(tb.Rows) != 4 {
			t.Fatalf("rows = %d: %+v", len(tb.Rows), tb.Rows)
		}
		var recoveredProof bool
		for _, r := range tb.Rows {
			if strings.Contains(r.Note, "recovered=1") {
				recoveredProof = true
			}
			if r.Millis <= 0 {
				t.Errorf("%s/%s has no measurement", r.Series, r.Param)
			}
		}
		if !recoveredProof {
			t.Error("no recovered=1 proof note recorded")
		}
	})

	t.Run("MultiTenantServe", func(t *testing.T) {
		tb, err := MultiTenantServe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// 4 series x {no quota, quota}. The experiment itself fails on an
		// admission-gauge breach, a starved interactive query, or an
		// interactive result drifting from the serial reference — a
		// returned table already certifies those.
		if len(tb.Rows) != 8 {
			t.Fatalf("rows = %d: %+v", len(tb.Rows), tb.Rows)
		}
		var starvationNote bool
		for _, r := range tb.Rows {
			if strings.Contains(r.Note, "admitted") && strings.Contains(r.Note, "histogram") {
				starvationNote = true
			}
			// The queue-wait series legitimately records ~0ms with the
			// quota on — that collapse is the point — so only the latency
			// series must carry real measurements.
			if r.Millis <= 0 && !strings.Contains(r.Series, "queue wait") {
				t.Errorf("%s/%s has no measurement", r.Series, r.Param)
			}
		}
		if !starvationNote {
			t.Error("no admission/starvation note recorded")
		}
		if !raceEnabled && runtime.GOMAXPROCS(0) >= 4 {
			// With real cores the quota frees a slot the interactive tenant
			// can always take: its mean queue wait must collapse vs no-quota.
			noQ, withQ := -1.0, -1.0
			for _, r := range tb.Rows {
				if r.Series == "interactive mean queue wait" {
					if strings.HasPrefix(r.Param, "no quota") {
						noQ = r.Millis
					} else {
						withQ = r.Millis
					}
				}
			}
			if noQ < 0 || withQ < 0 {
				t.Fatal("queue-wait series missing a variant")
			}
			if noQ > 1 && withQ > noQ/2 {
				t.Errorf("quota did not collapse interactive queue wait: %.2fms -> %.2fms", noQ, withQ)
			}
		}
	})
}
