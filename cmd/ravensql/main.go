// Command ravensql executes a SQL script against a Raven engine preloaded
// with the paper's demo workloads and stored models, printing query
// results. It is the closest thing to the live demo the paper promises.
//
// Usage:
//
//	ravensql [-rows N] [-file script.sql] [-parallelism N] [-morsel N] [-timeout D]
//	echo "SELECT COUNT(*) AS n FROM patient_info" | ravensql
//
// Queries run through the streaming serving API (QueryContext): rows print
// as they arrive and -timeout bounds each SELECT with a context deadline,
// cancelling mid-scan instead of materializing a doomed result (DDL and
// INSERT statements are not bounded — DB.Exec takes no context).
//
// Preloaded: hospital tables (patient_info, blood_tests, prenatal_tests)
// with a stored decision-tree model 'duration_of_stay', and the
// flights_features table with an L1-sparse model 'flight_delay'.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

func main() {
	rows := flag.Int("rows", 100000, "rows per generated table")
	file := flag.String("file", "", "SQL script file ('-' or empty reads stdin)")
	explain := flag.Bool("explain", false, "print plans instead of executing")
	parallelism := flag.Int("parallelism", 0, "degree of parallelism for query execution (0 = GOMAXPROCS, 1 = serial)")
	morsel := flag.Int("morsel", 0, "rows per parallel work unit (0 = engine default)")
	timeout := flag.Duration("timeout", 0, "per-query deadline for SELECTs (0 = none), e.g. 500ms or 30s; DDL/INSERT statements are not bounded")
	flag.Parse()

	db, err := setup(*rows, *parallelism, *morsel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}

	var script []byte
	if *file == "" || *file == "-" {
		script, err = io.ReadAll(os.Stdin)
	} else {
		script, err = os.ReadFile(*file)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "read:", err)
		os.Exit(1)
	}

	for _, stmt := range splitStatements(string(script)) {
		if err := run(db, stmt, *explain, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}

func setup(rows, parallelism, morsel int) (*raven.DB, error) {
	db := raven.Open(raven.WithParallelism(parallelism), raven.WithMorselSize(morsel))
	h, err := data.GenHospital(db.Catalog(), rows, 4000, 42)
	if err != nil {
		return nil, err
	}
	tree := train.FitTree(h.TrainX, h.TrainY, train.TreeOptions{MaxDepth: 6, MinLeaf: 10})
	if err := db.StoreModel("duration_of_stay", &ml.Pipeline{Final: tree, InputColumns: h.FeatureCols}); err != nil {
		return nil, err
	}
	fl, err := data.GenFlightsWide(db.Catalog(), rows, 100, 30, 4000, 7)
	if err != nil {
		return nil, err
	}
	lr := train.FitLogReg(fl.TrainX, fl.TrainY, train.LogRegOptions{L1: 0.02, Epochs: 60, Seed: 1})
	if err := db.StoreModel("flight_delay", &ml.Pipeline{Final: lr, InputColumns: fl.FeatureCols}); err != nil {
		return nil, err
	}
	return db, nil
}

// splitStatements breaks the script on top-level semicolons, keeping
// DECLARE+SELECT pairs together so session variables bind.
func splitStatements(s string) []string {
	parts := strings.Split(s, ";")
	var out []string
	var pending string
	for _, p := range parts {
		t := strings.TrimSpace(p)
		if t == "" {
			continue
		}
		up := strings.ToUpper(t)
		if strings.HasPrefix(up, "DECLARE") || strings.HasPrefix(up, "CREATE") || strings.HasPrefix(up, "INSERT") || strings.HasPrefix(up, "DROP") {
			pending += t + ";\n"
			continue
		}
		out = append(out, pending+t)
		pending = ""
	}
	if strings.TrimSpace(pending) != "" {
		out = append(out, strings.TrimSuffix(pending, ";\n"))
	}
	return out
}

func run(db *raven.DB, stmt string, explain bool, timeout time.Duration) error {
	up := strings.ToUpper(strings.TrimSpace(stmt))
	isQuery := strings.Contains(up, "SELECT") && !strings.HasPrefix(up, "CREATE") && !strings.HasPrefix(up, "INSERT")
	if !isQuery {
		return db.Exec(stmt)
	}
	if explain {
		out, err := db.Explain(stmt, raven.DefaultQueryOptions())
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	rows, err := db.QueryContext(ctx, stmt)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols := rows.Columns()
	fmt.Println(strings.Join(cols, "\t"))
	const maxPrint = 25
	n := 0
	vals := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for j := range vals {
		ptrs[j] = &vals[j]
	}
	for rows.Next() {
		if n < maxPrint {
			if err := rows.Scan(ptrs...); err != nil {
				return err
			}
			parts := make([]string, len(vals))
			for j, v := range vals {
				parts[j] = fmt.Sprintf("%v", v)
			}
			fmt.Println(strings.Join(parts, "\t"))
		}
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if n > maxPrint {
		fmt.Printf("... (%d rows total)\n", n)
	}
	fmt.Printf("-- %d rows in %v (compile %v + exec %v)",
		n, (rows.CompileTime + rows.ExecTime()).Round(100*1000),
		rows.CompileTime.Round(100*1000), rows.ExecTime().Round(100*1000))
	if len(rows.AppliedRules) > 0 {
		fmt.Printf(" (rules: %s)", strings.Join(rows.AppliedRules, ", "))
	}
	fmt.Println()
	return nil
}
