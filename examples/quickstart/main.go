// Quickstart: create a table, train & store a model pipeline from a Python
// script via the static analyzer, and run an inference query with the
// cross optimizer.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"raven"
	"raven/internal/ml"
)

func main() {
	db := raven.MustOpen()

	// 1. A table of loan applicants.
	if err := db.Exec(`CREATE TABLE applicants (
		id INT PRIMARY KEY, income FLOAT, debt FLOAT, age FLOAT)`); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	applicants, _ := db.Catalog().Table("applicants")
	for i := 0; i < 20000; i++ {
		income := 20000 + rng.Float64()*120000
		debt := rng.Float64() * 60000
		age := 18 + rng.Float64()*60
		if err := applicants.AppendRow(int64(i), income, debt, age); err != nil {
			log.Fatal(err)
		}
	}

	// 2. The data scientist's pipeline script: statically analyzed, then
	// fitted on a training sample and stored in the database (versioned,
	// transactional).
	script := `
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.linear_model import LogisticRegression

data = pd.read_sql("SELECT * FROM applicants", conn)
features = data[["income", "debt", "age"]]
model = Pipeline([
    ("scaler", StandardScaler()),
    ("clf", LogisticRegression(C=10)),
])
`
	trainX, trainY := trainingSample(8000)
	pipe, err := db.StoreModelScript("default_risk", script, trainX, trainY, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored pipeline: %d featurizer step(s) + %s model\n", len(pipe.Steps), pipe.Final.Kind())

	// 3. The analyst's inference query: PREDICT invokes the stored model;
	// the WHERE clause mixes data and prediction columns.
	res, err := db.Query(`
		SELECT d.id, p.risk
		FROM PREDICT(MODEL='default_risk', DATA=applicants AS d)
		WITH (risk FLOAT) AS p
		WHERE d.debt > 30000 AND p.risk > 0.5
		ORDER BY risk DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top risky applicants (%d rows, %v, rules: %v):\n",
		res.Batch.Len(), res.Elapsed.Round(1000000), res.AppliedRules)
	for i := 0; i < res.Batch.Len(); i++ {
		fmt.Printf("  id=%v risk=%.3f\n", res.Batch.Col("id").Ints[i], res.Batch.Col("risk").Floats[i])
	}

	// 4. Inspect what the optimizer did.
	explain, err := db.Explain(`
		SELECT p.risk FROM PREDICT(MODEL='default_risk', DATA=applicants AS d)
		WITH (risk FLOAT) AS p WHERE d.age > 40`, raven.DefaultQueryOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + explain)
}

// trainingSample synthesizes labelled applicants: default risk rises with
// debt-to-income.
func trainingSample(n int) (ml.Matrix, []float64) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, n*3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		income := 20000 + rng.Float64()*120000
		debt := rng.Float64() * 60000
		age := 18 + rng.Float64()*60
		x[i*3], x[i*3+1], x[i*3+2] = income, debt, age
		if debt/income > 0.45+0.2*rng.NormFloat64() {
			y[i] = 1
		}
	}
	return ml.Matrix{Data: x, Rows: n, Cols: 3}, y
}
