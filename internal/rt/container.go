package rt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"raven/internal/ml"
	"raven/internal/types"
)

// ContainerServer is the REST scoring endpoint of the containerized
// fallback (paper §5): a real HTTP server on localhost exposing
// POST /v1/predict with a JSON body {"rows": [[...], ...]} returning
// {"scores": [...]}.
type ContainerServer struct {
	Pipe *ml.Pipeline

	srv  *http.Server
	ln   net.Listener
	addr string
	once sync.Once
}

// Start launches the server on an ephemeral localhost port.
func (c *ContainerServer) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("rt: container listen: %w", err)
	}
	c.ln = ln
	c.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", c.handlePredict)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	c.srv = &http.Server{Handler: mux}
	go func() { _ = c.srv.Serve(ln) }()
	return nil
}

// Addr returns "host:port" once started.
func (c *ContainerServer) Addr() string { return c.addr }

// Stop shuts the server down.
func (c *ContainerServer) Stop() error {
	if c.srv == nil {
		return nil
	}
	return c.srv.Close()
}

type predictRequest struct {
	Rows [][]float64 `json:"rows"`
}

type predictResponse struct {
	Scores []float64 `json:"scores"`
	Error  string    `json:"error,omitempty"`
}

func (c *ContainerServer) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req predictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var resp predictResponse
	if len(req.Rows) > 0 {
		d := len(req.Rows[0])
		flat := make([]float64, 0, len(req.Rows)*d)
		for _, row := range req.Rows {
			if len(row) != d {
				writeJSON(w, http.StatusBadRequest, predictResponse{Error: "ragged rows"})
				return
			}
			flat = append(flat, row...)
		}
		scores, err := c.Pipe.Predict(ml.Matrix{Data: flat, Rows: len(req.Rows), Cols: d})
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, predictResponse{Error: err.Error()})
			return
		}
		resp.Scores = scores
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ContainerPredictor scores batches through a ContainerServer endpoint.
type ContainerPredictor struct {
	URL       string // e.g. "http://127.0.0.1:9999"
	InputCols []string
	OutType   types.DataType
	Client    *http.Client
}

// NewContainerPredictor starts a server for the pipeline and returns a
// predictor bound to it plus the server handle for shutdown.
func NewContainerPredictor(p *ml.Pipeline, outType types.DataType) (*ContainerPredictor, *ContainerServer, error) {
	srv := &ContainerServer{Pipe: p}
	if err := srv.Start(); err != nil {
		return nil, nil, err
	}
	pred := &ContainerPredictor{
		URL:       "http://" + srv.Addr(),
		InputCols: p.InputColumns,
		OutType:   outType,
		Client:    &http.Client{Timeout: 30 * time.Second},
	}
	return pred, srv, nil
}

// PredictBatch implements exec.Predictor.
func (p *ContainerPredictor) PredictBatch(b *types.Batch) ([]*types.Vector, error) {
	d := len(p.InputCols)
	flat, n, err := b.FloatMatrix(p.InputCols)
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = flat[i*d : (i+1)*d]
	}
	body, err := json.Marshal(predictRequest{Rows: rows})
	if err != nil {
		return nil, err
	}
	resp, err := p.Client.Post(p.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("rt: container request: %w", err)
	}
	defer resp.Body.Close()
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	if pr.Error != "" {
		return nil, fmt.Errorf("rt: container error: %s", pr.Error)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rt: container status %d", resp.StatusCode)
	}
	return []*types.Vector{floatVector(pr.Scores, p.OutType)}, nil
}
