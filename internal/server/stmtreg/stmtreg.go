// Package stmtreg is the front-end-agnostic server-side prepared
// statement registry. It used to live inside the HTTP server as a
// private map; hoisting it out lets pg prepared statements/portals and
// HTTP /stmt/{id} share one capacity bound, one stats surface and one
// re-prepare-on-catalog-bump behaviour (the raven.Stmt inside each
// entry transparently re-prepares after DDL or model stores).
//
// Entries are owned: each front end registers under an owner key (the
// HTTP server uses ""; pgwire uses one key per connection) so a closing
// pg connection can drop exactly its statements while HTTP statements —
// which outlive any one connection — stay. The capacity bound spans all
// owners: a flood of pg Parse messages and a flood of POST /prepare
// calls drain the same budget, and both are refused with the same
// ErrStmtLimit once it is gone.
package stmtreg

import (
	"fmt"
	"sync"

	"raven"
	"raven/internal/server/reqopt"
)

// Entry is one registered statement: the compiled Stmt plus the
// request-option layer it was registered under (per-statement tenant/
// priority defaults — executions inherit them unless the request
// overrides; see reqopt's resolution order).
type Entry struct {
	Stmt *raven.Stmt
	Opts reqopt.Options
}

// Registry is a bounded, owned id→Entry map. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*Entry
	owners   map[string]map[string]struct{} // owner → ids
	nextID   uint64
	prepares uint64
}

// DefaultMax is the registry capacity when New is given n <= 0.
const DefaultMax = 1024

// New builds a registry holding at most max statements.
func New(max int) *Registry {
	if max <= 0 {
		max = DefaultMax
	}
	return &Registry{
		max:     max,
		entries: make(map[string]*Entry),
		owners:  make(map[string]map[string]struct{}),
	}
}

// Cap returns the capacity bound.
func (r *Registry) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// Len returns the number of registered statements across all owners.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Prepares returns the cumulative successful registrations.
func (r *Registry) Prepares() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prepares
}

// Full reports whether the registry is at capacity — front ends check
// it before compiling, so a full registry does not cost a parse/bind/
// cross-optimize per rejected request. (Re-checked inside Register:
// concurrent prepares racing past this gate may each compile, but the
// registry never exceeds the cap.)
func (r *Registry) Full() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries) >= r.max
}

// Register stores e under a fresh id for owner, or fails with
// reqopt.ErrStmtLimit at capacity.
func (r *Registry) Register(owner string, e *Entry) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) >= r.max {
		return "", reqopt.ErrStmtLimit
	}
	r.nextID++
	id := fmt.Sprintf("s%d", r.nextID)
	r.entries[id] = e
	ids := r.owners[owner]
	if ids == nil {
		ids = make(map[string]struct{})
		r.owners[owner] = ids
	}
	ids[id] = struct{}{}
	r.prepares++
	return id, nil
}

// Get looks an entry up, failing with reqopt.ErrStmtNotFound.
func (r *Registry) Get(id string) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, reqopt.ErrStmtNotFound
	}
	return e, nil
}

// Remove deletes one statement (any owner's — HTTP DELETE takes ids,
// not owners), failing with reqopt.ErrStmtNotFound if absent.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; !ok {
		return reqopt.ErrStmtNotFound
	}
	delete(r.entries, id)
	for owner, ids := range r.owners {
		if _, ok := ids[id]; ok {
			delete(ids, id)
			if len(ids) == 0 {
				delete(r.owners, owner)
			}
			break
		}
	}
	return nil
}

// RemoveOwner drops every statement registered under owner (a closing
// pg connection) and returns how many were dropped.
func (r *Registry) RemoveOwner(owner string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := r.owners[owner]
	for id := range ids {
		delete(r.entries, id)
	}
	delete(r.owners, owner)
	return len(ids)
}
