package server

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"time"
)

// RetryPolicy is exponential backoff with full jitter for the client
// path: attempt, and on a retryable failure sleep a random slice of an
// exponentially growing window before trying again. It is shared by the
// cluster router (per-replica retries for idempotent reads) and the
// smoke/selftest readiness waits, so every retry loop in the system
// backs off the same way instead of hammering a struggling replica in
// lockstep.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries (first attempt included);
	// values < 1 mean one attempt, i.e. no retrying.
	MaxAttempts int
	// BaseDelay seeds the backoff window (default 25ms); the window
	// doubles per attempt up to MaxDelay (default 1s). The actual sleep
	// is uniform in (0, window] — full jitter, so a burst of callers
	// retrying the same dead replica spreads out instead of thundering.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetry is the policy used when a zero RetryPolicy is given.
var DefaultRetry = RetryPolicy{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond, MaxDelay: time.Second}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = DefaultRetry.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetry.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetry.MaxDelay
	}
	return p
}

// Backoff returns the jittered sleep before retry attempt n (0-based
// count of failures so far): uniform in (0, min(BaseDelay<<n, MaxDelay)].
func (p RetryPolicy) Backoff(n int) time.Duration {
	p = p.normalized()
	window := p.BaseDelay << uint(n)
	if window > p.MaxDelay || window <= 0 { // <<-overflow guards included
		window = p.MaxDelay
	}
	return time.Duration(1 + rand.Int63n(int64(window)))
}

// Do runs fn up to MaxAttempts times, sleeping the jittered backoff
// between attempts, until fn succeeds, fn fails terminally (retryable
// returns false), ctx dies, or attempts run out — whichever comes
// first. The last error is returned. retryable nil means Transient.
func (p RetryPolicy) Do(ctx context.Context, retryable func(error) bool, fn func() error) error {
	p = p.normalized()
	if retryable == nil {
		retryable = Transient
	}
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(p.Backoff(attempt - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
		if err = fn(); err == nil || !retryable(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}

// Transient classifies an error as worth retrying: transport failures
// (connection refused/reset — the replica may be restarting) and the
// load-shedding statuses 503 (draining/overload, another replica or a
// later attempt can serve) and 429 (momentary admission pressure).
// Client errors (4xx), stream-integrity failures and context expiry are
// terminal: retrying cannot change them.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status == http.StatusServiceUnavailable || he.Status == http.StatusTooManyRequests
	}
	// Anything that is not an HTTP-level error from the server is a
	// transport failure (dial, reset, EOF mid-handshake): retryable.
	return true
}
