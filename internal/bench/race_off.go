//go:build !race

package bench

// raceBuild is false in normal builds; see race_on.go.
const raceBuild = false
