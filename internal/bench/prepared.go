package bench

import (
	"fmt"
	"time"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

// PreparedPredict measures what prepare-once/execute-many buys on a small
// table: the per-call overhead (parse → bind → cross-optimize, including
// NN translation of the forest — everything except executing the plan)
// and the total latency, for three ways of issuing the same PREDICT query:
//
//   - cold Query: plan cache disabled, full front-half compile per call
//   - warm Query: identical SQL served from the engine plan cache
//   - prepared: Stmt.Query reusing the compiled template directly
//
// The overhead series is the engine-side counterpart of the paper's §5
// observation (ii) that warm session state is where the DBMS wins over a
// standalone runtime: prepared/warm calls cut per-call overhead by well
// over 5× because the compiled plan is session state.
func PreparedPredict(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "PreparedPredict",
		Title:      "prepared/cached execution vs cold compile (random forest, small flights table)",
		PaperShape: "warm session state amortizes optimization across invocations (§5 obs ii)",
	}
	rows, feat, trees, depth := 4000, 30, 16, 8
	if cfg.Quick {
		rows, trees, depth = 2000, 8, 6
	}
	db := cfg.open()
	fl, err := data.GenFlightsWide(db.Catalog(), rows, feat, feat/3, 2000, 23)
	if err != nil {
		return nil, err
	}
	rf := train.FitForest(fl.TrainX, fl.TrainY, train.ForestOptions{
		NumTrees: trees,
		Seed:     3,
		Tree:     train.TreeOptions{MaxDepth: depth, MinLeaf: 10},
	})
	if err := db.StoreModel("delay_rf_prep", &ml.Pipeline{Final: rf, InputColumns: fl.FeatureCols}); err != nil {
		return nil, err
	}
	q := `SELECT p.prob FROM PREDICT(MODEL='delay_rf_prep', DATA=flights_features AS d) WITH (prob FLOAT) AS p WHERE d.f0 > 0`
	opts := raven.DefaultQueryOptions()
	coldOpts := opts
	coldOpts.DisablePlanCache = true
	runs := cfg.Warm + cfg.Runs + 2

	// measure returns mean per-call overhead (compile) and total latency,
	// skipping the first call (session warmup, cache population).
	measure := func(fn func() (*raven.Result, error)) (overhead, total time.Duration, err error) {
		if _, err := fn(); err != nil {
			return 0, 0, err
		}
		for i := 0; i < runs; i++ {
			r, err := fn()
			if err != nil {
				return 0, 0, err
			}
			overhead += r.CompileTime
			total += r.Elapsed
		}
		return overhead / time.Duration(runs), total / time.Duration(runs), nil
	}

	coldOver, coldTotal, err := measure(func() (*raven.Result, error) {
		return db.QueryWithOptions(q, coldOpts)
	})
	if err != nil {
		return nil, err
	}
	warmOver, warmTotal, err := measure(func() (*raven.Result, error) {
		return db.QueryWithOptions(q, opts)
	})
	if err != nil {
		return nil, err
	}
	st, err := db.PrepareWithOptions(q, opts)
	if err != nil {
		return nil, err
	}
	prepOver, prepTotal, err := measure(func() (*raven.Result, error) {
		rows, err := st.Query()
		if err != nil {
			return nil, err
		}
		return rows.Collect()
	})
	if err != nil {
		return nil, err
	}

	t.Add("per-call overhead", "cold Query (no plan cache)", coldOver, "")
	t.Add("per-call overhead", "warm Query (plan cache)", warmOver, "")
	t.Add("per-call overhead", "prepared Stmt.Query", prepOver, "")
	t.Add("total latency", "cold Query (no plan cache)", coldTotal, "")
	t.Add("total latency", "warm Query (plan cache)", warmTotal, "")
	t.Add("total latency", "prepared Stmt.Query", prepTotal, "")

	hits, misses := db.PlanCacheStats()
	// Clamp denominators to the clock granularity: on coarse monotonic
	// clocks a warm call's overhead can measure as 0, and "+Infx" would
	// vacuously pass the >=5x check this table exists to demonstrate.
	ratio := func(num, den time.Duration) float64 {
		if den < time.Nanosecond {
			den = time.Nanosecond
		}
		return float64(num.Nanoseconds()) / float64(den.Nanoseconds())
	}
	t.Rows[0].Note = fmt.Sprintf(
		"prepared overhead %.1fx lower than cold, warm %.1fx lower (plan cache: %d hits, %d misses; %s rows)",
		ratio(coldOver, prepOver), ratio(coldOver, warmOver),
		hits, misses, FmtRows(rows))
	return t, nil
}
