// Package tensor provides the dense float64 tensor type and the kernel
// library underneath the ort graph runtime: GEMM, broadcast elementwise
// ops, activations, reductions, gather and concat. Kernels are written for
// the 2-D (batch × feature) shapes that dominate model scoring, with
// optional intra-op parallelism for the large GEMMs NN translation produces.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: shape, Data: make([]float64, NumElems(shape))}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	if NumElems(shape) != len(data) {
		return nil, fmt.Errorf("tensor: shape %v needs %d elems, got %d", shape, NumElems(shape), len(data))
	}
	return &Tensor{Shape: shape, Data: data}, nil
}

// Scalar builds a 0-d tensor holding x.
func Scalar(x float64) *Tensor { return &Tensor{Shape: []int{}, Data: []float64{x}} }

// NumElems returns the product of the dims.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Len returns the total element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns dimension i, or 1 when out of range (broadcast-friendly).
func (t *Tensor) Dim(i int) int {
	if i < 0 || i >= len(t.Shape) {
		return 1
	}
	return t.Shape[i]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view with a new shape (same element count).
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	// A single -1 dim is inferred, as in ONNX Reshape.
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				return nil, fmt.Errorf("tensor: multiple -1 dims in reshape %v", shape)
			}
			infer = i
		} else {
			n *= d
		}
	}
	out := append([]int(nil), shape...)
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			return nil, fmt.Errorf("tensor: cannot infer dim in reshape %v of %v", shape, t.Shape)
		}
		out[infer] = len(t.Data) / n
	} else if n != len(t.Data) {
		return nil, fmt.Errorf("tensor: reshape %v incompatible with %v", shape, t.Shape)
	}
	return &Tensor{Shape: out, Data: t.Data}, nil
}

// At returns the element at 2-D index (i, j) of a rank-2 tensor.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Shape[1]+j] }

// Set assigns the element at 2-D index (i, j) of a rank-2 tensor.
func (t *Tensor) Set(i, j int, x float64) { t.Data[i*t.Shape[1]+j] = x }

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// parallelThreshold is the work size above which kernels fan out across
// goroutines; below it the goroutine overhead costs more than it saves.
const parallelThreshold = 1 << 15

// parallelFor runs fn over [0,n) split across workers when n*costHint is
// large enough; otherwise it runs inline.
func parallelFor(n, costHint, maxWorkers int, fn func(lo, hi int)) {
	if maxWorkers <= 1 || n*costHint < parallelThreshold {
		fn(0, n)
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes a (m×k) × (k×n) product. threads<=1 forces sequential
// execution; threads==0 uses GOMAXPROCS.
func MatMul(a, b *Tensor, threads int) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul wants rank-2, got %v × %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dims %d != %d", k, k2)
	}
	if threads == 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	out := New(m, n)
	// ikj loop order: streams through b and out rows, friendly to the
	// hardware prefetcher.
	parallelFor(m, k*n, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j := range brow {
					orow[j] += av * brow[j]
				}
			}
		}
	})
	return out, nil
}

// Gemm computes alpha*a×b + beta*c with c broadcast over rows when it is a
// vector, matching the ONNX Gemm contract used by NN translation.
func Gemm(a, b, c *Tensor, alpha, beta float64, threads int) (*Tensor, error) {
	out, err := MatMul(a, b, threads)
	if err != nil {
		return nil, err
	}
	if alpha != 1 {
		for i := range out.Data {
			out.Data[i] *= alpha
		}
	}
	if c == nil || beta == 0 {
		return out, nil
	}
	m, n := out.Shape[0], out.Shape[1]
	switch {
	case c.Len() == n: // bias row vector broadcast over rows
		for i := 0; i < m; i++ {
			row := out.Data[i*n : (i+1)*n]
			for j := range row {
				row[j] += beta * c.Data[j]
			}
		}
	case c.Len() == m*n:
		for i := range out.Data {
			out.Data[i] += beta * c.Data[i]
		}
	case c.Len() == 1:
		for i := range out.Data {
			out.Data[i] += beta * c.Data[0]
		}
	default:
		return nil, fmt.Errorf("tensor: Gemm bias shape %v does not broadcast to (%d,%d)", c.Shape, m, n)
	}
	return out, nil
}

// ewBinary applies fn elementwise with limited broadcasting: identical
// shapes, scalar on either side, or a row vector against a matrix.
func ewBinary(a, b *Tensor, fn func(x, y float64) float64) (*Tensor, error) {
	switch {
	case SameShape(a, b):
		out := &Tensor{Shape: append([]int(nil), a.Shape...), Data: make([]float64, len(a.Data))}
		for i := range a.Data {
			out.Data[i] = fn(a.Data[i], b.Data[i])
		}
		return out, nil
	case b.Len() == 1:
		out := a.Clone()
		y := b.Data[0]
		for i := range out.Data {
			out.Data[i] = fn(out.Data[i], y)
		}
		return out, nil
	case a.Len() == 1:
		out := b.Clone()
		x := a.Data[0]
		for i := range out.Data {
			out.Data[i] = fn(x, out.Data[i])
		}
		return out, nil
	case a.Rank() == 2 && b.Len() == a.Shape[1]:
		// matrix op row-vector, broadcast over rows
		m, n := a.Shape[0], a.Shape[1]
		out := New(m, n)
		for i := 0; i < m; i++ {
			arow := a.Data[i*n : (i+1)*n]
			orow := out.Data[i*n : (i+1)*n]
			for j := range arow {
				orow[j] = fn(arow[j], b.Data[j])
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("tensor: shapes %v and %v do not broadcast", a.Shape, b.Shape)
	}
}

// Add returns a + b with broadcasting.
func Add(a, b *Tensor) (*Tensor, error) {
	return ewBinary(a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns a - b with broadcasting.
func Sub(a, b *Tensor) (*Tensor, error) {
	return ewBinary(a, b, func(x, y float64) float64 { return x - y })
}

// Mul returns a * b elementwise with broadcasting.
func Mul(a, b *Tensor) (*Tensor, error) {
	return ewBinary(a, b, func(x, y float64) float64 { return x * y })
}

// Div returns a / b elementwise with broadcasting.
func Div(a, b *Tensor) (*Tensor, error) {
	return ewBinary(a, b, func(x, y float64) float64 { return x / y })
}

// Greater returns 1.0 where a > b else 0.0, with broadcasting.
func Greater(a, b *Tensor) (*Tensor, error) {
	return ewBinary(a, b, func(x, y float64) float64 {
		if x > y {
			return 1
		}
		return 0
	})
}

// LessOrEqual returns 1.0 where a <= b else 0.0, with broadcasting.
func LessOrEqual(a, b *Tensor) (*Tensor, error) {
	return ewBinary(a, b, func(x, y float64) float64 {
		if x <= y {
			return 1
		}
		return 0
	})
}

// Equal returns 1.0 where a == b else 0.0, with broadcasting.
func Equal(a, b *Tensor) (*Tensor, error) {
	return ewBinary(a, b, func(x, y float64) float64 {
		if x == y {
			return 1
		}
		return 0
	})
}

// Relu applies max(0, x) elementwise.
func Relu(a *Tensor) *Tensor {
	out := a.Clone()
	for i, x := range out.Data {
		if x < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := a.Clone()
	for i, x := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-x))
	}
	return out
}

// Tanh applies tanh elementwise.
func Tanh(a *Tensor) *Tensor {
	out := a.Clone()
	for i, x := range out.Data {
		out.Data[i] = math.Tanh(x)
	}
	return out
}

// Exp applies e^x elementwise.
func Exp(a *Tensor) *Tensor {
	out := a.Clone()
	for i, x := range out.Data {
		out.Data[i] = math.Exp(x)
	}
	return out
}

// Softmax normalizes each row of a rank-2 tensor into a distribution.
func Softmax(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: Softmax wants rank-2, got %v", a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		mx := math.Inf(-1)
		for _, x := range row {
			if x > mx {
				mx = x
			}
		}
		sum := 0.0
		orow := out.Data[i*n : (i+1)*n]
		for j, x := range row {
			e := math.Exp(x - mx)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out, nil
}

// ArgMax returns per-row argmax of a rank-2 tensor as an (m×1) tensor.
func ArgMax(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: ArgMax wants rank-2, got %v", a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(m, 1)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		best, bx := 0, row[0]
		for j := 1; j < n; j++ {
			if row[j] > bx {
				best, bx = j, row[j]
			}
		}
		out.Data[i] = float64(best)
	}
	return out, nil
}

// ReduceSumAxis1 sums each row of a rank-2 tensor into an (m×1) tensor.
func ReduceSumAxis1(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: ReduceSumAxis1 wants rank-2, got %v", a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(m, 1)
	for i := 0; i < m; i++ {
		s := 0.0
		for _, x := range a.Data[i*n : (i+1)*n] {
			s += x
		}
		out.Data[i] = s
	}
	return out, nil
}

// GatherCols picks the listed columns from a rank-2 tensor.
func GatherCols(a *Tensor, cols []int) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: GatherCols wants rank-2, got %v", a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(m, len(cols))
	for _, c := range cols {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("tensor: GatherCols index %d out of range [0,%d)", c, n)
		}
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*len(cols) : (i+1)*len(cols)]
		for j, c := range cols {
			orow[j] = arow[c]
		}
	}
	return out, nil
}

// ConcatCols concatenates rank-2 tensors with equal row counts along axis 1.
func ConcatCols(ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("tensor: ConcatCols of nothing")
	}
	m := ts[0].Dim(0)
	n := 0
	for _, t := range ts {
		if t.Rank() != 2 || t.Shape[0] != m {
			return nil, fmt.Errorf("tensor: ConcatCols shape mismatch %v", t.Shape)
		}
		n += t.Shape[1]
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		off := 0
		orow := out.Data[i*n : (i+1)*n]
		for _, t := range ts {
			w := t.Shape[1]
			copy(orow[off:off+w], t.Data[i*w:(i+1)*w])
			off += w
		}
	}
	return out, nil
}

// OneHot expands an (m×1) tensor of small non-negative integer codes into an
// m×depth indicator matrix. Out-of-range codes produce an all-zero row
// (matching scikit-learn's handle_unknown="ignore").
func OneHot(a *Tensor, depth int) (*Tensor, error) {
	if a.Rank() != 2 || a.Shape[1] != 1 {
		return nil, fmt.Errorf("tensor: OneHot wants (m×1), got %v", a.Shape)
	}
	m := a.Shape[0]
	out := New(m, depth)
	for i := 0; i < m; i++ {
		c := int(a.Data[i])
		if c >= 0 && c < depth {
			out.Data[i*depth+c] = 1
		}
	}
	return out, nil
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: Transpose wants rank-2, got %v", a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out, nil
}
