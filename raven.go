// Package raven is a Go reproduction of "Extending Relational Query
// Processing with ML Inference" (Karanasos et al., CIDR 2020): an
// in-memory relational engine with models stored in the database, a
// unified intermediate representation mixing relational and ML operators,
// a cross optimizer (predicate-based model pruning, model-projection
// pushdown, model inlining, NN translation, model clustering, model/query
// splitting), and an in-process tensor runtime with session caching plus
// out-of-process and containerized fallbacks.
//
// # Morsel-parallel execution
//
// Query execution is morsel-parallel: a table scan under per-row operators
// (filter, project, PREDICT) compiles into a single exchange whose workers
// claim fixed-size row morsels from a shared atomic cursor, run the whole
// operator chain — inference included — on each morsel, and merge results
// back in scan order. A parallel plan therefore returns exactly the rows,
// in exactly the order, the serial plan would. Inference sessions come
// from a contention-friendly cache that compiles each model at most once
// under per-key locks, so workers and concurrent queries never serialize
// behind one compile.
//
// The engine-wide degree of parallelism defaults to GOMAXPROCS and is set
// at Open time with WithParallelism (WithMorselSize tunes the work unit);
// QueryOptions.Parallelism overrides it per query, with 1 forcing serial
// execution. Small inputs (below QueryOptions.ParallelThresholdRows,
// default 50k rows) run serially regardless, since fan-out costs more than
// it saves.
//
// # Serving API
//
// The serving surface follows the production database conventions:
// prepare-once/execute-many, streaming results, and cancellable queries.
//
//   - Prepare compiles a statement once (parse → bind → unified IR →
//     cross optimization) into a Stmt whose Query calls reuse the plan and
//     bind @var parameters per execution. An engine-level plan cache —
//     keyed by SQL text, option fingerprint and catalog version — also
//     makes repeated ad-hoc Query calls skip recompilation; DDL and model
//     stores bump the catalog version, invalidating stale plans.
//   - QueryContext (and Stmt.QueryContext) returns a streaming Rows
//     (Next/Scan/Err/Close) and honors context cancellation and deadlines
//     throughout execution: morsel-exchange workers, pipeline breakers and
//     inference predictors all observe ctx and shut down cleanly.
//   - Query and QueryWithOptions remain as thin materializing wrappers
//     returning a Result (Rows.Collect under the hood), with latency split
//     into CompileTime and ExecTime.
//
// Typical use:
//
//	db := raven.Open()
//	db.Exec(`CREATE TABLE patients (id INT PRIMARY KEY, age FLOAT, bp FLOAT)`)
//	db.StoreModel("los", pipeline)                  // or StoreModelScript
//	st, err := db.Prepare(`SELECT p.score FROM
//	    PREDICT(MODEL='los', DATA=patients AS d) WITH (score FLOAT) AS p
//	    WHERE d.bp > @minbp`)
//	rows, err := st.QueryContext(ctx, raven.P("minbp", "120"))
//	defer rows.Close()
//	for rows.Next() {
//	    var score float64
//	    _ = rows.Scan(&score)
//	}
package raven

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"raven/internal/codegen"
	"raven/internal/exec"
	"raven/internal/expr"
	"raven/internal/ir"
	"raven/internal/ml"
	"raven/internal/plan"
	"raven/internal/pyanal"
	"raven/internal/relopt"
	"raven/internal/rescache"
	"raven/internal/rt"
	"raven/internal/sched"
	"raven/internal/sql"
	"raven/internal/storage"
	"raven/internal/types"
	"raven/internal/wal"
	"raven/internal/xopt"
)

// Mode re-exports the runtime execution modes for model invocations.
type Mode = rt.Mode

// Execution modes for MLD model stages.
const (
	// ModeInProcess interprets classical pipelines inside the engine.
	ModeInProcess = rt.ModeInProcess
	// ModeInProcessNN compiles pipelines to tensor graphs run in-process
	// with session caching (the Raven PREDICT path).
	ModeInProcessNN = rt.ModeInProcessNN
	// ModeOutOfProcess scores through an external-runtime boundary
	// (startup latency + serialization), like sp_execute_external_script.
	ModeOutOfProcess = rt.ModeOutOfProcess
	// ModeContainer scores over a localhost REST endpoint.
	ModeContainer = rt.ModeContainer
)

// QueryOptions tunes one query's optimization and execution.
type QueryOptions struct {
	// CrossOptimize enables the cross optimizer (default set of rules).
	CrossOptimize bool
	// UseStatistics derives pruning predicates from table statistics.
	UseStatistics bool
	// ModelQuerySplitting enables the splitting transformation.
	ModelQuerySplitting bool
	// DisableInlining / DisableNNTranslation / DisablePruning /
	// DisableProjectionPushdown ablate single rules.
	DisableInlining           bool
	DisableNNTranslation      bool
	DisablePruning            bool
	DisableProjectionPushdown bool
	// UseGPU runs LA stages on the simulated accelerator.
	UseGPU bool
	// Mode executes remaining MLD stages (default ModeInProcess).
	Mode Mode
	// Parallelism is the morsel-exchange worker count; 0 = engine default
	// (GOMAXPROCS unless overridden at Open), 1 = sequential.
	Parallelism int
	// MorselSize is rows per parallel work unit; 0 = engine default.
	MorselSize int
	// ParallelThresholdRows gates parallel execution by scan size; 0 =
	// default 50k rows (set 1 to force parallelism on small tables).
	ParallelThresholdRows int
	// DisableSessionCache compiles a fresh session per query (the
	// standalone-runtime behaviour in Fig 3).
	DisableSessionCache bool
	// DisablePlanCache forces a full recompile (parse → bind → optimize)
	// on every call — the cold-query baseline the PreparedPredict bench
	// measures against. It also makes the call ineligible for the result
	// cache: a caller asking for the cold path means it.
	DisablePlanCache bool
	// NoResultCache makes this call bypass the result cache entirely: no
	// lookup, no population. The wire protocol's per-request no_cache
	// flag maps here. Like Tenant/Priority it never affects the compiled
	// plan, so it is absent from the plan-cache key.
	NoResultCache bool
	// Tenant attributes this query's admission to a tenant: per-tenant
	// quotas (WithTenantQuota) and per-tenant stats apply. Empty means
	// the engine's default tenant. A context tag (ContextWithTenant)
	// overrides it per call. Tenant and Priority only shape admission —
	// they never affect the compiled plan, so they are deliberately
	// absent from the plan-cache key and cached plans are shared across
	// tenants.
	Tenant string
	// Priority orders waiting admissions (higher first; see
	// sched aging for the starvation guard). 0 is the default class.
	Priority int
}

// DefaultQueryOptions is the engine's standard configuration: all
// cross-optimizations on, in-process execution, parallel scans.
func DefaultQueryOptions() QueryOptions {
	return QueryOptions{CrossOptimize: true, Mode: rt.ModeInProcess, Parallelism: 0}
}

// Result is a completed, fully materialized query — the compatibility
// wrapper over the streaming Rows API (it is what Rows.Collect returns).
type Result struct {
	Batch *types.Batch
	// AppliedRules lists the cross-optimizer rules that fired.
	AppliedRules []string
	// CompileTime is the time spent producing the executable plan: parse,
	// bind, cross-optimize and lowering. Near zero on plan-cache hits and
	// prepared re-executions — the observable benefit of the plan cache.
	CompileTime time.Duration
	// ExecTime is the time spent executing the plan and materializing rows.
	ExecTime time.Duration
	// Elapsed is end-to-end latency (CompileTime + ExecTime).
	Elapsed time.Duration
}

// DB is an embedded Raven engine instance.
type DB struct {
	mu      sync.Mutex
	catalog *storage.Catalog
	runtime *rt.Runtime
	// vars holds engine-wide session variables set by Exec DECLARE.
	// DECLAREs inside a Query or Prepare script are statement-scoped: they
	// overlay these for that statement only and never leak back.
	vars  map[string]string
	plans *planCache
	// compiles counts full front-half compilations (parse → bind →
	// optimize); prepared re-executions and plan-cache hits don't move it.
	compiles atomic.Uint64
	// DefaultParallelism is the morsel-exchange worker count for queries
	// that leave QueryOptions.Parallelism at 0. Defaults to GOMAXPROCS.
	DefaultParallelism int
	// MorselSize is the engine-wide rows-per-morsel for parallel plans; 0
	// uses the executor default.
	MorselSize int
	// tuner adapts morsel, serial-scan and inference batch sizes from
	// table statistics and observed per-morsel service times; nil unless
	// WithAdaptiveMorsels was given.
	tuner *exec.Tuner

	// sched is the admission controller gating Query/Stmt.Query; nil
	// (the default) admits everything immediately. Built at Open time
	// from the WithMaxConcurrentQueries/WithMaxWorkerSlots/
	// WithSchedulerQueue options.
	sched     *sched.Scheduler
	schedOpts sched.Options

	// results is the semantic result cache; nil (the default) unless
	// WithResultCache was given. Hits are served before admission, so
	// they cost zero scheduler slots; resHitsByTenant attributes them
	// anyway (the scheduler never sees them).
	results         *rescache.Cache[*resultEntry]
	resHitMu        sync.Mutex
	resHitsByTenant map[string]uint64

	// negCache remembers recent compile failures (parse/bind — the
	// errors a wire front end maps to 4xx) so a client hammering the
	// same broken query is refused from memory instead of re-parsing
	// every time. Entries are tiny (an error string), capped at
	// maxNegEntries, expire after negCacheTTL and are dropped the moment
	// the catalog moves — DDL can turn the error into a success.
	negMu    sync.Mutex
	negCache map[string]negEntry
	negHits  uint64

	// durable is the on-disk storage backend; nil (the default) keeps the
	// engine fully in-memory. Configured at Open by WithDataDir.
	durable     *storage.Durable
	dataDir     string
	fsyncPolicy string
	segmentRows int
}

// Admission failures, re-exported so API consumers can map them to
// load-shedding responses without importing internal packages.
var (
	// ErrQueueFull: the scheduler is saturated and its queue is at
	// capacity — the query was rejected without waiting. Retry later.
	ErrQueueFull = sched.ErrQueueFull
	// ErrQueueTimeout: the query waited its full queue timeout without
	// being admitted.
	ErrQueueTimeout = sched.ErrQueueTimeout
	// ErrDraining: the engine is shutting down and admits no new queries.
	ErrDraining = sched.ErrDraining
	// ErrTenantQuota: the query's tenant is declared with a zero quota
	// (administratively shut off) and was rejected without queueing.
	ErrTenantQuota = sched.ErrTenantQuota
)

// TenantQuota is one tenant's admission budget (see WithTenantQuota),
// aliased so API consumers can name it without importing internal
// packages.
type TenantQuota = sched.TenantQuota

// TenantStats is one tenant's slice of the scheduler counters (see
// SchedulerStats.Tenants), aliased for the same reason.
type TenantStats = sched.TenantStats

// Option configures an engine at Open time.
type Option func(*DB)

// WithParallelism sets the engine's default degree of parallelism (the
// morsel-exchange worker count). Values < 1 are ignored, keeping the
// GOMAXPROCS default; 1 makes the engine serial by default.
func WithParallelism(n int) Option {
	return func(db *DB) {
		if n >= 1 {
			db.DefaultParallelism = n
		}
	}
}

// WithMorselSize sets the engine-wide rows-per-morsel for parallel plans.
// Values < 1 are ignored.
func WithMorselSize(n int) Option {
	return func(db *DB) {
		if n >= 1 {
			db.MorselSize = n
		}
	}
}

// WithAdaptiveMorsels turns on adaptive batch sizing: the engine tunes
// rows-per-morsel from table cardinality and the per-morsel service times
// it observes, sizes serial scan batches to the scan, and chunks
// interpreted inference to the model's feature width. Explicit sizes
// still win: a query (or engine) MorselSize overrides the tuned morsel
// size. The tuner's current estimates appear in Stats().Adaptive.
func WithAdaptiveMorsels() Option {
	return func(db *DB) {
		db.tuner = exec.NewTuner()
	}
}

// WithMaxConcurrentQueries enables admission control: at most n queries
// execute at once; the rest queue (see WithSchedulerQueue) or fail with
// ErrQueueFull. Values < 1 are ignored, leaving admission unlimited.
func WithMaxConcurrentQueries(n int) Option {
	return func(db *DB) {
		if n >= 1 {
			db.schedOpts.MaxConcurrent = n
		}
	}
}

// WithMaxWorkerSlots bounds the total morsel-exchange worker slots
// across all running queries, where each query costs its effective DOP.
// The bound is enforced, not just accounted: a query requesting more
// parallelism than the whole budget is capped to it at lowering time,
// so a wire client asking for DOP 64 against an 8-slot engine runs
// (alone) at DOP 8 instead of spawning 64 workers under an 8-slot
// charge. It only takes effect together with WithMaxConcurrentQueries.
func WithMaxWorkerSlots(n int) Option {
	return func(db *DB) {
		if n >= 1 {
			db.schedOpts.MaxSlots = n
		}
	}
}

// WithSchedulerQueue sizes the admission queue: up to depth queries wait
// for a slot, each for at most timeout (0 = until its context expires).
// It only takes effect together with WithMaxConcurrentQueries.
func WithSchedulerQueue(depth int, timeout time.Duration) Option {
	return func(db *DB) {
		if depth >= 0 {
			db.schedOpts.QueueDepth = depth
		}
		if timeout > 0 {
			db.schedOpts.QueueTimeout = timeout
		}
	}
}

// WithTenantQuota declares a tenant's admission budget: at most
// maxConcurrent of its queries run at once (0 shuts the tenant off —
// its queries fail with ErrTenantQuota), and maxSlots bounds its total
// worker slots (0 = only the global WithMaxWorkerSlots budget applies;
// like the global budget it is enforced at lowering, so a tenant's
// query never spawns more workers than its quota charges). Undeclared
// tenants share the global budget. It only takes effect together with
// WithMaxConcurrentQueries.
func WithTenantQuota(tenant string, maxConcurrent, maxSlots int) Option {
	return func(db *DB) {
		if tenant == "" {
			return
		}
		if maxConcurrent < 0 {
			maxConcurrent = 0
		}
		if maxSlots < 0 {
			maxSlots = 0
		}
		if db.schedOpts.Tenants == nil {
			db.schedOpts.Tenants = make(map[string]sched.TenantQuota)
		}
		db.schedOpts.Tenants[tenant] = sched.TenantQuota{MaxConcurrent: maxConcurrent, MaxSlots: maxSlots}
	}
}

// WithDefaultTenant names the tenant untagged work is attributed to
// (default "default"). Declaring a quota for that name then bounds all
// untagged traffic.
func WithDefaultTenant(name string) Option {
	return func(db *DB) {
		if name != "" {
			db.schedOpts.DefaultTenant = name
		}
	}
}

// tenantCtxKey carries a per-call admission tag in a context.
type tenantCtxKey struct{}

// ContextWithTenant tags every engine call made under the returned
// context with a (tenant, priority) admission identity. It is the
// per-call override — it wins over QueryOptions.Tenant/Priority — and
// the only way to tag ExecContext scripts, which take no options. Wire
// front ends use it to attribute work from an X-Raven-Tenant header.
func ContextWithTenant(ctx context.Context, tenant string, priority int) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, sched.Tag{Tenant: tenant, Priority: priority})
}

// tagFor resolves the admission tag for one call: context tag first
// (the per-call override), then QueryOptions, then the default tenant
// (resolved inside the scheduler).
func (db *DB) tagFor(ctx context.Context, opts QueryOptions) sched.Tag {
	if t, ok := ctx.Value(tenantCtxKey{}).(sched.Tag); ok {
		return t
	}
	return sched.Tag{Tenant: opts.Tenant, Priority: opts.Priority}
}

// WithDataDir makes the engine durable: every committed write is logged
// to a write-ahead log under dir, table tails seal into on-disk columnar
// segments, and Open recovers whatever a previous process — cleanly shut
// down or killed — committed there. Without it the engine is fully
// in-memory, exactly as before.
func WithDataDir(dir string) Option {
	return func(db *DB) { db.dataDir = dir }
}

// WithFsync selects the WAL sync policy for a durable engine: "always"
// (default; an acknowledged write survives power loss), "interval"
// (background sync; survives process death), or "off" (sync only at
// checkpoint/close). Ignored without WithDataDir; an unknown spelling
// fails Open.
func WithFsync(policy string) Option {
	return func(db *DB) { db.fsyncPolicy = policy }
}

// WithSegmentRows sets how many tail rows accumulate before a durable
// table seals them into an immutable segment file (default 65536).
// Smaller values bound memory: only the tail lives in RAM, so a table
// can exceed it. Ignored without WithDataDir; values < 1 are ignored.
func WithSegmentRows(n int) Option {
	return func(db *DB) {
		if n >= 1 {
			db.segmentRows = n
		}
	}
}

// Open creates an engine. In-memory (the default) it cannot fail; with
// WithDataDir it opens or recovers the data directory, so corrupt state
// or I/O problems surface here, before any query runs.
func Open(opts ...Option) (*DB, error) {
	db := &DB{
		runtime:            rt.NewRuntime(),
		vars:               make(map[string]string),
		plans:              newPlanCache(defaultPlanCacheSize),
		DefaultParallelism: runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(db)
	}
	if db.dataDir != "" {
		dopts := storage.DurableOptions{SegmentRows: db.segmentRows}
		if db.fsyncPolicy != "" {
			p, err := wal.ParsePolicy(db.fsyncPolicy)
			if err != nil {
				return nil, err
			}
			dopts.Fsync = p
		}
		c, d, err := storage.OpenDurable(db.dataDir, dopts)
		if err != nil {
			return nil, err
		}
		db.catalog = c
		db.durable = d
	} else {
		db.catalog = storage.NewCatalog()
	}
	if db.schedOpts.MaxConcurrent > 0 {
		db.sched = sched.New(db.schedOpts)
	}
	return db, nil
}

// MustOpen is Open for callers that cannot meaningfully handle an open
// error (tests, examples, in-memory engines — where Open never fails).
func MustOpen(opts ...Option) *DB {
	db, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return db
}

// Close shuts a durable engine down cleanly: a final checkpoint folds
// the WAL into segments and the manifest, so the next Open replays
// nothing. In-memory engines have nothing to close; Close is a no-op.
func (db *DB) Close() error {
	if db.durable == nil {
		return nil
	}
	return db.durable.Close(true)
}

// Abort drops a durable engine without syncing or checkpointing — the
// crash-simulation hook recovery tests and benchmarks use to model
// kill -9 in-process. No-op for in-memory engines.
func (db *DB) Abort() error {
	if db.durable == nil {
		return nil
	}
	return db.durable.Abort()
}

// Checkpoint forces a durable checkpoint now (seal tails, rotate the
// WAL, rewrite the manifest). No-op without WithDataDir.
func (db *DB) Checkpoint() error {
	if db.durable == nil {
		return nil
	}
	return db.durable.Checkpoint()
}

// QueryScheduler is the admission controller type behind DB.Scheduler,
// aliased so API consumers can name it without importing internal
// packages (the import restriction is on paths, not identities).
type QueryScheduler = sched.Scheduler

// SchedulerStats is the admission scheduler's counter snapshot (see
// Stats.Scheduler), aliased for the same nameability reason.
type SchedulerStats = sched.Stats

// Scheduler exposes the admission controller (nil when admission control
// is off) for stats and graceful drain.
func (db *DB) Scheduler() *QueryScheduler { return db.sched }

// SchedulerLoad is the scheduler's cheap load signal (see sched.Load),
// aliased so API consumers can name it without importing internal
// packages.
type SchedulerLoad = sched.Load

// SchedulerLoad snapshots the admission controller's live gauges —
// queue depth above all — without the per-tenant allocation a full
// Stats call pays. The zero Load is returned when admission control is
// off (an unscheduled engine is never saturated). Health probes use it.
func (db *DB) SchedulerLoad() SchedulerLoad {
	if db.sched == nil {
		return SchedulerLoad{}
	}
	return db.sched.Load()
}

// CatalogVersion is the catalog's monotonic version counter, bumped on
// every DDL, unique-key change and model store. Cluster routers read it
// back after replicating side effects to detect replica divergence.
func (db *DB) CatalogVersion() uint64 { return db.catalog.Version() }

// effectiveParallelism is the DOP a query actually lowers with: the
// requested (or engine default) DOP, capped by the scheduler's worker
// slot budget and — when the call's tenant is declared with a slot
// quota — by that tenant budget. It is also exactly what admission
// charges, so the charged cost and the spawned worker count agree by
// construction. The cap is a worst-case bound — small scans below
// ParallelThresholdRows execute serially anyway — so admission stays
// conservative under load.
func (db *DB) effectiveParallelism(ctx context.Context, opts QueryOptions) int {
	par := opts.Parallelism
	if par == 0 {
		par = db.DefaultParallelism
	}
	if db.sched != nil {
		if ms := db.schedOpts.MaxSlots; ms > 0 && par > ms {
			par = ms
		}
		if q, ok := db.schedOpts.QuotaFor(db.tagFor(ctx, opts).Tenant); ok && q.MaxSlots > 0 && par > q.MaxSlots {
			par = q.MaxSlots
		}
	}
	return par
}

// admit passes one query through admission control, charged at its
// effective DOP and attributed to the call's (tenant, priority) tag.
// The returned release is non-nil even without a scheduler so callers
// can defer it blindly; Rows takes ownership of it on success (released
// at Close).
func (db *DB) admit(ctx context.Context, opts QueryOptions) (func(), error) {
	return db.admitN(ctx, db.effectiveParallelism(ctx, opts), opts)
}

// admitN acquires an admission slot of explicit cost — cost 1 for the
// single-threaded front-half work (Exec scripts, Prepare compiles). The
// tag still comes from opts/ctx, so even DDL scripts and compiles bill
// to their tenant.
func (db *DB) admitN(ctx context.Context, cost int, opts QueryOptions) (func(), error) {
	if db.sched == nil {
		return func() {}, nil
	}
	return db.sched.AcquireTag(ctx, cost, db.tagFor(ctx, opts))
}

// Drain stops admitting queries and waits for in-flight ones to finish
// (or ctx to expire). Without admission control it is a no-op: there is
// no registry of in-flight queries to wait on.
func (db *DB) Drain(ctx context.Context) error {
	if db.sched == nil {
		return nil
	}
	return db.sched.Drain(ctx)
}

// Catalog exposes the table catalog (for generators and tools).
func (db *DB) Catalog() *storage.Catalog { return db.catalog }

// Runtime exposes the inference runtime (session cache, providers).
func (db *DB) Runtime() *rt.Runtime { return db.runtime }

// Exec runs DDL/DML statements (CREATE TABLE, DROP TABLE, INSERT,
// DECLARE). Multiple statements may be separated by semicolons; SELECTs
// are rejected here — use Query.
func (db *DB) Exec(script string) error {
	return db.ExecContext(context.Background(), script)
}

// ExecContext is Exec under a context: cancellation or deadline expiry
// is observed between statements (a single statement is not
// interrupted mid-flight), so a long INSERT script stops once its
// caller — e.g. a disconnected wire client — is gone. With admission
// control enabled the script runs under a cost-1 slot, like every other
// work the engine does for a caller; note a caller already holding a
// slot (an open Rows) on a fully saturated engine will queue here.
func (db *DB) ExecContext(ctx context.Context, script string) error {
	release, err := db.admitN(ctx, 1, QueryOptions{})
	if err != nil {
		return err
	}
	defer release()
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return err
	}
	// Sweep stale plan/result-cache entries once the script is done (even
	// a partially-applied one changed the catalog), so a DROP TABLE does
	// not leave cached plans pinning the dropped table's data.
	ver := db.catalog.Version()
	defer func() {
		if db.catalog.Version() != ver {
			db.sweepStaleCaches()
		}
	}()
	for _, st := range stmts {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := db.execOne(st); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) execOne(st sql.Statement) error {
	switch x := st.(type) {
	case *sql.CreateTableStmt:
		t := storage.NewTable(x.Name, types.NewSchema(x.Cols...))
		if err := db.catalog.AddTable(t); err != nil {
			return err
		}
		if x.PrimaryKey != "" {
			if err := db.catalog.SetUniqueKey(x.Name, x.PrimaryKey); err != nil {
				return err
			}
		}
		return nil
	case *sql.DropTableStmt:
		return db.catalog.DropTable(x.Name)
	case *sql.InsertStmt:
		return db.execInsert(x)
	case *sql.DeclareStmt:
		db.mu.Lock()
		db.vars[x.Name] = x.Value
		db.mu.Unlock()
		return nil
	case *sql.SelectStmt:
		return fmt.Errorf("raven: use Query for SELECT statements")
	default:
		return fmt.Errorf("raven: unsupported statement %T", st)
	}
}

func (db *DB) execInsert(x *sql.InsertStmt) error {
	t, err := db.catalog.Table(x.Table)
	if err != nil {
		return err
	}
	sch := t.Schema()
	// Rows of one INSERT statement land as one append — and, on a
	// durable engine, one WAL record. Semantics stay row-at-a-time: a
	// bad row mid-statement still applies the valid prefix before it
	// errors, exactly as when rows were appended one by one.
	b := types.NewBatch(sch)
	flush := func() error {
		if b.Len() == 0 {
			return nil
		}
		return t.AppendBatch(b)
	}
	for _, row := range x.Rows {
		if len(row) != sch.Len() {
			if err := flush(); err != nil {
				return err
			}
			return fmt.Errorf("raven: INSERT row has %d values, table %s has %d columns", len(row), x.Table, sch.Len())
		}
		vals := make([]any, len(row))
		for i, e := range row {
			v, err := literalValue(e, sch.Columns[i].Type)
			if err != nil {
				if ferr := flush(); ferr != nil {
					return ferr
				}
				return fmt.Errorf("raven: INSERT into %s column %s: %w", x.Table, sch.Columns[i].Name, err)
			}
			vals[i] = v
		}
		if err := b.AppendRow(vals...); err != nil {
			return err
		}
	}
	return flush()
}

func literalValue(e sql.Expr, want types.DataType) (any, error) {
	switch v := e.(type) {
	case *sql.NumLit:
		switch want {
		case types.Int:
			if v.IsInt {
				return v.I, nil
			}
			return int64(v.F), nil
		case types.Float:
			if v.IsInt {
				return float64(v.I), nil
			}
			return v.F, nil
		case types.Bool:
			if v.IsInt {
				return v.I != 0, nil
			}
			return v.F != 0, nil
		}
		return nil, fmt.Errorf("numeric value for %v column", want)
	case *sql.StrLit:
		if want != types.String {
			return nil, fmt.Errorf("string value for %v column", want)
		}
		return v.S, nil
	case *sql.BoolLitE:
		if want != types.Bool {
			return nil, fmt.Errorf("bool value for %v column", want)
		}
		return v.B, nil
	default:
		return nil, fmt.Errorf("INSERT values must be literals, got %T", e)
	}
}

// StoreModel stores a fitted pipeline under name (versioned,
// transactional). Subsequent queries invoke it via PREDICT(MODEL='name').
func (db *DB) StoreModel(name string, p *ml.Pipeline) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("raven: model %q: %w", name, err)
	}
	blob, err := ml.Marshal(p)
	if err != nil {
		return err
	}
	if err := db.catalog.Models.PutModel(name, "gob-pipeline", blob, nil); err != nil {
		return err
	}
	// A new version invalidates any cached inference session, and the
	// catalog bump invalidates every compiled plan that embedded the old
	// model (inlined trees, translated tensor graphs).
	if m, err := db.catalog.Models.Latest(name); err == nil {
		db.runtime.Cache.Invalidate(m.Hash)
	}
	db.catalog.BumpVersion()
	db.sweepStaleCaches()
	return nil
}

// StoreModelContext is StoreModel under a context: with admission
// control enabled the store runs under a cost-1 slot billed to the
// context's tenant tag (ContextWithTenant), so wire-replicated model
// stores cannot bypass the scheduler any more than DDL scripts can.
func (db *DB) StoreModelContext(ctx context.Context, name string, p *ml.Pipeline) error {
	release, err := db.admitN(ctx, 1, QueryOptions{})
	if err != nil {
		return err
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return err
	}
	return db.StoreModel(name, p)
}

// StoreModelScript statically analyzes a Python pipeline script (paper
// §3.2), fits it on the provided training sample, and stores the result.
// The returned pipeline is also handed back for inspection.
func (db *DB) StoreModelScript(name, script string, trainX ml.Matrix, trainY []float64, seed int64) (*ml.Pipeline, error) {
	spec, err := pyanal.Analyze(script)
	if err != nil {
		return nil, err
	}
	pipe, err := spec.Fit(trainX, trainY, seed)
	if err != nil {
		return nil, err
	}
	if err := db.StoreModel(name, pipe); err != nil {
		return nil, err
	}
	return pipe, nil
}

// LoadModel fetches the latest stored version of a pipeline.
func (db *DB) LoadModel(name string) (*ml.Pipeline, error) {
	m, err := db.catalog.Models.Latest(name)
	if err != nil {
		return nil, err
	}
	return ml.Unmarshal(m.Bytes)
}

// Query parses, binds, optimizes and executes a SELECT (optionally with
// PREDICT), with default options, materializing the result. It is the
// compatibility wrapper over QueryContext + Rows.Collect.
func (db *DB) Query(q string) (*Result, error) {
	return db.QueryWithOptions(q, DefaultQueryOptions())
}

// QueryWithOptions runs a SELECT under explicit optimization/execution
// options, materializing the result.
func (db *DB) QueryWithOptions(q string, opts QueryOptions) (*Result, error) {
	rows, err := db.QueryContextWithOptions(context.Background(), q, opts)
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}

// QueryContext compiles (or fetches from the plan cache) and executes a
// SELECT with default options, streaming the result. Cancellation or
// deadline expiry on ctx stops execution promptly — exchange workers,
// pipeline breakers and predictors all observe it — and surfaces as
// ctx.Err() from Rows.
func (db *DB) QueryContext(ctx context.Context, q string) (*Rows, error) {
	return db.QueryContextWithOptions(ctx, q, DefaultQueryOptions())
}

// QueryContextWithOptions is QueryContext under explicit options. With
// admission control enabled (WithMaxConcurrentQueries) the call blocks
// in the scheduler queue until admitted — compilation included, since
// cross-optimization (NN translation, inlining) is itself CPU-heavy —
// and the slot is held until Rows.Close.
func (db *DB) QueryContextWithOptions(ctx context.Context, q string, opts QueryOptions) (*Rows, error) {
	start := time.Now()
	vars := db.varsSnapshot()
	// The result cache is consulted before admission: a hit costs zero
	// scheduler slots, and a miss makes this call the flight leader other
	// concurrent identical calls wait on instead of queueing themselves.
	var fl *rescache.Flight[*resultEntry]
	var key string
	if db.resultCacheEligible(ctx, opts, q) {
		key = db.resultKey(q, opts, false, vars, nil)
		if nerr := db.negLookup(key); nerr != nil {
			return nil, nerr
		}
		rows, hit, flight, err := db.resultLookup(ctx, key, opts, start)
		if hit || err != nil {
			return rows, err
		}
		fl = flight
	}
	release, err := db.admit(ctx, opts)
	if err != nil {
		fl.Cancel()
		return nil, err
	}
	// Undeclared @vars fail inside the binder (AllowParams is off for the
	// ad-hoc surface), with an error pointing at DECLARE/Prepare.
	tpl, err := db.planFor(q, opts, vars, false)
	if err != nil {
		release()
		fl.Cancel()
		db.noteNegative(key, err)
		return nil, err
	}
	op, err := db.lower(ctx, tpl.graph, tpl.sessionKey, opts)
	if err != nil {
		release()
		fl.Cancel()
		return nil, err
	}
	return leaderRows(ctx, db, op, fl, tpl, start, release)
}

// PlanCacheStats returns the plan cache's cumulative (hits, misses).
// DB.Stats carries the fuller picture (size, capacity, evictions).
func (db *DB) PlanCacheStats() (hits, misses uint64) {
	i := db.plans.info()
	return i.Hits, i.Misses
}

// PlanCacheInfo describes the engine plan cache for stats endpoints.
type PlanCacheInfo struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to make room (LRU); Invalidations
	// counts entries dropped because a catalog change (DDL, model store)
	// made them stale.
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Size          int    `json:"size"`
	Capacity      int    `json:"capacity"`
}

// SessionCacheInfo describes the inference-session cache.
type SessionCacheInfo struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// Stats is the consolidated engine statistics snapshot served by
// ravenserved's /stats endpoint.
type Stats struct {
	PlanCache    PlanCacheInfo    `json:"plan_cache"`
	SessionCache SessionCacheInfo `json:"session_cache"`
	// ResultCache is nil unless the engine was opened WithResultCache.
	ResultCache *ResultCacheInfo `json:"result_cache,omitempty"`
	// Scheduler is nil when admission control is off.
	Scheduler *SchedulerStats `json:"scheduler,omitempty"`
	// Adaptive is nil unless the engine was opened WithAdaptiveMorsels.
	Adaptive *AdaptiveStats `json:"adaptive,omitempty"`
	// Storage is nil unless the engine was opened WithDataDir.
	Storage *StorageStats `json:"storage,omitempty"`
	// Compiles counts full front-half compilations since Open.
	Compiles       uint64 `json:"compiles"`
	CatalogVersion uint64 `json:"catalog_version"`
}

// StorageStats is the durable backend's snapshot (see Stats.Storage),
// aliased so API consumers can name it without importing internal
// packages.
type StorageStats = storage.DurableStats

// Stats snapshots the engine's caches and scheduler.
func (db *DB) Stats() Stats {
	st := Stats{
		PlanCache:      db.plans.info(),
		ResultCache:    db.resultCacheInfo(),
		Compiles:       db.compiles.Load(),
		CatalogVersion: db.catalog.Version(),
	}
	st.SessionCache.Hits, st.SessionCache.Misses = db.runtime.Cache.Stats()
	if db.sched != nil {
		s := db.sched.Stats()
		st.Scheduler = &s
	}
	if db.tuner != nil {
		a := db.tuner.Stats(db.DefaultParallelism)
		st.Adaptive = &a
	}
	if db.durable != nil {
		s := db.durable.Stats()
		st.Storage = &s
	}
	return st
}

// AdaptiveStats is the adaptive tuner's snapshot (see Stats.Adaptive),
// aliased so API consumers can name it without importing internal
// packages.
type AdaptiveStats = exec.TunerStats

// varsSnapshot copies the engine session variables. Callers take one
// snapshot per compile so the cache key and the bound plan always see the
// same variable values even while Exec DECLARE runs concurrently.
func (db *DB) varsSnapshot() map[string]string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string]string, len(db.vars))
	for k, v := range db.vars {
		out[k] = v
	}
	return out
}

// cacheablePlan reports whether plans for these options may be reused
// across calls. Statistics-derived pruning (UseStatistics) specializes the
// model to the data range at compile time, and INSERTs don't bump the
// catalog version — so those plans would go stale silently and are always
// recompiled.
func cacheablePlan(opts QueryOptions) bool {
	return !opts.DisablePlanCache && !opts.UseStatistics
}

// planFor resolves a compiled plan through the cache: hit when possible,
// full compile otherwise. allowParams selects the prepare surface — @var
// placeholders become execute-time parameters and side-effecting
// statements are rejected (preparing must not mutate the database). On
// the ad-hoc surface, side-effecting statements (CREATE/INSERT/DROP)
// execute exactly once here and make the script uncacheable. vars is the
// session-variable snapshot to compile with: a fresh one for ad-hoc
// queries, a Stmt's prepare-time snapshot on re-prepares so the
// statement's meaning never drifts.
func (db *DB) planFor(q string, opts QueryOptions, vars map[string]string, allowParams bool) (*cachedPlan, error) {
	cacheable := cacheablePlan(opts)
	var key string
	if cacheable {
		key = db.planKey(q, opts, allowParams, vars)
		if p := db.plans.get(key, db.catalog.Version()); p != nil {
			return p, nil
		}
	}
	sel, svars, hadSideEffects, err := db.splitScript(q, !allowParams, vars)
	if err != nil {
		return nil, err
	}
	p, err := db.buildPlan(q, sel, svars, opts, allowParams)
	if err != nil {
		return nil, err
	}
	if cacheable && !hadSideEffects {
		db.plans.put(key, p, db.catalog.Version())
	}
	return p, nil
}

// splitScript parses a query script into its single SELECT and the
// statement-scoped variables: the provided session-var snapshot overlaid
// with the script's DECLAREs. DECLAREs never write back to the engine — a
// Query's variables are visible to that query alone (Exec DECLARE is the
// session-level API). Side-effecting statements run via execOne when
// allowSideEffects is set and are rejected otherwise (Prepare/Explain).
func (db *DB) splitScript(q string, allowSideEffects bool, base map[string]string) (sel *sql.SelectStmt, vars map[string]string, hadSideEffects bool, err error) {
	stmts, err := sql.ParseScript(q)
	if err != nil {
		return nil, nil, false, err
	}
	vars = make(map[string]string, len(base))
	for k, v := range base {
		vars[k] = v
	}
	for _, st := range stmts {
		switch x := st.(type) {
		case *sql.DeclareStmt:
			vars[x.Name] = x.Value
		case *sql.SelectStmt:
			if sel != nil {
				return nil, nil, false, fmt.Errorf("raven: multiple SELECTs in one Query call")
			}
			sel = x
		default:
			if !allowSideEffects {
				return nil, nil, false, fmt.Errorf("raven: only DECLARE and a single SELECT are allowed here (Prepare/Explain must not mutate the database), got %T", st)
			}
			if err := db.execOne(st); err != nil {
				return nil, nil, false, err
			}
			hadSideEffects = true
		}
	}
	if sel == nil {
		return nil, nil, false, fmt.Errorf("raven: Query needs a SELECT statement")
	}
	return sel, vars, hadSideEffects, nil
}

// buildPlan runs the front half once: bind → unified IR → cross optimizer
// (or the always-on relational pass), producing an immutable template.
func (db *DB) buildPlan(q string, sel *sql.SelectStmt, vars map[string]string, opts QueryOptions, allowParams bool) (*cachedPlan, error) {
	db.compiles.Add(1)
	version := db.catalog.Version()
	binder := plan.NewBinder(db.catalog)
	binder.AllowParams = allowParams
	for k, v := range vars {
		binder.Vars[k] = v
	}
	logical, err := binder.BindSelect(sel)
	if err != nil {
		return nil, err
	}

	// The cache key and the scanned-table set must be derived before IR
	// construction: FromPlan splices the Predict node out of the plan.
	cacheKey := db.modelCacheKey(logical)
	tables := collectPlanTables(logical)

	graph, err := ir.FromPlan(logical, db.resolvePipeline)
	if err != nil {
		return nil, err
	}

	var applied []string
	if opts.DisableSessionCache {
		cacheKey = ""
	}
	if !opts.CrossOptimize {
		// Standard DB optimizations (predicate/projection pushdown, join
		// elimination) always run — SQL Server's optimizer does not switch
		// off. Only the cross-IR rules are gated by CrossOptimize.
		xo := xopt.Options{Relational: true, RelOpt: &relopt.Optimizer{Catalog: db.catalog, AssumeRI: true}}
		res, err := xopt.Optimize(graph, xo)
		if err != nil {
			return nil, err
		}
		applied = res.Applied
		graph = res.Graph
	} else {
		xo := xopt.DefaultOptions(&relopt.Optimizer{Catalog: db.catalog, AssumeRI: true})
		xo.UseDataStatistics = opts.UseStatistics
		xo.ModelQuerySplitting = opts.ModelQuerySplitting
		if opts.DisableInlining {
			xo.ModelInlining = false
		}
		if opts.DisableNNTranslation {
			xo.NNTranslation = false
		}
		if opts.DisablePruning {
			xo.PredicateModelPruning = false
		}
		if opts.DisableProjectionPushdown {
			xo.ModelProjectionPushdown = false
		}
		xo.UseGPU = opts.UseGPU
		res, err := xopt.Optimize(graph, xo)
		if err != nil {
			return nil, err
		}
		applied = res.Applied
		graph = res.Graph
		// The optimized model is specialized to this query's predicates:
		// key the session cache by model hash + query fingerprint so
		// differently-specialized sessions never collide, while identical
		// repeated queries (warm runs) still hit.
		if cacheKey != "" && len(applied) > 0 {
			sum := sha256.Sum256([]byte(q))
			cacheKey += "#" + hex.EncodeToString(sum[:8])
		}
	}

	return &cachedPlan{
		graph:      graph,
		applied:    applied,
		sessionKey: cacheKey,
		params:     collectGraphParams(graph),
		version:    version,
		tables:     tables,
	}, nil
}

// lower turns a compiled template into a fresh executable operator tree.
// It runs per execution — cheap relative to the front half — so cached
// plans still adapt to current table sizes (serial vs morsel-parallel)
// and carry the call's context into every operator.
func (db *DB) lower(ctx context.Context, graph *ir.Graph, sessionKey string, opts QueryOptions) (exec.Operator, error) {
	par := db.effectiveParallelism(ctx, opts)
	morsel := opts.MorselSize
	if morsel == 0 {
		morsel = db.MorselSize
	}
	cfg := &codegen.Config{
		Runtime:               db.runtime,
		Ctx:                   ctx,
		Mode:                  opts.Mode,
		Parallelism:           par,
		ParallelThresholdRows: opts.ParallelThresholdRows,
		MorselSize:            morsel,
		Tuner:                 db.tuner,
		CacheKey:              sessionKey,
	}
	return codegen.Compile(graph, cfg)
}

// resolvePipeline loads the stored pipeline behind a model name.
func (db *DB) resolvePipeline(name string) (*ml.Pipeline, error) {
	return db.LoadModel(name)
}

// modelCacheKey derives the session-cache key from the (first) PREDICT
// model's stored hash.
func (db *DB) modelCacheKey(p plan.Node) string {
	var key string
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if key != "" {
			return
		}
		if pr, ok := n.(*plan.Predict); ok {
			if m, err := db.catalog.Models.Latest(pr.ModelName); err == nil {
				key = m.Hash
			}
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	return key
}

// Explain returns a report of the query's plans: the bound logical plan,
// the unified IR before and after cross optimization (with engine
// placement), and the regenerated SQL.
func (db *DB) Explain(q string, opts QueryOptions) (string, error) {
	// Same statement-scoped DECLARE handling as Query/Prepare, and like
	// Prepare, explaining must not mutate the database.
	sel, vars, _, err := db.splitScript(q, false, db.varsSnapshot())
	if err != nil {
		return "", err
	}
	binder := plan.NewBinder(db.catalog)
	for k, v := range vars {
		binder.Vars[k] = v
	}
	logical, err := binder.BindSelect(sel)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("== logical plan ==\n")
	sb.WriteString(plan.Explain(logical))

	graph, err := ir.FromPlan(logical, db.resolvePipeline)
	if err != nil {
		return "", err
	}
	sb.WriteString("\n== unified IR ==\n")
	sb.WriteString(graph.Explain())

	if opts.CrossOptimize {
		xo := xopt.DefaultOptions(&relopt.Optimizer{Catalog: db.catalog, AssumeRI: true})
		xo.UseDataStatistics = opts.UseStatistics
		xo.ModelQuerySplitting = opts.ModelQuerySplitting
		if opts.DisableInlining {
			xo.ModelInlining = false
		}
		if opts.DisableNNTranslation {
			xo.NNTranslation = false
		}
		res, err := xopt.Optimize(graph, xo)
		if err != nil {
			return "", err
		}
		sb.WriteString("\n== optimized IR (rules: " + strings.Join(res.Applied, ", ") + ") ==\n")
		sb.WriteString(res.Graph.Explain())
		sb.WriteString("\n== regenerated SQL ==\n")
		sb.WriteString(codegen.GenerateSQL(res.Graph))
	}
	return sb.String(), nil
}

// QuerySQLOnly executes a SELECT without the IR/cross-optimizer machinery
// (pure relational path with the standard optimizer); useful for data
// exploration and tests.
func (db *DB) QuerySQLOnly(q string) (*types.Batch, error) {
	st, err := sql.Parse(q)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("raven: QuerySQLOnly needs a SELECT")
	}
	binder := plan.NewBinder(db.catalog)
	logical, err := binder.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	ro := &relopt.Optimizer{Catalog: db.catalog, AssumeRI: true}
	logical, err = ro.Optimize(logical)
	if err != nil {
		return nil, err
	}
	op, err := exec.Compile(logical, &exec.Env{Parallelism: db.DefaultParallelism, MorselSize: db.MorselSize, Tuner: db.tuner})
	if err != nil {
		return nil, err
	}
	return exec.Collect(op)
}

// Filter is re-exported so examples can build predicates programmatically.
type Filter = expr.Expr

// ClusteredModel re-exports the model-clustering facility (paper §4.1): a
// k-means router over per-cluster specialized models.
type ClusteredModel = xopt.ClusteredModel

// BuildClusteredModel precompiles per-cluster specialized models for a
// logistic regression over a data sample.
func BuildClusteredModel(lr *ml.LogisticRegression, sample ml.Matrix, k int, eps float64, seed int64) (*ClusteredModel, error) {
	return xopt.BuildClusteredModel(lr, sample, k, eps, seed)
}
