package ort

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// buildGraphSession compiles a tiny identity graph, giving the cache a
// real session to hold.
func buildTestSession(t *testing.T) func() (*Session, error) {
	t.Helper()
	return func() (*Session, error) {
		g := NewGraph("tiny")
		g.Inputs = []string{"X"}
		g.Outputs = []string{"Y"}
		g.Nodes = append(g.Nodes, &Node{Op: "Identity", Name: "id", Inputs: []string{"X"}, Outputs: []string{"Y"}})
		return NewSession(g)
	}
}

func TestSessionCacheSingleflight(t *testing.T) {
	c := NewSessionCache()
	var builds atomic.Int64
	build := buildTestSession(t)
	counted := func() (*Session, error) {
		builds.Add(1)
		return build()
	}
	const goroutines = 32
	var wg sync.WaitGroup
	sessions := make([]*Session, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.Get("k", counted)
			if err != nil {
				t.Error(err)
				return
			}
			sessions[i] = s
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for one key, want 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if sessions[i] != sessions[0] {
			t.Fatal("concurrent gets returned different sessions")
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Errorf("stats = (%d hits, %d misses), want (%d, 1)", hits, misses, goroutines-1)
	}
}

func TestSessionCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewSessionCache()
	build := buildTestSession(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			if _, err := c.Get(key, build); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

func TestSessionCachePanickingBuildUnblocksWaitersAndRetries(t *testing.T) {
	c := NewSessionCache()
	started := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		_, _ = c.Get("k", func() (*Session, error) {
			close(started)
			panic("malformed graph")
		})
	}()
	<-started
	go func() {
		_, err := c.Get("k", func() (*Session, error) { return buildTestSession(t)() })
		waiterDone <- err
	}()
	// The waiter must not hang: it either joined the panicked entry (gets
	// its error) or arrived after eviction (builds fresh, gets nil).
	err := <-waiterDone
	_ = err
	// And a later Get must be able to build successfully.
	if s, err := c.Get("k", buildTestSession(t)); err != nil || s == nil {
		t.Fatalf("retry after panicked build: %v", err)
	}
}

func TestSessionCacheFailedBuildRetries(t *testing.T) {
	c := NewSessionCache()
	boom := errors.New("boom")
	if _, err := c.Get("k", func() (*Session, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed build must not stay cached")
	}
	s, err := c.Get("k", buildTestSession(t))
	if err != nil || s == nil {
		t.Fatalf("retry after failed build: %v", err)
	}
}
