// Package pgwire is the Postgres-wire-protocol front end over the raven
// serving API: enough of the v3 protocol (startup + trust auth, simple
// query, extended query Parse/Bind/Describe/Execute/Sync, text-format
// results, CancelRequest) that psql, BI tools and the pg driver
// ecosystem can run SELECT/PREDICT/INSERT/DDL directly against the
// engine — the paper's pitch that in-database inference makes PREDICT
// reachable from every existing SQL tool, made literal.
//
// The front end adds no second options surface: every entry resolves
// its tenant/priority/DOP/timeout/no_cache through the same
// internal/server/reqopt layer stack as HTTP (pg startup params are the
// ctx layer: database/user map onto the tenant scheduler, the "options"
// parameter carries -c raven.* knobs), goes through the same admission
// path, shares the HTTP server's prepared-statement registry, and maps
// engine errors through the same table (429 ⇔ SQLSTATE 53300, draining
// ⇔ 57P01, timeouts ⇔ 57014, parse errors ⇔ 42601).
//
// Supported subset and deliberate limits: text format only (binary
// Bind/result formats are refused with 0A000), no SSL/GSS (the
// negotiation is answered with 'N'), trust auth, no transactions
// (BEGIN/COMMIT/SET are acknowledged as no-ops so tools' session
// scripts run), Execute row limits are ignored (the whole result
// streams, then CommandComplete — document fetchSize oddities away).
package pgwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"raven/internal/types"
)

// Protocol version / special startup codes.
const (
	protoVersion3 = 196608 // 3.0
	sslRequest    = 80877103
	gssEncRequest = 80877104
	cancelRequest = 80877102
)

// Backend (server→client) message types.
const (
	msgAuth             = 'R'
	msgParameterStatus  = 'S'
	msgBackendKeyData   = 'K'
	msgReadyForQuery    = 'Z'
	msgRowDescription   = 'T'
	msgDataRow          = 'D'
	msgCommandComplete  = 'C'
	msgErrorResponse    = 'E'
	msgEmptyQueryResp   = 'I'
	msgParseComplete    = '1'
	msgBindComplete     = '2'
	msgCloseComplete    = '3'
	msgParamDescription = 't'
	msgNoData           = 'n'
	msgNoticeResponse   = 'N'
	msgPortalSuspended  = 's'
)

// Frontend (client→server) message types.
const (
	msgQuery     = 'Q'
	msgParse     = 'P'
	msgBind      = 'B'
	msgDescribe  = 'D'
	msgExecute   = 'E'
	msgClose     = 'C'
	msgSync      = 'S'
	msgFlush     = 'H'
	msgTerminate = 'X'
)

// Postgres type OIDs for the engine's four data types.
const (
	oidBool   = 16
	oidInt8   = 20
	oidText   = 25
	oidFloat8 = 701
)

// oidFor maps an engine column type to its wire OID (text format).
func oidFor(t types.DataType) (oid uint32, typlen int16) {
	switch t {
	case types.Int:
		return oidInt8, 8
	case types.Float:
		return oidFloat8, 8
	case types.Bool:
		return oidBool, 1
	default:
		return oidText, -1
	}
}

// maxMessageLen bounds one frontend message body. Wire input is
// untrusted; a hostile length prefix must not allocate gigabytes.
const maxMessageLen = 16 << 20

var errMessageTooLong = errors.New("pgwire: frontend message exceeds 16MiB")

// writeBuf accumulates one backend message: type byte, length patched
// at finish, big-endian payload. One buffer is reused per connection.
type writeBuf struct {
	b []byte
}

func (w *writeBuf) start(typ byte) {
	w.b = append(w.b[:0], typ, 0, 0, 0, 0)
}

func (w *writeBuf) byte(v byte)     { w.b = append(w.b, v) }
func (w *writeBuf) int16(v int)     { w.b = binary.BigEndian.AppendUint16(w.b, uint16(v)) }
func (w *writeBuf) int32(v int)     { w.b = binary.BigEndian.AppendUint32(w.b, uint32(v)) }
func (w *writeBuf) uint32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writeBuf) cstring(s string) {
	w.b = append(w.b, s...)
	w.b = append(w.b, 0)
}
func (w *writeBuf) bytes(p []byte) { w.b = append(w.b, p...) }

// finish patches the length (which includes itself but not the type
// byte) and writes the message to out.
func (w *writeBuf) finish(out *bufio.Writer) error {
	binary.BigEndian.PutUint32(w.b[1:5], uint32(len(w.b)-1))
	_, err := out.Write(w.b)
	return err
}

// readMessage reads one typed frontend message.
func readMessage(r *bufio.Reader) (typ byte, payload []byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(lenBuf[:])) - 4
	if n < 0 || n > maxMessageLen {
		return 0, nil, errMessageTooLong
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// readStartup reads the untyped startup packet: length then body.
func readStartup(r *bufio.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(lenBuf[:])) - 4
	if n < 4 || n > maxMessageLen {
		return nil, fmt.Errorf("pgwire: bad startup packet length %d", n+4)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// msgReader walks one frontend message payload.
type msgReader struct {
	b []byte
}

var errShortMessage = errors.New("pgwire: truncated frontend message")

func (m *msgReader) byte() (byte, error) {
	if len(m.b) < 1 {
		return 0, errShortMessage
	}
	v := m.b[0]
	m.b = m.b[1:]
	return v, nil
}

func (m *msgReader) int16() (int, error) {
	if len(m.b) < 2 {
		return 0, errShortMessage
	}
	v := int(int16(binary.BigEndian.Uint16(m.b)))
	m.b = m.b[2:]
	return v, nil
}

func (m *msgReader) int32() (int, error) {
	if len(m.b) < 4 {
		return 0, errShortMessage
	}
	v := int(int32(binary.BigEndian.Uint32(m.b)))
	m.b = m.b[4:]
	return v, nil
}

func (m *msgReader) uint32() (uint32, error) {
	if len(m.b) < 4 {
		return 0, errShortMessage
	}
	v := binary.BigEndian.Uint32(m.b)
	m.b = m.b[4:]
	return v, nil
}

func (m *msgReader) cstring() (string, error) {
	for i, c := range m.b {
		if c == 0 {
			s := string(m.b[:i])
			m.b = m.b[i+1:]
			return s, nil
		}
	}
	return "", errShortMessage
}

func (m *msgReader) bytes(n int) ([]byte, error) {
	if n < 0 || len(m.b) < n {
		return nil, errShortMessage
	}
	v := m.b[:n]
	m.b = m.b[n:]
	return v, nil
}

// parseStartupParams splits a startup body (after the version word)
// into its key\0value\0 pairs.
func parseStartupParams(body []byte) (map[string]string, error) {
	m := &msgReader{b: body}
	params := make(map[string]string)
	for len(m.b) > 0 {
		k, err := m.cstring()
		if err != nil {
			return nil, err
		}
		if k == "" {
			break // terminator
		}
		v, err := m.cstring()
		if err != nil {
			return nil, err
		}
		params[k] = v
	}
	return params, nil
}
