package train

import (
	"math"
	"math/rand"
	"sort"

	"raven/internal/ml"
)

// LogRegOptions configures L1-regularized logistic-regression fitting.
type LogRegOptions struct {
	Epochs int     // passes over the data (default 20)
	LR     float64 // learning rate (default 0.1)
	// L1 is the regularization strength; larger values zero more weights,
	// producing the sparsity model-projection pushdown exploits (§4.1).
	L1   float64
	Seed int64
}

// FitLogReg fits binary logistic regression by full-batch proximal
// gradient descent (ISTA): a gradient step on the logistic loss followed by
// soft-thresholding. The proximal step drives weights *exactly* to zero,
// giving the genuine L1 sparsity that model-projection pushdown exploits
// (the paper's flight-delay models at 41.75% and 80.96% sparsity, §4.1).
func FitLogReg(x ml.Matrix, y []float64, opts LogRegOptions) *ml.LogisticRegression {
	if opts.Epochs == 0 {
		opts.Epochs = 100
	}
	if opts.LR == 0 {
		opts.LR = 0.5
	}
	w := make([]float64, x.Cols)
	b := 0.0
	grad := make([]float64, x.Cols)
	n := float64(x.Rows)
	for e := 0; e < opts.Epochs; e++ {
		for j := range grad {
			grad[j] = 0
		}
		gb := 0.0
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			z := b
			for j, wj := range w {
				z += wj * row[j]
			}
			p := 1 / (1 + math.Exp(-z))
			g := p - y[i]
			for j := range grad {
				grad[j] += g * row[j]
			}
			gb += g
		}
		lr := opts.LR
		th := lr * opts.L1
		for j := range w {
			w[j] -= lr * grad[j] / n
			switch {
			case w[j] > th:
				w[j] -= th
			case w[j] < -th:
				w[j] += th
			default:
				w[j] = 0
			}
		}
		b -= lr * gb / n
	}
	return &ml.LogisticRegression{W: w, B: b}
}

// AUC computes the area under the ROC curve of scores against binary
// labels — the metric the paper uses to pick between L1 strengths.
func AUC(scores, labels []float64) float64 {
	type pair struct{ s, l float64 }
	ps := make([]pair, len(scores))
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// rank-sum (Mann-Whitney) formulation with tie handling via average ranks
	var rankSumPos float64
	var nPos, nNeg float64
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j)/2
		for k := i; k < j; k++ {
			if ps[k].l > 0.5 {
				rankSumPos += avgRank
				nPos++
			} else {
				nNeg++
			}
		}
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// MLPOptions configures MLP fitting.
type MLPOptions struct {
	Hidden []int // hidden-layer widths
	Epochs int
	LR     float64
	Seed   int64
	// Classifier trains with logistic loss and sigmoid output.
	Classifier bool
}

// FitMLP trains a ReLU MLP with one output by plain SGD backprop. The
// paper's MLP experiment (Fig 3) only needs a structurally realistic,
// correctly-scoring network, so this favors clarity over speed.
func FitMLP(x ml.Matrix, y []float64, opts MLPOptions) *ml.MLP {
	if opts.Epochs == 0 {
		opts.Epochs = 10
	}
	if opts.LR == 0 {
		opts.LR = 0.01
	}
	if len(opts.Hidden) == 0 {
		opts.Hidden = []int{16}
	}
	dims := append([]int{x.Cols}, opts.Hidden...)
	dims = append(dims, 1)
	rng := rand.New(rand.NewSource(opts.Seed))
	m := &ml.MLP{Dims: dims, Classifier: opts.Classifier}
	for l := 0; l < len(dims)-1; l++ {
		din, dout := dims[l], dims[l+1]
		w := make([]float64, din*dout)
		scale := math.Sqrt(2 / float64(din))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		m.Weights = append(m.Weights, w)
		m.Biases = append(m.Biases, make([]float64, dout))
	}
	nLayers := len(m.Weights)
	acts := make([][]float64, nLayers+1)
	for e := 0; e < opts.Epochs; e++ {
		for i := 0; i < x.Rows; i++ {
			// forward
			acts[0] = x.Row(i)
			for l := 0; l < nLayers; l++ {
				din, dout := dims[l], dims[l+1]
				out := make([]float64, dout)
				copy(out, m.Biases[l])
				for p := 0; p < din; p++ {
					xp := acts[l][p]
					if xp == 0 {
						continue
					}
					wrow := m.Weights[l][p*dout : (p+1)*dout]
					for j := range wrow {
						out[j] += xp * wrow[j]
					}
				}
				if l < nLayers-1 {
					for j := range out {
						if out[j] < 0 {
							out[j] = 0
						}
					}
				}
				acts[l+1] = out
			}
			// backward
			pred := acts[nLayers][0]
			var delta []float64
			if opts.Classifier {
				p := 1 / (1 + math.Exp(-pred))
				delta = []float64{p - y[i]}
			} else {
				delta = []float64{pred - y[i]}
			}
			for l := nLayers - 1; l >= 0; l-- {
				din, dout := dims[l], dims[l+1]
				prev := make([]float64, din)
				for p := 0; p < din; p++ {
					xp := acts[l][p]
					wrow := m.Weights[l][p*dout : (p+1)*dout]
					var g float64
					for j := range wrow {
						g += wrow[j] * delta[j]
						wrow[j] -= opts.LR * delta[j] * xp
					}
					prev[p] = g
				}
				for j := 0; j < dout; j++ {
					m.Biases[l][j] -= opts.LR * delta[j]
				}
				if l > 0 {
					// relu derivative
					for p := 0; p < din; p++ {
						if acts[l][p] <= 0 {
							prev[p] = 0
						}
					}
				}
				delta = prev
			}
		}
	}
	return m
}
