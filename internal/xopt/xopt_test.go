package xopt

import (
	"math/rand"
	"strings"
	"testing"

	"raven/internal/expr"
	"raven/internal/ir"
	"raven/internal/ml"
	"raven/internal/plan"
	"raven/internal/relopt"
	"raven/internal/storage"
	"raven/internal/train"
	"raven/internal/types"
)

// fig1Tree mirrors the running example: pregnant(0) at root, gender(2)/
// age(1) on the not-pregnant side, bp(4) on the pregnant side.
func fig1Tree() *ml.DecisionTree {
	t := &ml.DecisionTree{NFeat: 5}
	add := func(f int, thr, v float64) int {
		t.Feature = append(t.Feature, f)
		t.Threshold = append(t.Threshold, thr)
		t.Left = append(t.Left, -1)
		t.Right = append(t.Right, -1)
		t.Value = append(t.Value, v)
		return len(t.Feature) - 1
	}
	root := add(0, 0.5, 0)
	g := add(2, 0.5, 0)
	l1 := add(-1, 0, 0.1)
	l2 := add(-1, 0, 0.2)
	bp := add(4, 140, 0)
	l3 := add(-1, 0, 0.3)
	l4 := add(-1, 0, 0.9)
	t.Left[root], t.Right[root] = g, bp
	t.Left[g], t.Right[g] = l1, l2
	t.Left[bp], t.Right[bp] = l3, l4
	return t
}

var hospCols = []string{"pregnant", "age", "gender", "weight", "bp"}

// hospitalGraph builds source(join) <- model <- sink(filter+project) IR.
func hospitalGraph(t *testing.T, model ml.Model, pred expr.Expr) (*ir.Graph, *storage.Catalog) {
	t.Helper()
	cat := storage.NewCatalog()
	pi := storage.NewTable("patient_info", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "age", Type: types.Float},
		types.Column{Name: "pregnant", Type: types.Int},
		types.Column{Name: "gender", Type: types.Int},
		types.Column{Name: "weight", Type: types.Float},
	))
	bt := storage.NewTable("blood_tests", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "bp", Type: types.Float},
	))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		_ = pi.AppendRow(int64(i), 20+rng.Float64()*50, int64(i%2), int64(i%2), 50+rng.Float64()*50)
		_ = bt.AppendRow(int64(i), 90+rng.Float64()*80)
	}
	_ = cat.AddTable(pi)
	_ = cat.AddTable(bt)
	cat.SetUniqueKey("patient_info", "id")
	cat.SetUniqueKey("blood_tests", "id")

	scan1 := plan.NewScan(pi)
	scan2 := plan.NewScan(bt)
	join, err := plan.NewJoin(scan1, scan2, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	src := &ir.RelNode{Plan: join}
	mn := &ir.ModelNode{
		M:         model,
		InputCols: hospCols,
		OutputCol: types.Column{Name: "score", Type: types.Float},
		In:        src,
	}
	outSchema := join.Schema().Concat(types.NewSchema(types.Column{Name: "score", Type: types.Float}))
	var sinkPlan plan.Node = &plan.Input{Sch: outSchema}
	if pred != nil {
		sinkPlan = &plan.Filter{Child: sinkPlan, Pred: pred}
	}
	sink := &ir.RelNode{Plan: sinkPlan, In: mn}
	return &ir.Graph{Root: sink}, cat
}

func pregnantEq1() expr.Expr {
	return expr.NewBinary(expr.OpEq, &expr.Column{Name: "pregnant"}, expr.IntLit(1))
}

func TestPredicatePruningShrinksTree(t *testing.T) {
	tree := fig1Tree()
	before := tree.NumNodes()
	g, _ := hospitalGraph(t, tree, pregnantEq1())
	ok, err := rulePredicateModelPruning(g, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("rule did not fire")
	}
	_, model := mldChain(g)
	after := model.M.(*ml.DecisionTree).NumNodes()
	if after >= before {
		t.Errorf("tree did not shrink: %d -> %d", before, after)
	}
	// gender must be gone (paper: "gender is no longer used")
	for _, f := range model.M.UsedFeatures() {
		if f == 2 {
			t.Error("gender still used after pruning")
		}
	}
}

func TestPredicatePruningNoPredicatesNoChange(t *testing.T) {
	g, _ := hospitalGraph(t, fig1Tree(), nil)
	ok, err := rulePredicateModelPruning(g, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("rule fired without predicates")
	}
}

func TestPredicatePruningFromStatistics(t *testing.T) {
	// No WHERE clause; but patient_info.pregnant has a single distinct
	// value when we build such a table.
	cat := storage.NewCatalog()
	pi := storage.NewTable("patient_info", types.NewSchema(
		types.Column{Name: "pregnant", Type: types.Int},
		types.Column{Name: "age", Type: types.Float},
		types.Column{Name: "gender", Type: types.Int},
		types.Column{Name: "weight", Type: types.Float},
		types.Column{Name: "bp", Type: types.Float},
	))
	for i := 0; i < 30; i++ {
		_ = pi.AppendRow(int64(1), float64(30+i), int64(i%2), 60.0, float64(100+i))
	}
	_ = cat.AddTable(pi)
	src := &ir.RelNode{Plan: plan.NewScan(pi)}
	mn := &ir.ModelNode{M: fig1Tree(), InputCols: hospCols, OutputCol: types.Column{Name: "score", Type: types.Float}, In: src}
	g := &ir.Graph{Root: mn}
	ok, err := rulePredicateModelPruning(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stat-derived pruning did not fire")
	}
	_, model := mldChain(g)
	for _, f := range model.M.UsedFeatures() {
		if f == 0 {
			t.Error("pregnant split survived although the column is constant")
		}
	}
}

func TestProjectionPushdownNarrowsModelAndInputs(t *testing.T) {
	lr := &ml.LogisticRegression{W: []float64{0.5, 0, 0, 0, 1.5}, B: 0.1}
	g, _ := hospitalGraph(t, lr, nil)
	ok, err := ruleModelProjectionPushdown(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("rule did not fire")
	}
	_, model := mldChain(g)
	if got := len(model.M.(*ml.LogisticRegression).W); got != 2 {
		t.Errorf("model width = %d, want 2", got)
	}
	if len(model.InputCols) != 2 || model.InputCols[0] != "pregnant" || model.InputCols[1] != "bp" {
		t.Errorf("input cols = %v", model.InputCols)
	}
}

func TestProjectionPushdownEnablesJoinElimination(t *testing.T) {
	// Model reads only patient_info columns; after pushdown the
	// blood_tests join must disappear.
	lr := &ml.LogisticRegression{W: []float64{1, 0.5, 0, 0, 0}, B: 0}
	g, cat := hospitalGraph(t, lr, nil)
	if ok, err := ruleModelProjectionPushdown(g); err != nil || !ok {
		t.Fatal(ok, err)
	}
	ro := &relopt.Optimizer{Catalog: cat, AssumeRI: true}
	if _, err := optimizeSourcePlan(g, ro); err != nil {
		t.Fatal(err)
	}
	s := plan.Explain(g.SourcePlan())
	if strings.Contains(s, "blood_tests") {
		t.Errorf("join not eliminated:\n%s", s)
	}
}

func TestNNTranslationReplacesChainWithLANode(t *testing.T) {
	g, _ := hospitalGraph(t, fig1Tree(), nil)
	ok, err := ruleNNTranslation(g, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("rule did not fire")
	}
	if g.CountCategory(ir.MLD) != 0 {
		t.Error("MLD nodes survived translation")
	}
	if g.CountCategory(ir.LA) != 1 {
		t.Error("no LA node produced")
	}
	la := g.Find(func(n ir.Node) bool { _, ok := n.(*ir.LANode); return ok }).(*ir.LANode)
	if la.G.NumNodes() == 0 || la.OutputCol.Name != "score" {
		t.Errorf("LA node = %+v", la)
	}
}

func TestModelInliningProducesCase(t *testing.T) {
	g, _ := hospitalGraph(t, fig1Tree(), nil)
	ok, err := ruleModelInlining(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("rule did not fire")
	}
	if g.CountCategory(ir.MLD) != 0 {
		t.Error("model not removed")
	}
	// The middle node is now a RelNode whose plan projects a CASE.
	var caseFound bool
	for _, n := range g.Chain() {
		rn, ok := n.(*ir.RelNode)
		if !ok {
			continue
		}
		if strings.Contains(plan.Explain(rn.Plan), "CASE") {
			caseFound = true
		}
	}
	if !caseFound {
		t.Errorf("no CASE in inlined plan:\n%s", g.Explain())
	}
}

func TestModelInliningWithScaler(t *testing.T) {
	tree := &ml.DecisionTree{NFeat: 1}
	tree.Feature = []int{0, -1, -1}
	tree.Threshold = []float64{0, 0, 0} // scaled space: (x-10)/2 <= 0  <=>  x <= 10
	tree.Left = []int{1, -1, -1}
	tree.Right = []int{2, -1, -1}
	tree.Value = []float64{0, 1, 2}
	sc := &ml.StandardScaler{Mean: []float64{10}, Scale: []float64{2}}

	cat := storage.NewCatalog()
	tb := storage.NewTable("t", types.NewSchema(types.Column{Name: "x", Type: types.Float}))
	_ = tb.AppendRow(5.0)
	_ = tb.AppendRow(15.0)
	_ = cat.AddTable(tb)
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	tr := &ir.TransformNode{T: sc, In: src}
	mn := &ir.ModelNode{M: tree, InputCols: []string{"x"}, OutputCol: types.Column{Name: "y", Type: types.Float}, In: tr}
	g := &ir.Graph{Root: mn}

	ok, err := ruleModelInlining(g)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	s := g.Explain()
	if !strings.Contains(s, "CASE") {
		t.Errorf("no CASE:\n%s", s)
	}
}

func TestInliningSkipsLargeTreesAndOneHot(t *testing.T) {
	// large tree
	big := &ml.DecisionTree{NFeat: 1}
	var build func(d int) int
	build = func(d int) int {
		if d == 0 {
			big.Feature = append(big.Feature, -1)
			big.Threshold = append(big.Threshold, 0)
			big.Left = append(big.Left, -1)
			big.Right = append(big.Right, -1)
			big.Value = append(big.Value, 1)
			return len(big.Feature) - 1
		}
		big.Feature = append(big.Feature, 0)
		big.Threshold = append(big.Threshold, float64(d))
		big.Left = append(big.Left, -1)
		big.Right = append(big.Right, -1)
		big.Value = append(big.Value, 0)
		self := len(big.Feature) - 1
		l := build(d - 1)
		r := build(d - 1)
		big.Left[self], big.Right[self] = l, r
		return self
	}
	build(10) // 2^11-1 nodes > InlineMaxNodes
	g, _ := hospitalGraph(t, big, nil)
	if ok, _ := ruleModelInlining(g); ok {
		t.Error("inlined an oversized tree")
	}

	// onehot chain blocks inlining
	enc := &ml.OneHotEncoder{Cols: []int{0}, Categories: [][]float64{{0, 1}}, InputDim: 5}
	g2, _ := hospitalGraph(t, fig1Tree(), nil)
	_, model := mldChain(g2)
	model.In = &ir.TransformNode{T: enc, In: model.In}
	if ok, _ := ruleModelInlining(g2); ok {
		t.Error("inlined through a one-hot encoder")
	}
}

func TestModelQuerySplitting(t *testing.T) {
	g, _ := hospitalGraph(t, fig1Tree(), nil)
	ok, err := ruleModelQuerySplitting(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("rule did not fire")
	}
	sn := g.Find(func(n ir.Node) bool { _, ok := n.(*ir.SplitNode); return ok })
	if sn == nil {
		t.Fatal("no split node")
	}
	split := sn.(*ir.SplitNode)
	if split.CondCol != "pregnant" || split.Threshold != 0.5 {
		t.Errorf("split = %s <= %v", split.CondCol, split.Threshold)
	}
}

func TestOptimizeDriverOrderAndEnginePlacement(t *testing.T) {
	g, cat := hospitalGraph(t, fig1Tree(), pregnantEq1())
	opts := DefaultOptions(&relopt.Optimizer{Catalog: cat, AssumeRI: true})
	res, err := Optimize(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Applied, ",")
	for _, want := range []string{"predicate-based-model-pruning", "model-projection-pushdown", "model-inlining"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing rule %s: %v", want, res.Applied)
		}
	}
	// everything is relational after inlining: engines all db
	for _, n := range res.Graph.Chain() {
		if rn, ok := n.(*ir.RelNode); ok && rn.Engine != ir.EngineDB {
			t.Errorf("RA node not placed on DB engine")
		}
	}
}

func TestMapFactsThroughOneHot(t *testing.T) {
	enc := &ml.OneHotEncoder{Cols: []int{1}, Categories: [][]float64{{3, 7, 9}}, InputDim: 2}
	facts := &columnFacts{
		ranges: map[string]expr.Range{"dest": {Lo: 7, Hi: 7}},
		equals: map[string]float64{"dest": 7},
	}
	ff, ok := mapFactsThroughTransforms(facts, []string{"dist", "dest"}, []ml.Transformer{enc})
	if !ok {
		t.Fatal("mapping failed")
	}
	// output layout: [dist, dest==3, dest==7, dest==9]
	if v, ok := ff.pinned[2]; !ok || v != 1 {
		t.Errorf("dest==7 indicator not pinned to 1: %v", ff.pinned)
	}
	if v, ok := ff.pinned[1]; !ok || v != 0 {
		t.Errorf("dest==3 indicator not pinned to 0: %v", ff.pinned)
	}
	if v, ok := ff.pinned[3]; !ok || v != 0 {
		t.Errorf("dest==9 indicator not pinned to 0: %v", ff.pinned)
	}
}

func TestCategoricalPruningPinsLogReg(t *testing.T) {
	// LR over one-hot features; equality on dest pins its block, dropping
	// those features from the model (the paper's ~2.1× flight case).
	enc := &ml.OneHotEncoder{Cols: []int{1}, Categories: [][]float64{{0, 1, 2}}, InputDim: 2}
	lr := &ml.LogisticRegression{W: []float64{0.5, 1, -1, 2}, B: 0}
	cat := storage.NewCatalog()
	tb := storage.NewTable("flights", types.NewSchema(
		types.Column{Name: "distance", Type: types.Float},
		types.Column{Name: "dest", Type: types.Float},
	))
	for i := 0; i < 10; i++ {
		_ = tb.AppendRow(float64(i*100), float64(i%3))
	}
	_ = cat.AddTable(tb)
	src := &ir.RelNode{Plan: &plan.Filter{
		Child: plan.NewScan(tb),
		Pred:  expr.NewBinary(expr.OpEq, &expr.Column{Name: "dest"}, expr.FloatLit(1)),
	}}
	tr := &ir.TransformNode{T: enc, In: src}
	mn := &ir.ModelNode{M: lr, InputCols: []string{"distance", "dest"}, OutputCol: types.Column{Name: "p", Type: types.Float}, In: tr}
	g := &ir.Graph{Root: mn}
	ok, err := rulePredicateModelPruning(g, false)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	_, model := mldChain(g)
	nw := len(model.M.(*ml.LogisticRegression).W)
	if nw != 1 {
		t.Errorf("pinned model width = %d, want 1 (only distance left)", nw)
	}
}

func TestClusteredModelMatchesFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := 8
	n := 400
	sample := make([]float64, n*d)
	for i := 0; i < n; i++ {
		c := float64(i % 4)
		for j := 0; j < d; j++ {
			if j < 3 {
				sample[i*d+j] = c * 10 // constant within cluster, well separated
			} else {
				sample[i*d+j] = rng.NormFloat64()
			}
		}
	}
	sm := ml.Matrix{Data: sample, Rows: n, Cols: d}
	w := make([]float64, d)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	lr := &ml.LogisticRegression{W: w, B: 0.2}
	cm, err := BuildClusteredModel(lr, sm, 4, 1e-9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cm.AvgKeptFeatures() >= float64(d) {
		t.Errorf("clustering pinned nothing: avg kept = %v", cm.AvgKeptFeatures())
	}
	want, err := lr.Predict(sm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cm.Predict(sm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		diff := want[i] - got[i]
		if diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("clustered model diverges at %d: %v vs %v", i, want[i], got[i])
		}
	}
	if cm.Kind() != "clustered-logreg" || cm.NumFeatures() != d {
		t.Error("metadata wrong")
	}
}

func TestClusteredModelWidthMismatch(t *testing.T) {
	lr := &ml.LogisticRegression{W: []float64{1, 2}}
	if _, err := BuildClusteredModel(lr, ml.Matrix{Rows: 1, Cols: 3, Data: []float64{1, 2, 3}}, 2, 1e-9, 1); err == nil {
		t.Error("width mismatch should fail")
	}
}

// Semantics check: the full optimizer must preserve predictions for rows
// satisfying the predicate, across a trained tree.
func TestOptimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2000
	d := 5
	xs := make([]float64, n*d)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i*d] = float64(i % 2)
		for j := 1; j < d; j++ {
			xs[i*d+j] = rng.NormFloat64() * 30
		}
		if xs[i*d] == 1 && xs[i*d+4] > 0 {
			ys[i] = 1
		}
	}
	xm := ml.Matrix{Data: xs, Rows: n, Cols: d}
	tree := train.FitTree(xm, ys, train.TreeOptions{MaxDepth: 5, MinLeaf: 10})

	g, cat := hospitalGraph(t, tree, pregnantEq1())
	res, err := Optimize(g, DefaultOptions(&relopt.Optimizer{Catalog: cat, AssumeRI: true}))
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Predictions for pregnant=1 rows must match the original tree; check
	// via whatever the chain became (inlined CASE or model). We verify on
	// the inlined plan by evaluating its CASE against batches.
	var inlined *ir.RelNode
	for _, nd := range res.Graph.Chain() {
		if rn, ok := nd.(*ir.RelNode); ok && rn.In != nil {
			if strings.Contains(plan.Explain(rn.Plan), "CASE") {
				inlined = rn
			}
		}
	}
	if inlined == nil {
		t.Skip("tree was not inlined for this shape")
	}
	proj := inlined.Plan.(*plan.Project)
	// build a batch with pregnant=1 rows
	sch := types.NewSchema(
		types.Column{Name: "pregnant", Type: types.Float},
		types.Column{Name: "age", Type: types.Float},
		types.Column{Name: "gender", Type: types.Float},
		types.Column{Name: "weight", Type: types.Float},
		types.Column{Name: "bp", Type: types.Float},
	)
	b := types.NewBatch(sch)
	var wantRows []int
	for i := 0; i < n && b.Len() < 200; i++ {
		if xs[i*d] == 1 {
			_ = b.AppendRow(xs[i*d], xs[i*d+1], xs[i*d+2], xs[i*d+3], xs[i*d+4])
			wantRows = append(wantRows, i)
		}
	}
	scoreExpr := proj.Exprs[len(proj.Exprs)-1]
	got, err := scoreExpr.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := tree.Predict(xm)
	for k, i := range wantRows {
		if got.AsFloat(k) != full[i] {
			t.Fatalf("row %d: inlined %v vs tree %v", i, got.AsFloat(k), full[i])
		}
	}
}
