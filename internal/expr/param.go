package expr

import (
	"fmt"
	"strconv"
	"strings"

	"raven/internal/types"
)

// Param is a late-bound query parameter (@name in a prepared statement).
// It types as Unknown — comparisons against any column type pass the bind-
// time check, and the concrete type is inferred from the supplied value at
// execute time (see ReplaceParams) — but carries no value: execution must
// substitute a literal first. Evaluating an unbound Param is an error, so
// a parameter that slips through substitution fails loudly instead of
// producing wrong rows.
type Param struct {
	Name string
}

// Eval implements Expr.
func (p *Param) Eval(*types.Batch) (*types.Vector, error) {
	return nil, fmt.Errorf("expr: parameter @%s not bound", p.Name)
}

// Type implements Expr.
func (p *Param) Type(*types.Schema) (types.DataType, error) { return types.Unknown, nil }

func (p *Param) String() string { return "@" + p.Name }

// LiteralFromString infers a literal from a parameter's string value the
// way the SQL lexer types tokens: integer, float, TRUE/FALSE, else
// string. So a parameter "120" compares numerically while "bob" stays a
// VARCHAR. (DECLARE session variables do not use this — they always bind
// as VARCHAR, preserving string semantics for values like '007'.)
func LiteralFromString(s string) *Literal {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return IntLit(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return FloatLit(f)
	}
	if strings.EqualFold(s, "true") {
		return BoolLit(true)
	}
	if strings.EqualFold(s, "false") {
		return BoolLit(false)
	}
	return StringLit(s)
}

// WalkParams calls fn for every Param in e.
func WalkParams(e Expr, fn func(*Param)) {
	switch x := e.(type) {
	case *Param:
		fn(x)
	case *Binary:
		WalkParams(x.L, fn)
		WalkParams(x.R, fn)
	case *Not:
		WalkParams(x.E, fn)
	case *Case:
		for _, w := range x.Whens {
			WalkParams(w.Cond, fn)
			WalkParams(w.Then, fn)
		}
		if x.Else != nil {
			WalkParams(x.Else, fn)
		}
	}
}

// ReplaceParams returns e with every Param replaced by a literal inferred
// from vals (see literalFromString), rebuilding only the spine above
// replaced nodes so the input expression is never mutated (prepared
// statements share it across concurrent executions). The bool reports
// whether anything changed; a Param missing from vals is an error.
func ReplaceParams(e Expr, vals map[string]string) (Expr, bool, error) {
	switch x := e.(type) {
	case *Param:
		v, ok := vals[x.Name]
		if !ok {
			return nil, false, fmt.Errorf("expr: no value bound for parameter @%s", x.Name)
		}
		return LiteralFromString(v), true, nil
	case *Binary:
		l, cl, err := ReplaceParams(x.L, vals)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := ReplaceParams(x.R, vals)
		if err != nil {
			return nil, false, err
		}
		if !cl && !cr {
			return e, false, nil
		}
		return &Binary{Op: x.Op, L: l, R: r}, true, nil
	case *Not:
		inner, c, err := ReplaceParams(x.E, vals)
		if err != nil {
			return nil, false, err
		}
		if !c {
			return e, false, nil
		}
		return &Not{E: inner}, true, nil
	case *Case:
		changed := false
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			c, cc, err := ReplaceParams(w.Cond, vals)
			if err != nil {
				return nil, false, err
			}
			t, ct, err := ReplaceParams(w.Then, vals)
			if err != nil {
				return nil, false, err
			}
			whens[i] = When{Cond: c, Then: t}
			changed = changed || cc || ct
		}
		var els Expr
		if x.Else != nil {
			var ce bool
			var err error
			els, ce, err = ReplaceParams(x.Else, vals)
			if err != nil {
				return nil, false, err
			}
			changed = changed || ce
		}
		if !changed {
			return e, false, nil
		}
		return &Case{Whens: whens, Else: els}, true, nil
	default:
		return e, false, nil
	}
}
