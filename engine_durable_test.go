package raven

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"raven/internal/ml"
	"raven/internal/train"
)

// openDurableEngine opens a durable engine on dir with small segments
// so a few hundred rows span sealed segments plus a live tail.
func openDurableEngine(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(
		WithDataDir(dir),
		WithFsync("off"), // crash here is process death, not power loss
		WithSegmentRows(64),
		WithParallelism(1),
	)
	if err != nil {
		t.Fatalf("open durable engine: %v", err)
	}
	return db
}

// queryFingerprint renders a query's full result deterministically.
func queryFingerprint(t *testing.T, db *DB, q string) string {
	t.Helper()
	rows, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	defer rows.Close()
	cols := rows.Columns()
	vals := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	var sb strings.Builder
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			t.Fatalf("scan %q: %v", q, err)
		}
		for i, v := range vals {
			if i > 0 {
				sb.WriteByte('\t')
			}
			fmt.Fprintf(&sb, "%v", v)
		}
		sb.WriteByte('\n')
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows %q: %v", q, err)
	}
	return sb.String()
}

// TestEngineCrashRecoveryFingerprints is the engine-level half of the
// crash-recovery suite: after an abrupt close (no checkpoint, no sync —
// the WAL tail is all recovery has), scans and PREDICT answer
// byte-identically to the pre-crash engine, and again after a clean
// checkpointed restart.
func TestEngineCrashRecoveryFingerprints(t *testing.T) {
	dir := t.TempDir()
	db := openDurableEngine(t, dir)

	if err := db.Exec(`CREATE TABLE eng_pts (id INT, x FLOAT, y FLOAT)`); err != nil {
		t.Fatal(err)
	}
	// Several statements so earlier rows seal into segments (64/segment)
	// while the last land in the WAL-backed tail.
	const rowsN = 300
	const chunk = 100
	for lo := 0; lo < rowsN; lo += chunk {
		var ins strings.Builder
		ins.WriteString("INSERT INTO eng_pts VALUES ")
		for i := lo; i < lo+chunk; i++ {
			if i > lo {
				ins.WriteString(", ")
			}
			fmt.Fprintf(&ins, "(%d, %g, %g)", i, float64(i)*0.5, float64(i%7))
		}
		if err := db.Exec(ins.String()); err != nil {
			t.Fatal(err)
		}
	}

	// A stored model, so PREDICT exercises model-store recovery too.
	const n = 64
	feats := make([]float64, 0, n*2)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := float64(i)*0.5, float64(i%7)
		feats = append(feats, x0, x1)
		ys[i] = x0 + 2*x1
	}
	xs, err := ml.NewMatrix(feats, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &ml.Pipeline{
		Final:        train.FitTree(xs, ys, train.TreeOptions{MaxDepth: 4, MinLeaf: 4}),
		InputColumns: []string{"x", "y"},
	}
	if err := db.StoreModel("eng_model", pipe); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT COUNT(*) AS n FROM eng_pts`,
		`SELECT id, x, y FROM eng_pts WHERE id >= 60 AND id < 80`,
		`SELECT d.id, p.score FROM PREDICT(MODEL='eng_model',
			DATA=(SELECT * FROM eng_pts) AS d) WITH (score FLOAT) AS p WHERE d.id < 16`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = queryFingerprint(t, db, q)
		if want[i] == "" {
			t.Fatalf("query %d produced no rows pre-crash", i)
		}
	}

	// Crash: no checkpoint, no final sync.
	if err := db.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}

	db = openDurableEngine(t, dir)
	st := db.Stats().Storage
	if st == nil {
		t.Fatal("recovered engine reports no storage stats")
	}
	if st.Segments == 0 || st.SealedRows == 0 {
		t.Fatalf("recovered engine attached no segments: %+v", st)
	}
	for i, q := range queries {
		if got := queryFingerprint(t, db, q); got != want[i] {
			t.Errorf("query %d diverged after crash recovery:\nwant:\n%s\ngot:\n%s", i, want[i], got)
		}
	}

	// Post-recovery writes must still work and persist across a clean
	// checkpointed restart together with everything recovered.
	if err := db.Exec(fmt.Sprintf(`INSERT INTO eng_pts VALUES (%d, %g, %g)`, rowsN, float64(rowsN)*0.5, float64(rowsN%7))); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	wantCount := queryFingerprint(t, db, queries[0])
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	db = openDurableEngine(t, dir)
	defer db.Close()
	if st := db.Stats().Storage; st == nil || st.WalRecords != 0 {
		t.Fatalf("restart after checkpoint should replay an empty log, got %+v", st)
	}
	if got := queryFingerprint(t, db, queries[0]); got != wantCount {
		t.Errorf("count diverged after checkpointed restart: want %q got %q", wantCount, got)
	}
	for i, q := range queries[1:] {
		if got := queryFingerprint(t, db, q); got != want[i+1] {
			t.Errorf("query %d diverged after checkpointed restart", i+1)
		}
	}
}
