// Package raven is a Go reproduction of "Extending Relational Query
// Processing with ML Inference" (Karanasos et al., CIDR 2020): an
// in-memory relational engine with models stored in the database, a
// unified intermediate representation mixing relational and ML operators,
// a cross optimizer (predicate-based model pruning, model-projection
// pushdown, model inlining, NN translation, model clustering, model/query
// splitting), and an in-process tensor runtime with session caching plus
// out-of-process and containerized fallbacks.
//
// # Morsel-parallel execution
//
// Query execution is morsel-parallel: a table scan under per-row operators
// (filter, project, PREDICT) compiles into a single exchange whose workers
// claim fixed-size row morsels from a shared atomic cursor, run the whole
// operator chain — inference included — on each morsel, and merge results
// back in scan order. A parallel plan therefore returns exactly the rows,
// in exactly the order, the serial plan would. Inference sessions come
// from a contention-friendly cache that compiles each model at most once
// under per-key locks, so workers and concurrent queries never serialize
// behind one compile.
//
// The engine-wide degree of parallelism defaults to GOMAXPROCS and is set
// at Open time with WithParallelism (WithMorselSize tunes the work unit);
// QueryOptions.Parallelism overrides it per query, with 1 forcing serial
// execution. Small inputs (below QueryOptions.ParallelThresholdRows,
// default 50k rows) run serially regardless, since fan-out costs more than
// it saves.
//
// Typical use:
//
//	db := raven.Open()
//	db.Exec(`CREATE TABLE patients (id INT PRIMARY KEY, age FLOAT, bp FLOAT)`)
//	db.StoreModel("los", pipeline)                  // or StoreModelScript
//	res, err := db.Query(`SELECT p.score FROM
//	    PREDICT(MODEL='los', DATA=patients AS d) WITH (score FLOAT) AS p
//	    WHERE d.bp > 120`)
package raven

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"raven/internal/codegen"
	"raven/internal/exec"
	"raven/internal/expr"
	"raven/internal/ir"
	"raven/internal/ml"
	"raven/internal/plan"
	"raven/internal/pyanal"
	"raven/internal/relopt"
	"raven/internal/rt"
	"raven/internal/sql"
	"raven/internal/storage"
	"raven/internal/types"
	"raven/internal/xopt"
)

// Mode re-exports the runtime execution modes for model invocations.
type Mode = rt.Mode

// Execution modes for MLD model stages.
const (
	// ModeInProcess interprets classical pipelines inside the engine.
	ModeInProcess = rt.ModeInProcess
	// ModeInProcessNN compiles pipelines to tensor graphs run in-process
	// with session caching (the Raven PREDICT path).
	ModeInProcessNN = rt.ModeInProcessNN
	// ModeOutOfProcess scores through an external-runtime boundary
	// (startup latency + serialization), like sp_execute_external_script.
	ModeOutOfProcess = rt.ModeOutOfProcess
	// ModeContainer scores over a localhost REST endpoint.
	ModeContainer = rt.ModeContainer
)

// QueryOptions tunes one query's optimization and execution.
type QueryOptions struct {
	// CrossOptimize enables the cross optimizer (default set of rules).
	CrossOptimize bool
	// UseStatistics derives pruning predicates from table statistics.
	UseStatistics bool
	// ModelQuerySplitting enables the splitting transformation.
	ModelQuerySplitting bool
	// DisableInlining / DisableNNTranslation / DisablePruning /
	// DisableProjectionPushdown ablate single rules.
	DisableInlining           bool
	DisableNNTranslation      bool
	DisablePruning            bool
	DisableProjectionPushdown bool
	// UseGPU runs LA stages on the simulated accelerator.
	UseGPU bool
	// Mode executes remaining MLD stages (default ModeInProcess).
	Mode Mode
	// Parallelism is the morsel-exchange worker count; 0 = engine default
	// (GOMAXPROCS unless overridden at Open), 1 = sequential.
	Parallelism int
	// MorselSize is rows per parallel work unit; 0 = engine default.
	MorselSize int
	// ParallelThresholdRows gates parallel execution by scan size; 0 =
	// default 50k rows (set 1 to force parallelism on small tables).
	ParallelThresholdRows int
	// DisableSessionCache compiles a fresh session per query (the
	// standalone-runtime behaviour in Fig 3).
	DisableSessionCache bool
}

// DefaultQueryOptions is the engine's standard configuration: all
// cross-optimizations on, in-process execution, parallel scans.
func DefaultQueryOptions() QueryOptions {
	return QueryOptions{CrossOptimize: true, Mode: rt.ModeInProcess, Parallelism: 0}
}

// Result is a completed query.
type Result struct {
	Batch *types.Batch
	// AppliedRules lists the cross-optimizer rules that fired.
	AppliedRules []string
	// Elapsed is end-to-end latency (optimize + execute).
	Elapsed time.Duration
}

// DB is an embedded Raven engine instance.
type DB struct {
	mu      sync.Mutex
	catalog *storage.Catalog
	runtime *rt.Runtime
	vars    map[string]string
	// DefaultParallelism is the morsel-exchange worker count for queries
	// that leave QueryOptions.Parallelism at 0. Defaults to GOMAXPROCS.
	DefaultParallelism int
	// MorselSize is the engine-wide rows-per-morsel for parallel plans; 0
	// uses the executor default.
	MorselSize int
}

// Option configures an engine at Open time.
type Option func(*DB)

// WithParallelism sets the engine's default degree of parallelism (the
// morsel-exchange worker count). Values < 1 are ignored, keeping the
// GOMAXPROCS default; 1 makes the engine serial by default.
func WithParallelism(n int) Option {
	return func(db *DB) {
		if n >= 1 {
			db.DefaultParallelism = n
		}
	}
}

// WithMorselSize sets the engine-wide rows-per-morsel for parallel plans.
// Values < 1 are ignored.
func WithMorselSize(n int) Option {
	return func(db *DB) {
		if n >= 1 {
			db.MorselSize = n
		}
	}
}

// Open creates an empty engine.
func Open(opts ...Option) *DB {
	db := &DB{
		catalog:            storage.NewCatalog(),
		runtime:            rt.NewRuntime(),
		vars:               make(map[string]string),
		DefaultParallelism: runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Catalog exposes the table catalog (for generators and tools).
func (db *DB) Catalog() *storage.Catalog { return db.catalog }

// Runtime exposes the inference runtime (session cache, providers).
func (db *DB) Runtime() *rt.Runtime { return db.runtime }

// Exec runs DDL/DML statements (CREATE TABLE, DROP TABLE, INSERT,
// DECLARE). Multiple statements may be separated by semicolons; SELECTs
// are rejected here — use Query.
func (db *DB) Exec(script string) error {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if err := db.execOne(st); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) execOne(st sql.Statement) error {
	switch x := st.(type) {
	case *sql.CreateTableStmt:
		t := storage.NewTable(x.Name, types.NewSchema(x.Cols...))
		if err := db.catalog.AddTable(t); err != nil {
			return err
		}
		if x.PrimaryKey != "" {
			db.catalog.SetUniqueKey(x.Name, x.PrimaryKey)
		}
		return nil
	case *sql.DropTableStmt:
		return db.catalog.DropTable(x.Name)
	case *sql.InsertStmt:
		return db.execInsert(x)
	case *sql.DeclareStmt:
		db.mu.Lock()
		db.vars[x.Name] = x.Value
		db.mu.Unlock()
		return nil
	case *sql.SelectStmt:
		return fmt.Errorf("raven: use Query for SELECT statements")
	default:
		return fmt.Errorf("raven: unsupported statement %T", st)
	}
}

func (db *DB) execInsert(x *sql.InsertStmt) error {
	t, err := db.catalog.Table(x.Table)
	if err != nil {
		return err
	}
	sch := t.Schema()
	for _, row := range x.Rows {
		if len(row) != sch.Len() {
			return fmt.Errorf("raven: INSERT row has %d values, table %s has %d columns", len(row), x.Table, sch.Len())
		}
		vals := make([]any, len(row))
		for i, e := range row {
			v, err := literalValue(e, sch.Columns[i].Type)
			if err != nil {
				return fmt.Errorf("raven: INSERT into %s column %s: %w", x.Table, sch.Columns[i].Name, err)
			}
			vals[i] = v
		}
		if err := t.AppendRow(vals...); err != nil {
			return err
		}
	}
	return nil
}

func literalValue(e sql.Expr, want types.DataType) (any, error) {
	switch v := e.(type) {
	case *sql.NumLit:
		switch want {
		case types.Int:
			if v.IsInt {
				return v.I, nil
			}
			return int64(v.F), nil
		case types.Float:
			if v.IsInt {
				return float64(v.I), nil
			}
			return v.F, nil
		case types.Bool:
			if v.IsInt {
				return v.I != 0, nil
			}
			return v.F != 0, nil
		}
		return nil, fmt.Errorf("numeric value for %v column", want)
	case *sql.StrLit:
		if want != types.String {
			return nil, fmt.Errorf("string value for %v column", want)
		}
		return v.S, nil
	case *sql.BoolLitE:
		if want != types.Bool {
			return nil, fmt.Errorf("bool value for %v column", want)
		}
		return v.B, nil
	default:
		return nil, fmt.Errorf("INSERT values must be literals, got %T", e)
	}
}

// StoreModel stores a fitted pipeline under name (versioned,
// transactional). Subsequent queries invoke it via PREDICT(MODEL='name').
func (db *DB) StoreModel(name string, p *ml.Pipeline) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("raven: model %q: %w", name, err)
	}
	blob, err := ml.Marshal(p)
	if err != nil {
		return err
	}
	if err := db.catalog.Models.PutModel(name, "gob-pipeline", blob, nil); err != nil {
		return err
	}
	// A new version invalidates any cached inference session.
	if m, err := db.catalog.Models.Latest(name); err == nil {
		db.runtime.Cache.Invalidate(m.Hash)
	}
	return nil
}

// StoreModelScript statically analyzes a Python pipeline script (paper
// §3.2), fits it on the provided training sample, and stores the result.
// The returned pipeline is also handed back for inspection.
func (db *DB) StoreModelScript(name, script string, trainX ml.Matrix, trainY []float64, seed int64) (*ml.Pipeline, error) {
	spec, err := pyanal.Analyze(script)
	if err != nil {
		return nil, err
	}
	pipe, err := spec.Fit(trainX, trainY, seed)
	if err != nil {
		return nil, err
	}
	if err := db.StoreModel(name, pipe); err != nil {
		return nil, err
	}
	return pipe, nil
}

// LoadModel fetches the latest stored version of a pipeline.
func (db *DB) LoadModel(name string) (*ml.Pipeline, error) {
	m, err := db.catalog.Models.Latest(name)
	if err != nil {
		return nil, err
	}
	return ml.Unmarshal(m.Bytes)
}

// Query parses, binds, optimizes and executes a SELECT (optionally with
// PREDICT), with default options.
func (db *DB) Query(q string) (*Result, error) {
	return db.QueryWithOptions(q, DefaultQueryOptions())
}

// QueryWithOptions runs a SELECT under explicit optimization/execution
// options.
func (db *DB) QueryWithOptions(q string, opts QueryOptions) (*Result, error) {
	start := time.Now()
	op, applied, err := db.compile(q, opts)
	if err != nil {
		return nil, err
	}
	batch, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	return &Result{Batch: batch, AppliedRules: applied, Elapsed: time.Since(start)}, nil
}

// compile runs the full front half: parse → bind → unified IR → cross
// optimizer → runtime code generation.
func (db *DB) compile(q string, opts QueryOptions) (exec.Operator, []string, error) {
	stmts, err := sql.ParseScript(q)
	if err != nil {
		return nil, nil, err
	}
	var sel *sql.SelectStmt
	for _, st := range stmts {
		switch x := st.(type) {
		case *sql.DeclareStmt:
			db.mu.Lock()
			db.vars[x.Name] = x.Value
			db.mu.Unlock()
		case *sql.SelectStmt:
			if sel != nil {
				return nil, nil, fmt.Errorf("raven: multiple SELECTs in one Query call")
			}
			sel = x
		default:
			if err := db.execOne(st); err != nil {
				return nil, nil, err
			}
		}
	}
	if sel == nil {
		return nil, nil, fmt.Errorf("raven: Query needs a SELECT statement")
	}

	binder := plan.NewBinder(db.catalog)
	db.mu.Lock()
	for k, v := range db.vars {
		binder.Vars[k] = v
	}
	db.mu.Unlock()
	logical, err := binder.BindSelect(sel)
	if err != nil {
		return nil, nil, err
	}

	// The cache key must be derived before IR construction: FromPlan
	// splices the Predict node out of the plan.
	cacheKey := db.modelCacheKey(logical)

	graph, err := ir.FromPlan(logical, db.resolvePipeline)
	if err != nil {
		return nil, nil, err
	}

	var applied []string
	if opts.DisableSessionCache {
		cacheKey = ""
	}
	if !opts.CrossOptimize {
		// Standard DB optimizations (predicate/projection pushdown, join
		// elimination) always run — SQL Server's optimizer does not switch
		// off. Only the cross-IR rules are gated by CrossOptimize.
		xo := xopt.Options{Relational: true, RelOpt: &relopt.Optimizer{Catalog: db.catalog, AssumeRI: true}}
		if _, err := xopt.Optimize(graph, xo); err != nil {
			return nil, nil, err
		}
	}
	if opts.CrossOptimize {
		xo := xopt.DefaultOptions(&relopt.Optimizer{Catalog: db.catalog, AssumeRI: true})
		xo.UseDataStatistics = opts.UseStatistics
		xo.ModelQuerySplitting = opts.ModelQuerySplitting
		if opts.DisableInlining {
			xo.ModelInlining = false
		}
		if opts.DisableNNTranslation {
			xo.NNTranslation = false
		}
		if opts.DisablePruning {
			xo.PredicateModelPruning = false
		}
		if opts.DisableProjectionPushdown {
			xo.ModelProjectionPushdown = false
		}
		xo.UseGPU = opts.UseGPU
		res, err := xopt.Optimize(graph, xo)
		if err != nil {
			return nil, nil, err
		}
		applied = res.Applied
		graph = res.Graph
		// The optimized model is specialized to this query's predicates:
		// key the session cache by model hash + query fingerprint so
		// differently-specialized sessions never collide, while identical
		// repeated queries (warm runs) still hit.
		if cacheKey != "" && len(applied) > 0 {
			sum := sha256.Sum256([]byte(q))
			cacheKey += "#" + hex.EncodeToString(sum[:8])
		}
	}

	par := opts.Parallelism
	if par == 0 {
		par = db.DefaultParallelism
	}
	morsel := opts.MorselSize
	if morsel == 0 {
		morsel = db.MorselSize
	}
	cfg := &codegen.Config{
		Runtime:               db.runtime,
		Mode:                  opts.Mode,
		Parallelism:           par,
		ParallelThresholdRows: opts.ParallelThresholdRows,
		MorselSize:            morsel,
		CacheKey:              cacheKey,
	}
	op, err := codegen.Compile(graph, cfg)
	if err != nil {
		return nil, nil, err
	}
	return op, applied, nil
}

// resolvePipeline loads the stored pipeline behind a model name.
func (db *DB) resolvePipeline(name string) (*ml.Pipeline, error) {
	return db.LoadModel(name)
}

// modelCacheKey derives the session-cache key from the (first) PREDICT
// model's stored hash.
func (db *DB) modelCacheKey(p plan.Node) string {
	var key string
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if key != "" {
			return
		}
		if pr, ok := n.(*plan.Predict); ok {
			if m, err := db.catalog.Models.Latest(pr.ModelName); err == nil {
				key = m.Hash
			}
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	return key
}

// Explain returns a report of the query's plans: the bound logical plan,
// the unified IR before and after cross optimization (with engine
// placement), and the regenerated SQL.
func (db *DB) Explain(q string, opts QueryOptions) (string, error) {
	stmts, err := sql.ParseScript(q)
	if err != nil {
		return "", err
	}
	var sel *sql.SelectStmt
	for _, st := range stmts {
		if x, ok := st.(*sql.SelectStmt); ok {
			sel = x
		} else if d, ok := st.(*sql.DeclareStmt); ok {
			db.mu.Lock()
			db.vars[d.Name] = d.Value
			db.mu.Unlock()
		}
	}
	if sel == nil {
		return "", fmt.Errorf("raven: Explain needs a SELECT")
	}
	binder := plan.NewBinder(db.catalog)
	db.mu.Lock()
	for k, v := range db.vars {
		binder.Vars[k] = v
	}
	db.mu.Unlock()
	logical, err := binder.BindSelect(sel)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("== logical plan ==\n")
	sb.WriteString(plan.Explain(logical))

	graph, err := ir.FromPlan(logical, db.resolvePipeline)
	if err != nil {
		return "", err
	}
	sb.WriteString("\n== unified IR ==\n")
	sb.WriteString(graph.Explain())

	if opts.CrossOptimize {
		xo := xopt.DefaultOptions(&relopt.Optimizer{Catalog: db.catalog, AssumeRI: true})
		xo.UseDataStatistics = opts.UseStatistics
		xo.ModelQuerySplitting = opts.ModelQuerySplitting
		if opts.DisableInlining {
			xo.ModelInlining = false
		}
		if opts.DisableNNTranslation {
			xo.NNTranslation = false
		}
		res, err := xopt.Optimize(graph, xo)
		if err != nil {
			return "", err
		}
		sb.WriteString("\n== optimized IR (rules: " + strings.Join(res.Applied, ", ") + ") ==\n")
		sb.WriteString(res.Graph.Explain())
		sb.WriteString("\n== regenerated SQL ==\n")
		sb.WriteString(codegen.GenerateSQL(res.Graph))
	}
	return sb.String(), nil
}

// QuerySQLOnly executes a SELECT without the IR/cross-optimizer machinery
// (pure relational path with the standard optimizer); useful for data
// exploration and tests.
func (db *DB) QuerySQLOnly(q string) (*types.Batch, error) {
	st, err := sql.Parse(q)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("raven: QuerySQLOnly needs a SELECT")
	}
	binder := plan.NewBinder(db.catalog)
	logical, err := binder.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	ro := &relopt.Optimizer{Catalog: db.catalog, AssumeRI: true}
	logical, err = ro.Optimize(logical)
	if err != nil {
		return nil, err
	}
	op, err := exec.Compile(logical, &exec.Env{Parallelism: db.DefaultParallelism, MorselSize: db.MorselSize})
	if err != nil {
		return nil, err
	}
	return exec.Collect(op)
}

// Filter is re-exported so examples can build predicates programmatically.
type Filter = expr.Expr

// ClusteredModel re-exports the model-clustering facility (paper §4.1): a
// k-means router over per-cluster specialized models.
type ClusteredModel = xopt.ClusteredModel

// BuildClusteredModel precompiles per-cluster specialized models for a
// logistic regression over a data sample.
func BuildClusteredModel(lr *ml.LogisticRegression, sample ml.Matrix, k int, eps float64, seed int64) (*ClusteredModel, error) {
	return xopt.BuildClusteredModel(lr, sample, k, eps, seed)
}
