package raven

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"raven/internal/exec"
	"raven/internal/rescache"
	"raven/internal/sched"
	"raven/internal/storage"
	"raven/internal/types"
)

// WithResultCache enables the semantic result cache: maxBytes of
// materialized query results, keyed by (SQL, options fingerprint,
// referenced session variables, parameter values) and validated at
// lookup against the catalog version and the data versions of every
// table the plan reads — so DDL, model stores and INSERTs all
// invalidate exactly the entries they affect. Hits are served before
// admission control (zero scheduler slots) and concurrent identical
// misses collapse to one execution. Values <= 0 leave the cache off.
// A single result larger than maxBytes/4 is never cached.
func WithResultCache(maxBytes int64) Option {
	return func(db *DB) {
		if maxBytes > 0 {
			db.results = rescache.New[*resultEntry](maxBytes, 0)
		}
	}
}

// resultEntry is one cached materialized result with the dependency
// snapshot its validity is checked against.
type resultEntry struct {
	schema  *types.Schema
	batch   *types.Batch
	applied []string
	// version is the catalog version the plan compiled against; tables
	// and tableVers snapshot the data versions of every table the plan
	// reads, captured before execution opened (so an append racing the
	// execution always invalidates, never goes unseen).
	version   uint64
	tables    []*storage.Table
	tableVers []uint64
}

// resultEntryValid is the lookup predicate: the catalog and every
// referenced table must be exactly where they were when the entry was
// captured.
func (db *DB) resultEntryValid(e *resultEntry) bool {
	if e.version != db.catalog.Version() {
		return false
	}
	for i, t := range e.tables {
		if t.DataVersion() != e.tableVers[i] {
			return false
		}
	}
	return true
}

// noResultCacheKey marks a context whose calls bypass the result cache
// (the wire no_cache flag on prepared-statement executions, which have
// no per-call options).
type noResultCacheKey struct{}

// ContextWithoutResultCache returns a context whose queries skip the
// result cache entirely: no lookups, no population. Wire front ends
// map a per-request no_cache flag to it.
func ContextWithoutResultCache(ctx context.Context) context.Context {
	return context.WithValue(ctx, noResultCacheKey{}, true)
}

func resultCacheBypassed(ctx context.Context) bool {
	b, _ := ctx.Value(noResultCacheKey{}).(bool)
	return b
}

// resultCacheEligible gates the cache to calls it can serve correctly:
// the cache exists, nothing opted out, the plan is reusable
// (UseStatistics specializes to a data range; DisablePlanCache is the
// explicit cold path), and the script is read-only — a script with side
// effects must execute every one of them on every call, so it can
// neither be served from cache nor funneled through singleflight.
func (db *DB) resultCacheEligible(ctx context.Context, opts QueryOptions, q string) bool {
	if db.results == nil || opts.NoResultCache || !cacheablePlan(opts) {
		return false
	}
	if resultCacheBypassed(ctx) {
		return false
	}
	return readOnlyScript(q)
}

// readOnlyScript reports whether every statement in the script starts
// with SELECT or DECLARE. The scan is textual and conservative: a
// statement boundary split inside a string literal can only make a
// cacheable script look uncacheable, never the reverse.
func readOnlyScript(q string) bool {
	for _, stmt := range strings.Split(q, ";") {
		s := strings.TrimSpace(stmt)
		if s == "" {
			continue
		}
		switch strings.ToUpper(firstWord(s)) {
		case "SELECT", "DECLARE":
		default:
			return false
		}
	}
	return true
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return s[:i]
		}
	}
	return s
}

// resultKey extends the plan-cache key (SQL, options fingerprint,
// referenced vars) with the execute-time parameter values — the full
// semantic identity of one result. The catalog and data versions are
// deliberately absent: they are validated at lookup, so an invalidated
// entry is dropped (and counted) instead of stranded under a dead key.
func (db *DB) resultKey(q string, opts QueryOptions, allowParams bool, vars map[string]string, params []Param) string {
	key := db.planKey(q, opts, allowParams, vars)
	if len(params) == 0 {
		return key
	}
	sorted := append([]Param(nil), params...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	h := sha256.New()
	for _, p := range sorted {
		fmt.Fprintf(h, "%d:%s=%d:%s;", len(p.Name), p.Name, len(p.Value), p.Value)
	}
	return key + "|p=" + hex.EncodeToString(h.Sum(nil)[:12])
}

// resultLookup consults the cache under singleflight. Outcomes:
// (rows, true, nil, nil) — a hit, served without touching admission;
// (nil, false, flight, nil) — a miss with leadership, the caller must
// execute and settle the flight; (nil, false, nil, err) — ctx expired
// while waiting on another caller's flight.
func (db *DB) resultLookup(ctx context.Context, key string, opts QueryOptions, start time.Time) (*Rows, bool, *rescache.Flight[*resultEntry], error) {
	e, hit, fl, err := db.results.Do(ctx, key, db.resultEntryValid)
	if err != nil {
		return nil, false, nil, err
	}
	if !hit {
		return nil, false, fl, nil
	}
	db.noteResultHit(ctx, opts)
	rows, err := newRows(ctx, &cachedBatchOp{schema: e.schema, batch: e.batch}, e.applied, time.Since(start), nil)
	return rows, true, nil, err
}

// noteResultHit attributes a cache hit to the call's tenant, mirroring
// the scheduler's attribution rules so billing and admission agree on
// identity even though hits never reach the scheduler.
func (db *DB) noteResultHit(ctx context.Context, opts QueryOptions) {
	tenant := db.tagFor(ctx, opts).Tenant
	if tenant == "" {
		if tenant = db.schedOpts.DefaultTenant; tenant == "" {
			tenant = sched.DefaultTenantName
		}
	}
	db.resHitMu.Lock()
	defer db.resHitMu.Unlock()
	if db.resHitsByTenant == nil {
		db.resHitsByTenant = make(map[string]uint64)
	}
	if _, ok := db.resHitsByTenant[tenant]; !ok && len(db.resHitsByTenant) >= maxTenantHitKeys {
		tenant = sched.OverflowTenantName
	}
	db.resHitsByTenant[tenant]++
}

// maxTenantHitKeys bounds the per-tenant hit map; beyond it, new
// tenants fold into the scheduler's overflow bucket so an unbounded
// tenant-name stream cannot grow the stats snapshot without limit —
// and so the cache's catch-all label always matches the scheduler's
// (sched.OverflowTenantName) in merged per-tenant dashboards.
const maxTenantHitKeys = 128

// ResultCacheInfo is the result cache's stats snapshot (see
// Stats.ResultCache).
type ResultCacheInfo struct {
	rescache.Stats
	HitsByTenant map[string]uint64 `json:"hits_by_tenant,omitempty"`
	// NegHits counts queries refused from the negative cache — repeat
	// compile failures served without re-parsing; NegEntries is the
	// number of remembered failures (each a short error string).
	NegHits    uint64 `json:"neg_hits,omitempty"`
	NegEntries int    `json:"neg_entries,omitempty"`
}

func (db *DB) resultCacheInfo() *ResultCacheInfo {
	if db.results == nil {
		return nil
	}
	info := &ResultCacheInfo{Stats: db.results.Stats()}
	db.resHitMu.Lock()
	if len(db.resHitsByTenant) > 0 {
		info.HitsByTenant = make(map[string]uint64, len(db.resHitsByTenant))
		for k, v := range db.resHitsByTenant {
			info.HitsByTenant[k] = v
		}
	}
	db.resHitMu.Unlock()
	db.negMu.Lock()
	info.NegHits = db.negHits
	info.NegEntries = len(db.negCache)
	db.negMu.Unlock()
	return info
}

// negEntry is one remembered compile failure. The catalog version pins
// its validity the same way resultEntryValid pins a positive entry's:
// DDL or a model store may legitimately turn the error into a success,
// so a stale-version entry never answers.
type negEntry struct {
	err     error
	version uint64
	until   time.Time
}

// negCacheTTL bounds how long a compile failure answers from memory.
// Short on purpose: negative entries exist to absorb tight client retry
// loops, not to make errors sticky. Tests may shorten it.
var negCacheTTL = time.Second

// maxNegEntries bounds the negative cache; at the cap an arbitrary
// entry is evicted — with a 1s TTL the population self-cleans, the cap
// only guards against a burst of distinct broken queries.
const maxNegEntries = 256

// negLookup answers a query from the negative cache: a non-nil return
// is the remembered compile error, served before admission and before
// the result-cache flight. Expired and stale-version entries are
// dropped, not served.
func (db *DB) negLookup(key string) error {
	if db.results == nil || key == "" {
		return nil
	}
	db.negMu.Lock()
	defer db.negMu.Unlock()
	e, ok := db.negCache[key]
	if !ok {
		return nil
	}
	if time.Now().After(e.until) || e.version != db.catalog.Version() {
		delete(db.negCache, key)
		return nil
	}
	db.negHits++
	return e.err
}

// noteNegative remembers a compile failure under the query's result key.
// Callers pass the key they looked up with (empty when the call was not
// cache-eligible, which makes this a no-op) and the planFor error —
// never execution or admission errors, which are transient.
func (db *DB) noteNegative(key string, err error) {
	if db.results == nil || key == "" || err == nil {
		return
	}
	db.negMu.Lock()
	defer db.negMu.Unlock()
	if db.negCache == nil {
		db.negCache = make(map[string]negEntry, maxNegEntries)
	}
	if _, ok := db.negCache[key]; !ok && len(db.negCache) >= maxNegEntries {
		for k := range db.negCache {
			delete(db.negCache, k)
			break
		}
	}
	db.negCache[key] = negEntry{err: err, version: db.catalog.Version(), until: time.Now().Add(negCacheTTL)}
}

// cachedBatchOp serves one cached batch as an operator so hits flow
// through the ordinary Rows machinery. The batch is shared zero-copy
// across concurrent hits; consumers must not mutate it — the same
// contract as zero-copy table scans.
type cachedBatchOp struct {
	schema *types.Schema
	batch  *types.Batch
	done   bool
}

func (o *cachedBatchOp) Open() error           { return nil }
func (o *cachedBatchOp) Close() error          { return nil }
func (o *cachedBatchOp) Schema() *types.Schema { return o.schema }
func (o *cachedBatchOp) Next() (*types.Batch, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	return o.batch, nil
}

// leaderRows builds the flight leader's Rows over the teed operator
// tree. Beyond newRows it arms a GC cleanup that cancels the flight if
// the Rows is abandoned without being drained or closed: an unsettled
// flight blocks every concurrent identical query in Do, so a leaked
// leader must release its waiters (at the latest when the collector
// notices the Rows is unreachable) rather than wedge the key forever.
// Settling is idempotent, so the cleanup is a no-op after the ordinary
// Commit/Abandon/Cancel paths in teeOp.
func leaderRows(ctx context.Context, db *DB, op exec.Operator, fl *rescache.Flight[*resultEntry], tpl *cachedPlan, start time.Time, release func()) (*Rows, error) {
	rows, err := newRows(ctx, db.teeResult(op, fl, tpl), tpl.applied, time.Since(start), release)
	if err == nil && fl != nil {
		// The cleanup closure must not reference rows itself (that would
		// keep it reachable forever); fl is passed as the argument.
		runtime.AddCleanup(rows, func(fl *rescache.Flight[*resultEntry]) { fl.Cancel() }, fl)
	}
	return rows, err
}

// teeResult wraps the operator tree of a flight leader so the stream
// populates the cache as it is consumed. Table data versions are
// captured here — before Open, so an append that races execution
// invalidates the entry rather than slipping under it.
func (db *DB) teeResult(op exec.Operator, fl *rescache.Flight[*resultEntry], tpl *cachedPlan) exec.Operator {
	if fl == nil {
		return op
	}
	vers := make([]uint64, len(tpl.tables))
	for i, t := range tpl.tables {
		vers[i] = t.DataVersion()
	}
	return &teeOp{
		inner: op,
		fl:    fl,
		entry: &resultEntry{
			schema:    op.Schema(),
			applied:   tpl.applied,
			version:   tpl.version,
			tables:    tpl.tables,
			tableVers: vers,
		},
		acc: types.NewBatch(op.Schema()),
		cap: db.results.EntryCap(),
	}
}

// teeOp copies every batch it relays into an accumulator (deep copies —
// upstream operators may pool and recycle their batches) and settles
// the flight at end of stream: Commit on a complete, under-cap result;
// Abandon the moment the accumulation crosses the per-entry cap;
// Cancel on error or early close, releasing waiters to execute for
// themselves.
type teeOp struct {
	inner exec.Operator
	fl    *rescache.Flight[*resultEntry]
	entry *resultEntry
	acc   *types.Batch
	size  int64
	cap   int64

	abandoned bool
	eof       bool
	settled   bool
}

func (t *teeOp) Schema() *types.Schema { return t.inner.Schema() }
func (t *teeOp) Open() error           { return t.inner.Open() }

func (t *teeOp) Next() (*types.Batch, error) {
	b, err := t.inner.Next()
	if err != nil {
		return b, err
	}
	if b == nil {
		t.eof = true
		return nil, nil
	}
	if !t.abandoned {
		if err := t.acc.Append(b); err != nil {
			t.abandoned = true
			t.acc = nil
			t.settled = true
			t.fl.Cancel()
		} else {
			t.size += batchBytes(b)
			if t.size > t.cap {
				t.abandoned = true
				t.acc = nil
				t.settled = true
				t.fl.Abandon()
			}
		}
	}
	return b, nil
}

func (t *teeOp) Close() error {
	err := t.inner.Close()
	if !t.settled {
		t.settled = true
		if t.eof && !t.abandoned {
			t.entry.batch = t.acc
			t.fl.Commit(t.entry, t.size)
		} else {
			t.fl.Cancel()
		}
	}
	return err
}

// batchBytes estimates a batch's resident size for the cache budget.
func batchBytes(b *types.Batch) int64 {
	var n int64 = 64
	for _, v := range b.Vecs {
		n += int64(len(v.Floats))*8 + int64(len(v.Ints))*8 + int64(len(v.Bools)) + int64(len(v.NullBits))*8
		for _, s := range v.Strings {
			n += int64(len(s)) + 16
		}
	}
	return n
}
