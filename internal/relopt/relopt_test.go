package relopt

import (
	"strings"
	"testing"

	"raven/internal/expr"
	"raven/internal/plan"
	"raven/internal/sql"
	"raven/internal/storage"
	"raven/internal/types"
)

func hospitalCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	pi := storage.NewTable("patient_info", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "age", Type: types.Float},
		types.Column{Name: "pregnant", Type: types.Int},
		types.Column{Name: "gender", Type: types.Int},
	))
	bt := storage.NewTable("blood_tests", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "bp", Type: types.Float},
	))
	pt := storage.NewTable("prenatal_tests", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "fetal_hr", Type: types.Float},
	))
	for i := 0; i < 20; i++ {
		_ = pi.AppendRow(int64(i), float64(20+i), int64(i%2), int64(i%2))
		_ = bt.AppendRow(int64(i), float64(100+i))
		_ = pt.AppendRow(int64(i), float64(120+i))
	}
	for _, tb := range []*storage.Table{pi, bt, pt} {
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
		cat.SetUniqueKey(tb.Name, "id")
	}
	return cat
}

func bindQ(t *testing.T, cat *storage.Catalog, q string) plan.Node {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	b := plan.NewBinder(cat)
	p, err := b.BindSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPredicatePushdownThroughJoin(t *testing.T) {
	cat := hospitalCatalog(t)
	p := bindQ(t, cat, `SELECT pi.age FROM patient_info AS pi
		JOIN blood_tests AS bt ON pi.id = bt.id
		WHERE pi.pregnant = 1 AND bt.bp > 120`)
	o := &Optimizer{Catalog: cat, AssumeRI: true}
	opt, err := o.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Explain(opt)
	// No filter should remain above the join; both conjuncts land on scans.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if strings.Contains(lines[0], "Filter") || strings.Contains(lines[1], "Filter") && strings.Contains(lines[1], "AND") {
		t.Errorf("filter not pushed:\n%s", s)
	}
	if !strings.Contains(s, "Filter((pregnant = 1))") && !strings.Contains(s, "Filter((pi.pregnant = 1))") {
		t.Errorf("pregnant filter missing below join:\n%s", s)
	}
}

func TestPredicatePushdownBelowPredict(t *testing.T) {
	cat := hospitalCatalog(t)
	tb, _ := cat.Table("patient_info")
	scan := plan.NewScan(tb)
	pr := plan.NewPredict(scan, "m", []types.Column{{Name: "score", Type: types.Float}})
	pred := expr.And([]expr.Expr{
		expr.NewBinary(expr.OpEq, &expr.Column{Name: "pregnant"}, expr.IntLit(1)),
		expr.NewBinary(expr.OpGt, &expr.Column{Name: "score"}, expr.FloatLit(7)),
	})
	root := &plan.Filter{Child: pr, Pred: pred}
	o := &Optimizer{Catalog: cat, AssumeRI: true}
	opt, err := o.Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Explain(opt)
	// score predicate stays above Predict; pregnant predicate goes below.
	iPredict := strings.Index(s, "Predict")
	iScore := strings.Index(s, "score")
	iPreg := strings.Index(s, "pregnant")
	if iScore > iPredict || iPreg < iPredict {
		t.Errorf("pushdown wrong:\n%s", s)
	}
}

func TestColumnPruningIntoScan(t *testing.T) {
	cat := hospitalCatalog(t)
	p := bindQ(t, cat, "SELECT age FROM patient_info WHERE pregnant = 1")
	o := &Optimizer{Catalog: cat, AssumeRI: true}
	opt, err := o.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Explain(opt)
	if !strings.Contains(s, "cols=[age,pregnant]") {
		t.Errorf("scan not pruned:\n%s", s)
	}
}

func TestJoinEliminationOnUnusedSide(t *testing.T) {
	cat := hospitalCatalog(t)
	// prenatal_tests contributes no output columns: with unique key + RI
	// the join is dropped (paper §2).
	p := bindQ(t, cat, `SELECT pi.age, bt.bp FROM patient_info AS pi
		JOIN blood_tests AS bt ON pi.id = bt.id
		JOIN prenatal_tests AS pt ON bt.id = pt.id`)
	o := &Optimizer{Catalog: cat, AssumeRI: true}
	opt, err := o.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Explain(opt)
	if strings.Contains(s, "prenatal_tests") {
		t.Errorf("join not eliminated:\n%s", s)
	}
	if !strings.Contains(s, "blood_tests") {
		t.Errorf("needed join over-eliminated:\n%s", s)
	}

	// Without RI assumption the join must stay.
	p2 := bindQ(t, cat, `SELECT pi.age FROM patient_info AS pi
		JOIN prenatal_tests AS pt ON pi.id = pt.id`)
	o2 := &Optimizer{Catalog: cat, AssumeRI: false}
	opt2, err := o2.Optimize(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(opt2), "prenatal_tests") {
		t.Error("join eliminated without RI assumption")
	}
}

func TestConstantFoldingDropsTrueFilter(t *testing.T) {
	cat := hospitalCatalog(t)
	tb, _ := cat.Table("patient_info")
	root := &plan.Filter{
		Child: plan.NewScan(tb),
		Pred:  expr.NewBinary(expr.OpGt, expr.IntLit(2), expr.IntLit(1)),
	}
	o := &Optimizer{Catalog: cat}
	opt, err := o.Optimize(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opt.(*plan.Scan); !ok {
		t.Errorf("always-true filter not dropped: %s", plan.Explain(opt))
	}
}

func TestModelInputsKeptByPruning(t *testing.T) {
	cat := hospitalCatalog(t)
	tb, _ := cat.Table("patient_info")
	pr := plan.NewPredict(plan.NewScan(tb), "m", []types.Column{{Name: "score", Type: types.Float}})
	proj, err := plan.NewProject(pr, []expr.Expr{&expr.Column{Name: "score"}}, []string{"score"})
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimizer{
		Catalog:  cat,
		AssumeRI: true,
		ModelInputs: func(name string) ([]string, error) {
			return []string{"age", "pregnant"}, nil
		},
	}
	opt, err := o.Optimize(proj)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Explain(opt)
	if !strings.Contains(s, "cols=[age,pregnant]") {
		t.Errorf("model inputs not preserved by pruning:\n%s", s)
	}
}

func TestOptimizedPlanStillBindsSchemas(t *testing.T) {
	cat := hospitalCatalog(t)
	p := bindQ(t, cat, `SELECT pi.age, bt.bp FROM patient_info AS pi
		JOIN blood_tests AS bt ON pi.id = bt.id WHERE pi.age > 30`)
	o := &Optimizer{Catalog: cat, AssumeRI: true}
	opt, err := o.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	sch := opt.Schema()
	if sch.Len() != 2 || sch.IndexOf("age") < 0 || sch.IndexOf("bp") < 0 {
		t.Errorf("schema broken after optimize: %v", sch)
	}
}
