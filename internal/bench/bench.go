// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§4 and §5). Each experiment builds its
// workload, trains the models the paper trains, runs baseline and
// optimized variants over warm runs, and reports series shaped like the
// paper's plots. cmd/ravenbench prints them; bench_test.go exposes each as
// a testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Row is one measured point of an experiment.
type Row struct {
	Series string // e.g. "RF (sklearn-sim)" or "Raven"
	Param  string // x-axis value, e.g. "100K rows" or "k=8"
	Millis float64
	// AllocsPerRow is the measured steady-state heap allocations per
	// input row (0 = not measured for this point). The data-plane
	// experiments record it so allocation regressions fail the bench
	// gate, not just slow it down.
	AllocsPerRow float64 `json:",omitempty"`
	Note         string
}

// Table is one figure/table reproduction.
type Table struct {
	ID    string // e.g. "Fig2a"
	Title string
	Rows  []Row
	// PaperShape describes what the paper reports, for side-by-side
	// reading in EXPERIMENTS.md.
	PaperShape string
}

// Recording is the JSON shape ravenbench's -json flag writes and its
// -check flag validates — one shared type, so the writer and the
// checker cannot silently drift apart (a drifted checker would wave
// hollow recordings through).
type Recording struct {
	GOMAXPROCS int
	Quick      bool
	Runs       int
	// Failed lists experiment ids that did not produce a table, so a
	// partial file is self-describing instead of passing as a complete
	// run.
	Failed []string `json:",omitempty"`
	Tables []*Table
}

// Add appends a measurement.
func (t *Table) Add(series, param string, d time.Duration, note string) {
	t.Rows = append(t.Rows, Row{Series: series, Param: param, Millis: float64(d.Microseconds()) / 1000, Note: note})
}

// AddMillis appends a measurement already in milliseconds (used for
// simulated-time series).
func (t *Table) AddMillis(series, param string, ms float64, note string) {
	t.Rows = append(t.Rows, Row{Series: series, Param: param, Millis: ms, Note: note})
}

// Speedup returns rowA/rowB times for matching params (series a vs b).
func (t *Table) Speedup(a, b, param string) float64 {
	var am, bm float64
	for _, r := range t.Rows {
		if r.Param != param {
			continue
		}
		if r.Series == a {
			am = r.Millis
		}
		if r.Series == b {
			bm = r.Millis
		}
	}
	if bm == 0 {
		return 0
	}
	return am / bm
}

// Print renders the table with params as rows and series as columns,
// mirroring the paper's figures.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperShape != "" {
		fmt.Fprintf(w, "paper: %s\n", t.PaperShape)
	}
	// collect ordered params and series
	var params, series []string
	seenP, seenS := map[string]bool{}, map[string]bool{}
	for _, r := range t.Rows {
		if !seenP[r.Param] {
			seenP[r.Param] = true
			params = append(params, r.Param)
		}
		if !seenS[r.Series] {
			seenS[r.Series] = true
			series = append(series, r.Series)
		}
	}
	cell := make(map[string]map[string]Row)
	for _, r := range t.Rows {
		if cell[r.Param] == nil {
			cell[r.Param] = map[string]Row{}
		}
		cell[r.Param][r.Series] = r
	}
	w1 := 12
	for _, p := range params {
		if len(p) > w1 {
			w1 = len(p)
		}
	}
	wc := 18
	for _, r := range t.Rows {
		if n := len(cellText(r)) + 2; n > wc {
			wc = n
		}
	}
	for _, s := range series {
		if n := len(s) + 2; n > wc {
			wc = n
		}
	}
	fmt.Fprintf(w, "%-*s", w1+2, "")
	for _, s := range series {
		fmt.Fprintf(w, "%*s", wc, s)
	}
	fmt.Fprintln(w)
	for _, p := range params {
		fmt.Fprintf(w, "%-*s", w1+2, p)
		for _, s := range series {
			if r, ok := cell[p][s]; ok {
				fmt.Fprintf(w, "%*s", wc, cellText(r))
			} else {
				fmt.Fprintf(w, "%*s", wc, "-")
			}
		}
		fmt.Fprintln(w)
	}
	// notes, deduplicated
	var notes []string
	seenN := map[string]bool{}
	for _, r := range t.Rows {
		if r.Note != "" && !seenN[r.Note] {
			seenN[r.Note] = true
			notes = append(notes, r.Note)
		}
	}
	sort.Strings(notes)
	for _, n := range notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as a GitHub-flavoured markdown table (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.PaperShape != "" {
		fmt.Fprintf(&sb, "*Paper:* %s\n\n", t.PaperShape)
	}
	var params, series []string
	seenP, seenS := map[string]bool{}, map[string]bool{}
	for _, r := range t.Rows {
		if !seenP[r.Param] {
			seenP[r.Param] = true
			params = append(params, r.Param)
		}
		if !seenS[r.Series] {
			seenS[r.Series] = true
			series = append(series, r.Series)
		}
	}
	cell := make(map[string]map[string]Row)
	for _, r := range t.Rows {
		if cell[r.Param] == nil {
			cell[r.Param] = map[string]Row{}
		}
		cell[r.Param][r.Series] = r
	}
	sb.WriteString("| |")
	for _, s := range series {
		sb.WriteString(" " + s + " |")
	}
	sb.WriteString("\n|---|")
	for range series {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for _, p := range params {
		sb.WriteString("| " + p + " |")
		for _, s := range series {
			if r, ok := cell[p][s]; ok {
				fmt.Fprintf(&sb, " %s |", markdownCellText(r))
			} else {
				sb.WriteString(" - |")
			}
		}
		sb.WriteString("\n")
	}
	sb.WriteString("\n")
	return sb.String()
}

// cellText renders one measurement cell: latency, plus the allocs/row
// column for points that measured it.
func cellText(r Row) string {
	if r.AllocsPerRow > 0 {
		return fmt.Sprintf("%.2fms (%.4g allocs/row)", r.Millis, r.AllocsPerRow)
	}
	return fmt.Sprintf("%.2fms", r.Millis)
}

// markdownCellText is cellText in EXPERIMENTS.md's spaced style.
func markdownCellText(r Row) string {
	if r.AllocsPerRow > 0 {
		return fmt.Sprintf("%.2f ms (%.4g allocs/row)", r.Millis, r.AllocsPerRow)
	}
	return fmt.Sprintf("%.2f ms", r.Millis)
}

// Time runs fn warm+measured times and returns the mean of the measured
// runs (the paper reports averages over multiple warm runs).
func Time(warm, runs int, fn func() error) (time.Duration, error) {
	for i := 0; i < warm; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	var total time.Duration
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	if runs == 0 {
		return 0, nil
	}
	return total / time.Duration(runs), nil
}

// MeasureAllocsPerRow reports the steady-state heap allocations one fn()
// execution costs per input row. fn runs once to warm every cache and
// pool, then — after a GC settles the heap — twice measured; the smaller
// Mallocs delta divided by rows is returned, so a stray background
// allocation cannot inflate the figure. Meaningful for serial (DOP=1)
// runs, where the allocation count is deterministic.
func MeasureAllocsPerRow(rows int, fn func() error) (float64, error) {
	if err := fn(); err != nil {
		return 0, err
	}
	runtime.GC()
	// The GC just emptied every sync.Pool; one more warm run refills them
	// so the measured runs see the steady state.
	if err := fn(); err != nil {
		return 0, err
	}
	var before, mid, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := fn(); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&mid)
	if err := fn(); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	d1 := mid.Mallocs - before.Mallocs
	d2 := after.Mallocs - mid.Mallocs
	if d2 < d1 {
		d1 = d2
	}
	if rows <= 0 {
		return 0, nil
	}
	return float64(d1) / float64(rows), nil
}

// FmtRows formats a row count like the paper's x axes (1K, 100K, 1M).
func FmtRows(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dK", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
