package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"raven/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "f", Type: types.Float},
		types.Column{Name: "i", Type: types.Int},
		types.Column{Name: "b", Type: types.Bool},
		types.Column{Name: "s", Type: types.String},
	)
}

// testBatch builds n rows with NULLs sprinkled over every column.
func testBatch(n int) *types.Batch {
	b := types.NewBatch(testSchema())
	for i := 0; i < n; i++ {
		if err := b.AppendRow(float64(i)*1.5, int64(i*7-3), i%3 == 0, fmt.Sprintf("row-%d", i)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i += 11 {
		b.Vecs[0].SetNull(i)
	}
	for i := 5; i < n; i += 13 {
		b.Vecs[3].SetNull(i)
	}
	return b
}

func batchEqual(t *testing.T, a, b *types.Batch) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		for j := range a.Vecs {
			av, bv := a.Vecs[j].Value(i), b.Vecs[j].Value(i)
			if av != bv {
				t.Fatalf("row %d col %d: %v != %v", i, j, av, bv)
			}
		}
	}
}

func TestWriteOpenRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.seg")
	b := testBatch(300)
	if err := Write(path, b); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 300 {
		t.Fatalf("rows = %d", r.Rows())
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	got := types.NewBatch(testSchema())
	for c := range got.Vecs {
		if err := r.ReadColumnRange(c, 0, 300, got.Vecs[c]); err != nil {
			t.Fatal(err)
		}
	}
	batchEqual(t, b, got)
	// Min/max stats recorded for the numeric columns, skipping NULLs:
	// row 0's float is NULL, so the min comes from row 11... the smallest
	// non-NULL float row is row 1 (1.5).
	lo, hi, ok := r.Stats(0)
	if !ok || lo != 1.5 || hi != 299*1.5 {
		t.Fatalf("float stats = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := r.Stats(3); ok {
		t.Fatal("string column reported stats")
	}
}

// TestRangeReads checks arbitrary sub-ranges, including ones that are
// not word-aligned in the null bitmap.
func TestRangeReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.seg")
	b := testBatch(500)
	if err := Write(path, b); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, rng := range [][2]int{{0, 1}, {63, 65}, {100, 300}, {499, 500}, {200, 200}} {
		lo, hi := rng[0], rng[1]
		got := types.NewBatch(testSchema())
		for c := range got.Vecs {
			if err := r.ReadColumnRange(c, lo, hi, got.Vecs[c]); err != nil {
				t.Fatal(err)
			}
		}
		want := b.Slice(lo, hi)
		batchEqual(t, want, got)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	b := testBatch(200)
	data, err := EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(testSchema(), data)
	if err != nil {
		t.Fatal(err)
	}
	batchEqual(t, b, got)
	// Truncations anywhere must error, never panic or misread.
	for cut := 0; cut < len(data); cut += 97 {
		if _, err := DecodeBatch(testSchema(), data[:cut]); err == nil {
			t.Fatalf("truncated payload at %d decoded", cut)
		}
	}
	// A schema mismatch is rejected.
	other := types.NewSchema(types.Column{Name: "x", Type: types.Float})
	if _, err := DecodeBatch(other, data); err == nil {
		t.Fatal("decoded against wrong schema")
	}
}

func TestOpenDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.seg")
	if err := Write(path, testBatch(100)); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)

	cases := map[string]func([]byte) []byte{
		"truncated":       func(b []byte) []byte { return b[:len(b)/2] },
		"trailer smashed": func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0xFF; return c },
		"footer bitflip":  func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-trailerSize-2] ^= 0x01; return c },
		"too short":       func(b []byte) []byte { return b[:4] },
	}
	for name, mutate := range cases {
		if err := os.WriteFile(path, mutate(full), 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err == nil {
			r.Close()
			t.Fatalf("%s: Open accepted corrupt file", name)
		}
		var ce *CorruptError
		if !asCorrupt(err, &ce) {
			t.Fatalf("%s: error %v is not a CorruptError", name, err)
		}
	}

	// A bitflip in the data area passes Open (the footer is intact) but
	// fails the streamed Verify.
	c := append([]byte(nil), full...)
	c[len(fileMagic)+5] ^= 0x10
	if err := os.WriteFile(path, c, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Verify(); err == nil {
		t.Fatal("Verify accepted corrupt data")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Verify error %v does not name the checksum", err)
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.seg")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("original still present")
	}
	if _, err := os.Stat(q); err != nil {
		t.Fatal("quarantined copy missing")
	}
}

func asCorrupt(err error, target **CorruptError) bool {
	ce, ok := err.(*CorruptError)
	if ok {
		*target = ce
	}
	return ok
}
