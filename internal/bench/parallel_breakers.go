package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"raven"
	"raven/internal/storage"
	"raven/internal/types"
)

// genBreakerTables builds the synthetic fact/dimension pair the breaker
// ablation runs over: breaker_events (large, with a low-cardinality
// segment column and a many-to-one join key) and breaker_dim (small).
// Deterministic per seed.
func genBreakerTables(cat *storage.Catalog, rows, dimRows, segs int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ev := storage.NewTable("breaker_events", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "k", Type: types.Int},
		types.Column{Name: "seg", Type: types.String},
		types.Column{Name: "v", Type: types.Float},
		types.Column{Name: "w", Type: types.Float},
	))
	segNames := make([]string, segs)
	for i := range segNames {
		segNames[i] = fmt.Sprintf("s%02d", i)
	}
	for i := 0; i < rows; i++ {
		if err := ev.AppendRow(
			int64(i),
			int64(rng.Intn(dimRows)),
			segNames[rng.Intn(segs)],
			rng.Float64(),
			rng.NormFloat64(),
		); err != nil {
			return err
		}
	}
	dim := storage.NewTable("breaker_dim", types.NewSchema(
		types.Column{Name: "k", Type: types.Int},
		types.Column{Name: "label", Type: types.String},
	))
	for i := 0; i < dimRows; i++ {
		if err := dim.AppendRow(int64(i), fmt.Sprintf("d%04d", i)); err != nil {
			return err
		}
	}
	if err := cat.AddTable(ev); err != nil {
		return err
	}
	if err := cat.AddTable(dim); err != nil {
		return err
	}
	cat.SetUniqueKey("breaker_dim", "k")
	return nil
}

// ParallelBreakers ablates the degree of parallelism for the three
// pipeline-breaker shapes — GROUP BY (two-phase partial aggregation +
// merge), JOIN (partitioned parallel build + in-pipeline probe) and
// ORDER BY (per-morsel sorted runs + streaming k-way merge) — over the
// large synthetic table. Serial (DOP=1) runs the identical operators
// with one worker, so the ratio isolates the parallel speedup; the
// parity tests guarantee all DOPs return byte-identical results.
// Speedups only materialize with GOMAXPROCS > 1; the note records the
// host's core count so single-core results are not misread.
func ParallelBreakers(cfg Config) (*Table, error) {
	procs := runtime.GOMAXPROCS(0)
	t := &Table{
		ID:         "ParallelBreakers",
		Title:      "morsel-parallel pipeline breakers vs serial (GROUP BY / JOIN / ORDER BY)",
		PaperShape: "breakers no longer collapse to one thread: the §5 obs iii parallel-scan win extends to analytics-shaped queries",
	}
	rows, dimRows, segs := 600000, 4096, 32
	if cfg.Quick {
		rows = 150000
	}
	db := cfg.open()
	if err := genBreakerTables(db.Catalog(), rows, dimRows, segs, 23); err != nil {
		return nil, err
	}

	queries := []struct{ label, q string }{
		{"GROUP BY", `SELECT seg, COUNT(*) AS n, SUM(v) AS sv, AVG(w) AS aw, MIN(v) AS mn, MAX(w) AS mx FROM breaker_events GROUP BY seg`},
		{"JOIN", `SELECT e.v, d.label FROM breaker_events AS e JOIN breaker_dim AS d ON e.k = d.k WHERE e.v > 0.25`},
		{"ORDER BY", `SELECT id, v FROM breaker_events WHERE w > 0.2 ORDER BY v DESC`},
	}
	dops := []int{1, 2, 4, 8}
	param := FmtRows(rows)
	var totalAllocs float64
	for _, tc := range queries {
		runDOP1 := func() error {
			_, err := db.QueryWithOptions(tc.q, raven.QueryOptions{
				CrossOptimize: false,
				Mode:          raven.ModeInProcess,
				Parallelism:   1,
				// The ablation always exercises the parallel operators;
				// DOP=1 runs them with a single worker.
				ParallelThresholdRows: 1,
			})
			return err
		}
		var serial, best time.Duration
		for _, dop := range dops {
			d, err := Time(cfg.Warm, cfg.Runs, func() error {
				_, err := db.QueryWithOptions(tc.q, raven.QueryOptions{
					CrossOptimize:         false,
					Mode:                  raven.ModeInProcess,
					Parallelism:           dop,
					ParallelThresholdRows: 1,
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprintf("DOP=%d", dop), tc.label, d, "")
			if dop == 1 {
				serial, best = d, d
				if !raceBuild {
					apr, err := MeasureAllocsPerRow(rows, runDOP1)
					if err != nil {
						return nil, err
					}
					t.Rows[len(t.Rows)-1].AllocsPerRow = apr
					totalAllocs += apr
				}
			} else if d < best {
				best = d
			}
		}
		t.Rows[len(t.Rows)-len(dops)].Note = fmt.Sprintf(
			"%s (%s rows): best speedup %.2fx over DOP=1; host GOMAXPROCS=%d (DOP>cores cannot speed up)",
			tc.label, param, float64(serial.Microseconds())/float64(best.Microseconds()), procs)
	}
	if !raceBuild && cfg.Quick {
		apr := totalAllocs / float64(len(queries))
		if apr > breakerAllocsPerRowBudget {
			return nil, fmt.Errorf("ParallelBreakers: %.4f mean allocs/row at DOP=1 exceeds the %.4f budget (pre-typed-kernel baseline %.4f)",
				apr, breakerAllocsPerRowBudget, breakerAllocsPerRowBaseline)
		}
	}
	return t, nil
}
