package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"raven/internal/types"
)

// randExpr generates a random boolean-or-numeric expression tree over
// columns {a FLOAT, b INT, ok BOOL}.
func randExpr(rng *rand.Rand, depth int, wantBool bool) Expr {
	if depth == 0 {
		if wantBool {
			switch rng.Intn(3) {
			case 0:
				return BoolLit(rng.Intn(2) == 0)
			case 1:
				return &Column{Name: "ok"}
			default:
				return NewBinary(OpGt, &Column{Name: "a"}, FloatLit(rng.NormFloat64()))
			}
		}
		switch rng.Intn(4) {
		case 0:
			return FloatLit(rng.NormFloat64() * 10)
		case 1:
			return IntLit(int64(rng.Intn(20) - 10))
		case 2:
			return &Column{Name: "a"}
		default:
			return &Column{Name: "b"}
		}
	}
	if wantBool {
		switch rng.Intn(4) {
		case 0:
			return NewBinary(OpAnd, randExpr(rng, depth-1, true), randExpr(rng, depth-1, true))
		case 1:
			return NewBinary(OpOr, randExpr(rng, depth-1, true), randExpr(rng, depth-1, true))
		case 2:
			return &Not{E: randExpr(rng, depth-1, true)}
		default:
			ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
			return NewBinary(ops[rng.Intn(len(ops))], randExpr(rng, depth-1, false), randExpr(rng, depth-1, false))
		}
	}
	switch rng.Intn(4) {
	case 0:
		return NewBinary(OpAdd, randExpr(rng, depth-1, false), randExpr(rng, depth-1, false))
	case 1:
		return NewBinary(OpSub, randExpr(rng, depth-1, false), randExpr(rng, depth-1, false))
	case 2:
		return NewBinary(OpMul, randExpr(rng, depth-1, false), randExpr(rng, depth-1, false))
	default:
		return &Case{
			Whens: []When{{Cond: randExpr(rng, depth-1, true), Then: randExpr(rng, depth-1, false)}},
			Else:  randExpr(rng, depth-1, false),
		}
	}
}

func propBatch(rng *rand.Rand, n int) *types.Batch {
	s := types.NewSchema(
		types.Column{Name: "a", Type: types.Float},
		types.Column{Name: "b", Type: types.Int},
		types.Column{Name: "ok", Type: types.Bool},
	)
	b := types.NewBatch(s)
	for i := 0; i < n; i++ {
		_ = b.AppendRow(rng.NormFloat64()*5, int64(rng.Intn(10)-5), rng.Intn(2) == 0)
	}
	return b
}

// Property: Simplify preserves evaluation semantics on every row. Numeric
// comparisons are exact because folding uses the same float64 arithmetic.
func TestSimplifyPreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := propBatch(rng, 64)
		e := randExpr(rng, 4, rng.Intn(2) == 0)
		s := Simplify(e)
		v1, err1 := e.Eval(b)
		v2, err2 := s.Eval(b)
		if (err1 == nil) != (err2 == nil) {
			// Simplification may fold away a subexpression whose sibling
			// errors; our generator produces only well-typed trees, so
			// errors must agree.
			return false
		}
		if err1 != nil {
			return true
		}
		if v1.Type != v2.Type {
			// int+int folding may widen via literals; compare as floats
			for i := 0; i < b.Len(); i++ {
				if v1.AsFloat(i) != v2.AsFloat(i) {
					return false
				}
			}
			return true
		}
		for i := 0; i < b.Len(); i++ {
			switch v1.Type {
			case types.Bool:
				if v1.Bools[i] != v2.Bools[i] {
					return false
				}
			case types.Int:
				if v1.Ints[i] != v2.Ints[i] {
					return false
				}
			default:
				if v1.AsFloat(i) != v2.AsFloat(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: DeriveRanges never produces a range excluding a row that
// satisfies the predicate (soundness of predicate→interval derivation).
func TestDeriveRangesSound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := propBatch(rng, 128)
		// conjunctions of comparisons only (the shape DeriveRanges reads)
		var cs []Expr
		for i := 0; i < 1+rng.Intn(3); i++ {
			ops := []BinOp{OpEq, OpLt, OpLe, OpGt, OpGe}
			col := []string{"a", "b"}[rng.Intn(2)]
			cs = append(cs, NewBinary(ops[rng.Intn(len(ops))], &Column{Name: col}, FloatLit(float64(rng.Intn(8)-4))))
		}
		pred := And(cs)
		ranges := DeriveRanges(pred)
		mask, err := pred.Eval(b)
		if err != nil {
			return false
		}
		for i := 0; i < b.Len(); i++ {
			if !mask.Bools[i] {
				continue
			}
			for col, r := range ranges {
				v := b.Col(col).AsFloat(i)
				if v < r.Lo || v > r.Hi {
					return false // satisfied row outside derived range: unsound
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
