package raven

import (
	"context"
	"runtime"
	"testing"
)

// TestRowsCloseBeforeFirstNext: Close on a never-iterated Rows releases
// the executor cleanly; Next afterwards reports end-of-stream, not a
// panic or an error.
func TestRowsCloseBeforeFirstNext(t *testing.T) {
	db := slowPredictDB(t, 20000)
	base := runtime.NumGoroutine()
	rows, err := db.QueryContextWithOptions(context.Background(), slowPredictQuery, QueryOptions{
		Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("close before Next: %v", err)
	}
	if rows.Next() {
		t.Fatal("Next returned true on a closed Rows")
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after clean close: %v", err)
	}
	assertGoroutinesReturn(t, base)
}

// TestRowsDoubleCloseMidStream is the regression for the satellite
// guarantee: Close mid-stream (exchange workers still producing) then
// Close again leaks no goroutines and double-Close returns nil.
func TestRowsDoubleCloseMidStream(t *testing.T) {
	db := slowPredictDB(t, 50000)
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		rows, err := db.QueryContextWithOptions(context.Background(), slowPredictQuery, QueryOptions{
			Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Consume a few rows so the stream is genuinely mid-flight.
		for j := 0; j < 5 && rows.Next(); j++ {
			var score float64
			if err := rows.Scan(&score); err != nil {
				t.Fatal(err)
			}
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("run %d: close: %v", i, err)
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("run %d: double close: %v", i, err)
		}
		// The iteration surface stays safe after Close.
		if rows.Next() {
			t.Fatalf("run %d: Next after Close", i)
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("run %d: Err after Close: %v", i, err)
		}
	}
	assertGoroutinesReturn(t, base)
}

// TestRowsCloseAfterErrIsSafe: a Rows that died of a context error can be
// Closed repeatedly without changing the recorded error.
func TestRowsCloseAfterErrIsSafe(t *testing.T) {
	db := slowPredictDB(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContextWithOptions(ctx, slowPredictQuery, QueryOptions{
		Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512,
	})
	if err != nil {
		// Cancellation raced into compile; nothing to iterate.
		cancel()
		return
	}
	cancel()
	for rows.Next() {
	}
	firstErr := rows.Err()
	if err := rows.Close(); err != nil {
		t.Fatalf("close after err: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("double close after err: %v", err)
	}
	if got := rows.Err(); got != firstErr {
		t.Fatalf("Err changed across Close: %v -> %v", firstErr, got)
	}
}

// TestCollectAfterClose: Collect on a closed Rows yields an empty result
// (documented), not a poll of a closed operator.
func TestCollectAfterClose(t *testing.T) {
	db := prepDB(t)
	rows, err := db.QueryContext(context.Background(), predictQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Len() != 0 {
		t.Fatalf("collect after close returned %d rows", res.Batch.Len())
	}
}
