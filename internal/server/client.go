package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Client is a minimal Go client for the wire protocol, shared by the
// ravenserved selftest, the integration tests, the cluster router's
// probe/replication paths and the serving benchmarks. It is what a
// driver library for the server would look like. Every method has a
// Context variant; the plain forms use context.Background bounded by
// Timeout.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8080"
	HTTP *http.Client
	// Timeout bounds each request issued by the non-Context methods
	// (and Context methods whose ctx has no deadline). 0 = unbounded.
	Timeout time.Duration
}

// reqCtx derives the per-request context: the caller's ctx, bounded by
// the client Timeout when the ctx carries no deadline of its own.
func (c *Client) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, has := ctx.Deadline(); !has && c.Timeout > 0 {
		return context.WithTimeout(ctx, c.Timeout)
	}
	return context.WithCancel(ctx)
}

// HTTPError is a non-2xx response, carrying the status code so callers
// can distinguish rejection (429) from timeout (504) from drain (503).
type HTTPError struct {
	Status int
	Msg    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Status, e.Msg)
}

// StreamResult is one fully-read NDJSON query response.
type StreamResult struct {
	Columns []string
	Types   []string
	Rows    [][]any
	Trailer Trailer
	// OK is set instead of rows for side-effect-only scripts.
	OK bool
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) postJSON(ctx context.Context, path string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.httpClient().Do(req)
}

func readError(resp *http.Response) error {
	var e ErrorLine
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&e); err != nil || e.Error == "" {
		e.Error = resp.Status
	}
	return &HTTPError{Status: resp.StatusCode, Msg: e.Error}
}

// Query posts to /query and reads the whole stream.
func (c *Client) Query(req QueryRequest) (*StreamResult, error) {
	return c.QueryContext(context.Background(), req)
}

// QueryContext is Query under a context.
func (c *Client) QueryContext(ctx context.Context, req QueryRequest) (*StreamResult, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	resp, err := c.postJSON(ctx, "/query", req)
	if err != nil {
		return nil, err
	}
	return readStream(resp)
}

// Exec runs a side-effect-only script (DDL/INSERT, no SELECT) through
// /query, failing if the server streamed rows instead of acknowledging.
func (c *Client) Exec(sql string) error {
	return c.ExecContext(context.Background(), sql)
}

// ExecContext is Exec under a context.
func (c *Client) ExecContext(ctx context.Context, sql string) error {
	res, err := c.QueryContext(ctx, QueryRequest{SQL: sql})
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("exec: script streamed %d rows instead of acknowledging (does it contain a SELECT?)", len(res.Rows))
	}
	return nil
}

// StoreModel stores a serialized pipeline (ml.Marshal bytes) via POST
// /model — the replication path for models.
func (c *Client) StoreModel(ctx context.Context, req ModelRequest) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	resp, err := c.postJSON(ctx, "/model", req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(resp)
	}
	return nil
}

// Prepare posts to /prepare.
func (c *Client) Prepare(req QueryRequest) (*PrepareResponse, error) {
	return c.PrepareContext(context.Background(), req)
}

// PrepareContext is Prepare under a context.
func (c *Client) PrepareContext(ctx context.Context, req QueryRequest) (*PrepareResponse, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	resp, err := c.postJSON(ctx, "/prepare", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	var pr PrepareResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

// StmtQuery executes a prepared statement by id.
func (c *Client) StmtQuery(id string, req QueryRequest) (*StreamResult, error) {
	return c.StmtQueryContext(context.Background(), id, req)
}

// StmtQueryContext is StmtQuery under a context.
func (c *Client) StmtQueryContext(ctx context.Context, id string, req QueryRequest) (*StreamResult, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	resp, err := c.postJSON(ctx, "/stmt/"+id+"/query", req)
	if err != nil {
		return nil, err
	}
	return readStream(resp)
}

// CloseStmt deletes a prepared statement.
func (c *Client) CloseStmt(id string) error {
	return c.CloseStmtContext(context.Background(), id)
}

// CloseStmtContext is CloseStmt under a context.
func (c *Client) CloseStmtContext(ctx context.Context, id string) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/stmt/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(resp)
	}
	return nil
}

// Stats fetches /stats.
func (c *Client) Stats() (*StatsResponse, error) {
	return c.StatsContext(context.Background())
}

// StatsContext is Stats under a context.
func (c *Client) StatsContext(ctx context.Context) (*StatsResponse, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Healthz fetches /healthz, returning the reported status string.
func (c *Client) Healthz() (string, error) {
	h, err := c.Health(context.Background())
	if h == nil {
		return "", err
	}
	return h.Status, err
}

// Health fetches /healthz as the full Health probe: status plus the
// catalog version and scheduler load the cluster reconciler reads every
// probe interval. On 503 the parsed Health is returned alongside the
// HTTPError, so a draining replica's probe still carries its signals.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return &h, &HTTPError{Status: resp.StatusCode, Msg: h.Status}
	}
	return &h, nil
}

// CatalogVersion reads the replica's catalog version from its health
// probe (draining replicas still report one).
func (c *Client) CatalogVersion(ctx context.Context) (uint64, error) {
	h, err := c.Health(ctx)
	if h != nil {
		return h.CatalogVersion, nil
	}
	return 0, err
}

// readStream parses an NDJSON query response (or the unary ExecResponse
// / error forms) into a StreamResult.
func readStream(resp *http.Response) (*StreamResult, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	res := &StreamResult{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	first := true
	sawTrailer := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '[' {
			var row []any
			if err := json.Unmarshal(line, &row); err != nil {
				return nil, fmt.Errorf("bad row line: %w", err)
			}
			res.Rows = append(res.Rows, row)
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("bad stream line %q: %w", line, err)
		}
		switch {
		case probe["error"] != nil:
			var e ErrorLine
			json.Unmarshal(line, &e)
			return nil, &HTTPError{Status: resp.StatusCode, Msg: e.Error}
		case first && probe["columns"] != nil:
			var hdr struct {
				Columns []string `json:"columns"`
				Types   []string `json:"types"`
			}
			if err := json.Unmarshal(line, &hdr); err != nil {
				return nil, err
			}
			res.Columns, res.Types = hdr.Columns, hdr.Types
		case probe["ok"] != nil:
			res.OK = true
		case probe["rows"] != nil:
			if err := json.Unmarshal(line, &res.Trailer); err != nil {
				return nil, err
			}
			sawTrailer = true
		default:
			return nil, fmt.Errorf("unexpected stream line %q", line)
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawTrailer && !res.OK {
		return nil, fmt.Errorf("stream ended without trailer")
	}
	if sawTrailer && res.Trailer.Rows != len(res.Rows) {
		return nil, fmt.Errorf("trailer says %d rows, stream carried %d", res.Trailer.Rows, len(res.Rows))
	}
	return res, nil
}

// Fingerprint renders the rows deterministically for byte-identical
// comparisons across serial and concurrent executions.
func (r *StreamResult) Fingerprint() string {
	var sb strings.Builder
	for _, row := range r.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('\t')
			}
			fmt.Fprintf(&sb, "%v", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
