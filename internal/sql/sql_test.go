package sql

import (
	"testing"

	"raven/internal/types"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s', 3.5, @m <= >= <> != -- comment\nFROM t")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "3.5", ",", "m", "<=", ">=", "<>", "<>", "FROM", "t", ""}
	if len(texts) != len(want) {
		t.Fatalf("texts = %q", texts)
	}
	for i, w := range want {
		if texts[i] != w {
			t.Errorf("tok %d = %q, want %q", i, texts[i], w)
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[5] != TokString || kinds[9] != TokVariable {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("SELECT #"); err == nil {
		t.Error("illegal char should fail")
	}
	if _, err := Lex("SELECT @ x"); err == nil {
		t.Error("bare @ should fail")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	st, err := Parse("SELECT id, age * 2 AS dbl FROM patients WHERE age > 30 ORDER BY id DESC LIMIT 10;")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if len(sel.Items) != 2 || sel.Items[1].Alias != "dbl" {
		t.Errorf("items = %+v", sel.Items)
	}
	tn, ok := sel.From.(*TableName)
	if !ok || tn.Name != "patients" {
		t.Errorf("from = %+v", sel.From)
	}
	if sel.Where == nil || sel.Limit != 10 {
		t.Errorf("where/limit = %v %d", sel.Where, sel.Limit)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
}

func TestParseStarAndImplicitAlias(t *testing.T) {
	st, err := Parse("SELECT * FROM t x")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if !sel.Items[0].Star {
		t.Error("star not detected")
	}
	if sel.From.(*TableName).Alias != "x" {
		t.Error("implicit alias not picked up")
	}
}

func TestParseJoins(t *testing.T) {
	st, err := Parse(`SELECT pi.id FROM patient_info AS pi
		JOIN blood_tests AS bt ON pi.id = bt.id
		JOIN prenatal_tests pt ON bt.id = pt.id
		WHERE pi.pregnant = 1`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	j, ok := sel.From.(*JoinRef)
	if !ok {
		t.Fatalf("from = %T", sel.From)
	}
	j2, ok := j.Left.(*JoinRef)
	if !ok {
		t.Fatalf("left of outer join = %T", j.Left)
	}
	if j2.Left.(*TableName).Alias != "pi" || j2.Right.(*TableName).Alias != "bt" {
		t.Error("join aliases wrong")
	}
}

func TestParsePredict(t *testing.T) {
	q := `
DECLARE @model = 'duration_of_stay';
WITH data AS (
  SELECT * FROM patient_info AS pi
  JOIN blood_tests AS bt ON pi.id = bt.id
)
SELECT d.id, p.length_of_stay
FROM PREDICT(MODEL = @model, DATA = data AS d)
WITH (length_of_stay FLOAT) AS p
WHERE d.pregnant = 1 AND p.length_of_stay > 7;`
	stmts, err := ParseScript(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	decl := stmts[0].(*DeclareStmt)
	if decl.Name != "model" || decl.Value != "duration_of_stay" {
		t.Errorf("declare = %+v", decl)
	}
	sel := stmts[1].(*SelectStmt)
	if len(sel.CTEs) != 1 || sel.CTEs[0].Name != "data" {
		t.Fatalf("ctes = %+v", sel.CTEs)
	}
	pr, ok := sel.From.(*PredictRef)
	if !ok {
		t.Fatalf("from = %T", sel.From)
	}
	if pr.ModelVar != "model" || pr.Alias != "p" || pr.DataAlias != "d" {
		t.Errorf("predict = %+v", pr)
	}
	if len(pr.OutputCols) != 1 || pr.OutputCols[0].Name != "length_of_stay" || pr.OutputCols[0].Type != types.Float {
		t.Errorf("output cols = %+v", pr.OutputCols)
	}
}

func TestParsePredictLiteralModel(t *testing.T) {
	st, err := Parse(`SELECT p.score FROM PREDICT(MODEL='m1', DATA=flights AS f) WITH (score FLOAT) AS p`)
	if err != nil {
		t.Fatal(err)
	}
	pr := st.(*SelectStmt).From.(*PredictRef)
	if pr.ModelName != "m1" {
		t.Errorf("model = %+v", pr)
	}
	if _, ok := pr.Data.(*TableName); !ok {
		t.Errorf("data = %T", pr.Data)
	}
}

func TestParseCreateInsertDrop(t *testing.T) {
	st, err := Parse("CREATE TABLE t (id INT PRIMARY KEY, x FLOAT, name VARCHAR(20), ok BIT)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if len(ct.Cols) != 4 || ct.PrimaryKey != "id" {
		t.Errorf("create = %+v", ct)
	}
	if ct.Cols[2].Type != types.String || ct.Cols[3].Type != types.Bool {
		t.Errorf("types = %+v", ct.Cols)
	}

	st2, err := Parse("INSERT INTO t VALUES (1, 2.5, 'a', TRUE), (2, 3.5, 'b', FALSE)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st2.(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 4 {
		t.Errorf("insert = %+v", ins)
	}

	st3, err := Parse("DROP TABLE t")
	if err != nil {
		t.Fatal(err)
	}
	if st3.(*DropTableStmt).Name != "t" {
		t.Error("drop parse")
	}
}

func TestParseAggregates(t *testing.T) {
	st, err := Parse("SELECT dest, COUNT(*) AS n, AVG(delay) FROM flights GROUP BY dest")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	f := sel.Items[1].Expr.(*FuncE)
	if f.Name != "COUNT" || !f.Star {
		t.Errorf("count = %+v", f)
	}
	a := sel.Items[2].Expr.(*FuncE)
	if a.Name != "AVG" || len(a.Args) != 1 {
		t.Errorf("avg = %+v", a)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0] != "dest" {
		t.Errorf("group by = %v", sel.GroupBy)
	}
}

func TestParseCase(t *testing.T) {
	st, err := Parse("SELECT CASE WHEN x <= 1 THEN 'a' WHEN x <= 2 THEN 'b' ELSE 'c' END AS lbl FROM t")
	if err != nil {
		t.Fatal(err)
	}
	c := st.(*SelectStmt).Items[0].Expr.(*CaseE)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case = %+v", c)
	}
}

func TestParsePrecedence(t *testing.T) {
	st, err := Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	w := st.(*SelectStmt).Where.(*BinaryE)
	if w.Op != "OR" {
		t.Fatalf("top op = %s, want OR (AND binds tighter)", w.Op)
	}
	if w.R.(*BinaryE).Op != "AND" {
		t.Error("right side should be AND")
	}
	// arithmetic precedence: 1 + 2 * 3
	st2, err := Parse("SELECT * FROM t WHERE x = 1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	cmp := st2.(*SelectStmt).Where.(*BinaryE)
	add := cmp.R.(*BinaryE)
	if add.Op != "+" || add.R.(*BinaryE).Op != "*" {
		t.Error("mul should bind tighter than add")
	}
}

func TestParseUnaryMinusAndNot(t *testing.T) {
	st, err := Parse("SELECT * FROM t WHERE NOT x > -5")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*SelectStmt).Where.(*NotE); !ok {
		t.Error("NOT not parsed")
	}
}

func TestParseSubqueryInFrom(t *testing.T) {
	st, err := Parse("SELECT s.a FROM (SELECT a FROM t WHERE a > 1) AS s WHERE s.a < 10")
	if err != nil {
		t.Fatal(err)
	}
	sq, ok := st.(*SelectStmt).From.(*SubqueryRef)
	if !ok || sq.Alias != "s" {
		t.Fatalf("from = %+v", st.(*SelectStmt).From)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"FROB x",
		"SELECT * FROM t LIMIT x",
		"PREDICT(MODEL=1, DATA=t) WITH (x FLOAT) AS p",
		"SELECT * FROM PREDICT(MODEL='m', DATA=t AS d) WITH () AS p",
		"CREATE TABLE t (x BLOB)",
		"SELECT * FROM t; garbage",
		"DECLARE @x = 5",
		"SELECT CASE END FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseScriptMultiple(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestParseDistinct(t *testing.T) {
	st, err := Parse("SELECT DISTINCT dest FROM flights")
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*SelectStmt).Distinct {
		t.Error("DISTINCT not parsed")
	}
}
