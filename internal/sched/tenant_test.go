package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestTenantQuotaBoundsConcurrency: a declared tenant is capped by its
// own quota inside a larger global budget, and other tenants keep
// running past it.
func TestTenantQuotaBoundsConcurrency(t *testing.T) {
	s := New(Options{
		MaxConcurrent: 8,
		QueueDepth:    8,
		Tenants:       map[string]TenantQuota{"batch": {MaxConcurrent: 2}},
	})
	r1, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	// Third batch query queues: its tenant is saturated.
	blocked := make(chan func(), 1)
	go func() {
		r, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "batch"})
		if err != nil {
			t.Error(err)
		}
		blocked <- r
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })
	// Another tenant sails past the blocked batch waiter.
	r3, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "interactive"})
	if err != nil {
		t.Fatalf("other tenant blocked by a saturated one: %v", err)
	}
	st := s.Stats()
	bt := st.Tenants["batch"]
	if bt.Active != 2 || bt.Waiting != 1 || bt.MaxActive != 2 || !bt.Declared || bt.MaxConcurrent != 2 {
		t.Fatalf("batch tenant stats: %+v", bt)
	}
	if it := st.Tenants["interactive"]; it.Active != 1 || it.Declared {
		t.Fatalf("interactive tenant stats: %+v", it)
	}
	r1()
	// Releasing one batch slot admits the batch waiter.
	r := <-blocked
	if got := s.Stats().Tenants["batch"].Active; got != 2 {
		t.Fatalf("batch active after re-admit = %d", got)
	}
	r()
	r2()
	r3()
	if st := s.Stats(); st.Active != 0 || st.SlotsInUse != 0 {
		t.Fatalf("not quiescent: %+v", st)
	}
}

// TestTenantSlotBudget: a tenant slot budget caps both admission and
// cost clamping independently of the global slot budget.
func TestTenantSlotBudget(t *testing.T) {
	s := New(Options{
		MaxConcurrent: 8,
		MaxSlots:      16,
		QueueDepth:    8,
		Tenants:       map[string]TenantQuota{"batch": {MaxConcurrent: 8, MaxSlots: 4}},
	})
	// Cost 64 clamps to the tenant budget 4, not the global 16.
	rel, err := s.AcquireTag(context.Background(), 64, Tag{Tenant: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats().Tenants["batch"]; st.SlotsInUse != 4 {
		t.Fatalf("tenant slots = %d, want clamp to 4", st.SlotsInUse)
	}
	// The tenant is slot-saturated: a cost-1 batch query queues while an
	// unquota'd tenant still fits.
	blocked := make(chan func(), 1)
	go func() {
		r, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "batch"})
		if err != nil {
			t.Error(err)
		}
		blocked <- r
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })
	other, err := s.AcquireTag(context.Background(), 8, Tag{Tenant: "other"})
	if err != nil {
		t.Fatal(err)
	}
	rel()
	(<-blocked)()
	other()
}

// TestTenantHeadOfLineNotStarvedByTenantMates: a tenant's expensive
// query parked on the tenant's own slot budget must not be overtaken
// by the tenant's later cheap queries (the per-tenant mirror of the
// global head-of-line rule), while other tenants still pass freely.
func TestTenantHeadOfLineNotStarvedByTenantMates(t *testing.T) {
	s := New(Options{
		MaxConcurrent: 8,
		QueueDepth:    8,
		Tenants:       map[string]TenantQuota{"x": {MaxConcurrent: 8, MaxSlots: 4}},
	})
	small, err := s.AcquireTag(context.Background(), 2, Tag{Tenant: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// The cost-4 head parks on the tenant budget (2+4 > 4).
	bigDone := make(chan func(), 1)
	go func() {
		r, err := s.AcquireTag(context.Background(), 4, Tag{Tenant: "x"})
		if err != nil {
			t.Error(err)
		}
		bigDone <- r
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })
	// A later same-tenant cost-2 query would fit (2+2 <= 4) but must
	// queue behind its tenant's blocked head rather than overtake it.
	cheapDone := make(chan func(), 1)
	go func() {
		r, err := s.AcquireTag(context.Background(), 2, Tag{Tenant: "x"})
		if err != nil {
			t.Error(err)
		}
		cheapDone <- r
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 2 })
	select {
	case <-cheapDone:
		t.Fatal("cheap tenant-mate overtook the tenant's blocked head")
	case <-time.After(30 * time.Millisecond):
	}
	// Another tenant still sails past the parked pair.
	other, err := s.AcquireTag(context.Background(), 2, Tag{Tenant: "y"})
	if err != nil {
		t.Fatalf("other tenant blocked by a parked tenant head: %v", err)
	}
	other()
	// Releasing the small query admits the head first; the cheap
	// tenant-mate follows only once the head releases its 4 slots.
	small()
	bigRel := <-bigDone
	select {
	case <-cheapDone:
		t.Fatal("cheap query admitted while the head holds the full tenant budget")
	case <-time.After(30 * time.Millisecond):
	}
	bigRel()
	(<-cheapDone)()
	if st := s.Stats().Tenants["x"]; st.Active != 0 || st.SlotsInUse != 0 {
		t.Fatalf("not quiescent: %+v", st)
	}
}

// TestTenantQuotaZeroRejects: a declared zero quota is an administrative
// shutoff — immediate ErrTenantQuota, never queued, counted per tenant.
func TestTenantQuotaZeroRejects(t *testing.T) {
	s := New(Options{
		MaxConcurrent: 4,
		QueueDepth:    4,
		Tenants:       map[string]TenantQuota{"banned": {MaxConcurrent: 0}},
	})
	if _, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "banned"}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("want ErrTenantQuota, got %v", err)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Queued != 0 {
		t.Fatalf("global stats: %+v", st)
	}
	if bt := st.Tenants["banned"]; bt.Rejected != 1 || bt.Admitted != 0 {
		t.Fatalf("banned tenant stats: %+v", bt)
	}
	// Other tenants are untouched.
	rel, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

// TestUnknownTenantFallsBackToGlobalBudget: an undeclared tenant runs
// under the global budget alone and still gets a stats entry.
func TestUnknownTenantFallsBackToGlobalBudget(t *testing.T) {
	s := New(Options{MaxConcurrent: 2})
	r1, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "mystery"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "mystery"})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats().Tenants["mystery"]
	if st.Active != 2 || st.Declared || st.MaxConcurrent != 0 {
		t.Fatalf("mystery tenant stats: %+v", st)
	}
	// The global limit still applies to it (no queue → immediate reject).
	if _, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "mystery"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull under the global limit, got %v", err)
	}
	r1()
	r2()
}

// TestPriorityOrderAndInversion: with a low-priority query holding the
// only slot, a high-priority waiter that arrived AFTER a low-priority
// waiter is admitted first when the slot frees — priority beats arrival
// order across classes, while the later low-priority query keeps FIFO
// within its class.
func TestPriorityOrderAndInversion(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 8, AgeStep: -1}) // no aging: pure priority order
	hold, err := s.AcquireTag(context.Background(), 1, Tag{Priority: -1})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	enqueue := func(name string, prio int, waiting int) chan struct{} {
		done := make(chan struct{})
		go func() {
			defer close(done)
			r, err := s.AcquireTag(context.Background(), 1, Tag{Priority: prio})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			r()
		}()
		waitFor(t, func() bool { return s.Stats().Waiting == waiting })
		return done
	}
	d1 := enqueue("low-1", 0, 1)
	d2 := enqueue("low-2", 0, 2)
	d3 := enqueue("high", 10, 3)
	hold() // the low-priority holder releases; the high-priority waiter runs next
	<-d1
	<-d2
	<-d3
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "high" || order[1] != "low-1" || order[2] != "low-2" {
		t.Fatalf("admission order = %v, want [high low-1 low-2]", order)
	}
}

// TestAgingPreventsStarvation is the starvation-guard acceptance: a
// saturating high-priority tenant issues a continuous stream of queries
// against a single slot; a low-priority waiter must still be admitted
// once aging lifts it past the fresh high-priority arrivals.
func TestAgingPreventsStarvation(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 16, AgeStep: time.Millisecond})
	base := runtime.NumGoroutine()

	// Four hog workers churn the single slot with fresh priority-10
	// arrivals, so without aging the priority-0 waiter would lose every
	// admission scan forever.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "hog", Priority: 10})
				if err != nil {
					t.Error(err)
					return
				}
				time.Sleep(100 * time.Microsecond)
				r()
			}
		}()
	}
	waitFor(t, func() bool { return s.Stats().Tenants["hog"].Admitted > 0 })

	lowDone := make(chan error, 1)
	go func() {
		r, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "meek", Priority: 0})
		if err == nil {
			r()
		}
		lowDone <- err
	}()
	select {
	case err := <-lowDone:
		if err != nil {
			t.Fatalf("low-priority waiter failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("low-priority waiter starved despite aging")
	}
	close(stop)
	wg.Wait()
	if st := s.Stats().Tenants["meek"]; st.Admitted != 1 {
		t.Fatalf("meek tenant: %+v", st)
	}
	assertGoroutinesReturn(t, base)
}

// TestAgedReorderAdmittedOnArrival: aging can reorder the queue with no
// capacity event — a low-priority waiter that was ranked below a
// globally-blocked higher-priority head can age past it and fit while
// capacity sits idle. Arrivals double as rescan opportunities, so a
// stream of arrivals must get such a waiter admitted promptly.
func TestAgedReorderAdmittedOnArrival(t *testing.T) {
	s := New(Options{MaxConcurrent: 8, MaxSlots: 8, QueueDepth: 16, AgeStep: 4 * time.Millisecond})
	holdA, err := s.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	holdB, err := s.Acquire(context.Background(), 4) // slots now 8/8
	if err != nil {
		t.Fatal(err)
	}
	// W: low priority, cost 1 — blocked only while the budget is full.
	wDone := make(chan struct{})
	go func() {
		defer close(wDone)
		r, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "w", Priority: 0})
		if err != nil {
			t.Error(err)
			return
		}
		r()
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })
	time.Sleep(2 * time.Millisecond) // half an AgeStep: the ranks of W and X will oscillate
	// X: higher priority but cost 5 — globally blocked even after holdB
	// releases (4+5 > 8), the head the scan stops at in X-first windows.
	xDone := make(chan struct{})
	go func() {
		defer close(xDone)
		r, err := s.AcquireTag(context.Background(), 5, Tag{Tenant: "x", Priority: 1})
		if err != nil {
			t.Error(err)
			return
		}
		r()
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 2 })
	holdB() // 4/8 slots free: W fits, X does not; the release scan may land in either rank order
	// Arrivals every millisecond sweep both rank windows; W must come
	// through regardless of where the release scan landed. Probes carry
	// a short deadline: one that correctly queues behind X's global
	// head-of-line claim must give up rather than wedge the loop (both
	// its enqueue and its give-up are rescan opportunities).
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case <-wDone:
		default:
			if time.Now().After(deadline) {
				t.Fatal("fitting waiter starved: aged reorder never rescanned")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
			if r, err := s.AcquireTag(ctx, 1, Tag{Tenant: "probe"}); err == nil {
				r()
			}
			cancel()
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	holdA()
	<-xDone
	if st := s.Stats(); st.Active != 0 || st.SlotsInUse != 0 || st.Waiting != 0 {
		t.Fatalf("not quiescent: %+v", st)
	}
}

// TestDrainWithMixedTenantWaiters: Drain fails queued waiters of every
// tenant, books Drained per tenant, and leaves no goroutines behind.
func TestDrainWithMixedTenantWaiters(t *testing.T) {
	s := New(Options{
		MaxConcurrent: 1,
		QueueDepth:    8,
		Tenants:       map[string]TenantQuota{"a": {MaxConcurrent: 1}},
	})
	rel, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	errs := make(chan error, 2)
	for _, tenant := range []string{"a", "b"} {
		tenant := tenant
		go func() {
			_, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: tenant})
			errs <- err
		}()
		waitFor(t, func() bool { return s.Stats().Tenants[tenant].Waiting == 1 })
	}
	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrDraining) {
			t.Fatalf("waiter: want ErrDraining, got %v", err)
		}
	}
	rel()
	if err := <-drainErr; err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Tenants["a"].Drained != 1 || st.Tenants["b"].Drained != 1 {
		t.Fatalf("per-tenant drained: a=%+v b=%+v", st.Tenants["a"], st.Tenants["b"])
	}
	if st.Tenants["a"].Waiting != 0 || st.Tenants["b"].Waiting != 0 {
		t.Fatalf("waiting gauges after drain: %+v", st.Tenants)
	}
	assertGoroutinesReturn(t, base)
}

// TestFullQueueOfTenantBlockedWaitersAdmitsOthers: a saturated tenant
// parking QueueDepth waiters must not turn the shared queue bound into
// a lockout — an arrival from another tenant that fits free global
// capacity is admitted directly even though the queue is full.
func TestFullQueueOfTenantBlockedWaitersAdmitsOthers(t *testing.T) {
	s := New(Options{
		MaxConcurrent: 4,
		QueueDepth:    2,
		Tenants:       map[string]TenantQuota{"batch": {MaxConcurrent: 1}},
	})
	hold, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan func(), 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			r, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "batch"})
			if err != nil {
				t.Error(err)
			}
			admitted <- r
		}()
		waitFor(t, func() bool { return s.Stats().Waiting == i+1 })
	}
	// Queue full, every waiter tenant-blocked, 3 of 4 global slots free.
	rel, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "interactive"})
	if err != nil {
		t.Fatalf("full tenant-blocked queue locked another tenant out: %v", err)
	}
	rel()
	// A batch arrival is still rejected: its own waiters fill the queue
	// and it could not run anyway.
	if _, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: "batch"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull for the saturated tenant itself, got %v", err)
	}
	hold()
	r1 := <-admitted
	r1()
	(<-admitted)()
}

// TestFullQueueGlobalWaiterKeepsItsClaim: the full-queue bypass must not
// jump a waiter that is merely expensive (globally slot-blocked): equal-
// or-lower-priority arrivals are rejected, higher-priority ones may jump.
func TestFullQueueGlobalWaiterKeepsItsClaim(t *testing.T) {
	s := New(Options{MaxConcurrent: 8, MaxSlots: 4, QueueDepth: 1, AgeStep: -1})
	hold, err := s.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// A cost-4 waiter is globally slot-blocked (2+4 > 4) and fills the queue.
	big := make(chan func(), 1)
	go func() {
		r, err := s.Acquire(context.Background(), 4)
		if err != nil {
			t.Error(err)
		}
		big <- r
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })
	// A same-priority cost-1 arrival fits but must not starve the big
	// waiter of the capacity it is first in line for.
	if _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("cheap arrival jumped a globally blocked equal-priority waiter: %v", err)
	}
	// A higher-priority arrival outranks it and takes the free slots.
	rel, err := s.AcquireTag(context.Background(), 1, Tag{Priority: 10})
	if err != nil {
		t.Fatalf("high-priority arrival rejected: %v", err)
	}
	rel()
	hold()
	(<-big)()
}

// TestTenantMapBounded: tenant keys are wire-client-controlled, so the
// accounting map folds undeclared tenants past the cap into the
// overflow bucket instead of growing without bound.
func TestTenantMapBounded(t *testing.T) {
	s := New(Options{MaxConcurrent: 4})
	n := maxTrackedTenants + 100
	for i := 0; i < n; i++ {
		rel, err := s.AcquireTag(context.Background(), 1, Tag{Tenant: fmt.Sprintf("t%05d", i)})
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	st := s.Stats()
	if len(st.Tenants) > maxTrackedTenants+1 {
		t.Fatalf("tenant map unbounded: %d entries", len(st.Tenants))
	}
	if ov := st.Tenants[OverflowTenantName]; ov.Admitted < 100 {
		t.Fatalf("overflow bucket: %+v", ov)
	}
	if st.Admitted != uint64(n) {
		t.Fatalf("global admitted = %d, want %d", st.Admitted, n)
	}
}

// TestDefaultTenantMapping: untagged admissions and the configured
// default tenant name are the same bucket, including declared quotas on
// the default tenant.
func TestDefaultTenantMapping(t *testing.T) {
	s := New(Options{
		MaxConcurrent: 4,
		DefaultTenant: "anon",
		Tenants:       map[string]TenantQuota{"anon": {MaxConcurrent: 1}},
	})
	rel, err := s.Acquire(context.Background(), 1) // untagged → "anon"
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats().Tenants["anon"]; st.Active != 1 {
		t.Fatalf("anon tenant: %+v", st)
	}
	// The declared quota of the default tenant applies to untagged work.
	if _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull (tenant-saturated, no queue), got %v", err)
	}
	rel()
	// QuotaFor resolves the default mapping for callers outside the lock.
	if q, ok := s.Options().QuotaFor(""); !ok || q.MaxConcurrent != 1 {
		t.Fatalf("QuotaFor(\"\") = %+v, %v", q, ok)
	}
}
