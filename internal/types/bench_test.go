package types

import (
	"math/rand"
	"testing"
)

// Data-plane micro-benchmarks (run via `make bench-micro`). The
// interesting number is allocs/op: the bulk append, gather-into and pool
// paths must be allocation-free in steady state, because they sit inside
// every morsel of every query.

func benchFloatVector(n int) *Vector {
	rng := rand.New(rand.NewSource(7))
	v := NewVector(Float, 0)
	for i := 0; i < n; i++ {
		v.Floats = append(v.Floats, rng.NormFloat64())
	}
	v.SetLen(n)
	return v
}

func BenchmarkAppendFloatsBulk(b *testing.B) {
	src := benchFloatVector(DefaultBatchSize)
	dst := NewVector(Float, 0)
	dst.Grow(DefaultBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Reset()
		dst.AppendFloats(src.Floats)
	}
}

// BenchmarkAppendBoxedReference is the per-row boxed path the bulk ops
// replaced; kept as the comparison point for AppendFloatsBulk.
func BenchmarkAppendBoxedReference(b *testing.B) {
	src := benchFloatVector(DefaultBatchSize)
	dst := NewVector(Float, 0)
	dst.Grow(DefaultBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Reset()
		for j := range src.Floats {
			_ = dst.Append(src.Floats[j])
		}
	}
}

func BenchmarkGatherInto(b *testing.B) {
	src := benchFloatVector(DefaultBatchSize)
	sel := make([]int, DefaultBatchSize/2)
	for i := range sel {
		sel[i] = i * 2
	}
	dst := NewVector(Float, 0)
	dst.Grow(len(sel))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Reset()
		src.GatherInto(dst, sel)
	}
}

func BenchmarkSliceInto(b *testing.B) {
	src := benchFloatVector(DefaultBatchSize)
	var dst Vector
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.SliceInto(&dst, 128, 128+1024)
	}
}

func BenchmarkVectorPoolGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := GetVector(Float, DefaultBatchSize)
		PutVector(v)
	}
}

func BenchmarkBatchPoolGetPut(b *testing.B) {
	s := NewSchema(
		Column{Name: "a", Type: Float},
		Column{Name: "b", Type: Int},
		Column{Name: "c", Type: String},
	)
	p := NewBatchPool(s)
	// Prime capacity so the loop measures steady-state reuse.
	bt := p.Get()
	bt.Grow(DefaultBatchSize)
	p.Put(bt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Put(p.Get())
	}
}

func BenchmarkFloatMatrixRangeInto(b *testing.B) {
	s := NewSchema(
		Column{Name: "x", Type: Float},
		Column{Name: "y", Type: Float},
		Column{Name: "z", Type: Int},
	)
	bt := NewBatch(s)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < DefaultBatchSize; i++ {
		_ = bt.AppendRow(rng.NormFloat64(), rng.NormFloat64(), int64(i))
	}
	cols := []string{"x", "y", "z"}
	out := make([]float64, DefaultBatchSize*len(cols))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.FloatMatrixRangeInto(out, cols, 0, DefaultBatchSize); err != nil {
			b.Fatal(err)
		}
	}
}
