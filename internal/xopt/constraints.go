// Package xopt is Raven's Cross Optimizer (paper §4): transformation rules
// over the unified IR that pass information between data and ML operators
// (predicate-based model pruning, model-projection pushdown, model
// clustering) and operator transformations (model inlining to SQL CASE,
// NN translation to tensor graphs, model/query splitting), followed by
// standard relational optimization and engine placement. The initial
// optimizer is heuristic, applying rules in a fixed order (§4.3).
package xopt

import (
	"math"
	"strings"

	"raven/internal/expr"
	"raven/internal/ir"
	"raven/internal/ml"
	"raven/internal/plan"
)

// columnFacts aggregates what the relational side knows about the rows
// reaching the model: per-column value ranges (from WHERE conjuncts and,
// optionally, data statistics) and exact equalities.
type columnFacts struct {
	ranges map[string]expr.Range
	equals map[string]float64
}

// gatherFacts walks the IR collecting predicates that constrain rows
// flowing into the ML stage: filters in the source plan and filters in the
// sink that reference only source columns (those also hold for every row
// scored, because the sink only drops rows).
//
// Sink filters constrain the rows that *survive*; they are still sound for
// model pruning only when the prediction of dropped rows is irrelevant —
// which holds for inference queries that filter on source columns (the
// paper's pregnant=1): rows failing the predicate never contribute output,
// so the model may be specialized to the passing rows.
func gatherFacts(g *ir.Graph, useStats bool) *columnFacts {
	f := &columnFacts{ranges: make(map[string]expr.Range), equals: make(map[string]float64)}
	merge := func(pred expr.Expr) {
		for col, r := range expr.DeriveRanges(pred) {
			cur, ok := f.ranges[col]
			if !ok {
				cur = expr.FullRange()
			}
			f.ranges[col] = cur.Intersect(r)
		}
		for col, v := range expr.DeriveEqualities(pred) {
			if x, ok := v.(float64); ok {
				f.equals[col] = x
			}
		}
	}
	// Source-plan filters.
	if sp := g.SourcePlan(); sp != nil {
		walkPlan(sp, func(n plan.Node) {
			if fl, ok := n.(*plan.Filter); ok {
				merge(fl.Pred)
			}
			if useStats {
				if sc, ok := n.(*plan.Scan); ok {
					addStatFacts(f, sc)
				}
			}
		})
	}
	// Sink filters on source columns: conjuncts referencing prediction
	// outputs are skipped (handled by relopt pushdown anyway).
	if sink := g.SinkRel(); sink != nil {
		outCols := predictionColumns(g)
		walkPlan(sink.Plan, func(n plan.Node) {
			fl, ok := n.(*plan.Filter)
			if !ok {
				return
			}
			for _, c := range expr.Conjuncts(fl.Pred) {
				refsOut := false
				for _, col := range expr.Columns(c) {
					if outCols[col] {
						refsOut = true
						break
					}
				}
				if !refsOut {
					merge(c)
				}
			}
		})
	}
	return f
}

func predictionColumns(g *ir.Graph) map[string]bool {
	out := make(map[string]bool)
	for _, n := range g.Chain() {
		switch x := n.(type) {
		case *ir.ModelNode:
			out[strings.ToLower(x.OutputCol.Name)] = true
		case *ir.LANode:
			out[strings.ToLower(x.OutputCol.Name)] = true
		}
	}
	return out
}

// addStatFacts derives predicates from data properties (paper §4.1: "this
// technique can also be applied based on data properties instead of
// explicit selections"): single-valued columns become equalities, and
// min/max become ranges.
func addStatFacts(f *columnFacts, sc *plan.Scan) {
	for _, c := range sc.Schema().Columns {
		if !c.Type.IsNumeric() && c.Type.String() != "BOOL" {
			continue
		}
		st, err := sc.Table.Stats(c.Name)
		if err != nil || st.NumRows == 0 {
			continue
		}
		col := strings.ToLower(c.Name)
		if st.DistinctCount == 1 {
			f.equals[col] = st.Min
		}
		cur, ok := f.ranges[col]
		if !ok {
			cur = expr.FullRange()
		}
		f.ranges[col] = cur.Intersect(expr.Range{Lo: st.Min, Hi: st.Max})
	}
}

func walkPlan(n plan.Node, fn func(plan.Node)) {
	fn(n)
	for _, c := range n.Children() {
		walkPlan(c, fn)
	}
}

// featureFacts are columnFacts mapped into the model's feature space.
type featureFacts struct {
	constraints ml.Constraints
	pinned      map[int]float64
}

// mapFactsThroughTransforms converts column-level facts into model-input
// feature constraints by pushing them through the featurizer chain. It
// supports ColumnSelect, StandardScaler and OneHotEncoder; a FeatureUnion
// or unknown transformer stops the mapping (sound but conservative).
func mapFactsThroughTransforms(facts *columnFacts, inputCols []string, steps []ml.Transformer) (*featureFacts, bool) {
	// Per-feature interval at the current layer; start from input columns.
	width := len(inputCols)
	ranges := make(map[int]expr.Range, width)
	for j, col := range inputCols {
		if r, ok := facts.ranges[strings.ToLower(col)]; ok {
			ranges[j] = r
		}
		if v, ok := facts.equals[strings.ToLower(col)]; ok {
			cur, ok2 := ranges[j]
			if !ok2 {
				cur = expr.FullRange()
			}
			ranges[j] = cur.Intersect(expr.Range{Lo: v, Hi: v})
		}
	}
	for _, s := range steps {
		next := make(map[int]expr.Range)
		switch t := s.(type) {
		case *ml.ColumnSelect:
			for out, in := range t.Indices {
				if r, ok := ranges[in]; ok {
					next[out] = r
				}
			}
			width = len(t.Indices)
		case *ml.StandardScaler:
			if width != len(t.Mean) {
				return nil, false
			}
			for j, r := range ranges {
				if j >= len(t.Mean) {
					continue
				}
				lo := (r.Lo - t.Mean[j]) / t.Scale[j]
				hi := (r.Hi - t.Mean[j]) / t.Scale[j]
				if t.Scale[j] < 0 {
					lo, hi = hi, lo
				}
				next[j] = expr.Range{Lo: lo, Hi: hi}
			}
		case *ml.OneHotEncoder:
			inDim := t.InputDim
			if inDim == 0 {
				inDim = width
			}
			if inDim != width {
				return nil, false
			}
			// passthrough columns keep their ranges
			for j := 0; j < width; j++ {
				out, err := t.PassthroughOutputIndex(j)
				if err != nil {
					continue
				}
				if r, ok := ranges[j]; ok {
					next[out] = r
				}
			}
			// an equality on a categorical column pins its whole block
			for ci, c := range t.Cols {
				r, ok := ranges[c]
				if !ok || r.Lo != r.Hi {
					continue
				}
				lo, hi, err := t.IndicatorRange(inDim, c)
				if err != nil {
					continue
				}
				for k, cat := range t.Categories[ci] {
					idx := lo + k
					if idx >= hi {
						break
					}
					if cat == r.Lo {
						next[idx] = expr.Range{Lo: 1, Hi: 1}
					} else {
						next[idx] = expr.Range{Lo: 0, Hi: 0}
					}
				}
			}
			od, err := t.OutputDim(width)
			if err != nil {
				return nil, false
			}
			width = od
		default:
			return nil, false
		}
		ranges = next
	}
	ff := &featureFacts{constraints: make(ml.Constraints), pinned: make(map[int]float64)}
	for j, r := range ranges {
		if r.Lo == math.Inf(-1) && r.Hi == math.Inf(1) {
			continue
		}
		ff.constraints[j] = ml.Interval{Lo: r.Lo, Hi: r.Hi}
		if r.Lo == r.Hi {
			ff.pinned[j] = r.Lo
		}
	}
	return ff, true
}
