package types

import (
	"sync"
	"sync/atomic"
)

// vectorPool recycles Vector shells and their data arrays across kernel
// invocations. Ownership is explicit: only vectors obtained from GetVector
// are marked pooled, and PutVector silently ignores everything else, so
// storage-owned or escaped vectors can never be recycled by a stray Put.
var vectorPool = sync.Pool{New: func() any { return new(Vector) }}

// GetVector returns a pooled vector of type t with n rows of unspecified
// values and no NULLs. Callers must overwrite every row.
func GetVector(t DataType, n int) *Vector {
	v := vectorPool.Get().(*Vector)
	v.Type = t
	v.pooled = true
	v.SetLen(n)
	return v
}

// PutVector returns a pooled vector for reuse. Calls on vectors that did
// not come from GetVector (or that were turned into views by SliceInto)
// are no-ops, so it is always safe to Put a vector whose provenance is
// unknown after copying what it held.
func PutVector(v *Vector) {
	if v == nil || !v.pooled {
		return
	}
	v.pooled = false
	// Drop string references so the pool does not pin old row data.
	for i := range v.Strings {
		v.Strings[i] = ""
	}
	v.Reset()
	vectorPool.Put(v)
}

// BatchPool recycles batches of a single schema. It exists for operator
// intermediates that are provably private — buffers whose rows were copied
// in and are copied out again (e.g. sort runs) — never for batches that
// escape downstream: emitted batches may alias table storage or each
// other, and recycling them would corrupt live results.
type BatchPool struct {
	schema *Schema
	pool   sync.Pool

	gets atomic.Int64
	puts atomic.Int64
	news atomic.Int64
}

// NewBatchPool builds a pool handing out empty batches of the schema.
func NewBatchPool(schema *Schema) *BatchPool {
	p := &BatchPool{schema: schema}
	p.pool.New = func() any {
		p.news.Add(1)
		return NewBatch(schema)
	}
	return p
}

// Schema returns the schema the pool's batches carry.
func (p *BatchPool) Schema() *Schema { return p.schema }

// Get returns an empty batch (zero rows, capacity retained from earlier
// uses).
func (p *BatchPool) Get() *Batch {
	p.gets.Add(1)
	b := p.pool.Get().(*Batch)
	for _, v := range b.Vecs {
		v.Reset()
	}
	return b
}

// Put recycles a batch previously obtained from Get. The caller must be
// the sole owner of b and of every vector in it.
func (p *BatchPool) Put(b *Batch) {
	if b == nil {
		return
	}
	p.puts.Add(1)
	for _, v := range b.Vecs {
		// Drop string references so the pool does not pin old row data.
		for i := range v.Strings {
			v.Strings[i] = ""
		}
	}
	p.pool.Put(b)
}

// Stats reports pool traffic — gets, puts and fresh allocations — so
// tests can assert that recycling actually happens.
func (p *BatchPool) Stats() (gets, puts, news int64) {
	return p.gets.Load(), p.puts.Load(), p.news.Load()
}
