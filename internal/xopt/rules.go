package xopt

import (
	"fmt"
	"sort"
	"strings"

	"raven/internal/expr"
	"raven/internal/ir"
	"raven/internal/ml"
	"raven/internal/nnconv"
	"raven/internal/plan"
	"raven/internal/types"
)

// mldChain extracts the featurizer steps and model node of the (single)
// MLD chain in the graph, in execution order.
func mldChain(g *ir.Graph) (steps []*ir.TransformNode, model *ir.ModelNode) {
	for _, n := range g.Chain() {
		switch x := n.(type) {
		case *ir.TransformNode:
			steps = append(steps, x)
		case *ir.ModelNode:
			if model == nil {
				model = x
			}
		}
	}
	return steps, model
}

func stepTransformers(steps []*ir.TransformNode) []ml.Transformer {
	out := make([]ml.Transformer, len(steps))
	for i, s := range steps {
		out[i] = s.T
	}
	return out
}

// rulePredicateModelPruning implements §4.1 predicate-based model pruning:
// derive row constraints from predicates (and optionally statistics), map
// them into feature space, and specialize the model — cutting dead tree
// branches, or folding pinned features into a linear model's bias.
func rulePredicateModelPruning(g *ir.Graph, useStats bool) (bool, error) {
	steps, model := mldChain(g)
	if model == nil {
		return false, nil
	}
	facts := gatherFacts(g, useStats)
	if len(facts.ranges) == 0 && len(facts.equals) == 0 {
		return false, nil
	}
	ff, ok := mapFactsThroughTransforms(facts, model.InputCols, stepTransformers(steps))
	if !ok || (len(ff.constraints) == 0 && len(ff.pinned) == 0) {
		return false, nil
	}
	switch m := model.M.(type) {
	case *ml.DecisionTree:
		pruned := m.Prune(ff.constraints)
		if pruned.NumNodes() >= m.NumNodes() {
			return false, nil
		}
		model.M = pruned
		return true, nil
	case *ml.RandomForest:
		pruned := m.Prune(ff.constraints)
		before, after := 0, 0
		for i := range m.Trees {
			before += m.Trees[i].NumNodes()
			after += pruned.Trees[i].NumNodes()
		}
		if after >= before {
			return false, nil
		}
		model.M = pruned
		return true, nil
	case *ml.LogisticRegression:
		if len(ff.pinned) == 0 {
			return false, nil
		}
		narrowed, kept := m.PinFeatures(ff.pinned)
		if len(kept) == len(m.W) {
			return false, nil
		}
		model.M = narrowed
		appendFeatureSelect(g, model, kept)
		return true, nil
	default:
		return false, nil
	}
}

// appendFeatureSelect inserts a feature-space ColumnSelect immediately
// before the model (after all existing transforms).
func appendFeatureSelect(g *ir.Graph, model *ir.ModelNode, kept []int) {
	sel := &ir.TransformNode{T: &ml.ColumnSelect{Indices: kept}, In: model.In, Engine: ir.EngineML}
	model.In = sel
}

// ruleModelProjectionPushdown implements §4.1 model-projection pushdown:
// features the model provably ignores (zero weights, pruned branches) are
// projected out — the model narrows, and when the featurizer chain permits
// it the projection propagates to the relational side, shrinking scans and
// enabling join elimination.
func ruleModelProjectionPushdown(g *ir.Graph) (bool, error) {
	steps, model := mldChain(g)
	if model == nil {
		return false, nil
	}
	changed := false
	switch m := model.M.(type) {
	case *ml.LogisticRegression:
		if m.Sparsity() == 0 {
			return false, nil
		}
		narrowed, kept := m.Compact()
		if len(kept) == len(m.W) {
			return false, nil
		}
		model.M = narrowed
		if len(steps) == 0 {
			// Feature i == input column i: narrow the relational feed.
			newCols := make([]string, len(kept))
			for i, j := range kept {
				newCols[i] = model.InputCols[j]
			}
			model.InputCols = newCols
		} else {
			appendFeatureSelect(g, model, kept)
		}
		changed = true
	case *ml.DecisionTree, *ml.RandomForest:
		used := model.M.UsedFeatures()
		var nf int
		if t, ok := m.(*ml.DecisionTree); ok {
			nf = t.NFeat
		} else {
			nf = m.(*ml.RandomForest).NumFeatures()
		}
		if len(used) == 0 || len(used) >= nf {
			return false, nil
		}
		remap := make(map[int]int, len(used))
		for i, f := range used {
			remap[f] = i
		}
		switch t := m.(type) {
		case *ml.DecisionTree:
			nt, err := t.RemapFeatures(remap, len(used))
			if err != nil {
				return false, err
			}
			model.M = nt
		case *ml.RandomForest:
			nf := &ml.RandomForest{Trees: make([]*ml.DecisionTree, len(t.Trees))}
			for i, tr := range t.Trees {
				x, err := tr.RemapFeatures(remap, len(used))
				if err != nil {
					return false, err
				}
				nf.Trees[i] = x
			}
			model.M = nf
		}
		if len(steps) == 0 {
			newCols := make([]string, len(used))
			for i, j := range used {
				newCols[i] = model.InputCols[j]
			}
			model.InputCols = newCols
		} else {
			appendFeatureSelect(g, model, used)
		}
		changed = true
	}
	if !changed {
		return false, nil
	}
	// With transforms present, try to narrow the input columns too: an
	// input column is droppable when no used feature depends on it.
	return true, narrowInputColumns(g)
}

// narrowInputColumns back-maps feature usage through supported transforms
// (select/scaler/onehot chains) and rebuilds the chain over the reduced
// input column set.
func narrowInputColumns(g *ir.Graph) error {
	steps, model := mldChain(g)
	if model == nil || len(steps) == 0 {
		return nil
	}
	// Forward usability check only for chains of select/scaler/onehot.
	used := make(map[int]bool)
	for _, f := range model.M.UsedFeatures() {
		used[f] = true
	}
	// Walk backwards from model input to pipeline input.
	for i := len(steps) - 1; i >= 0; i-- {
		prev := make(map[int]bool)
		switch t := steps[i].T.(type) {
		case *ml.ColumnSelect:
			for out, in := range t.Indices {
				if used[out] {
					prev[in] = true
				}
			}
		case *ml.StandardScaler:
			prev = used
		case *ml.OneHotEncoder:
			inDim := t.InputDim
			if inDim == 0 {
				return nil // cannot back-map without the fitted width
			}
			for j := 0; j < inDim; j++ {
				if out, err := t.PassthroughOutputIndex(j); err == nil {
					if used[out] {
						prev[j] = true
					}
					continue
				}
				lo, hi, err := t.IndicatorRange(inDim, j)
				if err != nil {
					continue
				}
				for k := lo; k < hi; k++ {
					if used[k] {
						prev[j] = true
						break
					}
				}
			}
		default:
			return nil // unsupported transform: keep all inputs
		}
		used = prev
	}
	var keep []int
	for j := range model.InputCols {
		if used[j] {
			keep = append(keep, j)
		}
	}
	sort.Ints(keep)
	if len(keep) == len(model.InputCols) || len(keep) == 0 {
		return nil
	}
	// Rebuild: the simplest sound rewrite inserts a leading ColumnSelect
	// over the kept columns only when every later step can be re-indexed.
	// Chains starting with a OneHotEncoder or Scaler over the full input
	// are re-fitted by subsetting their per-column state.
	remap := make(map[int]int, len(keep))
	for i, j := range keep {
		remap[j] = i
	}
	for _, sn := range steps {
		switch t := sn.T.(type) {
		case *ml.StandardScaler:
			if len(t.Mean) != len(model.InputCols) {
				return nil // not the leading full-width scaler; bail
			}
			nm := make([]float64, len(keep))
			ns := make([]float64, len(keep))
			for i, j := range keep {
				nm[i] = t.Mean[j]
				ns[i] = t.Scale[j]
			}
			sn.T = &ml.StandardScaler{Mean: nm, Scale: ns}
		case *ml.ColumnSelect:
			ni := make([]int, len(t.Indices))
			for i, j := range t.Indices {
				nj, ok := remap[j]
				if !ok {
					return nil
				}
				ni[i] = nj
			}
			sn.T = &ml.ColumnSelect{Indices: ni}
			// After an explicit select, later steps see unchanged indices.
			remapLater := true
			_ = remapLater
			// Later steps operate on select output; stop re-indexing.
			goto done
		default:
			return nil
		}
	}
done:
	newCols := make([]string, len(keep))
	for i, j := range keep {
		newCols[i] = model.InputCols[j]
	}
	model.InputCols = newCols
	return nil
}

// ruleNNTranslation implements §4.2 NN translation: the MLD chain compiles
// into a tensor graph executable by the ort runtime (with CPU intra-op
// parallelism or the simulated GPU).
func ruleNNTranslation(g *ir.Graph, useGPU bool) (bool, error) {
	steps, model := mldChain(g)
	if model == nil {
		return false, nil
	}
	pipe := &ml.Pipeline{Steps: stepTransformers(steps), Final: model.M, InputColumns: model.InputCols}
	graph, err := nnconv.TranslatePipeline(pipe)
	if err != nil {
		return false, fmt.Errorf("xopt: NN translation: %w", err)
	}
	la := &ir.LANode{
		G:         graph,
		InputCols: model.InputCols,
		OutputCol: model.OutputCol,
		Engine:    ir.EngineML,
		UseGPU:    useGPU,
	}
	// Splice: LA node replaces the whole MLD chain.
	var below ir.Node
	if len(steps) > 0 {
		below = steps[0].In
	} else {
		below = model.In
	}
	la.In = below
	replaceInput(g, model, la)
	return true, nil
}

// replaceInput rewires whichever node consumed old to consume new; if old
// was the root, new becomes the root.
func replaceInput(g *ir.Graph, old, new ir.Node) {
	if g.Root == old {
		g.Root = new
		return
	}
	for _, n := range g.Chain() {
		if n.Input() == old {
			n.SetInput(new)
			return
		}
	}
}

// InlineMaxNodes bounds the tree size model inlining accepts; beyond this
// the generated CASE expression stops paying off (mirrors SQL Server UDF
// inlining limits).
const InlineMaxNodes = 511

// ruleModelInlining implements §4.2 model inlining: a small decision tree
// whose featurization is a pure column mapping (none, select, scaler)
// becomes a relational CASE expression evaluated entirely by the DB engine
// — no data leaves the relational runtime (the paper's ~17× at 300K rows).
func ruleModelInlining(g *ir.Graph) (bool, error) {
	steps, model := mldChain(g)
	if model == nil {
		return false, nil
	}
	tree, ok := model.M.(*ml.DecisionTree)
	if !ok || tree.NumNodes() > InlineMaxNodes {
		return false, nil
	}
	colExpr, ok := featureColumnExprs(model.InputCols, stepTransformers(steps))
	if !ok {
		return false, nil
	}
	caseExpr := treeToCase(tree, 0, colExpr)

	// Build the relational fragment: pass through only the columns the
	// sink actually references (all of them when there is no sink), append
	// the score column. Narrow pass-through is what later lets projection
	// pushdown shrink scans and eliminate joins below.
	inSchema := inputRowSchema(g, model)
	keep := map[string]bool{}
	if g.SinkRel() != nil {
		for _, c := range sinkReferencedColumns(g) {
			keep[strings.ToLower(c)] = true
		}
	} else {
		for _, c := range inSchema.Columns {
			keep[strings.ToLower(c.Name)] = true
		}
	}
	var exprs []expr.Expr
	var names []string
	for _, c := range inSchema.Columns {
		if !keep[strings.ToLower(c.Name)] {
			continue
		}
		exprs = append(exprs, &expr.Column{Name: c.Name})
		names = append(names, c.Name)
	}
	exprs = append(exprs, caseExpr)
	names = append(names, model.OutputCol.Name)
	proj, err := plan.NewProject(&plan.Input{Sch: inSchema}, exprs, names)
	if err != nil {
		return false, err
	}
	rel := &ir.RelNode{Plan: proj, Engine: ir.EngineDB}
	var below ir.Node
	if len(steps) > 0 {
		below = steps[0].In
	} else {
		below = model.In
	}
	rel.In = below
	replaceInput(g, model, rel)
	return true, nil
}

// inputRowSchema reconstructs the schema of rows entering the MLD stage.
func inputRowSchema(g *ir.Graph, model *ir.ModelNode) *types.Schema {
	// The node feeding the first MLD node is relational; use its plan
	// schema.
	n := model.In
	for n != nil {
		if rn, ok := n.(*ir.RelNode); ok {
			return rn.Plan.Schema()
		}
		n = n.Input()
	}
	// Fallback: input columns as floats.
	cols := make([]types.Column, len(model.InputCols))
	for i, c := range model.InputCols {
		cols[i] = types.Column{Name: c, Type: types.Float}
	}
	return types.NewSchema(cols...)
}

// featureColumnExprs maps each model feature to a relational expression
// over the input columns, through select/scaler-only chains. It returns
// false when a transform cannot be expressed relationally here (onehot and
// union stay in the ML runtime).
func featureColumnExprs(inputCols []string, steps []ml.Transformer) (func(f int) (expr.Expr, bool), bool) {
	// exprs[i] is the expression producing current feature i.
	exprs := make([]expr.Expr, len(inputCols))
	for i, c := range inputCols {
		exprs[i] = &expr.Column{Name: c}
	}
	for _, s := range steps {
		switch t := s.(type) {
		case *ml.ColumnSelect:
			next := make([]expr.Expr, len(t.Indices))
			for out, in := range t.Indices {
				if in >= len(exprs) {
					return nil, false
				}
				next[out] = exprs[in]
			}
			exprs = next
		case *ml.StandardScaler:
			if len(t.Mean) != len(exprs) {
				return nil, false
			}
			next := make([]expr.Expr, len(exprs))
			for j := range exprs {
				// (col - mean) / scale
				next[j] = expr.NewBinary(expr.OpDiv,
					expr.NewBinary(expr.OpSub, exprs[j], expr.FloatLit(t.Mean[j])),
					expr.FloatLit(t.Scale[j]))
			}
			exprs = next
		default:
			return nil, false
		}
	}
	return func(f int) (expr.Expr, bool) {
		if f < 0 || f >= len(exprs) {
			return nil, false
		}
		return exprs[f], true
	}, true
}

// treeToCase compiles a decision (sub)tree into a nested CASE expression.
func treeToCase(t *ml.DecisionTree, node int, colExpr func(int) (expr.Expr, bool)) expr.Expr {
	if t.Leaf(node) {
		return expr.FloatLit(t.Value[node])
	}
	col, ok := colExpr(t.Feature[node])
	if !ok {
		return expr.FloatLit(0)
	}
	return &expr.Case{
		Whens: []expr.When{{
			Cond: expr.NewBinary(expr.OpLe, col, expr.FloatLit(t.Threshold[node])),
			Then: treeToCase(t, t.Left[node], colExpr),
		}},
		Else: treeToCase(t, t.Right[node], colExpr),
	}
}

// ruleModelQuerySplitting implements §2's model/query splitting: the tree's
// root test partitions rows into a cheap branch and a complex branch, each
// scored by its own sub-model and unioned — enabling independent
// optimization of the two sides (akin to model cascades).
func ruleModelQuerySplitting(g *ir.Graph) (bool, error) {
	steps, model := mldChain(g)
	if model == nil || len(steps) > 0 {
		return false, nil // only bare trees over direct columns
	}
	tree, ok := model.M.(*ml.DecisionTree)
	if !ok || tree.NumNodes() < 7 {
		return false, nil
	}
	f, thr, left, right, err := tree.SplitOnRoot()
	if err != nil {
		return false, nil
	}
	if f >= len(model.InputCols) {
		return false, nil
	}
	leftNode := &ir.ModelNode{M: left, InputCols: model.InputCols, OutputCol: model.OutputCol, Engine: ir.EngineML}
	rightNode := &ir.ModelNode{M: right, InputCols: model.InputCols, OutputCol: model.OutputCol, Engine: ir.EngineML}
	split := &ir.SplitNode{
		CondCol:   model.InputCols[f],
		Threshold: thr,
		Left:      leftNode,
		Right:     rightNode,
		In:        model.In,
	}
	replaceInput(g, model, split)
	return true, nil
}
