package rt

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"raven/internal/ml"
	"raven/internal/types"
)

func testPipe() *ml.Pipeline {
	return &ml.Pipeline{
		Steps:        []ml.Transformer{&ml.StandardScaler{Mean: []float64{5, 0}, Scale: []float64{2, 1}}},
		Final:        &ml.LogisticRegression{W: []float64{1, -0.5}, B: 0.2},
		InputColumns: []string{"a", "b"},
	}
}

func testBatch(t *testing.T, n int) *types.Batch {
	t.Helper()
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "a", Type: types.Float},
		types.Column{Name: "b", Type: types.Float},
	)
	b := types.NewBatch(s)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if err := b.AppendRow(int64(i), rng.Float64()*10, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// expected computes the reference scores directly through the pipeline.
func expected(t *testing.T, b *types.Batch) []float64 {
	t.Helper()
	p := testPipe()
	data, n, err := b.FloatMatrix(p.InputColumns)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Predict(ml.Matrix{Data: data, Rows: n, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertScores(t *testing.T, want []float64, got []*types.Vector) {
	t.Helper()
	if len(got) != 1 {
		t.Fatalf("predictor returned %d vectors", len(got))
	}
	if got[0].Len() != len(want) {
		t.Fatalf("lengths: %d vs %d", got[0].Len(), len(want))
	}
	for i := range want {
		if math.Abs(got[0].Floats[i]-want[i]) > 1e-9 {
			t.Fatalf("score %d: %v vs %v", i, got[0].Floats[i], want[i])
		}
	}
}

func TestPipelinePredictor(t *testing.T) {
	b := testBatch(t, 100)
	p := NewPipelinePredictor(testPipe(), types.Float)
	got, err := p.PredictBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, expected(t, b), got)
}

func TestNNPredictorMatchesPipeline(t *testing.T) {
	b := testBatch(t, 200)
	r := NewRuntime()
	p, err := r.NNPredictor("key", testPipe(), types.Float)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.PredictBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, expected(t, b), got)
	charged, runs := p.Charged()
	if runs != 1 || charged <= 0 {
		t.Errorf("charged stats = %v, %d", charged, runs)
	}
}

func TestNNPredictorSessionCacheSharing(t *testing.T) {
	r := NewRuntime()
	p1, err := r.NNPredictor("same", testPipe(), types.Float)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.NNPredictor("same", testPipe(), types.Float)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Session != p2.Session {
		t.Error("sessions with same key should be shared")
	}
	p3, err := r.NNPredictor("", testPipe(), types.Float)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Session == p1.Session {
		t.Error("empty key must bypass the cache")
	}
}

func TestOutOfProcessPredictor(t *testing.T) {
	b := testBatch(t, 50)
	inner := NewPipelinePredictor(testPipe(), types.Float)
	p := &OutOfProcessPredictor{Inner: inner, Startup: 30 * time.Millisecond}
	start := time.Now()
	got, err := p.PredictBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	first := time.Since(start)
	if first < 30*time.Millisecond {
		t.Errorf("startup latency not charged: %v", first)
	}
	assertScores(t, expected(t, b), got)
	// second call: no startup
	start = time.Now()
	if _, err := p.PredictBatch(b); err != nil {
		t.Fatal(err)
	}
	if second := time.Since(start); second > 25*time.Millisecond {
		t.Errorf("startup charged twice: %v", second)
	}
}

func TestContainerPredictor(t *testing.T) {
	b := testBatch(t, 30)
	pred, srv, err := NewContainerPredictor(testPipe(), types.Float)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	got, err := pred.PredictBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	assertScores(t, expected(t, b), got)
}

func TestContainerServerErrors(t *testing.T) {
	// pipeline whose model expects the wrong width yields a 500
	bad := &ml.Pipeline{Final: &ml.LogisticRegression{W: []float64{1, 2, 3}}, InputColumns: []string{"a", "b"}}
	pred, srv, err := NewContainerPredictor(bad, types.Float)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	b := testBatch(t, 5)
	if _, err := pred.PredictBatch(b); err == nil {
		t.Error("width mismatch should surface as container error")
	}
}

func TestFloatVectorConversions(t *testing.T) {
	scores := []float64{0.2, 0.9, 1.6}
	f := floatVector(scores, types.Float)
	if f.Type != types.Float || f.Floats[2] != 1.6 {
		t.Error("float conversion")
	}
	i := floatVector(scores, types.Int)
	if i.Type != types.Int || i.Ints[2] != 1 {
		t.Error("int conversion")
	}
	bo := floatVector(scores, types.Bool)
	if bo.Type != types.Bool || bo.Bools[0] || !bo.Bools[1] {
		t.Error("bool conversion")
	}
}

func TestBatchWireRoundTrip(t *testing.T) {
	b := testBatch(t, 10)
	wire, err := encodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeBatch(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != b.Len() || back.Schema.Len() != b.Schema.Len() {
		t.Fatalf("round trip shape: %d/%d", back.Len(), back.Schema.Len())
	}
	if back.Col("a").Floats[3] != b.Col("a").Floats[3] {
		t.Error("round trip data")
	}
	if _, err := decodeBatch([]byte("junk")); err == nil {
		t.Error("junk should fail decode")
	}
}

func TestPredictorErrorsOnMissingColumn(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "zzz", Type: types.Float})
	b := types.NewBatch(s)
	_ = b.AppendRow(1.0)
	p := NewPipelinePredictor(testPipe(), types.Float)
	if _, err := p.PredictBatch(b); err == nil {
		t.Error("missing input column should fail")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeInProcess: "in-process", ModeInProcessNN: "in-process-nn",
		ModeOutOfProcess: "out-of-process", ModeContainer: "container",
	} {
		if m.String() != want {
			t.Errorf("%d = %q", m, m.String())
		}
	}
}
