// Package ml implements the classical ("MLD") machine-learning operators
// and featurizers of the paper's unified IR: decision trees, tree
// ensembles, linear and logistic regression, multi-layer perceptrons, and
// the scikit-learn-style featurizers (scaling, one-hot encoding, feature
// union) composed into Pipelines. This package is the reproduction's
// stand-in for scikit-learn: models are evaluated the way an interpreted
// classical framework evaluates them (per-row recursive tree traversal,
// per-step featurizer passes), which is exactly the baseline the paper's
// operator transformations beat (§4.2).
package ml

import (
	"fmt"
)

// Matrix is a flat row-major feature matrix: n rows of d features.
type Matrix struct {
	Data []float64
	Rows int
	Cols int
}

// NewMatrix wraps data as an n×d matrix.
func NewMatrix(data []float64, rows, cols int) (Matrix, error) {
	if len(data) != rows*cols {
		return Matrix{}, fmt.Errorf("ml: matrix %dx%d needs %d elems, got %d", rows, cols, rows*cols, len(data))
	}
	return Matrix{Data: data, Rows: rows, Cols: cols}, nil
}

// Row returns a view of row i.
func (m Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Transformer is a fitted featurization step: it maps an input matrix to an
// output matrix with possibly different width.
type Transformer interface {
	// Transform applies the step.
	Transform(in Matrix) (Matrix, error)
	// OutputDim reports the output width for a given input width.
	OutputDim(inputDim int) (int, error)
	// Kind names the step type ("scaler", "onehot", ...).
	Kind() string
}

// Model is a fitted predictor over a feature matrix.
type Model interface {
	// Predict returns one score per row: the predicted regression value,
	// or for classifiers the positive-class probability (binary) /
	// predicted label (multi-class trees).
	Predict(in Matrix) ([]float64, error)
	// NumFeatures is the expected input width.
	NumFeatures() int
	// UsedFeatures returns the sorted set of input feature indices the
	// model actually reads. Model-projection pushdown (paper §4.1) keys
	// off this: anything absent can be projected out upstream.
	UsedFeatures() []int
	// Kind names the model type ("tree", "forest", "logreg", ...).
	Kind() string
}

// Pipeline is a fitted chain of featurizers ending in a model — the "model
// pipeline" unit the paper stores in the database (§1).
type Pipeline struct {
	Steps []Transformer
	Final Model
	// InputColumns names the relational columns the pipeline consumes, in
	// order. The static analyzer fills this so the optimizer can relate
	// model features back to table columns.
	InputColumns []string
}

// Predict featurizes and scores the matrix.
func (p *Pipeline) Predict(in Matrix) ([]float64, error) {
	cur := in
	var err error
	for i, s := range p.Steps {
		cur, err = s.Transform(cur)
		if err != nil {
			return nil, fmt.Errorf("ml: pipeline step %d (%s): %w", i, s.Kind(), err)
		}
	}
	if p.Final == nil {
		return nil, fmt.Errorf("ml: pipeline has no final model")
	}
	out, err := p.Final.Predict(cur)
	if err != nil {
		return nil, fmt.Errorf("ml: pipeline model (%s): %w", p.Final.Kind(), err)
	}
	return out, nil
}

// PredictScratch carries the reusable buffers behind PredictInto. A
// scratch serves one goroutine at a time; concurrent predictors keep one
// per worker (typically via a sync.Pool).
type PredictScratch struct {
	bufs [2][]float64 // ping-pong buffers for featurizer outputs
	next int
	tree []float64 // per-tree scores inside ensemble models
}

// buffer returns a scratch slice of length n, alternating between two
// backing arrays so a step's input never aliases its output.
func (sc *PredictScratch) buffer(n int) []float64 {
	b := &sc.bufs[sc.next]
	sc.next = 1 - sc.next
	if cap(*b) < n {
		*b = make([]float64, n)
	}
	return (*b)[:n]
}

// treeBuffer returns a scratch slice of length n for per-submodel scores.
func (sc *PredictScratch) treeBuffer(n int) []float64 {
	if cap(sc.tree) < n {
		sc.tree = make([]float64, n)
	}
	return sc.tree[:n]
}

// TransformerInto is an optional Transformer extension: write the
// transformed matrix into dst (length rows × output width) instead of
// allocating a fresh one. dst must not alias in.Data unless the step is
// elementwise.
type TransformerInto interface {
	TransformInto(in Matrix, dst []float64) (Matrix, error)
}

// ModelInto is an optional Model extension: score into out (length
// in.Rows), using sc for internal temporaries.
type ModelInto interface {
	PredictInto(in Matrix, out []float64, sc *PredictScratch) error
}

// PredictInto is Predict writing scores into out (length in.Rows), reusing
// sc's buffers for featurizer outputs and model temporaries. Scores are
// bit-identical to Predict: every Into implementation replicates its
// allocating counterpart's float operations exactly; steps and models
// without an Into form fall back to the allocating path.
func (p *Pipeline) PredictInto(in Matrix, out []float64, sc *PredictScratch) error {
	if p.Final == nil {
		return fmt.Errorf("ml: pipeline has no final model")
	}
	if len(out) < in.Rows {
		return fmt.Errorf("ml: PredictInto buffer holds %d rows, input has %d", len(out), in.Rows)
	}
	cur := in
	for i, s := range p.Steps {
		ti, ok := s.(TransformerInto)
		if !ok {
			var err error
			cur, err = s.Transform(cur)
			if err != nil {
				return fmt.Errorf("ml: pipeline step %d (%s): %w", i, s.Kind(), err)
			}
			continue
		}
		d, err := s.OutputDim(cur.Cols)
		if err != nil {
			return fmt.Errorf("ml: pipeline step %d (%s): %w", i, s.Kind(), err)
		}
		cur, err = ti.TransformInto(cur, sc.buffer(cur.Rows*d))
		if err != nil {
			return fmt.Errorf("ml: pipeline step %d (%s): %w", i, s.Kind(), err)
		}
	}
	if mi, ok := p.Final.(ModelInto); ok {
		if err := mi.PredictInto(cur, out[:in.Rows], sc); err != nil {
			return fmt.Errorf("ml: pipeline model (%s): %w", p.Final.Kind(), err)
		}
		return nil
	}
	scores, err := p.Final.Predict(cur)
	if err != nil {
		return fmt.Errorf("ml: pipeline model (%s): %w", p.Final.Kind(), err)
	}
	copy(out, scores)
	return nil
}

// FeatureDim traces the width through the steps, returning the width the
// final model sees for a given input width.
func (p *Pipeline) FeatureDim(inputDim int) (int, error) {
	d := inputDim
	var err error
	for _, s := range p.Steps {
		d, err = s.OutputDim(d)
		if err != nil {
			return 0, err
		}
	}
	return d, nil
}

// Validate checks internal width consistency against the declared input.
func (p *Pipeline) Validate() error {
	if p.Final == nil {
		return fmt.Errorf("ml: pipeline has no final model")
	}
	if len(p.InputColumns) == 0 {
		return nil // width unknown until bound to a query
	}
	d, err := p.FeatureDim(len(p.InputColumns))
	if err != nil {
		return err
	}
	if d != p.Final.NumFeatures() {
		return fmt.Errorf("ml: pipeline produces %d features, model expects %d", d, p.Final.NumFeatures())
	}
	return nil
}
