// Hospital: the paper's running example (Fig 1) end to end — three
// joinable tables, a stored decision-tree pipeline, and the pregnant-
// patients inference query, showing each cross-optimization firing and the
// speedup over unoptimized execution.
package main

import (
	"fmt"
	"log"
	"time"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

const inferenceQuery = `
DECLARE @model = 'duration_of_stay';
WITH data AS (
  SELECT * FROM patient_info AS pi
  JOIN blood_tests AS bt ON pi.id = bt.id
  JOIN prenatal_tests AS pt ON bt.id = pt.id
)
SELECT d.id, p.length_of_stay
FROM PREDICT(MODEL = @model, DATA = data AS d)
WITH (length_of_stay FLOAT) AS p
WHERE d.pregnant = 1 AND p.length_of_stay > 0.5`

func main() {
	db := raven.MustOpen()
	fmt.Println("generating hospital workload (patient_info ⋈ blood_tests ⋈ prenatal_tests)...")
	h, err := data.GenHospital(db.Catalog(), 200000, 6000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Train the length-of-stay decision tree on historical data and store
	// it in the database (the data scientist's half of Fig 1).
	tree := train.FitTree(h.TrainX, h.TrainY, train.TreeOptions{MaxDepth: 6, MinLeaf: 10})
	pipe := &ml.Pipeline{Final: tree, InputColumns: h.FeatureCols}
	if err := db.StoreModel("duration_of_stay", pipe); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored model: decision tree with %d nodes over %v\n\n", tree.NumNodes(), h.FeatureCols)

	// The analyst's query, unoptimized: classical pipeline interpreted
	// outside the relational engine (external runtime).
	start := time.Now()
	plain, err := db.QueryWithOptions(inferenceQuery, raven.QueryOptions{
		CrossOptimize: false, Mode: raven.ModeOutOfProcess, Parallelism: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	plainTime := time.Since(start)

	// The same query through Raven's cross optimizer.
	start = time.Now()
	opt, err := db.Query(inferenceQuery)
	if err != nil {
		log.Fatal(err)
	}
	optTime := time.Since(start)

	fmt.Printf("unoptimized (external runtime): %8v  -> %d rows\n", plainTime.Round(time.Millisecond), plain.Batch.Len())
	fmt.Printf("Raven cross-optimized:          %8v  -> %d rows\n", optTime.Round(time.Millisecond), opt.Batch.Len())
	fmt.Printf("speedup: %.1fx; rules applied: %v\n\n", float64(plainTime)/float64(optTime), opt.AppliedRules)

	// Show the optimizer's work, Fig 1 as text.
	explain, err := db.Explain(inferenceQuery, raven.DefaultQueryOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(explain)
}
