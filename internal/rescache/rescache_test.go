package rescache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPutValidate(t *testing.T) {
	c := New[string](100, 0)
	if _, ok := c.Get("k", nil); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("k", "v", 10)
	if v, ok := c.Get("k", nil); !ok || v != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// Validation failure drops the entry and counts an invalidation.
	if _, ok := c.Get("k", func(string) bool { return false }); ok {
		t.Fatal("invalid entry served")
	}
	if _, ok := c.Get("k", nil); ok {
		t.Fatal("invalidated entry still present")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Invalidations != 1 || s.Misses != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	c := New[int](100, 100)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprint(i), i, 20) // 5 fit
	}
	s := c.Stats()
	if s.Bytes > 100 {
		t.Fatalf("over budget: %d", s.Bytes)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions under byte pressure")
	}
	// The most recently inserted keys survive.
	if _, ok := c.Get("9", nil); !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := c.Get("0", nil); ok {
		t.Fatal("oldest entry survived a full churn")
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := New[int](60, 60)
	c.Put("a", 1, 20)
	c.Put("b", 2, 20)
	c.Put("c", 3, 20)
	c.Get("a", nil) // refresh a; b is now LRU
	c.Put("d", 4, 20)
	if _, ok := c.Get("b", nil); ok {
		t.Fatal("LRU entry b survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k, nil); !ok {
			t.Fatalf("entry %s evicted out of LRU order", k)
		}
	}
}

func TestOversizeRefused(t *testing.T) {
	c := New[int](100, 0) // entry cap defaults to 25
	c.Put("big", 1, 26)
	if _, ok := c.Get("big", nil); ok {
		t.Fatal("oversize entry cached")
	}
	c.Put("fits", 2, 25)
	if _, ok := c.Get("fits", nil); !ok {
		t.Fatal("at-cap entry refused")
	}
}

func TestReplaceSameKey(t *testing.T) {
	c := New[int](100, 100)
	c.Put("k", 1, 40)
	c.Put("k", 2, 60)
	if v, _ := c.Get("k", nil); v != 2 {
		t.Fatalf("v = %d", v)
	}
	if s := c.Stats(); s.Bytes != 60 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestReplaceForcingEvictionAccounting pins the replace-then-evict
// path: replacing a key subtracts the old entry's size, and the
// eviction loop triggered by the new size must never pick the replaced
// key as its LRU victim (a double subtraction that would leave bytes
// negative and the cache over budget).
func TestReplaceForcingEvictionAccounting(t *testing.T) {
	c := New[int](100, 100)
	c.Put("a", 1, 60) // oldest — the LRU victim candidate
	c.Put("b", 2, 30) // bytes = 90
	// Replacing "a" with 90 bytes: old "a" (60) comes out, and fitting
	// the new value must evict "b", not the already-removed "a".
	c.Put("a", 3, 90)
	s := c.Stats()
	if s.Bytes != 90 || s.Entries != 1 {
		t.Fatalf("accounting corrupted: %+v", s)
	}
	if s.Bytes < 0 || s.Bytes > 100 {
		t.Fatalf("bytes outside budget: %d", s.Bytes)
	}
	if v, ok := c.Get("a", nil); !ok || v != 3 {
		t.Fatalf("replaced entry = %d, %v", v, ok)
	}
	if _, ok := c.Get("b", nil); ok {
		t.Fatal("b survived an eviction its bytes were charged for")
	}
}

// TestCommitOversizeRefused pins the shared guard: a flight Commit over
// the per-entry cap must be refused exactly like a Put, not evict the
// whole cache and corrupt the byte accounting.
func TestCommitOversizeRefused(t *testing.T) {
	c := New[int](100, 25)
	c.Put("warm", 1, 20)
	_, hit, fl, err := c.Do(context.Background(), "big", nil)
	if hit || err != nil || fl == nil {
		t.Fatalf("Do = hit=%v fl=%v err=%v", hit, fl, err)
	}
	fl.Commit(2, 50) // over entryCap
	if _, ok := c.Get("big", nil); ok {
		t.Fatal("oversize Commit cached")
	}
	s := c.Stats()
	if s.Bytes != 20 || s.Entries != 1 || s.Evictions != 0 {
		t.Fatalf("oversize Commit disturbed the cache: %+v", s)
	}
}

func TestSingleflightCollapse(t *testing.T) {
	c := New[int](1000, 1000)
	const n = 32
	var execs atomic.Int32
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, fl, err := c.Do(context.Background(), "k", nil)
			if err != nil {
				t.Error(err)
				return
			}
			if hit {
				results[i] = v
				return
			}
			// Leader: simulate work, then commit.
			execs.Add(1)
			time.Sleep(20 * time.Millisecond)
			fl.Commit(42, 8)
			results[i] = 42
		}(i)
	}
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
	s := c.Stats()
	if s.Collapsed != n-1 {
		t.Fatalf("collapsed = %d, want %d", s.Collapsed, n-1)
	}
}

func TestSingleflightLeaderCancelReleasesWaiters(t *testing.T) {
	c := New[int](1000, 1000)
	_, _, fl, _ := c.Do(context.Background(), "k", nil)
	if fl == nil {
		t.Fatal("expected leadership")
	}
	waited := make(chan struct{})
	go func() {
		defer close(waited)
		_, hit, fl2, err := c.Do(context.Background(), "k", nil)
		if err != nil {
			t.Error(err)
			return
		}
		// The canceled leader stored nothing: the waiter must get
		// leadership, not a hit.
		if hit || fl2 == nil {
			t.Errorf("hit=%v fl=%v after leader cancel", hit, fl2)
			return
		}
		fl2.Cancel()
	}()
	time.Sleep(10 * time.Millisecond)
	fl.Cancel()
	select {
	case <-waited:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never released")
	}
}

func TestSingleflightAbandonCounts(t *testing.T) {
	c := New[int](1000, 1000)
	_, _, fl, _ := c.Do(context.Background(), "k", nil)
	fl.Abandon()
	fl.Abandon() // idempotent
	if s := c.Stats(); s.Abandoned != 1 {
		t.Fatalf("abandoned = %d", s.Abandoned)
	}
	if _, ok := c.Get("k", nil); ok {
		t.Fatal("abandoned flight stored an entry")
	}
}

func TestSingleflightWaiterCtxExpiry(t *testing.T) {
	c := New[int](1000, 1000)
	_, _, fl, _ := c.Do(context.Background(), "k", nil)
	defer fl.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, _, err := c.Do(ctx, "k", nil)
	if err == nil {
		t.Fatal("expired waiter returned no error")
	}
}

func TestClear(t *testing.T) {
	c := New[int](100, 100)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Clear()
	s := c.Stats()
	if s.Entries != 0 || s.Bytes != 0 || s.Invalidations != 2 {
		t.Fatalf("stats after Clear = %+v", s)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	c := New[int](512, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprint(i % 13)
				switch i % 4 {
				case 0:
					c.Put(key, i, int64(1+i%64))
				case 1:
					c.Get(key, func(int) bool { return i%7 != 0 })
				case 2:
					_, hit, fl, _ := c.Do(context.Background(), key, nil)
					if !hit && fl != nil {
						if i%2 == 0 {
							fl.Commit(i, 16)
						} else {
							fl.Cancel()
						}
					}
				case 3:
					if i%50 == 0 {
						c.Clear()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Bytes > 512 {
		t.Fatalf("budget exceeded: %+v", s)
	}
}
