package bench

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"raven"
	"raven/internal/sched"
	"raven/internal/server"
)

// Multi-tenant ablation shape: an admission limit of 4 with the
// aggressive tenant quota'd one below it, so a slot always stays open
// for everyone else once the quota is on.
const (
	tenantAggressiveClients = 32
	tenantAdmissionLimit    = 4
	tenantBatchQuota        = tenantAdmissionLimit - 1
)

// MultiTenantServe is the multi-tenant isolation ablation: an
// aggressive "batch" tenant saturates the server from 32 concurrent
// HTTP clients while a single "interactive" tenant issues sequential
// queries, with and without a quota on the aggressive tenant. Without a
// quota the batch tenant occupies every admission slot and interactive
// latency tracks the whole batch queue; with a quota (batch capped
// below the global limit) a slot is always available and the
// interactive tenant's queue wait collapses. The experiment fails — not
// just reports — if admission control is breached (active gauge over
// the limit), if any interactive query is starved (not admitted), or if
// interactive results drift from the serial reference (byte-identical
// at any DOP).
func MultiTenantServe(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "MultiTenantServe",
		Title:      "per-tenant quotas: interactive latency under an aggressive tenant, quota off vs on",
		PaperShape: "shared inference serving needs isolation, not just speed (the multi-client scenario of the paper's serving story)",
	}
	rows, trees := 4000, 8
	interactiveQueries := 24
	if cfg.Quick {
		rows, trees = 2000, 4
		interactiveQueries = 10
	}
	variants := []struct {
		param string
		opts  []raven.Option
	}{
		{"no quota", nil},
		{fmt.Sprintf("batch quota %d/%d", tenantBatchQuota, tenantAdmissionLimit), []raven.Option{
			raven.WithTenantQuota("batch", tenantBatchQuota, 0),
		}},
	}
	for _, v := range variants {
		if err := runTenantVariant(t, cfg, v.param, v.opts, rows, trees, interactiveQueries); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// runTenantVariant measures one quota configuration, always tearing the
// serving stack down — error paths included, so a failed variant never
// leaks a listener, serve goroutine or loaded engine into later
// experiments.
func runTenantVariant(t *Table, cfg Config, param string, quotaOpts []raven.Option, rows, trees, interactiveQueries int) (reterr error) {
	q := servingPredictQuery

	db, base, shutdown, err := servingBench(cfg, rows, trees,
		append([]raven.Option{
			raven.WithMaxConcurrentQueries(tenantAdmissionLimit),
			raven.WithSchedulerQueue(1024, 0),
		}, quotaOpts...)...)
	if err != nil {
		return err
	}
	defer func() {
		if e := shutdown(); e != nil && reterr == nil {
			reterr = e
		}
	}()

	// Serial reference (and cache warmup): the parity anchor every
	// interactive result must match byte for byte.
	warm := &server.Client{Base: base, HTTP: &http.Client{}}
	ref, err := warm.Query(server.QueryRequest{SQL: q,
		Options: &server.QueryOptions{Parallelism: 1}})
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	wantFP := ref.Fingerprint()

	// The aggressive tenant: clients hammering until told to stop, so
	// the server is saturated for the whole interactive run. The first
	// client error wins (plain mutex — atomic.Value would panic on the
	// differing concrete error types the clients can store).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var batchLat latencies
	var batchMu sync.Mutex
	var batchFirstErr error
	setBatchErr := func(err error) {
		batchMu.Lock()
		if batchFirstErr == nil {
			batchFirstErr = err
		}
		batchMu.Unlock()
	}
	stopBatch := func() error {
		select {
		case <-stop:
		default:
			close(stop)
		}
		wg.Wait()
		batchMu.Lock()
		defer batchMu.Unlock()
		return batchFirstErr
	}
	for i := 0; i < tenantAggressiveClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hc := &http.Client{Transport: &http.Transport{}}
			defer hc.CloseIdleConnections()
			c := &server.Client{Base: base, HTTP: hc}
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				res, err := c.Query(server.QueryRequest{SQL: q, Tenant: "batch"})
				if err != nil {
					setBatchErr(err)
					return
				}
				if len(res.Rows) == 0 {
					setBatchErr(fmt.Errorf("batch query returned no rows"))
					return
				}
				batchLat.add(float64(time.Since(t0).Microseconds()) / 1000)
			}
		}()
	}
	// Let the batch flood actually saturate admission before the
	// interactive tenant shows up.
	deadline := time.Now().Add(10 * time.Second)
	for db.Scheduler().Stats().Waiting < tenantAggressiveClients/2 {
		if time.Now().After(deadline) {
			if err := stopBatch(); err != nil {
				return fmt.Errorf("batch tenant: %w", err)
			}
			return fmt.Errorf("batch tenant never saturated the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// The interactive tenant: one client, sequential queries, higher
	// priority, parallel plans (parity must hold at any DOP).
	ihc := &http.Client{Transport: &http.Transport{}}
	defer ihc.CloseIdleConnections()
	ic := &server.Client{Base: base, HTTP: ihc}
	var interLat []float64
	for i := 0; i < interactiveQueries; i++ {
		t0 := time.Now()
		res, err := ic.Query(server.QueryRequest{SQL: q, Tenant: "interactive", Priority: server.IntPtr(10),
			Options: &server.QueryOptions{Parallelism: 4, ParallelThresholdRows: 1}})
		if err != nil {
			stopBatch()
			return fmt.Errorf("interactive query %d starved or failed: %w", i, err)
		}
		if res.Fingerprint() != wantFP {
			stopBatch()
			return fmt.Errorf("interactive result drifted from serial reference (%d rows vs %d)", len(res.Rows), len(ref.Rows))
		}
		interLat = append(interLat, float64(time.Since(t0).Microseconds())/1000)
	}
	if err := stopBatch(); err != nil {
		return fmt.Errorf("batch tenant: %w", err)
	}

	st := db.Scheduler().Stats()
	if st.MaxActive > tenantAdmissionLimit {
		return fmt.Errorf("admission breached: max active %d > %d", st.MaxActive, tenantAdmissionLimit)
	}
	it := st.Tenants["interactive"]
	if it.Admitted < uint64(interactiveQueries) || it.Rejected != 0 || it.TimedOut != 0 {
		return fmt.Errorf("interactive tenant starved: %+v", it)
	}
	bt := st.Tenants["batch"]
	if quotaOpts != nil && bt.MaxActive > tenantBatchQuota {
		return fmt.Errorf("tenant quota breached: batch max active %d > %d", bt.MaxActive, tenantBatchQuota)
	}
	// Queue wait per tenant, from the scheduler's own clock: the
	// isolation signal the quota exists for. The histogram is the
	// p99-bound evidence (with the quota on, every interactive wait
	// lands in the lowest buckets).
	interWait := meanWaitMillis(it)
	note := fmt.Sprintf("%s: interactive admitted %d/%d, mean queue wait %.2fms (histogram %s), batch max active %d/%d",
		param, it.Admitted, interactiveQueries, interWait, histogram(it.WaitHistogram), bt.MaxActive, tenantAdmissionLimit)
	t.AddMillis("interactive p99", param, percentile(interLat, 0.99), note)
	t.AddMillis("interactive mean", param, mean(interLat), "")
	t.AddMillis("interactive mean queue wait", param, interWait, "")
	t.AddMillis("batch p99", param, percentile(batchLat.snapshot(), 0.99), "")
	return nil
}

// histogram renders a queue-wait histogram against the scheduler's
// bucket labels.
func histogram(h [5]uint64) string {
	parts := make([]string, len(h))
	for i, n := range h {
		parts[i] = fmt.Sprintf("%s:%d", sched.WaitBucketLabels[i], n)
	}
	return strings.Join(parts, " ")
}

// meanWaitMillis is a tenant's mean queue wait over everything it ever
// queued (admitted or not); 0 when it never had to queue.
func meanWaitMillis(ts raven.TenantStats) float64 {
	if ts.Queued == 0 {
		return 0
	}
	return float64(ts.TotalWait.Microseconds()) / 1000 / float64(ts.Queued)
}

// latencies is a concurrency-safe latency collector.
type latencies struct {
	mu sync.Mutex
	xs []float64
}

func (l *latencies) add(ms float64) {
	l.mu.Lock()
	l.xs = append(l.xs, ms)
	l.mu.Unlock()
}

func (l *latencies) snapshot() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.xs...)
}
