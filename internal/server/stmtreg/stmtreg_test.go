package stmtreg

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"raven/internal/server/reqopt"
)

func TestRegisterGetRemove(t *testing.T) {
	r := New(4)
	id, err := r.Register("", &Entry{Opts: reqopt.Options{Tenant: "a"}})
	if err != nil || id != "s1" {
		t.Fatalf("register: %q %v", id, err)
	}
	e, err := r.Get(id)
	if err != nil || e.Opts.Tenant != "a" {
		t.Fatalf("get: %+v %v", e, err)
	}
	if err := r.Remove(id); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := r.Get(id); !errors.Is(err, reqopt.ErrStmtNotFound) {
		t.Fatalf("get after remove: %v", err)
	}
	if err := r.Remove(id); !errors.Is(err, reqopt.ErrStmtNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	// IDs never recycle.
	if id2, _ := r.Register("", &Entry{}); id2 != "s2" {
		t.Fatalf("id reuse: %q", id2)
	}
	if r.Prepares() != 2 {
		t.Fatalf("prepares: %d", r.Prepares())
	}
}

func TestCapacity(t *testing.T) {
	r := New(2)
	r.Register("", &Entry{})
	if r.Full() {
		t.Fatal("not full at 1/2")
	}
	r.Register("", &Entry{})
	if !r.Full() {
		t.Fatal("full at 2/2")
	}
	if _, err := r.Register("", &Entry{}); !errors.Is(err, reqopt.ErrStmtLimit) {
		t.Fatalf("over capacity: %v", err)
	}
	// The cap spans owners: a different owner is refused too.
	if _, err := r.Register("pg:1", &Entry{}); !errors.Is(err, reqopt.ErrStmtLimit) {
		t.Fatalf("over capacity (other owner): %v", err)
	}
	if New(0).Cap() != DefaultMax {
		t.Fatalf("default cap: %d", New(0).Cap())
	}
}

func TestOwnership(t *testing.T) {
	r := New(16)
	httpID, _ := r.Register("", &Entry{})
	r.Register("pg:1", &Entry{})
	r.Register("pg:1", &Entry{})
	r.Register("pg:2", &Entry{})

	if n := r.RemoveOwner("pg:1"); n != 2 {
		t.Fatalf("remove owner: dropped %d, want 2", n)
	}
	if r.Len() != 2 {
		t.Fatalf("len after owner removal: %d", r.Len())
	}
	// The HTTP statement and the other connection's survive.
	if _, err := r.Get(httpID); err != nil {
		t.Fatalf("http stmt gone: %v", err)
	}
	// Removing by id cleans the owner index too.
	if n := r.RemoveOwner("missing"); n != 0 {
		t.Fatalf("remove missing owner: %d", n)
	}
}

func TestConcurrentRegistry(t *testing.T) {
	r := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := fmt.Sprintf("pg:%d", g)
			for i := 0; i < 16; i++ {
				id, err := r.Register(owner, &Entry{})
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if _, err := r.Get(id); err != nil {
					t.Errorf("get: %v", err)
				}
			}
			r.RemoveOwner(owner)
		}(g)
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("len after concurrent churn: %d", r.Len())
	}
}
