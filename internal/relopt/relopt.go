// Package relopt implements the standard relational optimizations the
// paper leans on (§2 "standard DB optimizations"): predicate pushdown
// (through joins and below PREDICT), projection pushdown / column pruning
// into scans, join elimination on unique keys, filter merging and
// constant folding. The cross optimizer invokes these after its
// model-driven rewrites (e.g. dropped features enable join elimination).
package relopt

import (
	"fmt"
	"strings"

	"raven/internal/expr"
	"raven/internal/plan"
	"raven/internal/storage"
	"raven/internal/types"
)

// Optimizer rewrites logical plans.
type Optimizer struct {
	Catalog *storage.Catalog
	// ModelInputs resolves the input columns a PREDICT node consumes, so
	// column pruning keeps them. nil treats PREDICT as needing everything.
	ModelInputs func(modelName string) ([]string, error)
	// AssumeRI allows join elimination on declared unique keys assuming
	// referential integrity (every probe row matches exactly one build
	// row). The synthetic generators guarantee this.
	AssumeRI bool
}

// Optimize runs all rules to fixpoint (bounded), returning a new root.
// The root's full output schema is treated as required.
func (o *Optimizer) Optimize(root plan.Node) (plan.Node, error) {
	all := make([]string, 0, root.Schema().Len())
	for _, c := range root.Schema().Columns {
		all = append(all, c.Name)
	}
	return o.OptimizeFor(root, all)
}

// OptimizeFor runs all rules to fixpoint (bounded) with an explicit set of
// required output columns — the cross optimizer passes the model's input
// columns here so projection pushdown can cut everything else.
func (o *Optimizer) OptimizeFor(root plan.Node, required []string) (plan.Node, error) {
	var err error
	for i := 0; i < 8; i++ {
		changed := false
		root, changed, err = o.pushFilters(root)
		if err != nil {
			return nil, err
		}
		c2 := false
		root, c2, err = o.mergeAndSimplifyFilters(root)
		if err != nil {
			return nil, err
		}
		root, err = o.prune(root, required)
		if err != nil {
			return nil, err
		}
		c3 := false
		root, c3, err = o.eliminateJoins(root)
		if err != nil {
			return nil, err
		}
		if !changed && !c2 && !c3 {
			break
		}
	}
	return root, nil
}

// schemaCols returns lower-cased column names of a node's schema.
func schemaCols(n plan.Node) map[string]bool {
	out := make(map[string]bool)
	for _, c := range n.Schema().Columns {
		out[strings.ToLower(c.Name)] = true
	}
	return out
}

func subset(cols []string, set map[string]bool) bool {
	for _, c := range cols {
		if !set[strings.ToLower(c)] {
			return false
		}
	}
	return true
}

// pushFilters moves filter conjuncts as close to the scans as legality
// allows: through joins (side-wise), below PREDICT when the conjunct does
// not reference prediction outputs, and below per-row projections that
// simply rename columns.
func (o *Optimizer) pushFilters(n plan.Node) (plan.Node, bool, error) {
	changed := false
	// recurse first
	for i, c := range n.Children() {
		nc, ch, err := o.pushFilters(c)
		if err != nil {
			return nil, false, err
		}
		if ch {
			changed = true
		}
		n.SetChild(i, nc)
	}
	f, ok := n.(*plan.Filter)
	if !ok {
		return n, changed, nil
	}
	conjuncts := expr.Conjuncts(f.Pred)
	var kept []expr.Expr

	switch child := f.Child.(type) {
	case *plan.Join:
		leftCols := schemaCols(child.Left)
		rightCols := schemaCols(child.Right)
		var leftPush, rightPush []expr.Expr
		for _, c := range conjuncts {
			cols := expr.Columns(c)
			switch {
			case subset(cols, leftCols):
				leftPush = append(leftPush, c)
				// Transitive propagation across the equi-join: a predicate
				// on the left join key holds for the right key too, so the
				// build side can filter before hashing.
				if len(cols) == 1 && strings.EqualFold(cols[0], child.LeftCol) {
					rightPush = append(rightPush, renameColumn(c, child.LeftCol, child.RightCol))
				}
			case subset(cols, rightCols):
				rightPush = append(rightPush, c)
				if len(cols) == 1 && strings.EqualFold(cols[0], child.RightCol) {
					leftPush = append(leftPush, renameColumn(c, child.RightCol, child.LeftCol))
				}
			default:
				kept = append(kept, c)
			}
		}
		if len(leftPush) > 0 {
			child.Left = &plan.Filter{Child: child.Left, Pred: expr.And(leftPush)}
			changed = true
		}
		if len(rightPush) > 0 {
			child.Right = &plan.Filter{Child: child.Right, Pred: expr.And(rightPush)}
			changed = true
		}
		if len(kept) == 0 {
			return child, true, nil
		}
		if len(kept) < len(conjuncts) {
			return &plan.Filter{Child: child, Pred: expr.And(kept)}, true, nil
		}
		return f, changed, nil

	case *plan.Predict:
		outCols := make(map[string]bool)
		for _, c := range child.OutputCols {
			outCols[strings.ToLower(c.Name)] = true
		}
		var push []expr.Expr
		for _, c := range conjuncts {
			refsOutput := false
			for _, col := range expr.Columns(c) {
				if outCols[col] {
					refsOutput = true
					break
				}
			}
			if refsOutput {
				kept = append(kept, c)
			} else {
				push = append(push, c)
			}
		}
		if len(push) == 0 {
			return f, changed, nil
		}
		child.SetChild(0, &plan.Filter{Child: child.Children()[0], Pred: expr.And(push)})
		if len(kept) == 0 {
			return child, true, nil
		}
		return &plan.Filter{Child: child, Pred: expr.And(kept)}, true, nil

	case *plan.Filter:
		// merge immediately-adjacent filters so later passes see one
		merged := &plan.Filter{Child: child.Child, Pred: expr.NewBinary(expr.OpAnd, child.Pred, f.Pred)}
		return merged, true, nil

	default:
		return f, changed, nil
	}
}

// renameColumn returns e with every reference to column `from` replaced by
// `to` (used for transitive join-key predicate propagation).
func renameColumn(e expr.Expr, from, to string) expr.Expr {
	switch x := e.(type) {
	case *expr.Column:
		if strings.EqualFold(x.BareName(), from) {
			return &expr.Column{Name: to}
		}
		return x
	case *expr.Binary:
		return expr.NewBinary(x.Op, renameColumn(x.L, from, to), renameColumn(x.R, from, to))
	case *expr.Not:
		return &expr.Not{E: renameColumn(x.E, from, to)}
	default:
		return e
	}
}

// mergeAndSimplifyFilters folds constants in predicates and drops
// always-true filters.
func (o *Optimizer) mergeAndSimplifyFilters(n plan.Node) (plan.Node, bool, error) {
	changed := false
	for i, c := range n.Children() {
		nc, ch, err := o.mergeAndSimplifyFilters(c)
		if err != nil {
			return nil, false, err
		}
		if ch {
			changed = true
		}
		n.SetChild(i, nc)
	}
	if f, ok := n.(*plan.Filter); ok {
		s := expr.Simplify(f.Pred)
		if l, ok := s.(*expr.Literal); ok && l.DT == types.Bool && l.B {
			return f.Child, true, nil
		}
		if s.String() != f.Pred.String() {
			f.Pred = s
			changed = true
		}
	}
	return n, changed, nil
}

func (o *Optimizer) prune(n plan.Node, required []string) (plan.Node, error) {
	uniq := func(cols []string) []string {
		seen := make(map[string]bool)
		var out []string
		for _, c := range cols {
			lc := strings.ToLower(c)
			if !seen[lc] {
				seen[lc] = true
				out = append(out, lc)
			}
		}
		return out
	}
	required = uniq(required)

	switch x := n.(type) {
	case *plan.Input:
		return x, nil

	case *plan.Scan:
		// order columns as in the table schema for determinism
		var cols []string
		for _, c := range x.Table.Schema().Columns {
			for _, r := range required {
				if strings.EqualFold(c.Name, r) {
					cols = append(cols, c.Name)
					break
				}
			}
		}
		if len(cols) == 0 && x.Table.Schema().Len() > 0 {
			cols = []string{x.Table.Schema().Columns[0].Name}
		}
		if len(cols) == x.Table.Schema().Len() {
			return x, nil // full width; leave as-is
		}
		if err := x.SetCols(cols); err != nil {
			return nil, err
		}
		return x, nil

	case *plan.Filter:
		need := append(required, expr.Columns(x.Pred)...)
		child, err := o.prune(x.Child, need)
		if err != nil {
			return nil, err
		}
		x.Child = child
		return x, nil

	case *plan.Project:
		var need []string
		for _, e := range x.Exprs {
			need = append(need, expr.Columns(e)...)
		}
		child, err := o.prune(x.Child, need)
		if err != nil {
			return nil, err
		}
		x.Child = child
		return x, nil

	case *plan.Predict:
		need := append([]string(nil), required...)
		if o.ModelInputs != nil {
			ins, err := o.ModelInputs(x.ModelName)
			if err != nil {
				return nil, err
			}
			need = append(need, ins...)
		} else {
			for _, c := range x.Child.Schema().Columns {
				need = append(need, c.Name)
			}
		}
		// prediction outputs are produced here, not consumed below
		outSet := make(map[string]bool)
		for _, c := range x.OutputCols {
			outSet[strings.ToLower(c.Name)] = true
		}
		var childNeed []string
		for _, c := range need {
			if !outSet[strings.ToLower(c)] {
				childNeed = append(childNeed, c)
			}
		}
		child, err := o.prune(x.Child, childNeed)
		if err != nil {
			return nil, err
		}
		x.SetChild(0, child)
		return x, nil

	case *plan.Join:
		leftCols := schemaCols(x.Left)
		rightCols := schemaCols(x.Right)
		var leftNeed, rightNeed []string
		for _, r := range required {
			if leftCols[r] {
				leftNeed = append(leftNeed, r)
			} else if rightCols[r] {
				rightNeed = append(rightNeed, r)
			}
		}
		leftNeed = append(leftNeed, x.LeftCol)
		rightNeed = append(rightNeed, x.RightCol)
		left, err := o.prune(x.Left, leftNeed)
		if err != nil {
			return nil, err
		}
		right, err := o.prune(x.Right, rightNeed)
		if err != nil {
			return nil, err
		}
		x.Left, x.Right = left, right
		if err := x.Rebuild(); err != nil {
			return nil, err
		}
		return x, nil

	case *plan.Aggregate:
		need := append([]string(nil), x.GroupBy...)
		for _, a := range x.Aggs {
			if a.Arg != nil {
				need = append(need, expr.Columns(a.Arg)...)
			}
		}
		child, err := o.prune(x.Child, need)
		if err != nil {
			return nil, err
		}
		x.Child = child
		return x, nil

	case *plan.Sort:
		need := append([]string(nil), required...)
		for _, k := range x.Keys {
			need = append(need, k.Col)
		}
		child, err := o.prune(x.Child, need)
		if err != nil {
			return nil, err
		}
		x.Child = child
		return x, nil

	case *plan.Limit:
		child, err := o.prune(x.Child, required)
		if err != nil {
			return nil, err
		}
		x.Child = child
		return x, nil

	case *plan.Distinct:
		// distinct needs every column of its output
		var need []string
		for _, c := range x.Child.Schema().Columns {
			need = append(need, c.Name)
		}
		child, err := o.prune(x.Child, need)
		if err != nil {
			return nil, err
		}
		x.Child = child
		return x, nil

	default:
		return nil, fmt.Errorf("relopt: cannot prune %T", n)
	}
}

// eliminateJoins removes joins whose build side contributes no columns —
// the join exists only to locate a matching row, which is guaranteed to
// exist (unique key + referential integrity). This is the paper's §2
// example: after model-projection pushdown, the prenatal_tests join feeds
// no features and is dropped.
func (o *Optimizer) eliminateJoins(n plan.Node) (plan.Node, bool, error) {
	changed := false
	for i, c := range n.Children() {
		nc, ch, err := o.eliminateJoins(c)
		if err != nil {
			return nil, false, err
		}
		if ch {
			changed = true
		}
		n.SetChild(i, nc)
	}
	j, ok := n.(*plan.Join)
	if !ok || !o.AssumeRI {
		return n, changed, nil
	}
	// Right side must be a bare scan whose only surviving column is the
	// join key, declared unique.
	rs, ok := j.Right.(*plan.Scan)
	if !ok {
		return n, changed, nil
	}
	if rs.Schema().Len() != 1 || !strings.EqualFold(rs.Schema().Columns[0].Name, j.RightCol) {
		return n, changed, nil
	}
	if o.Catalog == nil || !o.Catalog.IsUniqueKey(rs.Table.Name, j.RightCol) {
		return n, changed, nil
	}
	return j.Left, true, nil
}
