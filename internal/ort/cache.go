package ort

import (
	"bytes"
	"encoding/gob"
	"sync"

	"raven/internal/tensor"
)

// SessionCache keys compiled sessions by model content hash. It reproduces
// SQL Server's model/inference-session caching across queries (paper §5,
// observation ii: 3 ms vs 20 ms on 100 tuples because the standalone
// runtime reloads the model from disk while the DB serves a cached session).
type SessionCache struct {
	mu       sync.Mutex
	sessions map[string]*Session
	hits     int
	misses   int
}

// NewSessionCache returns an empty cache.
func NewSessionCache() *SessionCache {
	return &SessionCache{sessions: make(map[string]*Session)}
}

// Get returns the cached session for key, or compiles one via build and
// caches it. build runs under the cache lock — compilation is assumed to be
// cheap relative to thundering-herd recompiles.
func (c *SessionCache) Get(key string, build func() (*Session, error)) (*Session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sessions[key]; ok {
		c.hits++
		return s, nil
	}
	s, err := build()
	if err != nil {
		return nil, err
	}
	c.misses++
	c.sessions[key] = s
	return s, nil
}

// Invalidate drops the cached session for key (model updated in the store).
func (c *SessionCache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, key)
}

// Stats returns (hits, misses).
func (c *SessionCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached sessions.
func (c *SessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}

// serializable mirrors Graph for gob: maps with interface values need
// registration, so attrs are encoded via a concrete holder.
type gobGraph struct {
	Name        string
	Nodes       []gobNode
	Inputs      []string
	Outputs     []string
	InitNames   []string
	InitTensors []tensor.Tensor
}

type gobNode struct {
	Op      string
	Name    string
	Inputs  []string
	Outputs []string
	AttrK   []string
	AttrV   []gobAttr
}

type gobAttr struct {
	Kind byte // 'f' float, 'i' int, 'I' []int, 's' string
	F    float64
	I    int
	IS   []int
	S    string
}

// Marshal serializes a graph to bytes (the model format stored in the
// database model store).
func Marshal(g *Graph) ([]byte, error) {
	gg := gobGraph{Name: g.Name, Inputs: g.Inputs, Outputs: g.Outputs}
	for name, t := range g.Initializers {
		gg.InitNames = append(gg.InitNames, name)
		gg.InitTensors = append(gg.InitTensors, *t)
	}
	for _, n := range g.Nodes {
		gn := gobNode{Op: n.Op, Name: n.Name, Inputs: n.Inputs, Outputs: n.Outputs}
		for k, v := range n.Attrs {
			gn.AttrK = append(gn.AttrK, k)
			switch x := v.(type) {
			case float64:
				gn.AttrV = append(gn.AttrV, gobAttr{Kind: 'f', F: x})
			case int:
				gn.AttrV = append(gn.AttrV, gobAttr{Kind: 'i', I: x})
			case []int:
				gn.AttrV = append(gn.AttrV, gobAttr{Kind: 'I', IS: x})
			case string:
				gn.AttrV = append(gn.AttrV, gobAttr{Kind: 's', S: x})
			}
		}
		gg.Nodes = append(gg.Nodes, gn)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gg); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal reverses Marshal.
func Unmarshal(data []byte) (*Graph, error) {
	var gg gobGraph
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&gg); err != nil {
		return nil, err
	}
	g := NewGraph(gg.Name)
	g.Inputs = gg.Inputs
	g.Outputs = gg.Outputs
	for i, name := range gg.InitNames {
		t := gg.InitTensors[i]
		g.Initializers[name] = &t
	}
	for _, gn := range gg.Nodes {
		attrs := make(Attrs, len(gn.AttrK))
		for i, k := range gn.AttrK {
			a := gn.AttrV[i]
			switch a.Kind {
			case 'f':
				attrs[k] = a.F
			case 'i':
				attrs[k] = a.I
			case 'I':
				attrs[k] = a.IS
			case 's':
				attrs[k] = a.S
			}
		}
		g.Nodes = append(g.Nodes, &Node{Op: gn.Op, Name: gn.Name, Inputs: gn.Inputs, Outputs: gn.Outputs, Attrs: attrs})
	}
	return g, nil
}
