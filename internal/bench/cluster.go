package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"raven"
	"raven/internal/cluster"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/server"
	"raven/internal/train"
)

// ClusterServe measures the distributed serving layer: the same PREDICT
// workload pushed through ravenrouter at 1, 2 and 4 replicas, plus a
// graceful drain of one replica mid-load. Each replica is deliberately
// small (serial engine, 2 admission slots), so on a multi-core host
// added replicas add real capacity and q/s should scale near-linearly;
// on a single-core CI host the replicas contend for the same CPU and
// the table instead gates on routing evidence — every replica took
// traffic, queueing stayed bounded. The drain row is the availability
// proof: a replica leaves gracefully under load and the router's
// re-routing keeps dropped queries at exactly zero with byte-identical
// results against the single-replica reference.
func ClusterServe(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "ClusterServe",
		Title:      "cluster q/s vs replica count, and graceful drain under load",
		PaperShape: "serving scale-out: the paper's in-DBMS inference served by N coordinated replicas behind one endpoint",
	}
	rows, trees, perClient := 4000, 8, 6
	clients := 16
	if cfg.Quick {
		rows, trees, perClient = 2000, 4, 4
		clients = 8
	}

	// One training run shared by every replica of every variant: the
	// cluster contract is byte-identical answers, which starts with
	// identical models.
	rf, err := trainClusterModel(rows, trees)
	if err != nil {
		return nil, err
	}

	var reference string // single-replica fingerprint, set by the first variant
	qpsByN := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		if err := func() (reterr error) {
			cl, err := spawnCluster(n, rows, trees, rf)
			if err != nil {
				return err
			}
			defer func() {
				if e := cl.shutdown(); e != nil && reterr == nil {
					reterr = e
				}
			}()

			// Warm every replica's plan cache through the router: one
			// query per tenant, tenants spread over all homes.
			for _, tn := range cl.tenants {
				res, err := cl.c.Query(server.QueryRequest{SQL: servingPredictQuery, Tenant: tn})
				if err != nil {
					return fmt.Errorf("warmup tenant %s: %w", tn, err)
				}
				fp := res.Fingerprint()
				if reference == "" {
					reference = fp
				}
				if fp != reference {
					return fmt.Errorf("replica answer diverged from single-replica reference (tenant %s, %d replicas)", tn, n)
				}
			}

			lat, elapsed, err := cl.hammer(clients, perClient, reference)
			if err != nil {
				return err
			}
			total := clients * perClient
			qps := float64(total) / elapsed.Seconds()
			qpsByN[n] = qps

			// Routing evidence: every replica served part of the load.
			st := cl.rt.Stats(context.Background())
			if st.Router.Healthy != n {
				return fmt.Errorf("%d replicas: only %d healthy after the run", n, st.Router.Healthy)
			}
			for _, m := range st.Members {
				if m.Stats == nil || m.Stats.Server.Queries == 0 {
					return fmt.Errorf("%d replicas: replica %s served zero queries — routing never spread", n, m.Name)
				}
			}
			note := fmt.Sprintf("%d replicas: %.1f q/s, %d queries over %d tenants, all replicas served traffic", n, qps, total, len(cl.tenants))
			t.AddMillis("p99", fmt.Sprintf("%d replicas", n), percentile(lat, 0.99), note)
			t.AddMillis("mean", fmt.Sprintf("%d replicas", n), mean(lat), "")
			return nil
		}(); err != nil {
			return nil, err
		}
	}

	// Scaling criterion gates on multi-core hosts only: on one core the
	// replicas share the CPU and q/s cannot scale no matter how good the
	// router is. (Recorded either way; the note says which regime ran.)
	if runtime.GOMAXPROCS(0) >= 4 {
		if qpsByN[4] < 2*qpsByN[1] {
			return nil, fmt.Errorf("scale-out regressed: %.1f q/s at 4 replicas vs %.1f at 1 (want >= 2x on a %d-core host)",
				qpsByN[4], qpsByN[1], runtime.GOMAXPROCS(0))
		}
	}

	// Drain proof: 2 replicas under continuous load, one drained
	// gracefully mid-run. Every query must succeed with the reference
	// fingerprint — dropped=0 is asserted, then recorded in the note the
	// bench checker greps for.
	if err := func() (reterr error) {
		cl, err := spawnCluster(2, rows, trees, rf)
		if err != nil {
			return err
		}
		closedDrained := false
		defer func() {
			if e := cl.shutdownExcept(map[int]bool{1: closedDrained}); e != nil && reterr == nil {
				reterr = e
			}
		}()
		cl.rt.Start()
		for _, tn := range cl.tenants {
			if _, err := cl.c.Query(server.QueryRequest{SQL: servingPredictQuery, Tenant: tn}); err != nil {
				return fmt.Errorf("drain warmup: %w", err)
			}
		}

		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			total   int
			dropped []error
			done    = make(chan struct{})
		)
		start := time.Now()
		for w := 0; w < clients/2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				hc := &http.Client{Transport: &http.Transport{}}
				defer hc.CloseIdleConnections()
				c := &server.Client{Base: cl.c.Base, HTTP: hc, Timeout: 30 * time.Second}
				tn := cl.tenants[w%len(cl.tenants)]
				for {
					select {
					case <-done:
						return
					default:
					}
					res, err := c.Query(server.QueryRequest{SQL: servingPredictQuery, Tenant: tn})
					mu.Lock()
					total++
					if err != nil {
						dropped = append(dropped, fmt.Errorf("tenant %s: %w", tn, err))
					} else if res.Fingerprint() != reference {
						dropped = append(dropped, fmt.Errorf("tenant %s: fingerprint diverged during drain", tn))
					}
					mu.Unlock()
				}
			}(w)
		}
		time.Sleep(300 * time.Millisecond)
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		derr := cl.reps[1].Close(dctx)
		cancel()
		if derr != nil {
			close(done)
			wg.Wait()
			return fmt.Errorf("graceful drain under load: %w", derr)
		}
		closedDrained = true
		time.Sleep(300 * time.Millisecond)
		close(done)
		wg.Wait()
		elapsed := time.Since(start)

		if len(dropped) > 0 {
			return fmt.Errorf("drain dropped %d of %d queries; first: %v", len(dropped), total, dropped[0])
		}
		if total < clients {
			return fmt.Errorf("drain window carried only %d queries — no real load", total)
		}
		note := fmt.Sprintf("drained 1 of 2 replicas mid-load: %d queries in %.1fs, dropped=0, fingerprints byte-identical to single-replica reference", total, elapsed.Seconds())
		t.AddMillis("drain", "2 replicas", elapsed.Seconds()*1000/float64(total), note)
		return nil
	}(); err != nil {
		return nil, err
	}
	return t, nil
}

// trainClusterModel fits the shared forest once on the shared workload
// seed (the data every replica preloads with the same seed).
func trainClusterModel(rows, trees int) (*ml.RandomForest, error) {
	db := raven.MustOpen()
	h, err := data.GenHospital(db.Catalog(), rows, 1000, 17)
	if err != nil {
		return nil, err
	}
	rf := train.FitForest(h.TrainX, h.TrainY, train.ForestOptions{
		NumTrees: trees,
		Seed:     3,
		Tree:     train.TreeOptions{MaxDepth: 8, MinLeaf: 10},
	})
	return rf, nil
}

// benchCluster is N preloaded replicas behind a started router with a
// real listener.
type benchCluster struct {
	reps    []*cluster.Replica
	rt      *cluster.Router
	c       *server.Client
	tenants []string

	rl       net.Listener
	rsrv     *http.Server
	serveErr chan error
}

// spawnCluster boots n capped replicas (serial engine, 2 admission
// slots — small on purpose, so replica count is the capacity knob),
// preloads each with the identical hospital workload and model, fronts
// them with a router, and picks 2 tenants homed on every replica.
func spawnCluster(n, rows, trees int, rf *ml.RandomForest) (*benchCluster, error) {
	cl := &benchCluster{serveErr: make(chan error, 1)}
	engOpts := []raven.Option{
		raven.WithParallelism(1),
		raven.WithMaxConcurrentQueries(2),
		raven.WithSchedulerQueue(256, 30*time.Second),
	}
	for i := 0; i < n; i++ {
		r, err := cluster.SpawnReplica(fmt.Sprintf("r%d", i), server.Options{DrainGrace: 300 * time.Millisecond}, engOpts...)
		if err != nil {
			cl.shutdown()
			return nil, err
		}
		cl.reps = append(cl.reps, r)
		h, err := data.GenHospital(r.DB.Catalog(), rows, 1000, 17)
		if err != nil {
			cl.shutdown()
			return nil, err
		}
		if err := r.DB.StoreModel("duration_of_stay", &ml.Pipeline{Final: rf, InputColumns: h.FeatureCols}); err != nil {
			cl.shutdown()
			return nil, err
		}
	}
	cl.rt = cluster.New(cluster.Options{ProbeInterval: 100 * time.Millisecond})
	for _, r := range cl.reps {
		if err := cl.rt.AddMember(r.Name, r.Base); err != nil {
			cl.shutdown()
			return nil, err
		}
	}
	cl.rt.ProbeNow(context.Background())

	var err error
	cl.rl, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cl.shutdown()
		return nil, err
	}
	cl.rsrv = &http.Server{Handler: cl.rt.Handler()}
	go func() { cl.serveErr <- cl.rsrv.Serve(cl.rl) }()
	cl.c = &server.Client{Base: "http://" + cl.rl.Addr().String(), Timeout: 60 * time.Second}

	// Two tenants per replica, so every replica is a home and affinity
	// spreads the load without relying on spill.
	for _, r := range cl.reps {
		found := 0
		for i := 0; found < 2; i++ {
			tn := fmt.Sprintf("%s-t%d", r.Name, i)
			if cl.rt.HomeFor(tn) == r.Name {
				cl.tenants = append(cl.tenants, tn)
				found++
			}
		}
	}
	return cl, nil
}

func (cl *benchCluster) shutdown() error {
	return cl.shutdownExcept(nil)
}

// shutdownExcept tears the stack down, skipping replica indexes already
// closed by the experiment.
func (cl *benchCluster) shutdownExcept(closed map[int]bool) error {
	var first error
	if cl.rsrv != nil {
		cl.rsrv.Close()
		<-cl.serveErr
	}
	if cl.rt != nil {
		cl.rt.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, r := range cl.reps {
		if closed[i] {
			continue
		}
		if err := r.Close(ctx); err != nil && first == nil {
			first = fmt.Errorf("drain replica %d: %w", i, err)
		}
	}
	return first
}

// hammer drives nc clients × perClient queries through the router,
// each client pinned to a tenant (round-robin over the tenant set), and
// verifies every fingerprint against the single-replica reference.
func (cl *benchCluster) hammer(nc, perClient int, reference string) ([]float64, time.Duration, error) {
	type result struct {
		lat []float64
		err error
	}
	results := make(chan result, nc)
	start := time.Now()
	for i := 0; i < nc; i++ {
		go func(i int) {
			hc := &http.Client{Transport: &http.Transport{}}
			defer hc.CloseIdleConnections()
			c := &server.Client{Base: cl.c.Base, HTTP: hc, Timeout: 60 * time.Second}
			tn := cl.tenants[i%len(cl.tenants)]
			var lats []float64
			for j := 0; j < perClient; j++ {
				t0 := time.Now()
				res, err := c.Query(server.QueryRequest{SQL: servingPredictQuery, Tenant: tn})
				if err != nil {
					results <- result{nil, fmt.Errorf("tenant %s: %w", tn, err)}
					return
				}
				if res.Fingerprint() != reference {
					results <- result{nil, fmt.Errorf("tenant %s: fingerprint diverged under load", tn)}
					return
				}
				lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
			}
			results <- result{lats, nil}
		}(i)
	}
	var all []float64
	for i := 0; i < nc; i++ {
		r := <-results
		if r.err != nil {
			return nil, 0, r.err
		}
		all = append(all, r.lat...)
	}
	return all, time.Since(start), nil
}
