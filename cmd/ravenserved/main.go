// Command ravenserved serves a Raven engine over HTTP: the network front
// end that turns the embedded library into an inference server. It wires
// the admission-controlled query scheduler (bounded concurrent queries,
// bounded worker slots, bounded queue with timeouts) in front of the
// serving API and speaks the NDJSON wire protocol of internal/server.
//
// Usage:
//
//	ravenserved [-addr :8080] [-rows N] [-parallelism N] [-morsel N]
//	            [-max-queries N] [-max-slots N] [-queue N] [-queue-timeout D]
//	            [-query-timeout D] [-drain-timeout D] [-drain-grace D]
//	            [-result-cache-bytes N] [-tenant name=maxq[:maxslots] ...]
//	            [-default-tenant NAME] [-preload] [-selftest]
//	            [-pg-addr :5432] [-pgselftest]
//	            [-data-dir DIR] [-fsync always|interval|off] [-segment-rows N]
//	            [-crashtest]
//
// With -pg-addr the server also speaks the Postgres wire protocol
// (internal/pgwire): psql, BI tools and pg drivers run SELECT/PREDICT/
// INSERT/DDL against the same engine through the same admission path,
// with the startup database/user parameters mapping onto the tenant
// scheduler and engine errors mapping onto SQLSTATEs (429 ⇔ 53300,
// draining ⇔ 57P01). Both front ends share one prepared-statement
// registry and one request-options surface (internal/server/reqopt).
// -pgselftest starts both listeners on random ports, runs the pg smoke
// (byte-parity of pg results against the HTTP path included), drains,
// and exits non-zero on failure — the `make smoke-pgwire` CI gate.
//
// With -data-dir the engine is durable: every write is logged to a
// write-ahead log under DIR before it is acknowledged, cold tables are
// sealed into immutable columnar segment files, and a restart replays
// the WAL tail — recovery runs to completion before the listener opens,
// so a server that answers /healthz serves every committed pre-crash
// write. A graceful drain ends with a checkpoint so the next start
// replays an empty log. If the recovered directory already holds the
// demo tables, -preload is skipped rather than duplicated.
//
// Tenant quotas declare the multi-tenant serving policy at boot: each
// -tenant flag (repeatable) bounds one tenant's concurrent queries and,
// optionally, its worker slots; maxq 0 shuts the tenant off. Requests
// pick their tenant with the X-Raven-Tenant header (or a "tenant" body
// field) and their scheduling class with X-Raven-Priority; untagged
// traffic bills to -default-tenant. Per-tenant counters, gauges and
// queue-wait histograms nest under scheduler.tenants in GET /stats.
//
// By default the engine is preloaded with the paper's demo workload
// (hospital tables + 'duration_of_stay' model, flights_features +
// 'flight_delay'), so a fresh server answers PREDICT queries
// immediately:
//
//	curl -s localhost:8080/query -d '{"sql":"SELECT COUNT(*) AS n FROM patient_info"}'
//
// SIGINT/SIGTERM drain gracefully in two phases: first a lame-duck
// window (-drain-grace) where healthz flips to 503 "draining" while the
// query paths still accept work — so a health-probing router stops
// sending new queries before any are refused — then admission closes,
// in-flight queries finish or hit the drain deadline, and the listener
// closes. -selftest starts the server on a random port, runs
// the HTTP smoke against it, drains, and exits non-zero on any failure —
// the `make smoke-serve` CI gate. -crashtest proves durability end to
// end: it spawns a child ravenserved on a scratch -data-dir, loads data
// and a model over HTTP, records query fingerprints, SIGKILLs the
// child, restarts it on the same directory, and exits non-zero unless
// the recovered server answers byte-identical results — the
// `make smoke-durable` CI gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/pgwire"
	"raven/internal/server"
	"raven/internal/server/stmtreg"
	"raven/internal/train"
)

// tenantQuota is one parsed -tenant flag.
type tenantQuota struct {
	name                 string
	maxQueries, maxSlots int
}

// tenantQuotaFlags collects repeatable -tenant flags of the form
// name=maxQueries[:maxSlots].
type tenantQuotaFlags []tenantQuota

func (f *tenantQuotaFlags) String() string {
	var parts []string
	for _, q := range *f {
		parts = append(parts, fmt.Sprintf("%s=%d:%d", q.name, q.maxQueries, q.maxSlots))
	}
	return strings.Join(parts, ",")
}

func (f *tenantQuotaFlags) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=maxQueries[:maxSlots], got %q", v)
	}
	qs, ss, _ := strings.Cut(spec, ":")
	maxQ, err := strconv.Atoi(qs)
	if err != nil || maxQ < 0 {
		return fmt.Errorf("bad maxQueries in %q: want an integer >= 0 (0 shuts the tenant off)", v)
	}
	maxS := 0
	if ss != "" {
		if maxS, err = strconv.Atoi(ss); err != nil || maxS < 0 {
			return fmt.Errorf("bad maxSlots in %q: want an integer >= 0", v)
		}
	}
	*f = append(*f, tenantQuota{name, maxQ, maxS})
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	rows := flag.Int("rows", 100000, "rows per preloaded demo table")
	preload := flag.Bool("preload", true, "preload the demo workload (hospital + flights tables and models)")
	parallelism := flag.Int("parallelism", 0, "engine degree of parallelism (0 = GOMAXPROCS, 1 = serial)")
	morsel := flag.Int("morsel", 0, "rows per parallel work unit (0 = engine default)")
	maxQueries := flag.Int("max-queries", 2*runtime.GOMAXPROCS(0), "admission limit: max concurrent queries (0 = unlimited, no scheduler)")
	maxSlots := flag.Int("max-slots", 4*runtime.GOMAXPROCS(0), "admission limit: max total worker slots across running queries; requested DOP is capped to fit (0 = queries-only limit)")
	queueDepth := flag.Int("queue", 64, "admission queue depth (queries waiting beyond the limit; 0 = reject immediately)")
	queueTimeout := flag.Duration("queue-timeout", 5*time.Second, "max time a query waits for admission (0 = until its own deadline)")
	queryTimeout := flag.Duration("query-timeout", 0, "default per-query deadline for requests without timeout_ms (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight queries on shutdown")
	drainGrace := flag.Duration("drain-grace", 2*time.Second, "lame-duck window on shutdown: healthz advertises draining while queries are still accepted, so routers re-route before admission closes (0 = cut over immediately)")
	resultCacheBytes := flag.Int64("result-cache-bytes", 0, "semantic result cache budget in bytes: repeated read-only queries are served from cache, before admission, until DDL/INSERT/model stores invalidate them (0 = off)")
	var tenants tenantQuotaFlags
	flag.Var(&tenants, "tenant", "declare a tenant quota as name=maxQueries[:maxSlots] (repeatable; 0 queries shuts the tenant off; requires -max-queries > 0)")
	defaultTenant := flag.String("default-tenant", "", "tenant untagged requests bill to (default \"default\")")
	selftest := flag.Bool("selftest", false, "start on a random port, run the HTTP smoke, drain, exit")
	pgAddr := flag.String("pg-addr", "", "Postgres wire protocol listen address (host:port; empty = pg front end disabled). psql/pgx connect here; database/user startup params pick the tenant")
	pgselftest := flag.Bool("pgselftest", false, "start HTTP and pg listeners on random ports, run the pgwire smoke (pg vs HTTP result parity, tenant attribution, SQLSTATE mapping), drain, exit")
	dataDir := flag.String("data-dir", "", "durable data directory: writes are WAL-logged before acknowledgement, cold rows are sealed into columnar segments, and restart recovers committed state before the listener opens (empty = in-memory)")
	fsync := flag.String("fsync", "always", "WAL fsync policy for -data-dir: always (group-committed fsync per append), interval (background fsync) or off")
	segmentRows := flag.Int("segment-rows", 0, "rows per sealed on-disk segment for -data-dir (0 = default 65536)")
	crashtest := flag.Bool("crashtest", false, "spawn a durable child server on a scratch dir, load it over HTTP, SIGKILL it, restart it, and verify byte-identical recovered results; exits non-zero on any divergence")
	flag.Parse()

	if *crashtest {
		if err := runCrashTest(); err != nil {
			fmt.Fprintln(os.Stderr, "crashtest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("crashtest ok")
		return
	}

	if *selftest || *pgselftest {
		*addr = "127.0.0.1:0"
		*drainGrace = 0 // nothing is routing to the selftest server
	}
	if *pgselftest {
		*pgAddr = "127.0.0.1:0"
		// The pg smoke proves admission refusals surface as SQLSTATE
		// 53300: give it a tenant that is administratively shut off.
		tenants = append(tenants, tenantQuota{"pg-blocked", 0, 0})
	}

	opts := []raven.Option{
		raven.WithParallelism(*parallelism),
		raven.WithMorselSize(*morsel),
	}
	if *resultCacheBytes > 0 {
		opts = append(opts, raven.WithResultCache(*resultCacheBytes))
	}
	if *maxQueries > 0 {
		opts = append(opts,
			raven.WithMaxConcurrentQueries(*maxQueries),
			raven.WithMaxWorkerSlots(*maxSlots),
			raven.WithSchedulerQueue(*queueDepth, *queueTimeout),
		)
		for _, q := range tenants {
			opts = append(opts, raven.WithTenantQuota(q.name, q.maxQueries, q.maxSlots))
		}
		if *defaultTenant != "" {
			opts = append(opts, raven.WithDefaultTenant(*defaultTenant))
		}
	} else if len(tenants) > 0 || *defaultTenant != "" {
		fmt.Fprintln(os.Stderr, "-tenant quotas and -default-tenant need the scheduler: set -max-queries > 0")
		os.Exit(2)
	}
	if *dataDir != "" {
		opts = append(opts,
			raven.WithDataDir(*dataDir),
			raven.WithFsync(*fsync),
			raven.WithSegmentRows(*segmentRows),
		)
	}
	// Recovery (WAL replay + segment attach) happens inside Open, before
	// the listener exists: a server that accepts connections has already
	// recovered every committed pre-crash write.
	db, err := raven.Open(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	if *preload && !db.Catalog().HasTable("patient_info") {
		if err := loadDemo(db, *rows); err != nil {
			fmt.Fprintln(os.Stderr, "preload:", err)
			os.Exit(1)
		}
	}

	// One statement registry for both front ends: pg prepared statements
	// and HTTP /prepare share a capacity budget and an id space.
	reg := stmtreg.New(0)
	srv := server.New(db, server.Options{DefaultTimeout: *queryTimeout, DrainGrace: *drainGrace, Statements: reg})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ravenserved listening on %s (max-queries=%d queue=%d)\n",
		l.Addr(), *maxQueries, *queueDepth)

	var (
		pgs        *pgwire.Server
		pgServeErr chan error
	)
	if *pgAddr != "" {
		pgl, err := net.Listen("tcp", *pgAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pg listen:", err)
			os.Exit(1)
		}
		*pgAddr = pgl.Addr().String()
		pgs = pgwire.New(db, reg, pgwire.Options{DefaultTimeout: *queryTimeout, DefaultTenant: *defaultTenant})
		srv.SetPgwireStats(func() any { return pgs.Stats() })
		fmt.Fprintf(os.Stderr, "ravenserved pg protocol on %s\n", pgl.Addr())
		pgServeErr = make(chan error, 1)
		go func() { pgServeErr <- pgs.Serve(pgl) }()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	// drainAll shuts both front ends down in order: pg stops admitting
	// first (so its refusals read 57P01, not connection resets), the HTTP
	// Shutdown drains the engine once (the single engine-level drain —
	// pgwire's Shutdown deliberately leaves it to the caller), then the
	// pg connections unwind.
	drainAll := func(ctx context.Context) error {
		if pgs != nil {
			pgs.BeginDrain()
		}
		err := srv.Shutdown(ctx)
		if pgs != nil {
			if perr := pgs.Shutdown(ctx); perr != nil && err == nil {
				err = fmt.Errorf("pg shutdown: %w", perr)
			}
			if serr := <-pgServeErr; serr != nil && serr != pgwire.ErrServerClosed && err == nil {
				err = serr
			}
		}
		return err
	}

	if *selftest || *pgselftest {
		base := "http://" + l.Addr().String()
		var err error
		if *pgselftest {
			err = pgwire.Smoke(*pgAddr, base)
		} else {
			err = server.Smoke(base)
		}
		// Drain under load-free conditions must complete well inside the
		// deadline; any error (smoke or drain) fails the selftest.
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if derr := drainAll(ctx); derr != nil && err == nil {
			err = fmt.Errorf("shutdown: %w", derr)
		}
		if serr := <-serveErr; serr != nil && serr != http.ErrServerClosed && err == nil {
			err = serr
		}
		if cerr := db.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close: %w", cerr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("selftest ok")
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "%v: draining (up to %v)...\n", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := drainAll(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "drain:", err)
			os.Exit(1)
		}
		<-serveErr
		// A clean drain ends with a checkpoint: the WAL folds into sealed
		// segments and the next start replays an empty log.
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "close:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "drained clean")
	}
}

// loadDemo mirrors ravensql's preload: hospital tables with a stored
// decision tree, flights_features with an L1-sparse logistic model.
func loadDemo(db *raven.DB, rows int) error {
	h, err := data.GenHospital(db.Catalog(), rows, 4000, 42)
	if err != nil {
		return err
	}
	tree := train.FitTree(h.TrainX, h.TrainY, train.TreeOptions{MaxDepth: 6, MinLeaf: 10})
	if err := db.StoreModel("duration_of_stay", &ml.Pipeline{Final: tree, InputColumns: h.FeatureCols}); err != nil {
		return err
	}
	fl, err := data.GenFlightsWide(db.Catalog(), rows, 100, 30, 4000, 7)
	if err != nil {
		return err
	}
	lr := train.FitLogReg(fl.TrainX, fl.TrainY, train.LogRegOptions{L1: 0.02, Epochs: 60, Seed: 1})
	return db.StoreModel("flight_delay", &ml.Pipeline{Final: lr, InputColumns: fl.FeatureCols})
}
