package exec

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"raven/internal/expr"
	"raven/internal/plan"
	"raven/internal/types"
)

// HashJoin is the serial inner equi-join: build on the right input, probe
// with the left. The output drops the right key column (matching
// plan.Join). Compilation now lowers plan.Join to ParallelHashJoin (which
// degrades to one worker at DOP 1); HashJoin remains as the reference
// implementation the parity tests compare against.
type HashJoin struct {
	Left, Right       Operator
	LeftCol, RightCol string
	// Ctx cancels the build and probe phases between batches.
	Ctx context.Context

	schema   *types.Schema
	leftIdx  int
	rightIdx int
	// built maps key to row ordinals in the materialized right side.
	// builtInt is the allocation-free fast path for INT keys (the common
	// case: surrogate-key joins); built handles everything else.
	built    map[any][]int
	builtInt map[int64][]int32
	rightAll *types.Batch
	rightSel []int // right columns kept in output order
}

// joinOutputSchema computes the join output (left ++ right minus the
// right key column, matching plan.Join) and the kept right-column
// ordinals — shared by the serial HashJoin and the parallel
// HashProbeStage so the two physical paths cannot drift.
func joinOutputSchema(left, right *types.Schema, rightCol string) (schema *types.Schema, rightSel []int, rightIdx int, err error) {
	rightIdx = right.IndexOf(rightCol)
	if rightIdx < 0 {
		return nil, nil, -1, fmt.Errorf("exec: join key %q not in right schema", rightCol)
	}
	var cols []types.Column
	cols = append(cols, left.Columns...)
	for i, c := range right.Columns {
		if i == rightIdx {
			continue
		}
		cols = append(cols, c)
		rightSel = append(rightSel, i)
	}
	return types.NewSchema(cols...), rightSel, rightIdx, nil
}

// NewHashJoin builds the operator and resolves key ordinals.
func NewHashJoin(left, right Operator, leftCol, rightCol string) (*HashJoin, error) {
	li := left.Schema().IndexOf(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("exec: join key %q not in left schema", leftCol)
	}
	schema, rightSel, ri, err := joinOutputSchema(left.Schema(), right.Schema(), rightCol)
	if err != nil {
		return nil, err
	}
	return &HashJoin{
		Left: left, Right: right, LeftCol: leftCol, RightCol: rightCol,
		schema: schema, leftIdx: li, rightIdx: ri, rightSel: rightSel,
	}, nil
}

// Schema implements Operator.
func (j *HashJoin) Schema() *types.Schema { return j.schema }

// Open implements Operator: materialize and hash the right input.
func (j *HashJoin) Open() error {
	all, err := CollectContext(j.Ctx, j.Right)
	if err != nil {
		return err
	}
	j.rightAll = all
	kv := all.Vecs[j.rightIdx]
	if kv.Type == types.Int {
		j.builtInt = make(map[int64][]int32, all.Len())
		for i := 0; i < all.Len(); i++ {
			k := kv.Ints[i]
			j.builtInt[k] = append(j.builtInt[k], int32(i))
		}
	} else {
		j.built = make(map[any][]int, all.Len())
		for i := 0; i < all.Len(); i++ {
			k := kv.Value(i)
			j.built[k] = append(j.built[k], i)
		}
	}
	return j.Left.Open()
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.built = nil
	j.builtInt = nil
	j.rightAll = nil
	return j.Left.Close()
}

// Next implements Operator.
func (j *HashJoin) Next() (*types.Batch, error) {
	for {
		if err := ctxErr(j.Ctx); err != nil {
			return nil, err
		}
		b, err := j.Left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		kv := b.Vecs[j.leftIdx]
		lp, rp := getSel(), getSel()
		leftSel, rightSel := (*lp)[:0], (*rp)[:0]
		if j.builtInt != nil && kv.Type == types.Int {
			for i, k := range kv.Ints {
				for _, r := range j.builtInt[k] {
					leftSel = append(leftSel, i)
					rightSel = append(rightSel, int(r))
				}
			}
		} else {
			for i := 0; i < b.Len(); i++ {
				for _, r := range j.built[kv.Value(i)] {
					leftSel = append(leftSel, i)
					rightSel = append(rightSel, r)
				}
			}
		}
		if len(leftSel) == 0 {
			*lp, *rp = leftSel, rightSel
			putSel(lp)
			putSel(rp)
			continue
		}
		lpart := b.Gather(leftSel)
		rpart := j.rightAll.Gather(rightSel).Project(j.rightSel)
		*lp, *rp = leftSel, rightSel
		putSel(lp)
		putSel(rp)
		vecs := make([]*types.Vector, 0, len(lpart.Vecs)+len(rpart.Vecs))
		vecs = append(vecs, lpart.Vecs...)
		vecs = append(vecs, rpart.Vecs...)
		return &types.Batch{Schema: j.schema, Vecs: vecs}, nil
	}
}

// aggOutputSchema computes the output schema of a grouped aggregation over
// child schema cs — shared by the serial and parallel aggregate operators
// (and mirroring plan.NewAggregate) so the physical paths cannot drift.
func aggOutputSchema(cs *types.Schema, groupBy []string, aggs []plan.AggSpec) (*types.Schema, error) {
	var cols []types.Column
	for _, g := range groupBy {
		i := cs.IndexOf(g)
		if i < 0 {
			return nil, fmt.Errorf("exec: GROUP BY column %q not found", g)
		}
		cols = append(cols, cs.Columns[i])
	}
	for _, a := range aggs {
		t := types.Float
		if a.Func == plan.AggCount {
			t = types.Int
		} else if a.Arg != nil && (a.Func == plan.AggMin || a.Func == plan.AggMax) {
			at, err := a.Arg.Type(cs)
			if err != nil {
				return nil, err
			}
			t = at
		}
		cols = append(cols, types.Column{Name: a.Name, Type: t})
	}
	return types.NewSchema(cols...), nil
}

// appendGroupKey renders row i's grouping columns as the hash key into
// dst (reset first), returning the grown buffer — callers keep one
// scratch buffer per batch so the hottest loop of every aggregation pays
// only the unavoidable string(key) allocation. Each value is
// length-prefixed so string values containing a delimiter cannot make
// two distinct key tuples collide (e.g. ("x|","y") vs ("x","|y")), and
// values render through typed strconv paths instead of reflection. The
// scheme is shared by every aggregation path so serial and parallel
// plans group identically.
func appendGroupKey(dst []byte, b *types.Batch, keyIdx []int, i int) []byte {
	dst = dst[:0]
	for _, ki := range keyIdx {
		v := b.Vecs[ki]
		if v.IsNull(i) {
			// Distinct marker: every rendered value starts with a digit
			// (its length prefix), so NULL can never collide with a
			// literal string like "<nil>".
			dst = append(dst, 'n')
			continue
		}
		var s string
		switch {
		case v.Type == types.Int:
			s = strconv.FormatInt(v.Ints[i], 10)
		case v.Type == types.Float:
			// shortest round-trip form, same rendering fmt %v uses
			s = strconv.FormatFloat(v.Floats[i], 'g', -1, 64)
		case v.Type == types.Bool:
			s = strconv.FormatBool(v.Bools[i])
		case v.Type == types.String:
			s = v.Strings[i]
		default:
			s = fmt.Sprintf("%v", v.Value(i))
		}
		dst = strconv.AppendInt(dst, int64(len(s)), 10)
		dst = append(dst, ':')
		dst = append(dst, s...)
	}
	return dst
}

// evalAggArgs evaluates the aggregate arguments over b into argVals
// (reused across batches). Broadcast results are materialized because the
// typed accumulation loops in observe index the data slices directly.
func evalAggArgs(argVals []*types.Vector, aggs []plan.AggSpec, b *types.Batch) error {
	for ai, a := range aggs {
		if a.Arg == nil {
			continue
		}
		v, err := a.Arg.Eval(b)
		if err != nil {
			return err
		}
		if v.Const {
			d := v.Densify()
			expr.PutEvalResult(a.Arg, v)
			v = d
		}
		argVals[ai] = v
	}
	return nil
}

// putAggArgs returns the evaluated argument vectors to the pool once a
// batch has been folded.
func putAggArgs(argVals []*types.Vector, aggs []plan.AggSpec) {
	for ai, a := range aggs {
		if a.Arg != nil && argVals[ai] != nil {
			expr.PutEvalResult(a.Arg, argVals[ai])
			argVals[ai] = nil
		}
	}
}

// aggGroup accumulates all aggregates for one group. SUM/AVG use exact
// (order-invariant, correctly rounded) float accumulation so partial
// aggregation merges bit-identically to serial execution; MIN/MAX keep a
// typed int64 path so INT keys above 2^53 do not collapse through float64.
type aggGroup struct {
	keys   []any
	counts []int64
	sums   []exactFloatSum
	mins   []float64
	maxs   []float64
	minInt []int64
	maxInt []int64
	minStr []string
	maxStr []string
}

// aggFamilies records which accumulator families a spec list needs —
// derived once per operator from the aggregate functions and the static
// MIN/MAX argument types, so each group allocates only the slices its
// query can ever read.
type aggFamilies struct {
	sum     bool // SUM/AVG present
	minMaxF bool // MIN/MAX over float (or bool) arguments
	minMaxI bool // MIN/MAX over int arguments
	minMaxS bool // MIN/MAX over string arguments
}

// aggFamiliesOf derives the families from the specs against the input
// schema. Argument types were already validated by aggOutputSchema, so a
// type error here cannot occur; unknown types default to the float
// family (matching observe's AsFloat fallback).
func aggFamiliesOf(aggs []plan.AggSpec, in *types.Schema) aggFamilies {
	var f aggFamilies
	for _, a := range aggs {
		switch a.Func {
		case plan.AggSum, plan.AggAvg:
			f.sum = true
		case plan.AggMin, plan.AggMax:
			t := types.Float
			if a.Arg != nil {
				if at, err := a.Arg.Type(in); err == nil {
					t = at
				}
			}
			switch t {
			case types.Int:
				f.minMaxI = true
			case types.String:
				f.minMaxS = true
			default:
				f.minMaxF = true
			}
		}
	}
	return f
}

// newAggGroup allocates state for one group, but only the accumulator
// families the query actually uses — a group is allocated per key per
// worker, so a high-cardinality COUNT-only (or single-typed MIN/MAX)
// GROUP BY must not pay for unused slices.
func newAggGroup(nKeys int, aggs []plan.AggSpec, fam aggFamilies) *aggGroup {
	g := &aggGroup{
		keys:   make([]any, nKeys),
		counts: make([]int64, len(aggs)),
	}
	if fam.sum {
		g.sums = make([]exactFloatSum, len(aggs))
	}
	if fam.minMaxF {
		g.mins = make([]float64, len(aggs))
		g.maxs = make([]float64, len(aggs))
		for a := range g.mins {
			g.mins[a] = math.Inf(1)
			g.maxs[a] = math.Inf(-1)
		}
	}
	if fam.minMaxI {
		g.minInt = make([]int64, len(aggs))
		g.maxInt = make([]int64, len(aggs))
		for a := range g.minInt {
			g.minInt[a] = math.MaxInt64
			g.maxInt[a] = math.MinInt64
		}
	}
	if fam.minMaxS {
		g.minStr = make([]string, len(aggs))
		g.maxStr = make([]string, len(aggs))
	}
	return g
}

// observe folds row i of the evaluated aggregate arguments into the group.
func (g *aggGroup) observe(aggs []plan.AggSpec, argVals []*types.Vector, i int) {
	for ai, a := range aggs {
		if a.Func == plan.AggCount {
			g.counts[ai]++
			continue
		}
		v := argVals[ai]
		switch v.Type {
		case types.String:
			if a.Func == plan.AggMin || a.Func == plan.AggMax {
				s := v.Strings[i]
				if g.counts[ai] == 0 || s < g.minStr[ai] {
					g.minStr[ai] = s
				}
				if g.counts[ai] == 0 || s > g.maxStr[ai] {
					g.maxStr[ai] = s
				}
			}
			g.counts[ai]++
		case types.Int:
			g.counts[ai]++
			switch a.Func {
			case plan.AggSum, plan.AggAvg:
				g.sums[ai].Add(float64(v.Ints[i]))
			default:
				k := v.Ints[i]
				if k < g.minInt[ai] {
					g.minInt[ai] = k
				}
				if k > g.maxInt[ai] {
					g.maxInt[ai] = k
				}
			}
		default:
			x := v.AsFloat(i)
			g.counts[ai]++
			switch a.Func {
			case plan.AggSum, plan.AggAvg:
				// Exact accumulation is the expensive path; only the
				// functions that emit it pay for it.
				g.sums[ai].Add(x)
			default:
				if x < g.mins[ai] {
					g.mins[ai] = x
				}
				if x > g.maxs[ai] {
					g.maxs[ai] = x
				}
			}
		}
	}
}

// merge folds another partial state for the same group into g. All
// supported aggregate functions are mergeable (plan.AggFunc.Mergeable):
// counts add, exact sums merge exactly, min/max combine. Each function
// only touches its own accumulator family (the others may be unallocated).
func (g *aggGroup) merge(o *aggGroup, aggs []plan.AggSpec) {
	for ai, a := range aggs {
		switch a.Func {
		case plan.AggCount:
			g.counts[ai] += o.counts[ai]
		case plan.AggSum, plan.AggAvg:
			if o.counts[ai] == 0 {
				continue
			}
			g.counts[ai] += o.counts[ai]
			g.sums[ai].Merge(&o.sums[ai])
		case plan.AggMin, plan.AggMax:
			if o.counts[ai] == 0 {
				continue
			}
			// Only the allocated families are merged; which one this
			// aggregate uses is fixed by its argument type.
			if g.minStr != nil {
				if g.counts[ai] == 0 {
					g.minStr[ai], g.maxStr[ai] = o.minStr[ai], o.maxStr[ai]
				} else {
					if o.minStr[ai] < g.minStr[ai] {
						g.minStr[ai] = o.minStr[ai]
					}
					if o.maxStr[ai] > g.maxStr[ai] {
						g.maxStr[ai] = o.maxStr[ai]
					}
				}
			}
			g.counts[ai] += o.counts[ai]
			if g.mins != nil {
				if o.mins[ai] < g.mins[ai] {
					g.mins[ai] = o.mins[ai]
				}
				if o.maxs[ai] > g.maxs[ai] {
					g.maxs[ai] = o.maxs[ai]
				}
			}
			if g.minInt != nil {
				if o.minInt[ai] < g.minInt[ai] {
					g.minInt[ai] = o.minInt[ai]
				}
				if o.maxInt[ai] > g.maxInt[ai] {
					g.maxInt[ai] = o.maxInt[ai]
				}
			}
		}
	}
}

// emitRow renders the group as an output row in schema order.
func (g *aggGroup) emitRow(aggs []plan.AggSpec, schema *types.Schema, nKeys int) []any {
	row := make([]any, 0, schema.Len())
	row = append(row, g.keys...)
	for ai, a := range aggs {
		idx := nKeys + ai
		switch a.Func {
		case plan.AggCount:
			row = append(row, g.counts[ai])
		case plan.AggSum:
			row = append(row, g.sums[ai].Round())
		case plan.AggAvg:
			if g.counts[ai] == 0 {
				row = append(row, 0.0)
			} else {
				row = append(row, g.sums[ai].Round()/float64(g.counts[ai]))
			}
		case plan.AggMin, plan.AggMax:
			switch schema.Columns[idx].Type {
			case types.String:
				if a.Func == plan.AggMin {
					row = append(row, g.minStr[ai])
				} else {
					row = append(row, g.maxStr[ai])
				}
			case types.Int:
				if a.Func == plan.AggMin {
					row = append(row, g.minInt[ai])
				} else {
					row = append(row, g.maxInt[ai])
				}
			default:
				if a.Func == plan.AggMin {
					row = append(row, g.mins[ai])
				} else {
					row = append(row, g.maxs[ai])
				}
			}
		}
	}
	return row
}

// HashAggregate is the serial grouped aggregation, emitting one batch in
// first-seen group order. Compilation now lowers plan.Aggregate to the
// two-phase ParallelHashAggregate; this operator remains as the reference
// implementation (it shares aggGroup, so the two cannot drift).
type HashAggregate struct {
	Child   Operator
	GroupBy []string
	Aggs    []plan.AggSpec
	// Ctx cancels the aggregation between input batches.
	Ctx context.Context

	schema *types.Schema
	groups map[string]*aggGroup
	order  []string
	out    *types.Batch
	done   bool
}

// NewHashAggregate builds the operator; schema mirrors plan.NewAggregate.
func NewHashAggregate(child Operator, groupBy []string, aggs []plan.AggSpec) (*HashAggregate, error) {
	schema, err := aggOutputSchema(child.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &HashAggregate{Child: child, GroupBy: groupBy, Aggs: aggs, schema: schema}, nil
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *types.Schema { return h.schema }

// Open implements Operator: consume the child and aggregate.
func (h *HashAggregate) Open() error {
	h.done = false
	h.groups = make(map[string]*aggGroup)
	h.order = nil
	if err := h.Child.Open(); err != nil {
		return err
	}
	defer h.Child.Close()

	keyIdx := make([]int, len(h.GroupBy))
	for i, g := range h.GroupBy {
		keyIdx[i] = h.Child.Schema().IndexOf(g)
	}
	fam := aggFamiliesOf(h.Aggs, h.Child.Schema())
	argVals := make([]*types.Vector, len(h.Aggs))
	var scratch []byte
	for {
		if err := ctxErr(h.Ctx); err != nil {
			return err
		}
		b, err := h.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if err := evalAggArgs(argVals, h.Aggs, b); err != nil {
			return err
		}
		for i := 0; i < b.Len(); i++ {
			scratch = appendGroupKey(scratch, b, keyIdx, i)
			// The compiler elides the string conversion in a map lookup, so
			// existing groups (the per-row common case) cost zero
			// allocations; the key string materializes only on insert.
			st, ok := h.groups[string(scratch)]
			if !ok {
				key := string(scratch)
				st = newAggGroup(len(keyIdx), h.Aggs, fam)
				for k, ki := range keyIdx {
					st.keys[k] = b.Vecs[ki].Value(i)
				}
				h.groups[key] = st
				h.order = append(h.order, key)
			}
			st.observe(h.Aggs, argVals, i)
		}
		putAggArgs(argVals, h.Aggs)
	}
	return h.emit()
}

func (h *HashAggregate) emit() error {
	out := types.NewBatch(h.schema)
	for _, key := range h.order {
		st := h.groups[key]
		if err := out.AppendRow(st.emitRow(h.Aggs, h.schema, len(h.GroupBy))...); err != nil {
			return err
		}
	}
	h.out = out
	h.groups = nil
	h.order = nil
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (*types.Batch, error) {
	if h.done {
		return nil, nil
	}
	h.done = true
	return h.out, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.out = nil
	return nil
}
