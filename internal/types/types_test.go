package types

import (
	"testing"
	"testing/quick"
)

func TestSchemaIndexOf(t *testing.T) {
	s := NewSchema(Column{"id", Int}, Column{"Age", Float}, Column{"name", String})
	if got := s.IndexOf("age"); got != 1 {
		t.Errorf("IndexOf(age) = %d, want 1 (case-insensitive)", got)
	}
	if got := s.IndexOf("AGE"); got != 1 {
		t.Errorf("IndexOf(AGE) = %d, want 1", got)
	}
	if got := s.IndexOf("missing"); got != -1 {
		t.Errorf("IndexOf(missing) = %d, want -1", got)
	}
}

func TestSchemaProjectConcat(t *testing.T) {
	s := NewSchema(Column{"a", Int}, Column{"b", Float}, Column{"c", Bool})
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Columns[0].Name != "c" || p.Columns[1].Name != "a" {
		t.Fatalf("Project = %v", p)
	}
	q := s.Concat(p)
	if q.Len() != 5 {
		t.Fatalf("Concat len = %d, want 5", q.Len())
	}
	// Concat must not alias the source slices.
	q.Columns[0].Name = "zz"
	if s.Columns[0].Name != "a" {
		t.Error("Concat aliased source schema")
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema(Column{"a", Int}, Column{"b", String})
	if got := s.String(); got != "(a INT, b VARCHAR)" {
		t.Errorf("String() = %q", got)
	}
}

func TestVectorAppendAndValue(t *testing.T) {
	v := NewVector(Float, 0)
	for _, x := range []any{1.5, int64(2), 3} {
		if err := v.Append(x); err != nil {
			t.Fatalf("Append(%v): %v", x, err)
		}
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	want := []float64{1.5, 2, 3}
	for i, w := range want {
		if v.Floats[i] != w {
			t.Errorf("Floats[%d] = %v, want %v", i, v.Floats[i], w)
		}
	}
	if err := v.Append("nope"); err == nil {
		t.Error("Append(string) to FLOAT vector should fail")
	}
}

func TestVectorTypeMismatchAppends(t *testing.T) {
	cases := []struct {
		typ DataType
		val any
	}{
		{Int, 1.5},
		{Bool, 1},
		{String, 1},
	}
	for _, c := range cases {
		v := NewVector(c.typ, 0)
		if err := v.Append(c.val); err == nil {
			t.Errorf("Append(%T) to %v vector should fail", c.val, c.typ)
		}
	}
}

func TestVectorSliceGather(t *testing.T) {
	v := NewVector(Int, 5)
	for i := range v.Ints {
		v.Ints[i] = int64(i * 10)
	}
	s := v.Slice(1, 4)
	if s.Len() != 3 || s.Ints[0] != 10 || s.Ints[2] != 30 {
		t.Fatalf("Slice = %v", s.Ints)
	}
	g := v.Gather([]int{4, 0, 2})
	if g.Ints[0] != 40 || g.Ints[1] != 0 || g.Ints[2] != 20 {
		t.Fatalf("Gather = %v", g.Ints)
	}
	// Gather must copy, not alias.
	g.Ints[0] = -1
	if v.Ints[4] != 40 {
		t.Error("Gather aliased source")
	}
}

func TestVectorNulls(t *testing.T) {
	v := NewVector(Float, 3)
	if v.IsNull(1) {
		t.Error("fresh vector should have no NULLs")
	}
	v.SetNull(1)
	if !v.IsNull(1) || v.IsNull(0) || v.IsNull(2) {
		t.Error("SetNull(1) wrong mask")
	}
	if v.Value(1) != nil {
		t.Error("Value of NULL row should be nil")
	}
	g := v.Gather([]int{1, 0})
	if !g.IsNull(0) || g.IsNull(1) {
		t.Error("Gather lost null mask")
	}
}

func TestVectorAsFloat(t *testing.T) {
	b := NewVector(Bool, 2)
	b.Bools[0] = true
	if b.AsFloat(0) != 1 || b.AsFloat(1) != 0 {
		t.Error("Bool AsFloat")
	}
	i := NewVector(Int, 1)
	i.Ints[0] = -7
	if i.AsFloat(0) != -7 {
		t.Error("Int AsFloat")
	}
}

func TestBatchAppendRowAndRow(t *testing.T) {
	s := NewSchema(Column{"id", Int}, Column{"x", Float}, Column{"ok", Bool})
	b := NewBatch(s)
	if err := b.AppendRow(int64(1), 2.5, true); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow(2, 3.5, false); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	row := b.Row(1)
	if row[0] != int64(2) || row[1] != 3.5 || row[2] != false {
		t.Errorf("Row(1) = %v", row)
	}
	if err := b.AppendRow(1); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestBatchProjectGatherSlice(t *testing.T) {
	s := NewSchema(Column{"a", Int}, Column{"b", Float})
	b := NewBatch(s)
	for i := 0; i < 4; i++ {
		if err := b.AppendRow(int64(i), float64(i)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	p := b.Project([]int{1})
	if p.Schema.Len() != 1 || p.Schema.Columns[0].Name != "b" {
		t.Fatalf("Project schema = %v", p.Schema)
	}
	g := b.Gather([]int{3, 1})
	if g.Len() != 2 || g.Vecs[0].Ints[0] != 3 || g.Vecs[0].Ints[1] != 1 {
		t.Fatalf("Gather = %v", g.Vecs[0].Ints)
	}
	sl := b.Slice(2, 4)
	if sl.Len() != 2 || sl.Vecs[0].Ints[0] != 2 {
		t.Fatalf("Slice = %v", sl.Vecs[0].Ints)
	}
}

func TestBatchFloatMatrix(t *testing.T) {
	s := NewSchema(Column{"a", Int}, Column{"b", Float}, Column{"c", Bool}, Column{"s", String})
	b := NewBatch(s)
	if err := b.AppendRow(int64(1), 0.5, true, "x"); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow(int64(2), 1.5, false, "y"); err != nil {
		t.Fatal(err)
	}
	m, n, err := b.FloatMatrix([]string{"b", "a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
	want := []float64{0.5, 1, 1, 1.5, 2, 0}
	for i, w := range want {
		if m[i] != w {
			t.Errorf("m[%d] = %v, want %v", i, m[i], w)
		}
	}
	if _, _, err := b.FloatMatrix([]string{"s"}); err == nil {
		t.Error("FloatMatrix over VARCHAR should fail")
	}
	if _, _, err := b.FloatMatrix([]string{"zzz"}); err == nil {
		t.Error("FloatMatrix over missing column should fail")
	}
}

func TestBatchAppend(t *testing.T) {
	s := NewSchema(Column{"a", Int})
	b1, b2 := NewBatch(s), NewBatch(s)
	_ = b1.AppendRow(int64(1))
	_ = b2.AppendRow(int64(2))
	_ = b2.AppendRow(int64(3))
	if err := b1.Append(b2); err != nil {
		t.Fatal(err)
	}
	if b1.Len() != 3 || b1.Vecs[0].Ints[2] != 3 {
		t.Fatalf("Append result = %v", b1.Vecs[0].Ints)
	}
}

// Property: Gather(Slice) indices compose — gathering from a slice equals
// gathering shifted indices from the original.
func TestVectorSliceGatherCompose(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		v := &Vector{Type: Float, Floats: raw}
		s := v.Slice(1, len(raw)-1)
		sel := []int{0, s.Len() - 1}
		g1 := s.Gather(sel)
		g2 := v.Gather([]int{1, len(raw) - 2})
		return g1.Floats[0] == g2.Floats[0] && g1.Floats[1] == g2.Floats[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ConstFloat produces a broadcast vector where every logical
// element equals the constant and the length matches, and densifying it
// materializes the same values.
func TestConstVectorsProperty(t *testing.T) {
	f := func(x float64, n uint8) bool {
		v := ConstFloat(x, int(n))
		if v.Len() != int(n) || !v.Const {
			return false
		}
		d := v.Densify()
		if d.Len() != int(n) || d.Const {
			return false
		}
		for i := 0; i < int(n); i++ {
			e := v.FloatAt(i)
			if e != x && !(e != e && x != x) { // NaN-safe
				return false
			}
			if e := d.Floats[i]; e != x && !(e != e && x != x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstHelpers(t *testing.T) {
	if v := ConstInt(7, 3); v.Len() != 3 || v.IntAt(2) != 7 {
		t.Error("ConstInt")
	}
	if v := ConstBool(true, 2); !v.BoolAt(1) {
		t.Error("ConstBool")
	}
	if v := ConstString("x", 2); v.StringAt(0) != "x" {
		t.Error("ConstString")
	}
}

func TestVectorAppendFrom(t *testing.T) {
	src := NewVector(Float, 0)
	for _, x := range []float64{1.5, 2.5, 3.5} {
		if err := src.Append(x); err != nil {
			t.Fatal(err)
		}
	}
	src.SetNull(1)
	dst := NewVector(Float, 0)
	dst.AppendFrom(src, 0)
	dst.AppendFrom(src, 1) // null row
	dst.AppendFrom(src, 2)
	if dst.Len() != 3 || dst.Floats[0] != 1.5 || dst.Floats[2] != 3.5 {
		t.Fatalf("values = %v", dst.Floats)
	}
	if !dst.IsNull(1) || dst.IsNull(0) || dst.IsNull(2) {
		t.Fatalf("null mask = %v", dst.NullBits)
	}
	// String path, no nulls anywhere: mask stays empty.
	s1 := NewVector(String, 0)
	_ = s1.Append("a")
	s2 := NewVector(String, 0)
	s2.AppendFrom(s1, 0)
	if s2.Strings[0] != "a" || s2.HasNulls() {
		t.Fatalf("string append = %v nulls=%v", s2.Strings, s2.NullBits)
	}
	// Int and Bool paths.
	iv := NewVector(Int, 0)
	_ = iv.Append(int64(9))
	iv2 := NewVector(Int, 0)
	iv2.AppendFrom(iv, 0)
	bv := NewVector(Bool, 0)
	_ = bv.Append(true)
	bv2 := NewVector(Bool, 0)
	bv2.AppendFrom(bv, 0)
	if iv2.Ints[0] != 9 || !bv2.Bools[0] {
		t.Fatal("int/bool AppendFrom")
	}
}
