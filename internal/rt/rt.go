// Package rt implements the inference execution modes of paper §5: tight
// in-process execution (interpreted MLD pipelines or compiled tensor-graph
// sessions with model/session caching — "Raven"), out-of-process execution
// behind a serialization boundary with runtime-startup cost ("Raven Ext",
// the sp_execute_external_script path), and containerized execution over a
// real localhost REST endpoint.
package rt

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"raven/internal/exec"
	"raven/internal/ml"
	"raven/internal/nnconv"
	"raven/internal/ort"
	"raven/internal/tensor"
	"raven/internal/types"
)

// Mode selects the execution strategy for a model invocation.
type Mode uint8

// Execution modes.
const (
	// ModeInProcess interprets the classical pipeline in-process (the
	// scikit-learn stand-in running inside the DB).
	ModeInProcess Mode = iota
	// ModeInProcessNN runs the NN-translated pipeline on the in-process
	// tensor runtime with session caching (Raven's PREDICT path).
	ModeInProcessNN
	// ModeOutOfProcess adds the external-runtime boundary: first-use
	// startup latency plus per-batch serialization (Raven Ext).
	ModeOutOfProcess
	// ModeContainer scores over a localhost REST endpoint (the paper's
	// containerized fallback).
	ModeContainer
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeInProcess:
		return "in-process"
	case ModeInProcessNN:
		return "in-process-nn"
	case ModeOutOfProcess:
		return "out-of-process"
	case ModeContainer:
		return "container"
	default:
		return "unknown"
	}
}

// DefaultExternalStartup models the external language runtime boot the
// paper measures as "a constant overhead of about half a second" (§5).
const DefaultExternalStartup = 500 * time.Millisecond

// floatVector converts raw scores to a typed output vector.
func floatVector(scores []float64, t types.DataType) *types.Vector {
	switch t {
	case types.Int:
		v := types.NewVector(types.Int, len(scores))
		for i, s := range scores {
			v.Ints[i] = int64(s)
		}
		return v
	case types.Bool:
		v := types.NewVector(types.Bool, len(scores))
		for i, s := range scores {
			v.Bools[i] = s > 0.5
		}
		return v
	default:
		return &types.Vector{Type: types.Float, Floats: scores}
	}
}

// PipelinePredictor interprets an ml.Pipeline per batch: the classical
// framework execution model (per-tree traversal, per-step featurizers).
type PipelinePredictor struct {
	Pipe      *ml.Pipeline
	InputCols []string
	OutType   types.DataType
	// BatchRows caps how many rows are featurized and scored at a time:
	// the feature matrix and pipeline intermediates stay at
	// BatchRows×width regardless of how large the relational batch is.
	// Zero scores each batch whole. The adaptive tuner sets this from the
	// pipeline's feature width.
	BatchRows int

	scratch sync.Pool // *pipeScratch
}

// pipeScratch is the per-worker reusable state of one PredictBatch call:
// the flat feature matrix plus the pipeline's internal buffers. Output
// scores are NOT here — they escape into the result vector.
type pipeScratch struct {
	matrix []float64
	sc     ml.PredictScratch
}

// NewPipelinePredictor builds the predictor; InputCols defaults to the
// pipeline's declared input columns.
func NewPipelinePredictor(p *ml.Pipeline, outType types.DataType) *PipelinePredictor {
	return &PipelinePredictor{Pipe: p, InputCols: p.InputColumns, OutType: outType}
}

// PredictBatch implements exec.Predictor. Safe for concurrent use: each
// call checks out a private scratch.
func (p *PipelinePredictor) PredictBatch(b *types.Batch) ([]*types.Vector, error) {
	n := b.Len()
	d := len(p.InputCols)
	chunk := n
	if p.BatchRows > 0 && p.BatchRows < n {
		chunk = p.BatchRows
	}
	s, _ := p.scratch.Get().(*pipeScratch)
	if s == nil {
		s = &pipeScratch{}
	}
	if cap(s.matrix) < chunk*d {
		s.matrix = make([]float64, chunk*d)
	}
	scores := make([]float64, n) // escapes via floatVector; never pooled
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if err := b.FloatMatrixRangeInto(s.matrix, p.InputCols, lo, hi); err != nil {
			p.scratch.Put(s)
			return nil, err
		}
		m := ml.Matrix{Data: s.matrix[:(hi-lo)*d], Rows: hi - lo, Cols: d}
		if err := p.Pipe.PredictInto(m, scores[lo:hi], &s.sc); err != nil {
			p.scratch.Put(s)
			return nil, err
		}
	}
	p.scratch.Put(s)
	return []*types.Vector{floatVector(scores, p.OutType)}, nil
}

// SessionPredictor scores through a compiled ort session (NN-translated
// pipeline). The session may be shared: Run is safe for concurrent use.
type SessionPredictor struct {
	Session   *ort.Session
	InputCols []string
	OutType   types.DataType
	// Stats accumulates charged time across calls (GPU simulation reads
	// this instead of wall time).
	mu      sync.Mutex
	charged time.Duration
	runs    int
}

// PredictBatch implements exec.Predictor.
func (p *SessionPredictor) PredictBatch(b *types.Batch) ([]*types.Vector, error) {
	data, n, err := b.FloatMatrix(p.InputCols)
	if err != nil {
		return nil, err
	}
	x, err := tensor.FromSlice(data, n, len(p.InputCols))
	if err != nil {
		return nil, err
	}
	out, stats, err := p.Session.Run(map[string]*tensor.Tensor{"X": x})
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.charged += stats.Charged
	p.runs++
	p.mu.Unlock()
	y := out["Y"]
	if y == nil {
		return nil, fmt.Errorf("rt: session produced no Y output")
	}
	return []*types.Vector{floatVector(y.Data, p.OutType)}, nil
}

// Charged returns accumulated provider-charged time and run count.
func (p *SessionPredictor) Charged() (time.Duration, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.charged, p.runs
}

// Runtime builds predictors for models, caching compiled sessions by model
// content hash — the model/session cache of §5 observation (ii).
type Runtime struct {
	Cache *ort.SessionCache
	// Provider executes LA graphs; nil means CPU with full parallelism.
	Provider ort.Provider
	// GraphOptimize toggles the ort graph optimizer (ablation hook).
	GraphOptimize bool
	// ExternalStartup is the simulated boot time of the external runtime
	// for ModeOutOfProcess.
	ExternalStartup time.Duration
}

// NewRuntime returns a runtime with a fresh session cache and defaults.
func NewRuntime() *Runtime {
	return &Runtime{
		Cache:           ort.NewSessionCache(),
		GraphOptimize:   true,
		ExternalStartup: DefaultExternalStartup,
	}
}

// BuildSession compiles (or fetches from cache) a session for the given
// graph, keyed by cacheKey. An empty cacheKey bypasses the cache — that is
// the "standalone ORT" behaviour of Fig 3, which reloads the model each
// query.
func (r *Runtime) BuildSession(cacheKey string, g *ort.Graph) (*ort.Session, error) {
	build := func() (*ort.Session, error) {
		opts := ort.SessionOptions{Optimize: r.GraphOptimize, Provider: r.Provider}
		if opts.Provider == nil {
			opts.Provider = ort.CPUProvider{}
		}
		return ort.NewSessionWithOptions(g, opts)
	}
	if cacheKey == "" {
		return build()
	}
	return r.Cache.Get(cacheKey, build)
}

// NNPredictor translates a pipeline and returns a session predictor.
// cacheKey enables session reuse across queries.
func (r *Runtime) NNPredictor(cacheKey string, p *ml.Pipeline, outType types.DataType) (*SessionPredictor, error) {
	g, err := nnconv.TranslatePipeline(p)
	if err != nil {
		return nil, err
	}
	s, err := r.BuildSession(cacheKey, g)
	if err != nil {
		return nil, err
	}
	return &SessionPredictor{Session: s, InputCols: p.InputColumns, OutType: outType}, nil
}

// GraphPredictor wraps a prebuilt LA graph (from the cross optimizer).
func (r *Runtime) GraphPredictor(cacheKey string, g *ort.Graph, inputCols []string, outType types.DataType) (*SessionPredictor, error) {
	s, err := r.BuildSession(cacheKey, g)
	if err != nil {
		return nil, err
	}
	return &SessionPredictor{Session: s, InputCols: inputCols, OutType: outType}, nil
}

// ContextPredictor makes any predictor observe query cancellation: each
// PredictBatch first polls the context, so a cancelled query stops scoring
// at batch granularity even when the wrapped runtime knows nothing about
// contexts. The runtime code generator wraps every predictor with one when
// the query carries a context.
type ContextPredictor struct {
	Ctx   context.Context
	Inner exec.Predictor
}

// PredictBatch implements exec.Predictor.
func (p *ContextPredictor) PredictBatch(b *types.Batch) ([]*types.Vector, error) {
	if err := p.Ctx.Err(); err != nil {
		return nil, err
	}
	return p.Inner.PredictBatch(b)
}

// OutOfProcessPredictor wraps an inner predictor behind the external-
// runtime boundary: one-time startup latency, then a gob round trip for
// every batch (rows out, scores back), modelling
// sp_execute_external_script's process hop and data transfer.
type OutOfProcessPredictor struct {
	Inner   exec.Predictor
	Startup time.Duration
	// Ctx interrupts the simulated runtime startup so a cancelled query is
	// not stuck behind the half-second boot.
	Ctx context.Context

	once sync.Once
}

// PredictBatch implements exec.Predictor.
func (p *OutOfProcessPredictor) PredictBatch(b *types.Batch) ([]*types.Vector, error) {
	p.once.Do(func() {
		if p.Ctx == nil {
			time.Sleep(p.Startup)
			return
		}
		t := time.NewTimer(p.Startup)
		defer t.Stop()
		select {
		case <-t.C:
		case <-p.Ctx.Done():
		}
	})
	if p.Ctx != nil {
		if err := p.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	// Serialize the batch across the "process boundary".
	wire, err := encodeBatch(b)
	if err != nil {
		return nil, err
	}
	remote, err := decodeBatch(wire)
	if err != nil {
		return nil, err
	}
	outs, err := p.Inner.PredictBatch(remote)
	if err != nil {
		return nil, err
	}
	// Serialize results back.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(outs); err != nil {
		return nil, err
	}
	var back []*types.Vector
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		return nil, err
	}
	return back, nil
}

type wireBatch struct {
	Cols []types.Column
	Vecs []types.Vector
}

func encodeBatch(b *types.Batch) ([]byte, error) {
	w := wireBatch{Cols: b.Schema.Columns}
	for _, v := range b.Vecs {
		w.Vecs = append(w.Vecs, *v)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeBatch(data []byte) (*types.Batch, error) {
	var w wireBatch
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, err
	}
	b := &types.Batch{Schema: types.NewSchema(w.Cols...)}
	for i := range w.Vecs {
		b.Vecs = append(b.Vecs, &w.Vecs[i])
	}
	return b, nil
}
