package xopt

import (
	"math"
	"strings"
	"testing"

	"raven/internal/expr"
	"raven/internal/ir"
	"raven/internal/ml"
	"raven/internal/plan"
	"raven/internal/relopt"
	"raven/internal/storage"
	"raven/internal/types"
)

func TestForestPruningAndProjection(t *testing.T) {
	forest := &ml.RandomForest{Trees: []*ml.DecisionTree{fig1Tree(), fig1Tree()}}
	g, _ := hospitalGraph(t, forest, pregnantEq1())
	ok, err := rulePredicateModelPruning(g, false)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	_, model := mldChain(g)
	pf := model.M.(*ml.RandomForest)
	if pf.Trees[0].NumNodes() >= fig1Tree().NumNodes() {
		t.Error("forest trees not pruned")
	}
	ok, err = ruleModelProjectionPushdown(g)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	// after pruning on pregnant=1, only bp remains used
	if len(model.InputCols) >= len(hospCols) {
		t.Errorf("forest inputs not narrowed: %v", model.InputCols)
	}
}

func TestForestPruningNoChangeWithoutSplits(t *testing.T) {
	// forest over features the predicate doesn't touch
	tr := &ml.DecisionTree{NFeat: 5}
	tr.Feature = []int{4, -1, -1}
	tr.Threshold = []float64{100, 0, 0}
	tr.Left = []int{1, -1, -1}
	tr.Right = []int{2, -1, -1}
	tr.Value = []float64{0, 1, 2}
	forest := &ml.RandomForest{Trees: []*ml.DecisionTree{tr}}
	g, _ := hospitalGraph(t, forest, pregnantEq1())
	if ok, _ := rulePredicateModelPruning(g, false); ok {
		t.Error("pruning fired without prunable splits")
	}
}

func TestMapFactsThroughScalerAndSelect(t *testing.T) {
	sc := &ml.StandardScaler{Mean: []float64{10, 0}, Scale: []float64{2, 1}}
	sel := &ml.ColumnSelect{Indices: []int{0}}
	facts := &columnFacts{
		ranges: map[string]expr.Range{"x": {Lo: 10, Hi: 14}},
		equals: map[string]float64{},
	}
	ff, ok := mapFactsThroughTransforms(facts, []string{"x", "y"}, []ml.Transformer{sc, sel})
	if !ok {
		t.Fatal("mapping failed")
	}
	iv, present := ff.constraints[0]
	if !present {
		t.Fatalf("no constraint after scaler+select: %+v", ff)
	}
	// (10-10)/2 = 0 ; (14-10)/2 = 2
	if iv.Lo != 0 || iv.Hi != 2 {
		t.Errorf("scaled interval = %+v", iv)
	}
}

func TestMapFactsBailsOnUnion(t *testing.T) {
	u := &ml.FeatureUnion{Parts: []ml.Transformer{&ml.ColumnSelect{Indices: []int{0}}}}
	facts := &columnFacts{ranges: map[string]expr.Range{"x": {Lo: 1, Hi: 1}}, equals: map[string]float64{}}
	if _, ok := mapFactsThroughTransforms(facts, []string{"x"}, []ml.Transformer{u}); ok {
		t.Error("union should stop constraint mapping (conservative)")
	}
}

func TestNarrowInputColumnsThroughScaler(t *testing.T) {
	// scaler over 3 cols, then LR that uses only feature 1.
	sc := &ml.StandardScaler{Mean: []float64{1, 2, 3}, Scale: []float64{1, 1, 1}}
	lr := &ml.LogisticRegression{W: []float64{0, 2, 0}, B: 0}
	cat := storage.NewCatalog()
	tb := storage.NewTable("t", types.NewSchema(
		types.Column{Name: "a", Type: types.Float},
		types.Column{Name: "b", Type: types.Float},
		types.Column{Name: "c", Type: types.Float},
	))
	_ = tb.AppendRow(1.0, 2.0, 3.0)
	_ = cat.AddTable(tb)
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	tr := &ir.TransformNode{T: sc, In: src}
	mn := &ir.ModelNode{M: lr, InputCols: []string{"a", "b", "c"}, OutputCol: types.Column{Name: "s", Type: types.Float}, In: tr}
	g := &ir.Graph{Root: mn}
	ok, err := ruleModelProjectionPushdown(g)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	_, model := mldChain(g)
	if len(model.InputCols) != 1 || model.InputCols[0] != "b" {
		t.Errorf("inputs = %v, want [b]", model.InputCols)
	}
	// narrowed scaler must be width 1 with the right mean
	steps, _ := mldChain(g)
	nsc, ok2 := steps[0].T.(*ml.StandardScaler)
	if !ok2 || len(nsc.Mean) != 1 || nsc.Mean[0] != 2 {
		t.Errorf("scaler not narrowed: %+v", steps[0].T)
	}
}

func TestOptimizeWithSplittingOption(t *testing.T) {
	g, cat := hospitalGraph(t, fig1Tree(), nil)
	opts := DefaultOptions(&relopt.Optimizer{Catalog: cat, AssumeRI: true})
	opts.ModelQuerySplitting = true
	opts.ModelInlining = false
	opts.NNTranslation = false
	res, err := Optimize(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(res.Applied, ","), "model-query-splitting") {
		t.Errorf("splitting did not fire: %v", res.Applied)
	}
	if res.Graph.Find(func(n ir.Node) bool { _, ok := n.(*ir.SplitNode); return ok }) == nil {
		t.Error("no split node in optimized graph")
	}
}

func TestOptimizeNNTranslationPath(t *testing.T) {
	g, cat := hospitalGraph(t, fig1Tree(), pregnantEq1())
	opts := DefaultOptions(&relopt.Optimizer{Catalog: cat, AssumeRI: true})
	opts.ModelInlining = false
	res, err := Optimize(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Applied, ",")
	if !strings.Contains(joined, "nn-translation") {
		t.Errorf("nn-translation did not fire: %v", res.Applied)
	}
	la := res.Graph.Find(func(n ir.Node) bool { _, ok := n.(*ir.LANode); return ok })
	if la == nil {
		t.Fatal("no LA node")
	}
	if la.(*ir.LANode).Engine != ir.EngineML {
		t.Error("LA node not placed on ML engine")
	}
}

func TestGatherFactsSkipsPredictionColumns(t *testing.T) {
	g, _ := hospitalGraph(t, fig1Tree(), expr.And([]expr.Expr{
		pregnantEq1(),
		expr.NewBinary(expr.OpGt, &expr.Column{Name: "score"}, expr.FloatLit(0.5)),
	}))
	facts := gatherFacts(g, false)
	if _, ok := facts.ranges["score"]; ok {
		t.Error("prediction column leaked into facts")
	}
	if r, ok := facts.ranges["pregnant"]; !ok || r.Lo != 1 {
		t.Errorf("pregnant fact missing: %+v", facts.ranges)
	}
}

func TestRoutingFeaturesDegenerate(t *testing.T) {
	// single-cluster model has no routing features
	sample := ml.Matrix{Data: []float64{1, 2, 3, 4}, Rows: 2, Cols: 2}
	lr := &ml.LogisticRegression{W: []float64{1, 1}}
	cm, err := BuildClusteredModel(lr, sample, 1, 1e-9, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cm.Predict(sample)
	if err != nil || len(p) != 2 {
		t.Fatal(p, err)
	}
	want, _ := lr.Predict(sample)
	for i := range want {
		if math.Abs(want[i]-p[i]) > 1e-12 {
			t.Errorf("k=1 clustered diverges at %d", i)
		}
	}
}

func TestClusteredEncodedModelMatchesPipeline(t *testing.T) {
	// 2 numerics + 2 cats with group structure
	const n, d, groups = 600, 4, 4
	raw := make([]float64, n*d)
	for i := 0; i < n; i++ {
		g := i % groups
		raw[i*d] = float64(i%7) * 0.5
		raw[i*d+1] = float64(i%5) * 0.25
		raw[i*d+2] = float64(g)
		raw[i*d+3] = float64(g % 2)
	}
	rawM := ml.Matrix{Data: raw, Rows: n, Cols: d}
	enc := ml.FitOneHot(rawM, []int{2, 3})
	encd, err := enc.Transform(rawM)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, encd.Cols)
	for j := range w {
		w[j] = 0.1 * float64(j%5)
	}
	lr := &ml.LogisticRegression{W: w, B: -0.3}
	want, err := lr.Predict(encd)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := BuildClusteredEncodedModel(enc, lr, rawM, groups, 1e-9, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cm.Predict(rawM)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("clustered-encoded diverges at %d: %v vs %v", i, want[i], got[i])
		}
	}
	if cm.K() != groups {
		t.Errorf("K = %d", cm.K())
	}
	if cm.AvgActiveTerms() >= float64(d) {
		t.Errorf("nothing specialized: %v", cm.AvgActiveTerms())
	}
}

func TestClusteredEncodedModelValidation(t *testing.T) {
	enc := &ml.OneHotEncoder{Cols: []int{0}, Categories: [][]float64{{0, 1}}, InputDim: 1}
	lr := &ml.LogisticRegression{W: []float64{1}} // wrong width (encoder yields 2)
	if _, err := BuildClusteredEncodedModel(enc, lr, ml.Matrix{Data: []float64{0, 1}, Rows: 2, Cols: 1}, 2, 1e-9, 1); err == nil {
		t.Error("width mismatch should fail")
	}
}
