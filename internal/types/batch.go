package types

import (
	"fmt"
	"strings"
)

// DefaultBatchSize is the row count operators aim for per Batch. 4096 rows
// keeps column chunks within L2 while amortizing per-batch overheads, and is
// also the default inference batch size (paper §5, observation v).
const DefaultBatchSize = 4096

// Batch is a columnar chunk of rows flowing between operators.
type Batch struct {
	Schema *Schema
	Vecs   []*Vector
}

// NewBatch allocates an empty batch (zero rows) with the given schema.
func NewBatch(schema *Schema) *Batch {
	vecs := make([]*Vector, schema.Len())
	for i, c := range schema.Columns {
		vecs[i] = NewVector(c.Type, 0)
	}
	return &Batch{Schema: schema, Vecs: vecs}
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// Col returns the vector for the named column, or nil if absent.
func (b *Batch) Col(name string) *Vector {
	i := b.Schema.IndexOf(name)
	if i < 0 {
		return nil
	}
	return b.Vecs[i]
}

// AppendRow appends one row given as raw Go values in schema order.
func (b *Batch) AppendRow(vals ...any) error {
	if len(vals) != len(b.Vecs) {
		return fmt.Errorf("types: row has %d values, schema has %d columns", len(vals), len(b.Vecs))
	}
	for i, v := range vals {
		if err := b.Vecs[i].Append(v); err != nil {
			return fmt.Errorf("column %q: %w", b.Schema.Columns[i].Name, err)
		}
	}
	return nil
}

// Row materializes row i as a slice of interface values.
func (b *Batch) Row(i int) []any {
	out := make([]any, len(b.Vecs))
	for j, v := range b.Vecs {
		out[j] = v.Value(i)
	}
	return out
}

// Slice returns a zero-copy view of rows [lo, hi).
func (b *Batch) Slice(lo, hi int) *Batch {
	vecs := make([]*Vector, len(b.Vecs))
	for i, v := range b.Vecs {
		vecs[i] = v.Slice(lo, hi)
	}
	return &Batch{Schema: b.Schema, Vecs: vecs}
}

// Gather returns a new batch with rows picked by sel, in order.
func (b *Batch) Gather(sel []int) *Batch {
	vecs := make([]*Vector, len(b.Vecs))
	for i, v := range b.Vecs {
		vecs[i] = v.Gather(sel)
	}
	return &Batch{Schema: b.Schema, Vecs: vecs}
}

// Project returns a batch view containing only the columns at ordinals idx.
func (b *Batch) Project(idx []int) *Batch {
	vecs := make([]*Vector, len(idx))
	for i, j := range idx {
		vecs[i] = b.Vecs[j]
	}
	return &Batch{Schema: b.Schema.Project(idx), Vecs: vecs}
}

// Grow reserves capacity for n additional rows in every column.
func (b *Batch) Grow(n int) {
	for _, v := range b.Vecs {
		v.Grow(n)
	}
}

// Append appends all rows of src (same schema arity) into b.
func (b *Batch) Append(src *Batch) error {
	if len(src.Vecs) != len(b.Vecs) {
		return fmt.Errorf("types: batch arity mismatch %d vs %d", len(src.Vecs), len(b.Vecs))
	}
	for i := range b.Vecs {
		if err := b.Vecs[i].AppendVector(src.Vecs[i]); err != nil {
			return err
		}
	}
	return nil
}

// String renders the batch as a small ASCII table (for tests and the CLI).
func (b *Batch) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(b.Schema.Names(), " | "))
	sb.WriteByte('\n')
	n := b.Len()
	for i := 0; i < n; i++ {
		parts := make([]string, len(b.Vecs))
		for j, v := range b.Vecs {
			parts[j] = fmt.Sprintf("%v", v.Value(i))
		}
		sb.WriteString(strings.Join(parts, " | "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FloatMatrix extracts the named columns into a flat row-major float64
// matrix (n rows × len(cols) features). This is the bridge from relational
// batches to ML feature matrices; Bool and Int columns are widened.
func (b *Batch) FloatMatrix(cols []string) ([]float64, int, error) {
	out := make([]float64, b.Len()*len(cols))
	n, err := b.FloatMatrixInto(out, cols)
	if err != nil {
		return nil, 0, err
	}
	return out, n, nil
}

// FloatMatrixInto is FloatMatrix writing into a caller-provided buffer of
// length ≥ b.Len()*len(cols), so predictors can recycle the feature matrix
// across batches. Every cell is written.
func (b *Batch) FloatMatrixInto(out []float64, cols []string) (int, error) {
	n := b.Len()
	if err := b.FloatMatrixRangeInto(out, cols, 0, n); err != nil {
		return 0, err
	}
	return n, nil
}

// FloatMatrixRangeInto extracts rows [lo, hi) of the named columns into out
// (length ≥ (hi-lo)*len(cols)), so predictors can chunk inference over a
// large batch without allocating per-chunk views.
func (b *Batch) FloatMatrixRangeInto(out []float64, cols []string, lo, hi int) error {
	n := hi - lo
	d := len(cols)
	for j, name := range cols {
		v := b.Col(name)
		if v == nil {
			return fmt.Errorf("types: column %q not in batch schema %v", name, b.Schema)
		}
		// Broadcast columns hold one physical row; stride 0 repeats it.
		stride := 1
		base := lo
		if v.Const {
			stride = 0
			base = 0
		}
		switch v.Type {
		case Float:
			for i := 0; i < n; i++ {
				out[i*d+j] = v.Floats[base+i*stride]
			}
		case Int:
			for i := 0; i < n; i++ {
				out[i*d+j] = float64(v.Ints[base+i*stride])
			}
		case Bool:
			for i := 0; i < n; i++ {
				if v.Bools[base+i*stride] {
					out[i*d+j] = 1
				} else {
					out[i*d+j] = 0
				}
			}
		default:
			return fmt.Errorf("types: column %q has non-numeric type %v", name, v.Type)
		}
	}
	return nil
}
