package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"raven"
	"raven/internal/server"
)

// assertGoroutinesReturn polls the goroutine count back to baseline —
// the leak check every failure-mode test ends with.
func assertGoroutinesReturn(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:m])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// testCluster is N in-process replicas behind a router with a real
// listener, plus a client pointed at the router.
type testCluster struct {
	reps []*Replica
	rt   *Router
	c    *server.Client

	rl       net.Listener
	rsrv     *http.Server
	serveErr chan error
}

func newTestCluster(t *testing.T, n int) *testCluster {
	return newTestClusterOpts(t, n, Options{ProbeInterval: 50 * time.Millisecond})
}

func newTestClusterOpts(t *testing.T, n int, opts Options) *testCluster {
	t.Helper()
	tc := &testCluster{serveErr: make(chan error, 1)}
	srvOpts := server.Options{DrainGrace: 200 * time.Millisecond}
	engOpts := []raven.Option{
		raven.WithParallelism(1),
		raven.WithMaxConcurrentQueries(4),
		raven.WithSchedulerQueue(32, 5*time.Second),
	}
	for i := 0; i < n; i++ {
		r, err := SpawnReplica(fmt.Sprintf("r%d", i), srvOpts, engOpts...)
		if err != nil {
			t.Fatal(err)
		}
		tc.reps = append(tc.reps, r)
	}
	// No Start(): tests drive reconciliation with ProbeNow for
	// determinism instead of racing a background loop.
	tc.rt = New(opts)
	for _, r := range tc.reps {
		if err := tc.rt.AddMember(r.Name, r.Base); err != nil {
			t.Fatal(err)
		}
	}
	tc.rt.ProbeNow(context.Background())

	var err error
	tc.rl, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.rsrv = &http.Server{Handler: tc.rt.Handler()}
	go func() { tc.serveErr <- tc.rsrv.Serve(tc.rl) }()
	tc.c = &server.Client{Base: "http://" + tc.rl.Addr().String(), Timeout: 15 * time.Second}
	return tc
}

// close tears the cluster down; replicas already killed/closed by the
// test are skipped via the alive set.
func (tc *testCluster) close(t *testing.T, alive ...int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	tc.rsrv.Close()
	<-tc.serveErr
	tc.rt.Close()
	keep := make(map[int]bool)
	for _, i := range alive {
		keep[i] = true
	}
	for i, r := range tc.reps {
		if len(alive) == 0 || keep[i] {
			if err := r.Close(ctx); err != nil {
				t.Errorf("close replica %d: %v", i, err)
			}
		}
	}
}

// seedData pushes a small table through the router (replicates to all).
func (tc *testCluster) seedData(t *testing.T, rows int) {
	t.Helper()
	var ddl strings.Builder
	ddl.WriteString("CREATE TABLE pts (id INT, x FLOAT, y FLOAT);\nINSERT INTO pts VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			ddl.WriteString(", ")
		}
		fmt.Fprintf(&ddl, "(%d, %g, %g)", i, float64(i)*0.5, float64(i%7))
	}
	if err := tc.c.Exec(ddl.String()); err != nil {
		t.Fatalf("seed DDL through router: %v", err)
	}
}

const testQuery = "SELECT id, x + y AS s FROM pts WHERE id < 32"

func TestRendezvousRanking(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	// Deterministic and stable.
	r1 := rankMembers("tenant-1", names)
	r2 := rankMembers("tenant-1", names)
	if strings.Join(r1, ",") != strings.Join(r2, ",") {
		t.Fatalf("ranking not stable: %v vs %v", r1, r2)
	}
	// Removing a non-home member must not move the home (minimal
	// disruption — the property rendezvous hashing is here for).
	for i := 0; i < 50; i++ {
		tn := fmt.Sprintf("tenant-%d", i)
		full := rankMembers(tn, names)
		without := []string{}
		for _, n := range names {
			if n != full[3] { // drop the lowest-ranked member
				without = append(without, n)
			}
		}
		if got := rankMembers(tn, without)[0]; got != full[0] {
			t.Fatalf("tenant %s home moved from %s to %s when %s left", tn, full[0], got, full[3])
		}
	}
	// All members get some tenants (no degenerate hashing).
	homes := map[string]int{}
	for i := 0; i < 200; i++ {
		homes[rankMembers(fmt.Sprintf("t%d", i), names)[0]]++
	}
	for _, n := range names {
		if homes[n] == 0 {
			t.Fatalf("member %s homed zero of 200 tenants: %v", n, homes)
		}
	}
}

func TestReplicationAndAffinity(t *testing.T) {
	base := runtime.NumGoroutine()
	tc := newTestCluster(t, 2)
	tc.seedData(t, 64)

	// Both replicas hold the replicated table.
	for i, r := range tc.reps {
		rc := &server.Client{Base: r.Base, Timeout: 5 * time.Second}
		res, err := rc.Query(server.QueryRequest{SQL: "SELECT COUNT(*) AS n FROM pts"})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if fmt.Sprint(res.Rows[0][0]) != "64" {
			t.Fatalf("replica %d: got %v rows, want 64", i, res.Rows[0][0])
		}
	}

	// Same tenant keeps landing on its home replica (affinity), and the
	// home matches HomeFor.
	tn := tenantHomedOn(tc.rt, "r1")
	for i := 0; i < 5; i++ {
		resp, err := http.Post(tc.c.Base+"/query", "application/json",
			strings.NewReader(fmt.Sprintf(`{"sql":%q,"tenant":%q}`, testQuery, tn)))
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Header.Get("X-Raven-Replica")
		resp.Body.Close()
		if got != "r1" {
			t.Fatalf("query %d for tenant %s routed to %q, want r1", i, tn, got)
		}
	}

	// Mixed side-effect + SELECT scripts are refused, not diverged.
	err := tc.c.Exec("INSERT INTO pts VALUES (999, 1.0, 2.0); SELECT * FROM pts")
	var he *server.HTTPError
	if err == nil || !asHTTP(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("mixed script: got %v, want 400", err)
	}

	tc.close(t)
	assertGoroutinesReturn(t, base)
}

func asHTTP(err error, out **server.HTTPError) bool {
	he, ok := err.(*server.HTTPError)
	if ok {
		*out = he
	}
	return ok
}

// TestKillRetryRestartRepair is the crash-recovery arc: kill a replica
// under traffic (reads re-route), restart it empty on the same address
// (the router detects the catalog-version regression), and verify the
// reconciler replays the replication log before routing to it again.
func TestKillRetryRestartRepair(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	tc := newTestCluster(t, 2)
	tc.seedData(t, 64)

	tn := tenantHomedOn(tc.rt, "r1")
	ref, err := tc.c.Query(server.QueryRequest{SQL: testQuery, Tenant: tn})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the tenant's home replica mid-everything. New reads for the
	// tenant must keep succeeding: the router's first attempt hits the
	// dead replica, fails at transport level, and retries onto the
	// survivor.
	addr := tc.reps[1].Addr()
	tc.reps[1].Kill()
	for i := 0; i < 3; i++ {
		res, err := tc.c.Query(server.QueryRequest{SQL: testQuery, Tenant: tn})
		if err != nil {
			t.Fatalf("read %d after kill: %v", i, err)
		}
		if res.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("read %d after kill diverged", i)
		}
	}
	if got := tc.rt.Stats(ctx).Router.Retried; got == 0 {
		t.Fatal("router reports zero retries after routing past a dead replica")
	}

	// Two failed probes mark it down; reads still fine.
	tc.rt.ProbeNow(ctx)
	tc.rt.ProbeNow(ctx)
	st := tc.rt.Stats(ctx)
	if st.Members[1].State != "down" {
		t.Fatalf("killed replica state = %s, want down", st.Members[1].State)
	}
	if st.Router.Healthy != 1 {
		t.Fatalf("healthy = %d, want 1", st.Router.Healthy)
	}

	// Restart "the process" empty on the same address: the probe sees
	// the catalog version regress, wipes replication progress, and
	// replays the whole log — the replica is fully reconstructed from
	// the router's side-effect history before it takes traffic.
	rep, err := SpawnReplicaOn("r1", addr, server.Options{},
		raven.WithParallelism(1), raven.WithMaxConcurrentQueries(4), raven.WithSchedulerQueue(32, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	tc.reps[1] = rep
	tc.rt.ProbeNow(ctx)
	st = tc.rt.Stats(ctx)
	if st.Members[1].State != "healthy" {
		t.Fatalf("restarted replica state = %s, want healthy (repaired)", st.Members[1].State)
	}
	if st.Router.Repairs == 0 {
		t.Fatal("router reports zero repairs after a restart")
	}

	// The restarted replica answers the tenant's reads itself, with the
	// same bytes.
	rc := &server.Client{Base: rep.Base, Timeout: 5 * time.Second}
	res, err := rc.Query(server.QueryRequest{SQL: testQuery})
	if err != nil {
		t.Fatalf("restarted replica direct read: %v", err)
	}
	if res.Fingerprint() != ref.Fingerprint() {
		t.Fatal("restarted replica serves different data after repair")
	}

	tc.close(t)
	assertGoroutinesReturn(t, base)
}

// TestStmtReprepareAfterRestart: a router-prepared statement keeps
// working for a tenant whose home replica restarted — the replica 404s
// (its registry died), the router re-prepares transparently.
func TestStmtReprepareAfterRestart(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	tc := newTestCluster(t, 2)
	tc.seedData(t, 64)

	pr, err := tc.c.Prepare(server.QueryRequest{SQL: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	tn := tenantHomedOn(tc.rt, "r0")
	ref, err := tc.c.StmtQuery(pr.ID, server.QueryRequest{Tenant: tn})
	if err != nil {
		t.Fatal(err)
	}

	addr := tc.reps[0].Addr()
	tc.reps[0].Kill()
	rep, err := SpawnReplicaOn("r0", addr, server.Options{},
		raven.WithParallelism(1), raven.WithMaxConcurrentQueries(4), raven.WithSchedulerQueue(32, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	tc.reps[0] = rep
	tc.rt.ProbeNow(ctx) // regression detected, log replayed, stmt ids wiped

	res, err := tc.c.StmtQuery(pr.ID, server.QueryRequest{Tenant: tn})
	if err != nil {
		t.Fatalf("stmt exec after home restart: %v", err)
	}
	if res.Fingerprint() != ref.Fingerprint() {
		t.Fatal("stmt result diverged across restart")
	}

	tc.close(t)
	assertGoroutinesReturn(t, base)
}

// TestDrainUnderLoad: graceful drain of one replica while 4 workers
// hammer the router — zero failed queries, zero divergent results, and
// the drained replica's in-flight work finishes (its Close errors if
// the engine drain does).
func TestDrainUnderLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	tc := newTestCluster(t, 2)
	tc.seedData(t, 64)
	tc.rt.Start() // background reconciler: the drain must be probe-visible

	ref, err := tc.c.Query(server.QueryRequest{SQL: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	tenants := []string{tenantHomedOn(tc.rt, "r0"), tenantHomedOn(tc.rt, "r1")}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		qerrs   []error
		queries int
		done    = make(chan struct{})
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tn := tenants[w%2]
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := tc.c.Query(server.QueryRequest{SQL: testQuery, Tenant: tn})
				mu.Lock()
				queries++
				if err != nil {
					qerrs = append(qerrs, fmt.Errorf("tenant %s: %w", tn, err))
				} else if res.Fingerprint() != ref.Fingerprint() {
					qerrs = append(qerrs, fmt.Errorf("tenant %s: diverged", tn))
				}
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond)
	dctx, cancel := context.WithTimeout(ctx, 20*time.Second)
	if err := tc.reps[1].Close(dctx); err != nil {
		t.Errorf("graceful drain: %v", err)
	}
	cancel()
	time.Sleep(250 * time.Millisecond)
	close(done)
	wg.Wait()

	if len(qerrs) > 0 {
		t.Fatalf("%d of %d queries failed across the drain; first: %v", len(qerrs), queries, qerrs[0])
	}
	if queries < 8 {
		t.Fatalf("only %d queries ran; drain window carried no load", queries)
	}

	tc.close(t, 0) // replica 1 already closed
	assertGoroutinesReturn(t, base)
}

// TestFailingReplicationEntry: a side-effect script that every replica
// rejects (here: a duplicate CREATE TABLE, a terminal 400) must fail
// fast with the replica's verdict and leave the cluster untouched. The
// regression this pins down: the entry used to be appended to the
// never-truncated log before fan-out, so one bad DDL degraded every
// member and the reconciler replayed the failing entry forever — no
// member ever returned to healthy and all reads died.
func TestFailingReplicationEntry(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	tc := newTestCluster(t, 2)
	tc.seedData(t, 16)

	head := tc.rt.logHead()
	err := tc.c.Exec("CREATE TABLE pts (id INT, x FLOAT, y FLOAT)")
	var he *server.HTTPError
	if err == nil || !asHTTP(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("duplicate CREATE through router: got %v, want the replica's 400 back", err)
	}
	if got := tc.rt.logHead(); got != head {
		t.Fatalf("failing entry entered the replication log: head %d -> %d", head, got)
	}

	// Nobody was degraded by the bad script and reconciling stays
	// converged: reads keep working cluster-wide.
	tc.rt.ProbeNow(ctx)
	st := tc.rt.Stats(ctx)
	if st.Router.Healthy != 2 {
		t.Fatalf("healthy = %d after a rejected script, want 2", st.Router.Healthy)
	}
	for _, mi := range st.Members {
		if mi.State != "healthy" {
			t.Fatalf("member %s state = %s after a rejected script, want healthy", mi.Name, mi.State)
		}
	}
	if _, err := tc.c.Query(server.QueryRequest{SQL: testQuery}); err != nil {
		t.Fatalf("read after rejected script: %v", err)
	}

	// Replication still works afterwards — the log was not poisoned.
	if err := tc.c.Exec("CREATE TABLE after_bad (id INT); INSERT INTO after_bad VALUES (1)"); err != nil {
		t.Fatalf("good DDL after rejected script: %v", err)
	}
	for i, r := range tc.reps {
		rc := &server.Client{Base: r.Base, Timeout: 5 * time.Second}
		res, err := rc.Query(server.QueryRequest{SQL: "SELECT COUNT(*) AS n FROM after_bad"})
		if err != nil {
			t.Fatalf("replica %d missing post-failure table: %v", i, err)
		}
		if fmt.Sprint(res.Rows[0][0]) != "1" {
			t.Fatalf("replica %d: after_bad has %v rows, want 1", i, res.Rows[0][0])
		}
	}

	tc.close(t)
	assertGoroutinesReturn(t, base)
}

// TestHeaderTagsForwarded: the router must forward X-Raven-Tenant and
// X-Raven-Priority to the replica. The replica gives headers precedence
// over the body exactly so a fronting proxy can tag untrusted clients —
// if the router drops them it routes by the header tenant while the
// replica admits and bills the (often empty) body tenant, silently
// bypassing per-tenant quotas and priority.
func TestHeaderTagsForwarded(t *testing.T) {
	var mu sync.Mutex
	var gotTenant, gotPriority string
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.Health{Status: "ok", CatalogVersion: 1})
	})
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gotTenant = r.Header.Get("X-Raven-Tenant")
		gotPriority = r.Header.Get("X-Raven-Priority")
		mu.Unlock()
		fmt.Fprint(w, `{"columns":["a"],"types":["INT"]}`+"\n[1]\n"+`{"rows":1,"compile_ms":0,"exec_ms":0}`+"\n")
	})
	rep := httptest.NewServer(mux)
	defer rep.Close()

	rt := New(Options{})
	defer rt.Close()
	if err := rt.AddMember("only", rep.URL); err != nil {
		t.Fatal(err)
	}
	rt.ProbeNow(context.Background())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	req, err := http.NewRequest(http.MethodPost, front.URL+"/query",
		strings.NewReader(`{"sql":"SELECT a FROM t"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Raven-Tenant", "alice")
	req.Header.Set("X-Raven-Priority", "7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed query: status %d", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotTenant != "alice" || gotPriority != "7" {
		t.Fatalf("replica saw tenant=%q priority=%q, want alice/7 — admission headers dropped in proxying", gotTenant, gotPriority)
	}
}

// TestHedgedRequests: with hedging on, a read whose first replica
// stalls past the observed p99 is raced on the second and the fast
// response wins.
func TestHedgedRequests(t *testing.T) {
	newFake := func(delay time.Duration) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			json.NewEncoder(w).Encode(server.Health{Status: "ok", CatalogVersion: 1})
		})
		mux.HandleFunc("POST /query", func(w http.ResponseWriter, _ *http.Request) {
			time.Sleep(delay)
			fmt.Fprint(w, `{"columns":["a"],"types":["INT"]}`+"\n[1]\n"+`{"rows":1,"compile_ms":0,"exec_ms":0}`+"\n")
		})
		return httptest.NewServer(mux)
	}
	slow := newFake(400 * time.Millisecond)
	defer slow.Close()
	fast := newFake(0)
	defer fast.Close()

	rt := New(Options{Hedge: true, HedgeMinSamples: 1})
	defer rt.Close()
	if err := rt.AddMember("slow", slow.URL); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddMember("fast", fast.URL); err != nil {
		t.Fatal(err)
	}
	rt.ProbeNow(context.Background())
	rt.lat.record(10 * time.Millisecond) // prime the p99 estimate

	// A tenant homed on the slow replica.
	tn := tenantHomedOn(rt, "slow")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	start := time.Now()
	resp, err := http.Post(front.URL+"/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"sql":"SELECT a FROM t","tenant":%q}`, tn)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if took := time.Since(start); took > 300*time.Millisecond {
		t.Fatalf("hedged read took %v — waited out the slow replica instead of hedging", took)
	}
	if got := resp.Header.Get("X-Raven-Replica"); got != "fast" {
		t.Fatalf("winner = %q, want the hedge target (fast)", got)
	}
	st := rt.Stats(context.Background())
	if st.Router.Hedged == 0 || st.Router.HedgeWins == 0 {
		t.Fatalf("hedge counters not incremented: hedged=%d wins=%d", st.Router.Hedged, st.Router.HedgeWins)
	}
}

// TestSpillOver (white box): a saturated home queue reorders targets to
// the least-loaded replica.
func TestSpillOver(t *testing.T) {
	rt := New(Options{SpillQueueDepth: 4})
	defer rt.Close()
	if err := rt.AddMember("a", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddMember("b", "http://127.0.0.1:2"); err != nil {
		t.Fatal(err)
	}
	tn := tenantHomedOn(rt, "a")
	ma, mb := rt.members["a"], rt.members["b"]
	ma.setState(StateHealthy)
	mb.setState(StateHealthy)

	// Unsaturated: home leads.
	if got := rt.targetsFor(tn)[0]; got != ma {
		t.Fatalf("unsaturated: home is %s, want a", got.name)
	}
	// Saturate the home's probed queue: spill to b.
	ma.probeMu.Lock()
	ma.health.Queue = 10
	ma.probeMu.Unlock()
	if got := rt.targetsFor(tn)[0]; got != mb {
		t.Fatalf("saturated: leads with %s, want spill to b", got.name)
	}
	if rt.spilled.Load() == 0 {
		t.Fatal("spill counter not incremented")
	}
	// Draining members drop out of the target set entirely.
	mb.setState(StateDraining)
	targets := rt.targetsFor(tn)
	if len(targets) != 1 || targets[0] != ma {
		t.Fatalf("draining member still targeted: %v", targets)
	}
}
