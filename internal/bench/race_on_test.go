//go:build race

package bench

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation skews wall-clock ratios; timing
// threshold assertions are skipped so `make race` stays a pure
// correctness gate.
const raceEnabled = true
