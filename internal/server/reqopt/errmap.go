package reqopt

import (
	"context"
	"errors"
	"net/http"

	"raven"
)

// ErrStmtLimit is the shared statement-registry-full error (stmtreg
// returns it; it lives here so the error table below and the registry
// cannot drift apart without a compile error).
var ErrStmtLimit = errors.New("prepared-statement limit reached; close unused statements")

// ErrStmtNotFound is the shared unknown-statement error.
var ErrStmtNotFound = errors.New("unknown statement id")

// Class is one row of the front-end error table: how an engine error
// leaves the process on each protocol. Both front ends consult the same
// table, so ErrQueueFull/ErrTenantQuota/ErrDraining/parse errors cannot
// drift between HTTP statuses and SQLSTATEs.
type Class struct {
	// HTTPStatus is the status the HTTP/NDJSON front end answers with.
	HTTPStatus int
	// SQLState is the five-byte code the pgwire front end puts in
	// ErrorResponse.
	SQLState string
	// RetryAfter reports whether the condition is transient pressure the
	// client should retry (HTTP adds a Retry-After header). False for
	// permanent conditions — a tenant administratively shut off stays
	// shut off until reconfiguration, so hinting a retry would just
	// generate polling load.
	RetryAfter bool
}

// SQLSTATE codes used by the table (postgres errcodes.txt spellings).
const (
	SQLStateSyntaxError       = "42601" // parse/bind/compile failures
	SQLStateTooManyConns      = "53300" // admission shed: queue full, quota
	SQLStateQueryCanceled     = "57014" // timeout or client cancel
	SQLStateAdminShutdown     = "57P01" // draining
	SQLStateInvalidStmtName   = "26000" // unknown prepared statement
	SQLStateInvalidPortal     = "34000" // unknown portal
	SQLStateProtocolViolation = "08P01" // malformed frame, wrong arity
	SQLStateNotSupported      = "0A000" // unsupported protocol feature
)

// Classify maps an engine (or registry) error to its wire class. The
// admission outcomes get distinct codes — the wire contract the
// scheduler exists for; everything else is a client error: this query
// surface treats malformed/unbindable SQL as 400/42601 and reserves
// 5xx for transport failures.
func Classify(err error) Class {
	switch {
	case errors.Is(err, raven.ErrQueueFull):
		// Shed: retry with backoff.
		return Class{http.StatusTooManyRequests, SQLStateTooManyConns, true}
	case errors.Is(err, raven.ErrTenantQuota):
		// Administratively shut off: same codes, no retry invitation.
		return Class{http.StatusTooManyRequests, SQLStateTooManyConns, false}
	case errors.Is(err, ErrStmtLimit):
		// Registry full: the client can free statements itself, so no
		// Retry-After (waiting changes nothing).
		return Class{http.StatusTooManyRequests, SQLStateTooManyConns, false}
	case errors.Is(err, raven.ErrQueueTimeout),
		errors.Is(err, context.DeadlineExceeded):
		return Class{http.StatusGatewayTimeout, SQLStateQueryCanceled, false}
	case errors.Is(err, raven.ErrDraining):
		return Class{http.StatusServiceUnavailable, SQLStateAdminShutdown, true}
	case errors.Is(err, context.Canceled):
		// Client went away or cancelled; 499 is never seen over HTTP but
		// keeps logs honest, and pg clients see the canonical cancel code.
		return Class{499, SQLStateQueryCanceled, false}
	case errors.Is(err, ErrStmtNotFound):
		return Class{http.StatusNotFound, SQLStateInvalidStmtName, false}
	default:
		return Class{http.StatusBadRequest, SQLStateSyntaxError, false}
	}
}

// HTTPStatus is Classify(err).HTTPStatus.
func HTTPStatus(err error) int { return Classify(err).HTTPStatus }

// SQLState is Classify(err).SQLState.
func SQLState(err error) string { return Classify(err).SQLState }
