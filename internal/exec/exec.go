// Package exec is the vectorized volcano executor: physical operators
// exchange columnar batches through Open/Next/Close. It includes the
// parallel scan+predict pipeline that gives the paper's Fig 3 its ~5×
// speedup at 1M-10M rows (SQL Server auto-parallelizing scan and PREDICT,
// §5 observation iii).
package exec

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"raven/internal/expr"
	"raven/internal/storage"
	"raven/internal/types"
)

// Operator is a physical operator. Next returns nil at end of stream.
type Operator interface {
	Open() error
	Next() (*types.Batch, error)
	Close() error
	Schema() *types.Schema
}

// Predictor scores batches; the runtime package provides implementations
// for the in-process, out-of-process and containerized modes.
// Implementations must be safe for concurrent PredictBatch calls: one
// predictor instance is shared by all workers of a morsel-parallel plan.
type Predictor interface {
	// PredictBatch returns one output vector per declared output column.
	PredictBatch(b *types.Batch) ([]*types.Vector, error)
}

// TableScan reads a table range in fixed-size batches with optional column
// projection.
type TableScan struct {
	Table *storage.Table
	// Cols projects a subset; nil scans all columns.
	Cols []string
	// Lo, Hi bound the row range; Hi==0 means the table end (snapshot at
	// Open).
	Lo, Hi    int
	BatchSize int

	schema *types.Schema
	colIdx []int
	pos    int
	end    int
}

// NewTableScan builds a full scan of t.
func NewTableScan(t *storage.Table, cols []string) (*TableScan, error) {
	s := &TableScan{Table: t, Cols: cols, BatchSize: types.DefaultBatchSize}
	if err := s.resolve(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *TableScan) resolve() error {
	if s.Cols == nil {
		s.schema = s.Table.Schema()
		s.colIdx = nil
		return nil
	}
	s.colIdx = make([]int, len(s.Cols))
	for i, c := range s.Cols {
		j := s.Table.Schema().IndexOf(c)
		if j < 0 {
			return fmt.Errorf("exec: table %s has no column %q", s.Table.Name, c)
		}
		s.colIdx[i] = j
	}
	s.schema = s.Table.Schema().Project(s.colIdx)
	return nil
}

// Schema implements Operator.
func (s *TableScan) Schema() *types.Schema { return s.schema }

// Open implements Operator.
func (s *TableScan) Open() error {
	if s.BatchSize <= 0 {
		s.BatchSize = types.DefaultBatchSize
	}
	s.pos = s.Lo
	s.end = s.Hi
	if s.end == 0 || s.end > s.Table.NumRows() {
		s.end = s.Table.NumRows()
	}
	return nil
}

// Next implements Operator.
func (s *TableScan) Next() (*types.Batch, error) {
	if s.pos >= s.end {
		return nil, nil
	}
	hi := s.pos + s.BatchSize
	if hi > s.end {
		hi = s.end
	}
	b, err := s.Table.ScanRange(s.pos, hi)
	if err != nil {
		return nil, err
	}
	s.pos = hi
	if s.colIdx != nil {
		b = b.Project(s.colIdx)
	}
	return b, nil
}

// Close implements Operator.
func (s *TableScan) Close() error { return nil }

// FilterOp drops rows whose predicate is false. It is the serial adapter
// over FilterStage, so serial and morsel-parallel plans share one
// filtering implementation.
type FilterOp struct {
	Child Operator
	Pred  expr.Expr

	stage FilterStage
}

// Schema implements Operator.
func (f *FilterOp) Schema() *types.Schema { return f.Child.Schema() }

// Open implements Operator. The stage is built once here (binding the
// predicate to the child schema) instead of per Next call.
func (f *FilterOp) Open() error {
	f.stage = FilterStage{Pred: f.Pred}
	if _, err := f.stage.OutSchema(f.Child.Schema()); err != nil {
		return err
	}
	return f.Child.Open()
}

// Close implements Operator.
func (f *FilterOp) Close() error { return f.Child.Close() }

// Next implements Operator.
func (f *FilterOp) Next() (*types.Batch, error) {
	for {
		b, err := f.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		out, err := f.stage.Apply(b)
		if err != nil {
			return nil, err
		}
		if out == nil || out.Len() == 0 {
			continue
		}
		return out, nil
	}
}

// ProjectOp computes expressions. It is the serial adapter over
// ProjectStage.
type ProjectOp struct {
	Child  Operator
	stage  *ProjectStage
	schema *types.Schema
}

// NewProjectOp builds a projection operator with a precomputed schema.
func NewProjectOp(child Operator, exprs []expr.Expr, names []string) (*ProjectOp, error) {
	st := &ProjectStage{Exprs: exprs, Names: names}
	schema, err := st.OutSchema(child.Schema())
	if err != nil {
		return nil, err
	}
	return &ProjectOp{Child: child, stage: st, schema: schema}, nil
}

// Schema implements Operator.
func (p *ProjectOp) Schema() *types.Schema { return p.schema }

// Open implements Operator.
func (p *ProjectOp) Open() error { return p.Child.Open() }

// Close implements Operator.
func (p *ProjectOp) Close() error { return p.Child.Close() }

// Next implements Operator.
func (p *ProjectOp) Next() (*types.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	return p.stage.Apply(b)
}

// LimitOp truncates the stream after N rows.
type LimitOp struct {
	Child Operator
	N     int
	seen  int
}

// Schema implements Operator.
func (l *LimitOp) Schema() *types.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *LimitOp) Open() error { l.seen = 0; return l.Child.Open() }

// Close implements Operator.
func (l *LimitOp) Close() error { return l.Child.Close() }

// Next implements Operator.
func (l *LimitOp) Next() (*types.Batch, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	b, err := l.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if l.seen+b.Len() > l.N {
		b = b.Slice(0, l.N-l.seen)
	}
	l.seen += b.Len()
	return b, nil
}

// PredictOp appends model output columns to each batch — the physical
// PREDICT operator. It is the serial fallback used above pipeline breakers
// (sort, join, aggregate); under a large enough batch it still scores
// morsel-size slices concurrently when Parallelism > 1.
type PredictOp struct {
	Child      Operator
	Predictor  Predictor
	OutputCols []types.Column
	// Parallelism > 1 splits batches of at least two morsels into
	// MorselSize slices scored concurrently (inference is embarrassingly
	// row-parallel). Sort feeds its entire output as one batch, so this is
	// where post-breaker inference wins its cores back.
	Parallelism int
	// MorselSize is rows per concurrent slice; 0 means DefaultMorselSize.
	MorselSize int
	schema     *types.Schema
}

// NewPredictOp builds the operator.
func NewPredictOp(child Operator, p Predictor, outputCols []types.Column) *PredictOp {
	return &PredictOp{
		Child:      child,
		Predictor:  p,
		OutputCols: outputCols,
		schema:     child.Schema().Concat(types.NewSchema(outputCols...)),
	}
}

// Schema implements Operator.
func (p *PredictOp) Schema() *types.Schema { return p.schema }

// Open implements Operator.
func (p *PredictOp) Open() error { return p.Child.Open() }

// Close implements Operator.
func (p *PredictOp) Close() error { return p.Child.Close() }

// Next implements Operator.
func (p *PredictOp) Next() (*types.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	outs, err := p.predict(b)
	if err != nil {
		return nil, err
	}
	return appendPredictions(b, outs, len(p.OutputCols), p.schema)
}

// predict scores b, splitting large batches into morsel-size slices scored
// concurrently when Parallelism allows.
func (p *PredictOp) predict(b *types.Batch) ([]*types.Vector, error) {
	ms := p.MorselSize
	if ms <= 0 {
		ms = DefaultMorselSize
	}
	if p.Parallelism <= 1 || b.Len() < 2*ms {
		return p.Predictor.PredictBatch(b)
	}
	n := (b.Len() + ms - 1) / ms
	outs := make([][]*types.Vector, n)
	errs := make([]error, n)
	workers := p.Parallelism
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1) - 1)
				if c >= n {
					return
				}
				lo := c * ms
				hi := lo + ms
				if hi > b.Len() {
					hi = b.Len()
				}
				outs[c], errs[c] = p.Predictor.PredictBatch(b.Slice(lo, hi))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Concatenate slice outputs in order.
	merged := make([]*types.Vector, len(outs[0]))
	for j := range merged {
		v := types.NewVector(outs[0][j].Type, 0)
		for c := 0; c < n; c++ {
			if len(outs[c]) != len(merged) {
				return nil, fmt.Errorf("exec: predictor returned ragged outputs across slices")
			}
			if err := v.AppendVector(outs[c][j]); err != nil {
				return nil, err
			}
		}
		merged[j] = v
	}
	return merged, nil
}

// Collect drains an operator into a single batch (for results and tests).
func Collect(op Operator) (*types.Batch, error) {
	return CollectContext(nil, op)
}

// SortKeySpec is one ordering key. Sorting itself is RunSort (sorted
// per-morsel runs plus a streaming k-way merge) in parallel_breakers.go.
type SortKeySpec struct {
	Col  string
	Desc bool
}

// compareAt compares rows i and j of one vector.
func compareAt(v *types.Vector, i, j int) int { return compareVecs(v, i, v, j) }

// compareVecs compares row i of a with row j of b (same type). INT keys
// compare as int64 — going through AsFloat would collapse keys above
// 2^53 into equality and mis-sort large surrogate keys. NaN floats sort
// before every other value (like sort.Float64s): the comparator must be
// a total order or run merging would emit rows in morsel-boundary-
// dependent positions around NaNs, breaking the any-DOP parity
// guarantee.
func compareVecs(a *types.Vector, i int, b *types.Vector, j int) int {
	switch a.Type {
	case types.String:
		return strings.Compare(a.Strings[i], b.Strings[j])
	case types.Int:
		x, y := a.Ints[i], b.Ints[j]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	default:
		x, y := a.AsFloat(i), b.AsFloat(j)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		case x == y:
			return 0
		default: // at least one NaN
			xn, yn := math.IsNaN(x), math.IsNaN(y)
			switch {
			case xn && yn:
				return 0
			case xn:
				return -1
			default:
				return 1
			}
		}
	}
}

// DistinctOp removes duplicate rows (hash-based, materializing keys only).
type DistinctOp struct {
	Child Operator
	seen  map[string]bool
}

// Schema implements Operator.
func (d *DistinctOp) Schema() *types.Schema { return d.Child.Schema() }

// Open implements Operator.
func (d *DistinctOp) Open() error {
	d.seen = make(map[string]bool)
	return d.Child.Open()
}

// Close implements Operator.
func (d *DistinctOp) Close() error { return d.Child.Close() }

// Next implements Operator.
func (d *DistinctOp) Next() (*types.Batch, error) {
	for {
		b, err := d.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		var sel []int
		for i := 0; i < b.Len(); i++ {
			key := rowKey(b, i)
			if !d.seen[key] {
				d.seen[key] = true
				sel = append(sel, i)
			}
		}
		if len(sel) == 0 {
			continue
		}
		return b.Gather(sel), nil
	}
}

func rowKey(b *types.Batch, i int) string {
	var sb strings.Builder
	for _, v := range b.Vecs {
		fmt.Fprintf(&sb, "%v|", v.Value(i))
	}
	return sb.String()
}

// Parallel runs one operator pipeline per partition concurrently and
// merges their batch streams deterministically: all of part 0's batches in
// order, then part 1's, and so on — the order a serial execution of the
// parts back to back would produce. Each pipeline must be independent (its
// own scan range or branch). Morsel-level parallelism inside one pipeline
// is Exchange's job; Parallel unions whole pipelines (e.g. the two
// branches of model/query splitting).
type Parallel struct {
	Parts []Operator

	chs    []chan *types.Batch
	errs   chan error
	cur    int
	cancel chan struct{}
	failed error
}

// Schema implements Operator.
func (p *Parallel) Schema() *types.Schema { return p.Parts[0].Schema() }

// Open implements Operator.
func (p *Parallel) Open() error {
	p.chs = make([]chan *types.Batch, len(p.Parts))
	// Errors bypass the per-part data channels so a failure in a later
	// part aborts the query immediately instead of after the earlier
	// parts drain. Buffered to part count: error sends never block.
	p.errs = make(chan error, len(p.Parts))
	p.cancel = make(chan struct{})
	cancel, errs := p.cancel, p.errs
	p.cur = 0
	p.failed = nil
	for i, part := range p.Parts {
		ch := make(chan *types.Batch, 4)
		p.chs[i] = ch
		go func(op Operator, ch chan *types.Batch) {
			defer close(ch)
			if err := op.Open(); err != nil {
				errs <- err
				return
			}
			defer op.Close()
			for {
				b, err := op.Next()
				if err != nil {
					errs <- err
					return
				}
				if b == nil {
					return
				}
				select {
				case ch <- b:
				case <-cancel:
					return
				}
			}
		}(part, ch)
	}
	return nil
}

// Next implements Operator. Like Exchange, the first error is latched so
// re-polling after a failure keeps failing instead of resuming the
// surviving parts and passing off a truncated union as end-of-stream.
func (p *Parallel) Next() (*types.Batch, error) {
	if p.failed != nil {
		return nil, p.failed
	}
	for p.cur < len(p.chs) {
		select {
		case b, ok := <-p.chs[p.cur]:
			if !ok {
				p.cur++
				continue
			}
			return b, nil
		case err := <-p.errs:
			p.failed = err
			return nil, err
		}
	}
	// All data streams drained; surface any straggling error.
	select {
	case err := <-p.errs:
		p.failed = err
		return nil, err
	default:
		return nil, nil
	}
}

// Close implements Operator.
func (p *Parallel) Close() error {
	if p.cancel != nil {
		close(p.cancel)
		p.cancel = nil
	}
	// drain so workers unblock and exit (errs is buffered and never blocks)
	for _, ch := range p.chs {
		for range ch {
		}
	}
	p.chs = nil
	p.errs = nil
	return nil
}
