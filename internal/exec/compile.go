package exec

import (
	"context"
	"fmt"

	"raven/internal/plan"
	"raven/internal/types"
)

// Env carries what compilation needs beyond the plan: how to build
// predictors for PREDICT nodes and the degree of parallelism.
type Env struct {
	// Ctx cancels execution of the compiled plan: morsel exchanges, serial
	// scans and pipeline breakers all observe it. Nil means not
	// cancellable.
	Ctx context.Context
	// PredictorFactory builds a Predictor for a model against the given
	// input schema. The runtime package provides the implementations.
	PredictorFactory func(modelName string, inputSchema *types.Schema, outCols []types.Column) (Predictor, error)
	// Parallelism is the morsel-exchange worker count. 1 forces sequential
	// execution (the Fig 3 ablation); 0 defaults to 1.
	Parallelism int
	// ParallelThresholdRows gates parallel scans: below this the fan-out
	// costs more than it saves. Default 50k rows.
	ParallelThresholdRows int
	// MorselSize is the rows-per-morsel of parallel scans; 0 means
	// DefaultMorselSize.
	MorselSize int
	// InputParts supplies the operators standing for plan.Input
	// placeholders (one per partition). Codegen sets this when compiling a
	// plan fragment that consumes rows produced by an ML stage below it.
	InputParts []Operator
	// Tuner, when set, adapts morsel and serial-scan batch sizes from
	// table cardinality and observed service times. An explicit
	// MorselSize still wins for parallel scans.
	Tuner *Tuner
}

func (e *Env) parallelism() int {
	if e == nil || e.Parallelism <= 1 {
		return 1
	}
	return e.Parallelism
}

func (e *Env) threshold() int {
	if e == nil || e.ParallelThresholdRows <= 0 {
		return 50000
	}
	return e.ParallelThresholdRows
}

func (e *Env) morselSize() int {
	if e == nil || e.MorselSize <= 0 {
		return DefaultMorselSize
	}
	return e.MorselSize
}

func (e *Env) ctx() context.Context {
	if e == nil {
		return nil
	}
	return e.Ctx
}

// Compile lowers a logical plan into a physical operator tree. Chains of
// per-row operators (filter, project, predict) over a large table scan
// compile into one morsel-parallel Exchange: workers claim fixed-size row
// morsels from a shared cursor, run the whole chain on each, and results
// merge back in scan order — reproducing SQL Server's automatic parallel
// scan+PREDICT (paper §5, observation iii) with deterministic output.
func Compile(n plan.Node, env *Env) (Operator, error) {
	parts, err := compileParts(n, env)
	if err != nil {
		return nil, err
	}
	if len(parts) == 1 {
		return UnwrapIdleExchange(parts[0]), nil
	}
	return &Parallel{Parts: parts}, nil
}

// UnwrapIdleExchange strips a stage-free exchange wrapped around a
// pipeline breaker's output once nothing can push onto it anymore (the
// plan root, or a serial consumer like LIMIT). The wrap only exists so
// stages above the breaker can re-parallelize; when none arrived, the
// breaker's own batch stream is already in final order and the exchange
// would add worker goroutines and a reorder buffer for zero work — and
// under LIMIT it would also prefetch rows the query will never return.
func UnwrapIdleExchange(op Operator) Operator {
	ex, ok := op.(*Exchange)
	if !ok || ex.opened || len(ex.Stages) > 0 {
		return op
	}
	if sms, ok := ex.Source.(*StreamMorselSource); ok {
		return sms.Op
	}
	return op
}

// compileParts returns one operator per partition for parallelizable
// subtrees, or a single-element slice otherwise.
func compileParts(n plan.Node, env *Env) ([]Operator, error) {
	switch x := n.(type) {
	case *plan.Input:
		if env == nil || len(env.InputParts) == 0 {
			return nil, fmt.Errorf("exec: plan.Input with no bound input operators")
		}
		return env.InputParts, nil

	case *plan.Scan:
		p := env.parallelism()
		rows := x.Table.NumRows()
		if p <= 1 || rows < env.threshold() {
			s, err := NewTableScan(x.Table, x.Cols)
			if err != nil {
				return nil, err
			}
			if env != nil && env.Tuner != nil {
				s.BatchSize = env.Tuner.SerialBatchSize(rows)
			}
			if ctx := env.ctx(); ctx != nil {
				return []Operator{&CancelOp{Ctx: ctx, Child: s}}, nil
			}
			return []Operator{s}, nil
		}
		morsel := env.morselSize()
		if env.MorselSize <= 0 && env.Tuner != nil {
			morsel = env.Tuner.MorselSize(rows, p)
		}
		src, err := NewTableMorselSource(x.Table, x.Cols, morsel)
		if err != nil {
			return nil, err
		}
		ex := NewExchange(src, p)
		ex.Ctx = env.ctx()
		ex.Tuner = env.Tuner
		return []Operator{ex}, nil

	case *plan.Filter:
		parts, err := compileParts(x.Child, env)
		if err != nil {
			return nil, err
		}
		if ex, ok := PushableExchange(parts); ok {
			if err := ex.Push(&FilterStage{Pred: x.Pred}); err != nil {
				return nil, err
			}
			return parts, nil
		}
		for i := range parts {
			parts[i] = &FilterOp{Child: parts[i], Pred: x.Pred}
		}
		return parts, nil

	case *plan.Project:
		parts, err := compileParts(x.Child, env)
		if err != nil {
			return nil, err
		}
		if ex, ok := PushableExchange(parts); ok {
			if err := ex.Push(&ProjectStage{Exprs: x.Exprs, Names: x.Names}); err != nil {
				return nil, err
			}
			return parts, nil
		}
		for i := range parts {
			p, err := NewProjectOp(parts[i], x.Exprs, x.Names)
			if err != nil {
				return nil, err
			}
			parts[i] = p
		}
		return parts, nil

	case *plan.Predict:
		parts, err := compileParts(x.Child, env)
		if err != nil {
			return nil, err
		}
		if env == nil || env.PredictorFactory == nil {
			return nil, fmt.Errorf("exec: plan contains PREDICT but Env has no PredictorFactory")
		}
		// One predictor shared across partitions: predictors are
		// stateless per call (sessions are cached underneath).
		pred, err := env.PredictorFactory(x.ModelName, x.Child.Schema(), x.OutputCols)
		if err != nil {
			return nil, err
		}
		if ex, ok := PushableExchange(parts); ok {
			if err := ex.Push(&PredictStage{Predictor: pred, OutputCols: x.OutputCols}); err != nil {
				return nil, err
			}
			return parts, nil
		}
		for i := range parts {
			op := NewPredictOp(parts[i], pred, x.OutputCols)
			op.Parallelism = env.parallelism()
			op.MorselSize = env.morselSize()
			parts[i] = op
		}
		return parts, nil

	case *plan.Join:
		leftParts, err := compileParts(x.Left, env)
		if err != nil {
			return nil, err
		}
		rightParts, err := compileParts(x.Right, env)
		if err != nil {
			return nil, err
		}
		buildSrc, buildDOP := breakerSource(rightParts, env)
		stage := NewHashProbeStage(x.LeftCol, buildSrc.Schema(), x.RightCol)
		var probe Operator
		if lex, ok := PushableExchange(leftParts); ok {
			// Probe runs as one more stage inside the left scan's exchange:
			// every worker probes the morsels it claims.
			if err := lex.Push(stage); err != nil {
				return nil, err
			}
			probe = lex
		} else {
			so, err := NewStageOp(joinOperators(leftParts), stage)
			if err != nil {
				return nil, err
			}
			probe = so
		}
		j, err := NewParallelHashJoin(buildSrc, buildDOP, probe, stage, x.RightCol, env.ctx())
		if err != nil {
			return nil, err
		}
		return breakerParts(j, env), nil

	case *plan.Aggregate:
		parts, err := compileParts(x.Child, env)
		if err != nil {
			return nil, err
		}
		if !x.Parallelizable() {
			// Non-mergeable aggregates (none today) stay on the serial
			// single-table operator.
			a, err := NewHashAggregate(joinOperators(parts), x.GroupBy, x.Aggs)
			if err != nil {
				return nil, err
			}
			a.Ctx = env.ctx()
			return []Operator{a}, nil
		}
		src, dop := breakerSource(parts, env)
		a, err := NewParallelHashAggregate(src, dop, x.GroupBy, x.Aggs, env.ctx())
		if err != nil {
			return nil, err
		}
		return breakerParts(a, env), nil

	case *plan.Sort:
		parts, err := compileParts(x.Child, env)
		if err != nil {
			return nil, err
		}
		keys := make([]SortKeySpec, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = SortKeySpec{Col: k.Col, Desc: k.Desc}
		}
		src, dop := breakerSource(parts, env)
		s, err := NewRunSort(src, dop, keys, env.ctx())
		if err != nil {
			return nil, err
		}
		return breakerParts(s, env), nil

	case *plan.Limit:
		child, err := Compile(x.Child, env)
		if err != nil {
			return nil, err
		}
		return []Operator{&LimitOp{Child: child, N: x.N}}, nil

	case *plan.Distinct:
		child, err := Compile(x.Child, env)
		if err != nil {
			return nil, err
		}
		return []Operator{&DistinctOp{Child: child}}, nil

	default:
		return nil, fmt.Errorf("exec: cannot compile plan node %T", n)
	}
}

// CompileParts exposes partition-level compilation: it returns one
// operator per partition for parallelizable subtrees. The runtime code
// generator uses this to thread partitioned pipelines through ML stages
// without collapsing them behind an exchange too early.
func CompileParts(n plan.Node, env *Env) ([]Operator, error) {
	return compileParts(n, env)
}

// joinOperators collapses compile parts into one operator (a Parallel
// union when there are several partitions).
func joinOperators(parts []Operator) Operator {
	if len(parts) == 1 {
		return parts[0]
	}
	return &Parallel{Parts: parts}
}

// breakerSource turns a breaker's compiled input into the morsel source
// its workers will consume. A still-pushable exchange is taken over
// directly — its source and pushed stages run on the breaker's own
// workers, so the pipeline below the breaker never serializes. Anything
// else (serial plans, unioned partition streams) is adapted batch-by-
// batch through a StreamMorselSource.
func breakerSource(parts []Operator, env *Env) (MorselSource, int) {
	if ex, ok := PushableExchange(parts); ok {
		dop := ex.DOP
		if dop < 1 {
			dop = env.parallelism()
		}
		return &stagedSource{src: ex.Source, stages: ex.Stages, schema: ex.Schema()}, dop
	}
	return &StreamMorselSource{Op: joinOperators(parts)}, env.parallelism()
}

// breakerParts wraps a breaker's output in a fresh morsel pipeline when
// the plan is parallel — the pipeline-splitting half of the refactor:
// the breaker ends one exchange pipeline, and everything above it
// (filter, project, PREDICT, the next join's probe) pushes onto a new
// exchange fed by the breaker's batch stream, so post-breaker work runs
// morsel-parallel again instead of falling back to serial operators.
func breakerParts(op Operator, env *Env) []Operator {
	p := env.parallelism()
	if p <= 1 {
		return []Operator{op}
	}
	ex := NewExchange(&StreamMorselSource{Op: op}, p)
	ex.Ctx = env.ctx()
	return []Operator{ex}
}
