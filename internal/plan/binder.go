package plan

import (
	"fmt"
	"strings"

	"raven/internal/expr"
	"raven/internal/sql"
	"raven/internal/storage"
	"raven/internal/types"
)

// Binder lowers SQL ASTs onto the catalog, producing logical plans.
type Binder struct {
	Catalog *storage.Catalog
	// Vars holds session variables set by DECLARE.
	Vars map[string]string
	// AllowParams turns undeclared @var references into Param placeholders
	// bound at execute time (prepared statements) instead of bind errors.
	// PREDICT model names still resolve at bind time — the chosen model
	// shapes the whole optimized plan — so MODEL=@var requires a DECLARE.
	AllowParams bool
	// ctes maps in-scope CTE names to their bound plans.
	ctes map[string]Node
}

// NewBinder returns a binder over the catalog.
func NewBinder(cat *storage.Catalog) *Binder {
	return &Binder{Catalog: cat, Vars: make(map[string]string), ctes: make(map[string]Node)}
}

// BindSelect lowers a SELECT statement to a logical plan.
func (b *Binder) BindSelect(st *sql.SelectStmt) (Node, error) {
	// CTEs bind in order and are visible to later CTEs and the body.
	saved := b.ctes
	b.ctes = make(map[string]Node, len(saved)+len(st.CTEs))
	for k, v := range saved {
		b.ctes[k] = v
	}
	defer func() { b.ctes = saved }()
	for _, cte := range st.CTEs {
		p, err := b.BindSelect(cte.Select)
		if err != nil {
			return nil, fmt.Errorf("plan: binding CTE %q: %w", cte.Name, err)
		}
		b.ctes[strings.ToLower(cte.Name)] = p
	}

	var cur Node
	var err error
	if st.From != nil {
		cur, err = b.bindTableRef(st.From)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("plan: SELECT without FROM is not supported")
	}

	if st.Where != nil {
		pred, err := b.bindExpr(st.Where, cur.Schema())
		if err != nil {
			return nil, err
		}
		cur = &Filter{Child: cur, Pred: expr.Simplify(pred)}
	}

	// Aggregation path: any aggregate function in the select list (or an
	// explicit GROUP BY) builds an Aggregate node.
	if hasAggregates(st.Items) || len(st.GroupBy) > 0 {
		cur, err = b.bindAggregate(st, cur)
		if err != nil {
			return nil, err
		}
	} else {
		cur, err = b.bindProjection(st.Items, cur)
		if err != nil {
			return nil, err
		}
	}

	if st.Distinct {
		cur = &Distinct{Child: cur}
	}
	if len(st.OrderBy) > 0 {
		keys := make([]SortKey, len(st.OrderBy))
		for i, o := range st.OrderBy {
			name := bareName(o.Col)
			if cur.Schema().IndexOf(name) < 0 {
				return nil, fmt.Errorf("plan: ORDER BY column %q not in output %v", o.Col, cur.Schema())
			}
			keys[i] = SortKey{Col: name, Desc: o.Desc}
		}
		cur = &Sort{Child: cur, Keys: keys}
	}
	if st.Limit >= 0 {
		cur = &Limit{Child: cur, N: st.Limit}
	}
	return cur, nil
}

func (b *Binder) bindProjection(items []sql.SelectItem, cur Node) (Node, error) {
	// SELECT * keeps the child as-is.
	if len(items) == 1 && items[0].Star {
		return cur, nil
	}
	var exprs []expr.Expr
	var names []string
	for i, item := range items {
		if item.Star {
			for _, c := range cur.Schema().Columns {
				exprs = append(exprs, &expr.Column{Name: c.Name})
				names = append(names, c.Name)
			}
			continue
		}
		e, err := b.bindExpr(item.Expr, cur.Schema())
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			if c, ok := e.(*expr.Column); ok {
				name = c.BareName()
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		exprs = append(exprs, e)
		names = append(names, name)
	}
	return NewProject(cur, exprs, names)
}

func hasAggregates(items []sql.SelectItem) bool {
	for _, it := range items {
		if _, ok := it.Expr.(*sql.FuncE); ok {
			return true
		}
	}
	return false
}

func (b *Binder) bindAggregate(st *sql.SelectStmt, cur Node) (Node, error) {
	var groupBy []string
	for _, g := range st.GroupBy {
		name := bareName(g)
		if cur.Schema().IndexOf(name) < 0 {
			return nil, fmt.Errorf("plan: GROUP BY column %q not found", g)
		}
		groupBy = append(groupBy, name)
	}
	var aggs []AggSpec
	for i, item := range st.Items {
		switch e := item.Expr.(type) {
		case *sql.FuncE:
			spec := AggSpec{Name: item.Alias}
			if spec.Name == "" {
				spec.Name = fmt.Sprintf("%s_%d", strings.ToLower(e.Name), i+1)
			}
			switch e.Name {
			case "COUNT":
				spec.Func = AggCount
			case "SUM":
				spec.Func = AggSum
			case "AVG":
				spec.Func = AggAvg
			case "MIN":
				spec.Func = AggMin
			case "MAX":
				spec.Func = AggMax
			default:
				return nil, fmt.Errorf("plan: unknown aggregate %q", e.Name)
			}
			if !e.Star {
				arg, err := b.bindExpr(e.Args[0], cur.Schema())
				if err != nil {
					return nil, err
				}
				spec.Arg = arg
			} else if e.Name != "COUNT" {
				return nil, fmt.Errorf("plan: %s(*) is not valid", e.Name)
			}
			aggs = append(aggs, spec)
		case *sql.ColRef:
			name := e.Name
			found := false
			for _, g := range groupBy {
				if strings.EqualFold(g, name) {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("plan: column %q must appear in GROUP BY", name)
			}
		default:
			return nil, fmt.Errorf("plan: non-aggregate expression in aggregate query")
		}
	}
	return NewAggregate(cur, groupBy, aggs)
}

// bindTableRef lowers FROM items.
func (b *Binder) bindTableRef(ref sql.TableRef) (Node, error) {
	switch r := ref.(type) {
	case *sql.TableName:
		if cte, ok := b.ctes[strings.ToLower(r.Name)]; ok {
			return cte, nil
		}
		t, err := b.Catalog.Table(r.Name)
		if err != nil {
			return nil, err
		}
		return NewScan(t), nil
	case *sql.SubqueryRef:
		return b.BindSelect(r.Select)
	case *sql.JoinRef:
		left, err := b.bindTableRef(r.Left)
		if err != nil {
			return nil, err
		}
		right, err := b.bindTableRef(r.Right)
		if err != nil {
			return nil, err
		}
		lc, rc, err := joinKeys(r.On, left.Schema(), right.Schema())
		if err != nil {
			return nil, err
		}
		return NewJoin(left, right, lc, rc)
	case *sql.PredictRef:
		child, err := b.bindTableRef(r.Data)
		if err != nil {
			return nil, err
		}
		model := r.ModelName
		if model == "" {
			v, ok := b.Vars[r.ModelVar]
			if !ok {
				if b.AllowParams {
					return nil, fmt.Errorf("plan: PREDICT model variable @%s must be DECLAREd at prepare time (the model determines the plan)", r.ModelVar)
				}
				return nil, fmt.Errorf("plan: variable @%s not declared", r.ModelVar)
			}
			model = v
		}
		return NewPredict(child, model, r.OutputCols), nil
	default:
		return nil, fmt.Errorf("plan: unsupported table reference %T", ref)
	}
}

// joinKeys extracts the equi-join columns from an ON expression of the form
// a.x = b.y, assigning sides by schema membership.
func joinKeys(on sql.Expr, left, right *types.Schema) (string, string, error) {
	be, ok := on.(*sql.BinaryE)
	if !ok || be.Op != "=" {
		return "", "", fmt.Errorf("plan: JOIN ON must be an equality, got %T", on)
	}
	lr, ok1 := be.L.(*sql.ColRef)
	rr, ok2 := be.R.(*sql.ColRef)
	if !ok1 || !ok2 {
		return "", "", fmt.Errorf("plan: JOIN ON must compare two columns")
	}
	if left.IndexOf(lr.Name) >= 0 && right.IndexOf(rr.Name) >= 0 {
		return lr.Name, rr.Name, nil
	}
	if left.IndexOf(rr.Name) >= 0 && right.IndexOf(lr.Name) >= 0 {
		return rr.Name, lr.Name, nil
	}
	return "", "", fmt.Errorf("plan: JOIN ON columns %q/%q not found on both sides", lr.Name, rr.Name)
}

// bindExpr lowers a parser expression against a schema.
func (b *Binder) bindExpr(e sql.Expr, s *types.Schema) (expr.Expr, error) {
	switch x := e.(type) {
	case *sql.ColRef:
		if s.IndexOf(x.Name) < 0 {
			return nil, fmt.Errorf("plan: column %q not found in %v", qual(x), s)
		}
		return &expr.Column{Name: x.Name}, nil
	case *sql.NumLit:
		if x.IsInt {
			return expr.IntLit(x.I), nil
		}
		return expr.FloatLit(x.F), nil
	case *sql.StrLit:
		return expr.StringLit(x.S), nil
	case *sql.BoolLitE:
		return expr.BoolLit(x.B), nil
	case *sql.VarRef:
		v, ok := b.Vars[x.Name]
		if !ok {
			if b.AllowParams {
				return &expr.Param{Name: x.Name}, nil
			}
			return nil, fmt.Errorf("plan: variable @%s not declared (DECLARE it, or use a prepared statement for execute-time parameters)", x.Name)
		}
		// DECLARE accepts only quoted strings, so session variables bind as
		// VARCHAR literals — '007' stays a string. Execute-time parameters
		// (the AllowParams path above) are the type-inferred surface.
		return expr.StringLit(v), nil
	case *sql.NotE:
		inner, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil
	case *sql.BinaryE:
		l, err := b.bindExpr(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.R, s)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("plan: unknown operator %q", x.Op)
		}
		be := expr.NewBinary(op, l, r)
		if _, err := be.Type(s); err != nil {
			return nil, err
		}
		return be, nil
	case *sql.CaseE:
		out := &expr.Case{}
		for _, w := range x.Whens {
			c, err := b.bindExpr(w.Cond, s)
			if err != nil {
				return nil, err
			}
			th, err := b.bindExpr(w.Then, s)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, expr.When{Cond: c, Then: th})
		}
		if x.Else == nil {
			return nil, fmt.Errorf("plan: CASE requires ELSE")
		}
		el, err := b.bindExpr(x.Else, s)
		if err != nil {
			return nil, err
		}
		out.Else = el
		if _, err := out.Type(s); err != nil {
			return nil, err
		}
		return out, nil
	case *sql.FuncE:
		return nil, fmt.Errorf("plan: aggregate %q outside aggregate context", x.Name)
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

var binOps = map[string]expr.BinOp{
	"+": expr.OpAdd, "-": expr.OpSub, "*": expr.OpMul, "/": expr.OpDiv,
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt, "<=": expr.OpLe,
	">": expr.OpGt, ">=": expr.OpGe, "AND": expr.OpAnd, "OR": expr.OpOr,
}

func bareName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func qual(c *sql.ColRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}
