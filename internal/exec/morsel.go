package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"raven/internal/expr"
	"raven/internal/storage"
	"raven/internal/types"
)

// DefaultMorselSize is the row count of one morsel — the unit of work a
// worker claims from a shared source. Larger than a batch so the claim
// (one atomic add) amortizes, small enough that GOMAXPROCS workers load-
// balance across a table even when per-row cost is skewed.
const DefaultMorselSize = 4 * types.DefaultBatchSize

// MorselSource hands out table fragments to exchange workers. NextMorsel
// must be safe for concurrent use and return dense sequence numbers
// 0,1,2,... in claim order so the exchange can merge results back into
// source order; a nil batch signals exhaustion.
type MorselSource interface {
	Open() error
	NextMorsel() (seq int, b *types.Batch, err error)
	Close() error
	Schema() *types.Schema
}

// TableMorselSource splits a storage.Table row range into fixed-size
// morsels claimed from a shared atomic cursor. Claims are contention-free
// (one Add per morsel) and scans are zero-copy column slices.
type TableMorselSource struct {
	Table *storage.Table
	// Cols projects a subset; nil scans all columns.
	Cols []string
	// Lo, Hi bound the row range; Hi==0 means the table end (snapshot at
	// Open).
	Lo, Hi int
	// MorselSize is rows per claim; 0 means DefaultMorselSize.
	MorselSize int

	schema *types.Schema
	colIdx []int
	cursor atomic.Int64
	end    int64
}

// NewTableMorselSource builds a morsel source over t, resolving the
// projection eagerly so Schema is available before Open.
func NewTableMorselSource(t *storage.Table, cols []string, morselSize int) (*TableMorselSource, error) {
	s := &TableMorselSource{Table: t, Cols: cols, MorselSize: morselSize}
	if cols == nil {
		s.schema = t.Schema()
	} else {
		s.colIdx = make([]int, len(cols))
		for i, c := range cols {
			j := t.Schema().IndexOf(c)
			if j < 0 {
				return nil, fmt.Errorf("exec: table %s has no column %q", t.Name, c)
			}
			s.colIdx[i] = j
		}
		s.schema = t.Schema().Project(s.colIdx)
	}
	return s, nil
}

// Schema implements MorselSource.
func (s *TableMorselSource) Schema() *types.Schema { return s.schema }

// Open implements MorselSource. It snapshots the table length so
// concurrent appends never tear the scan.
func (s *TableMorselSource) Open() error {
	if s.MorselSize <= 0 {
		s.MorselSize = DefaultMorselSize
	}
	end := s.Hi
	if end == 0 || end > s.Table.NumRows() {
		end = s.Table.NumRows()
	}
	s.end = int64(end)
	s.cursor.Store(int64(s.Lo))
	return nil
}

// NextMorsel implements MorselSource.
func (s *TableMorselSource) NextMorsel() (int, *types.Batch, error) {
	size := int64(s.MorselSize)
	lo := s.cursor.Add(size) - size
	if lo >= s.end {
		return 0, nil, nil
	}
	hi := lo + size
	if hi > s.end {
		hi = s.end
	}
	b, err := s.Table.ScanRange(int(lo), int(hi))
	if err != nil {
		return 0, nil, err
	}
	if s.colIdx != nil {
		b = b.Project(s.colIdx)
	}
	return int((lo - int64(s.Lo)) / size), b, nil
}

// Close implements MorselSource.
func (s *TableMorselSource) Close() error { return nil }

// stagedSource applies a stage chain to every morsel of an inner source.
// Pipeline breakers use it to take over an unopened Exchange's pipeline
// (source plus pushed stages) with their own workers: the stages run on
// whichever worker claimed the morsel, exactly as they would inside the
// exchange. A fully filtered morsel comes back as an empty (not nil)
// batch so the sequence stays dense and nil keeps meaning exhaustion.
type stagedSource struct {
	src    MorselSource
	stages []Stage
	schema *types.Schema
}

// Open implements MorselSource.
func (s *stagedSource) Open() error { return s.src.Open() }

// Close implements MorselSource.
func (s *stagedSource) Close() error { return s.src.Close() }

// Schema implements MorselSource.
func (s *stagedSource) Schema() *types.Schema { return s.schema }

// NextMorsel implements MorselSource.
func (s *stagedSource) NextMorsel() (int, *types.Batch, error) {
	seq, b, err := s.src.NextMorsel()
	if err != nil || b == nil {
		return seq, b, err
	}
	for _, st := range s.stages {
		b, err = st.Apply(b)
		if err != nil {
			return seq, nil, err
		}
		if b == nil || b.Len() == 0 {
			return seq, types.NewBatch(s.schema), nil
		}
	}
	return seq, b, nil
}

// StreamMorselSource adapts an operator's batch stream into a morsel
// source: each batch becomes one morsel, sequenced in stream order.
// Claims serialize on a mutex (the operator underneath is single-
// threaded), so this is how a fresh morsel pipeline opens above a
// pipeline breaker — the breaker's output streams through here into a
// new Exchange whose workers run the stages pushed above it.
type StreamMorselSource struct {
	Op Operator

	mu  sync.Mutex
	seq int
}

// Open implements MorselSource.
func (s *StreamMorselSource) Open() error {
	s.seq = 0
	return s.Op.Open()
}

// Close implements MorselSource.
func (s *StreamMorselSource) Close() error { return s.Op.Close() }

// Schema implements MorselSource.
func (s *StreamMorselSource) Schema() *types.Schema { return s.Op.Schema() }

// NextMorsel implements MorselSource.
func (s *StreamMorselSource) NextMorsel() (int, *types.Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.Op.Next()
	if err != nil || b == nil {
		return 0, nil, err
	}
	seq := s.seq
	s.seq++
	return seq, b, nil
}

// Stage is one per-morsel transformation inside an Exchange: the morsel-
// parallel counterparts of FilterOp/ProjectOp/PredictOp. OutSchema is
// called once (single-threaded, before Open) and may cache derived state;
// Apply runs on every worker concurrently and must not mutate the stage.
// A nil batch from Apply drops the morsel (all rows filtered out).
type Stage interface {
	OutSchema(in *types.Schema) (*types.Schema, error)
	Apply(b *types.Batch) (*types.Batch, error)
}

// selPool recycles row-selection buffers used by filters and join probes.
// Gather copies the selected rows, so a buffer can return to the pool as
// soon as the output batch is built.
var selPool = sync.Pool{New: func() any { return new([]int) }}

func getSel() *[]int { return selPool.Get().(*[]int) }

func putSel(p *[]int) { selPool.Put(p) }

// FilterStage drops rows whose predicate is false.
type FilterStage struct {
	Pred expr.Expr
}

// OutSchema implements Stage. It also binds the predicate's column
// ordinals against the input schema, so per-morsel evaluation skips name
// lookups (OutSchema runs single-threaded, before workers start).
func (s *FilterStage) OutSchema(in *types.Schema) (*types.Schema, error) {
	s.Pred = expr.Bind(s.Pred, in)
	return in, nil
}

// Apply implements Stage.
func (s *FilterStage) Apply(b *types.Batch) (*types.Batch, error) {
	mask, err := s.Pred.Eval(b)
	if err != nil {
		return nil, err
	}
	if mask.Type != types.Bool {
		return nil, fmt.Errorf("exec: filter predicate has type %v", mask.Type)
	}
	if mask.Const {
		// Constant predicate: the whole morsel passes or drops.
		keep := mask.BoolAt(0)
		expr.PutEvalResult(s.Pred, mask)
		if keep {
			return b, nil
		}
		return nil, nil
	}
	selp := getSel()
	sel := (*selp)[:0]
	for i, keep := range mask.Bools {
		if keep {
			sel = append(sel, i)
		}
	}
	expr.PutEvalResult(s.Pred, mask)
	var out *types.Batch
	switch {
	case len(sel) == 0:
		out = nil
	case len(sel) == b.Len():
		out = b
	default:
		out = b.Gather(sel)
	}
	*selp = sel
	putSel(selp)
	return out, nil
}

// ProjectStage computes expressions.
type ProjectStage struct {
	Exprs []expr.Expr
	Names []string

	out *types.Schema
}

// OutSchema implements Stage. Expressions are bound to the input schema
// here (single-threaded, before workers start).
func (s *ProjectStage) OutSchema(in *types.Schema) (*types.Schema, error) {
	cols := make([]types.Column, len(s.Exprs))
	// The expression slice is shared with the (possibly concurrently
	// compiling) plan, so binding builds a private slice.
	bound := make([]expr.Expr, len(s.Exprs))
	for i, e := range s.Exprs {
		t, err := e.Type(in)
		if err != nil {
			return nil, err
		}
		cols[i] = types.Column{Name: s.Names[i], Type: t}
		bound[i] = expr.Bind(e, in)
	}
	s.Exprs = bound
	s.out = types.NewSchema(cols...)
	return s.out, nil
}

// Apply implements Stage.
func (s *ProjectStage) Apply(b *types.Batch) (*types.Batch, error) {
	vecs := make([]*types.Vector, len(s.Exprs))
	for i, e := range s.Exprs {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		// The output batch escapes the expression layer: broadcast results
		// materialize (consumers index data slices directly) and pooled
		// intermediates are disowned so nothing downstream can recycle a
		// live column.
		if v.Const {
			d := v.Densify()
			expr.PutEvalResult(e, v)
			v = d
		}
		v.Disown()
		vecs[i] = v
	}
	return &types.Batch{Schema: s.out, Vecs: vecs}, nil
}

// PredictStage appends model output columns to each morsel. The Predictor
// is shared by all workers and must be safe for concurrent PredictBatch
// calls (all predictors in this repo are).
type PredictStage struct {
	Predictor  Predictor
	OutputCols []types.Column

	out *types.Schema
}

// OutSchema implements Stage.
func (s *PredictStage) OutSchema(in *types.Schema) (*types.Schema, error) {
	s.out = in.Concat(types.NewSchema(s.OutputCols...))
	return s.out, nil
}

// Apply implements Stage.
func (s *PredictStage) Apply(b *types.Batch) (*types.Batch, error) {
	outs, err := s.Predictor.PredictBatch(b)
	if err != nil {
		return nil, err
	}
	return appendPredictions(b, outs, len(s.OutputCols), s.out)
}

// appendPredictions validates the predictor's output arity and appends the
// output vectors to b's columns under schema — shared by PredictStage and
// the serial PredictOp so the two paths cannot drift.
func appendPredictions(b *types.Batch, outs []*types.Vector, want int, schema *types.Schema) (*types.Batch, error) {
	if len(outs) != want {
		return nil, fmt.Errorf("exec: predictor returned %d columns, declared %d", len(outs), want)
	}
	vecs := make([]*types.Vector, 0, len(b.Vecs)+len(outs))
	vecs = append(vecs, b.Vecs...)
	vecs = append(vecs, outs...)
	return &types.Batch{Schema: schema, Vecs: vecs}, nil
}

// Exchange is the generic parallel exchange operator: DOP workers claim
// morsels from a shared source, run the stage chain on each, and a
// consumer-side reorder buffer merges results back into source order — so
// a parallel plan returns exactly the rows, in exactly the order, the
// serial plan would. Workers never coordinate beyond the claim and the
// result channel; per-row work (filter, project, predict) scales with
// GOMAXPROCS.
type Exchange struct {
	Source MorselSource
	Stages []Stage
	// DOP is the worker count; 0 means GOMAXPROCS.
	DOP int
	// Ctx cancels the exchange: workers stop claiming morsels and the
	// consumer returns Ctx.Err() as soon as it observes cancellation. Nil
	// means not cancellable.
	Ctx context.Context
	// Tuner, when set, receives per-morsel service-time observations so
	// later queries size their morsels adaptively.
	Tuner *Tuner

	schema  *types.Schema
	opened  bool
	results chan morselResult
	cancel  chan struct{}
	window  chan struct{}
	pending map[int]*types.Batch
	next    int
	failed  error
}

// windowPerWorker bounds how many morsels may be claimed but not yet
// consumed, per worker. The consumer must drain the results channel while
// waiting for the next in-order morsel (refusing would deadlock the worker
// holding it), so without a claim-time bound one stalled worker would let
// the others materialize the whole table into the reorder buffer.
const windowPerWorker = 4

type morselResult struct {
	seq int
	b   *types.Batch
	err error
}

// NewExchange builds an exchange over src with no stages yet.
func NewExchange(src MorselSource, dop int) *Exchange {
	return &Exchange{Source: src, DOP: dop, schema: src.Schema()}
}

// Push appends a stage to the chain. Stages can only be added before the
// first Open; compilation uses this to grow one morsel pipeline instead of
// nesting operators.
func (e *Exchange) Push(s Stage) error {
	if e.opened {
		return fmt.Errorf("exec: cannot push a stage onto an opened exchange")
	}
	out, err := s.OutSchema(e.schema)
	if err != nil {
		return err
	}
	e.Stages = append(e.Stages, s)
	e.schema = out
	return nil
}

// PushableExchange returns parts[0] as an Exchange that still accepts
// stages. Compilation calls this to decide between extending the morsel
// pipeline and wrapping a serial operator around it.
func PushableExchange(parts []Operator) (*Exchange, bool) {
	if len(parts) != 1 {
		return nil, false
	}
	ex, ok := parts[0].(*Exchange)
	if !ok || ex.opened {
		return nil, false
	}
	return ex, true
}

// Schema implements Operator.
func (e *Exchange) Schema() *types.Schema { return e.schema }

func (e *Exchange) dop() int {
	if e.DOP <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.DOP
}

// Open implements Operator.
func (e *Exchange) Open() error {
	e.opened = true
	if err := e.Source.Open(); err != nil {
		return err
	}
	dop := e.dop()
	e.results = make(chan morselResult, dop*2)
	e.cancel = make(chan struct{})
	e.window = make(chan struct{}, dop*windowPerWorker)
	for i := 0; i < cap(e.window); i++ {
		e.window <- struct{}{}
	}
	e.pending = make(map[int]*types.Batch)
	e.next = 0
	e.failed = nil
	// Workers receive the channels as locals so Close can safely reset the
	// fields without racing reads inside still-draining goroutines.
	results, cancel, window := e.results, e.cancel, e.window
	var wg sync.WaitGroup
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.work(results, cancel, window)
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	return nil
}

// work is one worker's loop: take a window token, claim a morsel, run the
// stages, report. Tokens come back as the consumer advances, keeping the
// claimed-but-unconsumed span (and so the reorder buffer) bounded. A
// cancelled context stops the loop between morsels; the first worker to
// notice reports ctx.Err() so the consumer fails even if it is blocked on
// the results channel.
func (e *Exchange) work(results chan morselResult, cancel chan struct{}, window chan struct{}) {
	var done <-chan struct{}
	if e.Ctx != nil {
		done = e.Ctx.Done()
	}
	send := func(m morselResult) bool {
		select {
		case results <- m:
			return true
		case <-cancel:
			return false
		}
	}
	for {
		select {
		case <-window:
		case <-cancel:
			return
		case <-done:
			send(morselResult{err: e.Ctx.Err()})
			return
		}
		if err := ctxErr(e.Ctx); err != nil {
			send(morselResult{err: err})
			return
		}
		seq, b, err := e.Source.NextMorsel()
		if err != nil {
			send(morselResult{seq: seq, err: err})
			return
		}
		if b == nil {
			return
		}
		rows := b.Len()
		var start time.Time
		if e.Tuner != nil {
			start = time.Now()
		}
		for _, st := range e.Stages {
			b, err = st.Apply(b)
			if err != nil {
				send(morselResult{seq: seq, err: err})
				return
			}
			if b == nil || b.Len() == 0 {
				b = nil
				break
			}
		}
		if e.Tuner != nil {
			e.Tuner.ObserveMorsel(rows, time.Since(start))
		}
		if !send(morselResult{seq: seq, b: b}) {
			return
		}
	}
}

// Next implements Operator. It emits batches in morsel sequence order,
// stashing out-of-order arrivals; dropped morsels (fully filtered) are
// recorded as nil so the sequence stays dense. The first worker error is
// latched: re-polling after a failure keeps failing instead of skipping
// the dead morsel and passing off a truncated result as end-of-stream.
func (e *Exchange) Next() (*types.Batch, error) {
	if e.failed != nil {
		return nil, e.failed
	}
	if err := ctxErr(e.Ctx); err != nil {
		e.failed = err
		return nil, err
	}
	for {
		if b, ok := e.pending[e.next]; ok {
			delete(e.pending, e.next)
			e.next++
			// Consuming a seq frees one claim slot for the workers. The
			// non-blocking send guards the post-error path where a claimed
			// morsel's token was already lost with its worker.
			select {
			case e.window <- struct{}{}:
			default:
			}
			if b != nil {
				return b, nil
			}
			continue
		}
		var m morselResult
		var ok bool
		if e.Ctx != nil {
			select {
			case m, ok = <-e.results:
			case <-e.Ctx.Done():
				e.failed = e.Ctx.Err()
				return nil, e.failed
			}
		} else {
			m, ok = <-e.results
		}
		if !ok {
			// Workers are done: everything claimed has been delivered, so
			// any remaining pending entries are ahead of gaps that will
			// never fill only if a worker died on error — which was
			// returned already. Drain what is left in order.
			if len(e.pending) == 0 {
				return nil, nil
			}
			e.drainPending()
			continue
		}
		if m.err != nil {
			e.failed = m.err
			return nil, m.err
		}
		e.pending[m.seq] = m.b
	}
}

// drainPending advances next past any gap once the stream is complete.
func (e *Exchange) drainPending() {
	for {
		if _, ok := e.pending[e.next]; ok {
			return
		}
		e.next++
	}
}

// Close implements Operator.
func (e *Exchange) Close() error {
	if e.cancel != nil {
		close(e.cancel)
		e.cancel = nil
	}
	if e.results != nil {
		// drain so workers unblock and exit
		for range e.results {
		}
		e.results = nil
	}
	e.pending = nil
	return e.Source.Close()
}
