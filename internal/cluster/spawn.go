package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"raven"
	"raven/internal/server"
)

// Replica is one in-process ravenserved instance on a loopback port:
// the unit the smoke test, the failure-mode tests and the ClusterServe
// bench compose clusters from. A production cluster runs the same
// server as separate processes; everything above the listener is
// identical.
type Replica struct {
	Name string
	Base string // http://127.0.0.1:port
	DB   *raven.DB
	Srv  *server.Server

	l        net.Listener
	serveErr chan error
}

// SpawnReplica opens a raven.DB with opts, wraps it in a server with
// srvOpts, and serves it on a fresh loopback port.
func SpawnReplica(name string, srvOpts server.Options, opts ...raven.Option) (*Replica, error) {
	return SpawnReplicaOn(name, "127.0.0.1:0", srvOpts, opts...)
}

// SpawnReplicaOn is SpawnReplica on a fixed address — restart tests use
// it to bring a "new process" back up where the old one died, so the
// router's member (keyed by base URL) sees a catalog-version regression
// instead of a new member.
func SpawnReplicaOn(name, addr string, srvOpts server.Options, opts ...raven.Option) (*Replica, error) {
	db, err := raven.Open(opts...)
	if err != nil {
		return nil, fmt.Errorf("replica %s: %w", name, err)
	}
	srv := server.New(db, srvOpts)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replica %s: %w", name, err)
	}
	r := &Replica{
		Name:     name,
		Base:     "http://" + l.Addr().String(),
		DB:       db,
		Srv:      srv,
		l:        l,
		serveErr: make(chan error, 1),
	}
	go func() { r.serveErr <- srv.Serve(l) }()
	return r, nil
}

// Close drains the replica gracefully (two-phase if its DrainGrace is
// set, which drains the engine too) and waits for the serve loop.
func (r *Replica) Close(ctx context.Context) error {
	err := r.Srv.Shutdown(ctx)
	if serr := <-r.serveErr; serr != nil && serr != http.ErrServerClosed && err == nil {
		err = serr
	}
	return err
}

// Kill drops the replica without draining, the way a crash would: the
// listener and every active connection close immediately, cutting
// in-flight responses mid-stream. The router sees transport failures.
func (r *Replica) Kill() {
	r.Srv.Abort()
	<-r.serveErr
}

// Addr returns the replica's host:port (for SpawnReplicaOn restarts).
func (r *Replica) Addr() string { return r.l.Addr().String() }
