package pgwire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"raven"
	"raven/internal/server/reqopt"
	"raven/internal/server/stmtreg"
	"raven/internal/sql"
	"raven/internal/types"
)

// conn is one backend: a single pg session over one TCP connection.
// All protocol state (statements, portals, error recovery) is owned by
// the connection goroutine; only the cancel hook and the stats gauges
// are touched cross-goroutine.
type conn struct {
	srv *Server
	nc  net.Conn
	r   *bufio.Reader
	w   *bufio.Writer
	buf writeBuf

	pid    uint32
	secret uint32
	owner  string // stmtreg owner key: statements die with the conn

	// ctx is the connection's lifetime context; closing the conn cancels
	// every query started under it.
	ctx       context.Context
	cancelCtx context.CancelFunc
	closeOnce sync.Once

	// sessOpts is the ctx layer of the reqopt resolution order for this
	// session: tenant from the startup database/user params, knobs from
	// the startup options string.
	sessOpts reqopt.Options

	// stmts/portals are the extended-protocol namespaces. SELECT-ish
	// statements live in the shared registry (regID); side-effect
	// scripts keep their rewritten SQL locally (execSQL) since the
	// engine prepare surface must not mutate.
	stmts   map[string]*preparedStmt
	portals map[string]*portal
	errored bool // extended-protocol error: skip until Sync

	nStmts   atomic.Int32
	nPortals atomic.Int32
	active   atomic.Int32 // queries in flight (0 or 1)

	cancelMu  sync.Mutex
	curCancel context.CancelFunc
}

// maxSessionStmts/maxSessionPortals bound the per-connection named
// namespaces. Side-effect statements bypass the capped shared registry
// (their SQL lives locally) and portals are purely local, so without
// these an unauthenticated client could grow server memory without
// bound by Parsing/Binding under ever-new names.
const (
	maxSessionStmts   = 4096
	maxSessionPortals = 4096
)

// preparedStmt is one named (or unnamed) statement in this session.
type preparedStmt struct {
	regID   string // shared-registry id; "" for side-effect scripts
	execSQL string // side-effect script text; "" for SELECTs
	nParams int
	sql     string // rewritten text (for tags and errors)
}

// portal is one bound statement ready to Execute.
type portal struct {
	ps     *preparedStmt
	params []raven.Param
}

func (s *Server) serveConn(nc net.Conn) {
	// Defense in depth: a handler bug on one malformed frame must cost
	// that connection, not the process. teardown is deferred below this,
	// so it still runs (LIFO) before the panic is swallowed here.
	defer func() {
		if r := recover(); r != nil {
			nc.Close()
		}
	}()
	c := &conn{
		srv:     s,
		nc:      nc,
		r:       bufio.NewReaderSize(nc, 8<<10),
		w:       bufio.NewWriterSize(nc, 16<<10),
		stmts:   make(map[string]*preparedStmt),
		portals: make(map[string]*portal),
	}
	c.ctx, c.cancelCtx = context.WithCancel(context.Background())
	defer c.teardown()
	if !c.startup() {
		return
	}
	c.mainLoop()
}

func (c *conn) teardown() {
	c.close()
	if c.pid != 0 {
		c.srv.unregister(c)
	}
	if c.owner != "" {
		c.srv.reg.RemoveOwner(c.owner)
	}
}

// close severs the connection: cancels the lifetime context (stopping
// any in-flight query) and closes the socket. Idempotent and safe from
// any goroutine (Shutdown calls it).
func (c *conn) close() {
	c.closeOnce.Do(func() {
		c.cancelCtx()
		c.nc.Close()
	})
}

func (c *conn) queryActive() bool { return c.active.Load() > 0 }

func (c *conn) objectCounts() (portals, stmts int) {
	return int(c.nPortals.Load()), int(c.nStmts.Load())
}

// cancelCurrent fires the in-flight query's cancel func (CancelRequest
// delivery). Returns whether a query was actually running.
func (c *conn) cancelCurrent() bool {
	c.cancelMu.Lock()
	cancel := c.curCancel
	c.cancelMu.Unlock()
	if cancel != nil {
		cancel()
		return true
	}
	return false
}

func (c *conn) setCancel(f context.CancelFunc) {
	c.cancelMu.Lock()
	c.curCancel = f
	c.cancelMu.Unlock()
}

// ---- startup ----

// startup runs the negotiation loop (SSL/GSS refusals, CancelRequest
// dispatch, the v3 StartupMessage), maps the startup params onto the
// session's request-option layer, and completes trust auth. Returns
// false when the connection should be dropped without a main loop.
func (c *conn) startup() bool {
	for {
		body, err := readStartup(c.r)
		if err != nil {
			return false
		}
		m := &msgReader{b: body}
		code, err := m.uint32()
		if err != nil {
			return false
		}
		switch code {
		case sslRequest, gssEncRequest:
			// No TLS/GSS; 'N' tells the client to continue in the clear.
			if _, err := c.nc.Write([]byte{'N'}); err != nil {
				return false
			}
			continue
		case cancelRequest:
			pid, err1 := m.uint32()
			secret, err2 := m.uint32()
			if err1 == nil && err2 == nil {
				c.srv.cancel(pid, secret)
			}
			return false // cancel connections carry nothing else
		case protoVersion3:
			params, err := parseStartupParams(m.b)
			if err != nil {
				return false
			}
			return c.finishStartup(params)
		default:
			c.startupError(reqopt.SQLStateNotSupported, fmt.Sprintf("unsupported protocol version %d", code))
			return false
		}
	}
}

func (c *conn) finishStartup(params map[string]string) bool {
	if c.srv.draining.Load() {
		c.startupError(reqopt.SQLStateAdminShutdown, "server is draining")
		return false
	}
	sess, err := sessionOptions(params, c.srv.opts.DefaultTenant)
	if err != nil {
		c.startupError(reqopt.SQLStateSyntaxError, err.Error())
		return false
	}
	c.sessOpts = sess
	if !c.srv.register(c) {
		c.startupError(reqopt.SQLStateAdminShutdown, "server is shutting down")
		return false
	}
	c.owner = fmt.Sprintf("pg:%d", c.pid)

	// Trust auth: AuthenticationOk straight away, then the parameter
	// statuses a driver expects before it will talk, the cancellation
	// identity, and ReadyForQuery.
	c.buf.start(msgAuth)
	c.buf.int32(0)
	c.buf.finish(c.w)
	for _, kv := range [][2]string{
		{"server_version", "13.0 (raven)"},
		{"server_encoding", "UTF8"},
		{"client_encoding", "UTF8"},
		{"DateStyle", "ISO, MDY"},
		{"integer_datetimes", "on"},
		{"standard_conforming_strings", "on"},
		{"is_superuser", "off"},
		{"session_authorization", params["user"]},
		{"application_name", params["application_name"]},
	} {
		c.buf.start(msgParameterStatus)
		c.buf.cstring(kv[0])
		c.buf.cstring(kv[1])
		c.buf.finish(c.w)
	}
	c.buf.start(msgBackendKeyData)
	c.buf.uint32(c.pid)
	c.buf.uint32(c.secret)
	c.buf.finish(c.w)
	return c.readyForQuery()
}

// sessionOptions maps pg startup parameters onto the session's reqopt
// layer. The tenant mapping: the database the client asked for names
// the tenant, except the conventional default database names ("raven",
// "postgres", "") which fall back to the user — so `psql -d tenantB`
// bills tenantB, while a plain `psql -U alice` (psql defaults the
// database to the user name) bills alice. The startup "options" string
// carries the remaining knobs as -c raven.* pairs.
func sessionOptions(params map[string]string, defaultTenant string) (reqopt.Options, error) {
	kv, err := parseOptionsString(params["options"])
	if err != nil {
		return reqopt.Options{}, err
	}
	o, err := reqopt.FromSessionParams(kv)
	if err != nil {
		return reqopt.Options{}, err
	}
	tenant := params["database"]
	if tenant == "" || tenant == "raven" || tenant == "postgres" {
		tenant = params["user"]
	}
	if tenant == "" {
		tenant = defaultTenant
	}
	o.Tenant = tenant
	return o, nil
}

// parseOptionsString splits a startup options value — a command-line
// fragment like "-c raven.priority=5 -c raven.dop=2" (PGOPTIONS) —
// into key=value pairs. --key=value is accepted too.
func parseOptionsString(s string) (map[string]string, error) {
	kv := make(map[string]string)
	fields := strings.Fields(s)
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		var pair string
		switch {
		case f == "-c":
			i++
			if i >= len(fields) {
				return nil, errors.New("startup options: -c without key=value")
			}
			pair = fields[i]
		case strings.HasPrefix(f, "-c"):
			pair = f[2:]
		case strings.HasPrefix(f, "--"):
			pair = f[2:]
		default:
			return nil, fmt.Errorf("startup options: unsupported argument %q", f)
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("startup options: want key=value, got %q", pair)
		}
		kv[k] = v
	}
	return kv, nil
}

// startupError sends an ErrorResponse before auth completed (no
// ReadyForQuery follows — the connection dies).
func (c *conn) startupError(code, msg string) {
	c.writeErrorMsg(code, msg)
	c.w.Flush()
}

// ---- main loop ----

func (c *conn) mainLoop() {
	for {
		typ, payload, err := readMessage(c.r)
		if err != nil {
			return
		}
		// Extended-protocol error recovery: after an error, everything up
		// to the next Sync is skipped (the client's pipelined messages
		// must not run against a broken sequence).
		if c.errored && typ != msgSync && typ != msgTerminate {
			continue
		}
		m := &msgReader{b: payload}
		ok := true
		switch typ {
		case msgQuery:
			c.srv.stats.msgQuery.Add(1)
			s, err := m.cstring()
			if err != nil {
				ok = c.protoError(err)
			} else {
				ok = c.handleSimple(s)
			}
		case msgParse:
			c.srv.stats.msgParse.Add(1)
			ok = c.handleParse(m)
		case msgBind:
			c.srv.stats.msgBind.Add(1)
			ok = c.handleBind(m)
		case msgDescribe:
			c.srv.stats.msgDescribe.Add(1)
			ok = c.handleDescribe(m)
		case msgExecute:
			c.srv.stats.msgExecute.Add(1)
			ok = c.handleExecute(m)
		case msgClose:
			c.srv.stats.msgClose.Add(1)
			ok = c.handleCloseMsg(m)
		case msgSync:
			c.srv.stats.msgSync.Add(1)
			c.errored = false
			ok = c.readyForQuery()
		case msgFlush:
			c.srv.stats.msgOther.Add(1)
			ok = c.w.Flush() == nil
		case msgTerminate:
			c.srv.stats.msgOther.Add(1)
			return
		default:
			c.srv.stats.msgOther.Add(1)
			ok = c.extError(reqopt.SQLStateProtocolViolation,
				fmt.Sprintf("unsupported frontend message %q", typ))
		}
		if !ok {
			return
		}
	}
}

// protoError reports a malformed frame and poisons the sequence.
func (c *conn) protoError(err error) bool {
	return c.extError(reqopt.SQLStateProtocolViolation, err.Error())
}

// extError sends an ErrorResponse inside the extended protocol and
// arms skip-until-Sync.
func (c *conn) extError(code, msg string) bool {
	c.errored = true
	if !c.sendError(code, msg) {
		return false
	}
	return c.w.Flush() == nil
}

// queryError maps an engine error through the shared table and sends it
// (extended-protocol variant arms skip-until-Sync via the caller).
func (c *conn) engineError(err error) bool {
	return c.sendError(reqopt.SQLState(err), err.Error())
}

func (c *conn) sendError(code, msg string) bool {
	c.srv.stats.errorsSent.Add(1)
	return c.writeErrorMsg(code, msg)
}

func (c *conn) writeErrorMsg(code, msg string) bool {
	c.buf.start(msgErrorResponse)
	c.buf.byte('S')
	c.buf.cstring("ERROR")
	c.buf.byte('V')
	c.buf.cstring("ERROR")
	c.buf.byte('C')
	c.buf.cstring(code)
	c.buf.byte('M')
	c.buf.cstring(msg)
	c.buf.byte(0)
	return c.buf.finish(c.w) == nil
}

func (c *conn) readyForQuery() bool {
	c.buf.start(msgReadyForQuery)
	c.buf.byte('I') // no transactions: always idle
	if c.buf.finish(c.w) != nil {
		return false
	}
	return c.w.Flush() == nil
}

// resolved builds the session's effective options: ctx layer (startup
// params) > per-statement layer (stmt, may be zero) > server default.
func (c *conn) resolved(stmt reqopt.Options) reqopt.Options {
	return reqopt.Resolve(
		c.sessOpts,
		stmt,
		reqopt.Options{Timeout: c.srv.opts.DefaultTimeout},
	).Clamp()
}

// queryCtx derives one query's context — session lifetime bounded by
// the resolved timeout — and registers its cancel hook for
// CancelRequest delivery. Callers must defer done().
func (c *conn) queryCtx(ro reqopt.Options) (ctx context.Context, done func()) {
	qctx, cancel := ro.WithTimeout(c.ctx)
	c.setCancel(cancel)
	c.active.Add(1)
	return qctx, func() {
		c.setCancel(nil)
		cancel()
		c.active.Add(-1)
	}
}

// ---- simple query ----

// shimTag recognizes the session-management statements tools send that
// the engine has no use for (SET, transaction control). They are
// acknowledged as no-ops with their conventional tags so psql scripts
// and BI-tool session setup run; anything else returns "".
func shimTag(script string) string {
	s := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(script), ";"))
	up := strings.ToUpper(s)
	switch {
	case up == "BEGIN" || strings.HasPrefix(up, "BEGIN "):
		return "BEGIN"
	case up == "COMMIT" || up == "END":
		return "COMMIT"
	case up == "ROLLBACK":
		return "ROLLBACK"
	case strings.HasPrefix(up, "SET "):
		return "SET"
	case strings.HasPrefix(up, "RESET "):
		return "RESET"
	}
	return ""
}

func (c *conn) handleSimple(script string) bool {
	if strings.TrimSpace(script) == "" {
		c.buf.start(msgEmptyQueryResp)
		if c.buf.finish(c.w) != nil {
			return false
		}
		return c.readyForQuery()
	}
	if tag := shimTag(script); tag != "" {
		return c.commandComplete(tag) && c.readyForQuery()
	}
	if c.srv.draining.Load() {
		c.engineError(raven.ErrDraining)
		return c.readyForQuery()
	}
	ro := c.resolved(reqopt.Options{})
	ctx, done := c.queryCtx(ro)
	defer done()
	c.srv.stats.queries.Add(1)
	if !reqopt.MayHaveSelect(script) {
		if err := c.srv.db.ExecContext(ro.Context(ctx), script); err != nil {
			c.engineError(err)
			return c.readyForQuery()
		}
		return c.commandComplete(commandTag(script)) && c.readyForQuery()
	}
	opts := raven.DefaultQueryOptions()
	ro.Apply(&opts)
	rows, err := c.srv.db.QueryContextWithOptions(ro.Context(ctx), script, opts)
	if err != nil {
		c.engineError(err)
		return c.readyForQuery()
	}
	n, ok := c.streamRows(rows, true)
	if !ok {
		// Transport died mid-stream; nothing more to say.
		return false
	}
	if n >= 0 {
		if !c.commandComplete("SELECT " + strconv.Itoa(n)) {
			return false
		}
	}
	return c.readyForQuery()
}

// commandTag derives the CommandComplete tag for a side-effect script
// from its last statement (one tag per simple-query script — the
// engine runs the script atomically enough that per-statement tags
// would claim structure it doesn't have). The script already executed,
// so the parse cannot fail; any oddity falls back to a generic tag.
func commandTag(script string) string {
	stmts, err := sql.ParseScript(script)
	if err != nil || len(stmts) == 0 {
		return "OK"
	}
	switch x := stmts[len(stmts)-1].(type) {
	case *sql.CreateTableStmt:
		return "CREATE TABLE"
	case *sql.DropTableStmt:
		return "DROP TABLE"
	case *sql.InsertStmt:
		return fmt.Sprintf("INSERT 0 %d", len(x.Rows))
	case *sql.DeclareStmt:
		return "DECLARE"
	default:
		return "OK"
	}
}

func (c *conn) commandComplete(tag string) bool {
	c.buf.start(msgCommandComplete)
	c.buf.cstring(tag)
	return c.buf.finish(c.w) == nil
}

// streamRows sends the result: RowDescription (simple query only —
// extended-protocol clients got theirs from Describe), DataRows, and
// returns the row count. A query error mid-stream is reported as an
// ErrorResponse (n = -1: the caller must skip CommandComplete); a
// transport error returns ok = false.
func (c *conn) streamRows(rows *raven.Rows, withDescription bool) (n int, ok bool) {
	defer rows.Close()
	sch := rows.Schema()
	if withDescription {
		if !c.writeRowDescription(sch) {
			return 0, false
		}
	}
	vals := make([]any, sch.Len())
	ptrs := make([]any, sch.Len())
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return -1, c.engineError(err)
		}
		if !c.writeDataRow(vals) {
			return 0, false
		}
		n++
	}
	if err := rows.Err(); err != nil {
		// Status already on the wire (rows may have streamed); the error
		// travels as a trailer, exactly like the NDJSON error line.
		return -1, c.engineError(err)
	}
	return n, true
}

func (c *conn) writeRowDescription(sch *types.Schema) bool {
	c.buf.start(msgRowDescription)
	c.buf.int16(sch.Len())
	for _, col := range sch.Columns {
		oid, typlen := oidFor(col.Type)
		c.buf.cstring(col.Name)
		c.buf.int32(0) // table OID
		c.buf.int16(0) // column attr number
		c.buf.uint32(oid)
		c.buf.int16(int(typlen))
		c.buf.int32(-1) // typmod
		c.buf.int16(0)  // text format
	}
	return c.buf.finish(c.w) == nil
}

func (c *conn) writeDataRow(vals []any) bool {
	c.buf.start(msgDataRow)
	c.buf.int16(len(vals))
	for _, v := range vals {
		if v == nil {
			c.buf.int32(-1)
			continue
		}
		var s string
		switch x := v.(type) {
		case int64:
			s = strconv.FormatInt(x, 10)
		case float64:
			s = strconv.FormatFloat(x, 'g', -1, 64)
		case bool:
			if x {
				s = "t"
			} else {
				s = "f"
			}
		case string:
			s = x
		default:
			s = fmt.Sprintf("%v", x)
		}
		c.buf.int32(len(s))
		c.buf.bytes([]byte(s))
	}
	return c.buf.finish(c.w) == nil
}

// ---- extended protocol ----

// rewritePlaceholders turns pg's positional $1..$n placeholders into
// the engine's named @p1..@pn parameters. The scan skips everything the
// pg lexer would not treat as a parameter: single-quoted literals,
// double-quoted identifiers, line (--) and block (/* */, nesting)
// comments, and dollar-quoted strings. A placeholder glued to an
// identifier ("$1abc") is rejected like postgres rejects it. Returns
// the rewritten text and the parameter count (the highest $n
// referenced — pg semantics, where $2 alone implies two parameters).
func rewritePlaceholders(q string) (string, int, error) {
	var sb strings.Builder
	sb.Grow(len(q) + 8)
	maxN := 0
	for i := 0; i < len(q); {
		ch := q[i]
		switch {
		case ch == '\'' || ch == '"':
			// Quoted literal/identifier: copy verbatim through the closing
			// quote (doubled quotes stay inside).
			j := i + 1
			for j < len(q) {
				if q[j] == ch {
					if j+1 < len(q) && q[j+1] == ch {
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			sb.WriteString(q[i:j])
			i = j
		case ch == '-' && i+1 < len(q) && q[i+1] == '-':
			// Line comment: verbatim through end of line.
			j := i + 2
			for j < len(q) && q[j] != '\n' {
				j++
			}
			sb.WriteString(q[i:j])
			i = j
		case ch == '/' && i+1 < len(q) && q[i+1] == '*':
			// Block comment, nesting per the SQL standard.
			depth := 1
			j := i + 2
			for j < len(q) && depth > 0 {
				switch {
				case j+1 < len(q) && q[j] == '/' && q[j+1] == '*':
					depth++
					j += 2
				case j+1 < len(q) && q[j] == '*' && q[j+1] == '/':
					depth--
					j += 2
				default:
					j++
				}
			}
			sb.WriteString(q[i:j])
			i = j
		case ch == '$' && i+1 < len(q) && isDigit(q[i+1]):
			j := i + 1
			for j < len(q) && isDigit(q[j]) {
				j++
			}
			if j < len(q) && isIdentStart(q[j]) {
				return "", 0, fmt.Errorf("bad parameter placeholder %q", q[i:j+1])
			}
			n, err := strconv.Atoi(q[i+1 : j])
			if err != nil || n < 1 {
				return "", 0, fmt.Errorf("bad parameter placeholder %q", q[i:j])
			}
			if n > maxN {
				maxN = n
			}
			sb.WriteString("@p")
			sb.WriteString(q[i+1 : j])
			i = j
		case ch == '$':
			if end, ok := dollarQuoteEnd(q, i); ok {
				sb.WriteString(q[i:end])
				i = end
				continue
			}
			sb.WriteByte(ch)
			i++
		default:
			sb.WriteByte(ch)
			i++
		}
	}
	return sb.String(), maxN, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isIdentStart matches the pg lexer's ident_start class (letters,
// underscore, any high-bit byte).
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

// dollarQuoteEnd reports whether q[i] opens a dollar-quoted string
// ($$..$$ or $tag$..$tag$) and returns the index just past its closing
// delimiter. An unterminated opener swallows the rest of the text —
// the engine parser reports the real syntax error.
func dollarQuoteEnd(q string, i int) (int, bool) {
	j := i + 1
	for j < len(q) && (isIdentStart(q[j]) || isDigit(q[j])) {
		j++
	}
	if j >= len(q) || q[j] != '$' {
		return 0, false
	}
	tag := q[i : j+1]
	rest := strings.Index(q[j+1:], tag)
	if rest < 0 {
		return len(q), true
	}
	return j + 1 + rest + len(tag), true
}

func (c *conn) handleParse(m *msgReader) bool {
	name, err1 := m.cstring()
	q, err2 := m.cstring()
	nOids, err3 := m.int16()
	if err1 != nil || err2 != nil || err3 != nil || nOids < 0 {
		return c.protoError(errShortMessage)
	}
	for i := 0; i < nOids; i++ {
		// Declared parameter OIDs are accepted and ignored: every value
		// arrives in text format and binds through the engine's inference
		// typing, exactly like @var params over HTTP.
		if _, err := m.uint32(); err != nil {
			return c.protoError(err)
		}
	}
	if _, exists := c.stmts[name]; !exists && len(c.stmts) >= maxSessionStmts {
		return c.extError(reqopt.SQLStateTooManyConns,
			fmt.Sprintf("too many prepared statements on this connection (limit %d); close some", maxSessionStmts))
	}
	if c.srv.draining.Load() {
		c.errored = true
		c.engineError(raven.ErrDraining)
		return c.w.Flush() == nil
	}
	rw, nParams, err := rewritePlaceholders(q)
	if err != nil {
		return c.extError(reqopt.SQLStateSyntaxError, err.Error())
	}
	ps := &preparedStmt{nParams: nParams, sql: rw}
	if tag := shimTag(q); tag != "" {
		// Session-management shims parse to a no-op statement so drivers
		// that prepare their SETs still work.
		ps = &preparedStmt{sql: q, execSQL: "\x00shim:" + tag}
	} else if reqopt.MayHaveSelect(rw) {
		if c.srv.reg.Full() {
			c.errored = true
			c.engineError(reqopt.ErrStmtLimit)
			return c.w.Flush() == nil
		}
		ro := c.resolved(reqopt.Options{})
		ctx, done := c.queryCtx(ro)
		opts := raven.DefaultQueryOptions()
		ro.Apply(&opts)
		st, err := c.srv.db.PrepareContextWithOptions(ro.Context(ctx), rw, opts)
		done()
		if err != nil {
			c.errored = true
			c.engineError(err)
			return c.w.Flush() == nil
		}
		id, err := c.srv.reg.Register(c.owner, &stmtreg.Entry{
			Stmt: st,
			Opts: reqopt.Options{Tenant: ro.Tenant, Priority: ro.Priority},
		})
		if err != nil {
			c.errored = true
			c.engineError(err)
			return c.w.Flush() == nil
		}
		ps.regID = id
	} else {
		if nParams > 0 {
			return c.extError(reqopt.SQLStateNotSupported,
				"parameters are only supported in SELECT/PREDICT statements (INSERT/DDL take literals)")
		}
		ps.execSQL = rw
	}
	c.dropStmt(name)
	c.stmts[name] = ps
	c.nStmts.Add(1)
	c.buf.start(msgParseComplete)
	return c.buf.finish(c.w) == nil
}

// dropStmt removes a named statement (re-Parse overwrites; Close
// removes), returning its registry entry too.
func (c *conn) dropStmt(name string) {
	if old, ok := c.stmts[name]; ok {
		if old.regID != "" {
			c.srv.reg.Remove(old.regID)
		}
		delete(c.stmts, name)
		c.nStmts.Add(-1)
	}
}

func (c *conn) dropPortal(name string) {
	if _, ok := c.portals[name]; ok {
		delete(c.portals, name)
		c.nPortals.Add(-1)
	}
}

func (c *conn) handleBind(m *msgReader) bool {
	portalName, err1 := m.cstring()
	stmtName, err2 := m.cstring()
	nFmt, err3 := m.int16()
	if err1 != nil || err2 != nil || err3 != nil || nFmt < 0 {
		return c.protoError(errShortMessage)
	}
	formats := make([]int, nFmt)
	for i := range formats {
		f, err := m.int16()
		if err != nil {
			return c.protoError(err)
		}
		formats[i] = f
	}
	nVals, err := m.int16()
	if err != nil || nVals < 0 {
		return c.protoError(errShortMessage)
	}
	vals := make([][]byte, nVals)
	nulls := make([]bool, nVals)
	for i := range vals {
		ln, err := m.int32()
		if err != nil {
			return c.protoError(err)
		}
		if ln == -1 {
			nulls[i] = true
			continue
		}
		v, err := m.bytes(ln)
		if err != nil {
			return c.protoError(err)
		}
		vals[i] = v
	}
	nResFmt, err := m.int16()
	if err != nil || nResFmt < 0 {
		return c.protoError(errShortMessage)
	}
	for i := 0; i < nResFmt; i++ {
		f, err := m.int16()
		if err != nil {
			return c.protoError(err)
		}
		if f != 0 {
			return c.extError(reqopt.SQLStateNotSupported, "binary result format is not supported (text only)")
		}
	}
	for _, f := range formats {
		if f != 0 {
			return c.extError(reqopt.SQLStateNotSupported, "binary parameter format is not supported (text only)")
		}
	}
	ps, ok := c.stmts[stmtName]
	if !ok {
		return c.extError(reqopt.SQLStateInvalidStmtName,
			fmt.Sprintf("prepared statement %q does not exist", stmtName))
	}
	if _, exists := c.portals[portalName]; !exists && len(c.portals) >= maxSessionPortals {
		return c.extError(reqopt.SQLStateTooManyConns,
			fmt.Sprintf("too many portals on this connection (limit %d); close some", maxSessionPortals))
	}
	if nVals != ps.nParams {
		return c.extError(reqopt.SQLStateProtocolViolation,
			fmt.Sprintf("bind message supplies %d parameters, but prepared statement %q requires %d",
				nVals, stmtName, ps.nParams))
	}
	params := make([]raven.Param, 0, nVals)
	for i, v := range vals {
		if nulls[i] {
			return c.extError(reqopt.SQLStateNotSupported, "NULL parameters are not supported")
		}
		params = append(params, raven.P("p"+strconv.Itoa(i+1), string(v)))
	}
	c.dropPortal(portalName)
	c.portals[portalName] = &portal{ps: ps, params: params}
	c.nPortals.Add(1)
	c.buf.start(msgBindComplete)
	return c.buf.finish(c.w) == nil
}

func (c *conn) handleDescribe(m *msgReader) bool {
	kind, err1 := m.byte()
	name, err2 := m.cstring()
	if err1 != nil || err2 != nil {
		return c.protoError(errShortMessage)
	}
	switch kind {
	case 'S':
		ps, ok := c.stmts[name]
		if !ok {
			return c.extError(reqopt.SQLStateInvalidStmtName,
				fmt.Sprintf("prepared statement %q does not exist", name))
		}
		c.buf.start(msgParamDescription)
		c.buf.int16(ps.nParams)
		for i := 0; i < ps.nParams; i++ {
			c.buf.uint32(oidText)
		}
		if c.buf.finish(c.w) != nil {
			return false
		}
		return c.describeResult(ps)
	case 'P':
		p, ok := c.portals[name]
		if !ok {
			return c.extError(reqopt.SQLStateInvalidPortal,
				fmt.Sprintf("portal %q does not exist", name))
		}
		return c.describeResult(p.ps)
	default:
		return c.extError(reqopt.SQLStateProtocolViolation,
			fmt.Sprintf("bad Describe kind %q", kind))
	}
}

// describeResult answers RowDescription (SELECTs, via the statement's
// lowered-but-unopened schema) or NoData (side-effect statements).
func (c *conn) describeResult(ps *preparedStmt) bool {
	if ps.regID == "" {
		c.buf.start(msgNoData)
		return c.buf.finish(c.w) == nil
	}
	e, err := c.srv.reg.Get(ps.regID)
	if err != nil {
		return c.extError(reqopt.SQLState(err), err.Error())
	}
	sch, err := e.Stmt.ResultSchema(c.ctx)
	if err != nil {
		c.errored = true
		c.engineError(err)
		return c.w.Flush() == nil
	}
	return c.writeRowDescription(sch)
}

func (c *conn) handleExecute(m *msgReader) bool {
	portalName, err1 := m.cstring()
	_, err2 := m.int32() // row limit: the whole result always streams
	if err1 != nil || err2 != nil {
		return c.protoError(errShortMessage)
	}
	p, ok := c.portals[portalName]
	if !ok {
		return c.extError(reqopt.SQLStateInvalidPortal,
			fmt.Sprintf("portal %q does not exist", portalName))
	}
	if strings.HasPrefix(p.ps.execSQL, "\x00shim:") {
		return c.commandComplete(strings.TrimPrefix(p.ps.execSQL, "\x00shim:"))
	}
	if c.srv.draining.Load() {
		c.errored = true
		c.engineError(raven.ErrDraining)
		return c.w.Flush() == nil
	}
	c.srv.stats.queries.Add(1)
	if p.ps.execSQL != "" {
		ro := c.resolved(reqopt.Options{})
		ctx, done := c.queryCtx(ro)
		err := c.srv.db.ExecContext(ro.Context(ctx), p.ps.execSQL)
		done()
		if err != nil {
			c.errored = true
			c.engineError(err)
			return c.w.Flush() == nil
		}
		return c.commandComplete(commandTag(p.ps.execSQL))
	}
	e, err := c.srv.reg.Get(p.ps.regID)
	if err != nil {
		return c.extError(reqopt.SQLState(err), err.Error())
	}
	// Per-statement layer under the session layer: the registered
	// tenant/priority hold unless the session overrides them — the same
	// resolution the HTTP prepared path runs.
	ro := c.resolved(e.Opts)
	ctx, done := c.queryCtx(ro)
	defer done()
	rows, err := e.Stmt.QueryContext(ro.Context(ctx), p.params...)
	if err != nil {
		c.errored = true
		c.engineError(err)
		return c.w.Flush() == nil
	}
	n, ok := c.streamRows(rows, false)
	if !ok {
		return false
	}
	if n < 0 {
		c.errored = true
		return c.w.Flush() == nil
	}
	return c.commandComplete("SELECT " + strconv.Itoa(n))
}

func (c *conn) handleCloseMsg(m *msgReader) bool {
	kind, err1 := m.byte()
	name, err2 := m.cstring()
	if err1 != nil || err2 != nil {
		return c.protoError(errShortMessage)
	}
	switch kind {
	case 'S':
		c.dropStmt(name)
	case 'P':
		c.dropPortal(name)
	default:
		return c.extError(reqopt.SQLStateProtocolViolation,
			fmt.Sprintf("bad Close kind %q", kind))
	}
	// Closing a nonexistent object is not an error (pg semantics).
	c.buf.start(msgCloseComplete)
	return c.buf.finish(c.w) == nil
}
