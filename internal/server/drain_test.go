package server

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"raven"
	"raven/internal/ml"
)

// TestLameDuckDrainPhase pins the two-phase drain contract the cluster
// router depends on: after BeginDrain, /healthz advertises draining
// (503) while the query paths still accept and answer — the window in
// which a probing router re-routes with zero queries refused.
func TestLameDuckDrainPhase(t *testing.T) {
	db := hospitalDB(t, 200, 2, raven.WithMaxConcurrentQueries(2))
	c, srv, _ := startServer(t, db, Options{})

	srv.BeginDrain()

	h, err := c.Health(context.Background())
	if status(err) != http.StatusServiceUnavailable || h == nil || h.Status != "draining" {
		t.Fatalf("healthz in lame-duck = %+v, %v; want 503 draining", h, err)
	}
	// Queries still run: that is the whole point of the phase.
	res, err := c.Query(QueryRequest{SQL: "SELECT COUNT(*) AS n FROM patient_info"})
	if err != nil {
		t.Fatalf("query during lame-duck refused: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("lame-duck query returned %d rows", len(res.Rows))
	}
	if !srv.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
}

// TestShutdownHonorsDrainGrace: Shutdown spends the grace window in
// lame-duck (healthz 503, queries accepted) before cutting admission.
func TestShutdownHonorsDrainGrace(t *testing.T) {
	db := hospitalDB(t, 200, 2, raven.WithMaxConcurrentQueries(2))
	c, srv, _ := startServer(t, db, Options{DrainGrace: 400 * time.Millisecond})

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// Inside the grace window: advertised draining, still serving.
	deadline := time.Now().Add(300 * time.Millisecond)
	sawLameDuck := false
	for time.Now().Before(deadline) {
		h, _ := c.Health(context.Background())
		if h != nil && h.Status == "draining" {
			if _, qerr := c.Query(QueryRequest{SQL: "SELECT COUNT(*) AS n FROM patient_info"}); qerr == nil {
				sawLameDuck = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawLameDuck {
		t.Fatal("never observed the lame-duck window (healthz draining + queries accepted)")
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Fully drained now: queries refused.
	if _, err := c.Query(QueryRequest{SQL: "SELECT COUNT(*) AS n FROM patient_info"}); err == nil {
		t.Fatal("query accepted after full drain")
	}
}

// TestStoreModelOverWire: POST /model round-trips a serialized pipeline
// and the stored model serves PREDICT queries; garbage blobs are 400.
func TestStoreModelOverWire(t *testing.T) {
	db := hospitalDB(t, 200, 2, raven.WithMaxConcurrentQueries(2))
	c, _, _ := startServer(t, db, Options{})
	ctx := context.Background()

	// Re-store the existing model under a new name, over the wire.
	p, err := db.LoadModel("duration_of_stay")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ml.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	v0, err := c.CatalogVersion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StoreModel(ctx, ModelRequest{Name: "dup_model", Data: blob}); err != nil {
		t.Fatalf("store model: %v", err)
	}
	v1, err := c.CatalogVersion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v1 <= v0 {
		t.Fatalf("catalog version did not bump across model store: %d -> %d", v0, v1)
	}
	q := `SELECT d.id, p.score FROM PREDICT(MODEL='dup_model',
		DATA=(SELECT * FROM patient_info AS pi
		      JOIN blood_tests AS bt ON pi.id = bt.id
		      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (score FLOAT) AS p WHERE d.age > 40`
	if _, err := c.Query(QueryRequest{SQL: q}); err != nil {
		t.Fatalf("predict with wire-stored model: %v", err)
	}

	// A garbage blob must be rejected before it reaches the catalog.
	err = c.StoreModel(ctx, ModelRequest{Name: "bad", Data: []byte("not a pipeline")})
	if status(err) != http.StatusBadRequest {
		t.Fatalf("garbage model blob: %v, want 400", err)
	}
}

// TestRetryPolicy pins the shared backoff helper's contract.
func TestRetryPolicy(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}

	// Backoff windows double and cap; jitter stays inside the window.
	for n, wantMax := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond} {
		for i := 0; i < 50; i++ {
			if d := p.Backoff(n); d <= 0 || d > wantMax {
				t.Fatalf("Backoff(%d) = %v, want in (0, %v]", n, d, wantMax)
			}
		}
	}

	// Retries transient failures up to MaxAttempts.
	calls := 0
	err := p.Do(context.Background(), nil, func() error {
		calls++
		return &HTTPError{Status: http.StatusServiceUnavailable, Msg: "draining"}
	})
	if calls != 4 || status(err) != http.StatusServiceUnavailable {
		t.Fatalf("transient: %d calls, err %v; want 4 calls, 503", calls, err)
	}

	// Terminal errors stop immediately.
	calls = 0
	err = p.Do(context.Background(), nil, func() error {
		calls++
		return &HTTPError{Status: http.StatusBadRequest, Msg: "bad sql"}
	})
	if calls != 1 || status(err) != http.StatusBadRequest {
		t.Fatalf("terminal: %d calls, err %v; want 1 call, 400", calls, err)
	}

	// Success after a retry returns nil.
	calls = 0
	err = p.Do(context.Background(), nil, func() error {
		calls++
		if calls < 3 {
			return errors.New("connection refused")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("recover: %d calls, err %v", calls, err)
	}

	// Context expiry interrupts the backoff sleep instead of waiting it
	// out (the sleep here would otherwise be an hour).
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	slow := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	start := time.Now()
	err = slow.Do(ctx, nil, func() error { return errors.New("transport") })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired backoff: %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff slept past the context deadline")
	}

	// Classifier: retryable vs terminal.
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{&HTTPError{Status: 503}, true},
		{&HTTPError{Status: 429}, true},
		{&HTTPError{Status: 400}, false},
		{&HTTPError{Status: 404}, false},
		{errors.New("dial tcp: connection refused"), true},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Fatalf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
