package expr

import (
	"math"
	"testing"

	"raven/internal/types"
)

func testBatch(t *testing.T) *types.Batch {
	t.Helper()
	s := types.NewSchema(
		types.Column{Name: "age", Type: types.Float},
		types.Column{Name: "pregnant", Type: types.Int},
		types.Column{Name: "name", Type: types.String},
		types.Column{Name: "ok", Type: types.Bool},
	)
	b := types.NewBatch(s)
	rows := []struct {
		age      float64
		pregnant int64
		name     string
		ok       bool
	}{
		{30, 1, "ann", true},
		{40, 0, "bob", false},
		{35, 1, "cat", true},
	}
	for _, r := range rows {
		if err := b.AppendRow(r.age, r.pregnant, r.name, r.ok); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestColumnEvalAndQualified(t *testing.T) {
	b := testBatch(t)
	v, err := (&Column{Name: "age"}).Eval(b)
	if err != nil || v.Floats[1] != 40 {
		t.Fatalf("col eval: %v %v", v, err)
	}
	v2, err := (&Column{Name: "d.age"}).Eval(b)
	if err != nil || v2.Floats[0] != 30 {
		t.Fatalf("qualified col eval: %v %v", v2, err)
	}
	if _, err := (&Column{Name: "zzz"}).Eval(b); err == nil {
		t.Error("missing column should fail")
	}
	dt, err := (&Column{Name: "p.pregnant"}).Type(b.Schema)
	if err != nil || dt != types.Int {
		t.Errorf("qualified Type = %v, %v", dt, err)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	b := testBatch(t)
	// age > 35 AND pregnant = 1 -> only nobody; age >= 35 AND pregnant = 1 -> row 2
	e := NewBinary(OpAnd,
		NewBinary(OpGe, &Column{Name: "age"}, FloatLit(35)),
		NewBinary(OpEq, &Column{Name: "pregnant"}, IntLit(1)))
	v, err := e.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true}
	for i, w := range want {
		if v.Bools[i] != w {
			t.Errorf("row %d = %v, want %v", i, v.Bools[i], w)
		}
	}
	dt, err := e.Type(b.Schema)
	if err != nil || dt != types.Bool {
		t.Errorf("Type = %v, %v", dt, err)
	}
}

func TestMixedIntFloatComparison(t *testing.T) {
	b := testBatch(t)
	v, err := NewBinary(OpLt, &Column{Name: "pregnant"}, FloatLit(0.5)).Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Bools[0] || !v.Bools[1] {
		t.Errorf("int-vs-float compare = %v", v.Bools)
	}
}

func TestStringComparison(t *testing.T) {
	b := testBatch(t)
	v, err := NewBinary(OpEq, &Column{Name: "name"}, StringLit("bob")).Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Bools[0] || !v.Bools[1] || v.Bools[2] {
		t.Errorf("string eq = %v", v.Bools)
	}
	if _, err := NewBinary(OpEq, &Column{Name: "name"}, IntLit(1)).Eval(b); err == nil {
		t.Error("string vs int compare should fail")
	}
	if _, err := NewBinary(OpAdd, &Column{Name: "name"}, IntLit(1)).Eval(b); err == nil {
		t.Error("string arithmetic should fail")
	}
}

func TestArithmetic(t *testing.T) {
	b := testBatch(t)
	v, err := NewBinary(OpMul, &Column{Name: "age"}, FloatLit(2)).Eval(b)
	if err != nil || v.Floats[0] != 60 {
		t.Fatalf("mul: %v %v", v, err)
	}
	// int+int stays int
	v2, err := NewBinary(OpAdd, &Column{Name: "pregnant"}, IntLit(10)).Eval(b)
	if err != nil || v2.Type != types.Int || v2.Ints[0] != 11 {
		t.Fatalf("int add: %v %v", v2, err)
	}
	// int/int becomes float
	v3, err := NewBinary(OpDiv, IntLit(1), IntLit(2)).Eval(b)
	if err != nil || v3.Type != types.Float || v3.Floats[0] != 0.5 {
		t.Fatalf("div: %v %v", v3, err)
	}
}

func TestNot(t *testing.T) {
	b := testBatch(t)
	v, err := (&Not{E: &Column{Name: "ok"}}).Eval(b)
	if err != nil || v.Bools[0] || !v.Bools[1] {
		t.Fatalf("not: %v %v", v, err)
	}
	if _, err := (&Not{E: &Column{Name: "age"}}).Eval(b); err == nil {
		t.Error("NOT over float should fail")
	}
}

func TestCase(t *testing.T) {
	b := testBatch(t)
	// CASE WHEN age <= 32 THEN 1 WHEN age <= 37 THEN 2 ELSE 3 END
	e := &Case{
		Whens: []When{
			{Cond: NewBinary(OpLe, &Column{Name: "age"}, FloatLit(32)), Then: FloatLit(1)},
			{Cond: NewBinary(OpLe, &Column{Name: "age"}, FloatLit(37)), Then: FloatLit(2)},
		},
		Else: FloatLit(3),
	}
	v, err := e.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 2}
	for i, w := range want {
		if v.Floats[i] != w {
			t.Errorf("case row %d = %v, want %v", i, v.Floats[i], w)
		}
	}
	if s := e.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestConjunctsAndAnd(t *testing.T) {
	a := NewBinary(OpGt, &Column{Name: "x"}, IntLit(1))
	b := NewBinary(OpLt, &Column{Name: "y"}, IntLit(2))
	c := NewBinary(OpEq, &Column{Name: "z"}, IntLit(3))
	e := NewBinary(OpAnd, NewBinary(OpAnd, a, b), c)
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d", len(cs))
	}
	re := And(cs)
	if re.String() != e.String() {
		t.Errorf("And(Conjuncts) = %s, want %s", re, e)
	}
	if And(nil) != nil {
		t.Error("And(nil) should be nil")
	}
}

func TestColumns(t *testing.T) {
	e := NewBinary(OpAnd,
		NewBinary(OpGt, &Column{Name: "d.Age"}, IntLit(1)),
		NewBinary(OpEq, &Column{Name: "pregnant"}, &Column{Name: "age"}))
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != "age" || cols[1] != "pregnant" {
		t.Errorf("Columns = %v", cols)
	}
}

func TestSimplify(t *testing.T) {
	// (1 + 2) * 3 -> 9
	e := NewBinary(OpMul, NewBinary(OpAdd, IntLit(1), IntLit(2)), IntLit(3))
	s := Simplify(e)
	if l, ok := s.(*Literal); !ok || l.I != 9 {
		t.Errorf("Simplify = %v", s)
	}
	// TRUE AND x -> x
	x := NewBinary(OpGt, &Column{Name: "x"}, IntLit(0))
	if got := Simplify(NewBinary(OpAnd, BoolLit(true), x)); got.String() != x.String() {
		t.Errorf("TRUE AND x = %v", got)
	}
	// FALSE AND x -> FALSE
	if got := Simplify(NewBinary(OpAnd, x, BoolLit(false))); got.String() != "FALSE" {
		t.Errorf("x AND FALSE = %v", got)
	}
	// x OR TRUE -> TRUE
	if got := Simplify(NewBinary(OpOr, x, BoolLit(true))); got.String() != "TRUE" {
		t.Errorf("x OR TRUE = %v", got)
	}
	// NOT TRUE -> FALSE
	if got := Simplify(&Not{E: BoolLit(true)}); got.String() != "FALSE" {
		t.Errorf("NOT TRUE = %v", got)
	}
	// 3 > 2 -> TRUE
	if got := Simplify(NewBinary(OpGt, IntLit(3), IntLit(2))); got.String() != "TRUE" {
		t.Errorf("3 > 2 = %v", got)
	}
	// division by zero literal left unfolded
	if got := Simplify(NewBinary(OpDiv, IntLit(1), IntLit(0))); got.String() == "" {
		t.Error("div-by-zero must not fold")
	}
}

func TestSimplifyCase(t *testing.T) {
	x := NewBinary(OpGt, &Column{Name: "x"}, IntLit(0))
	// CASE WHEN FALSE THEN 1 WHEN x THEN 2 ELSE 3 -> CASE WHEN x THEN 2 ELSE 3
	c := &Case{
		Whens: []When{
			{Cond: BoolLit(false), Then: IntLit(1)},
			{Cond: x, Then: IntLit(2)},
		},
		Else: IntLit(3),
	}
	s := Simplify(c).(*Case)
	if len(s.Whens) != 1 {
		t.Errorf("false arm not dropped: %v", s)
	}
	// CASE WHEN TRUE THEN 1 ELSE 2 -> 1
	c2 := &Case{Whens: []When{{Cond: BoolLit(true), Then: IntLit(1)}}, Else: IntLit(2)}
	if got := Simplify(c2); got.String() != "1" {
		t.Errorf("always-true case = %v", got)
	}
	// all arms false -> ELSE
	c3 := &Case{Whens: []When{{Cond: BoolLit(false), Then: IntLit(1)}}, Else: IntLit(2)}
	if got := Simplify(c3); got.String() != "2" {
		t.Errorf("all-false case = %v", got)
	}
}

func TestDeriveRanges(t *testing.T) {
	// pregnant = 1 AND age > 35 AND age <= 60 AND 100 >= bp
	e := And([]Expr{
		NewBinary(OpEq, &Column{Name: "d.pregnant"}, IntLit(1)),
		NewBinary(OpGt, &Column{Name: "age"}, FloatLit(35)),
		NewBinary(OpLe, &Column{Name: "age"}, FloatLit(60)),
		NewBinary(OpGe, FloatLit(100), &Column{Name: "bp"}),
	})
	r := DeriveRanges(e)
	if p := r["pregnant"]; p.Lo != 1 || p.Hi != 1 {
		t.Errorf("pregnant range = %+v", p)
	}
	if a := r["age"]; !(a.Lo > 35) || a.Hi != 60 {
		t.Errorf("age range = %+v", a)
	}
	if bp := r["bp"]; bp.Hi != 100 || !math.IsInf(bp.Lo, -1) {
		t.Errorf("bp range = %+v (flipped comparison)", bp)
	}
	// contradictory ranges become empty
	e2 := And([]Expr{
		NewBinary(OpGt, &Column{Name: "x"}, FloatLit(10)),
		NewBinary(OpLt, &Column{Name: "x"}, FloatLit(5)),
	})
	if r2 := DeriveRanges(e2); !r2["x"].Empty() {
		t.Errorf("contradiction not empty: %+v", r2["x"])
	}
}

func TestDeriveEqualities(t *testing.T) {
	e := And([]Expr{
		NewBinary(OpEq, &Column{Name: "dest"}, StringLit("SFO")),
		NewBinary(OpEq, IntLit(1), &Column{Name: "pregnant"}),
		NewBinary(OpGt, &Column{Name: "age"}, IntLit(3)), // not equality
	})
	eq := DeriveEqualities(e)
	if eq["dest"] != "SFO" {
		t.Errorf("dest = %v", eq["dest"])
	}
	if eq["pregnant"] != 1.0 {
		t.Errorf("pregnant = %v", eq["pregnant"])
	}
	if _, ok := eq["age"]; ok {
		t.Error("inequality must not appear")
	}
}

func TestLiteralString(t *testing.T) {
	if FloatLit(1.5).String() != "1.5" || IntLit(3).String() != "3" ||
		BoolLit(true).String() != "TRUE" || StringLit("a").String() != "'a'" {
		t.Error("literal String()")
	}
}
