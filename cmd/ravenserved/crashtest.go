package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"raven/internal/ml"
	"raven/internal/server"
	"raven/internal/train"
)

// runCrashTest is the `make smoke-durable` CI gate: it proves, against
// real processes and a real kill -9, that every write acknowledged over
// HTTP survives a crash. The parent spawns a child ravenserved with
// -data-dir on a scratch directory and -fsync always, loads a table and
// a model through the wire protocol, records query fingerprints,
// SIGKILLs the child mid-flight, restarts it on the same directory, and
// requires the recovered server to answer byte-identical results.
func runCrashTest() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	dir, err := os.MkdirTemp("", "raven-crashtest-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	c := &server.Client{Base: "http://" + addr, Timeout: 15 * time.Second}

	child, err := spawnServed(addr, dir)
	if err != nil {
		return err
	}
	defer child.kill()
	if err := waitHealthy(ctx, c, child); err != nil {
		return fmt.Errorf("first start: %w", err)
	}

	// Load a table over the wire in several INSERT statements. With
	// -segment-rows 128 the earlier batches seal into on-disk segments
	// while the last ones stay in the WAL-backed tail, so recovery has
	// to stitch both together.
	if err := c.ExecContext(ctx, "CREATE TABLE crash_pts (id INT, x FLOAT, y FLOAT)"); err != nil {
		return fmt.Errorf("create table: %w", err)
	}
	const rows = 1000
	const chunk = 250
	for lo := 0; lo < rows; lo += chunk {
		var ins strings.Builder
		ins.WriteString("INSERT INTO crash_pts VALUES ")
		for i := lo; i < lo+chunk; i++ {
			if i > lo {
				ins.WriteString(", ")
			}
			fmt.Fprintf(&ins, "(%d, %g, %g)", i, float64(i)*0.5, float64(i%7))
		}
		if err := c.ExecContext(ctx, ins.String()); err != nil {
			return fmt.Errorf("insert rows [%d,%d): %w", lo, lo+chunk, err)
		}
	}

	// A model stored through the wire must also survive: model-store
	// transactions are WAL-logged like any other write.
	const n = 64
	feats := make([]float64, 0, n*2)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := float64(i)*0.5, float64(i%7)
		feats = append(feats, x0, x1)
		ys[i] = x0 + 2*x1
	}
	xs, err := ml.NewMatrix(feats, n, 2)
	if err != nil {
		return err
	}
	pipe := &ml.Pipeline{
		Final:        train.FitTree(xs, ys, train.TreeOptions{MaxDepth: 4, MinLeaf: 4}),
		InputColumns: []string{"x", "y"},
	}
	blob, err := ml.Marshal(pipe)
	if err != nil {
		return err
	}
	if err := c.StoreModel(ctx, server.ModelRequest{Name: "crash_model", Data: blob}); err != nil {
		return fmt.Errorf("store model: %w", err)
	}

	// One last acknowledged write right before the kill: the newest WAL
	// tail, written after every other record class, must replay too.
	if err := c.ExecContext(ctx, fmt.Sprintf("INSERT INTO crash_pts VALUES (%d, %g, %g)", rows, float64(rows)*0.5, float64(rows%7))); err != nil {
		return fmt.Errorf("final insert: %w", err)
	}

	queries := []string{
		"SELECT COUNT(*) AS n FROM crash_pts",
		"SELECT id, x, y FROM crash_pts WHERE id >= 120 AND id < 140",
		`SELECT d.id, p.score FROM PREDICT(MODEL='crash_model',
			DATA=(SELECT * FROM crash_pts) AS d) WITH (score FLOAT) AS p WHERE d.id < 16`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := c.QueryContext(ctx, server.QueryRequest{SQL: q})
		if err != nil {
			return fmt.Errorf("pre-crash query %d: %w", i, err)
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("pre-crash query %d returned no rows", i)
		}
		want[i] = res.Fingerprint()
	}

	// Crash: SIGKILL, no drain, no checkpoint — the WAL tail is all
	// that stands between the acknowledged writes and oblivion.
	child.kill()

	restarted, err := spawnServed(addr, dir)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer restarted.kill()
	if err := waitHealthy(ctx, c, restarted); err != nil {
		return fmt.Errorf("restart after kill -9: %w", err)
	}

	for i, q := range queries {
		res, err := c.QueryContext(ctx, server.QueryRequest{SQL: q})
		if err != nil {
			return fmt.Errorf("post-crash query %d: %w", i, err)
		}
		if got := res.Fingerprint(); got != want[i] {
			return fmt.Errorf("post-crash query %d diverged from pre-crash result:\nwant:\n%s\ngot:\n%s", i, want[i], got)
		}
	}

	// The recovered server must report its durable state: attached
	// segments, sealed rows, and a measured recovery.
	st, err := c.StatsContext(ctx)
	if err != nil {
		return fmt.Errorf("post-crash stats: %w", err)
	}
	sg := st.Engine.Storage
	switch {
	case sg == nil:
		return fmt.Errorf("post-crash stats: no storage section (engine not durable?)")
	case sg.Segments == 0 || sg.SealedRows == 0:
		return fmt.Errorf("post-crash stats: no sealed segments (segments=%d sealed_rows=%d)", sg.Segments, sg.SealedRows)
	}

	// Graceful stop checkpoints; a third start must replay an empty log
	// and still agree (recovery is idempotent).
	if err := restarted.terminate(15 * time.Second); err != nil {
		return fmt.Errorf("graceful stop: %w", err)
	}
	again, err := spawnServed(addr, dir)
	if err != nil {
		return fmt.Errorf("third start: %w", err)
	}
	defer again.kill()
	if err := waitHealthy(ctx, c, again); err != nil {
		return fmt.Errorf("start after checkpoint: %w", err)
	}
	res, err := c.QueryContext(ctx, server.QueryRequest{SQL: queries[0]})
	if err != nil {
		return fmt.Errorf("post-checkpoint query: %w", err)
	}
	if got := res.Fingerprint(); got != want[0] {
		return fmt.Errorf("post-checkpoint count diverged: want %q got %q", want[0], got)
	}
	return again.terminate(15 * time.Second)
}

// servedChild is one spawned ravenserved process under test.
type servedChild struct {
	cmd  *exec.Cmd
	out  *bytes.Buffer
	done chan error
}

// spawnServed starts this same binary as a durable server on addr.
func spawnServed(addr, dir string) (*servedChild, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe,
		"-addr", addr,
		"-data-dir", dir,
		"-fsync", "always",
		"-segment-rows", "128",
		"-preload=false",
		"-parallelism", "1",
		"-drain-grace", "0s",
	)
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	ch := &servedChild{cmd: cmd, out: out, done: make(chan error, 1)}
	go func() { ch.done <- cmd.Wait() }()
	return ch, nil
}

// kill SIGKILLs the child and reaps it; safe to call twice.
func (ch *servedChild) kill() {
	select {
	case err := <-ch.done:
		ch.done <- err // already exited; keep reusable
		return
	default:
	}
	ch.cmd.Process.Kill()
	err := <-ch.done
	ch.done <- err
}

// terminate drains the child with SIGTERM and waits for a clean exit —
// the path that ends in a checkpoint.
func (ch *servedChild) terminate(timeout time.Duration) error {
	if err := ch.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-ch.done:
		ch.done <- err
		if err != nil {
			return fmt.Errorf("%w\nchild output:\n%s", err, ch.out.String())
		}
		return nil
	case <-time.After(timeout):
		ch.kill()
		return fmt.Errorf("child did not drain within %v\nchild output:\n%s", timeout, ch.out.String())
	}
}

// waitHealthy polls /healthz until the child answers, failing fast if
// the child process dies first (e.g. a recovery error before listen).
func waitHealthy(ctx context.Context, c *server.Client, ch *servedChild) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-ch.done:
			ch.done <- err
			return fmt.Errorf("child exited early (%v)\nchild output:\n%s", err, ch.out.String())
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if st, err := c.Health(ctx); err == nil && st != nil && st.Status == "ok" {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server not healthy within 30s\nchild output:\n%s", ch.out.String())
}

// freeAddr grabs a loopback port the kernel considers free right now.
// The listener is closed before the child binds it — a tiny race that a
// smoke test on a loopback interface can live with.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}
