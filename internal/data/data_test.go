package data

import (
	"testing"

	"raven/internal/storage"
	"raven/internal/train"
)

func TestGenHospitalShape(t *testing.T) {
	cat := storage.NewCatalog()
	h, err := GenHospital(cat, 1000, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"patient_info", "blood_tests", "prenatal_tests"} {
		tb, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tb.NumRows() != 1000 {
			t.Errorf("%s rows = %d", name, tb.NumRows())
		}
		if !cat.IsUniqueKey(name, "id") {
			t.Errorf("%s missing unique key", name)
		}
	}
	if h.TrainX.Rows != 500 || h.TrainX.Cols != len(HospitalFeatureCols) {
		t.Errorf("train shape = %dx%d", h.TrainX.Rows, h.TrainX.Cols)
	}
	// invariants: pregnant implies female, fetal_hr nonzero iff pregnant
	pi, _ := cat.Table("patient_info")
	pt, _ := cat.Table("prenatal_tests")
	pib, _ := pi.Scan()
	ptb, _ := pt.Scan()
	for i := 0; i < pib.Len(); i++ {
		preg := pib.Col("pregnant").Ints[i]
		gender := pib.Col("gender").Ints[i]
		hr := ptb.Col("fetal_hr").Floats[i]
		if preg == 1 && gender != 1 {
			t.Fatal("pregnant male generated")
		}
		if (preg == 1) != (hr > 0) {
			t.Fatal("fetal_hr inconsistent with pregnancy")
		}
	}
	// labels have both classes
	ones := 0
	for _, y := range h.TrainY {
		if y == 1 {
			ones++
		}
	}
	if ones == 0 || ones == len(h.TrainY) {
		t.Errorf("degenerate labels: %d/%d", ones, len(h.TrainY))
	}
}

func TestGenHospitalDeterministic(t *testing.T) {
	c1, c2 := storage.NewCatalog(), storage.NewCatalog()
	h1, err := GenHospital(c1, 100, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := GenHospital(c2, 100, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.TrainX.Data {
		if h1.TrainX.Data[i] != h2.TrainX.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	t1, _ := c1.Table("patient_info")
	t2, _ := c2.Table("patient_info")
	b1, _ := t1.Scan()
	b2, _ := t2.Scan()
	for i := 0; i < b1.Len(); i++ {
		if b1.Col("age").Floats[i] != b2.Col("age").Floats[i] {
			t.Fatal("same seed produced different tables")
		}
	}
}

func TestGenFlightsWideSparsitySignal(t *testing.T) {
	cat := storage.NewCatalog()
	fl, err := GenFlightsWide(cat, 2000, 50, 6, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := cat.Table("flights_features")
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2000 || tb.Schema().Len() != 51 {
		t.Errorf("table shape = %d rows %d cols", tb.NumRows(), tb.Schema().Len())
	}
	if len(fl.SignalFeatures) != 6 {
		t.Errorf("signal features = %v", fl.SignalFeatures)
	}
	// L1 training must recover sparsity: most non-signal weights zero.
	lr := train.FitLogReg(fl.TrainX, fl.TrainY, train.LogRegOptions{L1: 0.03, Epochs: 80, Seed: 1})
	if lr.Sparsity() < 0.4 {
		t.Errorf("trained sparsity = %v, want >= 0.4", lr.Sparsity())
	}
	scores, err := lr.Predict(fl.TrainX)
	if err != nil {
		t.Fatal(err)
	}
	if auc := train.AUC(scores, fl.TrainY); auc < 0.75 {
		t.Errorf("AUC = %v, want >= 0.75", auc)
	}
}

func TestGenFlightsWideValidation(t *testing.T) {
	cat := storage.NewCatalog()
	if _, err := GenFlightsWide(cat, 10, 5, 9, 10, 1); err == nil {
		t.Error("nSignal > d should fail")
	}
}

func TestGenFlightsCategorical(t *testing.T) {
	cat := storage.NewCatalog()
	fl, err := GenFlightsCategorical(cat, 1000, 10, 4, 800, 13)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := cat.Table("flights")
	if err != nil {
		t.Fatal(err)
	}
	st, err := tb.Stats("dest")
	if err != nil {
		t.Fatal(err)
	}
	if st.DistinctCount != 10 {
		t.Errorf("dest distinct = %d", st.DistinctCount)
	}
	if len(fl.FeatureCols) != 4 {
		t.Errorf("feature cols = %v", fl.FeatureCols)
	}
	ones := 0
	for _, y := range fl.TrainY {
		if y == 1 {
			ones++
		}
	}
	if ones == 0 || ones == len(fl.TrainY) {
		t.Errorf("degenerate labels: %d", ones)
	}
}
