package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"raven/internal/server"
)

// entryKind is what a replication-log entry carries.
type entryKind int

const (
	entryScript entryKind = iota // a side-effect-only SQL script
	entryModel                   // a serialized model pipeline
)

// logEntry is one replicated side effect. The log is append-only and
// ordered; every member tracks the highest seq it has applied this
// process lifetime, so fan-out and repair are the same operation:
// replay appliedSeq+1..head.
type logEntry struct {
	seq    uint64
	kind   entryKind
	sql    string // entryScript
	name   string // entryModel
	data   []byte // entryModel: gob-encoded pipeline
	tenant string // admission identity the side effect bills to
}

func (e *logEntry) describe() string {
	if e.kind == entryModel {
		return fmt.Sprintf("model %q", e.name)
	}
	s := strings.TrimSpace(e.sql)
	if len(s) > 40 {
		s = s[:40] + "..."
	}
	return fmt.Sprintf("script %q", s)
}

// appendEntry assigns the next seq under the router lock and returns
// the entry. Appending moves the log head, which is every response-
// cache key's prefix — existing entries are already unreachable, so
// the Clear below reclaims their bytes eagerly rather than leaving
// dead keys to age out of the LRU. (A read still in flight across the
// append may Put one last dead-key entry afterwards; it is never
// looked up and evicts first.)
func (rt *Router) appendEntry(e logEntry) *logEntry {
	rt.mu.Lock()
	rt.logSeq++
	e.seq = rt.logSeq
	rt.log = append(rt.log, e)
	entry := &rt.log[len(rt.log)-1]
	rt.mu.Unlock()
	if rt.respCache != nil {
		rt.respCache.Clear()
	}
	return entry
}

// logHead returns the seq of the newest entry (0 = empty log).
func (rt *Router) logHead() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.logSeq
}

// entriesAfter returns the log tail with seq > after.
func (rt *Router) entriesAfter(after uint64) []logEntry {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// The log is never truncated, so entry seqs are 1..len(log) and the
	// tail after `after` starts at index `after`.
	if int(after) >= len(rt.log) {
		return nil
	}
	tail := make([]logEntry, len(rt.log)-int(after))
	copy(tail, rt.log[after:])
	return tail
}

// replicate validates a side effect on one replica, appends it to the
// log, then fans it out to every other member. The validation apply
// runs BEFORE the entry exists anywhere: a script that is simply wrong
// (bad SQL, duplicate CREATE TABLE — the replica answers a terminal
// 4xx) fails fast with that replica's verdict, never enters the log,
// and so never degrades healthy members or gets replayed by the
// reconciler. replMu serializes replications so the validated entry's
// seq directly follows what the validating replica already applied.
// Fan-out members that fail are marked degraded (the reconciler replays
// the log to them before they take traffic again), so a replica being
// down does not block DDL for the rest of the cluster — it just has
// catching up to do.
func (rt *Router) replicate(ctx context.Context, e logEntry) error {
	rt.replMu.Lock()
	defer rt.replMu.Unlock()

	members := rt.snapshotMembers()
	if len(members) == 0 {
		return errors.New("no replicas registered")
	}

	// Validation candidates: routable (fully-applied) members first —
	// their verdict on the entry is authoritative — then any reachable
	// member as a fallback when nothing is routable. A transient failure
	// moves on to the next candidate; a terminal one is the answer.
	var primary *member
	var lastErr error
	for _, routableOnly := range []bool{true, false} {
		for _, m := range members {
			if routableOnly != m.routable() || m.getState() == StateDown {
				continue
			}
			if lastErr = rt.applyEntry(ctx, m, &e); lastErr == nil {
				primary = m
				break
			}
			if !server.Transient(lastErr) {
				return fmt.Errorf("replicating %s: replica %s: %w", e.describe(), m.name, lastErr)
			}
		}
		if primary != nil {
			break
		}
	}
	if primary == nil {
		if lastErr == nil {
			return errors.New("no reachable replicas")
		}
		return fmt.Errorf("replicating %s: %w", e.describe(), lastErr)
	}

	entry := rt.appendEntry(e)
	// The validating replica already applied this entry; record that so
	// fan-out does not replay it there. replMu guarantees no entry was
	// appended in between, so a fully-caught-up primary sits exactly one
	// seq behind; a behind (non-routable fallback) primary keeps its
	// replay position and the terminal-skip in syncMember absorbs the
	// eventual duplicate apply.
	primary.applyMu.Lock()
	if primary.appliedSeq.Load() == entry.seq-1 {
		primary.appliedSeq.Store(entry.seq)
	}
	primary.applyMu.Unlock()

	// Fan out. The entry is already durable on the primary, so stragglers
	// do not fail the request — they are degraded and repaired by the
	// reconciler's replay instead.
	type result struct {
		m   *member
		err error
	}
	results := make(chan result, len(members))
	for _, m := range members {
		go func(m *member) {
			results <- result{m, rt.syncMember(ctx, m)}
		}(m)
	}
	for range members {
		r := <-results
		if r.err == nil {
			continue
		}
		// Down members were already not routable; reachable ones that
		// failed to apply must stop taking traffic until repaired.
		if r.m.getState() == StateHealthy {
			r.m.setState(StateDegraded)
		}
	}
	return nil
}

// applyEntry applies one log entry to one member, retrying transient
// failures. Each call runs under its own ApplyTimeout-derived deadline,
// independent of the probe interval and the default client timeout, so
// slow entries (a long TRAIN, a large model upload) get a real budget
// both on the fan-out path and during reconciler repair.
func (rt *Router) applyEntry(ctx context.Context, m *member, e *logEntry) error {
	actx, cancel := context.WithTimeout(ctx, rt.opts.ApplyTimeout)
	defer cancel()
	if e.kind == entryModel {
		return rt.opts.Retry.Do(actx, server.Transient, func() error {
			return m.c.StoreModel(actx, server.ModelRequest{Name: e.name, Data: e.data, Tenant: e.tenant})
		})
	}
	return rt.opts.Retry.Do(actx, server.Transient, func() error {
		res, qerr := m.c.QueryContext(actx, server.QueryRequest{SQL: e.sql, Tenant: e.tenant})
		if qerr != nil {
			return qerr
		}
		if !res.OK {
			return fmt.Errorf("side-effect script streamed %d rows", len(res.Rows))
		}
		return nil
	})
}

// syncMember replays the log tail this member has not applied yet, in
// order, and reads back the catalog version. applyMu makes it safe to
// call concurrently from the fan-out path and the reconciler: whoever
// gets there first applies the entries, the other finds appliedSeq
// already at head and just re-reads the version. appliedSeq advances
// per entry, so a replay cut short (context expiry, replica blip)
// resumes where it stopped instead of re-paying the prefix.
func (rt *Router) syncMember(ctx context.Context, m *member) error {
	m.applyMu.Lock()
	defer m.applyMu.Unlock()

	for _, e := range rt.entriesAfter(m.appliedSeq.Load()) {
		if err := rt.applyEntry(ctx, m, &e); err != nil {
			// Entries are validated on a replica before they enter the
			// log, so a terminal 4xx verdict here means THIS replica has
			// diverged (direct writes, a double-applied fallback
			// validation) — retrying the same entry on every reconcile
			// pass can never succeed and would wedge the member in
			// degraded forever. Skip past it; the divergence stays
			// visible in the log_skipped counter and the catalog-version
			// read-back.
			var he *server.HTTPError
			if !server.Transient(err) && errors.As(err, &he) && he.Status >= 400 && he.Status < 500 {
				rt.skipped.Add(1)
				m.appliedSeq.Store(e.seq)
				continue
			}
			return fmt.Errorf("apply entry %d (%s): %w", e.seq, e.describe(), err)
		}
		m.appliedSeq.Store(e.seq)
	}

	// Catalog-version read-back: record what "fully applied" looks like
	// on this replica, so the next probe can tell a restart (version
	// regression) from normal operation.
	v, err := m.c.CatalogVersion(ctx)
	if err != nil {
		return fmt.Errorf("version read-back: %w", err)
	}
	m.lastVersion = v
	return nil
}
