// Clustering: the model-clustering optimization (paper §4.1 / Fig 2b) on a
// one-hot + logistic-regression flight-delay pipeline. K-means clusters the
// data offline; per cluster, constant categorical columns fold into the
// specialized model's bias, so scoring skips their encoding entirely.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"raven/internal/ml"
	"raven/internal/train"
	"raven/internal/xopt"
)

func main() {
	const (
		rows     = 400000
		numerics = 3
		catCount = 5
		groups   = 32
	)
	d := numerics + catCount
	rng := rand.New(rand.NewSource(77))
	raw := make([]float64, rows*d)
	for i := 0; i < rows; i++ {
		g := rng.Intn(groups)
		row := raw[i*d : (i+1)*d]
		for j := 0; j < numerics; j++ {
			row[j] = rng.NormFloat64()
		}
		for j := 0; j < catCount; j++ {
			row[numerics+j] = float64(g >> j)
		}
	}
	rawM := ml.Matrix{Data: raw, Rows: rows, Cols: d}

	catCols := make([]int, catCount)
	for j := range catCols {
		catCols[j] = numerics + j
	}
	sample := ml.Matrix{Data: raw[:20000*d], Rows: 20000, Cols: d}
	enc := ml.FitOneHot(sample, catCols)
	encSample, err := enc.Transform(sample)
	if err != nil {
		log.Fatal(err)
	}
	y := make([]float64, sample.Rows)
	for i := range y {
		if sample.At(i, 0) > 0 {
			y[i] = 1
		}
	}
	lr := train.FitLogReg(encSample, y, train.LogRegOptions{Epochs: 10, Seed: 3})
	fmt.Printf("pipeline: one-hot(%d categorical cols) + LR over %d features\n\n", catCount, len(lr.W))

	// baseline: encode + predict in chunks
	start := time.Now()
	const chunk = 8192
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		part := ml.Matrix{Data: raw[lo*d : hi*d], Rows: hi - lo, Cols: d}
		ep, err := enc.Transform(part)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := lr.Predict(ep); err != nil {
			log.Fatal(err)
		}
	}
	base := time.Since(start)
	fmt.Printf("original pipeline: %v\n", base.Round(time.Millisecond))

	for _, k := range []int{2, 4, 8, 16, 32} {
		buildStart := time.Now()
		cm, err := xopt.BuildClusteredEncodedModel(enc, lr, sample, k, 1e-9, 5)
		if err != nil {
			log.Fatal(err)
		}
		build := time.Since(buildStart)
		start := time.Now()
		if _, err := cm.Predict(rawM); err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		fmt.Printf("k=%2d clusters: %v (%.0f%% of baseline; avg %.1f active terms; offline build %v)\n",
			k, dur.Round(time.Millisecond), 100*float64(dur)/float64(base), cm.AvgActiveTerms(), build.Round(time.Millisecond))
	}
}
