package pgwire

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"raven"
	"raven/internal/server/stmtreg"
)

// ErrServerClosed is returned by Serve after Shutdown, mirroring
// net/http's contract so callers can treat both front ends alike.
var ErrServerClosed = errors.New("pgwire: server closed")

// Options tunes the pg front end.
type Options struct {
	// DefaultTimeout bounds queries whose session supplies no
	// raven.timeout_ms; 0 means unbounded. The server-default layer of
	// the reqopt resolution order.
	DefaultTimeout time.Duration
	// DefaultTenant overrides the tenant connections map to when both
	// startup parameters are empty (normally impossible — psql always
	// sends user — but raw clients can).
	DefaultTenant string
}

// Server speaks the Postgres v3 wire protocol over one raven.DB.
// Create with New, run with Serve, stop with Shutdown. It shares its
// prepared-statement registry with the HTTP front end, so both drain
// the same capacity budget and show up in the same stats.
type Server struct {
	db   *raven.DB
	reg  *stmtreg.Registry
	opts Options

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	byPID    map[uint32]*conn
	nextPID  uint32
	shutdown bool

	lameduck atomic.Bool
	draining atomic.Bool

	stats serverStats
}

// serverStats are the pg front end's live counters (see Stats).
type serverStats struct {
	totalConns  atomic.Uint64
	queries     atomic.Uint64 // executions started (simple + Execute)
	errorsSent  atomic.Uint64
	cancels     atomic.Uint64 // CancelRequests that matched a backend
	msgQuery    atomic.Uint64
	msgParse    atomic.Uint64
	msgBind     atomic.Uint64
	msgDescribe atomic.Uint64
	msgExecute  atomic.Uint64
	msgSync     atomic.Uint64
	msgClose    atomic.Uint64
	msgOther    atomic.Uint64
}

// Stats is the pgwire section of GET /stats: connection gauges, portal
// counts and per-state frontend message counters.
type Stats struct {
	Connections      int               `json:"connections"`
	TotalConnections uint64            `json:"total_connections"`
	Portals          int               `json:"portals"`
	Statements       int               `json:"statements"`
	Queries          uint64            `json:"queries"`
	Errors           uint64            `json:"errors"`
	Cancels          uint64            `json:"cancels"`
	Messages         map[string]uint64 `json:"messages"`
}

// New builds a Server over db. reg may be shared with the HTTP front
// end (ravenserved does exactly that); nil gets a private registry.
func New(db *raven.DB, reg *stmtreg.Registry, opts Options) *Server {
	if reg == nil {
		reg = stmtreg.New(0)
	}
	return &Server{
		db:    db,
		reg:   reg,
		opts:  opts,
		conns: make(map[*conn]struct{}),
		byPID: make(map[uint32]*conn),
	}
}

// Stats snapshots the front end.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	open := len(s.conns)
	portals, stmts := 0, 0
	for c := range s.conns {
		p, st := c.objectCounts()
		portals += p
		stmts += st
	}
	s.mu.Unlock()
	return Stats{
		Connections:      open,
		TotalConnections: s.stats.totalConns.Load(),
		Portals:          portals,
		Statements:       stmts,
		Queries:          s.stats.queries.Load(),
		Errors:           s.stats.errorsSent.Load(),
		Cancels:          s.stats.cancels.Load(),
		Messages: map[string]uint64{
			"query":    s.stats.msgQuery.Load(),
			"parse":    s.stats.msgParse.Load(),
			"bind":     s.stats.msgBind.Load(),
			"describe": s.stats.msgDescribe.Load(),
			"execute":  s.stats.msgExecute.Load(),
			"sync":     s.stats.msgSync.Load(),
			"close":    s.stats.msgClose.Load(),
			"other":    s.stats.msgOther.Load(),
		},
	}
}

// Serve accepts pg connections on l until Shutdown; it returns
// ErrServerClosed after a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.ln = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return ErrServerClosed
			}
			return err
		}
		go s.serveConn(nc)
	}
}

// BeginDrain enters the lame-duck phase, mirroring the HTTP server:
// health-visible draining while queries still run. The pg protocol has
// no health probe, so lame-duck only matters for the shared Draining
// signal; queries are refused once the full drain starts.
func (s *Server) BeginDrain() { s.lameduck.Store(true) }

// Draining reports whether either drain phase has begun.
func (s *Server) Draining() bool { return s.lameduck.Load() || s.draining.Load() }

// Shutdown drains the pg front end: stop accepting connections, refuse
// new queries with SQLSTATE 57P01, wait for in-flight queries to finish
// (or ctx to expire), then close every connection. The engine-level
// drain (scheduler refusal, in-flight wait) is the caller's job —
// ravenserved drains the engine once through the HTTP server's
// Shutdown — so pg and HTTP cannot double-drain each other.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	s.draining.Store(true)
	s.mu.Lock()
	s.shutdown = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Wait for in-flight queries to finish; new ones are already refused.
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.activeQueries() == 0 {
			break
		}
		select {
		case <-ctx.Done():
			goto force
		case <-tick.C:
		}
	}
force:
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
	// Wait for connection goroutines to unwind so Shutdown's return means
	// no pgwire goroutine still touches the engine (leak checks rely on
	// it).
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			return ctx.Err()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (s *Server) activeQueries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for c := range s.conns {
		if c.queryActive() {
			n++
		}
	}
	return n
}

// register assigns the connection its BackendKeyData identity. c.pid
// and c.secret are written under s.mu BEFORE the conn is published into
// byPID, so Server.cancel (which reads them under the same lock) can
// never observe a registered conn with an unset identity.
func (s *Server) register(c *conn) bool {
	var sb [4]byte
	if _, err := rand.Read(sb[:]); err != nil {
		return false
	}
	secret := binary.BigEndian.Uint32(sb[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return false
	}
	s.nextPID++
	c.pid = s.nextPID
	c.secret = secret
	s.conns[c] = struct{}{}
	s.byPID[c.pid] = c
	s.stats.totalConns.Add(1)
	return true
}

func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	delete(s.byPID, c.pid)
	s.mu.Unlock()
}

// cancel delivers a CancelRequest: find the backend by pid, check the
// secret, cancel its in-flight query. Unknown pids and wrong secrets
// are silently ignored, exactly like postgres (cancellation is
// best-effort and unacknowledged by design).
func (s *Server) cancel(pid, secret uint32) {
	s.mu.Lock()
	c := s.byPID[pid]
	match := c != nil && c.secret == secret // secret read under the lock that ordered its write
	s.mu.Unlock()
	if match && c.cancelCurrent() {
		s.stats.cancels.Add(1)
	}
}
