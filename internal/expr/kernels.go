package expr

// Type-specialized kernel loops behind Binary evaluation. Each kernel
// walks the typed data slices directly; a const (broadcast) operand is
// read with stride 0, so literal operands cost nothing per row instead of
// materializing a full vector per batch.

// ordered constrains comparison kernels to element types with a total
// order under < and >.
type ordered interface {
	~int64 | ~float64 | ~string
}

// cmpKernel fills out[i] with op applied to a(i) and b(i). Values compare
// by < and >, preserving the engine's historical float semantics: NaN is
// neither less nor greater than anything, so it compares "equal".
func cmpKernel[T ordered](op BinOp, as, bs []T, aConst, bConst bool, out []bool) {
	sa, sb := 1, 1
	if aConst {
		sa = 0
	}
	if bConst {
		sb = 0
	}
	for i := range out {
		av, bv := as[i*sa], bs[i*sb]
		c := 0
		if av < bv {
			c = -1
		} else if av > bv {
			c = 1
		}
		out[i] = cmpResult(op, c)
	}
}

// arithKernel fills out[i] = a(i) op b(i) with broadcast strides. The
// integer instantiation is never called with OpDiv: INT/INT division takes
// the float coercion path, matching SQL semantics.
func arithKernel[T ~int64 | ~float64](op BinOp, as, bs []T, aConst, bConst bool, out []T) {
	sa, sb := 1, 1
	if aConst {
		sa = 0
	}
	if bConst {
		sb = 0
	}
	switch op {
	case OpAdd:
		for i := range out {
			out[i] = as[i*sa] + bs[i*sb]
		}
	case OpSub:
		for i := range out {
			out[i] = as[i*sa] - bs[i*sb]
		}
	case OpMul:
		for i := range out {
			out[i] = as[i*sa] * bs[i*sb]
		}
	case OpDiv:
		for i := range out {
			out[i] = as[i*sa] / bs[i*sb]
		}
	}
}

// boolKernel fills out[i] = a(i) AND/OR b(i) with broadcast strides.
func boolKernel(op BinOp, as, bs []bool, aConst, bConst bool, out []bool) {
	sa, sb := 1, 1
	if aConst {
		sa = 0
	}
	if bConst {
		sb = 0
	}
	if op == OpAnd {
		for i := range out {
			out[i] = as[i*sa] && bs[i*sb]
		}
	} else {
		for i := range out {
			out[i] = as[i*sa] || bs[i*sb]
		}
	}
}

// arithScalar applies op to one pair of coerced floats (the mixed-type
// fallback path).
func arithScalar(op BinOp, a, b float64) float64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	}
	return 0
}
