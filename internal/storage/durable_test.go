package storage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"raven/internal/types"
	"raven/internal/wal"
)

// durableOpts keeps tests fast: no per-append fsync (file writes are
// still visible to replay after Abort — only power loss would drop
// them), tiny segments so sealing paths run constantly.
func durableOpts(segRows int) DurableOptions {
	return DurableOptions{Fsync: wal.FsyncOff, SegmentRows: segRows}
}

func openDurable(t *testing.T, dir string, segRows int) (*Catalog, *Durable) {
	t.Helper()
	c, d, err := OpenDurable(dir, durableOpts(segRows))
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

func loadRows(t *testing.T, c *Catalog, name string, n, from int) {
	t.Helper()
	tb, err := c.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	for i := from; i < from+n; i++ {
		if err := tb.AppendRow(int64(i), float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
}

func tableInts(t *testing.T, c *Catalog, name string) []int64 {
	t.Helper()
	tb, err := c.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tb.Scan()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, b.Len())
	for i := range out {
		if b.Vecs[0].IsNull(i) {
			t.Fatalf("unexpected NULL at row %d", i)
		}
		out[i] = b.Vecs[0].IntAt(i)
	}
	return out
}

func checkSequential(t *testing.T, got []int64, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("recovered %d rows, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d = %d, want %d", i, v, i)
		}
	}
}

// TestDurableCrashRecovery is the core guarantee: everything committed
// before an unclean shutdown — tables, rows, unique keys, stored models
// — is back after reopen, byte for byte.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 64)
	if err := c.AddTable(NewTable("t", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	loadRows(t, c, "t", 1000, 0) // many seals at 64 rows/segment
	if err := c.SetUniqueKey("t", "id"); err != nil {
		t.Fatal(err)
	}
	if err := c.Models.PutModel("m", "gob-pipeline", []byte("model-bytes"), map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	want := tableInts(t, c, "t")
	if err := d.Abort(); err != nil {
		t.Fatal(err)
	}

	c2, d2 := openDurable(t, dir, 64)
	defer d2.Close(false)
	checkSequential(t, tableInts(t, c2, "t"), 1000)
	for i, v := range tableInts(t, c2, "t") {
		if v != want[i] {
			t.Fatalf("row %d changed across recovery", i)
		}
	}
	if !c2.IsUniqueKey("t", "id") {
		t.Error("unique key lost")
	}
	m, err := c2.Models.Latest("m")
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Bytes) != "model-bytes" || m.Version != 1 || m.Meta["k"] != "v" {
		t.Errorf("model mangled: %+v", m)
	}
	st := d2.Stats()
	if st.Segments == 0 || st.SealedRows == 0 {
		t.Errorf("no sealed segments after 1000 rows at 64/segment: %+v", st)
	}
}

// TestDurableCheckpointAndRestart: a clean checkpointed close must
// restart from the manifest alone (empty WAL) with identical contents.
func TestDurableCheckpointAndRestart(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 64)
	if err := c.AddTable(NewTable("t", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	loadRows(t, c, "t", 500, 0)
	if err := c.Models.PutModel("m", "gob-pipeline", []byte("mm"), nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(true); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint folded everything into segments + manifest;
	// the live WAL must be empty and old WALs deleted.
	walFiles, _ := filepath.Glob(filepath.Join(dir, "wal", "*.log"))
	if len(walFiles) != 1 {
		t.Fatalf("want exactly one (fresh) wal file, got %v", walFiles)
	}
	if fi, err := os.Stat(walFiles[0]); err != nil || fi.Size() != 0 {
		t.Fatalf("live wal not empty after checkpoint: %v %v", fi, err)
	}

	c2, d2 := openDurable(t, dir, 64)
	defer d2.Close(false)
	checkSequential(t, tableInts(t, c2, "t"), 500)
	if st := d2.Stats(); st.WalRecords != 0 {
		t.Errorf("replayed %d records from a checkpointed dir", st.WalRecords)
	}
	if _, err := c2.Models.Latest("m"); err != nil {
		t.Error("model lost across checkpointed restart")
	}
	// All 500 rows sealed at checkpoint: the tail was folded in.
	tb, _ := c2.Table("t")
	if _, rows := tb.sealedInfo(); rows != 500 {
		t.Errorf("sealed rows = %d, want 500", rows)
	}
}

// TestDurableTornTail: a torn final record (partial write at crash) is
// dropped; every record before it survives; the log is usable again.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 1<<16)
	if err := c.AddTable(NewTable("t", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	loadRows(t, c, "t", 10, 0)
	if err := d.Abort(); err != nil {
		t.Fatal(err)
	}
	walFiles, _ := filepath.Glob(filepath.Join(dir, "wal", "*.log"))
	if len(walFiles) != 1 {
		t.Fatalf("wal files: %v", walFiles)
	}
	fi, err := os.Stat(walFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last append in half.
	if err := os.Truncate(walFiles[0], fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	c2, d2 := openDurable(t, dir, 1<<16)
	checkSequential(t, tableInts(t, c2, "t"), 9)
	// The log accepts appends again after truncation.
	loadRows(t, c2, "t", 1, 9)
	if err := d2.Close(false); err != nil {
		t.Fatal(err)
	}
	c3, d3 := openDurable(t, dir, 1<<16)
	defer d3.Close(false)
	checkSequential(t, tableInts(t, c3, "t"), 10)
}

// TestDurableCorruptSegmentQuarantined: a segment that fails its CRC is
// renamed aside and recovery reports which file and why.
func TestDurableCorruptSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 64)
	if err := c.AddTable(NewTable("t", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	loadRows(t, c, "t", 200, 0)
	if err := d.Close(true); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg", "*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segments on disk")
	}
	// Smash the footer of the first segment.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-20] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = OpenDurable(dir, durableOpts(64))
	if err == nil {
		t.Fatal("recovery accepted a corrupt segment")
	}
	if !strings.Contains(err.Error(), "quarantined") || !strings.Contains(err.Error(), filepath.Base(segs[0])) {
		t.Fatalf("error does not name the quarantined file: %v", err)
	}
	if _, serr := os.Stat(segs[0] + ".quarantined"); serr != nil {
		t.Error("corrupt segment was not renamed aside")
	}
}

// TestDurableRecoveryIdempotent: recovering twice must equal recovering
// once — replay must not duplicate rows or re-log records.
func TestDurableRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 64)
	if err := c.AddTable(NewTable("t", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	loadRows(t, c, "t", 300, 0)
	if err := d.Abort(); err != nil {
		t.Fatal(err)
	}

	c2, d2 := openDurable(t, dir, 64)
	first := tableInts(t, c2, "t")
	rec2 := d2.Stats().WalRecords
	if err := d2.Abort(); err != nil { // again: no clean close
		t.Fatal(err)
	}
	c3, d3 := openDurable(t, dir, 64)
	defer d3.Close(false)
	second := tableInts(t, c3, "t")
	if d3.Stats().WalRecords != rec2 {
		t.Errorf("second recovery replayed %d records, first %d", d3.Stats().WalRecords, rec2)
	}
	checkSequential(t, first, 300)
	checkSequential(t, second, 300)
}

// TestDurableDDLRecovery: drops and re-creates replay in order.
func TestDurableDDLRecovery(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 64)
	if err := c.AddTable(NewTable("a", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	loadRows(t, c, "a", 100, 0)
	if err := c.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(NewTable("a", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	loadRows(t, c, "a", 5, 0)
	if err := d.Abort(); err != nil {
		t.Fatal(err)
	}

	c2, d2 := openDurable(t, dir, 64)
	defer d2.Close(false)
	checkSequential(t, tableInts(t, c2, "a"), 5)
}

// TestDurableCompaction: a checkpoint folds runs of undersized segments
// into full ones without changing contents.
func TestDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 64)
	if err := c.AddTable(NewTable("t", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	tb, _ := c.Table("t")
	// Checkpoints seal whatever small tail exists, so checkpointing after
	// every 20-row batch produces a stream of undersized segments that
	// later checkpoints must fold together.
	n := 0
	for i := 0; i < 6; i++ {
		b := types.NewBatch(intFloatSchema())
		for j := 0; j < 20; j++ {
			_ = b.AppendRow(int64(n), float64(n))
			n++
		}
		if err := tb.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	after, rows := tb.sealedInfo()
	if after >= 6 {
		t.Errorf("compaction never folded: %d segments for 6 checkpointed batches", after)
	}
	if rows != n {
		t.Errorf("sealed rows = %d, want %d", rows, n)
	}
	checkSequential(t, tableInts(t, c, "t"), n)
	if err := d.Close(false); err != nil {
		t.Fatal(err)
	}
	// And the compacted layout recovers.
	c2, d2 := openDurable(t, dir, 64)
	defer d2.Close(false)
	checkSequential(t, tableInts(t, c2, "t"), n)
}

// TestDurableScanRangeAcrossSegments: ranges spanning sealed segments
// and the live tail materialize correctly (the zero-copy fast path only
// covers the tail).
func TestDurableScanRangeAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 64)
	defer d.Close(false)
	if err := c.AddTable(NewTable("t", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	loadRows(t, c, "t", 200, 0) // 3 segments of 64 + tail of 8
	tb, _ := c.Table("t")
	for _, rng := range [][2]int{{0, 200}, {60, 70}, {63, 65}, {100, 130}, {190, 200}, {192, 200}} {
		b, err := tb.ScanRange(rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() != rng[1]-rng[0] {
			t.Fatalf("range %v: len %d", rng, b.Len())
		}
		for i := 0; i < b.Len(); i++ {
			if b.Vecs[0].IntAt(i) != int64(rng[0]+i) {
				t.Fatalf("range %v row %d = %d", rng, i, b.Vecs[0].IntAt(i))
			}
		}
	}
	// Column stats stream across segments too.
	st, err := tb.Stats("id")
	if err != nil {
		t.Fatal(err)
	}
	if st.Min != 0 || st.Max != 199 || st.NumRows != 200 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDurableInterruptedCheckpointSweep: segment files from a seal whose
// SEAL record never hit the log are swept at recovery, not resurrected.
func TestDurableInterruptedCheckpointSweep(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 1<<16)
	if err := c.AddTable(NewTable("t", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	loadRows(t, c, "t", 10, 0)
	if err := d.Abort(); err != nil {
		t.Fatal(err)
	}
	// A stray segment file nothing references (crash between segment
	// write and SEAL log / manifest).
	stray := filepath.Join(dir, "seg", "t-99999999.seg")
	if err := os.WriteFile(stray, []byte("half-written segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, d2 := openDurable(t, dir, 1<<16)
	defer d2.Close(false)
	checkSequential(t, tableInts(t, c2, "t"), 10)
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("orphan segment not swept")
	}
	// And its sequence number is never reused.
	if d2.segSeq.Load() < 99999999 {
		t.Errorf("segSeq = %d did not advance past orphan", d2.segSeq.Load())
	}
}

// TestDurableConcurrentAppends exercises group commit + sealing from
// many goroutines (run under -race).
func TestDurableConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, 50)
	if err := c.AddTable(NewTable("t", intFloatSchema())); err != nil {
		t.Fatal(err)
	}
	tb, _ := c.Table("t")
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 100; i++ {
				if err := tb.AppendRow(int64(w*100+i), float64(i)); err != nil {
					done <- err
					return
				}
				if i%10 == 0 {
					if _, err := tb.ScanRange(0, tb.NumRows()); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if tb.NumRows() != 400 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if err := d.Close(false); err != nil {
		t.Fatal(err)
	}
	c2, d2 := openDurable(t, dir, 50)
	defer d2.Close(false)
	got := tableInts(t, c2, "t")
	if len(got) != 400 {
		t.Fatalf("recovered %d rows", len(got))
	}
	// Every value exactly once (order across goroutines is arbitrary but
	// the log's order is the table's order).
	seen := make(map[int64]bool, 400)
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 400 {
		t.Fatalf("distinct recovered values = %d", len(seen))
	}
}
