package nnconv

import (
	"math"
	"math/rand"
	"testing"

	"raven/internal/ml"
	"raven/internal/ort"
	"raven/internal/tensor"
	"raven/internal/train"
)

// runGraph compiles and executes a graph on x, returning the Y column.
func runGraph(t *testing.T, g *ort.Graph, x ml.Matrix) []float64 {
	t.Helper()
	s, err := ort.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	xt, err := tensor.FromSlice(x.Data, x.Rows, x.Cols)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := s.Run(map[string]*tensor.Tensor{"X": xt})
	if err != nil {
		t.Fatal(err)
	}
	return out["Y"].Data
}

func assertSame(t *testing.T, name string, want, got []float64, tol float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", name, len(want), len(got))
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > tol {
			t.Fatalf("%s: diverges at %d: %v vs %v", name, i, want[i], got[i])
		}
	}
}

func randMatrix(n, d int, seed int64) ml.Matrix {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*d)
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	return ml.Matrix{Data: data, Rows: n, Cols: d}
}

func trainedTree(t *testing.T, n, d int, seed int64) (*ml.DecisionTree, ml.Matrix) {
	t.Helper()
	x := randMatrix(n, d, seed)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if x.At(i, 0)+x.At(i, 1) > 0 {
			y[i] = 1
		}
	}
	return train.FitTree(x, y, train.TreeOptions{MaxDepth: 6, MinLeaf: 5}), x
}

func TestTreeTranslationMatchesTree(t *testing.T) {
	tree, x := trainedTree(t, 800, 4, 1)
	want, err := tree.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TranslateModel(tree)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, x)
	assertSame(t, "tree-nn", want, got, 1e-9)
}

func TestConstantTreeTranslation(t *testing.T) {
	// single-leaf tree
	tree := &ml.DecisionTree{NFeat: 2, Feature: []int{-1}, Threshold: []float64{0}, Left: []int{-1}, Right: []int{-1}, Value: []float64{3.5}}
	g, err := TranslateModel(tree)
	if err != nil {
		t.Fatal(err)
	}
	x := randMatrix(5, 2, 3)
	got := runGraph(t, g, x)
	for _, v := range got {
		if v != 3.5 {
			t.Fatalf("constant tree = %v", got)
		}
	}
}

func TestForestTranslationMatchesForest(t *testing.T) {
	x := randMatrix(500, 5, 7)
	y := make([]float64, 500)
	for i := range y {
		if x.At(i, 2) > 0 {
			y[i] = 1
		}
	}
	forest := train.FitForest(x, y, train.ForestOptions{NumTrees: 7, Seed: 3, Tree: train.TreeOptions{MaxDepth: 5, MinLeaf: 5}})
	want, err := forest.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TranslateModel(forest)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, x)
	assertSame(t, "forest-nn", want, got, 1e-9)
}

func TestLogRegTranslation(t *testing.T) {
	m := &ml.LogisticRegression{W: []float64{0.5, -1, 2}, B: 0.25}
	x := randMatrix(100, 3, 11)
	want, _ := m.Predict(x)
	g, err := TranslateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, x)
	assertSame(t, "logreg-nn", want, got, 1e-12)
}

func TestLinRegTranslation(t *testing.T) {
	m := &ml.LinearRegression{W: []float64{1.5, -2}, B: 3}
	x := randMatrix(50, 2, 13)
	want, _ := m.Predict(x)
	g, err := TranslateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, x)
	assertSame(t, "linreg-nn", want, got, 1e-12)
}

func TestMLPTranslation(t *testing.T) {
	x := randMatrix(300, 4, 17)
	y := make([]float64, 300)
	for i := range y {
		if x.At(i, 0) > 0 {
			y[i] = 1
		}
	}
	m := train.FitMLP(x, y, train.MLPOptions{Hidden: []int{8, 4}, Epochs: 3, Seed: 5, Classifier: true})
	want, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TranslateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, x)
	assertSame(t, "mlp-nn", want, got, 1e-9)
}

func TestScalerAndSelectTranslation(t *testing.T) {
	sc := &ml.StandardScaler{Mean: []float64{1, 2, 3}, Scale: []float64{2, 4, 8}}
	cs := &ml.ColumnSelect{Indices: []int{2, 0}}
	lg := &ml.LogisticRegression{W: []float64{1, -1}, B: 0}
	p := &ml.Pipeline{Steps: []ml.Transformer{sc, cs}, Final: lg}
	x := randMatrix(80, 3, 19)
	want, err := p.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TranslatePipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, x)
	assertSame(t, "scaler+select-nn", want, got, 1e-12)
}

func TestOneHotTranslation(t *testing.T) {
	// 3 columns: [num, cat(2 values), cat(3 values)]
	n := 200
	rng := rand.New(rand.NewSource(23))
	data := make([]float64, n*3)
	for i := 0; i < n; i++ {
		data[i*3] = rng.NormFloat64()
		data[i*3+1] = float64(rng.Intn(2)) * 5
		data[i*3+2] = float64(rng.Intn(3)) * 7
	}
	x := ml.Matrix{Data: data, Rows: n, Cols: 3}
	enc := ml.FitOneHot(x, []int{1, 2})
	lg := &ml.LogisticRegression{W: []float64{0.5, 1, -1, 0.25, -0.25, 2}, B: 0.1}
	p := &ml.Pipeline{Steps: []ml.Transformer{enc}, Final: lg}
	want, err := p.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TranslatePipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, x)
	assertSame(t, "onehot-nn", want, got, 1e-12)
}

func TestFeatureUnionTranslation(t *testing.T) {
	// union of (scaled all columns) and (raw column 0): width 3.
	sc := &ml.StandardScaler{Mean: []float64{1, 2}, Scale: []float64{2, 2}}
	u := &ml.FeatureUnion{Parts: []ml.Transformer{sc, &ml.ColumnSelect{Indices: []int{0}}}}
	lg := &ml.LogisticRegression{W: []float64{1, -1, 0.5}, B: 0}
	p := &ml.Pipeline{Steps: []ml.Transformer{u}, Final: lg}
	x := randMatrix(60, 2, 29)
	want, err := p.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TranslatePipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, x)
	assertSame(t, "union-nn", want, got, 1e-12)
}

func TestFullPipelineTranslation(t *testing.T) {
	// onehot -> scaler -> forest: the Fig 3 pipeline shape.
	n := 400
	rng := rand.New(rand.NewSource(31))
	data := make([]float64, n*3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		data[i*3] = rng.NormFloat64()
		data[i*3+1] = rng.NormFloat64() * 3
		data[i*3+2] = float64(rng.Intn(3))
		if data[i*3]+data[i*3+1] > 0 {
			y[i] = 1
		}
	}
	x := ml.Matrix{Data: data, Rows: n, Cols: 3}
	enc := ml.FitOneHot(x, []int{2})
	fx, err := enc.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	sc := ml.FitScaler(fx)
	sx, _ := sc.Transform(fx)
	forest := train.FitForest(sx, y, train.ForestOptions{NumTrees: 5, Seed: 9, Tree: train.TreeOptions{MaxDepth: 4, MinLeaf: 5}})
	p := &ml.Pipeline{Steps: []ml.Transformer{enc, sc}, Final: forest}
	want, err := p.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TranslatePipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, x)
	assertSame(t, "pipeline-nn", want, got, 1e-9)
}

func TestTranslationRejectsUnknowns(t *testing.T) {
	if _, err := TranslateModel(fakeModel{}); err == nil {
		t.Error("unknown model should fail")
	}
	p := &ml.Pipeline{Steps: []ml.Transformer{fakeTransformer{}}, Final: &ml.LinearRegression{W: []float64{1}}}
	if _, err := TranslatePipeline(p); err == nil {
		t.Error("unknown transformer should fail")
	}
}

type fakeModel struct{}

func (fakeModel) Predict(ml.Matrix) ([]float64, error) { return nil, nil }
func (fakeModel) NumFeatures() int                     { return 0 }
func (fakeModel) UsedFeatures() []int                  { return nil }
func (fakeModel) Kind() string                         { return "fake" }

type fakeTransformer struct{}

func (fakeTransformer) Transform(ml.Matrix) (ml.Matrix, error) { return ml.Matrix{}, nil }
func (fakeTransformer) OutputDim(int) (int, error)             { return 0, nil }
func (fakeTransformer) Kind() string                           { return "fake" }

// Property-style check: pruned tree and its translation stay consistent.
func TestPrunedTreeTranslationConsistency(t *testing.T) {
	tree, x := trainedTree(t, 600, 4, 41)
	pruned := tree.Prune(ml.Constraints{0: {Lo: 0, Hi: math.Inf(1)}})
	// evaluate only on rows satisfying the constraint
	var rows []int
	for i := 0; i < x.Rows; i++ {
		if x.At(i, 0) >= 0 {
			rows = append(rows, i)
		}
	}
	sub := make([]float64, 0, len(rows)*4)
	for _, i := range rows {
		sub = append(sub, x.Row(i)...)
	}
	sx := ml.Matrix{Data: sub, Rows: len(rows), Cols: 4}
	want, err := pruned.Predict(sx)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TranslateModel(pruned)
	if err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, sx)
	assertSame(t, "pruned-tree-nn", want, got, 1e-9)
}
