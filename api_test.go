package raven

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"raven/internal/ml"
)

// prepDB builds a small engine with the hospital workload for serving-API
// tests (prepared statements, plan cache, streaming rows).
func prepDB(t testing.TB) *DB {
	t.Helper()
	db, _ := hospitalDB(t, 2000)
	return db
}

const predictQuery = `SELECT d.id, p.score FROM PREDICT(MODEL='duration_of_stay',
	DATA=(SELECT * FROM patient_info AS pi
	      JOIN blood_tests AS bt ON pi.id = bt.id
	      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
	WITH (score FLOAT) AS p WHERE d.age > 50`

func TestPreparedStmtSkipsCompile(t *testing.T) {
	db := prepDB(t)
	want, err := db.Query(predictQuery)
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(predictQuery)
	if err != nil {
		t.Fatal(err)
	}
	compiles := db.compiles.Load()
	for i := 0; i < 10; i++ {
		rows, err := st.Query()
		if err != nil {
			t.Fatal(err)
		}
		res, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		batchesIdentical(t, "prepared", want.Batch, res.Batch)
	}
	if got := db.compiles.Load(); got != compiles {
		t.Errorf("Stmt.Query recompiled: %d compiles became %d", compiles, got)
	}
}

// TestPreparedOverheadBelowCold asserts the acceptance bar directly: warm
// prepared execution must cut per-call overhead (everything but plan
// execution) at least 5x below a cold compile. The true ratio on this
// workload is ~50x, so the margin absorbs CI noise.
func TestPreparedOverheadBelowCold(t *testing.T) {
	db := prepDB(t)
	cold := DefaultQueryOptions()
	cold.DisablePlanCache = true
	measure := func(fn func() (*Result, error)) time.Duration {
		t.Helper()
		if _, err := fn(); err != nil { // warmup (sessions, caches)
			t.Fatal(err)
		}
		var total time.Duration
		const runs = 8
		for i := 0; i < runs; i++ {
			r, err := fn()
			if err != nil {
				t.Fatal(err)
			}
			total += r.CompileTime
		}
		return total / runs
	}
	coldOver := measure(func() (*Result, error) { return db.QueryWithOptions(predictQuery, cold) })
	st, err := db.Prepare(predictQuery)
	if err != nil {
		t.Fatal(err)
	}
	prepOver := measure(func() (*Result, error) {
		rows, err := st.Query()
		if err != nil {
			return nil, err
		}
		return rows.Collect()
	})
	if prepOver*5 > coldOver {
		t.Errorf("prepared overhead %v not 5x below cold %v", prepOver, coldOver)
	}
}

func TestPlanCacheHitsAndInvalidation(t *testing.T) {
	db := prepDB(t)
	if _, err := db.Query(predictQuery); err != nil {
		t.Fatal(err)
	}
	h0, _ := db.PlanCacheStats()
	if _, err := db.Query(predictQuery); err != nil {
		t.Fatal(err)
	}
	h1, _ := db.PlanCacheStats()
	if h1 != h0+1 {
		t.Errorf("repeated query did not hit the plan cache: hits %d -> %d", h0, h1)
	}

	// DDL bumps the catalog version: the cached plan must not be served.
	if err := db.Exec("CREATE TABLE unrelated (a INT)"); err != nil {
		t.Fatal(err)
	}
	_, m0 := db.PlanCacheStats()
	if _, err := db.Query(predictQuery); err != nil {
		t.Fatal(err)
	}
	h2, m1 := db.PlanCacheStats()
	if m1 != m0+1 {
		t.Errorf("DDL did not invalidate the cached plan: misses %d -> %d", m0, m1)
	}

	// StoreModel likewise: the plan embeds the (inlined/translated) model.
	pipe, err := db.LoadModel("duration_of_stay")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.StoreModel("duration_of_stay", pipe); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(predictQuery); err != nil {
		t.Fatal(err)
	}
	h3, m2 := db.PlanCacheStats()
	if m2 != m1+1 {
		t.Errorf("StoreModel did not invalidate the cached plan: misses %d -> %d", m1, m2)
	}
	if h3 != h2 {
		t.Errorf("invalidated plans were served as hits: %d -> %d", h2, h3)
	}

	// DisablePlanCache must bypass entirely.
	opts := DefaultQueryOptions()
	opts.DisablePlanCache = true
	hBefore, mBefore := db.PlanCacheStats()
	if _, err := db.QueryWithOptions(predictQuery, opts); err != nil {
		t.Fatal(err)
	}
	hAfter, mAfter := db.PlanCacheStats()
	if hAfter != hBefore || mAfter != mBefore {
		t.Errorf("DisablePlanCache touched the cache: %d/%d -> %d/%d", hBefore, mBefore, hAfter, mAfter)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2)
	p := &cachedPlan{}
	c.put("a", p, 0)
	c.put("b", p, 0)
	if c.get("a", 0) == nil { // refresh a: b becomes the LRU entry
		t.Fatal("a should hit")
	}
	c.put("c", p, 0)
	if c.get("a", 0) == nil {
		t.Error("recently used entry was evicted")
	}
	if c.get("b", 0) != nil {
		t.Error("least-recently-used entry should have been evicted")
	}
	if c.get("c", 0) == nil {
		t.Error("new entry should be cached")
	}
}

func TestPreparedStmtReprepareOnModelUpdate(t *testing.T) {
	db := MustOpen()
	if err := db.Exec(`CREATE TABLE pts (id INT PRIMARY KEY, age FLOAT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Exec(fmt.Sprintf("INSERT INTO pts VALUES (%d, 40.0)", i)); err != nil {
			t.Fatal(err)
		}
	}
	storeLR := func(w float64) {
		t.Helper()
		if err := db.StoreModel("risk", lrPipeline(w)); err != nil {
			t.Fatal(err)
		}
	}
	storeLR(0.01)
	st, err := db.Prepare(`SELECT p.s FROM PREDICT(MODEL='risk', DATA=pts AS d) WITH (s FLOAT) AS p`)
	if err != nil {
		t.Fatal(err)
	}
	first := stmtScores(t, st, "s")
	// Storing a new model version must invalidate the prepared template:
	// the next execution re-prepares against the new model.
	storeLR(-0.01)
	second := stmtScores(t, st, "s")
	if first[0] == second[0] {
		t.Errorf("prepared statement served stale model: %v vs %v", first[0], second[0])
	}
	// DDL on another table also re-prepares (coarse invalidation), but
	// execution still succeeds and returns the same fresh results.
	if err := db.Exec("CREATE TABLE other (x INT)"); err != nil {
		t.Fatal(err)
	}
	third := stmtScores(t, st, "s")
	if second[0] != third[0] {
		t.Errorf("re-prepare after unrelated DDL changed results: %v vs %v", second[0], third[0])
	}
}

func lrPipeline(w float64) *ml.Pipeline {
	return &ml.Pipeline{
		Final:        &ml.LogisticRegression{W: []float64{0, w}, B: 0},
		InputColumns: []string{"id", "age"},
	}
}

func stmtScores(t *testing.T, st *Stmt, col string) []float64 {
	t.Helper()
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	v := res.Batch.Col(col)
	if v == nil {
		t.Fatalf("result has no column %q: %v", col, res.Batch.Schema.Names())
	}
	return v.Floats
}

func TestPreparedStmtParams(t *testing.T) {
	db := MustOpen()
	if err := db.Exec(`CREATE TABLE people (id INT PRIMARY KEY, name VARCHAR(16), age FLOAT);
		INSERT INTO people VALUES (1, 'ada', 36.0), (2, 'bob', 41.0), (3, 'cleo', 29.0)`); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`SELECT id FROM people WHERE name = @who`)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Params(); len(got) != 1 || got[0] != "who" {
		t.Fatalf("Params() = %v", got)
	}
	for who, wantID := range map[string]int64{"ada": 1, "bob": 2, "cleo": 3} {
		rows, err := st.Query(P("who", who))
		if err != nil {
			t.Fatal(err)
		}
		res, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if res.Batch.Len() != 1 || res.Batch.Col("id").Ints[0] != wantID {
			t.Errorf("who=%s: got %v", who, res.Batch)
		}
	}
	// Numeric parameters compare numerically against FLOAT columns.
	st2, err := db.Prepare(`SELECT id FROM people WHERE age > @minage`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st2.Query(P("minage", "35"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Len() != 2 {
		t.Errorf("minage=35: got %d rows, want 2", res.Batch.Len())
	}
	// Parameters bind inside arithmetic and logical expressions too, not
	// just bare comparisons.
	st3, err := db.Prepare(`SELECT id FROM people WHERE age > @base + 5 AND age < 100`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err = st3.Query(P("base", "30"))
	if err != nil {
		t.Fatal(err)
	}
	res, err = rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Len() != 2 { // ages 36 and 41 exceed 35
		t.Errorf("base=30: got %d rows, want 2", res.Batch.Len())
	}
	// Missing, unknown and duplicate params are all rejected.
	if _, err := st.Query(); err == nil {
		t.Error("missing param should fail")
	}
	if _, err := st.Query(P("who", "ada"), P("oops", "x")); err == nil {
		t.Error("unknown param should fail")
	}
	if _, err := st.Query(P("who", "ada"), P("who", "bob")); err == nil {
		t.Error("duplicate param should fail")
	}
	// Concurrent executions with different params never cross-bind.
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		who, want := "ada", int64(1)
		if i%2 == 1 {
			who, want = "bob", 2
		}
		go func(who string, want int64) {
			rows, err := st.Query(P("who", who))
			if err != nil {
				done <- err
				return
			}
			res, err := rows.Collect()
			if err != nil {
				done <- err
				return
			}
			if res.Batch.Len() != 1 || res.Batch.Col("id").Ints[0] != want {
				done <- fmt.Errorf("concurrent executions cross-bound params: who=%s got %v", who, res.Batch)
				return
			}
			done <- nil
		}(who, want)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeclareScopedToStatement(t *testing.T) {
	db := prepDB(t)
	// Same SELECT with and without the DECLARE prefix: the only failure
	// mode of the bare version is @model not resolving.
	sel := `SELECT p.score FROM PREDICT(MODEL=@model, DATA=(SELECT * FROM patient_info AS pi
		JOIN blood_tests AS bt ON pi.id = bt.id JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (score FLOAT) AS p`
	if _, err := db.Query(`DECLARE @model = 'duration_of_stay'; ` + sel); err != nil {
		t.Fatal(err)
	}
	// The DECLARE above must not leak into engine session state: the same
	// SELECT without it fails to bind.
	if _, err := db.Query(sel); err == nil {
		t.Error("DECLARE from a previous Query leaked into engine session state")
	}
	// Exec DECLARE is the session-level API and does persist: the model
	// variable becomes visible to every later query.
	if err := db.Exec(`DECLARE @model = 'duration_of_stay'`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(sel); err != nil {
		t.Errorf("session DECLARE should be visible to queries: %v", err)
	}
}

func TestQueryRejectsUnboundParams(t *testing.T) {
	db := prepDB(t)
	_, err := db.Query(`SELECT id FROM patient_info WHERE age > @minage`)
	if err == nil || !strings.Contains(err.Error(), "not declared") {
		t.Errorf("ad-hoc query with undeclared @var should fail to bind, got %v", err)
	}
}

func TestPrepareRejectsSideEffects(t *testing.T) {
	db := prepDB(t)
	if _, err := db.Prepare(`CREATE TABLE x (a INT); SELECT a FROM x`); err == nil {
		t.Error("Prepare with DDL should fail")
	}
	if _, err := db.Catalog().Table("x"); err == nil {
		t.Error("failed Prepare must not have created the table")
	}
}

func TestRowsStreamingScanAndParity(t *testing.T) {
	db := flightsDB(t, 20000)
	q := `SELECT d.f0, p.prob FROM PREDICT(MODEL='delay_par', DATA=flights_features AS d) WITH (prob FLOAT) AS p WHERE d.f1 > 0`
	collect := func(opts QueryOptions) []string {
		t.Helper()
		rows, err := db.QueryContextWithOptions(t.Context(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		if got := rows.Columns(); strings.Join(got, ",") != "f0,prob" {
			t.Fatalf("columns = %v", got)
		}
		var out []string
		var f0, prob float64
		for rows.Next() {
			if err := rows.Scan(&f0, &prob); err != nil {
				t.Fatal(err)
			}
			out = append(out, strings.Join([]string{floatKey(f0), floatKey(prob)}, "|"))
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := collect(QueryOptions{Mode: ModeInProcess, Parallelism: 1})
	for _, dop := range []int{4, 8} {
		par := collect(QueryOptions{Mode: ModeInProcess, Parallelism: dop, ParallelThresholdRows: 1, MorselSize: 512})
		if len(par) != len(serial) {
			t.Fatalf("dop=%d: %d rows vs %d", dop, len(par), len(serial))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("dop=%d row %d: %s vs %s (Rows path must stay byte-identical)", dop, i, par[i], serial[i])
			}
		}
	}
	// Scan type mismatches and arity errors are reported, not silent.
	rows, err := db.QueryContext(t.Context(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("expected at least one row")
	}
	var s string
	if err := rows.Scan(&s, &s); err == nil {
		t.Error("Scan into wrong type should fail")
	}
	var f float64
	if err := rows.Scan(&f); err == nil {
		t.Error("Scan with wrong arity should fail")
	}
	// Collect after exhaustion (or Close) must return an empty result,
	// not hang on the closed executor.
	for rows.Next() {
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Len() != 0 {
		t.Errorf("Collect after exhaustion returned %d rows, want 0", res.Batch.Len())
	}
}

// floatKey fixes precision so byte-identity comparisons are not defeated
// by formatting noise (the values themselves are computed identically).
func floatKey(f float64) string {
	return fmt.Sprintf("%.9f", f)
}

// TestStmtPinsPrepareTimeVars: a prepared statement's session-variable
// bindings are fixed at Prepare; later re-DECLAREs must not change its
// meaning even when DDL forces a transparent re-prepare.
func TestStmtPinsPrepareTimeVars(t *testing.T) {
	db := prepDB(t)
	if err := db.Exec(`DECLARE @model = 'duration_of_stay'`); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`SELECT p.score FROM PREDICT(MODEL=@model,
		DATA=(SELECT * FROM patient_info AS pi
		      JOIN blood_tests AS bt ON pi.id = bt.id
		      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (score FLOAT) AS p WHERE d.age > 60`)
	if err != nil {
		t.Fatal(err)
	}
	want := stmtScores(t, st, "score")
	// Re-point the session variable at a nonexistent model, then force a
	// re-prepare with unrelated DDL: the Stmt must keep its prepare-time
	// binding and still succeed with identical results.
	if err := db.Exec(`DECLARE @model = 'no_such_model'; CREATE TABLE bump_version (x INT)`); err != nil {
		t.Fatal(err)
	}
	got := stmtScores(t, st, "score")
	if len(got) != len(want) {
		t.Fatalf("re-prepared stmt returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d drifted after session re-DECLARE: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestNonCrossPathAppliesRelationalOptimizations is the regression test
// for the bug where the non-cross path discarded xopt.Optimize's result:
// with CrossOptimize off, the standard relational pass (projection
// pushdown, join elimination) must still run — and report — against the
// returned graph. The model here reads only patient_info columns, so
// pushdown narrows the scan and join elimination drops the other tables.
func TestNonCrossPathAppliesRelationalOptimizations(t *testing.T) {
	db := prepDB(t)
	pipe := &ml.Pipeline{
		Final:        &ml.LogisticRegression{W: []float64{0.1, 0.01, 0, 0}, B: 0},
		InputColumns: []string{"pregnant", "age", "gender", "weight"},
	}
	if err := db.StoreModel("narrow", pipe); err != nil {
		t.Fatal(err)
	}
	q := `SELECT p.s FROM PREDICT(MODEL='narrow',
		DATA=(SELECT * FROM patient_info AS pi
		      JOIN blood_tests AS bt ON pi.id = bt.id
		      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (s FLOAT) AS p`
	res, err := db.QueryWithOptions(q, QueryOptions{CrossOptimize: false, Mode: ModeInProcess, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.AppliedRules, ",")
	if !strings.Contains(joined, "relational-optimizations") {
		t.Errorf("relational pass did not fire (or its result was discarded) on the non-cross path: %v", res.AppliedRules)
	}
	// The optimized plan must still compute the same result as the full
	// cross-optimized path.
	opt, err := db.QueryWithOptions(q, QueryOptions{CrossOptimize: true, Mode: ModeInProcess, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := resultKey(res.Batch), resultKey(opt.Batch)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between non-cross and cross paths", i)
		}
	}
}
