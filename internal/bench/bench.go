// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§4 and §5). Each experiment builds its
// workload, trains the models the paper trains, runs baseline and
// optimized variants over warm runs, and reports series shaped like the
// paper's plots. cmd/ravenbench prints them; bench_test.go exposes each as
// a testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Row is one measured point of an experiment.
type Row struct {
	Series string // e.g. "RF (sklearn-sim)" or "Raven"
	Param  string // x-axis value, e.g. "100K rows" or "k=8"
	Millis float64
	Note   string
}

// Table is one figure/table reproduction.
type Table struct {
	ID    string // e.g. "Fig2a"
	Title string
	Rows  []Row
	// PaperShape describes what the paper reports, for side-by-side
	// reading in EXPERIMENTS.md.
	PaperShape string
}

// Recording is the JSON shape ravenbench's -json flag writes and its
// -check flag validates — one shared type, so the writer and the
// checker cannot silently drift apart (a drifted checker would wave
// hollow recordings through).
type Recording struct {
	GOMAXPROCS int
	Quick      bool
	Runs       int
	// Failed lists experiment ids that did not produce a table, so a
	// partial file is self-describing instead of passing as a complete
	// run.
	Failed []string `json:",omitempty"`
	Tables []*Table
}

// Add appends a measurement.
func (t *Table) Add(series, param string, d time.Duration, note string) {
	t.Rows = append(t.Rows, Row{Series: series, Param: param, Millis: float64(d.Microseconds()) / 1000, Note: note})
}

// AddMillis appends a measurement already in milliseconds (used for
// simulated-time series).
func (t *Table) AddMillis(series, param string, ms float64, note string) {
	t.Rows = append(t.Rows, Row{Series: series, Param: param, Millis: ms, Note: note})
}

// Speedup returns rowA/rowB times for matching params (series a vs b).
func (t *Table) Speedup(a, b, param string) float64 {
	var am, bm float64
	for _, r := range t.Rows {
		if r.Param != param {
			continue
		}
		if r.Series == a {
			am = r.Millis
		}
		if r.Series == b {
			bm = r.Millis
		}
	}
	if bm == 0 {
		return 0
	}
	return am / bm
}

// Print renders the table with params as rows and series as columns,
// mirroring the paper's figures.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperShape != "" {
		fmt.Fprintf(w, "paper: %s\n", t.PaperShape)
	}
	// collect ordered params and series
	var params, series []string
	seenP, seenS := map[string]bool{}, map[string]bool{}
	for _, r := range t.Rows {
		if !seenP[r.Param] {
			seenP[r.Param] = true
			params = append(params, r.Param)
		}
		if !seenS[r.Series] {
			seenS[r.Series] = true
			series = append(series, r.Series)
		}
	}
	cell := make(map[string]map[string]Row)
	for _, r := range t.Rows {
		if cell[r.Param] == nil {
			cell[r.Param] = map[string]Row{}
		}
		cell[r.Param][r.Series] = r
	}
	w1 := 12
	for _, p := range params {
		if len(p) > w1 {
			w1 = len(p)
		}
	}
	fmt.Fprintf(w, "%-*s", w1+2, "")
	for _, s := range series {
		fmt.Fprintf(w, "%18s", s)
	}
	fmt.Fprintln(w)
	for _, p := range params {
		fmt.Fprintf(w, "%-*s", w1+2, p)
		for _, s := range series {
			if r, ok := cell[p][s]; ok {
				fmt.Fprintf(w, "%15.2fms", r.Millis)
			} else {
				fmt.Fprintf(w, "%18s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	// notes, deduplicated
	var notes []string
	seenN := map[string]bool{}
	for _, r := range t.Rows {
		if r.Note != "" && !seenN[r.Note] {
			seenN[r.Note] = true
			notes = append(notes, r.Note)
		}
	}
	sort.Strings(notes)
	for _, n := range notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as a GitHub-flavoured markdown table (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.PaperShape != "" {
		fmt.Fprintf(&sb, "*Paper:* %s\n\n", t.PaperShape)
	}
	var params, series []string
	seenP, seenS := map[string]bool{}, map[string]bool{}
	for _, r := range t.Rows {
		if !seenP[r.Param] {
			seenP[r.Param] = true
			params = append(params, r.Param)
		}
		if !seenS[r.Series] {
			seenS[r.Series] = true
			series = append(series, r.Series)
		}
	}
	cell := make(map[string]map[string]Row)
	for _, r := range t.Rows {
		if cell[r.Param] == nil {
			cell[r.Param] = map[string]Row{}
		}
		cell[r.Param][r.Series] = r
	}
	sb.WriteString("| |")
	for _, s := range series {
		sb.WriteString(" " + s + " |")
	}
	sb.WriteString("\n|---|")
	for range series {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for _, p := range params {
		sb.WriteString("| " + p + " |")
		for _, s := range series {
			if r, ok := cell[p][s]; ok {
				fmt.Fprintf(&sb, " %.2f ms |", r.Millis)
			} else {
				sb.WriteString(" - |")
			}
		}
		sb.WriteString("\n")
	}
	sb.WriteString("\n")
	return sb.String()
}

// Time runs fn warm+measured times and returns the mean of the measured
// runs (the paper reports averages over multiple warm runs).
func Time(warm, runs int, fn func() error) (time.Duration, error) {
	for i := 0; i < warm; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	var total time.Duration
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	if runs == 0 {
		return 0, nil
	}
	return total / time.Duration(runs), nil
}

// FmtRows formats a row count like the paper's x axes (1K, 100K, 1M).
func FmtRows(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dK", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
