package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

func init() {
	// Concrete types that may appear behind the Transformer/Model
	// interfaces in a serialized Pipeline.
	gob.Register(&StandardScaler{})
	gob.Register(&OneHotEncoder{})
	gob.Register(&ColumnSelect{})
	gob.Register(&FeatureUnion{})
	gob.Register(&DecisionTree{})
	gob.Register(&RandomForest{})
	gob.Register(&LinearRegression{})
	gob.Register(&LogisticRegression{})
	gob.Register(&MLP{})
}

// gobPipeline avoids encoding nil interface fields, which gob rejects.
type gobPipeline struct {
	Steps        []Transformer
	Final        Model
	InputColumns []string
}

// Marshal serializes a pipeline for the model store ("gob-pipeline"
// format).
func Marshal(p *Pipeline) ([]byte, error) {
	if p.Final == nil {
		return nil, fmt.Errorf("ml: cannot marshal pipeline without final model")
	}
	var buf bytes.Buffer
	gp := gobPipeline{Steps: p.Steps, Final: p.Final, InputColumns: p.InputColumns}
	if err := gob.NewEncoder(&buf).Encode(&gp); err != nil {
		return nil, fmt.Errorf("ml: marshal pipeline: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal reverses Marshal.
func Unmarshal(data []byte) (*Pipeline, error) {
	var gp gobPipeline
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&gp); err != nil {
		return nil, fmt.Errorf("ml: unmarshal pipeline: %w", err)
	}
	return &Pipeline{Steps: gp.Steps, Final: gp.Final, InputColumns: gp.InputColumns}, nil
}
