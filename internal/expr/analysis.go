package expr

import (
	"math"
	"strings"

	"raven/internal/types"
)

// Conjuncts splits an expression on top-level ANDs.
func Conjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// And re-joins conjuncts; nil for an empty list.
func And(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = NewBinary(OpAnd, out, e)
	}
	return out
}

// Columns returns the distinct (bare, lower-cased) column names used by e.
func Columns(e Expr) []string {
	seen := make(map[string]bool)
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Column:
			seen[strings.ToLower(x.BareName())] = true
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Not:
			walk(x.E)
		case *Case:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	// deterministic order
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Simplify performs constant folding: literal-only subtrees collapse, and
// boolean identities (TRUE AND x, FALSE OR x, ...) reduce.
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case *Binary:
		l, r := Simplify(x.L), Simplify(x.R)
		ll, lok := l.(*Literal)
		rl, rok := r.(*Literal)
		if lok && rok {
			if v := foldLiterals(x.Op, ll, rl); v != nil {
				return v
			}
		}
		// boolean identities
		if x.Op == OpAnd {
			if lok && isBoolLit(ll, true) {
				return r
			}
			if rok && isBoolLit(rl, true) {
				return l
			}
			if lok && isBoolLit(ll, false) {
				return BoolLit(false)
			}
			if rok && isBoolLit(rl, false) {
				return BoolLit(false)
			}
		}
		if x.Op == OpOr {
			if lok && isBoolLit(ll, false) {
				return r
			}
			if rok && isBoolLit(rl, false) {
				return l
			}
			if lok && isBoolLit(ll, true) {
				return BoolLit(true)
			}
			if rok && isBoolLit(rl, true) {
				return BoolLit(true)
			}
		}
		return &Binary{Op: x.Op, L: l, R: r}
	case *Not:
		inner := Simplify(x.E)
		if l, ok := inner.(*Literal); ok && l.DT == types.Bool {
			return BoolLit(!l.B)
		}
		return &Not{E: inner}
	case *Case:
		out := &Case{Else: x.Else}
		if x.Else != nil {
			out.Else = Simplify(x.Else)
		}
		for _, w := range x.Whens {
			c := Simplify(w.Cond)
			if l, ok := c.(*Literal); ok && l.DT == types.Bool {
				if l.B {
					// first always-true arm terminates the CASE
					if len(out.Whens) == 0 {
						return Simplify(w.Then)
					}
					out.Else = Simplify(w.Then)
					return out
				}
				continue // always-false arm drops
			}
			out.Whens = append(out.Whens, When{Cond: c, Then: Simplify(w.Then)})
		}
		if len(out.Whens) == 0 {
			return out.Else
		}
		return out
	default:
		return e
	}
}

func isBoolLit(l *Literal, v bool) bool { return l.DT == types.Bool && l.B == v }

func foldLiterals(op BinOp, l, r *Literal) *Literal {
	switch {
	case op == OpAnd || op == OpOr:
		if l.DT != types.Bool || r.DT != types.Bool {
			return nil
		}
		if op == OpAnd {
			return BoolLit(l.B && r.B)
		}
		return BoolLit(l.B || r.B)
	case op.IsComparison():
		if l.DT == types.String || r.DT == types.String {
			if l.DT != r.DT {
				return nil
			}
			return BoolLit(cmpResult(op, strings.Compare(l.S, r.S)))
		}
		return BoolLit(cmpResult(op, cmpFloat(l.AsFloat(), r.AsFloat())))
	default:
		if l.DT == types.String || r.DT == types.String {
			return nil
		}
		a, b := l.AsFloat(), r.AsFloat()
		var v float64
		switch op {
		case OpAdd:
			v = a + b
		case OpSub:
			v = a - b
		case OpMul:
			v = a * b
		case OpDiv:
			if b == 0 {
				return nil
			}
			v = a / b
		}
		if l.DT == types.Int && r.DT == types.Int && op != OpDiv {
			return IntLit(int64(v))
		}
		return FloatLit(v)
	}
}

// Range is a numeric interval with possibly infinite bounds.
type Range struct {
	Lo, Hi float64
}

// FullRange covers all reals.
func FullRange() Range { return Range{Lo: math.Inf(-1), Hi: math.Inf(1)} }

// Intersect narrows r by o.
func (r Range) Intersect(o Range) Range {
	if o.Lo > r.Lo {
		r.Lo = o.Lo
	}
	if o.Hi < r.Hi {
		r.Hi = o.Hi
	}
	return r
}

// Empty reports whether no value satisfies the range.
func (r Range) Empty() bool { return r.Lo > r.Hi }

// DeriveRanges extracts per-column value ranges implied by a predicate's
// top-level conjuncts ("pregnant = 1 AND age > 35" → pregnant ∈ [1,1],
// age ∈ (35,∞)). This feeds predicate-based model pruning (§4.1); the
// strict bound of > / < is approximated by nudging one ULP, which is exact
// for the comparisons trees perform.
func DeriveRanges(pred Expr) map[string]Range {
	out := make(map[string]Range)
	add := func(col string, r Range) {
		col = strings.ToLower(col)
		cur, ok := out[col]
		if !ok {
			cur = FullRange()
		}
		out[col] = cur.Intersect(r)
	}
	for _, c := range Conjuncts(pred) {
		b, ok := c.(*Binary)
		if !ok || !b.Op.IsComparison() {
			continue
		}
		col, lit, op := normalizeComparison(b)
		if col == nil {
			continue
		}
		v := lit.AsFloat()
		switch op {
		case OpEq:
			add(col.BareName(), Range{Lo: v, Hi: v})
		case OpLt:
			add(col.BareName(), Range{Lo: math.Inf(-1), Hi: math.Nextafter(v, math.Inf(-1))})
		case OpLe:
			add(col.BareName(), Range{Lo: math.Inf(-1), Hi: v})
		case OpGt:
			add(col.BareName(), Range{Lo: math.Nextafter(v, math.Inf(1)), Hi: math.Inf(1)})
		case OpGe:
			add(col.BareName(), Range{Lo: v, Hi: math.Inf(1)})
		}
	}
	return out
}

// DeriveEqualities extracts column = constant conjuncts, including string
// equalities (for one-hot categorical pruning). Numeric values come back
// as float64, strings as string.
func DeriveEqualities(pred Expr) map[string]any {
	out := make(map[string]any)
	for _, c := range Conjuncts(pred) {
		b, ok := c.(*Binary)
		if !ok || b.Op != OpEq {
			continue
		}
		col, lit, op := normalizeComparison(b)
		if col == nil || op != OpEq {
			continue
		}
		if lit.DT == types.String {
			out[strings.ToLower(col.BareName())] = lit.S
		} else {
			out[strings.ToLower(col.BareName())] = lit.AsFloat()
		}
	}
	return out
}

// normalizeComparison rewrites a comparison so the column is on the left,
// returning (column, literal, effective op). Either side may be the column.
func normalizeComparison(b *Binary) (*Column, *Literal, BinOp) {
	if c, ok := b.L.(*Column); ok {
		if l, ok := b.R.(*Literal); ok {
			return c, l, b.Op
		}
	}
	if c, ok := b.R.(*Column); ok {
		if l, ok := b.L.(*Literal); ok {
			return c, l, flip(b.Op)
		}
	}
	return nil, nil, b.Op
}

func flip(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}
