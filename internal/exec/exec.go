// Package exec is the vectorized volcano executor: physical operators
// exchange columnar batches through Open/Next/Close. It includes the
// parallel scan+predict pipeline that gives the paper's Fig 3 its ~5×
// speedup at 1M-10M rows (SQL Server auto-parallelizing scan and PREDICT,
// §5 observation iii).
package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"raven/internal/expr"
	"raven/internal/storage"
	"raven/internal/types"
)

// Operator is a physical operator. Next returns nil at end of stream.
type Operator interface {
	Open() error
	Next() (*types.Batch, error)
	Close() error
	Schema() *types.Schema
}

// Predictor scores batches; the runtime package provides implementations
// for the in-process, out-of-process and containerized modes.
type Predictor interface {
	// PredictBatch returns one output vector per declared output column.
	PredictBatch(b *types.Batch) ([]*types.Vector, error)
}

// TableScan reads a table range in fixed-size batches with optional column
// projection.
type TableScan struct {
	Table *storage.Table
	// Cols projects a subset; nil scans all columns.
	Cols []string
	// Lo, Hi bound the row range; Hi==0 means the table end (snapshot at
	// Open).
	Lo, Hi    int
	BatchSize int

	schema *types.Schema
	colIdx []int
	pos    int
	end    int
}

// NewTableScan builds a full scan of t.
func NewTableScan(t *storage.Table, cols []string) (*TableScan, error) {
	s := &TableScan{Table: t, Cols: cols, BatchSize: types.DefaultBatchSize}
	if err := s.resolve(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *TableScan) resolve() error {
	if s.Cols == nil {
		s.schema = s.Table.Schema()
		s.colIdx = nil
		return nil
	}
	s.colIdx = make([]int, len(s.Cols))
	for i, c := range s.Cols {
		j := s.Table.Schema().IndexOf(c)
		if j < 0 {
			return fmt.Errorf("exec: table %s has no column %q", s.Table.Name, c)
		}
		s.colIdx[i] = j
	}
	s.schema = s.Table.Schema().Project(s.colIdx)
	return nil
}

// Schema implements Operator.
func (s *TableScan) Schema() *types.Schema { return s.schema }

// Open implements Operator.
func (s *TableScan) Open() error {
	if s.BatchSize <= 0 {
		s.BatchSize = types.DefaultBatchSize
	}
	s.pos = s.Lo
	s.end = s.Hi
	if s.end == 0 || s.end > s.Table.NumRows() {
		s.end = s.Table.NumRows()
	}
	return nil
}

// Next implements Operator.
func (s *TableScan) Next() (*types.Batch, error) {
	if s.pos >= s.end {
		return nil, nil
	}
	hi := s.pos + s.BatchSize
	if hi > s.end {
		hi = s.end
	}
	b := s.Table.ScanRange(s.pos, hi)
	s.pos = hi
	if s.colIdx != nil {
		b = b.Project(s.colIdx)
	}
	return b, nil
}

// Close implements Operator.
func (s *TableScan) Close() error { return nil }

// FilterOp drops rows whose predicate is false.
type FilterOp struct {
	Child Operator
	Pred  expr.Expr
}

// Schema implements Operator.
func (f *FilterOp) Schema() *types.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *FilterOp) Open() error { return f.Child.Open() }

// Close implements Operator.
func (f *FilterOp) Close() error { return f.Child.Close() }

// Next implements Operator.
func (f *FilterOp) Next() (*types.Batch, error) {
	for {
		b, err := f.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		mask, err := f.Pred.Eval(b)
		if err != nil {
			return nil, err
		}
		if mask.Type != types.Bool {
			return nil, fmt.Errorf("exec: filter predicate has type %v", mask.Type)
		}
		sel := make([]int, 0, b.Len())
		for i, keep := range mask.Bools {
			if keep {
				sel = append(sel, i)
			}
		}
		if len(sel) == 0 {
			continue
		}
		if len(sel) == b.Len() {
			return b, nil
		}
		return b.Gather(sel), nil
	}
}

// ProjectOp computes expressions.
type ProjectOp struct {
	Child  Operator
	Exprs  []expr.Expr
	schema *types.Schema
}

// NewProjectOp builds a projection operator with a precomputed schema.
func NewProjectOp(child Operator, exprs []expr.Expr, names []string) (*ProjectOp, error) {
	cols := make([]types.Column, len(exprs))
	for i, e := range exprs {
		t, err := e.Type(child.Schema())
		if err != nil {
			return nil, err
		}
		cols[i] = types.Column{Name: names[i], Type: t}
	}
	return &ProjectOp{Child: child, Exprs: exprs, schema: types.NewSchema(cols...)}, nil
}

// Schema implements Operator.
func (p *ProjectOp) Schema() *types.Schema { return p.schema }

// Open implements Operator.
func (p *ProjectOp) Open() error { return p.Child.Open() }

// Close implements Operator.
func (p *ProjectOp) Close() error { return p.Child.Close() }

// Next implements Operator.
func (p *ProjectOp) Next() (*types.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	vecs := make([]*types.Vector, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	return &types.Batch{Schema: p.schema, Vecs: vecs}, nil
}

// LimitOp truncates the stream after N rows.
type LimitOp struct {
	Child Operator
	N     int
	seen  int
}

// Schema implements Operator.
func (l *LimitOp) Schema() *types.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *LimitOp) Open() error { l.seen = 0; return l.Child.Open() }

// Close implements Operator.
func (l *LimitOp) Close() error { return l.Child.Close() }

// Next implements Operator.
func (l *LimitOp) Next() (*types.Batch, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	b, err := l.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if l.seen+b.Len() > l.N {
		b = b.Slice(0, l.N-l.seen)
	}
	l.seen += b.Len()
	return b, nil
}

// PredictOp appends model output columns to each batch — the physical
// PREDICT operator.
type PredictOp struct {
	Child      Operator
	Predictor  Predictor
	OutputCols []types.Column
	schema     *types.Schema
}

// NewPredictOp builds the operator.
func NewPredictOp(child Operator, p Predictor, outputCols []types.Column) *PredictOp {
	return &PredictOp{
		Child:      child,
		Predictor:  p,
		OutputCols: outputCols,
		schema:     child.Schema().Concat(types.NewSchema(outputCols...)),
	}
}

// Schema implements Operator.
func (p *PredictOp) Schema() *types.Schema { return p.schema }

// Open implements Operator.
func (p *PredictOp) Open() error { return p.Child.Open() }

// Close implements Operator.
func (p *PredictOp) Close() error { return p.Child.Close() }

// Next implements Operator.
func (p *PredictOp) Next() (*types.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	outs, err := p.Predictor.PredictBatch(b)
	if err != nil {
		return nil, err
	}
	if len(outs) != len(p.OutputCols) {
		return nil, fmt.Errorf("exec: predictor returned %d columns, declared %d", len(outs), len(p.OutputCols))
	}
	vecs := make([]*types.Vector, 0, len(b.Vecs)+len(outs))
	vecs = append(vecs, b.Vecs...)
	vecs = append(vecs, outs...)
	return &types.Batch{Schema: p.schema, Vecs: vecs}, nil
}

// Collect drains an operator into a single batch (for results and tests).
func Collect(op Operator) (*types.Batch, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	out := types.NewBatch(op.Schema())
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if err := out.Append(b); err != nil {
			return nil, err
		}
	}
}

// SortOp materializes and sorts the input.
type SortOp struct {
	Child Operator
	Keys  []SortKeySpec
	out   *types.Batch
	done  bool
}

// SortKeySpec is one ordering key.
type SortKeySpec struct {
	Col  string
	Desc bool
}

// Schema implements Operator.
func (s *SortOp) Schema() *types.Schema { return s.Child.Schema() }

// Open implements Operator.
func (s *SortOp) Open() error {
	s.done = false
	all, err := Collect(s.Child)
	if err != nil {
		return err
	}
	n := all.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	keys := make([]*types.Vector, len(s.Keys))
	for i, k := range s.Keys {
		v := all.Col(k.Col)
		if v == nil {
			return fmt.Errorf("exec: sort key %q not found", k.Col)
		}
		keys[i] = v
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for i, k := range s.Keys {
			c := compareAt(keys[i], idx[a], idx[b])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.out = all.Gather(idx)
	return nil
}

func compareAt(v *types.Vector, i, j int) int {
	switch v.Type {
	case types.String:
		return strings.Compare(v.Strings[i], v.Strings[j])
	default:
		a, b := v.AsFloat(i), v.AsFloat(j)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

// Next implements Operator.
func (s *SortOp) Next() (*types.Batch, error) {
	if s.done || s.out == nil {
		return nil, nil
	}
	s.done = true
	return s.out, nil
}

// Close implements Operator.
func (s *SortOp) Close() error { s.out = nil; return nil }

// DistinctOp removes duplicate rows (hash-based, materializing keys only).
type DistinctOp struct {
	Child Operator
	seen  map[string]bool
}

// Schema implements Operator.
func (d *DistinctOp) Schema() *types.Schema { return d.Child.Schema() }

// Open implements Operator.
func (d *DistinctOp) Open() error {
	d.seen = make(map[string]bool)
	return d.Child.Open()
}

// Close implements Operator.
func (d *DistinctOp) Close() error { return d.Child.Close() }

// Next implements Operator.
func (d *DistinctOp) Next() (*types.Batch, error) {
	for {
		b, err := d.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		var sel []int
		for i := 0; i < b.Len(); i++ {
			key := rowKey(b, i)
			if !d.seen[key] {
				d.seen[key] = true
				sel = append(sel, i)
			}
		}
		if len(sel) == 0 {
			continue
		}
		return b.Gather(sel), nil
	}
}

func rowKey(b *types.Batch, i int) string {
	var sb strings.Builder
	for _, v := range b.Vecs {
		fmt.Fprintf(&sb, "%v|", v.Value(i))
	}
	return sb.String()
}

// Parallel runs one operator pipeline per partition concurrently and
// streams their batches in arrival order. Each pipeline must be
// independent (its own scan range). This is the exchange operator behind
// the automatic scan+PREDICT parallelism of Fig 3.
type Parallel struct {
	Parts []Operator

	ch     chan parallelMsg
	wg     sync.WaitGroup
	cancel chan struct{}
}

type parallelMsg struct {
	b   *types.Batch
	err error
}

// Schema implements Operator.
func (p *Parallel) Schema() *types.Schema { return p.Parts[0].Schema() }

// Open implements Operator.
func (p *Parallel) Open() error {
	p.ch = make(chan parallelMsg, len(p.Parts)*2)
	p.cancel = make(chan struct{})
	for _, part := range p.Parts {
		p.wg.Add(1)
		go func(op Operator) {
			defer p.wg.Done()
			if err := op.Open(); err != nil {
				p.send(parallelMsg{err: err})
				return
			}
			defer op.Close()
			for {
				b, err := op.Next()
				if err != nil {
					p.send(parallelMsg{err: err})
					return
				}
				if b == nil {
					return
				}
				if !p.send(parallelMsg{b: b}) {
					return
				}
			}
		}(part)
	}
	go func() {
		p.wg.Wait()
		close(p.ch)
	}()
	return nil
}

func (p *Parallel) send(m parallelMsg) bool {
	select {
	case p.ch <- m:
		return true
	case <-p.cancel:
		return false
	}
}

// Next implements Operator.
func (p *Parallel) Next() (*types.Batch, error) {
	m, ok := <-p.ch
	if !ok {
		return nil, nil
	}
	if m.err != nil {
		return nil, m.err
	}
	return m.b, nil
}

// Close implements Operator.
func (p *Parallel) Close() error {
	if p.cancel != nil {
		close(p.cancel)
		p.cancel = nil
	}
	// drain so workers unblock and exit
	if p.ch != nil {
		for range p.ch {
		}
		p.ch = nil
	}
	return nil
}
