// Package types defines the columnar data model shared by the relational
// engine and the ML runtimes: data types, schemas, typed vectors and
// batches. Execution is vectorized: operators exchange Batch values holding
// a fixed number of rows in columnar form.
package types

import (
	"fmt"
	"strings"
)

// DataType enumerates the column types supported by the engine.
type DataType uint8

const (
	// Unknown is the zero DataType; it is never valid in a bound schema.
	Unknown DataType = iota
	// Float is a 64-bit IEEE float (SQL FLOAT).
	Float
	// Int is a 64-bit signed integer (SQL BIGINT).
	Int
	// Bool is a boolean (SQL BIT).
	Bool
	// String is a variable-length UTF-8 string (SQL VARCHAR).
	String
)

// String implements fmt.Stringer.
func (t DataType) String() string {
	switch t {
	case Float:
		return "FLOAT"
	case Int:
		return "INT"
	case Bool:
		return "BOOL"
	case String:
		return "VARCHAR"
	default:
		return "UNKNOWN"
	}
}

// IsNumeric reports whether t can participate in arithmetic.
func (t DataType) IsNumeric() bool { return t == Float || t == Int }

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Type DataType
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// IndexOf returns the ordinal of the named column, or -1 if absent.
// Lookup is case-insensitive, matching SQL identifier semantics.
func (s *Schema) IndexOf(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the i-th column descriptor.
func (s *Schema) Column(i int) Column { return s.Columns[i] }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Columns: cols}
}

// Project returns a new schema containing the columns at the given ordinals.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return &Schema{Columns: cols}
}

// Concat returns a schema with the columns of s followed by those of other.
func (s *Schema) Concat(other *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(other.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, other.Columns...)
	return &Schema{Columns: cols}
}

// String renders the schema as "(a FLOAT, b INT)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Vector is a typed column of values. Exactly one of the data slices is
// populated, chosen by Type. Nulls are represented by a nil or absent
// validity mask being all-true; a non-nil Nulls slice marks NULL rows.
type Vector struct {
	Type    DataType
	Floats  []float64
	Ints    []int64
	Bools   []bool
	Strings []string
	// Nulls[i] is true when row i is NULL. A nil slice means no NULLs.
	Nulls []bool
}

// NewVector allocates a vector of the given type with length n.
func NewVector(t DataType, n int) *Vector {
	v := &Vector{Type: t}
	switch t {
	case Float:
		v.Floats = make([]float64, n)
	case Int:
		v.Ints = make([]int64, n)
	case Bool:
		v.Bools = make([]bool, n)
	case String:
		v.Strings = make([]string, n)
	default:
		panic(fmt.Sprintf("types: NewVector of %v", t))
	}
	return v
}

// Len returns the number of rows in the vector.
func (v *Vector) Len() int {
	switch v.Type {
	case Float:
		return len(v.Floats)
	case Int:
		return len(v.Ints)
	case Bool:
		return len(v.Bools)
	case String:
		return len(v.Strings)
	default:
		return 0
	}
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool { return v.Nulls != nil && v.Nulls[i] }

// SetNull marks row i as NULL, allocating the mask lazily.
func (v *Vector) SetNull(i int) {
	if v.Nulls == nil {
		v.Nulls = make([]bool, v.Len())
	}
	v.Nulls[i] = true
}

// Value returns row i as an interface value (nil when NULL). Intended for
// tests, result rendering and row-at-a-time UDFs, not the hot path.
func (v *Vector) Value(i int) any {
	if v.IsNull(i) {
		return nil
	}
	switch v.Type {
	case Float:
		return v.Floats[i]
	case Int:
		return v.Ints[i]
	case Bool:
		return v.Bools[i]
	case String:
		return v.Strings[i]
	default:
		return nil
	}
}

// AsFloat returns row i coerced to float64. Bool maps to 0/1.
func (v *Vector) AsFloat(i int) float64 {
	switch v.Type {
	case Float:
		return v.Floats[i]
	case Int:
		return float64(v.Ints[i])
	case Bool:
		if v.Bools[i] {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Append adds a raw Go value to the vector, converting compatible types.
func (v *Vector) Append(val any) error {
	switch v.Type {
	case Float:
		switch x := val.(type) {
		case float64:
			v.Floats = append(v.Floats, x)
		case int64:
			v.Floats = append(v.Floats, float64(x))
		case int:
			v.Floats = append(v.Floats, float64(x))
		default:
			return fmt.Errorf("types: cannot append %T to FLOAT vector", val)
		}
	case Int:
		switch x := val.(type) {
		case int64:
			v.Ints = append(v.Ints, x)
		case int:
			v.Ints = append(v.Ints, int64(x))
		default:
			return fmt.Errorf("types: cannot append %T to INT vector", val)
		}
	case Bool:
		x, ok := val.(bool)
		if !ok {
			return fmt.Errorf("types: cannot append %T to BOOL vector", val)
		}
		v.Bools = append(v.Bools, x)
	case String:
		x, ok := val.(string)
		if !ok {
			return fmt.Errorf("types: cannot append %T to VARCHAR vector", val)
		}
		v.Strings = append(v.Strings, x)
	default:
		return fmt.Errorf("types: append to vector of unknown type")
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, val == nil)
	}
	return nil
}

// Slice returns a zero-copy view of rows [lo, hi).
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{Type: v.Type}
	switch v.Type {
	case Float:
		out.Floats = v.Floats[lo:hi]
	case Int:
		out.Ints = v.Ints[lo:hi]
	case Bool:
		out.Bools = v.Bools[lo:hi]
	case String:
		out.Strings = v.Strings[lo:hi]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	return out
}

// Gather returns a new vector with rows picked by sel, in order.
func (v *Vector) Gather(sel []int) *Vector {
	out := NewVector(v.Type, len(sel))
	switch v.Type {
	case Float:
		for i, j := range sel {
			out.Floats[i] = v.Floats[j]
		}
	case Int:
		for i, j := range sel {
			out.Ints[i] = v.Ints[j]
		}
	case Bool:
		for i, j := range sel {
			out.Bools[i] = v.Bools[j]
		}
	case String:
		for i, j := range sel {
			out.Strings[i] = v.Strings[j]
		}
	}
	if v.Nulls != nil {
		out.Nulls = make([]bool, len(sel))
		for i, j := range sel {
			out.Nulls[i] = v.Nulls[j]
		}
	}
	return out
}

// AppendFrom appends row i of src (same type) to v without boxing the
// value — the hot path of streaming merges that interleave rows from
// many source batches.
func (v *Vector) AppendFrom(src *Vector, i int) {
	switch v.Type {
	case Float:
		v.Floats = append(v.Floats, src.Floats[i])
	case Int:
		v.Ints = append(v.Ints, src.Ints[i])
	case Bool:
		v.Bools = append(v.Bools, src.Bools[i])
	case String:
		v.Strings = append(v.Strings, src.Strings[i])
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, src.IsNull(i))
	} else if src.IsNull(i) {
		v.Nulls = make([]bool, v.Len())
		v.Nulls[v.Len()-1] = true
	}
}

// AppendVector appends all rows of src (same type) to v.
func (v *Vector) AppendVector(src *Vector) error {
	if v.Type != src.Type {
		return fmt.Errorf("types: append %v vector to %v vector", src.Type, v.Type)
	}
	n := v.Len()
	switch v.Type {
	case Float:
		v.Floats = append(v.Floats, src.Floats...)
	case Int:
		v.Ints = append(v.Ints, src.Ints...)
	case Bool:
		v.Bools = append(v.Bools, src.Bools...)
	case String:
		v.Strings = append(v.Strings, src.Strings...)
	}
	if v.Nulls != nil || src.Nulls != nil {
		if v.Nulls == nil {
			v.Nulls = make([]bool, n, n+src.Len())
		}
		if src.Nulls != nil {
			v.Nulls = append(v.Nulls, src.Nulls...)
		} else {
			v.Nulls = append(v.Nulls, make([]bool, src.Len())...)
		}
	}
	return nil
}

// ConstFloat builds a length-n FLOAT vector filled with x.
func ConstFloat(x float64, n int) *Vector {
	v := NewVector(Float, n)
	for i := range v.Floats {
		v.Floats[i] = x
	}
	return v
}

// ConstInt builds a length-n INT vector filled with x.
func ConstInt(x int64, n int) *Vector {
	v := NewVector(Int, n)
	for i := range v.Ints {
		v.Ints[i] = x
	}
	return v
}

// ConstBool builds a length-n BOOL vector filled with x.
func ConstBool(x bool, n int) *Vector {
	v := NewVector(Bool, n)
	for i := range v.Bools {
		v.Bools[i] = x
	}
	return v
}

// ConstString builds a length-n VARCHAR vector filled with x.
func ConstString(x string, n int) *Vector {
	v := NewVector(String, n)
	for i := range v.Strings {
		v.Strings[i] = x
	}
	return v
}
