package pgwire

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal hand-rolled Postgres v3 frontend used by the
// conformance tests and the pgwire smoke: the container has no pg
// driver, and a raw-frame client is what a conformance suite wants
// anyway (it can send malformed sequences a driver never would). It is
// not a general-purpose driver: text format only, no TLS, single
// goroutine.
type Client struct {
	nc  net.Conn
	r   *bufio.Reader
	w   *bufio.Writer
	buf writeBuf

	addr string
	// BackendPID/BackendSecret are the cancellation identity from
	// BackendKeyData.
	BackendPID    uint32
	BackendSecret uint32
	// Params collects ParameterStatus values from startup.
	Params map[string]string
}

// PgError is an ErrorResponse surfaced as a Go error; Code is the
// SQLSTATE the conformance suite asserts on.
type PgError struct {
	Severity string
	Code     string
	Message  string
}

func (e *PgError) Error() string {
	return fmt.Sprintf("pg: %s %s: %s", e.Severity, e.Code, e.Message)
}

// ClientColumn is one RowDescription field as the client saw it.
type ClientColumn struct {
	Name string
	OID  uint32
}

// ClientResult is one statement's outcome: columns, OID-decoded rows
// and the CommandComplete tag.
type ClientResult struct {
	Cols []ClientColumn
	Rows [][]any
	Tag  string
}

// Fingerprint renders rows exactly like server.StreamResult.Fingerprint
// so byte-equivalence between the pg and HTTP paths is a string
// comparison.
func (r *ClientResult) Fingerprint() string {
	var sb strings.Builder
	for _, row := range r.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('\t')
			}
			fmt.Fprintf(&sb, "%v", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DialOptions name the startup parameters a connection is made with.
type DialOptions struct {
	User     string
	Database string
	// Options is the PGOPTIONS-style startup string, e.g.
	// "-c raven.priority=5 -c raven.dop=2".
	Options string
}

// DialClient connects and completes startup (trust auth), returning
// once ReadyForQuery arrives.
func DialClient(ctx context.Context, addr string, o DialOptions) (*Client, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:     nc,
		r:      bufio.NewReader(nc),
		w:      bufio.NewWriter(nc),
		addr:   addr,
		Params: make(map[string]string),
	}
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl)
		defer nc.SetDeadline(time.Time{})
	}
	if err := c.startup(o); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) startup(o DialOptions) error {
	// Startup packet: length, version, key/value pairs, terminator.
	b := make([]byte, 4)
	b = binary.BigEndian.AppendUint32(b, protoVersion3)
	put := func(k, v string) {
		if v == "" {
			return
		}
		b = append(b, k...)
		b = append(b, 0)
		b = append(b, v...)
		b = append(b, 0)
	}
	put("user", o.User)
	put("database", o.Database)
	put("options", o.Options)
	b = append(b, 0)
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)))
	if _, err := c.nc.Write(b); err != nil {
		return err
	}
	for {
		typ, payload, err := readMessage(c.r)
		if err != nil {
			return err
		}
		m := &msgReader{b: payload}
		switch typ {
		case msgAuth:
			code, err := m.int32()
			if err != nil {
				return err
			}
			if code != 0 {
				return fmt.Errorf("pgwire client: unexpected auth request %d", code)
			}
		case msgParameterStatus:
			k, _ := m.cstring()
			v, _ := m.cstring()
			c.Params[k] = v
		case msgBackendKeyData:
			c.BackendPID, _ = m.uint32()
			c.BackendSecret, _ = m.uint32()
		case msgErrorResponse:
			return parsePgError(payload)
		case msgReadyForQuery:
			return nil
		}
	}
}

// Close sends Terminate and closes the socket.
func (c *Client) Close() error {
	c.buf.start(msgTerminate)
	c.buf.finish(c.w)
	c.w.Flush()
	return c.nc.Close()
}

// Cancel opens a second connection and fires a CancelRequest at this
// client's backend, postgres-style.
func (c *Client) Cancel(ctx context.Context) error {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	var b []byte
	b = binary.BigEndian.AppendUint32(b, 16)
	b = binary.BigEndian.AppendUint32(b, cancelRequest)
	b = binary.BigEndian.AppendUint32(b, c.BackendPID)
	b = binary.BigEndian.AppendUint32(b, c.BackendSecret)
	_, err = nc.Write(b)
	return err
}

func parsePgError(payload []byte) *PgError {
	m := &msgReader{b: payload}
	e := &PgError{}
	for {
		f, err := m.byte()
		if err != nil || f == 0 {
			return e
		}
		v, err := m.cstring()
		if err != nil {
			return e
		}
		switch f {
		case 'S':
			e.Severity = v
		case 'C':
			e.Code = v
		case 'M':
			e.Message = v
		}
	}
}

// decodeText converts a text-format value by its column OID into the
// same Go type the HTTP JSON path yields, so fingerprints line up.
func decodeText(oid uint32, s string) (any, error) {
	switch oid {
	case oidInt8:
		return strconv.ParseInt(s, 10, 64)
	case oidFloat8:
		return strconv.ParseFloat(s, 64)
	case oidBool:
		switch s {
		case "t":
			return true, nil
		case "f":
			return false, nil
		}
		return nil, fmt.Errorf("pgwire client: bad bool %q", s)
	default:
		return s, nil
	}
}

// ---- raw frame senders (exported for the conformance suite) ----

// SendParse sends Parse(name, query) with no declared parameter types.
func (c *Client) SendParse(name, query string) {
	c.buf.start(msgParse)
	c.buf.cstring(name)
	c.buf.cstring(query)
	c.buf.int16(0)
	c.buf.finish(c.w)
}

// SendBind sends Bind(portal, stmt, text args); a nil arg slot binds
// NULL.
func (c *Client) SendBind(portal, stmt string, args []*string) {
	c.buf.start(msgBind)
	c.buf.cstring(portal)
	c.buf.cstring(stmt)
	c.buf.int16(0) // parameter formats: default text
	c.buf.int16(len(args))
	for _, a := range args {
		if a == nil {
			c.buf.int32(-1)
			continue
		}
		c.buf.int32(len(*a))
		c.buf.bytes([]byte(*a))
	}
	c.buf.int16(0) // result formats: default text
	c.buf.finish(c.w)
}

// SendDescribe sends Describe(kind 'S' or 'P', name).
func (c *Client) SendDescribe(kind byte, name string) {
	c.buf.start(msgDescribe)
	c.buf.byte(kind)
	c.buf.cstring(name)
	c.buf.finish(c.w)
}

// SendExecute sends Execute(portal, rowLimit).
func (c *Client) SendExecute(portal string, rowLimit int) {
	c.buf.start(msgExecute)
	c.buf.cstring(portal)
	c.buf.int32(rowLimit)
	c.buf.finish(c.w)
}

// SendClose sends Close(kind 'S' or 'P', name).
func (c *Client) SendClose(kind byte, name string) {
	c.buf.start(msgClose)
	c.buf.byte(kind)
	c.buf.cstring(name)
	c.buf.finish(c.w)
}

// SendSync sends Sync and flushes.
func (c *Client) SendSync() error {
	c.buf.start(msgSync)
	c.buf.finish(c.w)
	return c.w.Flush()
}

// Recv reads one backend message (for tests asserting exact sequences).
func (c *Client) Recv() (typ byte, payload []byte, err error) {
	if err := c.w.Flush(); err != nil {
		return 0, nil, err
	}
	return readMessage(c.r)
}

// ---- conveniences ----

// SimpleQuery runs one simple-protocol script and collects every
// result set until ReadyForQuery. A server error is returned as
// *PgError (the connection itself stays usable).
func (c *Client) SimpleQuery(script string) ([]*ClientResult, error) {
	c.buf.start(msgQuery)
	c.buf.cstring(script)
	if err := c.buf.finish(c.w); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var (
		results []*ClientResult
		cur     *ClientResult
		pgErr   *PgError
	)
	for {
		typ, payload, err := readMessage(c.r)
		if err != nil {
			return nil, err
		}
		switch typ {
		case msgRowDescription:
			cur = &ClientResult{}
			if err := cur.readRowDescription(payload); err != nil {
				return nil, err
			}
		case msgDataRow:
			if cur == nil {
				return nil, fmt.Errorf("pgwire client: DataRow before RowDescription")
			}
			if err := cur.readDataRow(payload); err != nil {
				return nil, err
			}
		case msgCommandComplete:
			m := &msgReader{b: payload}
			tag, _ := m.cstring()
			if cur == nil {
				cur = &ClientResult{}
			}
			cur.Tag = tag
			results = append(results, cur)
			cur = nil
		case msgEmptyQueryResp:
			results = append(results, &ClientResult{})
		case msgErrorResponse:
			pgErr = parsePgError(payload)
		case msgReadyForQuery:
			if pgErr != nil {
				return results, pgErr
			}
			return results, nil
		}
	}
}

func (r *ClientResult) readRowDescription(payload []byte) error {
	m := &msgReader{b: payload}
	n, err := m.int16()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		name, err := m.cstring()
		if err != nil {
			return err
		}
		if _, err := m.int32(); err != nil { // table OID
			return err
		}
		if _, err := m.int16(); err != nil { // attr number
			return err
		}
		oid, err := m.uint32()
		if err != nil {
			return err
		}
		if _, err := m.int16(); err != nil { // typlen
			return err
		}
		if _, err := m.int32(); err != nil { // typmod
			return err
		}
		if _, err := m.int16(); err != nil { // format
			return err
		}
		r.Cols = append(r.Cols, ClientColumn{Name: name, OID: oid})
	}
	return nil
}

func (r *ClientResult) readDataRow(payload []byte) error {
	m := &msgReader{b: payload}
	n, err := m.int16()
	if err != nil {
		return err
	}
	row := make([]any, n)
	for i := 0; i < n; i++ {
		ln, err := m.int32()
		if err != nil {
			return err
		}
		if ln == -1 {
			row[i] = nil
			continue
		}
		v, err := m.bytes(ln)
		if err != nil {
			return err
		}
		var oid uint32 = oidText
		if i < len(r.Cols) {
			oid = r.Cols[i].OID
		}
		dv, err := decodeText(oid, string(v))
		if err != nil {
			return err
		}
		row[i] = dv
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// QueryExtended runs one statement through the full extended-protocol
// sequence (Parse/Bind/Describe/Execute/Sync over the unnamed
// statement and portal) with text args, postgres-driver style.
func (c *Client) QueryExtended(query string, args ...string) (*ClientResult, error) {
	c.SendParse("", query)
	ptrs := make([]*string, len(args))
	for i := range args {
		ptrs[i] = &args[i]
	}
	c.SendBind("", "", ptrs)
	c.SendDescribe('P', "")
	c.SendExecute("", 0)
	if err := c.SendSync(); err != nil {
		return nil, err
	}
	res := &ClientResult{}
	var pgErr *PgError
	for {
		typ, payload, err := readMessage(c.r)
		if err != nil {
			return nil, err
		}
		switch typ {
		case msgRowDescription:
			res.Cols = nil
			if err := res.readRowDescription(payload); err != nil {
				return nil, err
			}
		case msgDataRow:
			if err := res.readDataRow(payload); err != nil {
				return nil, err
			}
		case msgCommandComplete:
			m := &msgReader{b: payload}
			res.Tag, _ = m.cstring()
		case msgErrorResponse:
			pgErr = parsePgError(payload)
		case msgReadyForQuery:
			if pgErr != nil {
				return nil, pgErr
			}
			return res, nil
		}
	}
}
