// Command ravenbench regenerates every table and figure of the paper's
// evaluation and prints them in paper-figure form. With -markdown it emits
// the EXPERIMENTS.md body instead.
//
// Usage:
//
//	ravenbench [-quick] [-markdown] [-only Fig2a,Fig3] [-runs N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"raven/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sizes (seconds instead of minutes)")
	markdown := flag.Bool("markdown", false, "emit markdown tables (for EXPERIMENTS.md)")
	timeout := flag.Duration("timeout", 0, "skip experiments not yet started once the deadline passes (0 = no limit); an in-flight experiment runs to completion")
	only := flag.String("only", "", "comma-separated experiment ids (Fig2a,Fig2b,Fig2c,Fig2d,Fig3,PredPruning,BatchVsTuple,StaticAnalysis,RunningExample,ParallelScaling,PreparedPredict)")
	runs := flag.Int("runs", 0, "measured runs per point (default 3, or 1 with -quick)")
	parallelism := flag.Int("parallelism", 0, "degree of parallelism for experiment engines (0 = engine default, 1 = serial)")
	morsel := flag.Int("morsel", 0, "rows per parallel work unit (0 = engine default)")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	cfg.Parallelism = *parallelism
	cfg.MorselSize = *morsel

	type exp struct {
		id string
		fn func(bench.Config) (*bench.Table, error)
	}
	all := []exp{
		{"Fig2a", bench.Fig2a},
		{"Fig2b", bench.Fig2b},
		{"Fig2c", bench.Fig2c},
		{"Fig2d", bench.Fig2d},
		{"Fig3", bench.Fig3},
		{"PredPruning", bench.PredicatePruning},
		{"BatchVsTuple", bench.BatchVsTuple},
		{"StaticAnalysis", bench.StaticAnalysis},
		{"RunningExample", bench.RunningExample},
		{"ParallelScaling", bench.ParallelScaling},
		{"PreparedPredict", bench.PreparedPredict},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	failed := false
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s and the rest: %v\n", e.id, err)
			failed = true
			break
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", e.id)
		tb, err := e.fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		if *markdown {
			fmt.Print(tb.Markdown())
		} else {
			tb.Print(os.Stdout)
		}
	}
	if failed {
		os.Exit(1)
	}
}
