package raven

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"raven/internal/data"
	"raven/internal/ml"
)

// loadHospitalWorkload loads the hospital tables + the Fig 1 tree model
// into an engine the test Opened itself (admission tests need their own
// scheduler options, which hospitalDB's Open call would not carry).
func loadHospitalWorkload(db *DB, rows int) error {
	h, err := data.GenHospital(db.Catalog(), rows, 1000, 42)
	if err != nil {
		return err
	}
	return db.StoreModel("duration_of_stay", &ml.Pipeline{Final: fig1Tree(), InputColumns: h.FeatureCols})
}

// genHospitalInto loads the hospital workload + tree model into db.
func genHospitalInto(db *DB, rows int) (*DB, error) {
	return db, loadHospitalWorkload(db, rows)
}

// TestAdmissionBoundsEngineConcurrency drives 16 concurrent Query calls
// through a 2-slot scheduler: all succeed, the active gauge never
// exceeds the limit, and the scheduler is quiescent after.
func TestAdmissionBoundsEngineConcurrency(t *testing.T) {
	db := MustOpen(WithMaxConcurrentQueries(2), WithSchedulerQueue(32, 0))
	if _, err := genHospitalInto(db, 2000); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(predictQuery)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := db.Query(predictQuery)
			if err != nil {
				errs <- err
				return
			}
			if res.Batch.Len() != want.Batch.Len() {
				errs <- fmt.Errorf("row count drifted under concurrency: %d vs %d", res.Batch.Len(), want.Batch.Len())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := db.Scheduler().Stats()
	if st.MaxActive > 2 {
		t.Fatalf("MaxActive = %d, admission limit 2", st.MaxActive)
	}
	if st.Active != 0 || st.SlotsInUse != 0 || st.Waiting != 0 {
		t.Fatalf("not quiescent: %+v", st)
	}
	if st.Admitted < 17 {
		t.Fatalf("admitted = %d", st.Admitted)
	}
}

// TestAdmissionSlotHeldUntilRowsClose pins the slot lifecycle: an open
// Rows holds its admission slot (second query rejects with queue depth
// 0), and Close returns it.
func TestAdmissionSlotHeldUntilRowsClose(t *testing.T) {
	db := MustOpen(WithMaxConcurrentQueries(1))
	if _, err := genHospitalInto(db, 500); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryContext(context.Background(), predictQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryContext(context.Background(), predictQuery); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull while Rows open, got %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	rows2, err := db.QueryContext(context.Background(), predictQuery)
	if err != nil {
		t.Fatalf("slot not released by Close: %v", err)
	}
	rows2.Close()
	st := db.Scheduler().Stats()
	if st.Rejected != 1 || st.Active != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestStmtAdmission: prepared executions pass through admission too.
func TestStmtAdmission(t *testing.T) {
	db := MustOpen(WithMaxConcurrentQueries(1), WithSchedulerQueue(2, 30*time.Millisecond))
	if _, err := genHospitalInto(db, 500); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(predictQuery)
	if err != nil {
		t.Fatal(err)
	}
	release, err := db.Scheduler().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The statement waits in the queue, then times out.
	start := time.Now()
	if _, err := st.Query(); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("want ErrQueueTimeout, got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("did not wait for the queue timeout")
	}
	release()
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := db.Scheduler().Stats().TimedOut; got != 1 {
		t.Fatalf("TimedOut = %d", got)
	}
}

// TestMaxWorkerSlotsCapsEffectiveDOP: the slot budget is enforced at
// lowering, not just charged — a wire client requesting DOP 64 against
// a 2-slot engine runs at DOP 2.
func TestMaxWorkerSlotsCapsEffectiveDOP(t *testing.T) {
	db := MustOpen(WithMaxConcurrentQueries(4), WithMaxWorkerSlots(2))
	ctx := context.Background()
	if got := db.effectiveParallelism(ctx, QueryOptions{Parallelism: 64}); got != 2 {
		t.Fatalf("effective DOP = %d, want capped to 2", got)
	}
	if got := db.effectiveParallelism(ctx, QueryOptions{Parallelism: 1}); got != 1 {
		t.Fatalf("effective DOP = %d, want 1", got)
	}
	// Without a slot budget (or without a scheduler) the request passes
	// through untouched.
	plain := MustOpen(WithMaxConcurrentQueries(4))
	if got := plain.effectiveParallelism(ctx, QueryOptions{Parallelism: 64}); got != 64 {
		t.Fatalf("uncapped DOP = %d, want 64", got)
	}
	// A tenant slot quota caps tighter than the global budget, whether
	// the tag arrives via options or context.
	tdb := MustOpen(WithMaxConcurrentQueries(4), WithMaxWorkerSlots(8),
		WithTenantQuota("batch", 4, 1))
	if got := tdb.effectiveParallelism(ctx, QueryOptions{Parallelism: 64, Tenant: "batch"}); got != 1 {
		t.Fatalf("tenant-capped DOP = %d, want 1", got)
	}
	if got := tdb.effectiveParallelism(ContextWithTenant(ctx, "batch", 0), QueryOptions{Parallelism: 64}); got != 1 {
		t.Fatalf("ctx-tenant-capped DOP = %d, want 1", got)
	}
	if got := tdb.effectiveParallelism(ctx, QueryOptions{Parallelism: 64}); got != 8 {
		t.Fatalf("untagged DOP = %d, want global cap 8", got)
	}
	// End to end: the capped query still returns correct results and the
	// accounting matches the enforcement.
	if _, err := genHospitalInto(db, 500); err != nil {
		t.Fatal(err)
	}
	opts := DefaultQueryOptions()
	opts.Parallelism = 64
	opts.ParallelThresholdRows = 1
	res, err := db.QueryWithOptions(predictQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	serial := DefaultQueryOptions()
	serial.Parallelism = 1
	want, err := db.QueryWithOptions(predictQuery, serial)
	if err != nil {
		t.Fatal(err)
	}
	batchesIdentical(t, "capped DOP", want.Batch, res.Batch)
	if st := db.Scheduler().Stats(); st.MaxSlotsInUse > 2 {
		t.Fatalf("slot accounting exceeded budget: %+v", st)
	}
}

// TestQueryContextParams covers the ad-hoc parameterized surface: typed
// @var binding without Prepare, gated by admission before compilation.
func TestQueryContextParams(t *testing.T) {
	db := MustOpen(WithMaxConcurrentQueries(1))
	if _, err := genHospitalInto(db, 500); err != nil {
		t.Fatal(err)
	}
	q := `SELECT d.id, p.score FROM PREDICT(MODEL='duration_of_stay',
		DATA=(SELECT * FROM patient_info AS pi
		      JOIN blood_tests AS bt ON pi.id = bt.id
		      JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (score FLOAT) AS p WHERE d.age > @minage`
	rows, err := db.QueryContextParams(context.Background(), q, DefaultQueryOptions(), P("minage", "50"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Baseline with the literal inlined (DECLARE would bind as VARCHAR —
	// the typed binding is exactly what the params surface adds).
	want, err := db.Query(strings.Replace(q, "@minage", "50", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Len() == 0 || res.Batch.Len() != want.Batch.Len() {
		t.Fatalf("params result %d rows, DECLARE result %d", res.Batch.Len(), want.Batch.Len())
	}
	// Missing param fails cleanly — and must not leak its admission slot.
	if _, err := db.QueryContextParams(context.Background(), q, DefaultQueryOptions()); err == nil {
		t.Fatal("missing param accepted")
	}
	// Admission gates the whole call: with the slot held, even the
	// compile does not start.
	release, err := db.Scheduler().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	compiles := db.compiles.Load()
	if _, err := db.QueryContextParams(context.Background(), q, DefaultQueryOptions(), P("minage", "50")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if got := db.compiles.Load(); got != compiles {
		t.Fatal("rejected query still compiled")
	}
	release()
	rows2, err := db.QueryContextParams(context.Background(), q, DefaultQueryOptions(), P("minage", "50"))
	if err != nil {
		t.Fatalf("slot leaked by failed calls: %v", err)
	}
	rows2.Close()
}

// TestDBStatsConsolidated checks the /stats source of truth: plan cache
// counters (incl. size), session cache, scheduler and compiles all
// present and plausible.
func TestDBStatsConsolidated(t *testing.T) {
	db := MustOpen(WithMaxConcurrentQueries(4))
	if _, err := genHospitalInto(db, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(predictQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(predictQuery); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.PlanCache.Hits == 0 || st.PlanCache.Misses == 0 || st.PlanCache.Size == 0 || st.PlanCache.Capacity != defaultPlanCacheSize {
		t.Fatalf("plan cache: %+v", st.PlanCache)
	}
	// The tree model inlines rather than compiling a tensor session, so
	// only the shape of the session-cache section is checked here (its
	// counting has its own tests in internal/ort).
	if st.SessionCache.Hits < 0 || st.SessionCache.Misses < 0 {
		t.Fatalf("session cache: %+v", st.SessionCache)
	}
	if st.Scheduler == nil || st.Scheduler.Admitted != 2 || st.Scheduler.MaxConcurrent != 4 {
		t.Fatalf("scheduler: %+v", st.Scheduler)
	}
	if st.Compiles == 0 || st.CatalogVersion == 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Without admission control the scheduler section is absent.
	plain := MustOpen()
	if plain.Stats().Scheduler != nil {
		t.Fatal("schedulerless engine reported scheduler stats")
	}
}

// TestPlanCacheEvictionCounter fills the plan cache past capacity with
// distinct ad-hoc statements and watches Size stay bounded while
// Evictions count; a DDL then moves Invalidations.
func TestPlanCacheEvictionCounter(t *testing.T) {
	db := MustOpen()
	if err := db.Exec(`CREATE TABLE evict_t (k INT PRIMARY KEY, v FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO evict_t VALUES (1, 1.0)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= defaultPlanCacheSize+10; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT k FROM evict_t WHERE k > %d`, i)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats().PlanCache
	if st.Size > st.Capacity {
		t.Fatalf("size %d exceeds capacity %d", st.Size, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", st)
	}
	// Cache a query, invalidate via DDL, re-run: the stale entry is
	// dropped and counted.
	q := `SELECT k FROM evict_t WHERE k > 0`
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`CREATE TABLE evict_t2 (k INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().PlanCache.Invalidations; got == 0 {
		t.Fatal("catalog bump did not count an invalidation")
	}
}

// TestTenantQuotaEndToEnd drives tagged queries through the engine: a
// zero-quota tenant is rejected with ErrTenantQuota, a bounded tenant
// queues behind its own cap while another tenant runs, and per-tenant
// stats surface through DB.Stats().
func TestTenantQuotaEndToEnd(t *testing.T) {
	db := MustOpen(
		WithMaxConcurrentQueries(4),
		WithSchedulerQueue(8, 0),
		WithTenantQuota("batch", 1, 0),
		WithTenantQuota("banned", 0, 0),
	)
	if _, err := genHospitalInto(db, 500); err != nil {
		t.Fatal(err)
	}
	// Zero quota: rejected before compiling or queueing.
	opts := DefaultQueryOptions()
	opts.Tenant = "banned"
	if _, err := db.QueryWithOptions(predictQuery, opts); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("want ErrTenantQuota, got %v", err)
	}
	// ExecContext under a context tag bills the tenant too.
	if err := db.ExecContext(ContextWithTenant(context.Background(), "banned", 0),
		`CREATE TABLE nope (k INT PRIMARY KEY)`); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("exec: want ErrTenantQuota, got %v", err)
	}
	// A batch query holds the tenant's single slot; a second batch query
	// queues while an interactive query runs immediately.
	batch := DefaultQueryOptions()
	batch.Tenant = "batch"
	rows, err := db.QueryContextWithOptions(context.Background(), predictQuery, batch)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		r, err := db.QueryContextWithOptions(context.Background(), predictQuery, batch)
		if err == nil {
			err = r.Close()
		}
		queued <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.Scheduler().Stats().Tenants["batch"].Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	inter := DefaultQueryOptions()
	inter.Tenant = "interactive"
	inter.Priority = 5
	res, err := db.QueryWithOptions(predictQuery, inter)
	if err != nil {
		t.Fatalf("interactive query blocked by a saturated tenant: %v", err)
	}
	if res.Batch.Len() == 0 {
		t.Fatal("interactive query returned no rows")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	bt := st.Scheduler.Tenants["batch"]
	if bt.Admitted != 2 || bt.Queued != 1 || bt.MaxActive != 1 || !bt.Declared {
		t.Fatalf("batch tenant stats: %+v", bt)
	}
	if it := st.Scheduler.Tenants["interactive"]; it.Admitted != 1 || it.Declared {
		t.Fatalf("interactive tenant stats: %+v", it)
	}
	if bn := st.Scheduler.Tenants["banned"]; bn.Rejected != 2 {
		t.Fatalf("banned tenant stats: %+v", bn)
	}
}

// TestAdmissionQueuedCancellationNoLeak: a queued (not yet admitted)
// query whose context dies must unqueue promptly and leak nothing.
func TestAdmissionQueuedCancellationNoLeak(t *testing.T) {
	db := MustOpen(WithMaxConcurrentQueries(1), WithSchedulerQueue(8, 0))
	if _, err := genHospitalInto(db, 500); err != nil {
		t.Fatal(err)
	}
	release, err := db.Scheduler().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, predictQuery)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.Scheduler().Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	release()
	assertGoroutinesReturn(t, base)
	if st := db.Scheduler().Stats(); st.Cancelled != 1 || st.Admitted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
