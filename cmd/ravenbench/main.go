// Command ravenbench regenerates every table and figure of the paper's
// evaluation and prints them in paper-figure form. With -markdown it emits
// the EXPERIMENTS.md body instead; with -json FILE it also records the
// selected tables (plus host parallelism) as JSON, which is how the
// checked-in BENCH_*.json result files are produced.
//
// Usage:
//
//	ravenbench [-quick] [-markdown] [-only Fig2a,Fig3] [-runs N] [-json FILE]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"raven/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sizes (seconds instead of minutes)")
	markdown := flag.Bool("markdown", false, "emit markdown tables (for EXPERIMENTS.md)")
	timeout := flag.Duration("timeout", 0, "skip experiments not yet started once the deadline passes (0 = no limit); an in-flight experiment runs to completion")
	only := flag.String("only", "", "comma-separated experiment ids (Fig2a,Fig2b,Fig2c,Fig2d,Fig3,PredPruning,BatchVsTuple,StaticAnalysis,RunningExample,ParallelScaling,ParallelBreakers,PreparedPredict,ServeConcurrency)")
	runs := flag.Int("runs", 0, "measured runs per point (default 3, or 1 with -quick)")
	parallelism := flag.Int("parallelism", 0, "degree of parallelism for experiment engines (0 = engine default, 1 = serial)")
	morsel := flag.Int("morsel", 0, "rows per parallel work unit (0 = engine default)")
	jsonPath := flag.String("json", "", "also write the selected tables as JSON to this file")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	cfg.Parallelism = *parallelism
	cfg.MorselSize = *morsel

	type exp struct {
		id string
		fn func(bench.Config) (*bench.Table, error)
	}
	all := []exp{
		{"Fig2a", bench.Fig2a},
		{"Fig2b", bench.Fig2b},
		{"Fig2c", bench.Fig2c},
		{"Fig2d", bench.Fig2d},
		{"Fig3", bench.Fig3},
		{"PredPruning", bench.PredicatePruning},
		{"BatchVsTuple", bench.BatchVsTuple},
		{"StaticAnalysis", bench.StaticAnalysis},
		{"RunningExample", bench.RunningExample},
		{"ParallelScaling", bench.ParallelScaling},
		{"ParallelBreakers", bench.ParallelBreakers},
		{"PreparedPredict", bench.PreparedPredict},
		{"ServeConcurrency", bench.ServeConcurrency},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	failed := false
	var tables []*bench.Table
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s and the rest: %v\n", e.id, err)
			failed = true
			break
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", e.id)
		tb, err := e.fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		tables = append(tables, tb)
		if *markdown {
			fmt.Print(tb.Markdown())
		} else {
			tb.Print(os.Stdout)
		}
	}
	// Written even when every experiment failed: the Failed list is what
	// stops a stale results file from passing as a fresh successful run.
	if *jsonPath != "" {
		// Failed experiment ids are recorded so a partial file is
		// self-describing instead of passing as a complete run.
		var failedIDs []string
		for _, e := range all {
			if len(want) > 0 && !want[e.id] {
				continue
			}
			ran := false
			for _, tb := range tables {
				if tb.ID == e.id {
					ran = true
					break
				}
			}
			if !ran {
				failedIDs = append(failedIDs, e.id)
			}
		}
		out := struct {
			GOMAXPROCS int
			Quick      bool
			Runs       int
			Failed     []string `json:",omitempty"`
			Tables     []*bench.Table
		}{runtime.GOMAXPROCS(0), *quick, cfg.Runs, failedIDs, tables}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			failed = true
		} else if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
