package train

import (
	"math"
	"math/rand"

	"raven/internal/ml"
)

// KMeans is a fitted Lloyd's-algorithm clustering, the offline step of the
// paper's model-clustering optimization (§4.1): data is partitioned so each
// cluster has (near-)constant values on some features, and a specialized
// model is precompiled per cluster.
type KMeans struct {
	Centroids ml.Matrix // k × d
}

// KMeansOptions configures fitting.
type KMeansOptions struct {
	K        int
	MaxIters int
	Seed     int64
}

// FitKMeans runs Lloyd's algorithm with k-means++-style seeding.
func FitKMeans(x ml.Matrix, opts KMeansOptions) *KMeans {
	if opts.K <= 0 {
		opts.K = 2
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 25
	}
	if x.Rows == 0 {
		return &KMeans{Centroids: ml.Matrix{Rows: 0, Cols: x.Cols}}
	}
	k := opts.K
	if k > x.Rows {
		k = x.Rows
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	d := x.Cols
	cents := make([]float64, k*d)

	// k-means++ seeding: first centroid uniform, then proportional to
	// squared distance from the nearest chosen centroid.
	first := rng.Intn(x.Rows)
	copy(cents[:d], x.Row(first))
	dist2 := make([]float64, x.Rows)
	for i := range dist2 {
		dist2[i] = sqDist(x.Row(i), cents[:d])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range dist2 {
			total += v
		}
		pick := 0
		if total > 0 {
			r := rng.Float64() * total
			for i, v := range dist2 {
				r -= v
				if r <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(x.Rows)
		}
		copy(cents[c*d:(c+1)*d], x.Row(pick))
		for i := range dist2 {
			if nd := sqDist(x.Row(i), cents[c*d:(c+1)*d]); nd < dist2[i] {
				dist2[i] = nd
			}
		}
	}

	assign := make([]int, x.Rows)
	for iter := 0; iter < opts.MaxIters; iter++ {
		changed := false
		for i := 0; i < x.Rows; i++ {
			best, bd := 0, math.Inf(1)
			row := x.Row(i)
			for c := 0; c < k; c++ {
				if dd := sqDist(row, cents[c*d:(c+1)*d]); dd < bd {
					best, bd = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		next := make([]float64, k*d)
		for i := 0; i < x.Rows; i++ {
			c := assign[i]
			counts[c]++
			row := x.Row(i)
			crow := next[c*d : (c+1)*d]
			for j, v := range row {
				crow[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// re-seed empty cluster at a random point
				copy(next[c*d:(c+1)*d], x.Row(rng.Intn(x.Rows)))
				continue
			}
			inv := 1 / float64(counts[c])
			crow := next[c*d : (c+1)*d]
			for j := range crow {
				crow[j] *= inv
			}
		}
		cents = next
	}
	return &KMeans{Centroids: ml.Matrix{Data: cents, Rows: k, Cols: d}}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// K returns the number of clusters.
func (m *KMeans) K() int { return m.Centroids.Rows }

// Assign returns the nearest-centroid index for each row.
func (m *KMeans) Assign(x ml.Matrix) []int {
	out := make([]int, x.Rows)
	k, d := m.Centroids.Rows, m.Centroids.Cols
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		best, bd := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if dd := sqDist(row, m.Centroids.Data[c*d:(c+1)*d]); dd < bd {
				best, bd = c, dd
			}
		}
		out[i] = best
	}
	return out
}

// AssignOne returns the nearest-centroid index for one row.
func (m *KMeans) AssignOne(row []float64) int {
	k, d := m.Centroids.Rows, m.Centroids.Cols
	best, bd := 0, math.Inf(1)
	for c := 0; c < k; c++ {
		if dd := sqDist(row, m.Centroids.Data[c*d:(c+1)*d]); dd < bd {
			best, bd = c, dd
		}
	}
	return best
}

// ConstantFeatures inspects the rows assigned to cluster c and returns the
// features whose values are (within eps) constant across the cluster,
// mapped to that constant. Those features can be pinned when compiling the
// per-cluster model.
func (m *KMeans) ConstantFeatures(x ml.Matrix, assign []int, c int, eps float64) map[int]float64 {
	d := x.Cols
	mins := make([]float64, d)
	maxs := make([]float64, d)
	for j := range mins {
		mins[j] = math.Inf(1)
		maxs[j] = math.Inf(-1)
	}
	count := 0
	for i := 0; i < x.Rows; i++ {
		if assign[i] != c {
			continue
		}
		count++
		row := x.Row(i)
		for j, v := range row {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	out := make(map[int]float64)
	if count == 0 {
		return out
	}
	for j := 0; j < d; j++ {
		if maxs[j]-mins[j] <= eps {
			out[j] = (maxs[j] + mins[j]) / 2
		}
	}
	return out
}
