package raven

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"raven/internal/ir"
	"raven/internal/plan"
	"raven/internal/storage"
)

// cachedPlan is one compiled statement template: the front half of query
// processing (parse → bind → unified IR → cross optimization) done once.
// It is immutable after construction — executions lower it into fresh
// operator trees (codegen re-runs per call, so data growth still flips
// plans between serial and parallel) and parameterized plans are cloned,
// never mutated, at bind time.
type cachedPlan struct {
	graph   *ir.Graph
	applied []string
	// sessionKey keys the inference-session cache (model hash, possibly
	// query-specialized); empty disables session caching.
	sessionKey string
	// params names the unbound @parameters the plan needs at execute time,
	// sorted. Non-empty only for prepared statements.
	params []string
	// version is the catalog version the plan was compiled against; any
	// DDL or model store bumps it, invalidating the plan.
	version uint64
	// tables lists every table the bound plan scans, collected from the
	// logical plan before IR construction (FromPlan splices nodes out).
	// The result cache snapshots their data versions around execution;
	// the plan cache itself doesn't need them (plans survive appends —
	// results don't).
	tables []*storage.Table
}

// defaultPlanCacheSize bounds the engine-level plan cache. Entries are a
// few KB (an optimized IR graph), so the default is generous for a
// serving workload's distinct statement set.
const defaultPlanCacheSize = 256

// planCache is the engine-level compiled-plan cache keyed by (SQL text,
// options fingerprint, catalog version). It is what makes prepare-once/
// execute-many and warm repeated queries skip parse/bind/optimize — the
// session-state amortization the paper credits for its warm-run speedups
// (§5 observation ii), applied to plans.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*planEntry
	hits    uint64
	misses  uint64
	// evictions counts entries dropped for capacity (LRU); invalidations
	// counts entries dropped because the catalog moved underneath them.
	// Separately visible in /stats: a hot eviction churn means the cache
	// is undersized, an invalidation churn means DDL/model-store traffic.
	evictions     uint64
	invalidations uint64
	max           int
	// tick orders uses for LRU eviction: ad-hoc statements with inline
	// literals each occupy their own key, so without recency the churn
	// they generate would evict hot repeated statements at random.
	tick uint64
}

// planEntry pairs a cached plan with its last-use tick.
type planEntry struct {
	plan *cachedPlan
	used uint64
}

func newPlanCache(max int) *planCache {
	return &planCache{entries: make(map[string]*planEntry), max: max}
}

// get returns the cached plan for key if it was compiled against the
// current catalog version; a stale entry is dropped and counts as a miss.
func (c *planCache) get(key string, version uint64) *cachedPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok && e.plan.version == version {
		c.hits++
		c.tick++
		e.used = c.tick
		return e.plan
	}
	if ok {
		delete(c.entries, key)
		c.invalidations++
	}
	c.misses++
	return nil
}

// put caches a plan, first evicting entries invalidated by catalog
// changes, then the least-recently-used entries if the cache is still
// over capacity. current is the catalog version now: a plan whose compile
// straddled a catalog change (p.version != current) is already stale and
// is not inserted — and must not evict the fresher entries around it.
func (c *planCache) put(key string, p *cachedPlan, current uint64) {
	if p.version != current {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.plan.version != current {
			delete(c.entries, k)
			c.invalidations++
		}
	}
	for len(c.entries) >= c.max {
		var lruKey string
		var lruUsed uint64
		for k, e := range c.entries {
			if lruKey == "" || e.used < lruUsed {
				lruKey, lruUsed = k, e.used
			}
		}
		delete(c.entries, lruKey)
		c.evictions++
	}
	c.tick++
	c.entries[key] = &planEntry{plan: p, used: c.tick}
}

// sweep drops every entry not compiled against the current catalog
// version, counting them as invalidations.
func (c *planCache) sweep(current uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.plan.version != current {
			delete(c.entries, k)
			c.invalidations++
		}
	}
}

// sweepStaleCaches eagerly drops plan- and result-cache entries
// compiled against an older catalog version. Both caches already
// validate at lookup, so staleness is never served either way — this
// pass exists for memory: entries pin the tables their plans scan
// (the IR graph holds the scan targets), so after a DROP TABLE the
// dropped table's column data would otherwise stay reachable until LRU
// pressure or a chance lookup happened to touch each entry. Called
// after any statement or model store that bumps the catalog version.
func (db *DB) sweepStaleCaches() {
	current := db.catalog.Version()
	db.plans.sweep(current)
	if db.results != nil {
		db.results.Sweep(func(e *resultEntry) bool { return e.version == current })
	}
}

// info snapshots the cache counters for DB.Stats / the /stats endpoint.
func (c *planCache) info() PlanCacheInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheInfo{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Size:          len(c.entries),
		Capacity:      c.max,
	}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// planKey builds the cache key: every compile-relevant input that is not
// the catalog version (which is checked at lookup). Execution knobs
// (parallelism, morsel size, thresholds) are deliberately absent — they
// are applied when the template lowers to operators, so one cached plan
// serves every DOP. vars is the session-variable snapshot the caller will
// also compile with, so key and plan cannot disagree under a concurrent
// Exec DECLARE.
func (db *DB) planKey(q string, opts QueryOptions, allowParams bool, vars map[string]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "x=%t s=%t q=%t di=%t dn=%t dp=%t dj=%t g=%t m=%d dc=%t ap=%t",
		opts.CrossOptimize, opts.UseStatistics, opts.ModelQuerySplitting,
		opts.DisableInlining, opts.DisableNNTranslation, opts.DisablePruning,
		opts.DisableProjectionPushdown, opts.UseGPU, opts.Mode,
		opts.DisableSessionCache, allowParams)
	// Session variables bind as literals, so the ones this statement
	// references are compile inputs too. Only referenced vars enter the
	// key: otherwise every unrelated DECLARE would strand the whole
	// cache's entries under dead keys. The reference scan is textual
	// (cheap, runs before parsing); a false positive — an @name inside a
	// string literal — only adds harmless key entropy.
	if len(vars) > 0 {
		names := make([]string, 0, len(vars))
		for k := range vars {
			if referencesVar(q, k) {
				names = append(names, k)
			}
		}
		if len(names) > 0 {
			sort.Strings(names)
			// Length-prefix each field so values containing the join
			// characters cannot collide two different environments onto
			// one fingerprint.
			h := sha256.New()
			for _, k := range names {
				fmt.Fprintf(h, "%d:%s=%d:%s;", len(k), k, len(vars[k]), vars[k])
			}
			sb.WriteString("|v=" + hex.EncodeToString(h.Sum(nil)[:8]))
		}
	}
	sb.WriteString("|")
	sb.WriteString(q)
	return sb.String()
}

// referencesVar reports whether q contains an @name token for the given
// variable, requiring a non-identifier character after the name so @min
// does not match @minage.
func referencesVar(q, name string) bool {
	for i := 0; i+len(name) < len(q); {
		j := strings.Index(q[i:], "@"+name)
		if j < 0 {
			return false
		}
		end := i + j + 1 + len(name)
		if end >= len(q) || !isIdentChar(q[end]) {
			return true
		}
		i = end
	}
	return false
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// collectPlanTables walks a bound logical plan for the tables it scans,
// deduplicated in first-visit order. Scan is the only node that holds a
// table, so this is the complete read set.
func collectPlanTables(n plan.Node) []*storage.Table {
	var out []*storage.Table
	seen := map[*storage.Table]bool{}
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if n == nil {
			return
		}
		if s, ok := n.(*plan.Scan); ok && !seen[s.Table] {
			seen[s.Table] = true
			out = append(out, s.Table)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}
