package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte{0xAB}, 10_000)}
	for i, p := range want {
		if err := l.Append(byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Records(); got != 3 {
		t.Fatalf("records = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var types []byte
	var payloads [][]byte
	good, n, err := Replay(path, func(rt byte, p []byte) error {
		types = append(types, rt)
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}
	st, _ := os.Stat(path)
	if good != st.Size() {
		t.Fatalf("good offset %d != file size %d", good, st.Size())
	}
	for i, p := range want {
		if types[i] != byte(i+1) || !bytes.Equal(payloads[i], p) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	good, n, err := Replay(filepath.Join(t.TempDir(), "absent.log"), func(byte, []byte) error { return nil })
	if err != nil || good != 0 || n != 0 {
		t.Fatalf("missing file: good=%d n=%d err=%v", good, n, err)
	}
}

// TestTornTail appends records, then simulates every possible torn final
// write by truncating the file at each byte boundary inside the last
// record: replay must recover exactly the first two records and report
// the offset where the torn record began.
func TestTornTail(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(7, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)
	recSize := len(full) / 3
	boundary := int64(2 * recSize)
	for cut := boundary + 1; cut < int64(len(full)); cut += 17 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var n int
		good, _, err := Replay(path, func(byte, []byte) error { n++; return nil })
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 || good != boundary {
			t.Fatalf("cut=%d: replayed %d records good=%d, want 2 records good=%d", cut, n, good, boundary)
		}
	}
	// OpenTruncated drops the tail and appending resumes cleanly.
	if err := os.WriteFile(path, full[:boundary+5], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenTruncated(path, Options{Policy: FsyncOff}, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(9, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	var last []byte
	_, n, err := Replay(path, func(rt byte, p []byte) error { last = append([]byte(nil), p...); return nil })
	if err != nil || n != 3 || string(last) != "after" {
		t.Fatalf("after truncation: n=%d last=%q err=%v", n, last, err)
	}
}

// TestCorruptFrame flips a byte inside a middle record: replay stops at
// the corrupt frame even though later frames are intact — a mid-file
// checksum failure is indistinguishable from a torn tail, and replaying
// past a hole would reorder history.
func TestCorruptFrame(t *testing.T) {
	path := logPath(t)
	l, _ := Open(path, Options{Policy: FsyncOff})
	for i := 0; i < 3; i++ {
		if err := l.Append(1, bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, _ := os.ReadFile(path)
	recSize := len(full) / 3
	full[recSize+headerSize+10] ^= 0xFF
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	good, _, err := Replay(path, func(byte, []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || good != int64(recSize) {
		t.Fatalf("replayed %d good=%d, want 1 good=%d", n, good, recSize)
	}
}

// TestGroupCommit hammers a FsyncAlways log from many goroutines; every
// append must be durable and replay must see all of them intact.
func TestGroupCommit(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, Options{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(2, fmt.Appendf(nil, "w%d-%d", w, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	_, n, err := Replay(path, func(rt byte, p []byte) error {
		seen[string(p)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != writers*per || len(seen) != writers*per {
		t.Fatalf("replayed %d (%d distinct), want %d", n, len(seen), writers*per)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Policy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"off", FsyncOff}} {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Fatalf("String() = %q, want %q", got.String(), c.in)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}
