# One-command tier-1 gate: `make ci` is what every PR must keep green.
GO ?= go
# Coverage floor for `make cover` (percent of statements).
COVER_FLOOR ?= 70

.PHONY: all build test race vet fmt-check bench bench-quick bench-check bench-micro cover smoke smoke-serve smoke-cluster smoke-durable smoke-pgwire ci

all: ci

build:
	$(GO) build ./...

# fmt-check fails the gate on formatting drift (gofmt -l must print
# nothing); run `gofmt -w .` to fix.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the parallel executor
# tests (internal/exec, internal/ort, package raven) are written to hammer
# shared tables, predictors and the session cache when run this way, and
# the cancellation tests (cancel_test.go) double as goroutine-leak checks:
# they fail if exchange workers or predictor goroutines survive a
# cancelled query.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# cover reports statement coverage and enforces a floor so the serving-API
# surface (prepared statements, plan cache, streaming, cancellation) stays
# tested as it grows.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "FAIL: coverage %.1f%% below floor %s%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %s%%)\n", t, f }'

# smoke drives the real CLI through the streaming serving API with a
# deadline, end to end.
smoke:
	echo "SELECT COUNT(*) AS n FROM patient_info" | $(GO) run ./cmd/ravensql -rows 2000 -timeout 30s

# smoke-serve boots ravenserved on a random port and drives the wire
# protocol end to end over real HTTP: DDL + INSERT through /query, a
# parameterized PREDICT, the prepared-statement warm path, /stats, and a
# graceful drain. One process, exits non-zero on any failure.
smoke-serve:
	$(GO) run ./cmd/ravenserved -selftest -rows 2000

# smoke-cluster boots two in-process replicas behind ravenrouter and
# drives the cluster end to end: replicated DDL + model store, routed
# and prepared-statement reads with fingerprint parity across homes, a
# graceful drain of one replica under concurrent load (zero errors
# tolerated), and aggregated stats. One process, exits non-zero on any
# failure.
smoke-cluster:
	$(GO) run ./cmd/ravenrouter -selftest

# smoke-durable proves durability against real processes and a real
# kill -9: a child ravenserved on a scratch -data-dir is loaded over
# HTTP (table + model), SIGKILLed, restarted on the same directory, and
# must answer byte-identical query/PREDICT fingerprints for every
# acknowledged pre-crash write; a graceful restart then proves the
# checkpoint path. One command, exits non-zero on any divergence.
smoke-durable:
	$(GO) run ./cmd/ravenserved -crashtest

# smoke-pgwire boots ravenserved with both front ends on random ports
# and drives the Postgres wire protocol end to end with an in-process
# pg client: simple-protocol DDL + SELECT, PREDICT through both the
# simple and extended (prepared, $1-parameterized) protocols with
# byte-equivalent results against the HTTP/NDJSON path, pg sessions
# billed to their startup-param tenant in /stats, and a zero-quota
# tenant refused with SQLSTATE 53300. One process, exits non-zero on
# any failure.
smoke-pgwire:
	$(GO) run ./cmd/ravenserved -pgselftest -rows 2000

# bench regenerates the paper experiment tables at quick scale.
bench:
	$(GO) run ./cmd/ravenbench -quick

# bench-quick smoke-runs the pipeline-breaker ablation, the serving
# concurrency ablation, the multi-tenant isolation ablation, the
# cluster scale-out/drain experiment and the result-cache experiment
# and records all of them, so `make ci` catches breaker regressions (a
# breaker that silently serializes or errors), serving regressions
# (admission breach, wire-path breakage), tenant regressions (quota
# breach, starved tenant), cluster regressions (dropped or diverged
# queries during a graceful drain) and cache regressions (a stale read,
# a lost hit speedup, a cached read consuming a scheduler slot) without
# paying for the full paper suite. BENCH_JSON / BENCH_SERVE_JSON /
# BENCH_TENANT_JSON / BENCH_CLUSTER_JSON / BENCH_CACHE_JSON are where
# the tables are recorded; `make ci` points them at untracked scratch
# paths so routine CI runs don't churn the checked-in BENCH_*.json
# files — regenerate those deliberately with a plain `make bench-quick`.
# bench-check then validates the recordings (including the cluster
# drain-proof and cache stale=0 notes), so a silently-empty bench run
# fails the gate instead of committing a hollow BENCH file.
BENCH_JSON ?= BENCH_parallel_breakers.json
BENCH_SCALING_JSON ?= BENCH_parallel_scaling.json
BENCH_SERVE_JSON ?= BENCH_serve.json
BENCH_TENANT_JSON ?= BENCH_tenant.json
BENCH_CLUSTER_JSON ?= BENCH_cluster.json
BENCH_CACHE_JSON ?= BENCH_cache.json
BENCH_WAL_JSON ?= BENCH_wal.json
bench-quick:
	$(GO) run ./cmd/ravenbench -quick -only ParallelBreakers -json $(BENCH_JSON)
	$(GO) run ./cmd/ravenbench -quick -only ParallelScaling -json $(BENCH_SCALING_JSON)
	$(GO) run ./cmd/ravenbench -quick -only ServeConcurrency -json $(BENCH_SERVE_JSON)
	$(GO) run ./cmd/ravenbench -quick -only MultiTenantServe -json $(BENCH_TENANT_JSON)
	$(GO) run ./cmd/ravenbench -quick -only ClusterServe -json $(BENCH_CLUSTER_JSON)
	$(GO) run ./cmd/ravenbench -quick -only CachedServe -json $(BENCH_CACHE_JSON)
	$(GO) run ./cmd/ravenbench -quick -only DurableRecovery -json $(BENCH_WAL_JSON)
	@$(MAKE) bench-check

bench-check:
	$(GO) run ./cmd/ravenbench -check "$(BENCH_JSON):ParallelBreakers,$(BENCH_SCALING_JSON):ParallelScaling,$(BENCH_SERVE_JSON):ServeConcurrency,$(BENCH_TENANT_JSON):MultiTenantServe,$(BENCH_CLUSTER_JSON):ClusterServe,$(BENCH_CACHE_JSON):CachedServe,$(BENCH_WAL_JSON):DurableRecovery"

# bench-micro runs the data-plane micro-benchmarks (typed kernels, vector
# pooling, gather) with allocation reporting.
bench-micro:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/types ./internal/expr

# ci runs the suite twice, not three times: cover subsumes a plain
# `make test` (same tests, plus the coverage floor and cover.out), so
# the gate is cover + race rather than test + race + a separate cover.
ci: fmt-check build vet cover race smoke smoke-serve smoke-cluster smoke-durable smoke-pgwire
	@$(MAKE) bench-quick BENCH_JSON=.bench_ci.json BENCH_SCALING_JSON=.bench_scaling_ci.json BENCH_SERVE_JSON=.bench_serve_ci.json BENCH_TENANT_JSON=.bench_tenant_ci.json BENCH_CLUSTER_JSON=.bench_cluster_ci.json BENCH_CACHE_JSON=.bench_cache_ci.json BENCH_WAL_JSON=.bench_wal_ci.json
