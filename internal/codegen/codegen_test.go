package codegen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"raven/internal/exec"
	"raven/internal/expr"
	"raven/internal/ir"
	"raven/internal/ml"
	"raven/internal/nnconv"
	"raven/internal/plan"
	"raven/internal/rt"
	"raven/internal/storage"
	"raven/internal/types"
)

func featureTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	tb := storage.NewTable("t", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "a", Type: types.Float},
		types.Column{Name: "b", Type: types.Float},
	))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		if err := tb.AppendRow(int64(i), rng.NormFloat64(), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func lrModelNode(src ir.Node) *ir.ModelNode {
	return &ir.ModelNode{
		M:         &ml.LogisticRegression{W: []float64{1, -1}, B: 0.5},
		InputCols: []string{"a", "b"},
		OutputCol: types.Column{Name: "score", Type: types.Float},
		In:        src,
	}
}

func collect(t *testing.T, op exec.Operator) *types.Batch {
	t.Helper()
	out, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompileModelChain(t *testing.T) {
	tb := featureTable(t, 500)
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	mn := lrModelNode(src)
	g := &ir.Graph{Root: mn}
	for _, mode := range []rt.Mode{rt.ModeInProcess, rt.ModeInProcessNN} {
		op, err := Compile(g, &Config{Mode: mode, Parallelism: 1})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		out := collect(t, op)
		if out.Len() != 500 || out.Schema.IndexOf("score") < 0 {
			t.Fatalf("mode %v: %d rows, schema %v", mode, out.Len(), out.Schema)
		}
		// spot check row 0
		a := out.Col("a").Floats[0]
		b := out.Col("b").Floats[0]
		want := 1 / (1 + math.Exp(-(a - b + 0.5)))
		if math.Abs(out.Col("score").Floats[0]-want) > 1e-9 {
			t.Fatalf("mode %v: score = %v want %v", mode, out.Col("score").Floats[0], want)
		}
	}
}

func TestCompileWithSinkFragment(t *testing.T) {
	tb := featureTable(t, 300)
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	mn := lrModelNode(src)
	outSchema := tb.Schema().Concat(types.NewSchema(types.Column{Name: "score", Type: types.Float}))
	sinkPlan := &plan.Filter{
		Child: &plan.Input{Sch: outSchema},
		Pred:  expr.NewBinary(expr.OpGt, &expr.Column{Name: "score"}, expr.FloatLit(0.6)),
	}
	sink := &ir.RelNode{Plan: sinkPlan, In: mn}
	g := &ir.Graph{Root: sink}
	op, err := Compile(g, &Config{Mode: rt.ModeInProcess, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := collect(t, op)
	for i := 0; i < out.Len(); i++ {
		if out.Col("score").Floats[i] <= 0.6 {
			t.Fatalf("sink filter not applied at row %d", i)
		}
	}
}

func TestCompileLANode(t *testing.T) {
	tb := featureTable(t, 400)
	pipe := &ml.Pipeline{Final: &ml.LogisticRegression{W: []float64{1, -1}, B: 0.5}, InputColumns: []string{"a", "b"}}
	graph, err := nnconv.TranslatePipeline(pipe)
	if err != nil {
		t.Fatal(err)
	}
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	la := &ir.LANode{G: graph, InputCols: []string{"a", "b"}, OutputCol: types.Column{Name: "score", Type: types.Float}, In: src}
	g := &ir.Graph{Root: la}
	op, err := Compile(g, &Config{Parallelism: 1, CacheKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	out := collect(t, op)
	if out.Len() != 400 {
		t.Fatalf("rows = %d", out.Len())
	}
	// GPU variant also runs (results computed on CPU, charged per model)
	la.UseGPU = true
	op2, err := Compile(g, &Config{Parallelism: 1, CacheKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	out2 := collect(t, op2)
	if math.Abs(out2.Col("score").Floats[7]-out.Col("score").Floats[7]) > 1e-12 {
		t.Error("gpu-sim result differs from cpu")
	}
}

func TestCompileSplitNode(t *testing.T) {
	tb := featureTable(t, 1000)
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	left := &ir.ModelNode{M: &ml.LogisticRegression{W: []float64{0, 0}, B: -10}, InputCols: []string{"a", "b"}, OutputCol: types.Column{Name: "score", Type: types.Float}}
	right := &ir.ModelNode{M: &ml.LogisticRegression{W: []float64{0, 0}, B: 10}, InputCols: []string{"a", "b"}, OutputCol: types.Column{Name: "score", Type: types.Float}}
	split := &ir.SplitNode{CondCol: "a", Threshold: 0, Left: left, Right: right, In: src}
	g := &ir.Graph{Root: split}
	op, err := Compile(g, &Config{Mode: rt.ModeInProcess, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := collect(t, op)
	if out.Len() != 1000 {
		t.Fatalf("rows = %d (split lost rows)", out.Len())
	}
	av := out.Col("a")
	sv := out.Col("score")
	for i := 0; i < out.Len(); i++ {
		want := 0.0 // sigmoid(-10) ~ 0
		if av.Floats[i] > 0 {
			want = 1 // sigmoid(10) ~ 1
		}
		if math.Abs(sv.Floats[i]-want) > 1e-3 {
			t.Fatalf("row %d routed to wrong branch: a=%v score=%v", i, av.Floats[i], sv.Floats[i])
		}
	}
}

func TestCompileUDFNode(t *testing.T) {
	tb := featureTable(t, 100)
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	outSchema := types.NewSchema(types.Column{Name: "doubled", Type: types.Float})
	udf := &ir.UDFNode{
		Name: "double_a",
		Out:  outSchema,
		Fn: func(b *types.Batch) (*types.Batch, error) {
			v := types.NewVector(types.Float, b.Len())
			a := b.Col("a")
			for i := range v.Floats {
				v.Floats[i] = a.Floats[i] * 2
			}
			return &types.Batch{Schema: outSchema, Vecs: []*types.Vector{v}}, nil
		},
		In: src,
	}
	g := &ir.Graph{Root: udf}
	op, err := Compile(g, &Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := collect(t, op)
	if out.Len() != 100 || out.Schema.IndexOf("doubled") != 0 {
		t.Fatalf("udf output = %v", out.Schema)
	}
}

func TestCompileErrors(t *testing.T) {
	// dangling transform
	tb := featureTable(t, 10)
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	tr := &ir.TransformNode{T: &ml.ColumnSelect{Indices: []int{0}}, In: src}
	if _, err := Compile(&ir.Graph{Root: tr}, &Config{}); err == nil {
		t.Error("dangling transform should fail")
	}
	// model without input
	mn := lrModelNode(nil)
	if _, err := Compile(&ir.Graph{Root: mn}, &Config{}); err == nil {
		t.Error("model without input should fail")
	}
}

func TestGenerateSQL(t *testing.T) {
	tb := featureTable(t, 10)
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	mn := lrModelNode(src)
	g := &ir.Graph{Root: mn}
	s := GenerateSQL(g)
	if !strings.Contains(s, "PREDICT") || !strings.Contains(s, "Scan(t)") {
		t.Errorf("generated SQL:\n%s", s)
	}
}

func TestParallelCompileThroughModel(t *testing.T) {
	tb := featureTable(t, 200000)
	src := &ir.RelNode{Plan: plan.NewScan(tb)}
	mn := lrModelNode(src)
	g := &ir.Graph{Root: mn}
	op, err := Compile(g, &Config{Mode: rt.ModeInProcess, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*exec.Exchange); !ok {
		t.Fatalf("compiled = %T, want Exchange (model stage inside workers)", op)
	}
	out := collect(t, op)
	if out.Len() != 200000 {
		t.Errorf("rows = %d", out.Len())
	}
}
