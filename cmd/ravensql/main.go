// Command ravensql executes a SQL script against a Raven engine preloaded
// with the paper's demo workloads and stored models, printing query
// results. It is the closest thing to the live demo the paper promises.
//
// Usage:
//
//	ravensql [-rows N] [-file script.sql] [-parallelism N] [-morsel N]
//	         [-timeout D] [-result-cache-bytes N]
//	echo "SELECT COUNT(*) AS n FROM patient_info" | ravensql
//
// Queries run through the streaming serving API (QueryContext): rows print
// as they arrive and -timeout bounds each SELECT with a context deadline,
// cancelling mid-scan instead of materializing a doomed result (DDL and
// INSERT statements are not bounded — DB.Exec takes no context).
//
// Lines starting with a backslash are meta commands, processed in script
// order between statements:
//
//	\cache on|off   toggle the semantic result cache for following queries
//	\cache          print the toggle state and the cache's counters
//
// The engine's result cache is built with -result-cache-bytes (default
// 64MB) but starts toggled off, so scripts behave exactly as before
// until a \cache on line opts in; repeated SELECT/PREDICT queries after
// it are served from cache until DDL, INSERT or a model store
// invalidates them.
//
// Preloaded: hospital tables (patient_info, blood_tests, prenatal_tests)
// with a stored decision-tree model 'duration_of_stay', and the
// flights_features table with an L1-sparse model 'flight_delay'.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"raven"
	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
)

func main() {
	rows := flag.Int("rows", 100000, "rows per generated table")
	file := flag.String("file", "", "SQL script file ('-' or empty reads stdin)")
	explain := flag.Bool("explain", false, "print plans instead of executing")
	parallelism := flag.Int("parallelism", 0, "degree of parallelism for query execution (0 = GOMAXPROCS, 1 = serial)")
	morsel := flag.Int("morsel", 0, "rows per parallel work unit (0 = engine default)")
	timeout := flag.Duration("timeout", 0, "per-query deadline for SELECTs (0 = none), e.g. 500ms or 30s; DDL/INSERT statements are not bounded")
	cacheBytes := flag.Int64("result-cache-bytes", 64<<20, "semantic result cache budget in bytes; the cache starts toggled off — enable it with a \\cache on meta line (0 = never built)")
	dataDir := flag.String("data-dir", "", "durable data directory: writes are WAL-logged and recovered on restart; preload is skipped when the directory already holds the demo tables (empty = in-memory)")
	fsync := flag.String("fsync", "always", "WAL fsync policy for -data-dir: always, interval or off")
	segmentRows := flag.Int("segment-rows", 0, "rows per sealed on-disk segment for -data-dir (0 = default 65536)")
	flag.Parse()

	db, err := setup(*rows, *parallelism, *morsel, *cacheBytes, *dataDir, *fsync, *segmentRows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	defer func() {
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "close:", err)
		}
	}()

	var script []byte
	if *file == "" || *file == "-" {
		script, err = io.ReadAll(os.Stdin)
	} else {
		script, err = os.ReadFile(*file)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "read:", err)
		os.Exit(1)
	}

	// The cache starts off so existing scripts behave identically; the
	// \cache meta command flips it mid-script.
	cacheOn := false
	for _, item := range splitScript(string(script)) {
		if item.meta {
			err = runMeta(db, item.text, &cacheOn, *cacheBytes)
		} else {
			err = run(db, item.text, *explain, *timeout, cacheOn)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}

// runMeta executes one backslash meta line.
func runMeta(db *raven.DB, line string, cacheOn *bool, cacheBytes int64) error {
	fields := strings.Fields(line)
	switch strings.ToLower(fields[0]) {
	case `\cache`:
		if len(fields) == 1 {
			state := "off"
			if *cacheOn {
				state = "on"
			}
			fmt.Printf("-- cache %s", state)
			if st := db.Stats().ResultCache; st != nil {
				fmt.Printf(" (hits %d, misses %d, %d entries, %d/%d bytes)",
					st.Hits, st.Misses, st.Entries, st.Bytes, st.MaxBytes)
			}
			fmt.Println()
			return nil
		}
		switch strings.ToLower(fields[1]) {
		case "on":
			if cacheBytes <= 0 {
				return fmt.Errorf(`\cache on: no cache was built (ran with -result-cache-bytes 0)`)
			}
			*cacheOn = true
		case "off":
			*cacheOn = false
		default:
			return fmt.Errorf(`\cache: want on, off or no argument, got %q`, fields[1])
		}
		return nil
	default:
		return fmt.Errorf("unknown meta command %q (try \\cache)", fields[0])
	}
}

func setup(rows, parallelism, morsel int, cacheBytes int64, dataDir, fsync string, segmentRows int) (*raven.DB, error) {
	opts := []raven.Option{raven.WithParallelism(parallelism), raven.WithMorselSize(morsel)}
	if cacheBytes > 0 {
		opts = append(opts, raven.WithResultCache(cacheBytes))
	}
	if dataDir != "" {
		opts = append(opts, raven.WithDataDir(dataDir), raven.WithFsync(fsync), raven.WithSegmentRows(segmentRows))
	}
	db, err := raven.Open(opts...)
	if err != nil {
		return nil, err
	}
	if db.Catalog().HasTable("patient_info") {
		// A recovered durable directory already holds the demo workload.
		return db, nil
	}
	h, err := data.GenHospital(db.Catalog(), rows, 4000, 42)
	if err != nil {
		return nil, err
	}
	tree := train.FitTree(h.TrainX, h.TrainY, train.TreeOptions{MaxDepth: 6, MinLeaf: 10})
	if err := db.StoreModel("duration_of_stay", &ml.Pipeline{Final: tree, InputColumns: h.FeatureCols}); err != nil {
		return nil, err
	}
	fl, err := data.GenFlightsWide(db.Catalog(), rows, 100, 30, 4000, 7)
	if err != nil {
		return nil, err
	}
	lr := train.FitLogReg(fl.TrainX, fl.TrainY, train.LogRegOptions{L1: 0.02, Epochs: 60, Seed: 1})
	if err := db.StoreModel("flight_delay", &ml.Pipeline{Final: lr, InputColumns: fl.FeatureCols}); err != nil {
		return nil, err
	}
	return db, nil
}

// scriptItem is one unit of script execution: a SQL statement group or
// a backslash meta line.
type scriptItem struct {
	meta bool
	text string
}

// splitScript separates backslash meta lines (processed line-by-line,
// in order) from the SQL around them, which goes through the usual
// statement splitter.
func splitScript(s string) []scriptItem {
	var out []scriptItem
	var sql strings.Builder
	flush := func() {
		for _, stmt := range splitStatements(sql.String()) {
			out = append(out, scriptItem{text: stmt})
		}
		sql.Reset()
	}
	for _, line := range strings.Split(s, "\n") {
		if t := strings.TrimSpace(line); strings.HasPrefix(t, `\`) {
			flush()
			out = append(out, scriptItem{meta: true, text: t})
			continue
		}
		sql.WriteString(line)
		sql.WriteByte('\n')
	}
	flush()
	return out
}

// splitStatements breaks the script on top-level semicolons, keeping
// DECLARE+SELECT pairs together so session variables bind.
func splitStatements(s string) []string {
	parts := strings.Split(s, ";")
	var out []string
	var pending string
	for _, p := range parts {
		t := strings.TrimSpace(p)
		if t == "" {
			continue
		}
		up := strings.ToUpper(t)
		if strings.HasPrefix(up, "DECLARE") || strings.HasPrefix(up, "CREATE") || strings.HasPrefix(up, "INSERT") || strings.HasPrefix(up, "DROP") {
			pending += t + ";\n"
			continue
		}
		out = append(out, pending+t)
		pending = ""
	}
	if strings.TrimSpace(pending) != "" {
		out = append(out, strings.TrimSuffix(pending, ";\n"))
	}
	return out
}

func run(db *raven.DB, stmt string, explain bool, timeout time.Duration, cacheOn bool) error {
	up := strings.ToUpper(strings.TrimSpace(stmt))
	isQuery := strings.Contains(up, "SELECT") && !strings.HasPrefix(up, "CREATE") && !strings.HasPrefix(up, "INSERT")
	if !isQuery {
		return db.Exec(stmt)
	}
	if explain {
		out, err := db.Explain(stmt, raven.DefaultQueryOptions())
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	ctx := context.Background()
	if !cacheOn {
		// The engine may hold a result cache (built at -result-cache-bytes)
		// but the script has not opted in: bypass per query.
		ctx = raven.ContextWithoutResultCache(ctx)
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	rows, err := db.QueryContext(ctx, stmt)
	if err != nil {
		return err
	}
	defer rows.Close()
	cols := rows.Columns()
	fmt.Println(strings.Join(cols, "\t"))
	const maxPrint = 25
	n := 0
	vals := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for j := range vals {
		ptrs[j] = &vals[j]
	}
	for rows.Next() {
		if n < maxPrint {
			if err := rows.Scan(ptrs...); err != nil {
				return err
			}
			parts := make([]string, len(vals))
			for j, v := range vals {
				parts[j] = fmt.Sprintf("%v", v)
			}
			fmt.Println(strings.Join(parts, "\t"))
		}
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if n > maxPrint {
		fmt.Printf("... (%d rows total)\n", n)
	}
	fmt.Printf("-- %d rows in %v (compile %v + exec %v)",
		n, (rows.CompileTime + rows.ExecTime()).Round(100*1000),
		rows.CompileTime.Round(100*1000), rows.ExecTime().Round(100*1000))
	if len(rows.AppliedRules) > 0 {
		fmt.Printf(" (rules: %s)", strings.Join(rows.AppliedRules, ", "))
	}
	fmt.Println()
	return nil
}
