package ir

import (
	"fmt"

	"raven/internal/ml"
	"raven/internal/plan"
)

// PipelineResolver loads the stored pipeline for a model name (backed by
// the model store).
type PipelineResolver func(name string) (*ml.Pipeline, error)

// FromPlan lowers a bound logical plan into the unified IR: relational
// subtrees become RelNodes, and every PREDICT expands into the stored
// pipeline's featurizer chain plus model node — the static-analysis result
// (§3.2) spliced into the query plan, exactly Fig 1's unified DAG.
func FromPlan(p plan.Node, resolve PipelineResolver) (*Graph, error) {
	root, err := lower(p, resolve)
	if err != nil {
		return nil, err
	}
	return &Graph{Root: root}, nil
}

// lower converts a plan subtree into an IR node.
func lower(p plan.Node, resolve PipelineResolver) (Node, error) {
	pr, above := findPredict(p)
	if pr == nil {
		return &RelNode{Plan: p, Engine: EngineDB}, nil
	}
	// Below the predict: recurse (supports stacked PREDICTs).
	below, err := lower(pr.Child, resolve)
	if err != nil {
		return nil, err
	}
	pipe, err := resolve(pr.ModelName)
	if err != nil {
		return nil, err
	}
	if err := pipe.Validate(); err != nil {
		return nil, fmt.Errorf("ir: model %q: %w", pr.ModelName, err)
	}
	if len(pr.OutputCols) != 1 {
		return nil, fmt.Errorf("ir: PREDICT with %d output columns not supported (model %q returns one score)", len(pr.OutputCols), pr.ModelName)
	}
	cur := below
	for _, step := range pipe.Steps {
		cur = &TransformNode{T: step, In: cur, Engine: EngineML}
	}
	var modelNode Node = &ModelNode{
		M:         pipe.Final,
		InputCols: pipe.InputColumns,
		OutputCol: pr.OutputCols[0],
		In:        cur,
		Engine:    EngineML,
	}
	if above == nil {
		return modelNode, nil
	}
	// The plan fragment above the predict operates on predict output rows:
	// replace the predict leaf with an Input placeholder.
	replacePredict(above, pr)
	return &RelNode{Plan: above, In: modelNode, Engine: EngineDB}, nil
}

// findPredict locates the topmost Predict on the spine of p. It returns
// the predict node and the fragment above it (nil when the predict is the
// root). Predicts under joins are not supported.
func findPredict(p plan.Node) (*plan.Predict, plan.Node) {
	if pr, ok := p.(*plan.Predict); ok {
		return pr, nil
	}
	switch p.(type) {
	case *plan.Filter, *plan.Project, *plan.Sort, *plan.Limit, *plan.Distinct, *plan.Aggregate:
		child := p.Children()[0]
		pr, above := findPredict(child)
		if pr == nil {
			return nil, nil
		}
		if above == nil {
			return pr, p
		}
		return pr, p
	default:
		return nil, nil
	}
}

// replacePredict substitutes the predict node in the fragment with an
// Input placeholder carrying the predict's output schema.
func replacePredict(frag plan.Node, pr *plan.Predict) {
	for i, c := range frag.Children() {
		if c == pr {
			frag.SetChild(i, &plan.Input{Sch: pr.Schema()})
			return
		}
		replacePredict(c, pr)
	}
}

// SourcePlan returns the relational plan below the ML stage, or nil when
// the source is not relational.
func (g *Graph) SourcePlan() plan.Node {
	if rn, ok := g.Source().(*RelNode); ok {
		return rn.Plan
	}
	return nil
}

// SinkRel returns the RA node sitting above the ML stage (the WHERE /
// SELECT applied to predictions), or nil.
func (g *Graph) SinkRel() *RelNode {
	if rn, ok := g.Root.(*RelNode); ok && rn.In != nil {
		return rn
	}
	return nil
}
