package cluster

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"raven/internal/server"
)

// MemberState is where a replica sits between "registered" (desired)
// and "taking traffic" (actual).
type MemberState int32

const (
	// StateUnknown: registered but not yet probed successfully.
	StateUnknown MemberState = iota
	// StateHealthy: probe ok and the replication log fully applied —
	// eligible for routing.
	StateHealthy
	// StateDegraded: reachable but behind the replication log (missed a
	// fan-out, or restarted and lost state). Not routed to; the
	// reconciler repairs it by replaying the log, then promotes it.
	StateDegraded
	// StateDraining: the replica advertised a graceful drain on
	// /healthz. No new queries are routed; in-flight ones finish there.
	StateDraining
	// StateDown: consecutive probe failures crossed the threshold.
	StateDown
)

func (s MemberState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// member is one replica as the router sees it: the desired half (name,
// base URL, client) is set at registration; the actual half (state,
// last probe, replication progress) converges via the reconciler.
type member struct {
	name string
	base string
	c    *server.Client

	state atomic.Int32 // MemberState

	// probeMu guards the last-probe snapshot.
	probeMu     sync.Mutex
	health      server.Health // last successful probe body
	lastSeen    time.Time     // when that probe landed
	consecFails int

	// applyMu serializes replication onto this member: the fan-out path
	// and the repair path share one replay routine, so entries apply in
	// log order exactly once per member lifetime.
	applyMu sync.Mutex
	// appliedSeq is the highest log entry applied this replica lifetime.
	// Writes happen under applyMu; it is atomic so the read path can
	// snapshot replication progress before dispatching a request (the
	// response-cache freshness gate) without blocking behind a slow
	// apply holding applyMu for up to ApplyTimeout.
	appliedSeq  atomic.Uint64
	lastVersion uint64 // catalog version read back after the last apply/probe

	// stmtMu guards the replica-side ids of router statements prepared
	// on this member (router id -> replica id), populated lazily on
	// first use and wiped when a restart is detected.
	stmtMu sync.Mutex
	stmts  map[string]string

	inflight atomic.Int64 // queries the router currently has on this member
}

func (m *member) getState() MemberState  { return MemberState(m.state.Load()) }
func (m *member) setState(s MemberState) { m.state.Store(int32(s)) }
func (m *member) routable() bool         { return m.getState() == StateHealthy }
func (m *member) lastHealth() server.Health {
	m.probeMu.Lock()
	defer m.probeMu.Unlock()
	return m.health
}

// forgetStmts wipes the replica-side statement ids (the registry died
// with the old process); the next execution re-prepares lazily.
func (m *member) forgetStmts() {
	m.stmtMu.Lock()
	m.stmts = make(map[string]string)
	m.stmtMu.Unlock()
}

// run is the reconciler loop: probe every member on a jittered
// interval, converge states, repair divergence. Jitter (±20%) keeps N
// routers (or one router's restarts) from synchronizing their probe
// bursts onto the replicas.
func (rt *Router) run() {
	defer close(rt.loopDone)
	// The loop context dies with the router, not with a tick: probes
	// bound themselves with ProbeTimeout and repair replays with
	// ApplyTimeout per entry, so a long catch-up (restarted replica, slow
	// TRAIN entries) is not squeezed into one probe budget — but Close
	// still cuts it off promptly.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-rt.stop
		cancel()
	}()
	for {
		iv := rt.opts.ProbeInterval
		jit := time.Duration(rand.Int63n(int64(iv)/2+1)) - iv/4
		t := time.NewTimer(iv + jit)
		select {
		case <-rt.stop:
			t.Stop()
			return
		case <-t.C:
		}
		rt.reconcile(ctx)
	}
}

// ProbeNow runs one synchronous reconcile pass: probe all members,
// update states, repair any member behind the log. Tests and the
// selftest use it to converge deterministically instead of sleeping
// through probe intervals; AddMember calls it so a freshly registered
// replica is routable before the first tick.
func (rt *Router) ProbeNow(ctx context.Context) {
	rt.reconcile(ctx)
}

// reconcile is one control-loop pass over desired vs actual: for each
// registered member, observe (probe /healthz), diff (state, catalog
// version vs replication log), and act (mark, repair, promote).
func (rt *Router) reconcile(ctx context.Context) {
	members := rt.snapshotMembers()
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			rt.probeMember(ctx, m)
		}(m)
	}
	wg.Wait()
}

// probeMember observes one replica and converges its state. Only the
// health probe itself runs under ProbeTimeout; a repair replay gets
// ApplyTimeout per entry (via applyEntry) and resumes from appliedSeq,
// so a replica with a long or slow log to catch up on converges over
// however many passes it needs instead of failing each one at the
// probe deadline.
func (rt *Router) probeMember(ctx context.Context, m *member) {
	pctx, pcancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	h, err := m.c.Health(pctx)
	pcancel()
	now := time.Now()

	if err != nil && h == nil {
		// Transport-level failure: unreachable. One blip is tolerated
		// (a restarting replica closes its listener briefly); crossing
		// the threshold marks it down.
		m.probeMu.Lock()
		m.consecFails++
		fails := m.consecFails
		m.probeMu.Unlock()
		if fails >= rt.opts.FailThreshold {
			m.setState(StateDown)
		}
		return
	}

	// Reachable (200, or 503 with a parsed draining body).
	m.probeMu.Lock()
	m.consecFails = 0
	m.health = *h
	m.lastSeen = now
	m.probeMu.Unlock()

	if h.Status == "draining" {
		m.setState(StateDraining)
		return
	}

	// Version read-back against the replication log. Three cases:
	//   probed < lastVersion: the replica went backwards — it restarted
	//     and lost state. Reset replication progress, wipe its statement
	//     ids, replay the whole log.
	//   probed > lastVersion with the log fully applied: version moved
	//     without us (direct writes to the replica). Adopt it — also the
	//     path that picks up the baseline version on the first probe.
	//   behind the log head: a missed fan-out; replay the tail.
	m.applyMu.Lock()
	restarted := h.CatalogVersion < m.lastVersion
	if restarted {
		m.appliedSeq.Store(0)
		m.lastVersion = h.CatalogVersion
	} else if h.CatalogVersion > m.lastVersion {
		m.lastVersion = h.CatalogVersion
	}
	behind := m.appliedSeq.Load() < rt.logHead()
	m.applyMu.Unlock()

	if restarted {
		m.forgetStmts()
	}
	if behind || restarted {
		m.setState(StateDegraded)
		if err := rt.syncMember(ctx, m); err != nil {
			return // stays degraded; next pass retries
		}
		rt.repairs.Add(1)
	}
	m.setState(StateHealthy)
}
