// Package wal implements the write-ahead log underneath the durable
// storage backend: an append-only file of CRC32C-framed, length-prefixed
// records with group-commit batching and a configurable fsync policy.
// The log knows nothing about record semantics — payloads are opaque
// bytes tagged with a one-byte type — so it stays a leaf package under
// both the storage layer and its tests.
//
// Frame layout (little-endian):
//
//	[len uint32][crc uint32][type byte][payload len bytes]
//
// crc is CRC32C (Castagnoli) over the type byte followed by the payload,
// so a frame whose length field was itself torn fails the checksum
// instead of mis-framing the rest of the file. Replay stops at the first
// frame that is short or fails its checksum and reports the offset of
// the last good frame, which Open then truncates to — the standard
// torn-tail tolerance: an append that did not finish never happened.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

const (
	// FsyncAlways syncs before Append returns: an acknowledged write
	// survives kill -9 and power loss. Concurrent appenders share fsyncs
	// via group commit.
	FsyncAlways Policy = iota
	// FsyncInterval syncs on a background timer: an acknowledged write
	// survives process death (the data is in the OS page cache) but the
	// last interval may be lost on power failure.
	FsyncInterval
	// FsyncOff never syncs except at clean close and checkpoint: fastest
	// loads, weakest guarantee.
	FsyncOff
)

// ParsePolicy maps the CLI/option spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
	}
}

// String renders the policy in its CLI spelling.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "off"
	}
}

// Options configures a Log.
type Options struct {
	Policy Policy
	// Interval is the background sync period under FsyncInterval;
	// defaults to 50ms.
	Interval time.Duration
}

const (
	headerSize = 9
	// maxRecord bounds a single payload; a length field beyond it is
	// treated as corruption rather than an allocation request.
	maxRecord = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an open write-ahead log file positioned at its end. Append is
// safe for concurrent use; under FsyncAlways concurrent appenders are
// batched into shared fsyncs (group commit).
type Log struct {
	path   string
	policy Policy

	mu      sync.Mutex // serializes writes; guards off and records
	f       *os.File
	off     int64
	records uint64

	// Group commit: the first appender to need durability past synced
	// becomes the leader and fsyncs everything written so far; appenders
	// arriving during an in-flight sync wait and are covered by the next
	// round. syncErr is sticky — after a failed fsync the log's tail is
	// in an unknown state, so every later append fails fast.
	syncMu  sync.Mutex
	syncCnd *sync.Cond
	synced  int64
	syncing bool
	syncErr error

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Open opens (creating if absent) the log at path and appends at its
// current end. Use OpenTruncated after replay to drop a torn tail first.
func Open(path string, o Options) (*Log, error) {
	return open(path, o, -1)
}

// OpenTruncated opens the log at path, truncates it to size bytes (the
// last good offset reported by Replay), and appends from there.
func OpenTruncated(path string, o Options, size int64) (*Log, error) {
	return open(path, o, size)
}

func open(path string, o Options, size int64) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if size < 0 {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		size = st.Size()
	} else if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate %s to %d: %w", path, size, err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{path: path, policy: o.Policy, f: f, off: size, synced: size}
	l.syncCnd = sync.NewCond(&l.syncMu)
	if o.Policy == FsyncInterval {
		iv := o.Interval
		if iv <= 0 {
			iv = 50 * time.Millisecond
		}
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flushLoop(iv)
	}
	return l, nil
}

func (l *Log) flushLoop(iv time.Duration) {
	defer close(l.done)
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.Sync()
		}
	}
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Append writes one record and, under FsyncAlways, returns only after it
// is on stable storage.
func (l *Log) Append(recType byte, payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	buf[8] = recType
	copy(buf[headerSize:], payload)
	crc := crc32.Update(0, castagnoli, buf[8:])
	binary.LittleEndian.PutUint32(buf[4:8], crc)

	l.syncMu.Lock()
	err := l.syncErr
	l.syncMu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: log failed: %w", err)
	}

	l.mu.Lock()
	if _, err := l.f.Write(buf); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.off += int64(len(buf))
	l.records++
	end := l.off
	l.mu.Unlock()

	if l.policy == FsyncAlways {
		return l.syncTo(end)
	}
	return nil
}

// Sync forces everything appended so far onto stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	end := l.off
	l.mu.Unlock()
	return l.syncTo(end)
}

func (l *Log) syncTo(end int64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	for l.synced < end {
		if l.syncErr != nil {
			return fmt.Errorf("wal: log failed: %w", l.syncErr)
		}
		if l.syncing {
			l.syncCnd.Wait()
			continue
		}
		l.syncing = true
		l.syncMu.Unlock()
		l.mu.Lock()
		target := l.off
		l.mu.Unlock()
		err := l.f.Sync()
		l.syncMu.Lock()
		l.syncing = false
		if err != nil {
			l.syncErr = err
		} else if target > l.synced {
			l.synced = target
		}
		l.syncCnd.Broadcast()
		if err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Records returns the number of records appended through this Log (not
// counting records already in the file at Open; the recovery layer adds
// those itself).
func (l *Log) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Close stops the background flusher, syncs once (so a clean shutdown is
// durable under every policy), and closes the file.
func (l *Log) Close() error {
	if l.stop != nil {
		l.stopOnce.Do(func() { close(l.stop) })
		<-l.done
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes the underlying file without a final sync — it simulates
// the process dying mid-write, so crash-recovery tests exercise the torn
// tail path without an actual kill.
func (l *Log) Abort() error {
	if l.stop != nil {
		l.stopOnce.Do(func() { close(l.stop) })
		<-l.done
	}
	return l.f.Close()
}

// Replay streams every intact record of the log at path through fn, in
// order. A torn or corrupt tail — short header, short payload, absurd
// length, or checksum mismatch — ends the scan without error: Replay
// returns the offset just past the last good record, which the caller
// truncates to before appending again. An error from fn is fatal and
// returned as-is. A missing file replays zero records.
func Replay(path string, fn func(recType byte, payload []byte) error) (good int64, records uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	defer f.Close()
	r := newCountReader(bufio.NewReaderSize(f, 1<<20))
	hdr := make([]byte, headerSize)
	var payload []byte
	for {
		start := r.n
		if _, err := io.ReadFull(r, hdr); err != nil {
			return start, records, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecord {
			return start, records, nil // corrupt length
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return start, records, nil // torn payload
		}
		sum := crc32.Update(0, castagnoli, hdr[8:9])
		sum = crc32.Update(sum, castagnoli, payload)
		if sum != crc {
			return start, records, nil // corrupt frame
		}
		if err := fn(hdr[8], payload); err != nil {
			return start, records, err
		}
		records++
	}
}

// countReader tracks the byte offset consumed from the underlying
// reader so Replay can report exact frame boundaries.
type countReader struct {
	r io.Reader
	n int64
}

func newCountReader(r io.Reader) *countReader { return &countReader{r: r} }

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
