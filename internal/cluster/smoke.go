package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"raven"
	"raven/internal/ml"
	"raven/internal/server"
	"raven/internal/train"
)

// Smoke stands up a 2-replica cluster behind a router and exercises the
// distributed serving contract end to end: DDL and model fan-out with
// version read-back, tenant-affine routed reads, prepared statements
// lazily prepared per replica, the aggregated stats surface, and a
// graceful drain of one replica under continuous load with zero dropped
// queries. It is the `ravenrouter -selftest` body and the `make
// smoke-cluster` CI gate. Everything is in-process; the wire protocol
// is exactly what separate processes would speak.
func Smoke() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Two small replicas: bounded scheduler so drain semantics are the
	// production ones, short drain grace so the smoke stays fast.
	srvOpts := server.Options{DrainGrace: 300 * time.Millisecond}
	engOpts := []raven.Option{
		raven.WithParallelism(1),
		raven.WithMaxConcurrentQueries(4),
		raven.WithSchedulerQueue(32, 5*time.Second),
	}
	var reps []*Replica
	for i := 0; i < 2; i++ {
		r, err := SpawnReplica(fmt.Sprintf("r%d", i), srvOpts, engOpts...)
		if err != nil {
			return err
		}
		reps = append(reps, r)
	}
	rt := New(Options{ProbeInterval: 50 * time.Millisecond})
	for _, r := range reps {
		if err := rt.AddMember(r.Name, r.Base); err != nil {
			return err
		}
	}
	rt.Start()
	defer rt.Close()
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	rsrv := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- rsrv.Serve(rl) }()
	defer func() {
		rsrv.Close()
		<-serveErr
	}()
	rt.ProbeNow(ctx)

	c := &server.Client{Base: "http://" + rl.Addr().String(), Timeout: 10 * time.Second}

	// 1. DDL through the router fans out to both replicas.
	var ddl strings.Builder
	ddl.WriteString("CREATE TABLE pts (id INT, x FLOAT, y FLOAT);\nINSERT INTO pts VALUES ")
	for i := 0; i < 256; i++ {
		if i > 0 {
			ddl.WriteString(", ")
		}
		fmt.Fprintf(&ddl, "(%d, %g, %g)", i, float64(i)*0.5, float64(i%7))
	}
	if err := c.ExecContext(ctx, ddl.String()); err != nil {
		return fmt.Errorf("replicated DDL: %w", err)
	}
	for _, r := range reps {
		rc := &server.Client{Base: r.Base, Timeout: 5 * time.Second}
		res, err := rc.QueryContext(ctx, server.QueryRequest{SQL: "SELECT COUNT(*) AS n FROM pts"})
		if err != nil {
			return fmt.Errorf("replica %s missing replicated table: %w", r.Name, err)
		}
		if fmt.Sprint(res.Rows[0][0]) != "256" {
			return fmt.Errorf("replica %s has %v rows, want 256", r.Name, res.Rows[0][0])
		}
	}

	// 2. A model stored through the router predicts on every replica.
	const n = 64
	feats := make([]float64, 0, n*2)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := float64(i)*0.5, float64(i%7)
		feats = append(feats, x0, x1)
		ys[i] = x0 + 2*x1
	}
	xs, err := ml.NewMatrix(feats, n, 2)
	if err != nil {
		return err
	}
	pipe := &ml.Pipeline{
		Final:        train.FitTree(xs, ys, train.TreeOptions{MaxDepth: 4, MinLeaf: 4}),
		InputColumns: []string{"x", "y"},
	}
	blob, err := ml.Marshal(pipe)
	if err != nil {
		return err
	}
	if err := c.StoreModel(ctx, server.ModelRequest{Name: "smoke_model", Data: blob}); err != nil {
		return fmt.Errorf("replicated model store: %w", err)
	}
	const predictSQL = `SELECT d.id, p.score FROM PREDICT(MODEL='smoke_model',
		DATA=(SELECT * FROM pts) AS d) WITH (score FLOAT) AS p WHERE d.id < 16`
	ref, err := c.QueryContext(ctx, server.QueryRequest{SQL: predictSQL})
	if err != nil {
		return fmt.Errorf("routed predict: %w", err)
	}
	if len(ref.Rows) != 16 {
		return fmt.Errorf("routed predict returned %d rows, want 16", len(ref.Rows))
	}

	// 3. Prepared statements: one router id, executed for tenants homed
	// on both replicas, must agree with the ad-hoc result.
	pr, err := c.PrepareContext(ctx, server.QueryRequest{SQL: predictSQL})
	if err != nil {
		return fmt.Errorf("router prepare: %w", err)
	}
	tenants := []string{tenantHomedOn(rt, reps[0].Name), tenantHomedOn(rt, reps[1].Name)}
	for _, tn := range tenants {
		res, err := c.StmtQueryContext(ctx, pr.ID, server.QueryRequest{Tenant: tn})
		if err != nil {
			return fmt.Errorf("stmt exec (tenant %s): %w", tn, err)
		}
		if res.Fingerprint() != ref.Fingerprint() {
			return fmt.Errorf("stmt result for tenant %s diverges from ad-hoc result", tn)
		}
	}

	// 4. Drain one replica while queries flow: every query must succeed
	// — the router re-routes around the draining member.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		qerrs   []error
		done    = make(chan struct{})
		queries int
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tn := tenants[w%2]
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := c.QueryContext(ctx, server.QueryRequest{SQL: predictSQL, Tenant: tn})
				mu.Lock()
				queries++
				if err != nil {
					qerrs = append(qerrs, fmt.Errorf("tenant %s: %w", tn, err))
				} else if res.Fingerprint() != ref.Fingerprint() {
					qerrs = append(qerrs, fmt.Errorf("tenant %s: result diverged during drain", tn))
				}
				n := len(qerrs)
				mu.Unlock()
				if n > 0 {
					return
				}
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond) // load flowing on both homes
	if err := reps[1].Close(ctx); err != nil {
		close(done)
		wg.Wait()
		return fmt.Errorf("drain replica: %w", err)
	}
	time.Sleep(200 * time.Millisecond) // load continues on the survivor
	close(done)
	wg.Wait()
	if len(qerrs) > 0 {
		return fmt.Errorf("%d of %d queries failed across the drain; first: %w", len(qerrs), queries, qerrs[0])
	}
	if queries == 0 {
		return fmt.Errorf("no queries ran during the drain window")
	}

	// 5. Aggregated stats see both members, one drained/down by now.
	st := rt.Stats(ctx)
	if st.Router.Members != 2 {
		return fmt.Errorf("cluster stats: %d members, want 2", st.Router.Members)
	}
	if st.Router.LogEntries != 2 {
		return fmt.Errorf("cluster stats: %d log entries, want 2 (DDL + model)", st.Router.LogEntries)
	}
	if err := reps[0].Close(ctx); err != nil {
		return fmt.Errorf("final drain: %w", err)
	}
	return nil
}

// tenantHomedOn searches tenant names until one's rendezvous home is
// the wanted member — how tests pin traffic to a chosen replica.
func tenantHomedOn(rt *Router, member string) string {
	for i := 0; ; i++ {
		tn := fmt.Sprintf("tenant%d", i)
		if rt.HomeFor(tn) == member {
			return tn
		}
	}
}
