package ort

import (
	"testing"
	"time"

	"raven/internal/tensor"
)

// linearGraph builds y = sigmoid(x·W + b) with W,b initializers.
func linearGraph() *Graph {
	g := NewGraph("logreg")
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	w, _ := tensor.FromSlice([]float64{0.5, -0.25, 1.0, 0.0, 0.0, 2.0}, 3, 2)
	b, _ := tensor.FromSlice([]float64{0.1, -0.1}, 1, 2)
	g.AddInitializer("W", w)
	g.AddInitializer("b", b)
	g.Add("MatMul", []string{"x", "W"}, []string{"xw"}, nil)
	g.Add("Add", []string{"xw", "b"}, []string{"z"}, nil)
	g.Add("Sigmoid", []string{"z"}, []string{"y"}, nil)
	return g
}

func feed1x3(vals ...float64) map[string]*tensor.Tensor {
	x, _ := tensor.FromSlice(vals, 1, 3)
	return map[string]*tensor.Tensor{"x": x}
}

func TestSessionRun(t *testing.T) {
	s, err := NewSession(linearGraph())
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := s.Run(feed1x3(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	y := out["y"]
	if y == nil || y.Shape[1] != 2 {
		t.Fatalf("y = %v", y)
	}
	// z = [1*0.5+2*1+3*0+0.1, 1*-0.25+2*0+3*2-0.1] = [2.6, 5.65]
	if d := y.Data[0] - 1/(1+expNeg(2.6)); d > 1e-9 || d < -1e-9 {
		t.Errorf("y[0] = %v", y.Data[0])
	}
	if stats.NodesExecuted == 0 || stats.Wall <= 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func expNeg(x float64) float64 {
	// tiny helper to avoid importing math just for the expected value
	e := 1.0
	term := 1.0
	for i := 1; i < 30; i++ {
		term *= -x / float64(i)
		e += term
	}
	return e
}

func TestSessionMissingFeed(t *testing.T) {
	s, _ := NewSession(linearGraph())
	if _, _, err := s.Run(map[string]*tensor.Tensor{}); err == nil {
		t.Error("missing feed should fail")
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	g := NewGraph("bad")
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	g.Add("Relu", []string{"nope"}, []string{"y"}, nil)
	if err := g.Validate(); err == nil {
		t.Error("undefined input should fail validation")
	}

	g2 := NewGraph("bad2")
	g2.Inputs = []string{"x"}
	g2.Outputs = []string{"missing"}
	g2.Add("Relu", []string{"x"}, []string{"y"}, nil)
	if err := g2.Validate(); err == nil {
		t.Error("missing output should fail validation")
	}

	g3 := NewGraph("bad3")
	g3.Inputs = []string{"x"}
	g3.Outputs = []string{"y"}
	g3.Add("Relu", []string{"x"}, []string{"y"}, nil)
	g3.Add("Relu", []string{"x"}, []string{"y"}, nil)
	if err := g3.Validate(); err == nil {
		t.Error("double definition should fail validation")
	}
}

func TestUnknownOpRejectedAtCompile(t *testing.T) {
	g := NewGraph("g")
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	g.Add("Conv3DTranspose", []string{"x"}, []string{"y"}, nil)
	if _, err := NewSession(g); err == nil {
		t.Error("unknown op should fail at session build")
	}
}

func TestGemmFusion(t *testing.T) {
	g := linearGraph()
	opt, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	// MatMul+Add must fuse into Gemm: 2 nodes (Gemm, Sigmoid).
	if opt.NumNodes() != 2 {
		t.Fatalf("optimized graph has %d nodes:\n%s", opt.NumNodes(), opt)
	}
	if opt.Nodes[0].Op != "Gemm" {
		t.Errorf("first op = %s, want Gemm", opt.Nodes[0].Op)
	}
	// Same results.
	s1, _ := NewSessionWithOptions(g, SessionOptions{Optimize: false, Provider: CPUProvider{}})
	s2, _ := NewSessionWithOptions(g, SessionOptions{Optimize: true, Provider: CPUProvider{}})
	o1, _, err1 := s1.Run(feed1x3(1, 2, 3))
	o2, _, err2 := s2.Run(feed1x3(1, 2, 3))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range o1["y"].Data {
		if d := o1["y"].Data[i] - o2["y"].Data[i]; d > 1e-12 || d < -1e-12 {
			t.Errorf("fusion changed result at %d: %v vs %v", i, o1["y"].Data[i], o2["y"].Data[i])
		}
	}
}

func TestConstantFolding(t *testing.T) {
	g := NewGraph("fold")
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	a := tensor.Scalar(2)
	b := tensor.Scalar(3)
	g.AddInitializer("a", a)
	g.AddInitializer("b", b)
	g.Add("Mul", []string{"a", "b"}, []string{"ab"}, nil) // foldable: 6
	g.Add("Mul", []string{"x", "ab"}, []string{"y"}, nil)
	opt, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumNodes() != 1 {
		t.Fatalf("folded graph has %d nodes:\n%s", opt.NumNodes(), opt)
	}
	if ab := opt.Initializers["ab"]; ab == nil || ab.Data[0] != 6 {
		t.Errorf("folded initializer = %v", opt.Initializers["ab"])
	}
}

func TestIdentityAndDeadElimination(t *testing.T) {
	g := NewGraph("dce")
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	g.Add("Identity", []string{"x"}, []string{"x2"}, nil)
	g.Add("Relu", []string{"x2"}, []string{"y"}, nil)
	g.Add("Sigmoid", []string{"x2"}, []string{"dead"}, nil) // unused
	g.AddInitializer("unusedW", tensor.Scalar(1))
	opt, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumNodes() != 1 || opt.Nodes[0].Op != "Relu" {
		t.Fatalf("optimized:\n%s", opt)
	}
	if _, ok := opt.Initializers["unusedW"]; ok {
		t.Error("unused initializer survived DCE")
	}
}

func TestPinInputConstantPropagation(t *testing.T) {
	// y = x * flag; pinning flag to 1 should reduce to pass-through Mul
	// with a constant, pinning removes the input.
	g := NewGraph("pin")
	g.Inputs = []string{"x", "flag"}
	g.Outputs = []string{"y"}
	g.Add("Mul", []string{"x", "flag"}, []string{"y"}, nil)
	pinned, err := PinInput(g, "flag", tensor.Scalar(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned.Inputs) != 1 || pinned.Inputs[0] != "x" {
		t.Errorf("pinned inputs = %v", pinned.Inputs)
	}
	s, err := NewSession(pinned)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := tensor.FromSlice([]float64{1, 2}, 1, 2)
	out, _, err := s.Run(map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"].Data[1] != 2 {
		t.Errorf("y = %v", out["y"].Data)
	}
	if _, err := PinInput(g, "nonexistent", tensor.Scalar(0)); err == nil {
		t.Error("pin of unknown input should fail")
	}
}

func TestSessionCache(t *testing.T) {
	c := NewSessionCache()
	builds := 0
	build := func() (*Session, error) {
		builds++
		return NewSession(linearGraph())
	}
	s1, err := c.Get("model-hash-1", build)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Get("model-hash-1", build)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || builds != 1 {
		t.Errorf("cache did not reuse session (builds=%d)", builds)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits %d misses", hits, misses)
	}
	c.Invalidate("model-hash-1")
	if _, err := c.Get("model-hash-1", build); err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Error("invalidate did not force rebuild")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	g := linearGraph()
	g.Add("Gather", []string{"y"}, []string{"g"}, Attrs{"cols": []int{0}})
	g.Outputs = []string{"g"}
	data, err := Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(g2)
	if err != nil {
		t.Fatal(err)
	}
	o1, _, _ := s1.Run(feed1x3(1, 2, 3))
	o2, _, _ := s2.Run(feed1x3(1, 2, 3))
	if o1["g"].Data[0] != o2["g"].Data[0] {
		t.Errorf("round trip changed result: %v vs %v", o1["g"].Data, o2["g"].Data)
	}
}

func TestGPUProviderCharging(t *testing.T) {
	gpu := DefaultGPU()
	s, err := NewSessionWithOptions(linearGraph(), SessionOptions{Optimize: true, Provider: gpu})
	if err != nil {
		t.Fatal(err)
	}
	// Small batch: charged time should be dominated by fixed overheads.
	small := tensor.New(1, 3)
	_, st1, err := s.Run(map[string]*tensor.Tensor{"x": small})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Charged < gpu.TransferSetup {
		t.Errorf("charged %v < transfer setup %v", st1.Charged, gpu.TransferSetup)
	}
	// Large batch: charged must grow far less than linearly with rows
	// (throughput regime) but still exceed the small-batch charge.
	big := tensor.New(100000, 3)
	_, st2, err := s.Run(map[string]*tensor.Tensor{"x": big})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Charged <= st1.Charged {
		t.Errorf("charged did not grow with batch: %v vs %v", st1.Charged, st2.Charged)
	}
	if st2.Charged > st1.Charged*100000 {
		t.Errorf("gpu model has no throughput benefit: %v vs %v", st1.Charged, st2.Charged)
	}
}

func TestCPUProviderThreads(t *testing.T) {
	if (CPUProvider{Parallelism: 3}).Threads() != 3 {
		t.Error("explicit parallelism")
	}
	if (CPUProvider{}).Threads() < 1 {
		t.Error("default parallelism")
	}
	if got := (CPUProvider{}).NodeTime("MatMul", 1, 1, 42*time.Nanosecond); got != 42*time.Nanosecond {
		t.Error("cpu NodeTime should be wall time")
	}
}

func TestAttrsAccessors(t *testing.T) {
	a := Attrs{"f": 1.5, "i": 3, "fi": 2.0, "is": []int{1, 2}, "s": "x"}
	if a.Float("f", 0) != 1.5 || a.Float("i", 0) != 3 || a.Float("zz", 9) != 9 {
		t.Error("Float accessor")
	}
	if a.Int("i", 0) != 3 || a.Int("fi", 0) != 2 || a.Int("zz", 7) != 7 {
		t.Error("Int accessor")
	}
	if got := a.Ints("is"); len(got) != 2 {
		t.Error("Ints accessor")
	}
	if a.Ints("zz") != nil {
		t.Error("Ints of missing key")
	}
}
