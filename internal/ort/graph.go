// Package ort is the reproduction's stand-in for ONNX Runtime: a dataflow
// graph of linear-algebra operators, a graph optimizer (constant folding,
// dead-code and identity elimination, Gemm fusion), compiled inference
// sessions with a model/session cache, and pluggable execution providers
// (CPU with intra-op parallelism, plus a simulated GPU for the Fig 2(d)
// hardware-acceleration experiment).
package ort

import (
	"fmt"
	"strings"

	"raven/internal/tensor"
)

// Attrs carries per-node attributes (alpha/beta for Gemm, depth for
// OneHot, column lists for Gather, …).
type Attrs map[string]any

// Float fetches a float attribute with a default.
func (a Attrs) Float(key string, def float64) float64 {
	if v, ok := a[key]; ok {
		switch x := v.(type) {
		case float64:
			return x
		case int:
			return float64(x)
		}
	}
	return def
}

// Int fetches an int attribute with a default.
func (a Attrs) Int(key string, def int) int {
	if v, ok := a[key]; ok {
		switch x := v.(type) {
		case int:
			return x
		case float64:
			return int(x)
		}
	}
	return def
}

// Ints fetches an []int attribute.
func (a Attrs) Ints(key string) []int {
	if v, ok := a[key]; ok {
		if x, ok := v.([]int); ok {
			return x
		}
	}
	return nil
}

// Node is one operator application in a graph. Inputs and Outputs name
// tensors (edges); the same name space covers graph inputs, initializers
// and intermediate values.
type Node struct {
	Op      string
	Name    string
	Inputs  []string
	Outputs []string
	Attrs   Attrs
}

// Graph is a dataflow DAG over named tensors, mirroring an ONNX ModelProto:
// external Inputs, constant Initializers (weights) and produced Outputs.
type Graph struct {
	Name         string
	Nodes        []*Node
	Inputs       []string
	Outputs      []string
	Initializers map[string]*tensor.Tensor
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, Initializers: make(map[string]*tensor.Tensor)}
}

// AddInitializer registers a constant tensor under the given name.
func (g *Graph) AddInitializer(name string, t *tensor.Tensor) {
	g.Initializers[name] = t
}

// Add appends a node and returns it.
func (g *Graph) Add(op string, inputs []string, outputs []string, attrs Attrs) *Node {
	n := &Node{Op: op, Name: fmt.Sprintf("%s_%d", strings.ToLower(op), len(g.Nodes)), Inputs: inputs, Outputs: outputs, Attrs: attrs}
	g.Nodes = append(g.Nodes, n)
	return n
}

// Clone deep-copies the graph structure. Initializer tensors are shared
// (they are treated as immutable).
func (g *Graph) Clone() *Graph {
	out := NewGraph(g.Name)
	out.Inputs = append([]string(nil), g.Inputs...)
	out.Outputs = append([]string(nil), g.Outputs...)
	for k, v := range g.Initializers {
		out.Initializers[k] = v
	}
	for _, n := range g.Nodes {
		attrs := make(Attrs, len(n.Attrs))
		for k, v := range n.Attrs {
			attrs[k] = v
		}
		out.Nodes = append(out.Nodes, &Node{
			Op:      n.Op,
			Name:    n.Name,
			Inputs:  append([]string(nil), n.Inputs...),
			Outputs: append([]string(nil), n.Outputs...),
			Attrs:   attrs,
		})
	}
	return out
}

// Validate checks that every node input is produced by an earlier node, an
// initializer, or a graph input, and that graph outputs exist.
func (g *Graph) Validate() error {
	avail := make(map[string]bool, len(g.Inputs)+len(g.Initializers))
	for _, in := range g.Inputs {
		avail[in] = true
	}
	for name := range g.Initializers {
		avail[name] = true
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if !avail[in] {
				return fmt.Errorf("ort: graph %s: node %s input %q undefined (graph not topologically ordered?)", g.Name, n.Name, in)
			}
		}
		for _, out := range n.Outputs {
			if avail[out] {
				return fmt.Errorf("ort: graph %s: tensor %q defined twice", g.Name, out)
			}
			avail[out] = true
		}
	}
	for _, out := range g.Outputs {
		if !avail[out] {
			return fmt.Errorf("ort: graph %s: output %q never produced", g.Name, out)
		}
	}
	return nil
}

// NumNodes returns the node count (used by optimizer tests and EXPLAIN).
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// String renders a compact textual form of the graph for EXPLAIN output.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s (inputs: %s) -> (%s)\n", g.Name, strings.Join(g.Inputs, ", "), strings.Join(g.Outputs, ", "))
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  %-12s %s <- %s\n", n.Op, strings.Join(n.Outputs, ","), strings.Join(n.Inputs, ","))
	}
	return b.String()
}
