package raven

import (
	"context"
	"fmt"
	"time"

	"raven/internal/exec"
	"raven/internal/types"
)

// Rows is a streamed query result, the primary result type of the
// serving API. Iterate with Next/Scan and always Close (Close is
// idempotent; exhausting the stream closes implicitly):
//
//	rows, err := db.QueryContext(ctx, q)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var id int64
//	    var score float64
//	    if err := rows.Scan(&id, &score); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Rows pulls batches from the executor on demand, so consumers that stop
// early (or whose context is cancelled) never pay for the rest of the
// result. A Rows must not be shared across goroutines.
type Rows struct {
	// AppliedRules lists the cross-optimizer rules that fired when the
	// plan was compiled (cached plans report the rules from compile time).
	AppliedRules []string
	// CompileTime is the time spent producing the executable plan for this
	// call: near zero on plan-cache hits and prepared re-executions.
	CompileTime time.Duration

	op        exec.Operator
	ctx       context.Context
	schema    *types.Schema
	execStart time.Time
	execTime  time.Duration
	cur       *types.Batch
	idx       int
	err       error
	closed    bool
	// release returns the admission-control slot (nil without a
	// scheduler). Close owns it: the slot is held exactly as long as the
	// query can still consume engine workers.
	release func()
}

// newRows wraps an already-compiled operator tree and opens it. applied
// is copied: the exported AppliedRules field must not alias a cached
// plan's shared slice, or a caller mutating it would corrupt the template
// for every later execution. release (may be nil) is the admission slot
// ticket; newRows owns it from here on, returning it on Open failure and
// otherwise at Close.
func newRows(ctx context.Context, op exec.Operator, applied []string, compileTime time.Duration, release func()) (*Rows, error) {
	r := &Rows{
		AppliedRules: append([]string(nil), applied...),
		CompileTime:  compileTime,
		op:           op,
		ctx:          ctx,
		schema:       op.Schema(),
		execStart:    time.Now(),
		idx:          -1,
		release:      release,
	}
	if err := op.Open(); err != nil {
		op.Close()
		if release != nil {
			release()
		}
		return nil, err
	}
	return r, nil
}

// Columns returns the result column names in order.
func (r *Rows) Columns() []string { return r.schema.Names() }

// Schema returns the result schema.
func (r *Rows) Schema() *types.Schema { return r.schema }

// Next advances to the next row, fetching batches from the executor as
// needed. It returns false at end of stream or on error — check Err to
// tell the two apart.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	// The compiled operators observe the context themselves; this check
	// additionally covers consumers idling between batches, so a cancelled
	// Rows stops (and releases its executor) on the next Next call.
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			r.err = err
			r.Close()
			return false
		}
	}
	r.idx++
	for r.cur == nil || r.idx >= r.cur.Len() {
		b, err := r.op.Next()
		if err != nil {
			r.err = err
			r.Close()
			return false
		}
		if b == nil {
			r.Close()
			return false
		}
		r.cur = b
		r.idx = 0
	}
	return true
}

// Scan copies the current row into dest, one pointer per column:
// *int64/*int for INT, *float64 for FLOAT (INT widens), *bool for BIT,
// *string for VARCHAR, or *any for anything.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil || r.idx < 0 || r.idx >= r.cur.Len() {
		return fmt.Errorf("raven: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur.Vecs) {
		return fmt.Errorf("raven: Scan got %d targets for %d columns", len(dest), len(r.cur.Vecs))
	}
	for j, d := range dest {
		v := r.cur.Vecs[j]
		col := r.schema.Columns[j].Name
		switch p := d.(type) {
		case *any:
			*p = v.Value(r.idx)
		case *int64:
			if v.Type != types.Int {
				return fmt.Errorf("raven: column %s is %v, not INT", col, v.Type)
			}
			*p = v.Ints[r.idx]
		case *int:
			if v.Type != types.Int {
				return fmt.Errorf("raven: column %s is %v, not INT", col, v.Type)
			}
			*p = int(v.Ints[r.idx])
		case *float64:
			switch v.Type {
			case types.Float:
				*p = v.Floats[r.idx]
			case types.Int:
				*p = float64(v.Ints[r.idx])
			default:
				return fmt.Errorf("raven: column %s is %v, not FLOAT", col, v.Type)
			}
		case *bool:
			if v.Type != types.Bool {
				return fmt.Errorf("raven: column %s is %v, not BIT", col, v.Type)
			}
			*p = v.Bools[r.idx]
		case *string:
			if v.Type != types.String {
				return fmt.Errorf("raven: column %s is %v, not VARCHAR", col, v.Type)
			}
			*p = v.Strings[r.idx]
		default:
			return fmt.Errorf("raven: unsupported Scan target %T for column %s", d, col)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. A context
// cancellation surfaces here as ctx.Err().
func (r *Rows) Err() error { return r.err }

// Close releases the executor (stopping any exchange workers) and
// returns the query's admission slot to the scheduler. It is idempotent
// and safe at any point in the stream's life: before the first Next,
// mid-stream (in-flight exchange workers are shut down and reaped),
// after exhaustion, after Err, and on repeated calls — only the first
// call does work or returns the operator's error.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.execTime = time.Since(r.execStart)
	err := r.op.Close()
	if r.release != nil {
		r.release()
	}
	return err
}

// ExecTime is the time spent executing so far (final once closed).
func (r *Rows) ExecTime() time.Duration {
	if r.closed {
		return r.execTime
	}
	return time.Since(r.execStart)
}

// Collect drains the remaining stream into a materialized Result — the
// compatibility bridge from the streaming API to the batch one. Call it
// instead of Next, not after it (rows already consumed by Scan are not
// replayed, and a closed or exhausted Rows yields an empty Result).
func (r *Rows) Collect() (*Result, error) {
	defer r.Close()
	if r.err != nil {
		return nil, r.err
	}
	if r.closed {
		// Closed without error (exhausted or explicitly closed): nothing
		// left to drain, and the operator must not be polled again.
		return &Result{
			Batch:        types.NewBatch(r.schema),
			AppliedRules: r.AppliedRules,
			CompileTime:  r.CompileTime,
			ExecTime:     r.execTime,
			Elapsed:      r.CompileTime + r.execTime,
		}, nil
	}
	out := types.NewBatch(r.schema)
	if r.cur != nil && r.idx+1 < r.cur.Len() {
		if err := out.Append(r.cur.Slice(r.idx+1, r.cur.Len())); err != nil {
			return nil, err
		}
	}
	for {
		b, err := r.op.Next()
		if err != nil {
			r.err = err
			return nil, err
		}
		if b == nil {
			break
		}
		if err := out.Append(b); err != nil {
			return nil, err
		}
	}
	r.Close()
	return &Result{
		Batch:        out,
		AppliedRules: r.AppliedRules,
		CompileTime:  r.CompileTime,
		ExecTime:     r.execTime,
		Elapsed:      r.CompileTime + r.execTime,
	}, nil
}
