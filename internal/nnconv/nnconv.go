// Package nnconv implements the paper's NN-translation operator
// transformations (§4.2): classical ML operators and data featurizers (the
// MLD category of the unified IR) are compiled into linear-algebra graphs
// executable by the ort tensor runtime, unlocking batch scoring, intra-op
// parallelism and (simulated) hardware acceleration.
//
// Decision trees use the GEMM strategy later popularized by Hummingbird:
// three dense matrix products evaluate all root-to-leaf paths at once,
// trading FLOPs for hardware-friendly regularity.
package nnconv

import (
	"fmt"

	"raven/internal/ml"
	"raven/internal/ort"
	"raven/internal/tensor"
)

// translator accumulates a graph while generating unique tensor names.
type translator struct {
	g   *ort.Graph
	seq int
}

func (t *translator) fresh(prefix string) string {
	t.seq++
	return fmt.Sprintf("%s_%d", prefix, t.seq)
}

// TranslatePipeline compiles a full model pipeline into a single graph with
// input "X" (n × len(InputColumns) or the raw feature width) and output
// "Y" (n × 1 scores).
func TranslatePipeline(p *ml.Pipeline) (*ort.Graph, error) {
	tr := &translator{g: ort.NewGraph("pipeline")}
	tr.g.Inputs = []string{"X"}
	cur := "X"
	var err error
	for i, s := range p.Steps {
		cur, err = tr.transformer(s, cur)
		if err != nil {
			return nil, fmt.Errorf("nnconv: step %d (%s): %w", i, s.Kind(), err)
		}
	}
	out, err := tr.model(p.Final, cur)
	if err != nil {
		return nil, fmt.Errorf("nnconv: model (%s): %w", p.Final.Kind(), err)
	}
	tr.g.Add("Identity", []string{out}, []string{"Y"}, nil)
	tr.g.Outputs = []string{"Y"}
	if err := tr.g.Validate(); err != nil {
		return nil, err
	}
	return tr.g, nil
}

// TranslateModel compiles a bare model (no featurizers).
func TranslateModel(m ml.Model) (*ort.Graph, error) {
	return TranslatePipeline(&ml.Pipeline{Final: m})
}

func (t *translator) transformer(s ml.Transformer, in string) (string, error) {
	switch x := s.(type) {
	case *ml.StandardScaler:
		return t.scaler(x, in)
	case *ml.OneHotEncoder:
		return t.oneHot(x, in)
	case *ml.ColumnSelect:
		out := t.fresh("sel")
		t.g.Add("Gather", []string{in}, []string{out}, ort.Attrs{"cols": append([]int(nil), x.Indices...)})
		return out, nil
	case *ml.FeatureUnion:
		var parts []string
		for _, p := range x.Parts {
			o, err := t.transformer(p, in)
			if err != nil {
				return "", err
			}
			parts = append(parts, o)
		}
		out := t.fresh("union")
		t.g.Add("Concat", parts, []string{out}, nil)
		return out, nil
	default:
		return "", fmt.Errorf("no NN translation for transformer %q", s.Kind())
	}
}

func (t *translator) scaler(s *ml.StandardScaler, in string) (string, error) {
	d := len(s.Mean)
	mean := &tensor.Tensor{Shape: []int{d}, Data: append([]float64(nil), s.Mean...)}
	scale := &tensor.Tensor{Shape: []int{d}, Data: append([]float64(nil), s.Scale...)}
	mn, sn := t.fresh("mean"), t.fresh("scale")
	t.g.AddInitializer(mn, mean)
	t.g.AddInitializer(sn, scale)
	centered := t.fresh("centered")
	t.g.Add("Sub", []string{in, mn}, []string{centered}, nil)
	out := t.fresh("scaled")
	t.g.Add("Div", []string{centered, sn}, []string{out}, nil)
	return out, nil
}

// oneHot emits: passthrough columns via Gather, then per categorical column
// an Equal against the category row vector (x replicated across k columns
// by a rank-1 MatMul), concatenated in the encoder's output order.
func (t *translator) oneHot(e *ml.OneHotEncoder, in string) (string, error) {
	isCat := make(map[int]bool, len(e.Cols))
	maxCol := -1
	for _, c := range e.Cols {
		isCat[c] = true
		if c > maxCol {
			maxCol = c
		}
	}
	// Fitted encoders record their input width; hand-built ones fall back
	// to the minimal width containing all categorical columns.
	width := e.InputDim
	if width == 0 {
		width = maxCol + 1
	}
	var pass []int
	for j := 0; j < width; j++ {
		if !isCat[j] {
			pass = append(pass, j)
		}
	}
	var parts []string
	if len(pass) > 0 {
		p := t.fresh("pass")
		t.g.Add("Gather", []string{in}, []string{p}, ort.Attrs{"cols": pass})
		parts = append(parts, p)
	}
	for ci, c := range e.Cols {
		cats := e.Categories[ci]
		k := len(cats)
		col := t.fresh("cat")
		t.g.Add("Gather", []string{in}, []string{col}, ort.Attrs{"cols": []int{c}})
		// replicate (n×1) across k columns: x · ones(1×k)
		onesName := t.fresh("ones")
		ones := tensor.New(1, k)
		for i := range ones.Data {
			ones.Data[i] = 1
		}
		t.g.AddInitializer(onesName, ones)
		rep := t.fresh("rep")
		t.g.Add("MatMul", []string{col, onesName}, []string{rep}, nil)
		catName := t.fresh("cats")
		t.g.AddInitializer(catName, &tensor.Tensor{Shape: []int{k}, Data: append([]float64(nil), cats...)})
		ind := t.fresh("onehot")
		t.g.Add("Equal", []string{rep, catName}, []string{ind}, nil)
		parts = append(parts, ind)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	out := t.fresh("enc")
	t.g.Add("Concat", parts, []string{out}, nil)
	return out, nil
}

func (t *translator) model(m ml.Model, in string) (string, error) {
	switch x := m.(type) {
	case *ml.LinearRegression:
		return t.linear(x.W, x.B, in, false)
	case *ml.LogisticRegression:
		return t.linear(x.W, x.B, in, true)
	case *ml.DecisionTree:
		return t.tree(x, in)
	case *ml.RandomForest:
		return t.forest(x, in)
	case *ml.MLP:
		return t.mlp(x, in)
	default:
		return "", fmt.Errorf("no NN translation for model %q", m.Kind())
	}
}

func (t *translator) linear(w []float64, b float64, in string, sigmoid bool) (string, error) {
	d := len(w)
	wt, _ := tensor.FromSlice(append([]float64(nil), w...), d, 1)
	bt, _ := tensor.FromSlice([]float64{b}, 1, 1)
	wn, bn := t.fresh("W"), t.fresh("B")
	t.g.AddInitializer(wn, wt)
	t.g.AddInitializer(bn, bt)
	z := t.fresh("z")
	t.g.Add("Gemm", []string{in, wn, bn}, []string{z}, ort.Attrs{"alpha": 1.0, "beta": 1.0})
	if !sigmoid {
		return z, nil
	}
	y := t.fresh("proba")
	t.g.Add("Sigmoid", []string{z}, []string{y}, nil)
	return y, nil
}

// tree compiles one decision tree with the GEMM strategy:
//
//	C = (X·A <= B)          n×I test outcomes, A: d×I one-hot of tested feature
//	R = C·E                 n×L path agreement, E[i,l] ∈ {+1 (left), -1 (right), 0}
//	P = (R == F)            n×L leaf indicator, F[l] = #left-edges on path to l
//	Y = P·V                 n×1 leaf values
func (t *translator) tree(dt *ml.DecisionTree, in string) (string, error) {
	var internal, leaves []int
	for i := 0; i < dt.NumNodes(); i++ {
		if dt.Leaf(i) {
			leaves = append(leaves, i)
		} else {
			internal = append(internal, i)
		}
	}
	if len(internal) == 0 {
		// Constant tree: Y = 0·X(first col) + value. Use a Gemm against a
		// zero weight so the graph still consumes X (keeps shapes aligned).
		if dt.NumNodes() == 0 {
			return "", fmt.Errorf("empty tree")
		}
		return t.linear(make([]float64, dt.NFeat), dt.Value[leaves[0]], in, false)
	}
	iIdx := make(map[int]int, len(internal))
	for k, n := range internal {
		iIdx[n] = k
	}
	lIdx := make(map[int]int, len(leaves))
	for k, n := range leaves {
		lIdx[n] = k
	}
	d, I, L := dt.NFeat, len(internal), len(leaves)

	A := tensor.New(d, I)
	B := tensor.New(I)
	for k, n := range internal {
		A.Set(dt.Feature[n], k, 1)
		B.Data[k] = dt.Threshold[n]
	}
	E := tensor.New(I, L)
	F := tensor.New(L)
	V := tensor.New(L, 1)
	for k, leaf := range leaves {
		V.Data[k] = dt.Value[leaf]
	}
	// Walk root-to-leaf paths, filling E and F. Paths are copied on each
	// branch to avoid append aliasing between siblings.
	var walk func(node int, path []int, dirs []bool)
	walk = func(node int, path []int, dirs []bool) {
		if dt.Leaf(node) {
			l := lIdx[node]
			for p, anc := range path {
				if dirs[p] {
					E.Set(iIdx[anc], l, 1)
					F.Data[l]++
				} else {
					E.Set(iIdx[anc], l, -1)
				}
			}
			return
		}
		lp := append(append([]int(nil), path...), node)
		walk(dt.Left[node], lp, append(append([]bool(nil), dirs...), true))
		walk(dt.Right[node], lp, append(append([]bool(nil), dirs...), false))
	}
	walk(0, nil, nil)

	an, bn, en, fn, vn := t.fresh("A"), t.fresh("B"), t.fresh("E"), t.fresh("F"), t.fresh("V")
	t.g.AddInitializer(an, A)
	t.g.AddInitializer(bn, B)
	t.g.AddInitializer(en, E)
	t.g.AddInitializer(fn, F)
	t.g.AddInitializer(vn, V)

	xa := t.fresh("xa")
	t.g.Add("MatMul", []string{in, an}, []string{xa}, nil)
	c := t.fresh("tests")
	t.g.Add("LessOrEqual", []string{xa, bn}, []string{c}, nil)
	r := t.fresh("agree")
	t.g.Add("MatMul", []string{c, en}, []string{r}, nil)
	p := t.fresh("leafind")
	t.g.Add("Equal", []string{r, fn}, []string{p}, nil)
	y := t.fresh("treeval")
	t.g.Add("MatMul", []string{p, vn}, []string{y}, nil)
	return y, nil
}

// forest averages per-tree outputs.
func (t *translator) forest(f *ml.RandomForest, in string) (string, error) {
	if len(f.Trees) == 0 {
		return "", fmt.Errorf("empty forest")
	}
	outs := make([]string, len(f.Trees))
	for i, dt := range f.Trees {
		o, err := t.tree(dt, in)
		if err != nil {
			return "", fmt.Errorf("tree %d: %w", i, err)
		}
		outs[i] = o
	}
	if len(outs) == 1 {
		return outs[0], nil
	}
	// Concat n×1 outputs to n×T, then average with a T×1 GEMM — one dense
	// op instead of a T-deep Add chain.
	cat := t.fresh("treecat")
	t.g.Add("Concat", outs, []string{cat}, nil)
	avgW := tensor.New(len(outs), 1)
	for i := range avgW.Data {
		avgW.Data[i] = 1 / float64(len(outs))
	}
	wn := t.fresh("avgW")
	t.g.AddInitializer(wn, avgW)
	out := t.fresh("forestavg")
	t.g.Add("MatMul", []string{cat, wn}, []string{out}, nil)
	return out, nil
}

func (t *translator) mlp(m *ml.MLP, in string) (string, error) {
	if len(m.Dims) < 2 {
		return "", fmt.Errorf("mlp has no layers")
	}
	cur := in
	for l := 0; l < len(m.Weights); l++ {
		din, dout := m.Dims[l], m.Dims[l+1]
		w, err := tensor.FromSlice(append([]float64(nil), m.Weights[l]...), din, dout)
		if err != nil {
			return "", err
		}
		b := &tensor.Tensor{Shape: []int{dout}, Data: append([]float64(nil), m.Biases[l]...)}
		wn, bn := t.fresh("W"), t.fresh("B")
		t.g.AddInitializer(wn, w)
		t.g.AddInitializer(bn, b)
		z := t.fresh("z")
		t.g.Add("Gemm", []string{cur, wn, bn}, []string{z}, ort.Attrs{"alpha": 1.0, "beta": 1.0})
		cur = z
		if l < len(m.Weights)-1 {
			a := t.fresh("relu")
			t.g.Add("Relu", []string{cur}, []string{a}, nil)
			cur = a
		}
	}
	if m.Classifier {
		s := t.fresh("proba")
		t.g.Add("Sigmoid", []string{cur}, []string{s}, nil)
		cur = s
	}
	return cur, nil
}
