package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func mustMatrix(t *testing.T, data []float64, rows, cols int) Matrix {
	t.Helper()
	m, err := NewMatrix(data, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// exampleTree builds the running-example-shaped tree (Fig 1):
//
//	pregnant <= 0 ?  (feature 0)
//	  yes -> age <= 35 ? (feature 1)  2 : 4
//	  no  -> bp <= 140 ? (feature 2)  4 : 7
func exampleTree() *DecisionTree {
	t := &DecisionTree{NFeat: 3}
	root := t.addSplit(0, 0, -1, -1)
	l := t.addSplit(1, 35, -1, -1)
	ll := t.addLeaf(2)
	lr := t.addLeaf(4)
	t.Left[l], t.Right[l] = ll, lr
	r := t.addSplit(2, 140, -1, -1)
	rl := t.addLeaf(4)
	rr := t.addLeaf(7)
	t.Left[r], t.Right[r] = rl, rr
	t.Left[root], t.Right[root] = l, r
	return t
}

func TestTreePredict(t *testing.T) {
	tr := exampleTree()
	in := mustMatrix(t, []float64{
		0, 30, 100, // not pregnant(<=0), young -> 2
		0, 40, 100, // not pregnant, old -> 4
		1, 99, 120, // pregnant, bp low -> 4
		1, 99, 150, // pregnant, bp high -> 7
	}, 4, 3)
	got, err := tr.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 4, 7}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("pred[%d] = %v, want %v", i, got[i], w)
		}
	}
	if _, err := tr.Predict(mustMatrix(t, []float64{1}, 1, 1)); err == nil {
		t.Error("width mismatch should fail")
	}
}

func TestTreePruneEquality(t *testing.T) {
	tr := exampleTree()
	// pregnant = 1 kills the left branch (pregnant<=0).
	pruned := tr.Prune(Constraints{0: Point(1)})
	if pruned.NumNodes() >= tr.NumNodes() {
		t.Fatalf("prune did not shrink: %d -> %d nodes", tr.NumNodes(), pruned.NumNodes())
	}
	// Pruned tree must agree with original on all pregnant=1 inputs.
	in := mustMatrix(t, []float64{1, 20, 100, 1, 50, 180}, 2, 3)
	a, _ := tr.Predict(in)
	b, _ := pruned.Predict(in)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("pruned tree diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// The gender/age feature of the dead branch is gone.
	for _, f := range pruned.UsedFeatures() {
		if f == 1 {
			t.Error("feature 1 (dead branch) still used after pruning")
		}
	}
}

func TestTreePruneRange(t *testing.T) {
	tr := exampleTree()
	// bp > 140 (derived predicate) removes the bp test on the right.
	pruned := tr.Prune(Constraints{2: {Lo: 140.0000001, Hi: math.Inf(1)}})
	in := mustMatrix(t, []float64{1, 20, 150, 0, 20, 141}, 2, 3)
	a, _ := tr.Predict(in)
	b, _ := pruned.Predict(in)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("range-pruned diverges at %d", i)
		}
	}
	if pruned.NumNodes() >= tr.NumNodes() {
		t.Error("range prune did not shrink tree")
	}
}

func TestTreePruneNestedSameFeature(t *testing.T) {
	// x0 <= 10 ? (x0 <= 5 ? 1 : 2) : 3 with constraint x0 in [6,8]:
	// outer goes left, inner goes right -> constant 2.
	tr := &DecisionTree{NFeat: 1}
	root := tr.addSplit(0, 10, -1, -1)
	inner := tr.addSplit(0, 5, -1, -1)
	a := tr.addLeaf(1)
	b := tr.addLeaf(2)
	tr.Left[inner], tr.Right[inner] = a, b
	c := tr.addLeaf(3)
	tr.Left[root], tr.Right[root] = inner, c
	pruned := tr.Prune(Constraints{0: {Lo: 6, Hi: 8}})
	if pruned.NumNodes() != 1 || !pruned.Leaf(0) || pruned.Value[0] != 2 {
		t.Fatalf("expected single leaf 2, got %d nodes", pruned.NumNodes())
	}
}

// Property: for random trees and random constraint-satisfying inputs,
// pruned trees agree with the original.
func TestTreePrunePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := newRng(seed)
		tr := randomTree(r, 5, 4)
		c := Constraints{0: Point(1)}
		pruned := tr.Prune(c)
		for trial := 0; trial < 20; trial++ {
			row := make([]float64, 5)
			row[0] = 1
			for j := 1; j < 5; j++ {
				row[j] = r.next() * 100
			}
			in := Matrix{Data: row, Rows: 1, Cols: 5}
			a, err1 := tr.Predict(in)
			b, err2 := pruned.Predict(in)
			if err1 != nil || err2 != nil || a[0] != b[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

type rng struct{ s uint64 }

func newRng(seed int64) *rng {
	u := uint64(seed)
	if u == 0 {
		u = 0x9e3779b97f4a7c15
	}
	return &rng{s: u}
}

func (r *rng) next() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s%10000)/10000 - 0.5
}

func randomTree(r *rng, nfeat, depth int) *DecisionTree {
	t := &DecisionTree{NFeat: nfeat}
	var build func(d int) int
	build = func(d int) int {
		if d == 0 || r.next() < -0.3 {
			return t.addLeaf(float64(int(r.next()*10) % 5))
		}
		f := int(math.Abs(r.next()*100)) % nfeat
		thr := r.next() * 50
		self := t.addSplit(f, thr, -1, -1)
		l := build(d - 1)
		rr := build(d - 1)
		t.Left[self], t.Right[self] = l, rr
		return self
	}
	root := build(depth)
	if root != 0 {
		t = t.rerooted(root)
	}
	return t
}

func TestTreeSplitOnRoot(t *testing.T) {
	tr := exampleTree()
	f, thr, left, right, err := tr.SplitOnRoot()
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 || thr != 0 {
		t.Errorf("root split = (%d, %v)", f, thr)
	}
	in := mustMatrix(t, []float64{0, 30, 100}, 1, 3)
	lp, _ := left.Predict(in)
	if lp[0] != 2 {
		t.Errorf("left branch = %v", lp[0])
	}
	in2 := mustMatrix(t, []float64{1, 30, 150}, 1, 3)
	rp, _ := right.Predict(in2)
	if rp[0] != 7 {
		t.Errorf("right branch = %v", rp[0])
	}
	leaf := &DecisionTree{NFeat: 1}
	leaf.addLeaf(1)
	if _, _, _, _, err := leaf.SplitOnRoot(); err == nil {
		t.Error("split of leaf-only tree should fail")
	}
}

func TestTreeRemapFeatures(t *testing.T) {
	tr := exampleTree()
	remapped, err := tr.RemapFeatures(map[int]int{0: 0, 1: 1, 2: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := mustMatrix(t, []float64{1, 99, 150}, 1, 3)
	a, _ := tr.Predict(in)
	b, _ := remapped.Predict(in)
	if a[0] != b[0] {
		t.Error("identity remap changed predictions")
	}
	if _, err := tr.RemapFeatures(map[int]int{0: 0}, 1); err == nil {
		t.Error("remap dropping used feature should fail")
	}
}

func TestTreeDepthAndUsedFeatures(t *testing.T) {
	tr := exampleTree()
	if tr.Depth() != 2 {
		t.Errorf("Depth = %d", tr.Depth())
	}
	uf := tr.UsedFeatures()
	if len(uf) != 3 || uf[0] != 0 || uf[2] != 2 {
		t.Errorf("UsedFeatures = %v", uf)
	}
}

func TestForestPredictIsTreeAverage(t *testing.T) {
	f := &RandomForest{Trees: []*DecisionTree{exampleTree(), exampleTree()}}
	in := mustMatrix(t, []float64{1, 99, 150}, 1, 3)
	p, err := f.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 7 {
		t.Errorf("forest of identical trees = %v, want 7", p[0])
	}
	if f.NumFeatures() != 3 {
		t.Errorf("NumFeatures = %d", f.NumFeatures())
	}
	pruned := f.Prune(Constraints{0: Point(1)})
	pp, _ := pruned.Predict(in)
	if pp[0] != 7 {
		t.Errorf("pruned forest = %v", pp[0])
	}
	empty := &RandomForest{}
	if _, err := empty.Predict(in); err == nil {
		t.Error("empty forest should fail")
	}
}

func TestLinearAndLogisticRegression(t *testing.T) {
	lr := &LinearRegression{W: []float64{2, 0, -1}, B: 0.5}
	in := mustMatrix(t, []float64{1, 9, 2}, 1, 3)
	p, err := lr.Predict(in)
	if err != nil || p[0] != 2*1-1*2+0.5 {
		t.Errorf("linreg = %v, err %v", p, err)
	}
	if uf := lr.UsedFeatures(); len(uf) != 2 || uf[0] != 0 || uf[1] != 2 {
		t.Errorf("linreg UsedFeatures = %v", uf)
	}

	lg := &LogisticRegression{W: []float64{0, 0, 0}, B: 0}
	p2, err := lg.Predict(in)
	if err != nil || p2[0] != 0.5 {
		t.Errorf("logreg zero = %v, err %v", p2, err)
	}
	if _, err := lg.Predict(mustMatrix(t, []float64{1}, 1, 1)); err == nil {
		t.Error("width mismatch should fail")
	}
}

func TestLogRegSparsityCompactPin(t *testing.T) {
	lg := &LogisticRegression{W: []float64{1, 0, 0, 2, 0}, B: 0.1}
	if s := lg.Sparsity(); s != 0.6 {
		t.Errorf("Sparsity = %v", s)
	}
	compact, kept := lg.Compact()
	if len(kept) != 2 || kept[0] != 0 || kept[1] != 3 {
		t.Fatalf("kept = %v", kept)
	}
	in5 := mustMatrix(t, []float64{1, 9, 9, 2, 9}, 1, 5)
	in2 := mustMatrix(t, []float64{1, 2}, 1, 2)
	a, _ := lg.Predict(in5)
	b, _ := compact.Predict(in2)
	if math.Abs(a[0]-b[0]) > 1e-12 {
		t.Errorf("compact diverges: %v vs %v", a[0], b[0])
	}

	pinned, kept2 := lg.PinFeatures(map[int]float64{0: 1})
	if len(kept2) != 4 {
		t.Fatalf("kept after pin = %v", kept2)
	}
	in4 := mustMatrix(t, []float64{9, 9, 2, 9}, 1, 4)
	c, _ := pinned.Predict(in4)
	if math.Abs(a[0]-c[0]) > 1e-12 {
		t.Errorf("pinned diverges: %v vs %v", a[0], c[0])
	}
}

func TestMLPPredict(t *testing.T) {
	// 2-2-1 network, hand-checkable: hidden = relu(x·W1+b1), out = hidden·W2+b2.
	m := &MLP{
		Dims:    []int{2, 2, 1},
		Weights: [][]float64{{1, -1, 0, 1}, {1, 1}},
		Biases:  [][]float64{{0, 0}, {0.5}},
	}
	in := mustMatrix(t, []float64{1, 2}, 1, 2)
	// hidden = relu([1*1+2*0, 1*-1+2*1]) = [1, 1]; out = 1+1+0.5 = 2.5
	p, err := m.Predict(in)
	if err != nil || p[0] != 2.5 {
		t.Fatalf("mlp = %v, err %v", p, err)
	}
	m.Classifier = true
	p2, _ := m.Predict(in)
	want := 1 / (1 + math.Exp(-2.5))
	if math.Abs(p2[0]-want) > 1e-12 {
		t.Errorf("classifier mlp = %v, want %v", p2[0], want)
	}
	if uf := m.UsedFeatures(); len(uf) != 2 {
		t.Errorf("UsedFeatures = %v", uf)
	}
}

func TestScaler(t *testing.T) {
	in := mustMatrix(t, []float64{0, 10, 2, 10, 4, 10}, 3, 2)
	s := FitScaler(in)
	if s.Mean[0] != 2 || s.Mean[1] != 10 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Scale[1] != 1 {
		t.Error("constant column should get scale 1")
	}
	out, err := s.Transform(in)
	if err != nil {
		t.Fatal(err)
	}
	// column 0: values (0,2,4), std = sqrt(8/3)
	want := -2 / math.Sqrt(8.0/3.0)
	if math.Abs(out.At(0, 0)-want) > 1e-12 {
		t.Errorf("scaled = %v, want %v", out.At(0, 0), want)
	}
	if out.At(1, 1) != 0 {
		t.Error("constant column should center to 0")
	}
	if _, err := s.Transform(mustMatrix(t, []float64{1}, 1, 1)); err == nil {
		t.Error("width mismatch should fail")
	}
	if d, _ := s.OutputDim(2); d != 2 {
		t.Error("scaler OutputDim")
	}
}

func TestOneHotEncoder(t *testing.T) {
	// columns: [num, cat]; cat values 5, 7.
	in := mustMatrix(t, []float64{1.5, 5, 2.5, 7, 3.5, 5}, 3, 2)
	e := FitOneHot(in, []int{1})
	if len(e.Categories[0]) != 2 || e.Categories[0][0] != 5 || e.Categories[0][1] != 7 {
		t.Fatalf("Categories = %v", e.Categories)
	}
	out, err := e.Transform(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols != 3 {
		t.Fatalf("out width = %d", out.Cols)
	}
	// row 0: [1.5, 1, 0]; row 1: [2.5, 0, 1]
	if out.At(0, 0) != 1.5 || out.At(0, 1) != 1 || out.At(0, 2) != 0 {
		t.Errorf("row0 = %v", out.Row(0))
	}
	if out.At(1, 1) != 0 || out.At(1, 2) != 1 {
		t.Errorf("row1 = %v", out.Row(1))
	}
	// unknown category -> all-zero block
	u := mustMatrix(t, []float64{9, 999}, 1, 2)
	ou, _ := e.Transform(u)
	if ou.At(0, 1) != 0 || ou.At(0, 2) != 0 {
		t.Errorf("unknown category row = %v", ou.Row(0))
	}

	idx, err := e.OutputIndexOfCategory(2, 1, 7)
	if err != nil || idx != 2 {
		t.Errorf("OutputIndexOfCategory = %d, %v", idx, err)
	}
	lo, hi, err := e.IndicatorRange(2, 1)
	if err != nil || lo != 1 || hi != 3 {
		t.Errorf("IndicatorRange = [%d,%d), %v", lo, hi, err)
	}
	p, err := e.PassthroughOutputIndex(0)
	if err != nil || p != 0 {
		t.Errorf("PassthroughOutputIndex = %d, %v", p, err)
	}
	if _, err := e.OutputIndexOfCategory(2, 0, 5); err == nil {
		t.Error("non-categorical column should fail")
	}
	if _, err := e.OutputIndexOfCategory(2, 1, 42); err == nil {
		t.Error("unknown category should fail")
	}
}

func TestColumnSelectAndUnion(t *testing.T) {
	in := mustMatrix(t, []float64{1, 2, 3, 4, 5, 6}, 2, 3)
	cs := &ColumnSelect{Indices: []int{2, 0}}
	out, err := cs.Transform(in)
	if err != nil || out.At(0, 0) != 3 || out.At(1, 1) != 4 {
		t.Errorf("select = %v, err %v", out, err)
	}
	if _, err := (&ColumnSelect{Indices: []int{9}}).Transform(in); err == nil {
		t.Error("oob select should fail")
	}

	u := &FeatureUnion{Parts: []Transformer{cs, &ColumnSelect{Indices: []int{1}}}}
	uo, err := u.Transform(in)
	if err != nil || uo.Cols != 3 {
		t.Fatalf("union = %v, err %v", uo, err)
	}
	if uo.At(0, 2) != 2 {
		t.Errorf("union row0 = %v", uo.Row(0))
	}
	if d, _ := u.OutputDim(3); d != 3 {
		t.Error("union OutputDim")
	}
}

func TestPipelinePredictAndValidate(t *testing.T) {
	// scale 1 column then logistic regression.
	scaler := &StandardScaler{Mean: []float64{10}, Scale: []float64{2}}
	lg := &LogisticRegression{W: []float64{1}, B: 0}
	p := &Pipeline{Steps: []Transformer{scaler}, Final: lg, InputColumns: []string{"x"}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	in := mustMatrix(t, []float64{12}, 1, 1)
	got, err := p.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 + math.Exp(-1.0)) // (12-10)/2 = 1
	if math.Abs(got[0]-want) > 1e-12 {
		t.Errorf("pipeline = %v, want %v", got[0], want)
	}

	bad := &Pipeline{Steps: nil, Final: &LogisticRegression{W: []float64{1, 1}}, InputColumns: []string{"x"}}
	if err := bad.Validate(); err == nil {
		t.Error("width-mismatched pipeline should fail validation")
	}
	if err := (&Pipeline{}).Validate(); err == nil {
		t.Error("pipeline without model should fail validation")
	}
}

func TestPipelineMarshalRoundTrip(t *testing.T) {
	in := mustMatrix(t, []float64{1.5, 5, 2.5, 7, 3.5, 5}, 3, 2)
	enc := FitOneHot(in, []int{1})
	p := &Pipeline{
		Steps:        []Transformer{enc, &StandardScaler{Mean: []float64{0, 0, 0}, Scale: []float64{1, 1, 1}}},
		Final:        exampleTree(),
		InputColumns: []string{"num", "cat"},
	}
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("round trip diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(q.InputColumns) != 2 {
		t.Errorf("InputColumns = %v", q.InputColumns)
	}
	if _, err := Marshal(&Pipeline{}); err == nil {
		t.Error("marshal of model-less pipeline should fail")
	}
	if _, err := Unmarshal([]byte("garbage")); err == nil {
		t.Error("unmarshal of garbage should fail")
	}
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Error("bad dims should fail")
	}
}
