package storage

import (
	"fmt"
	"sync"
	"testing"

	"raven/internal/types"
)

func intFloatSchema() *types.Schema {
	return types.NewSchema(types.Column{Name: "id", Type: types.Int}, types.Column{Name: "x", Type: types.Float})
}

func TestTableAppendScan(t *testing.T) {
	tb := NewTable("t", intFloatSchema())
	for i := 0; i < 10; i++ {
		if err := tb.AppendRow(int64(i), float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	if tb.NumRows() != 10 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	b, err := tb.ScanRange(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 || b.Vecs[0].Ints[0] != 3 {
		t.Fatalf("ScanRange = %v", b.Vecs[0].Ints)
	}
	// Out-of-range clamps.
	if got, _ := tb.ScanRange(8, 100); got.Len() != 2 {
		t.Errorf("clamped scan len = %d, want 2", got.Len())
	}
	if got, _ := tb.ScanRange(100, 200); got.Len() != 0 {
		t.Errorf("empty scan len = %d, want 0", got.Len())
	}
}

func TestTableAppendBatch(t *testing.T) {
	tb := NewTable("t", intFloatSchema())
	b := types.NewBatch(intFloatSchema())
	_ = b.AppendRow(int64(1), 1.0)
	_ = b.AppendRow(int64(2), 2.0)
	if err := tb.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	wrong := types.NewBatch(types.NewSchema(types.Column{Name: "only", Type: types.Int}))
	if err := tb.AppendBatch(wrong); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestTableArityError(t *testing.T) {
	tb := NewTable("t", intFloatSchema())
	if err := tb.AppendRow(int64(1)); err == nil {
		t.Error("short row should fail")
	}
}

func TestTableConcurrentAppendScan(t *testing.T) {
	tb := NewTable("t", intFloatSchema())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = tb.AppendRow(int64(i), float64(i))
				_, _ = tb.ScanRange(0, tb.NumRows())
			}
		}()
	}
	wg.Wait()
	if tb.NumRows() != 800 {
		t.Fatalf("NumRows = %d, want 800", tb.NumRows())
	}
}

func TestTableStats(t *testing.T) {
	tb := NewTable("t", types.NewSchema(
		types.Column{Name: "cat", Type: types.Int},
		types.Column{Name: "name", Type: types.String},
	))
	for i := 0; i < 100; i++ {
		if err := tb.AppendRow(int64(i%3), fmt.Sprintf("s%d", i%2)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tb.Stats("cat")
	if err != nil {
		t.Fatal(err)
	}
	if st.Min != 0 || st.Max != 2 || st.DistinctCount != 3 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.Distinct) != 3 {
		t.Errorf("Distinct = %v", st.Distinct)
	}
	ss, err := tb.Stats("name")
	if err != nil {
		t.Fatal(err)
	}
	if ss.DistinctCount != 2 || len(ss.DistinctStrings) != 2 {
		t.Errorf("string stats = %+v", ss)
	}
	if _, err := tb.Stats("missing"); err == nil {
		t.Error("stats of missing column should fail")
	}
}

func TestCatalogTables(t *testing.T) {
	c := NewCatalog()
	tb := NewTable("Patients", intFloatSchema())
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(NewTable("patients", intFloatSchema())); err == nil {
		t.Error("duplicate (case-insensitive) table name should fail")
	}
	got, err := c.Table("PATIENTS")
	if err != nil || got != tb {
		t.Fatalf("lookup failed: %v", err)
	}
	if names := c.TableNames(); len(names) != 1 || names[0] != "Patients" {
		t.Errorf("TableNames = %v", names)
	}
	if err := c.DropTable("patients"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("patients"); err == nil {
		t.Error("dropped table should not resolve")
	}
	if err := c.DropTable("patients"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCatalogUniqueKeys(t *testing.T) {
	c := NewCatalog()
	c.SetUniqueKey("patient_info", "id")
	if !c.IsUniqueKey("Patient_Info", "ID") {
		t.Error("unique key lookup should be case-insensitive")
	}
	if c.IsUniqueKey("patient_info", "age") {
		t.Error("age is not a unique key")
	}
}

func TestModelStoreVersioning(t *testing.T) {
	s := NewModelStore()
	if err := s.PutModel("m", "gob", []byte("v1"), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.PutModel("m", "gob", []byte("v2"), map[string]string{"note": "retrained"}); err != nil {
		t.Fatal(err)
	}
	latest, err := s.Latest("m")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != 2 || string(latest.Bytes) != "v2" {
		t.Errorf("latest = v%d %q", latest.Version, latest.Bytes)
	}
	v1, err := s.Version("m", 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(v1.Bytes) != "v1" {
		t.Errorf("v1 = %q", v1.Bytes)
	}
	if v1.Hash == latest.Hash {
		t.Error("different contents must hash differently")
	}
	if _, err := s.Version("m", 3); err == nil {
		t.Error("missing version should fail")
	}
	if _, err := s.Latest("nope"); err == nil {
		t.Error("missing model should fail")
	}
}

func TestModelStoreTransactionAtomicity(t *testing.T) {
	s := NewModelStore()
	tx := s.Begin()
	tx.Put("a", "gob", []byte("A"), nil)
	tx.Put("b", "gob", []byte("B"), nil)
	// Not yet visible before commit.
	if _, err := s.Latest("a"); err == nil {
		t.Error("uncommitted put should not be visible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Latest("a"); err != nil {
		t.Error("committed put should be visible")
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit should fail")
	}

	// A transaction with a bad delete aborts entirely: the staged put of
	// "c" must not appear.
	tx2 := s.Begin()
	tx2.Put("c", "gob", []byte("C"), nil)
	tx2.Delete("does-not-exist")
	if err := tx2.Commit(); err == nil {
		t.Fatal("commit with bad delete should fail")
	}
	if _, err := s.Latest("c"); err == nil {
		t.Error("aborted transaction leaked a put")
	}
}

func TestModelStoreRollbackAndAudit(t *testing.T) {
	s := NewModelStore()
	tx := s.Begin()
	tx.Put("m", "gob", []byte("x"), nil)
	tx.Rollback()
	if _, err := s.Latest("m"); err == nil {
		t.Error("rolled-back put visible")
	}
	_ = s.PutModel("m", "gob", []byte("x"), nil)
	audit := s.Audit()
	var puts, rollbacks int
	for _, e := range audit {
		switch e.Op {
		case "put":
			puts++
		case "rollback":
			rollbacks++
		}
	}
	if puts != 1 || rollbacks != 1 {
		t.Errorf("audit = %+v", audit)
	}
}

func TestModelStoreDelete(t *testing.T) {
	s := NewModelStore()
	_ = s.PutModel("m", "gob", []byte("x"), nil)
	tx := s.Begin()
	tx.Delete("m")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Latest("m"); err == nil {
		t.Error("deleted model still visible")
	}
	if n := s.Names(); len(n) != 0 {
		t.Errorf("Names = %v", n)
	}
}

func TestModelStoreConcurrent(t *testing.T) {
	s := NewModelStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = s.PutModel("m", "gob", []byte{byte(w), byte(i)}, nil)
				_, _ = s.Latest("m")
			}
		}(w)
	}
	wg.Wait()
	latest, err := s.Latest("m")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != 400 {
		t.Errorf("final version = %d, want 400", latest.Version)
	}
}

func TestTableDataVersion(t *testing.T) {
	tb := NewTable("t", intFloatSchema())
	if v := tb.DataVersion(); v != 0 {
		t.Fatalf("fresh table DataVersion = %d, want 0", v)
	}
	if err := tb.AppendRow(int64(1), 1.0); err != nil {
		t.Fatal(err)
	}
	v1 := tb.DataVersion()
	if v1 == 0 {
		t.Fatal("AppendRow did not bump DataVersion")
	}
	b := types.NewBatch(intFloatSchema())
	_ = b.AppendRow(int64(2), 2.0)
	if err := tb.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if v2 := tb.DataVersion(); v2 <= v1 {
		t.Fatalf("AppendBatch did not bump DataVersion: %d -> %d", v1, v2)
	}
	// A failed append may bump (spurious invalidation is fine) but the
	// version must never move backwards and reads must stay consistent.
	before := tb.DataVersion()
	if err := tb.AppendRow(int64(3)); err == nil {
		t.Fatal("short row should fail")
	}
	if tb.DataVersion() < before {
		t.Fatal("DataVersion went backwards")
	}
}

func TestTableDataVersionConcurrent(t *testing.T) {
	tb := NewTable("t", intFloatSchema())
	var wg sync.WaitGroup
	const writers, perWriter = 4, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := tb.AppendRow(int64(w*perWriter+i), float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tb.DataVersion(); got != writers*perWriter {
		t.Fatalf("DataVersion = %d, want %d", got, writers*perWriter)
	}
}
