package expr

import (
	"math/rand"
	"testing"

	"raven/internal/types"
)

// Kernel micro-benchmarks (run via `make bench-micro`). Each one pushes a
// full batch through Binary.Eval and returns the result to the vector
// pool, so allocs/op shows the steady-state cost of a kernel invocation —
// the number that must stay at zero for the allocs/row budgets in
// internal/bench to hold.

func benchBatch(n int) *types.Batch {
	s := types.NewSchema(
		types.Column{Name: "x", Type: types.Float},
		types.Column{Name: "y", Type: types.Float},
		types.Column{Name: "i", Type: types.Int},
		types.Column{Name: "j", Type: types.Int},
	)
	b := types.NewBatch(s)
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < n; k++ {
		_ = b.AppendRow(rng.NormFloat64(), rng.NormFloat64(), int64(rng.Intn(1000)), int64(rng.Intn(1000)+1))
	}
	return b
}

func benchEval(b *testing.B, e Expr, batch *types.Batch) {
	b.Helper()
	bound := Bind(e, batch.Schema)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := bound.Eval(batch)
		if err != nil {
			b.Fatal(err)
		}
		PutEvalResult(bound, v)
	}
}

func BenchmarkKernelCompareFloat(b *testing.B) {
	batch := benchBatch(types.DefaultBatchSize)
	benchEval(b, NewBinary(OpLt, &Column{Name: "x"}, &Column{Name: "y"}), batch)
}

func BenchmarkKernelCompareFloatConst(b *testing.B) {
	batch := benchBatch(types.DefaultBatchSize)
	benchEval(b, NewBinary(OpGt, &Column{Name: "x"}, FloatLit(0.5)), batch)
}

func BenchmarkKernelArithInt(b *testing.B) {
	batch := benchBatch(types.DefaultBatchSize)
	benchEval(b, NewBinary(OpAdd, &Column{Name: "i"}, &Column{Name: "j"}), batch)
}

func BenchmarkKernelArithMixed(b *testing.B) {
	batch := benchBatch(types.DefaultBatchSize)
	benchEval(b, NewBinary(OpMul, &Column{Name: "x"}, &Column{Name: "i"}), batch)
}

func BenchmarkKernelPredicateTree(b *testing.B) {
	batch := benchBatch(types.DefaultBatchSize)
	e := NewBinary(OpAnd,
		NewBinary(OpGt, &Column{Name: "x"}, FloatLit(-0.5)),
		NewBinary(OpLe, &Column{Name: "i"}, IntLit(800)))
	benchEval(b, e, batch)
}

func BenchmarkKernelCompareWithNulls(b *testing.B) {
	batch := benchBatch(types.DefaultBatchSize)
	for i := 0; i < batch.Len(); i += 7 {
		batch.Col("x").SetNull(i)
	}
	benchEval(b, NewBinary(OpLt, &Column{Name: "x"}, &Column{Name: "y"}), batch)
}
