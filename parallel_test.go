package raven

import (
	"fmt"
	"sync"
	"testing"

	"raven/internal/data"
	"raven/internal/ml"
	"raven/internal/train"
	"raven/internal/types"
)

// flightsDB builds an engine with the wide flights table and a stored
// logistic-regression model, the single-table scan+PREDICT workload the
// morsel exchange parallelizes end to end.
func flightsDB(t testing.TB, rows int) *DB {
	t.Helper()
	db := MustOpen()
	fl, err := data.GenFlightsWide(db.Catalog(), rows, 30, 10, 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	lr := train.FitLogReg(fl.TrainX, fl.TrainY, train.LogRegOptions{L1: 0.01, Epochs: 30, Seed: 3})
	if err := db.StoreModel("delay_par", &ml.Pipeline{Final: lr, InputColumns: fl.FeatureCols}); err != nil {
		t.Fatal(err)
	}
	return db
}

// batchesIdentical asserts b equals a byte for byte: same schema, same
// rows, same order. This is the morsel exchange's determinism contract —
// stronger than the multiset comparison the older parallel tests used.
func batchesIdentical(t *testing.T, label string, a, b *types.Batch) {
	t.Helper()
	if got, want := fmt.Sprint(b.Schema.Names()), fmt.Sprint(a.Schema.Names()); got != want {
		t.Fatalf("%s: schema %s vs %s", label, got, want)
	}
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d rows vs %d", label, b.Len(), a.Len())
	}
	for j, av := range a.Vecs {
		bv := b.Vecs[j]
		for i := 0; i < a.Len(); i++ {
			if fmt.Sprint(av.Value(i)) != fmt.Sprint(bv.Value(i)) {
				t.Fatalf("%s: col %s row %d: %v vs %v", label, a.Schema.Columns[j].Name, i, bv.Value(i), av.Value(i))
			}
		}
	}
}

// parallelParityQueries covers every plan shape the issue calls out:
// plain SELECT, WHERE, PREDICT, ORDER BY and LIMIT (and combinations).
var parallelParityQueries = []struct{ label, q string }{
	{"select", `SELECT id, f0, f1 FROM flights_features`},
	{"where", `SELECT f0, f1 FROM flights_features WHERE f0 > 0`},
	{"predict", `SELECT p.prob FROM PREDICT(MODEL='delay_par', DATA=flights_features AS d) WITH (prob FLOAT) AS p`},
	{"predict-where", `SELECT d.f0, p.prob FROM PREDICT(MODEL='delay_par', DATA=flights_features AS d) WITH (prob FLOAT) AS p WHERE d.f1 > 0`},
	{"order-by", `SELECT f0, f2 FROM flights_features WHERE f2 > 0 ORDER BY f0 DESC`},
	{"limit", `SELECT f0 FROM flights_features WHERE f0 > 0 LIMIT 37`},
	{"predict-order-limit", `SELECT d.f0, p.prob FROM PREDICT(MODEL='delay_par', DATA=flights_features AS d) WITH (prob FLOAT) AS p WHERE d.f0 > 0 ORDER BY p.prob DESC LIMIT 25`},
}

func TestParallelPlansByteIdenticalToSerial(t *testing.T) {
	db := flightsDB(t, 20000)
	for _, mode := range []Mode{ModeInProcess, ModeInProcessNN} {
		for _, tc := range parallelParityQueries {
			serial, err := db.QueryWithOptions(tc.q, QueryOptions{
				Mode: mode, Parallelism: 1,
			})
			if err != nil {
				t.Fatalf("%s serial: %v", tc.label, err)
			}
			for _, dop := range []int{4, 8} {
				par, err := db.QueryWithOptions(tc.q, QueryOptions{
					Mode: mode, Parallelism: dop, ParallelThresholdRows: 1, MorselSize: 512,
				})
				if err != nil {
					t.Fatalf("%s dop=%d: %v", tc.label, dop, err)
				}
				batchesIdentical(t, fmt.Sprintf("%s mode=%v dop=%d", tc.label, mode, dop), serial.Batch, par.Batch)
			}
		}
	}
}

// breakerParityQueries covers the pipeline breakers this refactor
// parallelized — JOIN, GROUP BY (partial agg + merge, exact SUM/AVG),
// ORDER BY (run merge-sort) — alone, stacked on each other, and stacked
// with PREDICT. All run over the hospital workload.
var breakerParityQueries = []struct{ label, q string }{
	{"join", `SELECT pi.id, pi.age, bt.bp FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id WHERE bt.bp > 120`},
	{"join-chain", `SELECT pi.id, bt.glucose, pt.fetal_hr FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id JOIN prenatal_tests AS pt ON bt.id = pt.id WHERE pi.age > 40`},
	{"group-by", `SELECT pregnant, COUNT(*) AS n, SUM(weight) AS sw, AVG(age) AS aa, MIN(id) AS mn, MAX(age) AS mx FROM patient_info GROUP BY pregnant`},
	{"global-agg", `SELECT COUNT(*) AS n, SUM(bp) AS sb, AVG(glucose) AS ag FROM blood_tests`},
	{"join-group", `SELECT gender, COUNT(*) AS n, AVG(glucose) AS ag FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id GROUP BY gender`},
	{"group-order", `SELECT gender, COUNT(*) AS n FROM patient_info GROUP BY gender ORDER BY n DESC`},
	{"join-order-limit", `SELECT pi.id, bt.bp FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id ORDER BY bp DESC LIMIT 100`},
	{"predict-join", runningExampleQuery},
	{"predict-agg", `SELECT COUNT(*) AS n, AVG(p.length_of_stay) AS al
		FROM PREDICT(MODEL='duration_of_stay',
		  DATA=(SELECT * FROM patient_info AS pi
		        JOIN blood_tests AS bt ON pi.id = bt.id
		        JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (length_of_stay FLOAT) AS p WHERE d.pregnant = 1`},
	{"predict-order", `SELECT d.id, p.length_of_stay
		FROM PREDICT(MODEL='duration_of_stay',
		  DATA=(SELECT * FROM patient_info AS pi
		        JOIN blood_tests AS bt ON pi.id = bt.id
		        JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)
		WITH (length_of_stay FLOAT) AS p
		WHERE d.age > 30 ORDER BY p.length_of_stay DESC, d.id LIMIT 200`},
}

// TestBreakerPlansByteIdenticalToSerial is the parity acceptance for the
// parallel pipeline breakers: serial (DOP=1) and DOP>=4 executions must
// agree byte for byte — rows, order, and every float bit (exact SUM/AVG
// makes the aggregates DOP- and morsel-size-invariant).
func TestBreakerPlansByteIdenticalToSerial(t *testing.T) {
	db, _ := hospitalDB(t, 20000)
	for _, tc := range breakerParityQueries {
		serial, err := db.QueryWithOptions(tc.q, QueryOptions{
			Mode: ModeInProcess, Parallelism: 1,
		})
		if err != nil {
			t.Fatalf("%s serial: %v", tc.label, err)
		}
		if serial.Batch.Len() == 0 {
			t.Fatalf("%s: serial result empty (query shape broken)", tc.label)
		}
		for _, dop := range []int{4, 8} {
			par, err := db.QueryWithOptions(tc.q, QueryOptions{
				Mode: ModeInProcess, Parallelism: dop, ParallelThresholdRows: 1, MorselSize: 512,
			})
			if err != nil {
				t.Fatalf("%s dop=%d: %v", tc.label, dop, err)
			}
			batchesIdentical(t, fmt.Sprintf("%s dop=%d", tc.label, dop), serial.Batch, par.Batch)
		}
	}
}

func TestConcurrentParallelQueriesOverSharedTables(t *testing.T) {
	db := flightsDB(t, 20000)
	// Reference results, computed serially.
	want := make([]*Result, len(parallelParityQueries))
	for i, tc := range parallelParityQueries {
		r, err := db.QueryWithOptions(tc.q, QueryOptions{Mode: ModeInProcess, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		want[i] = r
	}
	// Many goroutines fire parallel plans at the shared engine at once;
	// run under -race this exercises the exchange, the shared predictors
	// and the session cache.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		for i, tc := range parallelParityQueries {
			wg.Add(1)
			go func(i int, label, q string) {
				defer wg.Done()
				r, err := db.QueryWithOptions(q, QueryOptions{
					Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 1024,
				})
				if err != nil {
					t.Errorf("%s: %v", label, err)
					return
				}
				if r.Batch.Len() != want[i].Batch.Len() {
					t.Errorf("%s: %d rows, want %d", label, r.Batch.Len(), want[i].Batch.Len())
				}
			}(i, tc.label, tc.q)
		}
	}
	wg.Wait()
	// Determinism still holds after the storm.
	for i, tc := range parallelParityQueries {
		r, err := db.QueryWithOptions(tc.q, QueryOptions{
			Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		batchesIdentical(t, tc.label, want[i].Batch, r.Batch)
	}
}

func TestOpenOptions(t *testing.T) {
	db := MustOpen(WithParallelism(3), WithMorselSize(2048))
	if db.DefaultParallelism != 3 || db.MorselSize != 2048 {
		t.Fatalf("options not applied: dop=%d morsel=%d", db.DefaultParallelism, db.MorselSize)
	}
	// Out-of-range values keep defaults.
	db2 := MustOpen(WithParallelism(0), WithMorselSize(-1))
	if db2.DefaultParallelism < 1 || db2.MorselSize != 0 {
		t.Fatalf("bad option handling: dop=%d morsel=%d", db2.DefaultParallelism, db2.MorselSize)
	}
}
