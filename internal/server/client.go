package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Client is a minimal Go client for the wire protocol, shared by the
// ravenserved selftest, the integration tests and the ServeConcurrency
// benchmark. It is what a driver library for the server would look like.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8080"
	HTTP *http.Client
}

// HTTPError is a non-2xx response, carrying the status code so callers
// can distinguish rejection (429) from timeout (504) from drain (503).
type HTTPError struct {
	Status int
	Msg    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Status, e.Msg)
}

// StreamResult is one fully-read NDJSON query response.
type StreamResult struct {
	Columns []string
	Types   []string
	Rows    [][]any
	Trailer Trailer
	// OK is set instead of rows for side-effect-only scripts.
	OK bool
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) postJSON(path string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.httpClient().Do(req)
}

func readError(resp *http.Response) error {
	var e ErrorLine
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&e); err != nil || e.Error == "" {
		e.Error = resp.Status
	}
	return &HTTPError{Status: resp.StatusCode, Msg: e.Error}
}

// Query posts to /query and reads the whole stream.
func (c *Client) Query(req QueryRequest) (*StreamResult, error) {
	resp, err := c.postJSON("/query", req)
	if err != nil {
		return nil, err
	}
	return readStream(resp)
}

// Prepare posts to /prepare.
func (c *Client) Prepare(req QueryRequest) (*PrepareResponse, error) {
	resp, err := c.postJSON("/prepare", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	var pr PrepareResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

// StmtQuery executes a prepared statement by id.
func (c *Client) StmtQuery(id string, req QueryRequest) (*StreamResult, error) {
	resp, err := c.postJSON("/stmt/"+id+"/query", req)
	if err != nil {
		return nil, err
	}
	return readStream(resp)
}

// CloseStmt deletes a prepared statement.
func (c *Client) CloseStmt(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.Base+"/stmt/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(resp)
	}
	return nil
}

// Stats fetches /stats.
func (c *Client) Stats() (*StatsResponse, error) {
	resp, err := c.httpClient().Get(c.Base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Healthz fetches /healthz, returning the reported status string.
func (c *Client) Healthz() (string, error) {
	resp, err := c.httpClient().Get(c.Base + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var m map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return m["status"], &HTTPError{Status: resp.StatusCode, Msg: m["status"]}
	}
	return m["status"], nil
}

// readStream parses an NDJSON query response (or the unary ExecResponse
// / error forms) into a StreamResult.
func readStream(resp *http.Response) (*StreamResult, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	res := &StreamResult{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	first := true
	sawTrailer := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '[' {
			var row []any
			if err := json.Unmarshal(line, &row); err != nil {
				return nil, fmt.Errorf("bad row line: %w", err)
			}
			res.Rows = append(res.Rows, row)
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("bad stream line %q: %w", line, err)
		}
		switch {
		case probe["error"] != nil:
			var e ErrorLine
			json.Unmarshal(line, &e)
			return nil, &HTTPError{Status: resp.StatusCode, Msg: e.Error}
		case first && probe["columns"] != nil:
			var hdr struct {
				Columns []string `json:"columns"`
				Types   []string `json:"types"`
			}
			if err := json.Unmarshal(line, &hdr); err != nil {
				return nil, err
			}
			res.Columns, res.Types = hdr.Columns, hdr.Types
		case probe["ok"] != nil:
			res.OK = true
		case probe["rows"] != nil:
			if err := json.Unmarshal(line, &res.Trailer); err != nil {
				return nil, err
			}
			sawTrailer = true
		default:
			return nil, fmt.Errorf("unexpected stream line %q", line)
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawTrailer && !res.OK {
		return nil, fmt.Errorf("stream ended without trailer")
	}
	if sawTrailer && res.Trailer.Rows != len(res.Rows) {
		return nil, fmt.Errorf("trailer says %d rows, stream carried %d", res.Trailer.Rows, len(res.Rows))
	}
	return res, nil
}

// Fingerprint renders the rows deterministically for byte-identical
// comparisons across serial and concurrent executions.
func (r *StreamResult) Fingerprint() string {
	var sb strings.Builder
	for _, row := range r.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('\t')
			}
			fmt.Fprintf(&sb, "%v", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
