package segment

import (
	"encoding/binary"
	"fmt"
	"math"

	"raven/internal/types"
)

// EncodeBatch serializes a batch as a WAL append payload, using the same
// per-column encoding as segment files:
//
//	[rows u32][ncols u16]
//	per column: [type u8][hasNulls u8][null words][data]
//
// Column order and types are the table schema's; DecodeBatch checks them
// against the live schema at replay, so a WAL written against one
// schema cannot silently replay into another.
func EncodeBatch(b *types.Batch) ([]byte, error) {
	rows := b.Len()
	out := make([]byte, 6, 6+16*rows)
	binary.LittleEndian.PutUint32(out[0:4], uint32(rows))
	binary.LittleEndian.PutUint16(out[4:6], uint16(len(b.Vecs)))
	for i, v := range b.Vecs {
		v = v.Densify()
		block, err := encodeColumn(v, rows)
		if err != nil {
			return nil, fmt.Errorf("segment: encode column %s: %w", b.Schema.Columns[i].Name, err)
		}
		hasNulls := byte(0)
		if block.nulls != nil {
			hasNulls = 1
		}
		out = append(out, byte(v.Type), hasNulls)
		out = append(out, block.nulls...)
		out = append(out, block.data...)
	}
	return out, nil
}

// DecodeBatch parses a payload written by EncodeBatch into a fresh batch
// with the given schema.
func DecodeBatch(schema *types.Schema, data []byte) (*types.Batch, error) {
	bad := func(reason string) (*types.Batch, error) {
		return nil, fmt.Errorf("segment: decode batch: %s", reason)
	}
	if len(data) < 6 {
		return bad("payload too short")
	}
	rows := int(binary.LittleEndian.Uint32(data[0:4]))
	ncols := int(binary.LittleEndian.Uint16(data[4:6]))
	if ncols != schema.Len() {
		return bad(fmt.Sprintf("%d columns, schema has %d", ncols, schema.Len()))
	}
	pos := 6
	b := types.NewBatch(schema)
	for c := 0; c < ncols; c++ {
		if pos+2 > len(data) {
			return bad("truncated column header")
		}
		typ := types.DataType(data[pos])
		hasNulls := data[pos+1] != 0
		pos += 2
		if typ != schema.Columns[c].Type {
			return bad(fmt.Sprintf("column %s is %v in payload, %v in schema",
				schema.Columns[c].Name, typ, schema.Columns[c].Type))
		}
		var nullWords []uint64
		if hasNulls {
			nw := (rows + 63) / 64
			if pos+8*nw > len(data) {
				return bad("truncated null words")
			}
			nullWords = make([]uint64, nw)
			for i := range nullWords {
				nullWords[i] = binary.LittleEndian.Uint64(data[pos+8*i:])
			}
			pos += 8 * nw
		}
		v := b.Vecs[c]
		switch typ {
		case types.Float:
			if pos+8*rows > len(data) {
				return bad("truncated FLOAT data")
			}
			v.Grow(rows)
			for i := 0; i < rows; i++ {
				v.Floats = append(v.Floats, math.Float64frombits(binary.LittleEndian.Uint64(data[pos+8*i:])))
			}
			pos += 8 * rows
		case types.Int:
			if pos+8*rows > len(data) {
				return bad("truncated INT data")
			}
			v.Grow(rows)
			for i := 0; i < rows; i++ {
				v.Ints = append(v.Ints, int64(binary.LittleEndian.Uint64(data[pos+8*i:])))
			}
			pos += 8 * rows
		case types.Bool:
			if pos+rows > len(data) {
				return bad("truncated BOOL data")
			}
			v.Grow(rows)
			for i := 0; i < rows; i++ {
				v.Bools = append(v.Bools, data[pos+i] != 0)
			}
			pos += rows
		case types.String:
			if pos+4*(rows+1) > len(data) {
				return bad("truncated VARCHAR offsets")
			}
			offs := make([]uint32, rows+1)
			for i := range offs {
				offs[i] = binary.LittleEndian.Uint32(data[pos+4*i:])
			}
			pos += 4 * (rows + 1)
			blobLen := int(offs[rows])
			if pos+blobLen > len(data) {
				return bad("truncated VARCHAR blob")
			}
			blob := data[pos : pos+blobLen]
			v.Grow(rows)
			for i := 0; i < rows; i++ {
				if offs[i] > offs[i+1] || int(offs[i+1]) > blobLen {
					return bad("VARCHAR offsets out of order")
				}
				v.Strings = append(v.Strings, string(blob[offs[i]:offs[i+1]]))
			}
			pos += blobLen
		default:
			return bad(fmt.Sprintf("unsupported column type %v", typ))
		}
		for i := 0; i < rows; i++ {
			if nullWords != nil && nullWords[i>>6]&(1<<(uint(i)&63)) != 0 {
				v.SetNull(i)
			}
		}
	}
	if pos != len(data) {
		return bad("trailing bytes")
	}
	return b, nil
}
