// Package rescache is a byte-budgeted LRU result cache with per-key
// singleflight, shared by the engine (materialized batches) and the
// cluster router (serialized NDJSON responses).
//
// Invalidation is validation-at-lookup rather than fingerprint-in-key:
// the producer cannot know what an entry depends on (which tables a
// plan reads, which catalog version it compiled against) until after it
// has compiled — so the entry carries its dependencies and the caller
// supplies a validity predicate at lookup. An entry that fails the
// predicate is dropped and counted as an invalidation, not a miss of
// unknown cause; stale entries therefore cost one lookup, never one
// stale answer.
//
// Singleflight makes N concurrent identical misses cost one execution:
// the first caller becomes the flight leader and executes; the rest
// block on the flight and re-check the cache when the leader finishes.
// A leader that fails, or abandons an oversized result mid-stream,
// releases its waiters to execute for themselves — collapse is an
// optimization, never a correctness dependency.
package rescache

import (
	"context"
	"sync"
)

// Stats is the cache's counter snapshot, shaped for JSON stats
// endpoints.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped for capacity (LRU);
	// Invalidations counts entries dropped because their validity
	// predicate failed (the data or catalog moved underneath them).
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	// Abandoned counts results that outgrew the per-entry cap while
	// being captured and were dropped mid-stream.
	Abandoned uint64 `json:"abandoned"`
	// Collapsed counts queries served by waiting on another caller's
	// in-flight execution instead of executing themselves.
	Collapsed uint64 `json:"singleflight_collapsed"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	// EntryCapBytes is the per-entry size cap; results above it are
	// never cached.
	EntryCapBytes int64 `json:"entry_cap_bytes"`
	Entries       int   `json:"entries"`
}

// Cache is a byte-budgeted LRU keyed by string, storing values of type
// V with caller-declared sizes. All methods are safe for concurrent
// use.
type Cache[V any] struct {
	mu       sync.Mutex
	maxBytes int64
	entryCap int64
	bytes    int64
	entries  map[string]*entry[V]
	flights  map[string]*flight
	tick     uint64
	stats    Stats
}

type entry[V any] struct {
	v    V
	size int64
	used uint64
}

// flight is one in-progress execution for a key. done is closed exactly
// once — by Commit, Abandon or Cancel — releasing every waiter.
type flight struct {
	done chan struct{}
}

// New creates a cache holding at most maxBytes of values. entryCap
// bounds a single entry; <= 0 defaults to maxBytes/4, so one giant
// result can never monopolize the budget.
func New[V any](maxBytes, entryCap int64) *Cache[V] {
	if entryCap <= 0 {
		entryCap = maxBytes / 4
	}
	if entryCap < 1 {
		entryCap = 1
	}
	return &Cache[V]{
		maxBytes: maxBytes,
		entryCap: entryCap,
		entries:  make(map[string]*entry[V]),
		flights:  make(map[string]*flight),
	}
}

// EntryCap is the per-entry byte cap; producers use it to stop
// capturing a result the cache would refuse anyway.
func (c *Cache[V]) EntryCap() int64 { return c.entryCap }

// lookupLocked is the shared hit path: validate, refresh recency, count.
// Caller holds c.mu.
func (c *Cache[V]) lookupLocked(key string, valid func(V) bool) (V, bool) {
	var zero V
	e, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	if valid != nil && !valid(e.v) {
		delete(c.entries, key)
		c.bytes -= e.size
		c.stats.Invalidations++
		return zero, false
	}
	c.tick++
	e.used = c.tick
	return e.v, true
}

// Get is a plain lookup: hit if present and valid. It never joins or
// creates a flight — use Do for singleflight semantics.
func (c *Cache[V]) Get(key string, valid func(V) bool) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.lookupLocked(key, valid)
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return v, ok
}

// Put inserts a value directly (no flight), evicting LRU entries to
// fit. Values over the per-entry cap are silently refused — the caller
// already has the value, the cache just declines to keep it.
func (c *Cache[V]) Put(key string, v V, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, v, size)
}

// putLocked owns the oversize guard so every insertion path — Put and a
// flight's Commit — refuses entries over the per-entry cap identically.
// A replaced entry leaves the map the moment its size is subtracted:
// otherwise the eviction loop below could pick it as the LRU victim and
// subtract it a second time, driving c.bytes permanently negative.
func (c *Cache[V]) putLocked(key string, v V, size int64) {
	if size > c.entryCap || size > c.maxBytes {
		return
	}
	if old, ok := c.entries[key]; ok {
		delete(c.entries, key)
		c.bytes -= old.size
	}
	for c.bytes+size > c.maxBytes && len(c.entries) > 0 {
		var lruKey string
		var lruUsed uint64
		first := true
		for k, e := range c.entries {
			if first || e.used < lruUsed {
				lruKey, lruUsed, first = k, e.used, false
			}
		}
		c.bytes -= c.entries[lruKey].size
		delete(c.entries, lruKey)
		c.stats.Evictions++
	}
	if c.bytes+size > c.maxBytes {
		return
	}
	c.tick++
	c.entries[key] = &entry[V]{v: v, size: size, used: c.tick}
	c.bytes += size
}

// Flight is a leadership ticket for one key: the holder is executing
// the query every waiter on that key is blocked on. Exactly one of
// Commit, Abandon or Cancel must be called; all are idempotent after
// the first.
type Flight[V any] struct {
	c    *Cache[V]
	key  string
	fl   *flight
	once sync.Once
}

func (f *Flight[V]) finish(store bool, v V, size int64, abandoned bool) {
	if f == nil {
		return
	}
	f.once.Do(func() {
		f.c.mu.Lock()
		if store {
			f.c.putLocked(f.key, v, size)
		}
		if abandoned {
			f.c.stats.Abandoned++
		}
		delete(f.c.flights, f.key)
		f.c.mu.Unlock()
		close(f.fl.done)
	})
}

// Commit stores the finished result and wakes the waiters, who re-check
// the cache and hit. Oversized results are refused by the shared
// per-entry cap but the waiters are still released.
func (f *Flight[V]) Commit(v V, size int64) {
	f.finish(true, v, size, false)
}

// Abandon drops the flight because the result outgrew the per-entry
// cap; waiters wake and execute for themselves.
func (f *Flight[V]) Abandon() {
	var zero V
	f.finish(false, zero, 0, true)
}

// Cancel drops the flight on an error path (compile failed, context
// expired, caller never consumed the stream); waiters wake and execute
// for themselves. Not counted as an abandonment — nothing was dropped
// for size.
func (f *Flight[V]) Cancel() {
	var zero V
	f.finish(false, zero, 0, false)
}

// Do is the singleflight lookup. It returns, in order of preference:
//   - (v, true, nil, nil): a hit — cached directly or after waiting on
//     another caller's flight (counted in Stats.Collapsed).
//   - (zero, false, flight, nil): a miss with leadership — the caller
//     must execute and settle the flight via Commit/Abandon/Cancel.
//   - (zero, false, nil, err): ctx expired while waiting.
func (c *Cache[V]) Do(ctx context.Context, key string, valid func(V) bool) (V, bool, *Flight[V], error) {
	var zero V
	waited := false
	for {
		c.mu.Lock()
		if v, ok := c.lookupLocked(key, valid); ok {
			c.stats.Hits++
			if waited {
				c.stats.Collapsed++
			}
			c.mu.Unlock()
			return v, true, nil, nil
		}
		if fl, inflight := c.flights[key]; inflight {
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return zero, false, nil, ctx.Err()
			case <-fl.done:
			}
			waited = true
			continue
		}
		c.stats.Misses++
		fl := &flight{done: make(chan struct{})}
		c.flights[key] = fl
		c.mu.Unlock()
		return zero, false, &Flight[V]{c: c, key: key, fl: fl}, nil
	}
}

// Sweep drops every entry failing the validity predicate (counted as
// invalidations). Validation-at-lookup already keeps stale entries from
// ever being served; Sweep exists so their memory is reclaimed eagerly
// on an invalidating event (a catalog bump) instead of lingering until
// LRU pressure or a chance lookup touches them.
func (c *Cache[V]) Sweep(valid func(V) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if !valid(e.v) {
			delete(c.entries, k)
			c.bytes -= e.size
			c.stats.Invalidations++
		}
	}
}

// Clear drops every entry (counted as invalidations). In-progress
// flights are untouched — their results will simply land in the empty
// cache. The router calls this on replication-log appends.
func (c *Cache[V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Invalidations += uint64(len(c.entries))
	c.entries = make(map[string]*entry[V])
	c.bytes = 0
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Bytes = c.bytes
	s.MaxBytes = c.maxBytes
	s.EntryCapBytes = c.entryCap
	s.Entries = len(c.entries)
	return s
}
