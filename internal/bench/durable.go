package bench

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"raven"
	"raven/internal/types"
)

// DurableRecovery measures the durability subsystem end to end: crash
// recovery time as the table grows (WAL tail replay + segment attach,
// the cost of coming back after kill -9), and query latency over a
// table whose rows live almost entirely in sealed on-disk segments —
// only the live tail (at most segment-rows rows) is heap-resident, so
// the ORDER BY scan streams from files a table larger than RAM would.
// Every recovery point proves itself: the post-crash fingerprint must
// match the pre-crash one byte for byte, and the recorded note carries
// the "recovered=1" proof string ravenbench -check requires.
func DurableRecovery(cfg Config) (*Table, error) {
	t := &Table{
		ID:         "DurableRecovery",
		Title:      "durability: crash-recovery time vs table size; ORDER BY over sealed segments",
		PaperShape: "not in the paper (the prototype is in-memory); durability extends §3's storage layer",
	}

	// Phase 1: recovery time vs table size. Load, record a fingerprint,
	// abort without checkpoint (the WAL tail is all recovery has), then
	// time the reopen and require byte-identical answers.
	const segRows = 16384
	aggQ := `SELECT grp, COUNT(*) AS n FROM wal_bench GROUP BY grp ORDER BY grp`
	for _, n := range cfg.sizes([]int{20000, 80000, 200000}) {
		if err := func() (reterr error) {
			dir, err := os.MkdirTemp("", "raven-bench-wal-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			open := func() (*raven.DB, error) {
				return raven.Open(
					raven.WithDataDir(dir),
					raven.WithFsync("off"), // measure replay, not disk sync
					raven.WithSegmentRows(segRows),
					raven.WithParallelism(cfg.Parallelism),
					raven.WithMorselSize(cfg.MorselSize),
				)
			}
			db, err := open()
			if err != nil {
				return err
			}
			if err := loadDurableRows(db, "wal_bench", n); err != nil {
				return err
			}
			want, err := rowsFingerprint(db, aggQ)
			if err != nil {
				return err
			}
			preStats := db.Stats().Storage
			if err := db.Abort(); err != nil {
				return err
			}

			start := time.Now()
			db, err = open()
			if err != nil {
				return fmt.Errorf("recovery open (%d rows): %w", n, err)
			}
			recoverMS := float64(time.Since(start).Microseconds()) / 1000
			defer func() {
				if e := db.Close(); e != nil && reterr == nil {
					reterr = e
				}
			}()
			got, err := rowsFingerprint(db, aggQ)
			if err != nil {
				return fmt.Errorf("post-recovery query (%d rows): %w", n, err)
			}
			if got != want {
				return fmt.Errorf("recovery diverged at %d rows: post-crash result != pre-crash result", n)
			}
			st := db.Stats().Storage
			if st == nil {
				return fmt.Errorf("recovered engine reports no storage stats")
			}
			t.AddMillis("recovery time", FmtRows(n), recoverMS,
				fmt.Sprintf("recovered=1 at %s rows (fingerprint parity; %d segments, %d sealed rows, %d WAL records replayed, wal %.1f MB at crash)",
					FmtRows(n), st.Segments, st.SealedRows, st.WalRecords, float64(preStats.WalBytes)/(1<<20)))
			return nil
		}(); err != nil {
			return nil, err
		}
	}

	// Phase 2: ORDER BY over sealed segments. A checkpoint seals every
	// row to disk, so the scan under the sort streams from segment files
	// with nothing but scan vectors on the heap — the access pattern of
	// a table that exceeds RAM. An in-memory engine over identical data
	// is the correctness reference.
	if err := func() (reterr error) {
		n := 60000
		if cfg.Quick {
			n = 20000
		}
		const capRows = 4096
		dir, err := os.MkdirTemp("", "raven-bench-wal-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, err := raven.Open(
			raven.WithDataDir(dir),
			raven.WithFsync("off"),
			raven.WithSegmentRows(capRows),
			raven.WithParallelism(cfg.Parallelism),
			raven.WithMorselSize(cfg.MorselSize),
		)
		if err != nil {
			return err
		}
		defer func() {
			if e := db.Close(); e != nil && reterr == nil {
				reterr = e
			}
		}()
		if err := loadDurableRows(db, "wal_sort", n); err != nil {
			return err
		}
		// Seal the tail too: after this, zero rows are heap-resident.
		if err := db.Checkpoint(); err != nil {
			return err
		}
		st := db.Stats().Storage
		if st == nil || st.SealedRows < n {
			return fmt.Errorf("checkpoint left rows unsealed: %+v", st)
		}

		mem := raven.MustOpen(raven.WithParallelism(cfg.Parallelism), raven.WithMorselSize(cfg.MorselSize))
		if err := loadDurableRows(mem, "wal_sort", n); err != nil {
			return err
		}

		sortQ := `SELECT id, v FROM wal_sort WHERE grp < 8 ORDER BY v DESC, id LIMIT 500`
		want, err := rowsFingerprint(mem, sortQ)
		if err != nil {
			return err
		}
		var got string
		d, err := Time(cfg.Warm, cfg.Runs, func() error {
			got, err = rowsFingerprint(db, sortQ)
			return err
		})
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("sealed-segment ORDER BY diverged from the in-memory reference")
		}
		memD, err := Time(cfg.Warm, cfg.Runs, func() error {
			_, err := rowsFingerprint(mem, sortQ)
			return err
		})
		if err != nil {
			return err
		}
		t.Add("sealed segments", FmtRows(n), d,
			fmt.Sprintf("all %d rows in %d on-disk segments (tail cap %d rows); matches the in-memory reference byte for byte", n, st.Segments, capRows))
		t.Add("in-memory", FmtRows(n), memD, "reference engine, identical data")
		return nil
	}(); err != nil {
		return nil, err
	}
	return t, nil
}

// loadDurableRows creates table and appends n deterministic rows in
// engine-sized batches (one WAL record per batch on a durable engine).
func loadDurableRows(db *raven.DB, table string, n int) error {
	if err := db.Exec(fmt.Sprintf("CREATE TABLE %s (id INT, v FLOAT, grp INT)", table)); err != nil {
		return err
	}
	tb, err := db.Catalog().Table(table)
	if err != nil {
		return err
	}
	sch := tb.Schema()
	const chunk = 4096
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		b := types.NewBatch(sch)
		for i := lo; i < hi; i++ {
			// A multiplicative hash scrambles v so the ORDER BY has real
			// work; grp gives GROUP BY a stable small domain.
			v := float64((uint64(i)*2654435761)%100000) / 100
			if err := b.AppendRow(int64(i), v, int64(i%97)); err != nil {
				return err
			}
		}
		if err := tb.AppendBatch(b); err != nil {
			return err
		}
	}
	return nil
}

// rowsFingerprint drains a query into a deterministic string.
func rowsFingerprint(db *raven.DB, q string) (string, error) {
	rows, err := db.QueryContext(context.Background(), q)
	if err != nil {
		return "", err
	}
	defer rows.Close()
	cols := rows.Columns()
	vals := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	var sb strings.Builder
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return "", err
		}
		for i, v := range vals {
			if i > 0 {
				sb.WriteByte('\t')
			}
			fmt.Fprintf(&sb, "%v", v)
		}
		sb.WriteByte('\n')
	}
	if err := rows.Err(); err != nil {
		return "", err
	}
	return sb.String(), nil
}
