// Package plan defines the relational logical plan and the binder that
// lowers parsed SQL onto the catalog. The plan is the RA fragment of the
// paper's unified IR; ir.FromPlan wraps these nodes into unified-IR nodes
// so the cross optimizer can rewrite data and ML operators together.
package plan

import (
	"fmt"
	"strings"

	"raven/internal/expr"
	"raven/internal/storage"
	"raven/internal/types"
)

// Node is one logical operator.
type Node interface {
	// Schema is the output schema.
	Schema() *types.Schema
	// Children returns input plans (nil for leaves).
	Children() []Node
	// SetChild replaces the i-th child (used by rewrite rules).
	SetChild(i int, n Node)
	fmt.Stringer
}

// Scan reads a stored table, optionally projecting a subset of columns.
type Scan struct {
	Table *storage.Table
	// Cols restricts the scan to these columns; nil scans everything.
	// Column pruning (projection pushdown) narrows this.
	Cols   []string
	schema *types.Schema
}

// NewScan builds a full-width scan.
func NewScan(t *storage.Table) *Scan {
	return &Scan{Table: t, schema: t.Schema()}
}

// SetCols narrows the scan to the named columns.
func (s *Scan) SetCols(cols []string) error {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := s.Table.Schema().IndexOf(c)
		if j < 0 {
			return fmt.Errorf("plan: table %s has no column %q", s.Table.Name, c)
		}
		idx[i] = j
	}
	s.Cols = cols
	s.schema = s.Table.Schema().Project(idx)
	return nil
}

// Schema implements Node.
func (s *Scan) Schema() *types.Schema { return s.schema }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// SetChild implements Node.
func (s *Scan) SetChild(int, Node) { panic("plan: Scan has no children") }

func (s *Scan) String() string {
	if s.Cols != nil {
		return fmt.Sprintf("Scan(%s, cols=[%s])", s.Table.Name, strings.Join(s.Cols, ","))
	}
	return fmt.Sprintf("Scan(%s)", s.Table.Name)
}

// Filter keeps rows satisfying Pred.
type Filter struct {
	Child Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// SetChild implements Node.
func (f *Filter) SetChild(i int, n Node) { f.Child = n }

func (f *Filter) String() string { return fmt.Sprintf("Filter(%s)", f.Pred) }

// Project computes named expressions.
type Project struct {
	Child  Node
	Exprs  []expr.Expr
	Names  []string
	schema *types.Schema
}

// NewProject builds a projection, resolving output types against the child.
func NewProject(child Node, exprs []expr.Expr, names []string) (*Project, error) {
	cols := make([]types.Column, len(exprs))
	for i, e := range exprs {
		t, err := e.Type(child.Schema())
		if err != nil {
			return nil, err
		}
		cols[i] = types.Column{Name: names[i], Type: t}
	}
	return &Project{Child: child, Exprs: exprs, Names: names, schema: types.NewSchema(cols...)}, nil
}

// Schema implements Node.
func (p *Project) Schema() *types.Schema { return p.schema }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// SetChild implements Node.
func (p *Project) SetChild(i int, n Node) { p.Child = n }

func (p *Project) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = fmt.Sprintf("%s AS %s", e, p.Names[i])
	}
	return fmt.Sprintf("Project(%s)", strings.Join(parts, ", "))
}

// Join is an inner hash equi-join on LeftCol = RightCol. The output schema
// is left ++ right-minus-join-key (the duplicate key column is dropped).
type Join struct {
	Left, Right       Node
	LeftCol, RightCol string
	schema            *types.Schema
}

// NewJoin builds an equi-join, validating key columns.
func NewJoin(left, right Node, leftCol, rightCol string) (*Join, error) {
	if left.Schema().IndexOf(leftCol) < 0 {
		return nil, fmt.Errorf("plan: join key %q not in left schema %v", leftCol, left.Schema())
	}
	ri := right.Schema().IndexOf(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("plan: join key %q not in right schema %v", rightCol, right.Schema())
	}
	var cols []types.Column
	cols = append(cols, left.Schema().Columns...)
	for i, c := range right.Schema().Columns {
		if i == ri {
			continue
		}
		cols = append(cols, c)
	}
	return &Join{Left: left, Right: right, LeftCol: leftCol, RightCol: rightCol, schema: types.NewSchema(cols...)}, nil
}

// Schema implements Node.
func (j *Join) Schema() *types.Schema { return j.schema }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// SetChild implements Node.
func (j *Join) SetChild(i int, n Node) {
	if i == 0 {
		j.Left = n
	} else {
		j.Right = n
	}
}

// Rebuild recomputes the output schema after children changed (e.g. column
// pruning below the join).
func (j *Join) Rebuild() error {
	nj, err := NewJoin(j.Left, j.Right, j.LeftCol, j.RightCol)
	if err != nil {
		return err
	}
	j.schema = nj.schema
	return nil
}

func (j *Join) String() string { return fmt.Sprintf("Join(%s = %s)", j.LeftCol, j.RightCol) }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[AggFunc]string{AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX"}

// Mergeable reports whether partial results of f computed over disjoint
// row subsets combine losslessly into the full result — the property
// two-phase (per-worker partial + merge) parallel aggregation needs.
// COUNT and MIN/MAX merge trivially; SUM and AVG merge because the
// physical layer accumulates them exactly (order-invariant correctly
// rounded summation), so partials carry no rounding that depends on the
// split. A future non-decomposable aggregate (e.g. MEDIAN) would return
// false and fall back to the serial operator.
func (f AggFunc) Mergeable() bool {
	switch f {
	case AggCount, AggSum, AggAvg, AggMin, AggMax:
		return true
	default:
		return false
	}
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Func AggFunc
	// Arg is nil for COUNT(*).
	Arg  expr.Expr
	Name string
}

// Aggregate groups by columns and computes aggregates.
type Aggregate struct {
	Child   Node
	GroupBy []string
	Aggs    []AggSpec
	schema  *types.Schema
}

// NewAggregate builds a grouped aggregation.
func NewAggregate(child Node, groupBy []string, aggs []AggSpec) (*Aggregate, error) {
	var cols []types.Column
	cs := child.Schema()
	for _, g := range groupBy {
		i := cs.IndexOf(g)
		if i < 0 {
			return nil, fmt.Errorf("plan: GROUP BY column %q not in %v", g, cs)
		}
		cols = append(cols, cs.Columns[i])
	}
	for _, a := range aggs {
		t := types.Float
		if a.Func == AggCount {
			t = types.Int
		} else if a.Arg != nil {
			at, err := a.Arg.Type(cs)
			if err != nil {
				return nil, err
			}
			if a.Func == AggMin || a.Func == AggMax {
				t = at
			}
		}
		cols = append(cols, types.Column{Name: a.Name, Type: t})
	}
	return &Aggregate{Child: child, GroupBy: groupBy, Aggs: aggs, schema: types.NewSchema(cols...)}, nil
}

// Parallelizable reports whether every aggregate of this node is
// mergeable, i.e. whether the physical layer may run it as per-worker
// partial tables plus a merge stage instead of one serial hash table.
func (a *Aggregate) Parallelizable() bool {
	for _, s := range a.Aggs {
		if !s.Func.Mergeable() {
			return false
		}
	}
	return true
}

// Schema implements Node.
func (a *Aggregate) Schema() *types.Schema { return a.schema }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// SetChild implements Node.
func (a *Aggregate) SetChild(i int, n Node) { a.Child = n }

func (a *Aggregate) String() string {
	parts := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		arg := "*"
		if s.Arg != nil {
			arg = s.Arg.String()
		}
		parts[i] = fmt.Sprintf("%s(%s)", aggNames[s.Func], arg)
	}
	return fmt.Sprintf("Aggregate(by=[%s], %s)", strings.Join(a.GroupBy, ","), strings.Join(parts, ", "))
}

// Sort orders rows by the given keys.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// SortKey is one ordering column.
type SortKey struct {
	Col  string
	Desc bool
}

// Schema implements Node.
func (s *Sort) Schema() *types.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// SetChild implements Node.
func (s *Sort) SetChild(i int, n Node) { s.Child = n }

func (s *Sort) String() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Col
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return fmt.Sprintf("Sort(%s)", strings.Join(parts, ", "))
}

// Limit keeps the first N rows.
type Limit struct {
	Child Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() *types.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// SetChild implements Node.
func (l *Limit) SetChild(i int, n Node) { l.Child = n }

func (l *Limit) String() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Distinct removes duplicate rows.
type Distinct struct {
	Child Node
}

// Schema implements Node.
func (d *Distinct) Schema() *types.Schema { return d.Child.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Child} }

// SetChild implements Node.
func (d *Distinct) SetChild(i int, n Node) { d.Child = n }

func (d *Distinct) String() string { return "Distinct" }

// Predict invokes a stored model over its input rows, appending the
// declared output columns — the logical form of SQL Server's PREDICT table
// function (paper §5).
type Predict struct {
	Child Node
	// ModelName keys the model store.
	ModelName string
	// OutputCols are the declared prediction columns.
	OutputCols []types.Column
	schema     *types.Schema
}

// NewPredict builds a prediction node.
func NewPredict(child Node, modelName string, outputCols []types.Column) *Predict {
	return &Predict{
		Child:      child,
		ModelName:  modelName,
		OutputCols: outputCols,
		schema:     child.Schema().Concat(types.NewSchema(outputCols...)),
	}
}

// Schema implements Node.
func (p *Predict) Schema() *types.Schema { return p.schema }

// Children implements Node.
func (p *Predict) Children() []Node { return []Node{p.Child} }

// SetChild implements Node.
func (p *Predict) SetChild(i int, n Node) {
	p.Child = n
	p.schema = n.Schema().Concat(types.NewSchema(p.OutputCols...))
}

func (p *Predict) String() string { return fmt.Sprintf("Predict(model=%s)", p.ModelName) }

// Explain renders the plan tree indented, one node per line.
func Explain(n Node) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// Input is a placeholder leaf standing for rows supplied by an enclosing
// context — the splice point the unified IR uses when a relational subplan
// sits above ML operators (its rows come from the model stage below).
type Input struct {
	Sch *types.Schema
}

// Schema implements Node.
func (in *Input) Schema() *types.Schema { return in.Sch }

// Children implements Node.
func (in *Input) Children() []Node { return nil }

// SetChild implements Node.
func (in *Input) SetChild(int, Node) { panic("plan: Input has no children") }

func (in *Input) String() string { return "Input" }
