// Package server is ravenserved's HTTP/JSON wire front end over the
// raven serving API. It exposes the engine the way the paper argues
// inference should be consumed — as a served database, not a batch
// script runner:
//
//	POST /query            ad-hoc SQL (DDL/INSERT/SELECT/PREDICT), rows
//	                       streamed as NDJSON from Rows.Next
//	POST /prepare          compile a statement server-side, returns {id}
//	POST /stmt/{id}/query  execute a prepared statement with @var params
//	                       (warm path: no parse/bind/optimize per call)
//	DELETE /stmt/{id}      forget a prepared statement
//	GET  /stats            consolidated engine + server statistics
//	GET  /healthz          liveness; 503 once draining
//
// Requests are multi-tenant: an X-Raven-Tenant header (or a "tenant"
// body field) attributes each request's admission to a tenant, and
// X-Raven-Priority (or "priority") picks its scheduling class. Prepared
// statements remember the tag they were registered under; per-request
// tags override it. Tenants declared with quotas (ravenserved -tenant)
// are bounded individually while other tenants keep running: a tenant
// whose quota pressure fills the queue gets per-tenant 429s with a
// Retry-After hint, and a tenant shut off with a zero quota gets 429s
// without one (the condition is permanent until reconfiguration, so
// retrying is pointless). GET /stats nests per-tenant counters under
// the scheduler section.
//
// Admission-control failures map to distinct status codes so clients can
// tell load shedding (429, retry with backoff) from queue timeouts (504)
// from shutdown (503). Streaming responses send rows as they arrive; an
// error after the first row is delivered as a final {"error": ...}
// trailer line, since the status line is already on the wire.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"raven"
	"raven/internal/ml"
	"raven/internal/server/reqopt"
	"raven/internal/server/stmtreg"
)

// Options tunes the server.
type Options struct {
	// DefaultTimeout bounds queries that do not carry their own
	// timeout_ms; 0 means unbounded.
	DefaultTimeout time.Duration
	// MaxStatements bounds the server-side prepared-statement registry
	// (0 = default 1024). POST /prepare past the limit fails with 429.
	// Ignored when Statements is supplied.
	MaxStatements int
	// Statements, when non-nil, is the prepared-statement registry to
	// use — ravenserved passes one registry to both the HTTP and pg
	// front ends so prepared statements share one capacity budget and
	// one id space (a pg-prepared SELECT is executable via
	// POST /stmt/{id}/query and vice versa is droppable via DELETE).
	// Nil gets a private registry bounded by MaxStatements.
	Statements *stmtreg.Registry
	// DrainGrace is the lame-duck window between advertising draining on
	// /healthz and refusing queries: Shutdown flips healthz to 503 first,
	// waits DrainGrace (bounded by the shutdown context), and only then
	// stops admitting. A fronting router that probes /healthz can stop
	// routing inside the window, so graceful replica drains cut off zero
	// in-flight (or about-to-arrive) queries. 0 keeps the old behaviour:
	// healthz and query paths flip together.
	DrainGrace time.Duration
}

// Server serves one raven.DB over HTTP. Create with New, attach with
// Handler or run with Serve, stop with Shutdown (graceful drain).
type Server struct {
	db   *raven.DB
	opts Options
	mux  *http.ServeMux
	http *http.Server

	// reg is the front-end-agnostic prepared-statement registry
	// (possibly shared with pgwire; see Options.Statements). HTTP
	// statements register under owner "" — they outlive any one
	// connection, unlike pg statements which die with their session.
	reg *stmtreg.Registry

	// pgStats, when set (SetPgwireStats), contributes the pg front
	// end's section to GET /stats.
	pgStats func() any

	// lameduck advertises draining on /healthz while query paths still
	// accept (the probe-visible first phase of a graceful drain);
	// draining is the second phase, where query paths refuse with 503.
	lameduck atomic.Bool
	draining atomic.Bool
	queries  atomic.Uint64 // query executions started (ad-hoc + prepared)
}

// New builds a Server over db.
func New(db *raven.DB, opts Options) *Server {
	reg := opts.Statements
	if reg == nil {
		reg = stmtreg.New(opts.MaxStatements)
	}
	s := &Server{db: db, opts: opts, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /prepare", s.handlePrepare)
	mux.HandleFunc("POST /stmt/{id}/query", s.handleStmtQuery)
	mux.HandleFunc("DELETE /stmt/{id}", s.handleStmtDelete)
	mux.HandleFunc("POST /model", s.handleStoreModel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	// Built eagerly so a Shutdown racing a just-started Serve goroutine
	// always finds the server to close (a lazily built one could be
	// missed, leaving the listener accepting after Shutdown returned).
	s.http = &http.Server{Handler: mux}
	return s
}

// Handler returns the route table (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// SetPgwireStats installs the pg front end's stats snapshot as the
// "pgwire" section of GET /stats. A hook rather than an import so this
// package stays protocol-agnostic (pgwire imports server's siblings,
// never the reverse); ravenserved wires it. Call before Serve.
func (s *Server) SetPgwireStats(f func() any) { s.pgStats = f }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http (and
// immediately, if Shutdown already ran).
func (s *Server) Serve(l net.Listener) error {
	return s.http.Serve(l)
}

// BeginDrain enters the lame-duck phase: /healthz starts reporting
// draining (503) while the query paths still accept work. Health-probing
// routers notice and stop routing here, before anything is refused —
// the first half of a zero-dropped-queries drain. Idempotent; Shutdown
// calls it implicitly.
func (s *Server) BeginDrain() { s.lameduck.Store(true) }

// Draining reports whether the server has begun draining (either phase):
// lame-duck (healthz advertises, queries still run) or full drain.
func (s *Server) Draining() bool { return s.lameduck.Load() || s.draining.Load() }

// Shutdown drains gracefully in two phases. First the lame-duck window:
// healthz flips to 503 (see BeginDrain) while queries still run, for
// Options.DrainGrace (bounded by ctx) — long enough for a fronting
// router's next health probe to stop routing here. Then the real drain:
// stop admitting new queries (the engine scheduler refuses admissions),
// wait for in-flight queries to finish or ctx to expire, and close the
// HTTP listener (net/http itself waits for active handlers). Safe
// without Serve, and idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if g := s.opts.DrainGrace; g > 0 && !s.draining.Load() {
		t := time.NewTimer(g)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	s.draining.Store(true)
	drainErr := s.db.Drain(ctx)
	if err := s.http.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// Abort closes the listener and every active connection immediately —
// no drain, responses cut mid-stream. It exists so crash-recovery tests
// can take a replica down the way a crash would; production shutdown is
// Shutdown.
func (s *Server) Abort() error {
	s.draining.Store(true)
	return s.http.Close()
}

// ---- wire types ----

// QueryRequest is the body of POST /query and POST /stmt/{id}/query
// (which ignores SQL and Options — they were fixed at prepare time).
type QueryRequest struct {
	SQL string `json:"sql"`
	// Params bind @var placeholders (prepared path only).
	Params map[string]string `json:"params,omitempty"`
	// TimeoutMillis is this query's deadline; 0 uses the server default.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Options tunes optimization/execution per request.
	Options *QueryOptions `json:"options,omitempty"`
	// Tenant attributes the request's admission to a tenant (quotas and
	// per-tenant stats). The X-Raven-Tenant header overrides it, so a
	// trusted proxy can tag untrusted clients; on the prepared path an
	// empty tenant falls back to the statement's prepare-time tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders waiting admissions (higher first). The
	// X-Raven-Priority header overrides it. A pointer so presence is
	// visible: on the prepared path an absent priority falls back to the
	// statement's registered one, while an explicit 0 (body or header)
	// demotes it.
	Priority *int `json:"priority,omitempty"`
	// NoCache bypasses the engine's result cache for this request: no
	// lookup, no population. Reads that must observe their own side
	// effects mid-script, and freshness probes, set it.
	NoCache bool `json:"no_cache,omitempty"`
}

// QueryOptions is the wire subset of raven.QueryOptions.
type QueryOptions struct {
	// CrossOptimize defaults to true when omitted.
	CrossOptimize *bool `json:"cross_optimize,omitempty"`
	// Parallelism requests a DOP; the server clamps it to 8×GOMAXPROCS
	// (on top of any engine slot budget), because goroutine fan-out is
	// allocated per request and wire clients are untrusted.
	Parallelism int `json:"parallelism,omitempty"`
	MorselSize  int `json:"morsel_size,omitempty"`
	// ParallelThresholdRows gates parallel execution by scan size
	// (1 forces parallelism on small tables).
	ParallelThresholdRows int  `json:"parallel_threshold_rows,omitempty"`
	DisablePlanCache      bool `json:"disable_plan_cache,omitempty"`
}

func (o *QueryOptions) engine() raven.QueryOptions {
	opts := raven.DefaultQueryOptions()
	if o == nil {
		return opts
	}
	if o.CrossOptimize != nil {
		opts.CrossOptimize = *o.CrossOptimize
	}
	par := o.Parallelism
	if par < 0 {
		par = 0
	}
	if cap := reqopt.MaxWireDOP(); par > cap {
		par = cap
	}
	opts.Parallelism = par
	if o.MorselSize > 0 {
		opts.MorselSize = o.MorselSize
	}
	if o.ParallelThresholdRows > 0 {
		opts.ParallelThresholdRows = o.ParallelThresholdRows
	}
	opts.DisablePlanCache = o.DisablePlanCache
	return opts
}

// IntPtr boxes an int for optional wire fields (QueryRequest.Priority).
func IntPtr(v int) *int { return &v }

// PrepareResponse is the body of a successful POST /prepare.
type PrepareResponse struct {
	ID     string   `json:"id"`
	Params []string `json:"params,omitempty"`
}

// ExecResponse acknowledges a side-effect-only /query script.
type ExecResponse struct {
	OK bool `json:"ok"`
}

// Trailer is the last NDJSON line of a successful row stream.
type Trailer struct {
	Rows      int      `json:"rows"`
	CompileMS float64  `json:"compile_ms"`
	ExecMS    float64  `json:"exec_ms"`
	Rules     []string `json:"rules,omitempty"`
}

// ErrorLine is an error surfaced mid-stream (or the whole body of a
// pre-stream failure, where it travels with a real error status code).
type ErrorLine struct {
	Error string `json:"error"`
}

// Health is the body of GET /healthz: liveness plus the cheap load and
// version signals a cluster router's probe loop needs without paying for
// a full /stats snapshot. Status "ok" travels with 200; "draining" with
// 503 from the moment a graceful drain begins (lame-duck phase
// included, so probes stop routing before queries are refused).
type Health struct {
	Status string `json:"status"`
	// CatalogVersion lets a router detect replica divergence (missed DDL,
	// lost state after a restart) from the probe alone.
	CatalogVersion uint64 `json:"catalog_version"`
	// Queue and Active are the admission scheduler's live gauges (zero
	// without a scheduler); routers spill traffic away from replicas
	// whose queue is deep.
	Queue  int `json:"queue"`
	Active int `json:"active"`
}

// ModelRequest is the body of POST /model: a serialized pipeline stored
// under Name (the wire form of DB.StoreModel, so models replicate over
// the same protocol as DDL). Data is the gob-encoded pipeline
// (base64 in JSON).
type ModelRequest struct {
	Name   string `json:"name"`
	Data   []byte `json:"data"`
	Tenant string `json:"tenant,omitempty"`
}

// ServerStats is the server-level half of GET /stats.
type ServerStats struct {
	Statements int    `json:"statements"`
	Prepares   uint64 `json:"prepares"`
	Queries    uint64 `json:"queries"`
	Draining   bool   `json:"draining"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Server ServerStats `json:"server"`
	Engine raven.Stats `json:"engine"`
	// Pgwire is the pg front end's section (absent when ravenserved runs
	// without -pg-addr). Raw so this package needs no pgwire types.
	Pgwire json.RawMessage `json:"pgwire,omitempty"`
}

// ---- handlers ----

// statusFor maps an engine error to its HTTP status through the shared
// front-end error table (reqopt.Classify) — the same table pgwire maps
// to SQLSTATEs, so the two protocols cannot classify one error
// differently.
func statusFor(err error) int { return reqopt.HTTPStatus(err) }

func writeError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	cl := reqopt.Classify(err)
	// Retry-After invites the client back: right for transient pressure
	// (queue full, draining), wrong for a tenant administratively shut
	// off with a zero quota — that 429 stays until the server is
	// reconfigured, so hinting a 1s retry would just generate permanent
	// polling load. The shared table carries the distinction.
	if cl.RetryAfter {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(cl.HTTPStatus)
	json.NewEncoder(w).Encode(ErrorLine{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		// An absent body is a valid empty request (e.g. executing a
		// parameter-less prepared statement without sending "{}").
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// maxWirePriority is the wire clamp (see reqopt.Clamp: the scheduler's
// aging guard makes unbounded priorities a parking-ahead attack).
const maxWirePriority = reqopt.MaxWirePriority

// bodyOptions lifts the JSON body's per-request fields into their
// reqopt layer. The body fields (tenant/priority/no_cache/timeout_ms/
// options.parallelism) are aliases of the X-Raven-* headers — one
// surface, two carriers; headers win (a trusted fronting proxy tags
// clients that cannot be trusted to tag themselves).
func bodyOptions(req *QueryRequest) reqopt.Options {
	o := reqopt.Options{
		Tenant:   req.Tenant,
		Priority: req.Priority,
		NoCache:  req.NoCache,
	}
	if req.TimeoutMillis > 0 {
		o.Timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if req.Options != nil && req.Options.Parallelism > 0 {
		o.DOP = req.Options.Parallelism
	}
	return o
}

// requestOptions resolves a request's effective options across the
// HTTP layers — headers > body > per-statement (stmt, may be zero) >
// server default — and clamps the untrusted knobs.
func (s *Server) requestOptions(r *http.Request, req *QueryRequest, stmt reqopt.Options) (reqopt.Options, error) {
	hdr, err := reqopt.FromHeaders(r.Header)
	if err != nil {
		return reqopt.Options{}, err
	}
	return reqopt.Resolve(
		hdr,
		bodyOptions(req),
		stmt,
		reqopt.Options{Timeout: s.opts.DefaultTimeout},
	).Clamp(), nil
}

// requestTag is the legacy view of the resolved admission identity
// (kept for tests pinning the header/body precedence and clamps).
func requestTag(r *http.Request, req *QueryRequest) (tenant string, priority int, prioritySet bool, err error) {
	hdr, err := reqopt.FromHeaders(r.Header)
	if err != nil {
		return "", 0, false, err
	}
	ro := reqopt.Resolve(hdr, bodyOptions(req)).Clamp()
	return ro.Tenant, ro.PriorityOr(0), ro.Priority != nil, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, raven.ErrDraining)
		return
	}
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, errors.New("missing sql"))
		return
	}
	ro, err := s.requestOptions(r, &req, reqopt.Options{})
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := ro.WithTimeout(r.Context())
	defer cancel()
	opts := req.Options.engine()
	ro.Apply(&opts)

	// A script with no SELECT is pure DDL/DML: run it through ExecContext
	// (deadline and client disconnect observed between statements; the
	// engine runs it under a cost-1 admission slot billed to the request's
	// tenant — the context tag is how option-less ExecContext gets it —
	// so DDL bursts do not bypass the scheduler or their quota). A
	// param-less script mixing DDL and a SELECT goes through Query, which
	// executes the side effects then streams the SELECT; with params the
	// script must be DECLAREs + one SELECT (the prepare surface compiles
	// it and must not mutate the database).
	if !scriptMayHaveSelect(req.SQL) {
		if err := s.db.ExecContext(ro.Context(ctx), req.SQL); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, ExecResponse{OK: true})
		return
	}

	s.queries.Add(1)
	var rows *raven.Rows
	if len(req.Params) > 0 {
		// Parameterized ad-hoc query: the prepare-surface compile (typed
		// @var binding) runs inside admission, so a burst of distinct
		// parameterized texts cannot oversubscribe the CPU on compiles.
		// The plan cache makes the repeat case as cheap as a server-side
		// prepared statement.
		rows, err = s.db.QueryContextParams(ctx, req.SQL, opts, paramList(req.Params)...)
		if err != nil && strings.Contains(err.Error(), "must not mutate") {
			err = errors.New("parameterized query scripts must contain only DECLAREs and a single SELECT; run DDL/INSERT in a separate call without params")
		}
	} else {
		rows, err = s.db.QueryContextWithOptions(ctx, req.SQL, opts)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	streamRows(w, rows)
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, raven.ErrDraining)
		return
	}
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, errors.New("missing sql"))
		return
	}
	// Refuse before compiling: a full registry must not cost a parse/
	// bind/cross-optimize per rejected request. (Re-checked at insert —
	// concurrent prepares racing past this gate can each compile, but
	// the registry never exceeds the cap.)
	if s.reg.Full() {
		writeStmtLimit(w)
		return
	}
	// PrepareContext runs the compile — the CPU the scheduler exists to
	// protect — under a cost-1 admission slot billed to the registering
	// tenant; /prepare is reachable by the same untrusted burst as
	// /query. The tag is also remembered on the registry entry
	// (per-statement tenant registration), so executions inherit it by
	// default.
	ro, err := s.requestOptions(r, &req, reqopt.Options{})
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := ro.WithTimeout(r.Context())
	defer cancel()
	opts := req.Options.engine()
	ro.Apply(&opts)
	st, err := s.db.PrepareContextWithOptions(ctx, req.SQL, opts)
	if err != nil {
		writeError(w, err)
		return
	}
	id, err := s.reg.Register("", &stmtreg.Entry{
		Stmt: st,
		Opts: reqopt.Options{Tenant: ro.Tenant, Priority: ro.Priority},
	})
	if err != nil {
		writeStmtLimit(w)
		return
	}
	writeJSON(w, PrepareResponse{ID: id, Params: st.Params()})
}

func writeStmtLimit(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(ErrorLine{Error: "prepared-statement limit reached; DELETE unused statements"})
}

func (s *Server) handleStmtQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, raven.ErrDraining)
		return
	}
	e, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err) // 404 via the shared error table
		return
	}
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	// Per-execution options: headers > body > the statement's registered
	// layer. Presence, not zeroness, decides the priority override
	// (Priority is a pointer through every layer), so an explicit 0
	// demotes a statement registered at a higher priority. The context
	// tag wins inside the engine over the Stmt's prepare-time options,
	// so overrides actually take effect on the warm path; a Stmt's
	// options were fixed at prepare time, so no_cache travels by context
	// too.
	ro, err := s.requestOptions(r, &req, e.Opts)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := ro.WithTimeout(r.Context())
	defer cancel()
	s.queries.Add(1)
	rows, err := e.Stmt.QueryContext(ro.Context(ctx), paramList(req.Params)...)
	if err != nil {
		writeError(w, err)
		return
	}
	streamRows(w, rows)
}

func (s *Server) handleStmtDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Remove(r.PathValue("id")); err != nil {
		writeError(w, err) // 404 via the shared error table
		return
	}
	writeJSON(w, ExecResponse{OK: true})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		Server: ServerStats{
			Statements: s.reg.Len(),
			Prepares:   s.reg.Prepares(),
			Queries:    s.queries.Load(),
			Draining:   s.draining.Load(),
		},
		Engine: s.db.Stats(),
	}
	if s.pgStats != nil {
		if b, err := json.Marshal(s.pgStats()); err == nil {
			resp.Pgwire = b
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	load := s.db.SchedulerLoad()
	h := Health{
		Status:         "ok",
		CatalogVersion: s.db.CatalogVersion(),
		Queue:          load.Waiting,
		Active:         load.Active,
	}
	// Lame-duck counts: probes must see draining while queries still run,
	// so routers stop routing before anything is refused.
	if s.Draining() {
		h.Status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

// handleStoreModel is the wire form of DB.StoreModel: it validates the
// serialized pipeline and stores it under the given name, bumping the
// catalog version (which invalidates stale plans and sessions exactly
// like the embedded API). Routers use it to replicate models to every
// replica alongside DDL. The store runs under a cost-1 admission slot
// billed to the request's tenant — deserializing and validating a model
// is front-half CPU like any compile.
func (s *Server) handleStoreModel(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, raven.ErrDraining)
		return
	}
	var req ModelRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Name == "" || len(req.Data) == 0 {
		writeError(w, errors.New("missing model name or data"))
		return
	}
	tenant := req.Tenant
	if h := r.Header.Get("X-Raven-Tenant"); h != "" {
		tenant = h
	}
	p, err := ml.Unmarshal(req.Data)
	if err != nil {
		writeError(w, fmt.Errorf("bad model payload: %w", err))
		return
	}
	ctx, cancel := reqopt.Options{Timeout: s.opts.DefaultTimeout}.WithTimeout(r.Context())
	defer cancel()
	if err := s.db.StoreModelContext(raven.ContextWithTenant(ctx, tenant, 0), req.Name, p); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, ExecResponse{OK: true})
}

// ---- streaming ----

// streamRows writes the NDJSON stream: a header object, one array per
// row, and a trailer (or {"error": ...} if the stream broke mid-way).
// The first row is fetched before the status line commits, so a query
// that dies before producing anything (deadline mid-scan, bad cast)
// still gets a real error status; after the first row the status is on
// the wire and errors travel as a trailer line. Rows flush in batches so
// clients see results while the scan runs.
func streamRows(w http.ResponseWriter, rows *raven.Rows) {
	defer rows.Close()
	ok := rows.Next()
	if !ok {
		if err := rows.Err(); err != nil {
			writeError(w, err)
			return
		}
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)

	sch := rows.Schema()
	typeNames := make([]string, sch.Len())
	for i, c := range sch.Columns {
		typeNames[i] = c.Type.String()
	}
	enc.Encode(struct {
		Columns []string `json:"columns"`
		Types   []string `json:"types"`
	}{rows.Columns(), typeNames})
	if flusher != nil {
		// The header (and soon the first rows) must reach the client
		// while the scan runs — that is the point of streaming. Early
		// rows flush individually for first-row latency; once the stream
		// is clearly a bulk transfer, flushing every 64 rows amortizes
		// the syscall.
		flusher.Flush()
	}

	vals := make([]any, sch.Len())
	ptrs := make([]any, sch.Len())
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	n := 0
	for ; ok; ok = rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			enc.Encode(ErrorLine{Error: err.Error()})
			return
		}
		if err := enc.Encode(vals); err != nil {
			// Client hung up; rows.Close (deferred) cancels the executor.
			return
		}
		n++
		if flusher != nil && (n <= 8 || n%64 == 0) {
			flusher.Flush()
		}
	}
	if err := rows.Err(); err != nil {
		enc.Encode(ErrorLine{Error: err.Error()})
		return
	}
	rows.Close()
	enc.Encode(Trailer{
		Rows:      n,
		CompileMS: float64(rows.CompileTime.Microseconds()) / 1000,
		ExecMS:    float64(rows.ExecTime().Microseconds()) / 1000,
		Rules:     rows.AppliedRules,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

func paramList(m map[string]string) []raven.Param {
	out := make([]raven.Param, 0, len(m))
	for k, v := range m {
		out = append(out, raven.P(k, v))
	}
	return out
}

// ScriptMayHaveSelect classifies scripts for other packages (the
// cluster router routes reads to one replica and replicates side-effect
// scripts to all). It is reqopt.MayHaveSelect — every front end
// classifies with the same scanner, so protocols never disagree.
func ScriptMayHaveSelect(script string) bool { return reqopt.MayHaveSelect(script) }

func scriptMayHaveSelect(script string) bool { return reqopt.MayHaveSelect(script) }
