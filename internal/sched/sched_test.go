package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// assertGoroutinesReturn polls the goroutine count back to the baseline;
// scheduler waits must never leave goroutines behind.
func assertGoroutinesReturn(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestImmediateAdmission(t *testing.T) {
	s := New(Options{MaxConcurrent: 2, QueueDepth: 4})
	rel1, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Active != 2 || st.Admitted != 2 || st.MaxActive != 2 {
		t.Fatalf("stats = %+v", st)
	}
	rel1()
	rel1() // idempotent
	rel2()
	if st := s.Stats(); st.Active != 0 || st.SlotsInUse != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestQueueFullRejection(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 1})
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single queue slot with a real waiter.
	admitted := make(chan func(), 1)
	go func() {
		r, err := s.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
		}
		admitted <- r
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })
	// Third query: at MaxConcurrent and the queue is full → immediate reject.
	if _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d", st.Rejected)
	}
	rel()
	(<-admitted)()
}

func TestQueueDepthZeroRejectsImmediately(t *testing.T) {
	s := New(Options{MaxConcurrent: 1})
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	rel()
}

func TestQueueTimeout(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4, QueueTimeout: 20 * time.Millisecond})
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("want ErrQueueTimeout, got %v", err)
	}
	if e := time.Since(start); e < 15*time.Millisecond {
		t.Fatalf("timed out too early: %v", e)
	}
	st := s.Stats()
	if st.TimedOut != 1 || st.Waiting != 0 || st.TotalWait <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	rel()
	// The scheduler still admits after a timed-out waiter left.
	rel2, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestQueuedCancellation(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4})
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, 1)
		errc <- err
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })
	cancel() // client disconnect while queued, before admission
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	st := s.Stats()
	if st.Cancelled != 1 || st.Waiting != 0 || st.Active != 1 {
		t.Fatalf("stats = %+v", st)
	}
	rel()
	assertGoroutinesReturn(t, base)
}

func TestPreCancelledNeverQueues(t *testing.T) {
	s := New(Options{MaxConcurrent: 4, QueueDepth: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Acquire(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if st := s.Stats(); st.Admitted != 0 || st.Cancelled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFIFOOrder(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 8})
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		// Stagger enqueues so queue order is deterministic.
		waitFor(t, func() bool { return s.Stats().Waiting == i })
		go func() {
			defer wg.Done()
			r, err := s.Acquire(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}()
		waitFor(t, func() bool { return s.Stats().Waiting == i+1 })
	}
	rel()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order = %v, want FIFO", order)
		}
	}
}

func TestWeightedSlots(t *testing.T) {
	// 4 slots: one cost-3 query and one cost-1 query coexist; a second
	// cost-3 must wait even though MaxConcurrent would allow it.
	s := New(Options{MaxConcurrent: 8, MaxSlots: 4, QueueDepth: 8})
	rel3, err := s.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rel1, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan func(), 1)
	go func() {
		r, err := s.Acquire(context.Background(), 3)
		if err != nil {
			t.Error(err)
		}
		done <- r
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })
	if st := s.Stats(); st.SlotsInUse != 4 || st.MaxSlotsInUse != 4 {
		t.Fatalf("slots = %+v", st)
	}
	rel3()
	// 1 slot in use; the cost-3 head now fits.
	r := <-done
	if st := s.Stats(); st.SlotsInUse != 4 {
		t.Fatalf("after re-admit: %+v", st)
	}
	r()
	rel1()
	if st := s.Stats(); st.SlotsInUse != 0 || st.MaxSlotsInUse != 4 {
		t.Fatalf("final: %+v", st)
	}
}

func TestCostClampedToBudget(t *testing.T) {
	s := New(Options{MaxConcurrent: 2, MaxSlots: 4, QueueDepth: 2})
	// Cost 64 clamps to 4: it runs (alone) instead of deadlocking.
	rel, err := s.Acquire(context.Background(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SlotsInUse != 4 {
		t.Fatalf("slots = %d, want clamp to 4", st.SlotsInUse)
	}
	rel()
}

func TestDrainFailsWaitersAndBlocksUntilIdle(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 4})
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	waiterErr := make(chan error, 1)
	go func() {
		_, err := s.Acquire(context.Background(), 1)
		waiterErr <- err
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	// The queued waiter fails with ErrDraining.
	if err := <-waiterErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("waiter: want ErrDraining, got %v", err)
	}
	// New admissions are refused while draining.
	if _, err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire during drain: want ErrDraining, got %v", err)
	}
	// Drain has not returned: one query is still in flight.
	select {
	case err := <-drainErr:
		t.Fatalf("drain returned with a query in flight: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	rel()
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := s.Stats()
	if !st.Draining || st.Drained != 2 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Idempotent: draining an idle drained scheduler returns immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertGoroutinesReturn(t, base)
}

func TestDrainTimeout(t *testing.T) {
	s := New(Options{MaxConcurrent: 1})
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	rel()
	// A later drain with the query gone succeeds.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentChurn hammers Acquire/release from many goroutines with
// mixed costs, cancellations and timeouts; under -race this is the
// scheduler's memory-safety check, and the invariant checks catch slot
// accounting drift.
func TestConcurrentChurn(t *testing.T) {
	s := New(Options{MaxConcurrent: 4, MaxSlots: 8, QueueDepth: 16, QueueTimeout: 5 * time.Millisecond})
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			if i%7 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*time.Millisecond)
				defer cancel()
			}
			rel, err := s.Acquire(ctx, 1+i%4)
			if err != nil {
				return
			}
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
			running.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Active != 0 || st.SlotsInUse != 0 || st.Waiting != 0 {
		t.Fatalf("not quiescent: %+v", st)
	}
	if peak.Load() > 4 || st.MaxActive > 4 {
		t.Fatalf("concurrency exceeded limit: peak=%d maxActive=%d", peak.Load(), st.MaxActive)
	}
	if st.MaxSlotsInUse > 8 {
		t.Fatalf("slot budget exceeded: %d", st.MaxSlotsInUse)
	}
	if st.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
