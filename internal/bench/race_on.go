//go:build race

package bench

// raceBuild reports that this binary was built with the race detector,
// whose instrumentation allocates on its own; the allocation-budget
// enforcement inside experiments is skipped so `make race` stays a pure
// correctness gate. (The test-only raceEnabled const serves the same
// purpose for timing assertions in _test files.)
const raceBuild = true
