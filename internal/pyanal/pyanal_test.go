package pyanal

import (
	"math/rand"
	"strings"
	"testing"

	"raven/internal/ml"
)

// runningExample is the paper's Fig 1 model script shape.
const runningExample = `
import pandas as pd
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier

data = pd.read_sql("SELECT * FROM patients", conn)
features = data[["pregnant", "age", "bp"]]
model_pipeline = Pipeline([
    ("scaler", StandardScaler()),
    ("clf", DecisionTreeClassifier(max_depth=4)),
])
model_pipeline.fit(features, labels)
`

func TestAnalyzeRunningExample(t *testing.T) {
	spec, err := Analyze(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Imports) == 0 {
		t.Error("imports not recorded")
	}
	if spec.Source != "SELECT * FROM patients" {
		t.Errorf("source = %q", spec.Source)
	}
	if len(spec.InputColumns) != 3 || spec.InputColumns[0] != "pregnant" {
		t.Errorf("input columns = %v", spec.InputColumns)
	}
	feats, model, err := spec.Steps()
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 1 || feats[0].Kind != "scaler" {
		t.Errorf("featurizers = %+v", feats)
	}
	if model.Kind != "tree" || model.Params["max_depth"] != 4 {
		t.Errorf("model = %+v", model)
	}
}

func TestAnalyzeBareModel(t *testing.T) {
	spec, err := Analyze(`
from sklearn.linear_model import LogisticRegression
m = LogisticRegression(C=0.5)
`)
	if err != nil {
		t.Fatal(err)
	}
	feats, model, err := spec.Steps()
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 0 || model.Kind != "logreg" || model.Params["C"] != 0.5 {
		t.Errorf("spec = %+v %+v", feats, model)
	}
}

func TestAnalyzeFeatureUnion(t *testing.T) {
	spec, err := Analyze(`
p = Pipeline([
  ("u", FeatureUnion([("s", StandardScaler()), ("s2", StandardScaler())])),
  ("clf", RandomForestClassifier(n_estimators=5)),
])
`)
	if err != nil {
		t.Fatal(err)
	}
	feats, model, err := spec.Steps()
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 1 || feats[0].Kind != "union" || len(feats[0].Steps) != 2 {
		t.Errorf("union = %+v", feats)
	}
	if model.Kind != "forest" || model.Params["n_estimators"] != 5 {
		t.Errorf("model = %+v", model)
	}
}

func TestAnalyzeUDFFallback(t *testing.T) {
	spec, err := Analyze(`
x = my_custom_featurizer(data)
m = DecisionTreeClassifier()
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.UDFs) != 1 || !strings.Contains(spec.UDFs[0], "my_custom_featurizer") {
		t.Errorf("UDFs = %v", spec.UDFs)
	}
}

func TestAnalyzeLoopsWarn(t *testing.T) {
	spec, err := Analyze(`
for i in range(10):
m = DecisionTreeClassifier()
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Warnings) == 0 {
		t.Error("loop should produce a warning")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(`x = "unterminated`); err == nil {
		t.Error("unterminated string should fail")
	}
	spec, err := Analyze(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := spec.Steps(); err == nil {
		t.Error("script without pipeline should fail Steps()")
	}
	// pipeline not ending in a model
	spec2, err := Analyze(`p = Pipeline([("s", StandardScaler())])`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := spec2.Steps(); err == nil {
		t.Error("model-less pipeline should fail")
	}
}

func TestFitFromScript(t *testing.T) {
	spec, err := Analyze(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	// training data: 3 features, label depends on feature 2
	rng := rand.New(rand.NewSource(1))
	n := 1500
	x := make([]float64, n*3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i*3] = float64(rng.Intn(2))
		x[i*3+1] = 20 + rng.Float64()*60
		x[i*3+2] = 90 + rng.Float64()*80
		if x[i*3+2] > 140 {
			y[i] = 1
		}
	}
	m := ml.Matrix{Data: x, Rows: n, Cols: 3}
	pipe, err := spec.Fit(m, y, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pipe.Steps) != 1 || pipe.Final.Kind() != "tree" {
		t.Fatalf("pipe = %+v", pipe)
	}
	if len(pipe.InputColumns) != 3 {
		t.Errorf("input cols = %v", pipe.InputColumns)
	}
	pred, err := pipe.Predict(m)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range pred {
		p := 0.0
		if pred[i] > 0.5 {
			p = 1
		}
		if p == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Errorf("fitted pipeline accuracy = %v", acc)
	}
}

func TestFitMLPAndForestFromScript(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 600
	x := make([]float64, n*2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i*2] = rng.NormFloat64()
		x[i*2+1] = rng.NormFloat64()
		if x[i*2] > 0 {
			y[i] = 1
		}
	}
	m := ml.Matrix{Data: x, Rows: n, Cols: 2}
	for _, script := range []string{
		`p = Pipeline([("clf", MLPClassifier(hidden_layer_sizes=8, max_iter=5))])`,
		`p = Pipeline([("clf", RandomForestClassifier(n_estimators=3, max_depth=4))])`,
		`p = Pipeline([("s", StandardScaler()), ("clf", LogisticRegression(C=10))])`,
	} {
		spec, err := Analyze(script)
		if err != nil {
			t.Fatalf("%s: %v", script, err)
		}
		pipe, err := spec.Fit(m, y, 3)
		if err != nil {
			t.Fatalf("%s: %v", script, err)
		}
		if _, err := pipe.Predict(m); err != nil {
			t.Fatalf("%s: %v", script, err)
		}
	}
}

func TestFitRejectsUDFStep(t *testing.T) {
	spec, err := Analyze(`p = Pipeline([("w", weird_step()), ("clf", DecisionTreeClassifier())])`)
	if err != nil {
		t.Fatal(err)
	}
	m := ml.Matrix{Data: []float64{1, 2}, Rows: 2, Cols: 1}
	if _, err := spec.Fit(m, []float64{0, 1}, 1); err == nil {
		t.Error("UDF step should fail Fit (external execution path)")
	}
}

func TestTripleQuotedAndComments(t *testing.T) {
	spec, err := Analyze(`
# a comment
doc = """multi
line"""
m = DecisionTreeClassifier()  # trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Pipeline == nil {
		t.Error("pipeline missed after triple-quoted string")
	}
}
