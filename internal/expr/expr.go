// Package expr implements typed, vectorized expression evaluation over
// columnar batches: column references, literals, arithmetic, comparisons,
// boolean connectives and CASE/WHEN. It also provides the analysis the
// optimizers need — conjunct extraction, column usage, constant folding,
// and predicate-to-interval derivation for predicate-based model pruning.
package expr

import (
	"fmt"
	"strconv"
	"strings"

	"raven/internal/types"
)

// Expr is a typed expression evaluable against a batch.
type Expr interface {
	// Eval computes one value per batch row.
	Eval(b *types.Batch) (*types.Vector, error)
	// Type resolves the result type against an input schema.
	Type(s *types.Schema) (types.DataType, error)
	fmt.Stringer
}

// Column references a named input column, optionally qualified ("d.age").
type Column struct {
	Name string

	// bound/ord cache the ordinal of Name in one specific schema,
	// resolved once at compile time by Bind so per-batch evaluation skips
	// the name lookup. Eval falls back to lookup when the batch carries a
	// different schema.
	bound *types.Schema
	ord   int
}

// Eval implements Expr.
func (c *Column) Eval(b *types.Batch) (*types.Vector, error) {
	if c.bound == b.Schema {
		return b.Vecs[c.ord], nil
	}
	v := b.Col(c.Name)
	if v == nil {
		// qualified name fallback: match on suffix after '.'
		if i := strings.LastIndexByte(c.Name, '.'); i >= 0 {
			v = b.Col(c.Name[i+1:])
		}
	}
	if v == nil {
		return nil, fmt.Errorf("expr: column %q not found in %v", c.Name, b.Schema)
	}
	return v, nil
}

// PutEvalResult recycles the result of evaluating e. Column results alias
// the input batch — possibly live far downstream — and are never
// recycled; results of every other node are expression-owned
// intermediates that can return to the vector pool once consumed.
func PutEvalResult(e Expr, v *types.Vector) {
	if _, isCol := e.(*Column); !isCol {
		types.PutVector(v)
	}
}

// Bind returns e with column ordinals resolved against schema s: batches
// carrying exactly this schema pointer then evaluate columns by ordinal
// instead of by name. Plans — and so their expression trees — are shared
// by concurrently compiling queries, so Bind never mutates its input:
// nodes on the path to a bound column are copied, every other subtree is
// shared with the original. Sliced and gathered batches keep their
// parent's schema pointer, so bindings survive them.
func Bind(e Expr, s *types.Schema) Expr {
	switch x := e.(type) {
	case *Column:
		i := s.IndexOf(x.Name)
		if i < 0 {
			if j := strings.LastIndexByte(x.Name, '.'); j >= 0 {
				i = s.IndexOf(x.Name[j+1:])
			}
		}
		if i < 0 || (x.bound == s && x.ord == i) {
			return x
		}
		return &Column{Name: x.Name, bound: s, ord: i}
	case *Binary:
		l, r := Bind(x.L, s), Bind(x.R, s)
		if l == x.L && r == x.R {
			return x
		}
		return &Binary{Op: x.Op, L: l, R: r}
	case *Not:
		if inner := Bind(x.E, s); inner != x.E {
			return &Not{E: inner}
		}
		return x
	case *Case:
		changed := false
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = When{Cond: Bind(w.Cond, s), Then: Bind(w.Then, s)}
			if whens[i] != w {
				changed = true
			}
		}
		var els Expr
		if x.Else != nil {
			els = Bind(x.Else, s)
			if els != x.Else {
				changed = true
			}
		}
		if !changed {
			return x
		}
		return &Case{Whens: whens, Else: els}
	default:
		return e
	}
}

// Type implements Expr.
func (c *Column) Type(s *types.Schema) (types.DataType, error) {
	i := s.IndexOf(c.Name)
	if i < 0 {
		if j := strings.LastIndexByte(c.Name, '.'); j >= 0 {
			i = s.IndexOf(c.Name[j+1:])
		}
	}
	if i < 0 {
		return types.Unknown, fmt.Errorf("expr: column %q not found in %v", c.Name, s)
	}
	return s.Columns[i].Type, nil
}

func (c *Column) String() string { return c.Name }

// BareName returns the unqualified column name.
func (c *Column) BareName() string {
	if i := strings.LastIndexByte(c.Name, '.'); i >= 0 {
		return c.Name[i+1:]
	}
	return c.Name
}

// Literal is a constant of a specific type.
type Literal struct {
	DT types.DataType
	F  float64
	I  int64
	B  bool
	S  string
}

// FloatLit builds a FLOAT literal.
func FloatLit(x float64) *Literal { return &Literal{DT: types.Float, F: x} }

// IntLit builds an INT literal.
func IntLit(x int64) *Literal { return &Literal{DT: types.Int, I: x} }

// BoolLit builds a BOOL literal.
func BoolLit(x bool) *Literal { return &Literal{DT: types.Bool, B: x} }

// StringLit builds a VARCHAR literal.
func StringLit(x string) *Literal { return &Literal{DT: types.String, S: x} }

// Eval implements Expr. Literals evaluate to a pooled broadcast vector —
// one physical row with the batch's logical length — that the kernels
// read with stride 0 instead of materializing a full column.
func (l *Literal) Eval(b *types.Batch) (*types.Vector, error) {
	n := b.Len()
	if l.DT != types.Float && l.DT != types.Int && l.DT != types.Bool && l.DT != types.String {
		return nil, fmt.Errorf("expr: literal of unknown type")
	}
	v := types.GetVector(l.DT, 1)
	switch l.DT {
	case types.Float:
		v.Floats[0] = l.F
	case types.Int:
		v.Ints[0] = l.I
	case types.Bool:
		v.Bools[0] = l.B
	case types.String:
		v.Strings[0] = l.S
	}
	v.MarkConst(n)
	return v, nil
}

// Type implements Expr.
func (l *Literal) Type(*types.Schema) (types.DataType, error) { return l.DT, nil }

func (l *Literal) String() string {
	switch l.DT {
	case types.Float:
		return strconv.FormatFloat(l.F, 'g', -1, 64)
	case types.Int:
		return strconv.FormatInt(l.I, 10)
	case types.Bool:
		if l.B {
			return "TRUE"
		}
		return "FALSE"
	case types.String:
		return "'" + l.S + "'"
	default:
		return "?"
	}
}

// AsFloat returns the numeric value of a numeric/bool literal.
func (l *Literal) AsFloat() float64 {
	switch l.DT {
	case types.Float:
		return l.F
	case types.Int:
		return float64(l.I)
	case types.Bool:
		if l.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// IsComparison reports whether op yields a boolean from two operands.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// Binary applies op to two subexpressions.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// NewBinary constructs a binary expression.
func NewBinary(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, binOpNames[e.Op], e.R)
}

// Type implements Expr.
func (e *Binary) Type(s *types.Schema) (types.DataType, error) {
	lt, err := e.L.Type(s)
	if err != nil {
		return types.Unknown, err
	}
	rt, err := e.R.Type(s)
	if err != nil {
		return types.Unknown, err
	}
	// Unknown means a late-bound parameter: its concrete type arrives with
	// the value at execute time, so bind-time checks let it through and
	// physical schemas are recomputed after substitution. A value of the
	// wrong kind still fails loudly when the substituted expression
	// evaluates.
	switch {
	case e.Op == OpAnd || e.Op == OpOr:
		if (lt != types.Bool && lt != types.Unknown) || (rt != types.Bool && rt != types.Unknown) {
			return types.Unknown, fmt.Errorf("expr: %s needs BOOL operands, got %v and %v", binOpNames[e.Op], lt, rt)
		}
		return types.Bool, nil
	case e.Op.IsComparison():
		if lt == types.Unknown || rt == types.Unknown {
			return types.Bool, nil
		}
		if lt == types.String || rt == types.String {
			if lt != rt {
				return types.Unknown, fmt.Errorf("expr: cannot compare %v with %v", lt, rt)
			}
			return types.Bool, nil
		}
		return types.Bool, nil
	default: // arithmetic
		if lt == types.Unknown || rt == types.Unknown {
			// Provisional: the widest numeric type until the parameter binds.
			return types.Float, nil
		}
		if !lt.IsNumeric() && lt != types.Bool || !rt.IsNumeric() && rt != types.Bool {
			return types.Unknown, fmt.Errorf("expr: arithmetic needs numeric operands, got %v and %v", lt, rt)
		}
		if lt == types.Int && rt == types.Int && e.Op != OpDiv {
			return types.Int, nil
		}
		return types.Float, nil
	}
}

// Eval implements Expr. Operands feed type-specialized kernels; pooled
// intermediate operand vectors are recycled once the kernel has written
// its (never aliasing) output.
func (e *Binary) Eval(b *types.Batch) (*types.Vector, error) {
	lv, err := e.L.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := e.R.Eval(b)
	if err != nil {
		PutEvalResult(e.L, lv)
		return nil, err
	}
	n := b.Len()
	var out *types.Vector
	switch {
	case e.Op == OpAnd || e.Op == OpOr:
		if lv.Type != types.Bool || rv.Type != types.Bool {
			return nil, fmt.Errorf("expr: %s over non-bool vectors", binOpNames[e.Op])
		}
		if lv.Const && rv.Const {
			out = types.GetVector(types.Bool, 1)
			boolKernel(e.Op, lv.Bools, rv.Bools, true, true, out.Bools)
			out.MarkConst(n)
		} else {
			out = types.GetVector(types.Bool, n)
			boolKernel(e.Op, lv.Bools, rv.Bools, lv.Const, rv.Const, out.Bools)
		}
	case e.Op.IsComparison():
		out, err = evalCompare(e.Op, lv, rv, n)
	default:
		out, err = evalArith(e.Op, lv, rv, n)
	}
	PutEvalResult(e.L, lv)
	PutEvalResult(e.R, rv)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// constCmp builds the broadcast result of comparing two const operands.
func constCmp(op BinOp, c, n int) *types.Vector {
	v := types.GetVector(types.Bool, 1)
	v.Bools[0] = cmpResult(op, c)
	v.MarkConst(n)
	return v
}

func evalCompare(op BinOp, lv, rv *types.Vector, n int) (*types.Vector, error) {
	if lv.Type == types.String || rv.Type == types.String {
		if lv.Type != rv.Type {
			return nil, fmt.Errorf("expr: cannot compare %v with %v", lv.Type, rv.Type)
		}
		if lv.Const && rv.Const {
			return constCmp(op, strings.Compare(lv.Strings[0], rv.Strings[0]), n), nil
		}
		out := types.GetVector(types.Bool, n)
		cmpKernel(op, lv.Strings, rv.Strings, lv.Const, rv.Const, out.Bools)
		return out, nil
	}
	// fast paths: both operands of one numeric type
	if lv.Type == types.Int && rv.Type == types.Int {
		if lv.Const && rv.Const {
			return constCmp(op, cmpInt(lv.Ints[0], rv.Ints[0]), n), nil
		}
		out := types.GetVector(types.Bool, n)
		cmpKernel(op, lv.Ints, rv.Ints, lv.Const, rv.Const, out.Bools)
		return out, nil
	}
	if lv.Type == types.Float && rv.Type == types.Float {
		if lv.Const && rv.Const {
			return constCmp(op, cmpFloat(lv.Floats[0], rv.Floats[0]), n), nil
		}
		out := types.GetVector(types.Bool, n)
		cmpKernel(op, lv.Floats, rv.Floats, lv.Const, rv.Const, out.Bools)
		return out, nil
	}
	// mixed operand kinds: per-row coercion (AsFloat resolves broadcast)
	if lv.Const && rv.Const {
		return constCmp(op, cmpFloat(lv.AsFloat(0), rv.AsFloat(0)), n), nil
	}
	out := types.GetVector(types.Bool, n)
	for i := 0; i < n; i++ {
		out.Bools[i] = cmpResult(op, cmpFloat(lv.AsFloat(i), rv.AsFloat(i)))
	}
	return out, nil
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpResult(op BinOp, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

func evalArith(op BinOp, lv, rv *types.Vector, n int) (*types.Vector, error) {
	if lv.Type == types.String || rv.Type == types.String {
		return nil, fmt.Errorf("expr: arithmetic over VARCHAR")
	}
	if lv.Type == types.Int && rv.Type == types.Int && op != OpDiv {
		if lv.Const && rv.Const {
			out := types.GetVector(types.Int, 1)
			arithKernel(op, lv.Ints, rv.Ints, true, true, out.Ints)
			out.MarkConst(n)
			return out, nil
		}
		out := types.GetVector(types.Int, n)
		arithKernel(op, lv.Ints, rv.Ints, lv.Const, rv.Const, out.Ints)
		return out, nil
	}
	if lv.Type == types.Float && rv.Type == types.Float {
		if lv.Const && rv.Const {
			out := types.GetVector(types.Float, 1)
			arithKernel(op, lv.Floats, rv.Floats, true, true, out.Floats)
			out.MarkConst(n)
			return out, nil
		}
		out := types.GetVector(types.Float, n)
		arithKernel(op, lv.Floats, rv.Floats, lv.Const, rv.Const, out.Floats)
		return out, nil
	}
	// mixed operand kinds (INT/FLOAT/BOOL): per-row coercion
	if lv.Const && rv.Const {
		out := types.GetVector(types.Float, 1)
		out.Floats[0] = arithScalar(op, lv.AsFloat(0), rv.AsFloat(0))
		out.MarkConst(n)
		return out, nil
	}
	out := types.GetVector(types.Float, n)
	for i := 0; i < n; i++ {
		out.Floats[i] = arithScalar(op, lv.AsFloat(i), rv.AsFloat(i))
	}
	return out, nil
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// Eval implements Expr.
func (e *Not) Eval(b *types.Batch) (*types.Vector, error) {
	v, err := e.E.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Type != types.Bool {
		return nil, fmt.Errorf("expr: NOT over %v", v.Type)
	}
	if v.Const {
		out := types.GetVector(types.Bool, 1)
		out.Bools[0] = !v.Bools[0]
		out.MarkConst(v.Len())
		PutEvalResult(e.E, v)
		return out, nil
	}
	out := types.GetVector(types.Bool, len(v.Bools))
	for i := range v.Bools {
		out.Bools[i] = !v.Bools[i]
	}
	PutEvalResult(e.E, v)
	return out, nil
}

// Type implements Expr.
func (e *Not) Type(s *types.Schema) (types.DataType, error) {
	t, err := e.E.Type(s)
	if err != nil {
		return types.Unknown, err
	}
	if t != types.Bool {
		return types.Unknown, fmt.Errorf("expr: NOT over %v", t)
	}
	return types.Bool, nil
}

func (e *Not) String() string { return fmt.Sprintf("(NOT %s)", e.E) }

// When is one CASE arm.
type When struct {
	Cond Expr
	Then Expr
}

// Case is a searched CASE expression: CASE WHEN c1 THEN v1 ... ELSE e END.
// Model inlining (§4.2) compiles decision trees into nested Case trees.
type Case struct {
	Whens []When
	Else  Expr
}

// Type implements Expr. Arm result types must agree exactly, except that
// mixed numeric arms (INT/FLOAT/BOOL) promote to FLOAT, matching SQL's
// implicit numeric coercion in CASE.
func (e *Case) Type(s *types.Schema) (types.DataType, error) {
	if len(e.Whens) == 0 || e.Else == nil {
		return types.Unknown, fmt.Errorf("expr: CASE needs at least one WHEN and an ELSE")
	}
	arms := make([]types.DataType, 0, len(e.Whens)+1)
	for _, w := range e.Whens {
		ct, err := w.Cond.Type(s)
		if err != nil {
			return types.Unknown, err
		}
		if ct != types.Bool {
			return types.Unknown, fmt.Errorf("expr: CASE condition is %v, not BOOL", ct)
		}
		at, err := w.Then.Type(s)
		if err != nil {
			return types.Unknown, err
		}
		arms = append(arms, at)
	}
	et, err := e.Else.Type(s)
	if err != nil {
		return types.Unknown, err
	}
	arms = append(arms, et)
	out := arms[0]
	for _, a := range arms[1:] {
		if a == out {
			continue
		}
		numeric := func(t types.DataType) bool { return t.IsNumeric() || t == types.Bool }
		if numeric(a) && numeric(out) {
			out = types.Float
			continue
		}
		return types.Unknown, fmt.Errorf("expr: CASE arms have incompatible types %v and %v", out, a)
	}
	return out, nil
}

// Eval implements Expr. Evaluation is mask-driven: each arm's THEN runs
// only on the rows its condition selects (gathered into a sub-batch), so a
// decision tree inlined as nested CASEs costs O(depth·n) — the same
// asymptotics as native tree traversal, but vectorized.
func (e *Case) Eval(b *types.Batch) (*types.Vector, error) {
	n := b.Len()
	t, err := e.Type(b.Schema)
	if err != nil {
		return nil, err
	}
	out := types.GetVector(t, n)
	// idx maps current sub-batch positions to output rows.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	cur := b
	// scatter reads arm results through the broadcast-aware accessors so
	// literal THEN arms need no materialized vector.
	scatter := func(vals *types.Vector, rows []int) {
		for k, i := range rows {
			switch t {
			case types.Float:
				out.Floats[i] = vals.AsFloat(k)
			case types.Int:
				out.Ints[i] = vals.IntAt(k)
			case types.Bool:
				out.Bools[i] = vals.BoolAt(k)
			case types.String:
				out.Strings[i] = vals.StringAt(k)
			}
		}
	}
	for _, w := range e.Whens {
		if len(idx) == 0 {
			return out, nil
		}
		cond, err := w.Cond.Eval(cur)
		if err != nil {
			return nil, err
		}
		if cond.Type != types.Bool {
			return nil, fmt.Errorf("expr: CASE condition evaluated to %v", cond.Type)
		}
		var selT, selF []int // positions within cur
		if cond.Const {
			// broadcast condition: every remaining row takes one side
			if cond.Bools[0] {
				PutEvalResult(w.Cond, cond)
				vals, err := w.Then.Eval(cur)
				if err != nil {
					return nil, err
				}
				scatter(vals, idx)
				PutEvalResult(w.Then, vals)
				return out, nil
			}
			PutEvalResult(w.Cond, cond)
			continue
		}
		for k, ok := range cond.Bools {
			if ok {
				selT = append(selT, k)
			} else {
				selF = append(selF, k)
			}
		}
		PutEvalResult(w.Cond, cond)
		if len(selT) > 0 {
			sub := cur
			rows := idx
			if len(selT) < len(idx) {
				sub = cur.Gather(selT)
				rows = make([]int, len(selT))
				for k, p := range selT {
					rows[k] = idx[p]
				}
			}
			vals, err := w.Then.Eval(sub)
			if err != nil {
				return nil, err
			}
			scatter(vals, rows)
			PutEvalResult(w.Then, vals)
		}
		if len(selF) == 0 {
			return out, nil
		}
		if len(selF) < len(idx) {
			cur = cur.Gather(selF)
			nidx := make([]int, len(selF))
			for k, p := range selF {
				nidx[k] = idx[p]
			}
			idx = nidx
		}
	}
	vals, err := e.Else.Eval(cur)
	if err != nil {
		return nil, err
	}
	scatter(vals, idx)
	PutEvalResult(e.Else, vals)
	return out, nil
}

func (e *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	fmt.Fprintf(&sb, " ELSE %s END", e.Else)
	return sb.String()
}
