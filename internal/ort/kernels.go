package ort

import (
	"fmt"

	"raven/internal/tensor"
)

// Kernel executes one operator: inputs in, outputs out. threads is the
// intra-op parallelism budget granted by the execution provider.
type Kernel func(inputs []*tensor.Tensor, attrs Attrs, threads int) ([]*tensor.Tensor, error)

// kernels is the operator registry. The set covers what NN translation of
// classical ML pipelines needs (paper §4.2) plus the MLP path of Fig 3.
var kernels = map[string]Kernel{}

// RegisterKernel installs a kernel for an op type, replacing any previous
// registration. Exposed so substrates (e.g. the runtime package) can add
// custom ops without touching this package.
func RegisterKernel(op string, k Kernel) { kernels[op] = k }

// HasKernel reports whether an op is executable.
func HasKernel(op string) bool { _, ok := kernels[op]; return ok }

func arity(op string, inputs []*tensor.Tensor, want int) error {
	if len(inputs) != want {
		return fmt.Errorf("ort: %s expects %d inputs, got %d", op, want, len(inputs))
	}
	return nil
}

func one(t *tensor.Tensor, err error) ([]*tensor.Tensor, error) {
	if err != nil {
		return nil, err
	}
	return []*tensor.Tensor{t}, nil
}

func init() {
	RegisterKernel("MatMul", func(in []*tensor.Tensor, _ Attrs, threads int) ([]*tensor.Tensor, error) {
		if err := arity("MatMul", in, 2); err != nil {
			return nil, err
		}
		return one(tensor.MatMul(in[0], in[1], threads))
	})
	RegisterKernel("Gemm", func(in []*tensor.Tensor, attrs Attrs, threads int) ([]*tensor.Tensor, error) {
		if len(in) != 2 && len(in) != 3 {
			return nil, fmt.Errorf("ort: Gemm expects 2 or 3 inputs, got %d", len(in))
		}
		var c *tensor.Tensor
		if len(in) == 3 {
			c = in[2]
		}
		alpha := attrs.Float("alpha", 1)
		beta := attrs.Float("beta", 1)
		return one(tensor.Gemm(in[0], in[1], c, alpha, beta, threads))
	})
	RegisterKernel("Add", binKernel(tensor.Add))
	RegisterKernel("Sub", binKernel(tensor.Sub))
	RegisterKernel("Mul", binKernel(tensor.Mul))
	RegisterKernel("Div", binKernel(tensor.Div))
	RegisterKernel("Greater", binKernel(tensor.Greater))
	RegisterKernel("LessOrEqual", binKernel(tensor.LessOrEqual))
	RegisterKernel("Equal", binKernel(tensor.Equal))
	RegisterKernel("Relu", unaryKernel(tensor.Relu))
	RegisterKernel("Sigmoid", unaryKernel(tensor.Sigmoid))
	RegisterKernel("Tanh", unaryKernel(tensor.Tanh))
	RegisterKernel("Exp", unaryKernel(tensor.Exp))
	RegisterKernel("Softmax", func(in []*tensor.Tensor, _ Attrs, _ int) ([]*tensor.Tensor, error) {
		if err := arity("Softmax", in, 1); err != nil {
			return nil, err
		}
		return one(tensor.Softmax(in[0]))
	})
	RegisterKernel("ArgMax", func(in []*tensor.Tensor, _ Attrs, _ int) ([]*tensor.Tensor, error) {
		if err := arity("ArgMax", in, 1); err != nil {
			return nil, err
		}
		return one(tensor.ArgMax(in[0]))
	})
	RegisterKernel("ReduceSum", func(in []*tensor.Tensor, _ Attrs, _ int) ([]*tensor.Tensor, error) {
		if err := arity("ReduceSum", in, 1); err != nil {
			return nil, err
		}
		return one(tensor.ReduceSumAxis1(in[0]))
	})
	RegisterKernel("Gather", func(in []*tensor.Tensor, attrs Attrs, _ int) ([]*tensor.Tensor, error) {
		if err := arity("Gather", in, 1); err != nil {
			return nil, err
		}
		cols := attrs.Ints("cols")
		return one(tensor.GatherCols(in[0], cols))
	})
	RegisterKernel("Concat", func(in []*tensor.Tensor, _ Attrs, _ int) ([]*tensor.Tensor, error) {
		if len(in) == 0 {
			return nil, fmt.Errorf("ort: Concat of nothing")
		}
		return one(tensor.ConcatCols(in...))
	})
	RegisterKernel("OneHot", func(in []*tensor.Tensor, attrs Attrs, _ int) ([]*tensor.Tensor, error) {
		if err := arity("OneHot", in, 1); err != nil {
			return nil, err
		}
		depth := attrs.Int("depth", 0)
		if depth <= 0 {
			return nil, fmt.Errorf("ort: OneHot needs positive depth attr")
		}
		return one(tensor.OneHot(in[0], depth))
	})
	RegisterKernel("Identity", func(in []*tensor.Tensor, _ Attrs, _ int) ([]*tensor.Tensor, error) {
		if err := arity("Identity", in, 1); err != nil {
			return nil, err
		}
		return []*tensor.Tensor{in[0]}, nil
	})
	RegisterKernel("Reshape", func(in []*tensor.Tensor, attrs Attrs, _ int) ([]*tensor.Tensor, error) {
		if err := arity("Reshape", in, 1); err != nil {
			return nil, err
		}
		return one(in[0].Reshape(attrs.Ints("shape")...))
	})
	RegisterKernel("Transpose", func(in []*tensor.Tensor, _ Attrs, _ int) ([]*tensor.Tensor, error) {
		if err := arity("Transpose", in, 1); err != nil {
			return nil, err
		}
		return one(tensor.Transpose(in[0]))
	})
}

func binKernel(fn func(a, b *tensor.Tensor) (*tensor.Tensor, error)) Kernel {
	return func(in []*tensor.Tensor, _ Attrs, _ int) ([]*tensor.Tensor, error) {
		if len(in) != 2 {
			return nil, fmt.Errorf("ort: binary op expects 2 inputs, got %d", len(in))
		}
		return one(fn(in[0], in[1]))
	}
}

func unaryKernel(fn func(a *tensor.Tensor) *tensor.Tensor) Kernel {
	return func(in []*tensor.Tensor, _ Attrs, _ int) ([]*tensor.Tensor, error) {
		if len(in) != 1 {
			return nil, fmt.Errorf("ort: unary op expects 1 input, got %d", len(in))
		}
		return []*tensor.Tensor{fn(in[0])}, nil
	}
}

// opFLOPs estimates the floating-point work of one node given resolved
// input shapes; the simulated GPU provider prices kernels with it.
func opFLOPs(op string, in []*tensor.Tensor) int64 {
	switch op {
	case "MatMul", "Gemm":
		if len(in) >= 2 && in[0].Rank() == 2 && in[1].Rank() == 2 {
			return 2 * int64(in[0].Shape[0]) * int64(in[0].Shape[1]) * int64(in[1].Shape[1])
		}
	case "Sigmoid", "Tanh", "Exp", "Softmax":
		if len(in) >= 1 {
			return 8 * int64(in[0].Len()) // transcendental ≈ several flops
		}
	default:
		if len(in) >= 1 {
			return int64(in[0].Len())
		}
	}
	return 0
}

// opBytes estimates memory traffic (read inputs + write one output).
func opBytes(in []*tensor.Tensor, out []*tensor.Tensor) int64 {
	var b int64
	for _, t := range in {
		b += int64(t.Len()) * 8
	}
	for _, t := range out {
		b += int64(t.Len()) * 8
	}
	return b
}
