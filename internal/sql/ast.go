package sql

import "raven/internal/types"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query, possibly carrying WITH bindings.
type SelectStmt struct {
	CTEs     []CTE
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Where    Expr
	GroupBy  []string
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

func (*SelectStmt) stmt() {}

// CTE is one WITH binding: name AS (select).
type CTE struct {
	Name   string
	Select *SelectStmt
}

// SelectItem is one projection: expression with optional alias; a bare *
// is represented by Star=true.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  string
	Desc bool
}

// TableRef is anything that can appear in FROM.
type TableRef interface{ tableRef() }

// TableName references a stored table or CTE, with optional alias.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableRef() {}

// JoinRef is an inner equi-join of two table refs.
type JoinRef struct {
	Left, Right TableRef
	// On is the join condition (equality of two columns for hash joins).
	On Expr
}

func (*JoinRef) tableRef() {}

// SubqueryRef is a parenthesized SELECT in FROM.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableRef() {}

// PredictRef is the SQL Server PREDICT table function:
//
//	PREDICT(MODEL = @m | 'name', DATA = source AS d)
//	WITH (col type, ...) AS p
//
// It joins the source rows with the model's output columns.
type PredictRef struct {
	// ModelName is the literal model name; ModelVar the @variable (one of
	// the two is set).
	ModelName string
	ModelVar  string
	Data      TableRef
	DataAlias string
	// OutputCols declares the prediction columns added to the row.
	OutputCols []types.Column
	Alias      string
}

func (*PredictRef) tableRef() {}

// CreateTableStmt is CREATE TABLE name (col type [PRIMARY KEY], ...).
type CreateTableStmt struct {
	Name       string
	Cols       []types.Column
	PrimaryKey string
}

func (*CreateTableStmt) stmt() {}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct{ Name string }

func (*DropTableStmt) stmt() {}

// InsertStmt is INSERT INTO name VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// DeclareStmt binds a session variable: DECLARE @name = 'value'.
type DeclareStmt struct {
	Name  string
	Value string
}

func (*DeclareStmt) stmt() {}

// Expr is the parser's expression tree; the binder lowers it into
// internal/expr. Keeping a parser-local tree decouples parsing from the
// execution representation.
type Expr interface{ expr() }

// ColRef is a possibly-qualified column reference.
type ColRef struct{ Table, Name string }

func (*ColRef) expr() {}

// NumLit is a numeric literal; IsInt distinguishes 3 from 3.0.
type NumLit struct {
	F     float64
	I     int64
	IsInt bool
}

func (*NumLit) expr() {}

// StrLit is a string literal.
type StrLit struct{ S string }

func (*StrLit) expr() {}

// BoolLitE is TRUE/FALSE.
type BoolLitE struct{ B bool }

func (*BoolLitE) expr() {}

// VarRef is an @variable occurrence in an expression.
type VarRef struct{ Name string }

func (*VarRef) expr() {}

// BinaryE is a binary operation; Op uses SQL spellings (=, <>, AND, ...).
type BinaryE struct {
	Op   string
	L, R Expr
}

func (*BinaryE) expr() {}

// NotE is NOT e.
type NotE struct{ E Expr }

func (*NotE) expr() {}

// CaseE is a searched CASE expression.
type CaseE struct {
	Whens []struct{ Cond, Then Expr }
	Else  Expr
}

func (*CaseE) expr() {}

// FuncE is an aggregate or scalar function call; Star marks COUNT(*).
type FuncE struct {
	Name string
	Args []Expr
	Star bool
}

func (*FuncE) expr() {}
