// Package storage implements the columnar storage engine and catalog
// that play the role of SQL Server in the reproduction: tables, table
// statistics, and the transactional, versioned model store that gives
// models the same governance guarantees as data (paper §1, §2). Tables
// are in-memory by default; with a durable backend attached they are
// WAL-logged and their tails seal into on-disk columnar segments, so a
// table can exceed RAM (see durable.go).
package storage

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"raven/internal/segment"
	"raven/internal/types"
)

// sealedPart is one immutable on-disk segment of a table, in row order
// before the in-memory tail.
type sealedPart struct {
	r    *segment.Reader
	rows int
}

// Table is an append-only columnar table: zero or more sealed segments
// followed by an in-memory tail. Reads take a snapshot length so
// concurrent appends never tear a scan. In-memory tables (no backend)
// have no sealed parts, and every scan over them stays zero-copy.
type Table struct {
	Name   string
	schema *types.Schema

	mu         sync.RWMutex
	cols       []*types.Vector // the live tail
	sealed     []sealedPart
	sealedRows int
	rows       int // total rows: sealedRows + tail length

	// appendMu serializes durable appends end-to-end (WAL record, then
	// memory apply, then a possible seal) so log order always equals
	// apply order. Readers are only excluded during the memory apply,
	// which takes mu as before. In-memory appends skip it.
	appendMu sync.Mutex
	backend  Backend

	// dataVersion counts content changes (appends). The catalog version
	// only moves on DDL and model stores, so caches keyed by it alone
	// would serve stale rows after an INSERT; result caches validate
	// against this counter instead. Bumped under mu — so a version read
	// taken before an append started is guaranteed stale by the time the
	// new rows are visible to a scan — but stored atomically so
	// validation reads never block behind a bulk load.
	dataVersion atomic.Uint64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *types.Schema) *Table {
	cols := make([]*types.Vector, schema.Len())
	for i, c := range schema.Columns {
		cols[i] = types.NewVector(c.Type, 0)
	}
	return &Table{Name: name, schema: schema, cols: cols}
}

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// NumRows returns the current row count (sealed plus tail).
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// DataVersion returns the table's content version: 0 for a fresh table,
// bumped once per AppendRow/AppendBatch. A cache entry that recorded the
// version before executing is invalid the moment any append lands, even
// one racing the execution (the bump happens under the same lock that
// makes the new rows visible).
func (t *Table) DataVersion() uint64 { return t.dataVersion.Load() }

// AppendRow appends a single row of raw Go values in schema order.
func (t *Table) AppendRow(vals ...any) error {
	if t.backend != nil {
		b := types.NewBatch(t.schema)
		if err := b.AppendRow(vals...); err != nil {
			return fmt.Errorf("storage: table %s: %w", t.Name, err)
		}
		return t.backend.Append(t, b)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(vals) != len(t.cols) {
		return fmt.Errorf("storage: table %s: row arity %d != %d", t.Name, len(vals), len(t.cols))
	}
	// Bump before mutating: a failed append may still have touched
	// columns, and a spurious invalidation is harmless where a missed one
	// is not.
	t.dataVersion.Add(1)
	for i, v := range vals {
		if err := t.cols[i].Append(v); err != nil {
			return fmt.Errorf("storage: table %s: %w", t.Name, err)
		}
	}
	t.rows++
	return nil
}

// AppendBatch appends all rows of a batch whose columns match the schema.
func (t *Table) AppendBatch(b *types.Batch) error {
	if t.backend != nil {
		return t.backend.Append(t, b)
	}
	return t.applyBatch(b)
}

// applyBatch is the memory half of an append: rows land in the tail
// under mu and the data version bumps. The durable backend calls it
// after logging; in-memory AppendBatch is nothing but this.
func (t *Table) applyBatch(b *types.Batch) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(b.Vecs) != len(t.cols) {
		return fmt.Errorf("storage: table %s: batch arity %d != %d", t.Name, len(b.Vecs), len(t.cols))
	}
	t.dataVersion.Add(1)
	for i := range t.cols {
		if err := t.cols[i].AppendVector(b.Vecs[i]); err != nil {
			return fmt.Errorf("storage: table %s: %w", t.Name, err)
		}
	}
	t.rows += b.Len()
	return nil
}

// tailLen returns the number of rows currently in the in-memory tail.
func (t *Table) tailLen() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows - t.sealedRows
}

// tailBatch snapshots the whole tail zero-copy. The durable backend
// calls it with appenders excluded, so the view is stable.
func (t *Table) tailBatch() (*types.Batch, int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.rows - t.sealedRows
	vecs := make([]*types.Vector, len(t.cols))
	for i, c := range t.cols {
		vecs[i] = c.Slice(0, n)
	}
	return &types.Batch{Schema: t.schema, Vecs: vecs}, n
}

// sealTail swaps the first n tail rows — which must be the entire tail,
// seals always cover it — for the sealed segment r. The old tail vectors
// are abandoned, never reset: outstanding zero-copy scans may still
// reference them.
func (t *Table) sealTail(r *segment.Reader, n int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n != t.rows-t.sealedRows {
		return fmt.Errorf("storage: table %s: seal of %d rows but tail has %d", t.Name, n, t.rows-t.sealedRows)
	}
	t.sealed = append(t.sealed, sealedPart{r: r, rows: n})
	t.sealedRows += n
	cols := make([]*types.Vector, t.schema.Len())
	for i, c := range t.schema.Columns {
		cols[i] = types.NewVector(c.Type, 0)
	}
	t.cols = cols
	return nil
}

// attachSegment registers a sealed segment loaded from the manifest at
// recovery, before any tail rows exist.
func (t *Table) attachSegment(r *segment.Reader) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := r.Rows()
	t.sealed = append(t.sealed, sealedPart{r: r, rows: n})
	t.sealedRows += n
	t.rows += n
}

// sealedSnapshot copies the sealed-part list for checkpointing and
// stats.
func (t *Table) sealedSnapshot() []sealedPart {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]sealedPart(nil), t.sealed...)
}

// replaceSealed swaps the sealed-part list (compaction), closing the
// readers it replaces. Total sealed rows must be unchanged.
func (t *Table) replaceSealed(parts []sealedPart) error {
	rows := 0
	for _, p := range parts {
		rows += p.rows
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rows != t.sealedRows {
		return fmt.Errorf("storage: table %s: compaction changed sealed rows %d -> %d", t.Name, t.sealedRows, rows)
	}
	kept := make(map[*segment.Reader]bool, len(parts))
	for _, p := range parts {
		kept[p.r] = true
	}
	old := t.sealed
	t.sealed = parts
	for _, p := range old {
		if !kept[p.r] {
			p.r.Close()
		}
	}
	return nil
}

// closeSealed closes every sealed segment reader (DB close). The part
// list is kept so later scans fail with a closed-file error instead of
// panicking on missing parts.
func (t *Table) closeSealed() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.sealed {
		p.r.Close()
	}
}

// sealedInfo returns (segment count, sealed row count).
func (t *Table) sealedInfo() (int, int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.sealed), t.sealedRows
}

// ScanRange returns a batch over rows [lo, hi). Ranges entirely inside
// the in-memory tail — always, for in-memory tables — are zero-copy
// column slices the caller must not mutate; ranges touching sealed
// segments are materialized from disk.
func (t *Table) ScanRange(lo, hi int) (*types.Batch, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if hi > t.rows {
		hi = t.rows
	}
	if lo > hi {
		lo = hi
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= t.sealedRows {
		vecs := make([]*types.Vector, len(t.cols))
		for i, c := range t.cols {
			vecs[i] = c.Slice(lo-t.sealedRows, hi-t.sealedRows)
		}
		return &types.Batch{Schema: t.schema, Vecs: vecs}, nil
	}
	out := types.NewBatch(t.schema)
	out.Grow(hi - lo)
	pos := 0
	for _, p := range t.sealed {
		if lo < pos+p.rows && hi > pos {
			s, e := max(lo, pos), min(hi, pos+p.rows)
			for c := range out.Vecs {
				if err := p.r.ReadColumnRange(c, s-pos, e-pos, out.Vecs[c]); err != nil {
					return nil, fmt.Errorf("storage: table %s: segment %s: %w", t.Name, p.r.Path(), err)
				}
			}
		}
		pos += p.rows
	}
	if hi > t.sealedRows {
		for c := range out.Vecs {
			if err := out.Vecs[c].AppendVector(t.cols[c].Slice(0, hi-t.sealedRows)); err != nil {
				return nil, fmt.Errorf("storage: table %s: %w", t.Name, err)
			}
		}
	}
	return out, nil
}

// Scan returns the whole table as one batch (zero-copy when fully
// in-memory).
func (t *Table) Scan() (*types.Batch, error) { return t.ScanRange(0, t.NumRows()) }

// scanColumn appends rows [lo, hi) of column idx to dst, reading sealed
// segments and the tail as needed — the single-column sibling of
// ScanRange that statistics use so they never materialize the full
// table width.
func (t *Table) scanColumn(idx, lo, hi int, dst *types.Vector) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if hi > t.rows {
		hi = t.rows
	}
	if lo > hi {
		lo = hi
	}
	pos := 0
	for _, p := range t.sealed {
		if lo < pos+p.rows && hi > pos {
			s, e := max(lo, pos), min(hi, pos+p.rows)
			if err := p.r.ReadColumnRange(idx, s-pos, e-pos, dst); err != nil {
				return fmt.Errorf("storage: table %s: segment %s: %w", t.Name, p.r.Path(), err)
			}
		}
		pos += p.rows
	}
	if hi > t.sealedRows {
		s := max(lo, t.sealedRows)
		if err := dst.AppendVector(t.cols[idx].Slice(s-t.sealedRows, hi-t.sealedRows)); err != nil {
			return fmt.Errorf("storage: table %s: %w", t.Name, err)
		}
	}
	return nil
}

// ColumnStats summarizes one column for optimizer use: min/max for numeric
// columns, and the set of distinct values when small. The cross optimizer
// uses these to derive predicates from data properties (paper §4.1,
// "predicate-based pruning ... based on data properties").
type ColumnStats struct {
	Name          string
	Min, Max      float64
	DistinctCount int
	// Distinct holds the distinct values when DistinctCount <= maxDistinct
	// (as float64 for numeric columns; strings use DistinctStrings).
	Distinct        []float64
	DistinctStrings []string
	NumRows         int
}

const maxDistinct = 64

// statsChunk is the row granularity Stats streams a column at, so a
// larger-than-RAM table never materializes whole for statistics.
const statsChunk = 8192

// Stats computes fresh statistics for the named column, streaming over
// sealed segments and the tail in chunks. Statistics are computed on
// demand rather than cached: tables in this engine are bulk-loaded once
// per experiment.
func (t *Table) Stats(col string) (*ColumnStats, error) {
	idx := t.schema.IndexOf(col)
	if idx < 0 {
		return nil, fmt.Errorf("storage: table %s has no column %q", t.Name, col)
	}
	rows := t.NumRows()
	typ := t.schema.Columns[idx].Type
	st := &ColumnStats{Name: col, Min: math.Inf(1), Max: math.Inf(-1), NumRows: rows}
	seenF := make(map[float64]struct{})
	seenS := make(map[string]struct{})
	v := types.NewVector(typ, 0)
	for lo := 0; lo < rows; lo += statsChunk {
		hi := min(lo+statsChunk, rows)
		v.Reset()
		if err := t.scanColumn(idx, lo, hi, v); err != nil {
			return nil, err
		}
		n := v.Len()
		switch typ {
		case types.Float, types.Int, types.Bool:
			for i := 0; i < n; i++ {
				x := v.AsFloat(i)
				if x < st.Min {
					st.Min = x
				}
				if x > st.Max {
					st.Max = x
				}
				if len(seenF) <= maxDistinct {
					seenF[x] = struct{}{}
				}
			}
		case types.String:
			for i := 0; i < n; i++ {
				if len(seenS) <= maxDistinct {
					seenS[v.Strings[i]] = struct{}{}
				}
			}
		}
	}
	switch typ {
	case types.Float, types.Int, types.Bool:
		st.DistinctCount = len(seenF)
		if len(seenF) <= maxDistinct {
			for x := range seenF {
				st.Distinct = append(st.Distinct, x)
			}
		}
	case types.String:
		st.DistinctCount = len(seenS)
		if len(seenS) <= maxDistinct {
			for s := range seenS {
				st.DistinctStrings = append(st.DistinctStrings, s)
			}
		}
	}
	return st, nil
}
