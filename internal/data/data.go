// Package data generates the two evaluation workloads of the paper,
// seeded and deterministic: the hospital length-of-stay dataset (three
// joinable tables mirroring Fig 1's patient_info / blood_tests /
// prenatal_tests) and the flight-delay dataset (a wide one-hot-encoded
// feature table plus a narrow categorical table). Labels come from known
// ground-truth rules so trained models have realistic, exploitable
// structure (sparsity, prunable branches).
package data

import (
	"fmt"
	"math"
	"math/rand"

	"raven/internal/ml"
	"raven/internal/storage"
	"raven/internal/types"
)

// Hospital bundles the generated hospital tables and a held-out training
// sample (featurized the same way the inference query joins the tables).
type Hospital struct {
	// FeatureCols is the model input order over the joined row.
	FeatureCols []string
	TrainX      ml.Matrix
	TrainY      []float64
}

// HospitalFeatureCols is the canonical feature order of the workload.
var HospitalFeatureCols = []string{
	"pregnant", "age", "gender", "weight",
	"bp", "glucose", "hematocrit",
	"fetal_hr", "amnio",
}

// GenHospital creates patient_info, blood_tests and prenatal_tests with n
// rows each (id-joined 1:1, referential integrity by construction),
// registers them in the catalog with unique keys, and returns a training
// sample of trainN independent rows.
func GenHospital(cat *storage.Catalog, n, trainN int, seed int64) (*Hospital, error) {
	rng := rand.New(rand.NewSource(seed))

	pi := storage.NewTable("patient_info", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "age", Type: types.Float},
		types.Column{Name: "pregnant", Type: types.Int},
		types.Column{Name: "gender", Type: types.Int},
		types.Column{Name: "weight", Type: types.Float},
	))
	bt := storage.NewTable("blood_tests", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "bp", Type: types.Float},
		types.Column{Name: "glucose", Type: types.Float},
		types.Column{Name: "hematocrit", Type: types.Float},
	))
	pt := storage.NewTable("prenatal_tests", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "fetal_hr", Type: types.Float},
		types.Column{Name: "amnio", Type: types.Float},
	))

	genRow := func(rng *rand.Rand) []float64 {
		// feature order: HospitalFeatureCols
		gender := float64(rng.Intn(2)) // 1 = female
		pregnant := 0.0
		if gender == 1 && rng.Float64() < 0.3 {
			pregnant = 1
		}
		age := 18 + rng.Float64()*62
		weight := 45 + rng.Float64()*75
		bp := 90 + rng.Float64()*80
		glucose := 60 + rng.Float64()*140
		hematocrit := 30 + rng.Float64()*25
		fetalHR := 0.0
		amnio := 0.0
		if pregnant == 1 {
			fetalHR = 110 + rng.Float64()*60
			amnio = 5 + rng.Float64()*20
		}
		return []float64{pregnant, age, gender, weight, bp, glucose, hematocrit, fetalHR, amnio}
	}

	// losLabel is the ground truth the paper's running example sketches:
	// long stays driven by blood pressure, pregnancy and age.
	losLabel := func(f []float64, rng *rand.Rand) float64 {
		pregnant, age, bp := f[0], f[1], f[4]
		glucose := f[5]
		long := 0.0
		switch {
		case pregnant == 1 && bp > 140:
			long = 0.9
		case pregnant == 1 && bp > 120:
			long = 0.55
		case age > 65 && glucose > 150:
			long = 0.7
		case age > 35 && bp > 150:
			long = 0.5
		default:
			long = 0.08
		}
		if rng.Float64() < long {
			return 1
		}
		return 0
	}

	buf := make([]any, 0, 8)
	for i := 0; i < n; i++ {
		f := genRow(rng)
		buf = buf[:0]
		buf = append(buf, int64(i), f[1], int64(f[0]), int64(f[2]), f[3])
		if err := pi.AppendRow(buf...); err != nil {
			return nil, err
		}
		if err := bt.AppendRow(int64(i), f[4], f[5], f[6]); err != nil {
			return nil, err
		}
		if err := pt.AppendRow(int64(i), f[7], f[8]); err != nil {
			return nil, err
		}
	}
	for _, t := range []*storage.Table{pi, bt, pt} {
		if err := cat.AddTable(t); err != nil {
			return nil, err
		}
		cat.SetUniqueKey(t.Name, "id")
	}

	trainRng := rand.New(rand.NewSource(seed + 1))
	d := len(HospitalFeatureCols)
	tx := make([]float64, trainN*d)
	ty := make([]float64, trainN)
	for i := 0; i < trainN; i++ {
		f := genRow(trainRng)
		copy(tx[i*d:(i+1)*d], f)
		ty[i] = losLabel(f, trainRng)
	}
	return &Hospital{
		FeatureCols: HospitalFeatureCols,
		TrainX:      ml.Matrix{Data: tx, Rows: trainN, Cols: d},
		TrainY:      ty,
	}, nil
}

// Flights bundles the generated flight-delay tables and training sample.
type Flights struct {
	// FeatureCols names the wide table's pre-encoded feature columns
	// (f0..f{d-1}), the model input order.
	FeatureCols []string
	TrainX      ml.Matrix
	TrainY      []float64
	// SignalFeatures are the ground-truth informative feature ordinals.
	SignalFeatures []int
}

// GenFlightsWide creates flights_features: a wide table of d pre-encoded
// features per flight (the shape after categorical encoding of
// origin/destination/carrier — this is what L1-regularized models are
// trained on in §4.1), plus a training sample. Only nSignal features carry
// signal, so L1 training recovers genuinely sparse models.
func GenFlightsWide(cat *storage.Catalog, n, d, nSignal, trainN int, seed int64) (*Flights, error) {
	if nSignal > d {
		return nil, fmt.Errorf("data: nSignal %d > d %d", nSignal, d)
	}
	rng := rand.New(rand.NewSource(seed))
	cols := make([]types.Column, 0, d+1)
	cols = append(cols, types.Column{Name: "id", Type: types.Int})
	featureCols := make([]string, d)
	for j := 0; j < d; j++ {
		featureCols[j] = fmt.Sprintf("f%d", j)
		cols = append(cols, types.Column{Name: featureCols[j], Type: types.Float})
	}
	tb := storage.NewTable("flights_features", types.NewSchema(cols...))

	// ground-truth sparse weights on the first nSignal features (shuffled
	// positions for realism)
	pos := rng.Perm(d)[:nSignal]
	w := make([]float64, d)
	for _, p := range pos {
		w[p] = rng.NormFloat64() * 2
	}

	genRow := func(rng *rand.Rand, out []float64) {
		for j := range out {
			// Binary-ish features (one-hot encodings) mixed with a few
			// continuous ones.
			if j%5 == 0 {
				out[j] = rng.NormFloat64()
			} else if rng.Float64() < 0.15 {
				out[j] = 1
			} else {
				out[j] = 0
			}
		}
	}
	label := func(f []float64, rng *rand.Rand) float64 {
		z := -0.2
		for _, p := range pos {
			z += w[p] * f[p]
		}
		// logistic noise
		if 1/(1+exp(-z)) > rng.Float64() {
			return 1
		}
		return 0
	}

	row := make([]float64, d)
	vals := make([]any, d+1)
	for i := 0; i < n; i++ {
		genRow(rng, row)
		vals[0] = int64(i)
		for j, x := range row {
			vals[j+1] = x
		}
		if err := tb.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	if err := cat.AddTable(tb); err != nil {
		return nil, err
	}
	cat.SetUniqueKey(tb.Name, "id")

	trainRng := rand.New(rand.NewSource(seed + 1))
	tx := make([]float64, trainN*d)
	ty := make([]float64, trainN)
	for i := 0; i < trainN; i++ {
		genRow(trainRng, tx[i*d:(i+1)*d])
		ty[i] = label(tx[i*d:(i+1)*d], trainRng)
	}
	return &Flights{
		FeatureCols:    featureCols,
		TrainX:         ml.Matrix{Data: tx, Rows: trainN, Cols: d},
		TrainY:         ty,
		SignalFeatures: pos,
	}, nil
}

// GenFlightsCategorical creates the narrow flights table with raw
// categorical columns (dest, origin, carrier as small-int codes) plus
// numeric features — the input for the one-hot categorical-pruning
// experiment (§4.1: a selection on destination airport pins that airport's
// indicator block).
func GenFlightsCategorical(cat *storage.Catalog, n int, nDest, nCarrier int, trainN int, seed int64) (*Flights, error) {
	rng := rand.New(rand.NewSource(seed))
	tb := storage.NewTable("flights", types.NewSchema(
		types.Column{Name: "id", Type: types.Int},
		types.Column{Name: "dest", Type: types.Float},
		types.Column{Name: "carrier", Type: types.Float},
		types.Column{Name: "distance", Type: types.Float},
		types.Column{Name: "dep_hour", Type: types.Float},
	))
	genRow := func(rng *rand.Rand) []float64 {
		return []float64{
			float64(rng.Intn(nDest)),
			float64(rng.Intn(nCarrier)),
			100 + rng.Float64()*3000,
			float64(rng.Intn(24)),
		}
	}
	label := func(f []float64, rng *rand.Rand) float64 {
		z := -0.5 + 0.001*(f[2]-1500)/10
		if int(f[0])%3 == 0 {
			z += 1.2 // some destinations are delay-prone
		}
		if f[3] > 17 {
			z += 0.8
		}
		if 1/(1+exp(-z)) > rng.Float64() {
			return 1
		}
		return 0
	}
	for i := 0; i < n; i++ {
		f := genRow(rng)
		if err := tb.AppendRow(int64(i), f[0], f[1], f[2], f[3]); err != nil {
			return nil, err
		}
	}
	if err := cat.AddTable(tb); err != nil {
		return nil, err
	}
	cat.SetUniqueKey(tb.Name, "id")

	trainRng := rand.New(rand.NewSource(seed + 1))
	d := 4
	tx := make([]float64, trainN*d)
	ty := make([]float64, trainN)
	for i := 0; i < trainN; i++ {
		f := genRow(trainRng)
		copy(tx[i*d:(i+1)*d], f)
		ty[i] = label(f, trainRng)
	}
	return &Flights{
		FeatureCols: []string{"dest", "carrier", "distance", "dep_hour"},
		TrainX:      ml.Matrix{Data: tx, Rows: trainN, Cols: d},
		TrainY:      ty,
	}, nil
}

func exp(x float64) float64 { return math.Exp(x) }

// GenFlightsClustered creates a wide feature table with latent group
// structure: rows belong to one of `groups` fleets/route-clusters, and
// within a group the first `fixedPerGroup` features are constant (the
// one-hot encodings of that group's airport/carrier). K-means recovers the
// groups, letting model clustering precompile narrower per-cluster models
// (§4.1, Fig 2(b)).
func GenFlightsClustered(cat *storage.Catalog, n, d, groups, fixedPerGroup, trainN int, seed int64) (*Flights, error) {
	if fixedPerGroup > d {
		return nil, fmt.Errorf("data: fixedPerGroup %d > d %d", fixedPerGroup, d)
	}
	rng := rand.New(rand.NewSource(seed))
	cols := make([]types.Column, 0, d+1)
	cols = append(cols, types.Column{Name: "id", Type: types.Int})
	featureCols := make([]string, d)
	for j := 0; j < d; j++ {
		featureCols[j] = fmt.Sprintf("f%d", j)
		cols = append(cols, types.Column{Name: featureCols[j], Type: types.Float})
	}
	tb := storage.NewTable("flights_clustered", types.NewSchema(cols...))

	// group signatures: well-separated constant patterns
	sig := make([][]float64, groups)
	for g := range sig {
		sig[g] = make([]float64, fixedPerGroup)
		for j := range sig[g] {
			// indicator-style values, separated by group id
			sig[g][j] = float64((g >> (j % 5)) & 1 * 10)
			if j == 0 {
				sig[g][j] = float64(g) * 20 // strong separation feature
			}
		}
	}
	w := make([]float64, d)
	for j := range w {
		w[j] = rng.NormFloat64() * 0.3
	}
	genRow := func(rng *rand.Rand, out []float64) int {
		g := rng.Intn(groups)
		copy(out[:fixedPerGroup], sig[g])
		for j := fixedPerGroup; j < d; j++ {
			out[j] = rng.NormFloat64()
		}
		return g
	}
	label := func(f []float64, rng *rand.Rand) float64 {
		z := 0.0
		for j, x := range f {
			z += w[j] * x
		}
		if 1/(1+exp(-z)) > rng.Float64() {
			return 1
		}
		return 0
	}
	row := make([]float64, d)
	vals := make([]any, d+1)
	for i := 0; i < n; i++ {
		genRow(rng, row)
		vals[0] = int64(i)
		for j, x := range row {
			vals[j+1] = x
		}
		if err := tb.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	if err := cat.AddTable(tb); err != nil {
		return nil, err
	}
	cat.SetUniqueKey(tb.Name, "id")

	trainRng := rand.New(rand.NewSource(seed + 1))
	tx := make([]float64, trainN*d)
	ty := make([]float64, trainN)
	for i := 0; i < trainN; i++ {
		genRow(trainRng, tx[i*d:(i+1)*d])
		ty[i] = label(tx[i*d:(i+1)*d], trainRng)
	}
	return &Flights{
		FeatureCols: featureCols,
		TrainX:      ml.Matrix{Data: tx, Rows: trainN, Cols: d},
		TrainY:      ty,
	}, nil
}
