package reqopt

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"raven"
)

func TestResolvePrecedence(t *testing.T) {
	ctxLayer := Options{Tenant: "proxy", Priority: Int(9)}
	reqLayer := Options{Tenant: "body", Priority: Int(1), DOP: 4, NoCache: true}
	stmtLayer := Options{Tenant: "stmt", Priority: Int(5), Timeout: time.Second}
	def := Options{Timeout: time.Minute}

	got := Resolve(ctxLayer, reqLayer, stmtLayer, def)
	if got.Tenant != "proxy" || *got.Priority != 9 {
		t.Fatalf("ctx layer must win: %+v", got)
	}
	if got.DOP != 4 {
		t.Fatalf("unset upper layers fall through: DOP %d", got.DOP)
	}
	if got.Timeout != time.Second {
		t.Fatalf("stmt timeout beats server default: %v", got.Timeout)
	}
	if !got.NoCache {
		t.Fatal("NoCache must OR across layers")
	}

	// An explicit priority 0 at a higher layer beats a lower layer's 5 —
	// presence, not zeroness, decides.
	got = Resolve(Options{Priority: Int(0)}, stmtLayer)
	if *got.Priority != 0 {
		t.Fatalf("explicit 0 must demote: %+v", got)
	}
	// Absent upper priority falls through.
	got = Resolve(Options{}, stmtLayer)
	if *got.Priority != 5 {
		t.Fatalf("absent priority must fall through: %+v", got)
	}
}

func TestClamp(t *testing.T) {
	o := Options{Priority: Int(1_000_000), DOP: 1 << 20}.Clamp()
	if *o.Priority != MaxWirePriority || o.DOP != MaxWireDOP() {
		t.Fatalf("clamp: %+v", o)
	}
	o = Options{Priority: Int(-1_000_000), DOP: -3}.Clamp()
	if *o.Priority != -MaxWirePriority || o.DOP != 0 {
		t.Fatalf("clamp: %+v", o)
	}
	if o = (Options{}).Clamp(); o.Priority != nil {
		t.Fatalf("clamp must not invent a priority: %+v", o)
	}
}

func TestApplyAndContext(t *testing.T) {
	qo := raven.DefaultQueryOptions()
	qo.Parallelism = 7
	Options{Tenant: "t", Priority: Int(3), NoCache: true}.Apply(&qo)
	if qo.Tenant != "t" || qo.Priority != 3 || !qo.NoResultCache {
		t.Fatalf("apply: %+v", qo)
	}
	if qo.Parallelism != 7 {
		t.Fatalf("zero DOP must not clobber engine parallelism: %d", qo.Parallelism)
	}
	Options{DOP: 2}.Apply(&qo)
	if qo.Parallelism != 2 {
		t.Fatalf("set DOP must apply: %d", qo.Parallelism)
	}
	if !qo.NoResultCache {
		t.Fatal("NoResultCache is one-way")
	}

	// Context must at minimum return a derived, non-nil context; the
	// tag's effect on admission is covered by the front-end tests
	// (pgwire's tenant-attribution test bills through this path).
	if ctx := (Options{Tenant: "t", Priority: Int(3)}).Context(context.Background()); ctx == nil {
		t.Fatal("nil context")
	}
}

func TestFromHeaders(t *testing.T) {
	h := http.Header{}
	h.Set(HeaderTenant, "acme")
	h.Set(HeaderPriority, "7")
	h.Set(HeaderDOP, "3")
	h.Set(HeaderTimeoutMS, "1500")
	h.Set(HeaderNoCache, "1")
	o, err := FromHeaders(h)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if o.Tenant != "acme" || *o.Priority != 7 || o.DOP != 3 ||
		o.Timeout != 1500*time.Millisecond || !o.NoCache {
		t.Fatalf("parsed: %+v", o)
	}

	for name, hdr := range map[string][2]string{
		"bad priority": {HeaderPriority, "high"},
		"bad dop":      {HeaderDOP, "-1"},
		"bad timeout":  {HeaderTimeoutMS, "soon"},
		"bad nocache":  {HeaderNoCache, "maybe"},
	} {
		h := http.Header{}
		h.Set(hdr[0], hdr[1])
		if _, err := FromHeaders(h); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestFromSessionParams(t *testing.T) {
	o, err := FromSessionParams(map[string]string{
		ParamPriority:  "-2",
		ParamDOP:       "4",
		ParamTimeoutMS: "250",
		ParamNoCache:   "on",
		"app.foreign":  "ignored",
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if *o.Priority != -2 || o.DOP != 4 || o.Timeout != 250*time.Millisecond || !o.NoCache {
		t.Fatalf("parsed: %+v", o)
	}
	if _, err := FromSessionParams(map[string]string{"raven.typo": "1"}); err == nil {
		t.Fatal("unknown raven.* key must error")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err    error
		status int
		state  string
		retry  bool
	}{
		{raven.ErrQueueFull, 429, SQLStateTooManyConns, true},
		{raven.ErrTenantQuota, 429, SQLStateTooManyConns, false},
		{ErrStmtLimit, 429, SQLStateTooManyConns, false},
		{raven.ErrQueueTimeout, 504, SQLStateQueryCanceled, false},
		{context.DeadlineExceeded, 504, SQLStateQueryCanceled, false},
		{raven.ErrDraining, 503, SQLStateAdminShutdown, true},
		{context.Canceled, 499, SQLStateQueryCanceled, false},
		{ErrStmtNotFound, 404, SQLStateInvalidStmtName, false},
		{errors.New("parse error"), 400, SQLStateSyntaxError, false},
	}
	for _, c := range cases {
		cl := Classify(c.err)
		if cl.HTTPStatus != c.status || cl.SQLState != c.state || cl.RetryAfter != c.retry {
			t.Errorf("%v: got %+v, want (%d, %s, %v)", c.err, cl, c.status, c.state, c.retry)
		}
	}
	// Wrapped errors classify the same.
	if HTTPStatus(errorsJoin(raven.ErrQueueFull)) != 429 {
		t.Error("wrapped queue-full must stay 429")
	}
	if SQLState(errorsJoin(raven.ErrDraining)) != SQLStateAdminShutdown {
		t.Error("wrapped draining must stay 57P01")
	}
}

func errorsJoin(err error) error { return errors.Join(errors.New("outer"), err) }

func TestMayHaveSelect(t *testing.T) {
	cases := map[string]bool{
		"SELECT 1":        true,
		"select a from t": true,
		"CREATE TABLE t (a INT); INSERT INTO t (1)": false,
		"CREATE TABLE selector (a INT)":             false, // SELECT inside an identifier
		"DECLARE x INT = 1; SELECT @x":              true,
		"INSERT INTO t VALUES (1); SELECT a FROM t": true,
		"": false,
	}
	for script, want := range cases {
		if got := MayHaveSelect(script); got != want {
			t.Errorf("%q: got %v, want %v", script, got, want)
		}
	}
}
