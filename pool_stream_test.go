package raven

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// The streamed-Rows pooling contract: values handed out through
// Rows.Next/Scan must stay correct even while other queries on the same
// engine churn the recycled vector and run-buffer pools, and a query
// cancelled mid-morsel must hand its buffers back without poisoning the
// pools for later queries. Run under -race these tests double as aliasing
// detectors: a pooled buffer reused while still referenced shows up as a
// concurrent read/write.

const poolStreamQuery = `SELECT f0, f2 FROM flights_features WHERE f2 > 0 ORDER BY f0 DESC`

// TestStreamedRowsNeverAliasRecycledBatches streams one query row by row
// while four goroutines run the same ORDER BY plan to completion over and
// over, recycling sort runs and kernel vectors the whole time. Every
// streamed row must match the serial reference.
func TestStreamedRowsNeverAliasRecycledBatches(t *testing.T) {
	db := flightsDB(t, 20000)
	ref, err := db.QueryWithOptions(poolStreamQuery, QueryOptions{Mode: ModeInProcess, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Batch
	if want.Len() == 0 {
		t.Fatal("reference result empty")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := db.QueryWithOptions(poolStreamQuery, QueryOptions{
					Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512,
				})
				if err != nil {
					t.Errorf("churn query: %v", err)
					return
				}
				if r.Batch.Len() != want.Len() {
					t.Errorf("churn query: %d rows, want %d", r.Batch.Len(), want.Len())
					return
				}
			}
		}()
	}

	rows, err := db.QueryContextWithOptions(context.Background(), poolStreamQuery, QueryOptions{
		Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for rows.Next() {
		var f0, f2 float64
		if err := rows.Scan(&f0, &f2); err != nil {
			t.Fatal(err)
		}
		if i < want.Len() {
			w0, w2 := want.Vecs[0].Floats[i], want.Vecs[1].Floats[i]
			if f0 != w0 || f2 != w2 {
				t.Fatalf("row %d: streamed (%v, %v), want (%v, %v) — recycled batch aliased live results", i, f0, f2, w0, w2)
			}
		}
		i++
	}
	close(stop)
	wg.Wait()
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if i != want.Len() {
		t.Fatalf("streamed %d rows, want %d", i, want.Len())
	}
}

// TestCancelledQueryLeavesPoolsUsable cancels queries mid-stream — morsel
// workers still producing, sort runs undrained — then checks the engine
// still answers the same query byte-identically. A cancelled query that
// double-recycled or leaked a live buffer would corrupt the follow-up.
func TestCancelledQueryLeavesPoolsUsable(t *testing.T) {
	db := flightsDB(t, 20000)
	ref, err := db.QueryWithOptions(poolStreamQuery, QueryOptions{Mode: ModeInProcess, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := db.QueryContextWithOptions(ctx, poolStreamQuery, QueryOptions{
			Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512,
		})
		if err != nil {
			cancel()
			t.Fatalf("run %d: %v", i, err)
		}
		// A few rows in, cancel with the exchange mid-flight.
		for j := 0; j < 3 && rows.Next(); j++ {
			var f0, f2 float64
			if err := rows.Scan(&f0, &f2); err != nil {
				t.Fatalf("run %d: %v", i, err)
			}
		}
		cancel()
		for rows.Next() {
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("run %d: close: %v", i, err)
		}

		after, err := db.QueryWithOptions(poolStreamQuery, QueryOptions{
			Mode: ModeInProcess, Parallelism: 4, ParallelThresholdRows: 1, MorselSize: 512,
		})
		if err != nil {
			t.Fatalf("run %d: follow-up: %v", i, err)
		}
		batchesIdentical(t, fmt.Sprintf("follow-up after cancel %d", i), ref.Batch, after.Batch)
	}
	assertGoroutinesReturn(t, base)
}
