package bench

// Allocation baselines and budgets for the data-plane experiments, in
// heap allocations per input row at DOP=1, quick scale, measured on the
// boxed (pre-typed-kernel) data plane. The typed kernels, vector pooling
// and adaptive batching are required to hold a ≥5x improvement over the
// baselines; the experiments fail (and so bench-check and `make ci`
// fail) if a regression pushes steady-state allocations back above the
// budget.
const (
	// breakerAllocsPerRowBaseline: ParallelBreakers (GROUP BY / JOIN /
	// ORDER BY mean) on the boxed data plane.
	breakerAllocsPerRowBaseline = 0.3556
	breakerAllocsPerRowBudget   = breakerAllocsPerRowBaseline / 5

	// scalingAllocsPerRowBaseline: ParallelScaling's serial scan+PREDICT
	// on the boxed data plane.
	scalingAllocsPerRowBaseline = 0.01399
	scalingAllocsPerRowBudget   = scalingAllocsPerRowBaseline / 5
)
