package raven

import (
	"context"
	"fmt"
	"testing"
	"time"

	"raven/internal/sched"
)

// TestNegativeCompileCache covers the negative cache: a repeated
// compile failure is answered from memory (counted as a NegHit), DDL
// that could change the outcome invalidates immediately, and entries
// expire on their TTL.
func TestNegativeCompileCache(t *testing.T) {
	db := MustOpen(WithResultCache(1 << 20))
	if err := db.Exec(`CREATE TABLE neg_t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO neg_t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	bad := `SELECT a FROM neg_missing`
	_, err1 := db.QueryContext(ctx, bad)
	if err1 == nil {
		t.Fatal("query against a missing table should fail")
	}
	info := db.Stats().ResultCache
	if info.NegHits != 0 || info.NegEntries != 1 {
		t.Fatalf("after first failure: NegHits=%d NegEntries=%d, want 0/1", info.NegHits, info.NegEntries)
	}

	// The retry is refused from the negative cache with the same error.
	_, err2 := db.QueryContext(ctx, bad)
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("negative hit should repeat the original error: %v vs %v", err2, err1)
	}
	if info = db.Stats().ResultCache; info.NegHits != 1 {
		t.Fatalf("NegHits=%d after a repeated failure, want 1", info.NegHits)
	}

	// DDL can turn the failure into a success, so it must invalidate:
	// the very next call recompiles against the new catalog.
	if err := db.Exec(`CREATE TABLE neg_missing (a INT)`); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryContext(ctx, bad)
	if err != nil {
		t.Fatalf("after DDL the same SQL should compile: %v", err)
	}
	rows.Close()

	// Entries expire on their TTL rather than pinning the error.
	old := negCacheTTL
	negCacheTTL = 10 * time.Millisecond
	defer func() { negCacheTTL = old }()
	badCol := `SELECT nope FROM neg_t`
	if _, err := db.QueryContext(ctx, badCol); err == nil {
		t.Fatal("query against a missing column should fail")
	}
	time.Sleep(25 * time.Millisecond)
	before := db.Stats().ResultCache.NegHits
	if _, err := db.QueryContext(ctx, badCol); err == nil {
		t.Fatal("recompile after expiry should still fail")
	}
	if got := db.Stats().ResultCache.NegHits; got != before {
		t.Fatalf("expired negative entry served a hit (NegHits %d -> %d)", before, got)
	}

	// The parameterized surface shares the cache: same broken SQL, two
	// calls, second one a negative hit.
	negCacheTTL = time.Second
	badParams := `SELECT a FROM neg_gone`
	if _, err := db.QueryContextParams(ctx, badParams, DefaultQueryOptions()); err == nil {
		t.Fatal("parameterized query against a missing table should fail")
	}
	before = db.Stats().ResultCache.NegHits
	if _, err := db.QueryContextParams(ctx, badParams, DefaultQueryOptions()); err == nil {
		t.Fatal("parameterized retry should fail")
	}
	if got := db.Stats().ResultCache.NegHits; got != before+1 {
		t.Fatalf("parameterized retry: NegHits %d -> %d, want +1", before, got)
	}
}

// TestResultCacheTenantHitOverflowFold pins the per-tenant hit map's
// bound: past maxTenantHitKeys distinct tenants, further hits fold into
// the scheduler's overflow bucket (sched.OverflowTenantName) so the two
// per-tenant stats surfaces share one catch-all label.
func TestResultCacheTenantHitOverflowFold(t *testing.T) {
	db := MustOpen(WithResultCache(1 << 20))
	if err := db.Exec(`CREATE TABLE fold_t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO fold_t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := `SELECT COUNT(*) AS n FROM fold_t`

	// Populate the cache: the leader's result commits when the rows are
	// drained and closed.
	rows, err := db.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// Hits from more distinct tenants than the map tracks.
	const extra = 12
	for i := 0; i < maxTenantHitKeys+extra; i++ {
		opts := DefaultQueryOptions()
		opts.Tenant = fmt.Sprintf("fold-tenant-%04d", i)
		r, err := db.QueryContextWithOptions(ctx, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
	}

	info := db.Stats().ResultCache
	if info.Hits < maxTenantHitKeys+extra {
		t.Fatalf("expected every tenant call to hit, got %d hits", info.Hits)
	}
	if got := info.HitsByTenant[sched.OverflowTenantName]; got != extra {
		t.Fatalf("overflow bucket %q has %d hits, want %d", sched.OverflowTenantName, got, extra)
	}
	if len(info.HitsByTenant) != maxTenantHitKeys+1 {
		t.Fatalf("hit map has %d keys, want %d tracked + 1 overflow", len(info.HitsByTenant), maxTenantHitKeys)
	}
}
