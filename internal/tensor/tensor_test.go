package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMatMulSmall(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := MatMul(a, b, 1); err == nil {
		t.Error("inner-dim mismatch should fail")
	}
	if _, err := MatMul(New(4), b, 1); err == nil {
		t.Error("rank-1 should fail")
	}
}

// Property: parallel MatMul equals sequential MatMul.
func TestMatMulParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		m, k, n := 17, 23, 31
		a := randT(rng, m, k)
		b := randT(rng, k, n)
		s, err1 := MatMul(a, b, 1)
		p, err2 := MatMul(a, b, 8)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range s.Data {
			if !almostEq(s.Data[i], p.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Tiny xorshift so property tests are deterministic per seed without
// importing math/rand.
type rng struct{ s uint64 }

func newRng(seed int64) *rng {
	u := uint64(seed)
	if u == 0 {
		u = 0x9e3779b97f4a7c15
	}
	return &rng{s: u}
}

func (r *rng) next() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s%2000)/1000 - 1
}

func randT(r *rng, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.next()
	}
	return t
}

func TestGemm(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b, _ := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	bias, _ := FromSlice([]float64{10, 20}, 1, 2)
	c, err := Gemm(a, b, bias, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("gemm[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
	// alpha/beta scaling
	c2, err := Gemm(a, b, bias, 2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Data[0] != 2*1+0.5*10 {
		t.Errorf("gemm alpha/beta = %v", c2.Data[0])
	}
	// nil bias
	c3, err := Gemm(a, b, nil, 1, 1, 1)
	if err != nil || c3.Data[3] != 4 {
		t.Errorf("gemm nil bias: %v %v", c3, err)
	}
	// bad bias
	if _, err := Gemm(a, b, New(3, 7), 1, 1, 1); err == nil {
		t.Error("non-broadcastable bias should fail")
	}
}

func TestBroadcastOps(t *testing.T) {
	m, _ := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	row, _ := FromSlice([]float64{10, 20}, 1, 2)
	sum, err := Add(m, &Tensor{Shape: []int{2}, Data: row.Data})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if sum.Data[i] != w {
			t.Errorf("add[%d] = %v want %v", i, sum.Data[i], w)
		}
	}
	sc := Scalar(2)
	p, err := Mul(m, sc)
	if err != nil || p.Data[3] != 8 {
		t.Errorf("scalar mul: %v %v", p, err)
	}
	p2, err := Sub(sc, m)
	if err != nil || p2.Data[0] != 1 {
		t.Errorf("scalar-lhs sub: %v %v", p2, err)
	}
	d, err := Div(m, sc)
	if err != nil || d.Data[1] != 1 {
		t.Errorf("div: %v %v", d, err)
	}
	if _, err := Add(New(2, 2), New(3, 3)); err == nil {
		t.Error("non-broadcastable add should fail")
	}
}

func TestComparisons(t *testing.T) {
	a, _ := FromSlice([]float64{1, 5, 3}, 1, 3)
	b, _ := FromSlice([]float64{2, 2, 3}, 1, 3)
	g, _ := Greater(a, b)
	le, _ := LessOrEqual(a, b)
	eq, _ := Equal(a, b)
	if g.Data[0] != 0 || g.Data[1] != 1 || g.Data[2] != 0 {
		t.Errorf("Greater = %v", g.Data)
	}
	if le.Data[0] != 1 || le.Data[1] != 0 || le.Data[2] != 1 {
		t.Errorf("LessOrEqual = %v", le.Data)
	}
	if eq.Data[2] != 1 || eq.Data[0] != 0 {
		t.Errorf("Equal = %v", eq.Data)
	}
}

func TestActivations(t *testing.T) {
	a, _ := FromSlice([]float64{-1, 0, 2}, 1, 3)
	r := Relu(a)
	if r.Data[0] != 0 || r.Data[2] != 2 {
		t.Errorf("Relu = %v", r.Data)
	}
	s := Sigmoid(a)
	if !almostEq(s.Data[1], 0.5) {
		t.Errorf("Sigmoid(0) = %v", s.Data[1])
	}
	th := Tanh(a)
	if !almostEq(th.Data[1], 0) {
		t.Errorf("Tanh(0) = %v", th.Data[1])
	}
	e := Exp(a)
	if !almostEq(e.Data[1], 1) {
		t.Errorf("Exp(0) = %v", e.Data[1])
	}
	// input untouched
	if a.Data[0] != -1 {
		t.Error("activation mutated input")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	s, err := Softmax(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sum := s.Data[i*3] + s.Data[i*3+1] + s.Data[i*3+2]
		if !almostEq(sum, 1) {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// large-value row must not produce NaN (max-subtraction stability)
	for _, x := range s.Data {
		if math.IsNaN(x) {
			t.Fatal("softmax overflow produced NaN")
		}
	}
}

func TestArgMaxReduceSum(t *testing.T) {
	a, _ := FromSlice([]float64{1, 5, 3, 9, 2, 2}, 2, 3)
	am, _ := ArgMax(a)
	if am.Data[0] != 1 || am.Data[1] != 0 {
		t.Errorf("ArgMax = %v", am.Data)
	}
	rs, _ := ReduceSumAxis1(a)
	if rs.Data[0] != 9 || rs.Data[1] != 13 {
		t.Errorf("ReduceSum = %v", rs.Data)
	}
}

func TestGatherConcatOneHotTranspose(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	g, err := GatherCols(a, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != 3 || g.Data[1] != 1 || g.Data[2] != 6 || g.Data[3] != 4 {
		t.Errorf("GatherCols = %v", g.Data)
	}
	if _, err := GatherCols(a, []int{5}); err == nil {
		t.Error("out-of-range gather should fail")
	}
	cc, err := ConcatCols(a, g)
	if err != nil || cc.Shape[1] != 5 || cc.Data[3] != 3 {
		t.Errorf("ConcatCols = %v %v", cc, err)
	}
	codes, _ := FromSlice([]float64{0, 2, 7}, 3, 1)
	oh, err := OneHot(codes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if oh.Data[0] != 1 || oh.Data[5] != 1 {
		t.Errorf("OneHot = %v", oh.Data)
	}
	// out-of-range code → zero row
	if oh.Data[6] != 0 && oh.Data[7] != 0 && oh.Data[8] != 0 {
		t.Errorf("OneHot unknown code row = %v", oh.Data[6:9])
	}
	tr, err := Transpose(a)
	if err != nil || tr.Shape[0] != 3 || tr.At(0, 1) != 4 {
		t.Errorf("Transpose = %v %v", tr, err)
	}
}

func TestReshape(t *testing.T) {
	a := New(2, 6)
	r, err := a.Reshape(3, 4)
	if err != nil || r.Shape[0] != 3 {
		t.Fatalf("Reshape: %v %v", r, err)
	}
	r2, err := a.Reshape(-1, 3)
	if err != nil || r2.Shape[0] != 4 {
		t.Fatalf("Reshape -1: %v %v", r2, err)
	}
	if _, err := a.Reshape(5, 5); err == nil {
		t.Error("bad reshape should fail")
	}
	if _, err := a.Reshape(-1, -1); err == nil {
		t.Error("double -1 should fail")
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Error("shape/len mismatch should fail")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRng(seed)
		a := randT(r, 4, 6)
		b := randT(r, 6, 5)
		ab, _ := MatMul(a, b, 1)
		abT, _ := Transpose(ab)
		aT, _ := Transpose(a)
		bT, _ := Transpose(b)
		ba, _ := MatMul(bT, aT, 1)
		for i := range abT.Data {
			if !almostEq(abT.Data[i], ba.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
