package storage

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"raven/internal/segment"
	"raven/internal/types"
	"raven/internal/wal"
)

// Durable is the on-disk storage backend: a write-ahead log for every
// mutation plus immutable columnar segment files sealed off the table
// tails. Layout under the data directory:
//
//	wal/wal-%08d.log     the record log, rotated at each checkpoint
//	seg/<table>-%08d.seg sealed columnar segments (see internal/segment)
//	models/<hash>.bin    content-addressed model blobs (checkpoint only)
//	MANIFEST             JSON snapshot: schemas, segment lists, models,
//	                     and the WAL sequence replay starts from
//
// Writes append a WAL record before they apply in memory; once a table
// tail reaches SegmentRows rows it is sealed into a segment file (fsynced
// before the SEAL record is logged, so a logged seal always has its
// file). A checkpoint seals every tail, folds small neighboring segments
// together, rotates the WAL, and atomically replaces the MANIFEST —
// after which the old WAL files and replaced segments are garbage.
//
// Recovery (OpenDurable) is the reverse: load the MANIFEST, verify and
// attach every referenced segment (corrupt ones are quarantined with a
// clear error), then replay the WAL tail — tolerating a torn final
// record — and sweep orphaned files from interrupted checkpoints.
type Durable struct {
	dir  string
	opts DurableOptions

	catalog *Catalog

	// ddlMu serializes schema mutations (DDL, unique keys, model commits)
	// against each other and against checkpoints. Lock order everywhere:
	// ddlMu -> table appendMu (sorted) -> rotateMu -> catalog/table locks.
	ddlMu sync.Mutex

	// rotateMu protects d.log against checkpoint rotation: appenders hold
	// it shared across the WAL append AND the memory apply, so a
	// checkpoint (holding it exclusively) never snapshots state that is
	// behind the log it is about to retire.
	rotateMu sync.RWMutex
	log      *wal.Log
	walSeq   uint64

	segSeq      atomic.Uint64
	walRecords  atomic.Uint64 // replayed at recovery + appended since
	checkpoints atomic.Uint64
	lastRec     atomic.Int64 // last recovery duration, nanoseconds

	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// DurableOptions tunes the durable backend; zero values take defaults.
type DurableOptions struct {
	// Fsync is the WAL sync policy (default FsyncAlways).
	Fsync wal.Policy
	// FsyncInterval is the background sync period under FsyncInterval.
	FsyncInterval time.Duration
	// SegmentRows seals a table tail into a segment once it reaches this
	// many rows (default 65536).
	SegmentRows int
	// CheckpointWalBytes triggers a background checkpoint once the live
	// WAL exceeds this size (default 64 MiB).
	CheckpointWalBytes int64
	// CheckpointPoll is how often the background loop looks at the WAL
	// size (default 2s).
	CheckpointPoll time.Duration
}

func (o *DurableOptions) defaults() {
	if o.SegmentRows <= 0 {
		o.SegmentRows = 1 << 16
	}
	if o.CheckpointWalBytes <= 0 {
		o.CheckpointWalBytes = 64 << 20
	}
	if o.CheckpointPoll <= 0 {
		o.CheckpointPoll = 2 * time.Second
	}
}

// DurableStats is the storage section of engine stats.
type DurableStats struct {
	WalBytes       int64  `json:"wal_bytes"`
	WalRecords     uint64 `json:"wal_records"`
	Segments       int    `json:"segments"`
	SealedRows     int    `json:"sealed_rows"`
	LastRecoveryMs int64  `json:"last_recovery_ms"`
	Checkpoints    uint64 `json:"checkpoints"`
	Fsync          string `json:"fsync"`
}

// WAL record types.
const (
	recAppend      byte = 1
	recCreateTable byte = 2
	recDropTable   byte = 3
	recUniqueKey   byte = 4
	recModelTx     byte = 5
	recSeal        byte = 6
)

// JSON payloads for the non-append record types and the manifest. Batch
// appends use the binary segment codec instead (see encodeAppend).
type (
	createTableRec struct {
		Name string        `json:"name"`
		Cols []manifestCol `json:"cols"`
	}
	dropTableRec struct {
		Name string `json:"name"`
	}
	uniqueKeyRec struct {
		Table string `json:"table"`
		Col   string `json:"col"`
	}
	modelPutRec struct {
		Name   string            `json:"name"`
		Format string            `json:"format"`
		Bytes  []byte            `json:"bytes"` // base64 via encoding/json
		Hash   string            `json:"hash"`
		Meta   map[string]string `json:"meta,omitempty"`
	}
	modelTxRec struct {
		Puts    []modelPutRec `json:"puts,omitempty"`
		Deletes []string      `json:"deletes,omitempty"`
	}
	sealRec struct {
		Table string `json:"table"`
		File  string `json:"file"`
		Rows  int    `json:"rows"`
	}

	manifestCol struct {
		Name string `json:"name"`
		Type int    `json:"type"`
	}
	manifestSeg struct {
		File string `json:"file"`
		Rows int    `json:"rows"`
	}
	manifestTable struct {
		Name     string        `json:"name"`
		Cols     []manifestCol `json:"cols"`
		Unique   []string      `json:"unique,omitempty"`
		Segments []manifestSeg `json:"segments,omitempty"`
	}
	manifestModel struct {
		Name      string            `json:"name"`
		Version   int               `json:"version"`
		Format    string            `json:"format"`
		Hash      string            `json:"hash"`
		File      string            `json:"file"`
		CreatedAt time.Time         `json:"created_at"`
		Meta      map[string]string `json:"meta,omitempty"`
	}
	manifestFile struct {
		WalSeq uint64          `json:"wal_seq"`
		SegSeq uint64          `json:"seg_seq"`
		Tables []manifestTable `json:"tables,omitempty"`
		Models []manifestModel `json:"models,omitempty"`
	}
)

// OpenDurable opens (creating if needed) the data directory, recovers
// the catalog it describes, attaches the durable backend, and starts the
// background checkpointer. The returned catalog reflects every committed
// write that reached the log before the last shutdown or crash.
func OpenDurable(dir string, opts DurableOptions) (*Catalog, *Durable, error) {
	opts.defaults()
	for _, sub := range []string{"", "wal", "seg", "models"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, fmt.Errorf("storage: create data dir: %w", err)
		}
	}
	d := &Durable{
		dir:  dir,
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	start := time.Now()
	c, err := d.recover()
	if err != nil {
		return nil, nil, err
	}
	d.catalog = c
	c.SetBackend(d)
	d.lastRec.Store(int64(time.Since(start)))
	go d.checkpointLoop()
	return c, d, nil
}

func (d *Durable) walPath(seq uint64) string {
	return filepath.Join(d.dir, "wal", fmt.Sprintf("wal-%08d.log", seq))
}

func (d *Durable) walOpts() wal.Options {
	return wal.Options{Policy: d.opts.Fsync, Interval: d.opts.FsyncInterval}
}

// sanitizeName maps a table name onto a filesystem-safe segment file
// prefix. Collisions are harmless: the sequence number keeps file names
// unique, and the manifest/SEAL records carry the real table name.
func sanitizeName(name string) string {
	s := strings.ToLower(name)
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
			return r
		}
		return '_'
	}, s)
}

func syncDir(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- Backend interface -------------------------------------------------

// Append logs the batch, applies it to the tail, and seals the tail into
// a segment once it crosses SegmentRows.
func (d *Durable) Append(t *Table, b *types.Batch) error {
	if err := validateBatch(t, b); err != nil {
		return err
	}
	payload, err := encodeAppend(t.Name, b)
	if err != nil {
		return err
	}
	t.appendMu.Lock()
	defer t.appendMu.Unlock()
	d.rotateMu.RLock()
	err = d.logRecord(recAppend, payload)
	if err == nil {
		err = t.applyBatch(b)
	}
	d.rotateMu.RUnlock()
	if err != nil {
		return err
	}
	if t.tailLen() >= d.opts.SegmentRows {
		return d.seal(t, true)
	}
	return nil
}

// validateBatch rejects shape mismatches before anything reaches the
// log, so a logged append can always replay.
func validateBatch(t *Table, b *types.Batch) error {
	if len(b.Vecs) != t.schema.Len() {
		return fmt.Errorf("storage: table %s: batch arity %d != %d", t.Name, len(b.Vecs), t.schema.Len())
	}
	for i, v := range b.Vecs {
		if v.Type != t.schema.Columns[i].Type {
			return fmt.Errorf("storage: table %s: column %s is %v, batch has %v",
				t.Name, t.schema.Columns[i].Name, t.schema.Columns[i].Type, v.Type)
		}
	}
	return nil
}

// CreateTable logs and registers a new table.
func (d *Durable) CreateTable(c *Catalog, t *Table) error {
	d.ddlMu.Lock()
	defer d.ddlMu.Unlock()
	if c.HasTable(t.Name) {
		return fmt.Errorf("storage: table %q already exists", t.Name)
	}
	rec := createTableRec{Name: t.Name, Cols: schemaCols(t.schema)}
	if err := d.logJSON(recCreateTable, rec); err != nil {
		return err
	}
	t.backend = d
	return c.addTableLocal(t)
}

// DropTable logs and removes a table. Its segment files stay on disk
// until the next checkpoint's orphan sweep.
func (d *Durable) DropTable(c *Catalog, name string) error {
	d.ddlMu.Lock()
	defer d.ddlMu.Unlock()
	if !c.HasTable(name) {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	if err := d.logJSON(recDropTable, dropTableRec{Name: name}); err != nil {
		return err
	}
	return c.dropTableLocal(name)
}

// SetUniqueKey logs and declares a unique key.
func (d *Durable) SetUniqueKey(c *Catalog, table, col string) error {
	d.ddlMu.Lock()
	defer d.ddlMu.Unlock()
	if err := d.logJSON(recUniqueKey, uniqueKeyRec{Table: table, Col: col}); err != nil {
		return err
	}
	c.setUniqueKeyLocal(table, col)
	return nil
}

// CommitModelTx logs the whole transaction as one record — model bytes
// ride in the WAL until a checkpoint writes them out as content-addressed
// blobs — then applies it.
func (d *Durable) CommitModelTx(tx *Tx) error {
	d.ddlMu.Lock()
	defer d.ddlMu.Unlock()
	// Validate deletes before logging: a record in the WAL must always
	// replay cleanly, and commitLocal aborts on unknown-model deletes.
	for _, name := range tx.deletes {
		if !tx.store.hasModel(name) {
			return fmt.Errorf("storage: delete of unknown model %q aborts tx %d", name, tx.id)
		}
	}
	rec := modelTxRec{Deletes: tx.deletes}
	for _, m := range tx.puts {
		rec.Puts = append(rec.Puts, modelPutRec{
			Name: m.Name, Format: m.Format, Bytes: m.Bytes, Hash: m.Hash, Meta: m.Meta,
		})
	}
	if err := d.logJSON(recModelTx, rec); err != nil {
		return err
	}
	return tx.commitLocal()
}

// --- Logging helpers ---------------------------------------------------

// logRecord appends one record to the live WAL. Callers hold rotateMu
// shared (or exclusively, during checkpoint).
func (d *Durable) logRecord(recType byte, payload []byte) error {
	if err := d.log.Append(recType, payload); err != nil {
		return err
	}
	d.walRecords.Add(1)
	return nil
}

// logJSON marshals and appends a record under rotateMu.RLock; used by
// the DDL and model-tx paths (appends inline the lock to cover the
// memory apply too).
func (d *Durable) logJSON(recType byte, rec any) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	d.rotateMu.RLock()
	defer d.rotateMu.RUnlock()
	return d.logRecord(recType, payload)
}

// encodeAppend frames a batch append: [u16 nameLen][name][batch codec].
func encodeAppend(table string, b *types.Batch) ([]byte, error) {
	body, err := segment.EncodeBatch(b)
	if err != nil {
		return nil, err
	}
	if len(table) > 1<<16-1 {
		return nil, fmt.Errorf("storage: table name too long")
	}
	out := make([]byte, 2+len(table)+len(body))
	binary.LittleEndian.PutUint16(out, uint16(len(table)))
	copy(out[2:], table)
	copy(out[2+len(table):], body)
	return out, nil
}

func decodeAppend(payload []byte) (table string, body []byte, err error) {
	if len(payload) < 2 {
		return "", nil, errors.New("storage: append record too short")
	}
	n := int(binary.LittleEndian.Uint16(payload))
	if len(payload) < 2+n {
		return "", nil, errors.New("storage: append record truncated name")
	}
	return string(payload[2 : 2+n]), payload[2+n:], nil
}

func schemaCols(s *types.Schema) []manifestCol {
	out := make([]manifestCol, s.Len())
	for i, c := range s.Columns {
		out[i] = manifestCol{Name: c.Name, Type: int(c.Type)}
	}
	return out
}

func colsSchema(cols []manifestCol) *types.Schema {
	out := make([]types.Column, len(cols))
	for i, c := range cols {
		out[i] = types.Column{Name: c.Name, Type: types.DataType(c.Type)}
	}
	return types.NewSchema(out...)
}

// --- Sealing -----------------------------------------------------------

// seal writes the table's entire tail as a new segment file, fsyncs it
// and the directory, optionally logs a SEAL record (the checkpoint path
// skips it — its manifest references the segment directly), and swaps
// the tail. Callers hold t.appendMu, so the tail is stable.
func (d *Durable) seal(t *Table, logRec bool) error {
	b, n := t.tailBatch()
	if n == 0 {
		return nil
	}
	file := fmt.Sprintf("%s-%08d.seg", sanitizeName(t.Name), d.segSeq.Add(1))
	path := filepath.Join(d.dir, "seg", file)
	if err := segment.Write(path, b); err != nil {
		return fmt.Errorf("storage: seal %s: %w", t.Name, err)
	}
	if err := syncDir(filepath.Join(d.dir, "seg")); err != nil {
		return fmt.Errorf("storage: seal %s: %w", t.Name, err)
	}
	if logRec {
		payload, err := json.Marshal(sealRec{Table: t.Name, File: file, Rows: n})
		if err != nil {
			return err
		}
		d.rotateMu.RLock()
		err = d.logRecord(recSeal, payload)
		d.rotateMu.RUnlock()
		if err != nil {
			return err
		}
	}
	r, err := segment.Open(path)
	if err != nil {
		return fmt.Errorf("storage: seal %s: reopen: %w", t.Name, err)
	}
	return t.sealTail(r, n)
}

// --- Checkpoint --------------------------------------------------------

// Checkpoint seals every tail, compacts small segments, rotates the WAL,
// writes model blobs and a new MANIFEST atomically, then deletes the
// retired WAL files and replaced segments.
func (d *Durable) Checkpoint() error {
	d.ddlMu.Lock()
	defer d.ddlMu.Unlock()
	return d.checkpointLocked()
}

func (d *Durable) checkpointLocked() error {
	c := d.catalog
	// Snapshot the table set: ddlMu is held, so it cannot change. Take
	// every appendMu (sorted for a stable order against concurrent
	// checkpoints — there are none, but cheap insurance) so no append is
	// between its WAL record and its memory apply or mid-seal.
	names := c.TableNames()
	tables := make([]*Table, 0, len(names))
	for _, n := range names {
		t, err := c.Table(n)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	for _, t := range tables {
		t.appendMu.Lock()
		defer t.appendMu.Unlock()
	}

	var garbage []string
	for _, t := range tables {
		if err := d.seal(t, false); err != nil {
			return err
		}
		g, err := d.compactTable(t)
		if err != nil {
			return err
		}
		garbage = append(garbage, g...)
	}
	if err := syncDir(filepath.Join(d.dir, "seg")); err != nil {
		return err
	}

	// Rotate: sync the old log in full first, so only the newest WAL
	// file can ever have a torn tail at recovery.
	d.rotateMu.Lock()
	if err := d.log.Sync(); err != nil {
		d.rotateMu.Unlock()
		return err
	}
	newSeq := d.walSeq + 1
	newLog, err := wal.Open(d.walPath(newSeq), d.walOpts())
	if err != nil {
		d.rotateMu.Unlock()
		return err
	}
	oldLog := d.log
	d.log = newLog
	d.walSeq = newSeq
	d.rotateMu.Unlock()
	if err := oldLog.Close(); err != nil {
		return err
	}

	// Model blobs: content-addressed, written via rename so a crash never
	// leaves a short blob under a valid name.
	models := c.Models.snapshotModels()
	for _, m := range models {
		if err := d.writeModelBlob(m); err != nil {
			return err
		}
	}

	man := manifestFile{WalSeq: newSeq, SegSeq: d.segSeq.Load()}
	for _, t := range tables {
		mt := manifestTable{Name: t.Name, Cols: schemaCols(t.schema), Unique: c.UniqueKeys(t.Name)}
		for _, p := range t.sealedSnapshot() {
			mt.Segments = append(mt.Segments, manifestSeg{File: filepath.Base(p.r.Path()), Rows: p.rows})
		}
		man.Tables = append(man.Tables, mt)
	}
	for _, m := range models {
		man.Models = append(man.Models, manifestModel{
			Name: m.Name, Version: m.Version, Format: m.Format, Hash: m.Hash,
			File: m.Hash + ".bin", CreatedAt: m.CreatedAt, Meta: m.Meta,
		})
	}
	if err := d.writeManifest(&man); err != nil {
		return err
	}

	// Everything the new manifest does not reference is garbage now.
	for _, seq := range d.walSeqsOnDisk() {
		if seq < newSeq {
			os.Remove(d.walPath(seq))
		}
	}
	for _, path := range garbage {
		os.Remove(path)
	}
	d.checkpoints.Add(1)
	return nil
}

func (d *Durable) writeModelBlob(m *StoredModel) error {
	path := filepath.Join(d.dir, "models", m.Hash+".bin")
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(m.Bytes); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Join(d.dir, "models"))
}

func (d *Durable) writeManifest(man *manifestFile) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(d.dir, "MANIFEST.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, "MANIFEST")); err != nil {
		return err
	}
	return syncDir(d.dir)
}

// compactTable folds runs of two or more undersized neighboring segments
// into full-size ones, preserving row order. Returns the file paths the
// new manifest will no longer reference.
func (d *Durable) compactTable(t *Table) ([]string, error) {
	parts := t.sealedSnapshot()
	var out []sealedPart
	var garbage []string
	changed := false
	i := 0
	for i < len(parts) {
		if parts[i].rows >= d.opts.SegmentRows {
			out = append(out, parts[i])
			i++
			continue
		}
		j := i
		for j < len(parts) && parts[j].rows < d.opts.SegmentRows {
			j++
		}
		if j-i < 2 {
			out = append(out, parts[i:j]...)
			i = j
			continue
		}
		changed = true
		accum := types.NewBatch(t.schema)
		flush := func(b *types.Batch) error {
			file := fmt.Sprintf("%s-%08d.seg", sanitizeName(t.Name), d.segSeq.Add(1))
			path := filepath.Join(d.dir, "seg", file)
			if err := segment.Write(path, b); err != nil {
				return err
			}
			r, err := segment.Open(path)
			if err != nil {
				return err
			}
			out = append(out, sealedPart{r: r, rows: b.Len()})
			return nil
		}
		for k := i; k < j; k++ {
			for col := range accum.Vecs {
				if err := parts[k].r.ReadColumnRange(col, 0, parts[k].rows, accum.Vecs[col]); err != nil {
					return nil, fmt.Errorf("storage: compact %s: %w", t.Name, err)
				}
			}
			garbage = append(garbage, parts[k].r.Path())
			for accum.Len() >= d.opts.SegmentRows {
				if err := flush(accum.Slice(0, d.opts.SegmentRows)); err != nil {
					return nil, err
				}
				rest := types.NewBatch(t.schema)
				for col := range rest.Vecs {
					if err := rest.Vecs[col].AppendVector(accum.Vecs[col].Slice(d.opts.SegmentRows, accum.Len())); err != nil {
						return nil, err
					}
				}
				accum = rest
			}
		}
		if accum.Len() > 0 {
			if err := flush(accum); err != nil {
				return nil, err
			}
		}
		i = j
	}
	if !changed {
		return nil, nil
	}
	if err := t.replaceSealed(out); err != nil {
		return nil, err
	}
	return garbage, nil
}

// --- Recovery ----------------------------------------------------------

func (d *Durable) recover() (*Catalog, error) {
	c := NewCatalog()
	man, err := d.readManifest()
	if err != nil {
		return nil, err
	}
	// Attach manifest segments. A segment that fails its checksum is
	// quarantined (renamed aside) and recovery stops with an error naming
	// it — the data is not silently dropped.
	for _, mt := range man.Tables {
		t := NewTable(mt.Name, colsSchema(mt.Cols))
		for _, ms := range mt.Segments {
			path := filepath.Join(d.dir, "seg", ms.File)
			r, err := d.openSegment(path)
			if err != nil {
				return nil, err
			}
			if r.Rows() != ms.Rows {
				r.Close()
				return nil, fmt.Errorf("storage: recovery: segment %s has %d rows, manifest says %d", ms.File, r.Rows(), ms.Rows)
			}
			t.attachSegment(r)
		}
		if err := c.addTableLocal(t); err != nil {
			return nil, err
		}
		for _, col := range mt.Unique {
			c.setUniqueKeyLocal(mt.Name, col)
		}
	}
	for _, mm := range man.Models {
		path := filepath.Join(d.dir, "models", mm.File)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("storage: recovery: model blob %s: %w", mm.File, err)
		}
		h := sha256.Sum256(data)
		if hex.EncodeToString(h[:]) != mm.Hash {
			return nil, fmt.Errorf("storage: recovery: model blob %s fails its content hash", mm.File)
		}
		err = c.Models.restore(&StoredModel{
			Name: mm.Name, Version: mm.Version, Format: mm.Format, Bytes: data,
			Hash: mm.Hash, CreatedAt: mm.CreatedAt, Meta: mm.Meta,
		})
		if err != nil {
			return nil, err
		}
	}
	d.segSeq.Store(max(man.SegSeq, d.maxSegSeqOnDisk()))

	if err := d.replayWAL(c, man); err != nil {
		return nil, err
	}
	d.sweepOrphans(c, man)
	return c, nil
}

func (d *Durable) openSegment(path string) (*segment.Reader, error) {
	r, err := segment.Open(path)
	if err == nil {
		if verr := r.Verify(); verr != nil {
			r.Close()
			err = verr
		}
	}
	if err != nil {
		var ce *segment.CorruptError
		if errors.As(err, &ce) {
			q, qerr := segment.Quarantine(path)
			if qerr != nil {
				return nil, fmt.Errorf("storage: recovery: segment %s is corrupt (%v) and could not be quarantined: %v", filepath.Base(path), err, qerr)
			}
			return nil, fmt.Errorf("storage: recovery: segment %s is corrupt (%v); quarantined at %s — restore it from a replica or delete the quarantine file and its manifest entry to drop those rows", filepath.Base(path), err, q)
		}
		return nil, fmt.Errorf("storage: recovery: segment %s: %w", filepath.Base(path), err)
	}
	return r, nil
}

func (d *Durable) readManifest() (*manifestFile, error) {
	data, err := os.ReadFile(filepath.Join(d.dir, "MANIFEST"))
	if err != nil {
		if os.IsNotExist(err) {
			return &manifestFile{WalSeq: 1}, nil
		}
		return nil, fmt.Errorf("storage: read MANIFEST: %w", err)
	}
	var man manifestFile
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("storage: parse MANIFEST: %w", err)
	}
	if man.WalSeq == 0 {
		man.WalSeq = 1
	}
	return &man, nil
}

// maxSegSeqOnDisk scans the segment directory so a restarted process
// never reuses a sequence number, even for files from interrupted seals
// the manifest has not caught up to.
func (d *Durable) maxSegSeqOnDisk() uint64 {
	entries, err := os.ReadDir(filepath.Join(d.dir, "seg"))
	if err != nil {
		return 0
	}
	var maxSeq uint64
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".seg")
		if name == e.Name() {
			continue
		}
		if i := strings.LastIndexByte(name, '-'); i >= 0 {
			if n, err := strconv.ParseUint(name[i+1:], 10, 64); err == nil && n > maxSeq {
				maxSeq = n
			}
		}
	}
	return maxSeq
}

// walSeqsOnDisk lists the WAL sequence numbers present, ascending.
func (d *Durable) walSeqsOnDisk() []uint64 {
	entries, err := os.ReadDir(filepath.Join(d.dir, "wal"))
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		if n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64); err == nil {
			seqs = append(seqs, n)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// replayWAL replays every WAL file at or after the manifest's sequence,
// in order. Only the newest file may end in a torn record (rotation
// syncs the old log first); it is truncated past the last good record
// and reused as the live log.
func (d *Durable) replayWAL(c *Catalog, man *manifestFile) error {
	var seqs []uint64
	for _, s := range d.walSeqsOnDisk() {
		if s >= man.WalSeq {
			seqs = append(seqs, s)
		}
	}
	if len(seqs) == 0 {
		log, err := wal.Open(d.walPath(man.WalSeq), d.walOpts())
		if err != nil {
			return err
		}
		d.log = log
		d.walSeq = man.WalSeq
		return nil
	}
	var replayed uint64
	for i, seq := range seqs {
		path := d.walPath(seq)
		good, n, err := wal.Replay(path, func(recType byte, payload []byte) error {
			return d.applyRecord(c, recType, payload)
		})
		if err != nil {
			return fmt.Errorf("storage: recovery: replay %s: %w", filepath.Base(path), err)
		}
		replayed += n
		if i < len(seqs)-1 {
			if fi, serr := os.Stat(path); serr == nil && good != fi.Size() {
				return fmt.Errorf("storage: recovery: %s is corrupt mid-chain (good through %d of %d bytes)", filepath.Base(path), good, fi.Size())
			}
			continue
		}
		log, err := wal.OpenTruncated(path, d.walOpts(), good)
		if err != nil {
			return err
		}
		d.log = log
		d.walSeq = seq
	}
	d.walRecords.Store(replayed)
	return nil
}

// applyRecord applies one replayed WAL record to the catalog being
// rebuilt. The backend is not attached yet, so nothing re-logs.
func (d *Durable) applyRecord(c *Catalog, recType byte, payload []byte) error {
	switch recType {
	case recAppend:
		name, body, err := decodeAppend(payload)
		if err != nil {
			return err
		}
		t, err := c.Table(name)
		if err != nil {
			return err
		}
		b, err := segment.DecodeBatch(t.schema, body)
		if err != nil {
			return err
		}
		return t.applyBatch(b)
	case recCreateTable:
		var rec createTableRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		return c.addTableLocal(NewTable(rec.Name, colsSchema(rec.Cols)))
	case recDropTable:
		var rec dropTableRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		return c.dropTableLocal(rec.Name)
	case recUniqueKey:
		var rec uniqueKeyRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		c.setUniqueKeyLocal(rec.Table, rec.Col)
		return nil
	case recModelTx:
		var rec modelTxRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		tx := c.Models.Begin()
		tx.deletes = rec.Deletes
		for _, p := range rec.Puts {
			tx.puts = append(tx.puts, &StoredModel{
				Name: p.Name, Format: p.Format, Bytes: p.Bytes, Hash: p.Hash, Meta: p.Meta,
			})
		}
		return tx.commitLocal()
	case recSeal:
		var rec sealRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		t, err := c.Table(rec.Table)
		if err != nil {
			return err
		}
		r, err := d.openSegment(filepath.Join(d.dir, "seg", rec.File))
		if err != nil {
			return err
		}
		if err := t.sealTail(r, rec.Rows); err != nil {
			r.Close()
			return err
		}
		return nil
	default:
		return fmt.Errorf("storage: recovery: unknown WAL record type %d", recType)
	}
}

// sweepOrphans deletes files a crash mid-checkpoint left behind: WAL
// files older than the manifest, segment files no live table references,
// model blobs without a stored version, and stray temp files. Quarantined
// segments are kept for manual inspection.
func (d *Durable) sweepOrphans(c *Catalog, man *manifestFile) {
	refSeg := make(map[string]bool)
	for _, name := range c.TableNames() {
		t, err := c.Table(name)
		if err != nil {
			continue
		}
		for _, p := range t.sealedSnapshot() {
			refSeg[filepath.Base(p.r.Path())] = true
		}
	}
	if entries, err := os.ReadDir(filepath.Join(d.dir, "seg")); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".seg") && !refSeg[e.Name()] {
				os.Remove(filepath.Join(d.dir, "seg", e.Name()))
			}
		}
	}
	for _, seq := range d.walSeqsOnDisk() {
		if seq < man.WalSeq {
			os.Remove(d.walPath(seq))
		}
	}
	refBlob := make(map[string]bool)
	for _, m := range c.Models.snapshotModels() {
		refBlob[m.Hash+".bin"] = true
	}
	if entries, err := os.ReadDir(filepath.Join(d.dir, "models")); err == nil {
		for _, e := range entries {
			if !refBlob[e.Name()] {
				os.Remove(filepath.Join(d.dir, "models", e.Name()))
			}
		}
	}
	os.Remove(filepath.Join(d.dir, "MANIFEST.tmp"))
}

// --- Lifecycle ---------------------------------------------------------

func (d *Durable) checkpointLoop() {
	defer close(d.done)
	ticker := time.NewTicker(d.opts.CheckpointPoll)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.rotateMu.RLock()
			size := d.log.Size()
			d.rotateMu.RUnlock()
			if size > d.opts.CheckpointWalBytes {
				if err := d.Checkpoint(); err != nil {
					// A failed background checkpoint leaves the previous
					// manifest + WAL chain intact; the next WAL append will
					// surface any sticky log error to the writer.
					continue
				}
			}
		}
	}
}

// LastRecovery returns how long recovery took at open.
func (d *Durable) LastRecovery() time.Duration { return time.Duration(d.lastRec.Load()) }

// Stats summarizes the durable state for DB.Stats().
func (d *Durable) Stats() DurableStats {
	st := DurableStats{
		WalRecords:     d.walRecords.Load(),
		LastRecoveryMs: int64(d.LastRecovery() / time.Millisecond),
		Checkpoints:    d.checkpoints.Load(),
		Fsync:          d.opts.Fsync.String(),
	}
	d.rotateMu.RLock()
	st.WalBytes = d.log.Size()
	d.rotateMu.RUnlock()
	for _, name := range d.catalog.TableNames() {
		if t, err := d.catalog.Table(name); err == nil {
			segs, rows := t.sealedInfo()
			st.Segments += segs
			st.SealedRows += rows
		}
	}
	return st
}

// Close stops the background checkpointer, optionally takes a final
// checkpoint (so the next open replays nothing), and closes the log and
// all segment readers.
func (d *Durable) Close(checkpoint bool) error {
	d.closeOnce.Do(func() {
		d.stopOnce.Do(func() { close(d.stop) })
		<-d.done
		var err error
		if checkpoint {
			err = d.Checkpoint()
		}
		if cerr := d.closeLog(); err == nil {
			err = cerr
		}
		d.closeSegments()
		d.closeErr = err
	})
	return d.closeErr
}

// Abort closes without syncing or checkpointing — the crash-simulation
// path for recovery tests and benchmarks: whatever the OS has not been
// told to persist is deliberately left at risk, exactly like kill -9.
func (d *Durable) Abort() error {
	var err error
	d.closeOnce.Do(func() {
		d.stopOnce.Do(func() { close(d.stop) })
		<-d.done
		err = d.log.Abort()
		d.closeSegments()
		d.closeErr = err
	})
	return err
}

func (d *Durable) closeLog() error {
	d.rotateMu.Lock()
	defer d.rotateMu.Unlock()
	return d.log.Close()
}

func (d *Durable) closeSegments() {
	for _, name := range d.catalog.TableNames() {
		if t, err := d.catalog.Table(name); err == nil {
			t.closeSealed()
		}
	}
}
